file(REMOVE_RECURSE
  "CMakeFiles/psbox_test.dir/psbox_test.cpp.o"
  "CMakeFiles/psbox_test.dir/psbox_test.cpp.o.d"
  "psbox_test"
  "psbox_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
