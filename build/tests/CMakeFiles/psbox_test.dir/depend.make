# Empty dependencies file for psbox_test.
# This may be replaced when dependencies are built.
