file(REMOVE_RECURSE
  "CMakeFiles/balloon_test.dir/balloon_test.cpp.o"
  "CMakeFiles/balloon_test.dir/balloon_test.cpp.o.d"
  "balloon_test"
  "balloon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balloon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
