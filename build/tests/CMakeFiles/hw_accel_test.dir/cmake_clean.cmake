file(REMOVE_RECURSE
  "CMakeFiles/hw_accel_test.dir/hw_accel_test.cpp.o"
  "CMakeFiles/hw_accel_test.dir/hw_accel_test.cpp.o.d"
  "hw_accel_test"
  "hw_accel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_accel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
