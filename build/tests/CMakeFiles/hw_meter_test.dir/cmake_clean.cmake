file(REMOVE_RECURSE
  "CMakeFiles/hw_meter_test.dir/hw_meter_test.cpp.o"
  "CMakeFiles/hw_meter_test.dir/hw_meter_test.cpp.o.d"
  "hw_meter_test"
  "hw_meter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_meter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
