# Empty dependencies file for hw_meter_test.
# This may be replaced when dependencies are built.
