file(REMOVE_RECURSE
  "CMakeFiles/accel_driver_test.dir/accel_driver_test.cpp.o"
  "CMakeFiles/accel_driver_test.dir/accel_driver_test.cpp.o.d"
  "accel_driver_test"
  "accel_driver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accel_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
