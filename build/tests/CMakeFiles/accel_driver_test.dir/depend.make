# Empty dependencies file for accel_driver_test.
# This may be replaced when dependencies are built.
