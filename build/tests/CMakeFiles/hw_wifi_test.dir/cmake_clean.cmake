file(REMOVE_RECURSE
  "CMakeFiles/hw_wifi_test.dir/hw_wifi_test.cpp.o"
  "CMakeFiles/hw_wifi_test.dir/hw_wifi_test.cpp.o.d"
  "hw_wifi_test"
  "hw_wifi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_wifi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
