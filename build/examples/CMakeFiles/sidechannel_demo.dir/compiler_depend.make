# Empty compiler generated dependencies file for sidechannel_demo.
# This may be replaced when dependencies are built.
