file(REMOVE_RECURSE
  "CMakeFiles/sidechannel_demo.dir/sidechannel_demo.cpp.o"
  "CMakeFiles/sidechannel_demo.dir/sidechannel_demo.cpp.o.d"
  "sidechannel_demo"
  "sidechannel_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidechannel_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
