# Empty dependencies file for vr_adaptation.
# This may be replaced when dependencies are built.
