file(REMOVE_RECURSE
  "CMakeFiles/vr_adaptation.dir/vr_adaptation.cpp.o"
  "CMakeFiles/vr_adaptation.dir/vr_adaptation.cpp.o.d"
  "vr_adaptation"
  "vr_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vr_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
