
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psbox/power_events.cc" "src/psbox/CMakeFiles/psbox_core.dir/power_events.cc.o" "gcc" "src/psbox/CMakeFiles/psbox_core.dir/power_events.cc.o.d"
  "/root/repo/src/psbox/power_sandbox.cc" "src/psbox/CMakeFiles/psbox_core.dir/power_sandbox.cc.o" "gcc" "src/psbox/CMakeFiles/psbox_core.dir/power_sandbox.cc.o.d"
  "/root/repo/src/psbox/psbox_api.cc" "src/psbox/CMakeFiles/psbox_core.dir/psbox_api.cc.o" "gcc" "src/psbox/CMakeFiles/psbox_core.dir/psbox_api.cc.o.d"
  "/root/repo/src/psbox/psbox_manager.cc" "src/psbox/CMakeFiles/psbox_core.dir/psbox_manager.cc.o" "gcc" "src/psbox/CMakeFiles/psbox_core.dir/psbox_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/psbox_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/psbox_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psbox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/psbox_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
