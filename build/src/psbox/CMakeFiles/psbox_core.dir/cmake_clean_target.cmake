file(REMOVE_RECURSE
  "libpsbox_core.a"
)
