file(REMOVE_RECURSE
  "CMakeFiles/psbox_core.dir/power_events.cc.o"
  "CMakeFiles/psbox_core.dir/power_events.cc.o.d"
  "CMakeFiles/psbox_core.dir/power_sandbox.cc.o"
  "CMakeFiles/psbox_core.dir/power_sandbox.cc.o.d"
  "CMakeFiles/psbox_core.dir/psbox_api.cc.o"
  "CMakeFiles/psbox_core.dir/psbox_api.cc.o.d"
  "CMakeFiles/psbox_core.dir/psbox_manager.cc.o"
  "CMakeFiles/psbox_core.dir/psbox_manager.cc.o.d"
  "libpsbox_core.a"
  "libpsbox_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psbox_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
