# Empty dependencies file for psbox_core.
# This may be replaced when dependencies are built.
