
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/behavior_lib.cc" "src/workloads/CMakeFiles/psbox_workloads.dir/behavior_lib.cc.o" "gcc" "src/workloads/CMakeFiles/psbox_workloads.dir/behavior_lib.cc.o.d"
  "/root/repo/src/workloads/table5_apps.cc" "src/workloads/CMakeFiles/psbox_workloads.dir/table5_apps.cc.o" "gcc" "src/workloads/CMakeFiles/psbox_workloads.dir/table5_apps.cc.o.d"
  "/root/repo/src/workloads/vr_app.cc" "src/workloads/CMakeFiles/psbox_workloads.dir/vr_app.cc.o" "gcc" "src/workloads/CMakeFiles/psbox_workloads.dir/vr_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/psbox/CMakeFiles/psbox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/psbox_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/psbox_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psbox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/psbox_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
