file(REMOVE_RECURSE
  "libpsbox_workloads.a"
)
