# Empty dependencies file for psbox_workloads.
# This may be replaced when dependencies are built.
