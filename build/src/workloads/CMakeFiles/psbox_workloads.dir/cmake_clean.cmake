file(REMOVE_RECURSE
  "CMakeFiles/psbox_workloads.dir/behavior_lib.cc.o"
  "CMakeFiles/psbox_workloads.dir/behavior_lib.cc.o.d"
  "CMakeFiles/psbox_workloads.dir/table5_apps.cc.o"
  "CMakeFiles/psbox_workloads.dir/table5_apps.cc.o.d"
  "CMakeFiles/psbox_workloads.dir/vr_app.cc.o"
  "CMakeFiles/psbox_workloads.dir/vr_app.cc.o.d"
  "libpsbox_workloads.a"
  "libpsbox_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psbox_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
