# Empty dependencies file for psbox_base.
# This may be replaced when dependencies are built.
