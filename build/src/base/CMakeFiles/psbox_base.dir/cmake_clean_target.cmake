file(REMOVE_RECURSE
  "libpsbox_base.a"
)
