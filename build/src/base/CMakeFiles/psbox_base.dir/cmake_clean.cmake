file(REMOVE_RECURSE
  "CMakeFiles/psbox_base.dir/check.cc.o"
  "CMakeFiles/psbox_base.dir/check.cc.o.d"
  "CMakeFiles/psbox_base.dir/csv.cc.o"
  "CMakeFiles/psbox_base.dir/csv.cc.o.d"
  "CMakeFiles/psbox_base.dir/interval_set.cc.o"
  "CMakeFiles/psbox_base.dir/interval_set.cc.o.d"
  "CMakeFiles/psbox_base.dir/rng.cc.o"
  "CMakeFiles/psbox_base.dir/rng.cc.o.d"
  "CMakeFiles/psbox_base.dir/stats.cc.o"
  "CMakeFiles/psbox_base.dir/stats.cc.o.d"
  "CMakeFiles/psbox_base.dir/step_trace.cc.o"
  "CMakeFiles/psbox_base.dir/step_trace.cc.o.d"
  "libpsbox_base.a"
  "libpsbox_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psbox_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
