file(REMOVE_RECURSE
  "CMakeFiles/psbox_hw.dir/accel_device.cc.o"
  "CMakeFiles/psbox_hw.dir/accel_device.cc.o.d"
  "CMakeFiles/psbox_hw.dir/board.cc.o"
  "CMakeFiles/psbox_hw.dir/board.cc.o.d"
  "CMakeFiles/psbox_hw.dir/cpu_device.cc.o"
  "CMakeFiles/psbox_hw.dir/cpu_device.cc.o.d"
  "CMakeFiles/psbox_hw.dir/display_device.cc.o"
  "CMakeFiles/psbox_hw.dir/display_device.cc.o.d"
  "CMakeFiles/psbox_hw.dir/gps_device.cc.o"
  "CMakeFiles/psbox_hw.dir/gps_device.cc.o.d"
  "CMakeFiles/psbox_hw.dir/power_meter.cc.o"
  "CMakeFiles/psbox_hw.dir/power_meter.cc.o.d"
  "CMakeFiles/psbox_hw.dir/power_rail.cc.o"
  "CMakeFiles/psbox_hw.dir/power_rail.cc.o.d"
  "CMakeFiles/psbox_hw.dir/wifi_device.cc.o"
  "CMakeFiles/psbox_hw.dir/wifi_device.cc.o.d"
  "libpsbox_hw.a"
  "libpsbox_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psbox_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
