# Empty dependencies file for psbox_hw.
# This may be replaced when dependencies are built.
