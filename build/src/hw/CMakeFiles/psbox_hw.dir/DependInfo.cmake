
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/accel_device.cc" "src/hw/CMakeFiles/psbox_hw.dir/accel_device.cc.o" "gcc" "src/hw/CMakeFiles/psbox_hw.dir/accel_device.cc.o.d"
  "/root/repo/src/hw/board.cc" "src/hw/CMakeFiles/psbox_hw.dir/board.cc.o" "gcc" "src/hw/CMakeFiles/psbox_hw.dir/board.cc.o.d"
  "/root/repo/src/hw/cpu_device.cc" "src/hw/CMakeFiles/psbox_hw.dir/cpu_device.cc.o" "gcc" "src/hw/CMakeFiles/psbox_hw.dir/cpu_device.cc.o.d"
  "/root/repo/src/hw/display_device.cc" "src/hw/CMakeFiles/psbox_hw.dir/display_device.cc.o" "gcc" "src/hw/CMakeFiles/psbox_hw.dir/display_device.cc.o.d"
  "/root/repo/src/hw/gps_device.cc" "src/hw/CMakeFiles/psbox_hw.dir/gps_device.cc.o" "gcc" "src/hw/CMakeFiles/psbox_hw.dir/gps_device.cc.o.d"
  "/root/repo/src/hw/power_meter.cc" "src/hw/CMakeFiles/psbox_hw.dir/power_meter.cc.o" "gcc" "src/hw/CMakeFiles/psbox_hw.dir/power_meter.cc.o.d"
  "/root/repo/src/hw/power_rail.cc" "src/hw/CMakeFiles/psbox_hw.dir/power_rail.cc.o" "gcc" "src/hw/CMakeFiles/psbox_hw.dir/power_rail.cc.o.d"
  "/root/repo/src/hw/wifi_device.cc" "src/hw/CMakeFiles/psbox_hw.dir/wifi_device.cc.o" "gcc" "src/hw/CMakeFiles/psbox_hw.dir/wifi_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/psbox_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psbox_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
