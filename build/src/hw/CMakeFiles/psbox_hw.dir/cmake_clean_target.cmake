file(REMOVE_RECURSE
  "libpsbox_hw.a"
)
