file(REMOVE_RECURSE
  "CMakeFiles/psbox_analysis.dir/dtw.cc.o"
  "CMakeFiles/psbox_analysis.dir/dtw.cc.o.d"
  "CMakeFiles/psbox_analysis.dir/trace_util.cc.o"
  "CMakeFiles/psbox_analysis.dir/trace_util.cc.o.d"
  "libpsbox_analysis.a"
  "libpsbox_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psbox_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
