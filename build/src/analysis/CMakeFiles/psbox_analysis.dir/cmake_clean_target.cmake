file(REMOVE_RECURSE
  "libpsbox_analysis.a"
)
