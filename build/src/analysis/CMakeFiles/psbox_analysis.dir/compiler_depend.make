# Empty compiler generated dependencies file for psbox_analysis.
# This may be replaced when dependencies are built.
