
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/accel_driver.cc" "src/kernel/CMakeFiles/psbox_kernel.dir/accel_driver.cc.o" "gcc" "src/kernel/CMakeFiles/psbox_kernel.dir/accel_driver.cc.o.d"
  "/root/repo/src/kernel/cpu_scheduler.cc" "src/kernel/CMakeFiles/psbox_kernel.dir/cpu_scheduler.cc.o" "gcc" "src/kernel/CMakeFiles/psbox_kernel.dir/cpu_scheduler.cc.o.d"
  "/root/repo/src/kernel/cpufreq_governor.cc" "src/kernel/CMakeFiles/psbox_kernel.dir/cpufreq_governor.cc.o" "gcc" "src/kernel/CMakeFiles/psbox_kernel.dir/cpufreq_governor.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/psbox_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/psbox_kernel.dir/kernel.cc.o.d"
  "/root/repo/src/kernel/net_stack.cc" "src/kernel/CMakeFiles/psbox_kernel.dir/net_stack.cc.o" "gcc" "src/kernel/CMakeFiles/psbox_kernel.dir/net_stack.cc.o.d"
  "/root/repo/src/kernel/task.cc" "src/kernel/CMakeFiles/psbox_kernel.dir/task.cc.o" "gcc" "src/kernel/CMakeFiles/psbox_kernel.dir/task.cc.o.d"
  "/root/repo/src/kernel/usage_ledger.cc" "src/kernel/CMakeFiles/psbox_kernel.dir/usage_ledger.cc.o" "gcc" "src/kernel/CMakeFiles/psbox_kernel.dir/usage_ledger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/psbox_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psbox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/psbox_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
