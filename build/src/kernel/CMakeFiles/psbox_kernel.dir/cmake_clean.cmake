file(REMOVE_RECURSE
  "CMakeFiles/psbox_kernel.dir/accel_driver.cc.o"
  "CMakeFiles/psbox_kernel.dir/accel_driver.cc.o.d"
  "CMakeFiles/psbox_kernel.dir/cpu_scheduler.cc.o"
  "CMakeFiles/psbox_kernel.dir/cpu_scheduler.cc.o.d"
  "CMakeFiles/psbox_kernel.dir/cpufreq_governor.cc.o"
  "CMakeFiles/psbox_kernel.dir/cpufreq_governor.cc.o.d"
  "CMakeFiles/psbox_kernel.dir/kernel.cc.o"
  "CMakeFiles/psbox_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/psbox_kernel.dir/net_stack.cc.o"
  "CMakeFiles/psbox_kernel.dir/net_stack.cc.o.d"
  "CMakeFiles/psbox_kernel.dir/task.cc.o"
  "CMakeFiles/psbox_kernel.dir/task.cc.o.d"
  "CMakeFiles/psbox_kernel.dir/usage_ledger.cc.o"
  "CMakeFiles/psbox_kernel.dir/usage_ledger.cc.o.d"
  "libpsbox_kernel.a"
  "libpsbox_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psbox_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
