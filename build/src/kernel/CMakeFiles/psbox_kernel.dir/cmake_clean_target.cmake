file(REMOVE_RECURSE
  "libpsbox_kernel.a"
)
