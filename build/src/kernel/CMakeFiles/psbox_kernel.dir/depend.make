# Empty dependencies file for psbox_kernel.
# This may be replaced when dependencies are built.
