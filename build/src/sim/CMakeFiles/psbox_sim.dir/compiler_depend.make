# Empty compiler generated dependencies file for psbox_sim.
# This may be replaced when dependencies are built.
