file(REMOVE_RECURSE
  "libpsbox_sim.a"
)
