file(REMOVE_RECURSE
  "CMakeFiles/psbox_sim.dir/simulator.cc.o"
  "CMakeFiles/psbox_sim.dir/simulator.cc.o.d"
  "libpsbox_sim.a"
  "libpsbox_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psbox_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
