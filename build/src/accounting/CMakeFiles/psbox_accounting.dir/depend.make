# Empty dependencies file for psbox_accounting.
# This may be replaced when dependencies are built.
