
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accounting/power_splitter.cc" "src/accounting/CMakeFiles/psbox_accounting.dir/power_splitter.cc.o" "gcc" "src/accounting/CMakeFiles/psbox_accounting.dir/power_splitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/psbox_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/psbox_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psbox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/psbox_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
