file(REMOVE_RECURSE
  "libpsbox_accounting.a"
)
