file(REMOVE_RECURSE
  "CMakeFiles/psbox_accounting.dir/power_splitter.cc.o"
  "CMakeFiles/psbox_accounting.dir/power_splitter.cc.o.d"
  "libpsbox_accounting.a"
  "libpsbox_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psbox_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
