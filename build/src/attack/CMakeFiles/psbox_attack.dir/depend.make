# Empty dependencies file for psbox_attack.
# This may be replaced when dependencies are built.
