file(REMOVE_RECURSE
  "libpsbox_attack.a"
)
