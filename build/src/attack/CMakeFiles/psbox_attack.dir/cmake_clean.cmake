file(REMOVE_RECURSE
  "CMakeFiles/psbox_attack.dir/side_channel_attacker.cc.o"
  "CMakeFiles/psbox_attack.dir/side_channel_attacker.cc.o.d"
  "libpsbox_attack.a"
  "libpsbox_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psbox_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
