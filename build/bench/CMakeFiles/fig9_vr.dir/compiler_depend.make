# Empty compiler generated dependencies file for fig9_vr.
# This may be replaced when dependencies are built.
