file(REMOVE_RECURSE
  "CMakeFiles/fig9_vr.dir/fig9_vr.cpp.o"
  "CMakeFiles/fig9_vr.dir/fig9_vr.cpp.o.d"
  "fig9_vr"
  "fig9_vr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_vr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
