# Empty dependencies file for fig6_consistency.
# This may be replaced when dependencies are built.
