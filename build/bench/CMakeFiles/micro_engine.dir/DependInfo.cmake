
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_engine.cpp" "bench/CMakeFiles/micro_engine.dir/micro_engine.cpp.o" "gcc" "bench/CMakeFiles/micro_engine.dir/micro_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/psbox_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/accounting/CMakeFiles/psbox_accounting.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/psbox_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/psbox/CMakeFiles/psbox_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/psbox_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/psbox_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/psbox_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psbox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/psbox_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
