file(REMOVE_RECURSE
  "CMakeFiles/attack_sidechannel.dir/attack_sidechannel.cpp.o"
  "CMakeFiles/attack_sidechannel.dir/attack_sidechannel.cpp.o.d"
  "attack_sidechannel"
  "attack_sidechannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_sidechannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
