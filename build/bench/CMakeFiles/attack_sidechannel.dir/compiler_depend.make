# Empty compiler generated dependencies file for attack_sidechannel.
# This may be replaced when dependencies are built.
