# Empty compiler generated dependencies file for fig7_multiplexing.
# This may be replaced when dependencies are built.
