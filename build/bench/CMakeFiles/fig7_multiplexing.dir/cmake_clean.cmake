file(REMOVE_RECURSE
  "CMakeFiles/fig7_multiplexing.dir/fig7_multiplexing.cpp.o"
  "CMakeFiles/fig7_multiplexing.dir/fig7_multiplexing.cpp.o.d"
  "fig7_multiplexing"
  "fig7_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
