# Empty compiler generated dependencies file for fig8_fairness.
# This may be replaced when dependencies are built.
