file(REMOVE_RECURSE
  "CMakeFiles/fig8_fairness.dir/fig8_fairness.cpp.o"
  "CMakeFiles/fig8_fairness.dir/fig8_fairness.cpp.o.d"
  "fig8_fairness"
  "fig8_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
