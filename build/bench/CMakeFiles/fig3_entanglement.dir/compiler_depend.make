# Empty compiler generated dependencies file for fig3_entanglement.
# This may be replaced when dependencies are built.
