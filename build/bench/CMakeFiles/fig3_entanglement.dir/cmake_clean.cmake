file(REMOVE_RECURSE
  "CMakeFiles/fig3_entanglement.dir/fig3_entanglement.cpp.o"
  "CMakeFiles/fig3_entanglement.dir/fig3_entanglement.cpp.o.d"
  "fig3_entanglement"
  "fig3_entanglement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_entanglement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
