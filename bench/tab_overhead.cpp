// §6.2 — Performance impact of psbox, plus the design-choice ablations from
// DESIGN.md §4.
//
// Latency increase: all apps may see extra latency on hardware access that
// triggers a resource-balloon switch. Paper: CPU scheduling latency up by
// tens of µs (task shootdown); GPU/DSP command dispatch up by ~1.8 ms /
// ~100 ms; WiFi TX sometimes hundreds of ms. Throughput loss: total hardware
// throughput drops from lost sharing (paper: 0.9 % WiFi … 9.8 % CPU).
//
// Ablations:
//   * no loan billing/repayment  — the balloon's cost leaks to co-runners;
//   * no power-state virtualisation — the sandbox's observed energy varies
//     with co-runners' DVFS residue (consistency broken).

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"

namespace psbox {
namespace {

struct LatencyRow {
  std::string component;
  double base;
  double with_psbox;
  std::string unit;
  double tput_base;
  double tput_psbox;
};

template <typename SpawnMain, typename SpawnCo>
LatencyRow MeasureComponent(
    const std::string& name, SpawnMain spawn_main, SpawnCo spawn_co,
    const std::function<double(Stack&)>& latency, const std::string& unit,
    TimeNs window,
    const std::function<double(Stack&, const AppHandle&, const AppHandle&)>&
        throughput = {}) {
  auto run = [&](bool sandbox) {
    Stack s;
    AppOptions main_opts;
    main_opts.deadline = window;
    main_opts.use_psbox = sandbox;
    AppHandle main_app = spawn_main(s.kernel, main_opts);
    AppOptions co_opts;
    co_opts.deadline = window;
    AppHandle co_app = spawn_co(s.kernel, co_opts);
    s.kernel.RunUntil(window + Millis(20));
    const double lat = latency(s);
    const double tput =
        throughput ? throughput(s, main_app, co_app)
                   : static_cast<double>(main_app.stats->iterations +
                                         co_app.stats->iterations);
    return std::make_pair(lat, tput);
  };
  const auto [base_lat, base_tput] = run(false);
  const auto [psbox_lat, psbox_tput] = run(true);
  return {name, base_lat, psbox_lat, unit, base_tput, psbox_tput};
}

void LatencyAndThroughput() {
  std::printf("\n=== §6.2: latency increase & total throughput loss ===\n");
  std::vector<LatencyRow> rows;

  rows.push_back(MeasureComponent(
      "CPU (sched wake latency)",
      [](Kernel& k, AppOptions o) {
        o.threads = 2;  // OpenCV calib3d is multithreaded; balloons fill both cores
        return SpawnCalib3d(k, "calib3d", o);
      },
      [](Kernel& k, AppOptions o) {
        o.threads = 2;  // PARSEC bodytrack is multithreaded too
        return SpawnBodytrack(k, "bodytrack", o);
      },
      [](Stack& s) {
        const auto& st = s.kernel.scheduler().stats();
        return st.wakeups > 0
                   ? ToMicros(st.total_wake_latency) / static_cast<double>(st.wakeups)
                   : 0.0;
      },
      "us", Seconds(4)));

  rows.push_back(MeasureComponent(
      "GPU (cmd dispatch latency)",
      [](Kernel& k, AppOptions o) { return SpawnGpuBrowser(k, "browser", o); },
      [](Kernel& k, AppOptions o) { return SpawnMagic(k, "magic", o); },
      [](Stack& s) {
        const auto& st = s.kernel.gpu_driver().stats();
        return st.submitted > 0 ? ToMillis(st.total_dispatch_latency) /
                                      static_cast<double>(st.submitted)
                                : 0.0;
      },
      "ms", Seconds(4)));

  rows.push_back(MeasureComponent(
      "DSP (cmd dispatch latency)",
      [](Kernel& k, AppOptions o) { return SpawnDgemm(k, "dgemm", o); },
      [](Kernel& k, AppOptions o) { return SpawnSgemm(k, "sgemm", o); },
      [](Stack& s) {
        const auto& st = s.kernel.dsp_driver().stats();
        return st.submitted > 0 ? ToMillis(st.total_dispatch_latency) /
                                      static_cast<double>(st.submitted)
                                : 0.0;
      },
      "ms", Seconds(4)));

  rows.push_back(MeasureComponent(
      "WiFi (pkt TX latency)",
      [](Kernel& k, AppOptions o) { return SpawnWget(k, "wget", o); },
      [](Kernel& k, AppOptions o) { return SpawnScp(k, "scp", o); },
      [](Stack& s) {
        const auto& st = s.kernel.net().stats();
        return st.tx_frames > 0 ? ToMillis(st.total_tx_latency) /
                                      static_cast<double>(st.tx_frames)
                                : 0.0;
      },
      "ms", Seconds(4),
      [](Stack& s, const AppHandle& a, const AppHandle& b) {
        // WiFi throughput is bytes on the medium, not iterations.
        return static_cast<double>(s.kernel.net().BytesDelivered(a.app) +
                                   s.kernel.net().BytesDelivered(b.app));
      }));

  TextTable table({"component", "latency w/o psbox", "latency w/ psbox",
                   "total tput loss"});
  for (const LatencyRow& r : rows) {
    table.AddRow({r.component, FormatDouble(r.base, 2) + " " + r.unit,
                  FormatDouble(r.with_psbox, 2) + " " + r.unit,
                  Pct(-PercentDelta(r.tput_base, r.tput_psbox) * -1.0)});
  }
  table.Print(std::cout);
  std::printf("Expected shape: CPU adds tens of us (shootdown IPIs); GPU adds\n"
              "~ms; DSP adds tens of ms (long balloons); WiFi can add 100s of\n"
              "ms (balloons span whole transfers+tails). Total loss is small.\n");
}

void AblationFairness() {
  std::printf("\n=== Ablation: charging lost sharing opportunities (CPU) ===\n");
  auto run = [&](bool charge) {
    KernelConfig cfg;
    cfg.sched.bill_balloon_occupancy = charge;
    cfg.sched.repay_loans = charge;
    Stack s({}, cfg);
    std::vector<AppHandle> handles;
    for (int i = 0; i < 3; ++i) {
      AppOptions opts;
      opts.deadline = Seconds(4);
      opts.use_psbox = i == 2;
      handles.push_back(SpawnCalib3d(s.kernel, "calib" + std::to_string(i), opts));
    }
    s.kernel.RunUntil(Seconds(4) + Millis(20));
    std::vector<double> out;
    for (auto& h : handles) {
      out.push_back(static_cast<double>(h.stats->iterations));
    }
    return out;
  };
  const auto with_charge = run(true);
  const auto without = run(false);
  TextTable table({"instance", "paper design (frames)", "no billing/loans (frames)"});
  for (size_t i = 0; i < 3; ++i) {
    table.AddRow({"calib" + std::to_string(i) + (i == 2 ? "*" : ""),
                  FormatDouble(with_charge[i], 0), FormatDouble(without[i], 0)});
  }
  table.Print(std::cout);
  std::printf("Expected shape: without billing the lost opportunities, the\n"
              "sandboxed app* keeps (or gains) throughput while the others\n"
              "absorb the balloon cost — fairness is broken.\n");
}

void AblationStateVirt() {
  std::printf("\n=== Ablation: power state virtualisation (CPU, Fig 6-style) ===\n");
  auto observed = [&](bool virt, bool co_run) {
    KernelConfig cfg;
    cfg.virtualize_cpu_freq = virt;
    Stack s({}, cfg);
    AppOptions opts;
    opts.iterations = 80;
    opts.use_psbox = true;
    AppHandle app = SpawnDedup(s.kernel, "dedup", opts);
    if (co_run) {
      AppOptions co;
      SpawnBodytrack(s.kernel, "bodytrack", co);
    }
    RunUntilAppDone(s, app.app, Seconds(20));
    return app.stats->psbox_energy;
  };
  TextTable table({"configuration", "dedup alone", "dedup w/ bodytrack", "delta"});
  for (bool virt : {true, false}) {
    const Joules alone = observed(virt, false);
    const Joules corun = observed(virt, true);
    table.AddRow({virt ? "virtualised (paper design)" : "no virtualisation",
                  Mj(alone), Mj(corun), Pct(PercentDelta(alone, corun))});
  }
  table.Print(std::cout);
  std::printf("Expected shape: without per-psbox DVFS contexts the co-runner's\n"
              "lingering frequency leaks into the sandbox's observation.\n");
}

}  // namespace
}  // namespace psbox

int main() {
  std::printf("§6.2 performance impact + DESIGN.md ablations.\n");
  psbox::LatencyAndThroughput();
  psbox::AblationFairness();
  psbox::AblationStateVirt();
  return 0;
}
