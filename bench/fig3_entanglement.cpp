// Figure 3 — Examples of power entanglement (§2.3).
//
//   (a) Total CPU power of two co-running process instances, one per core,
//       vs 2x the power of one instance running alone: the doubled estimate
//       over-shoots because concurrently-active cores share the rail.
//   (b) A sequence of three GPU commands and the total GPU power: command 2
//       overlaps command 1 in time, so commands 2 and 3 (same type) show
//       different apparent power/energy to the CPU side.
//   (c) CPU power of the same app when it runs after an idle period vs right
//       after a busy workload: the DVFS governor's lingering operating point
//       changes the power of the successor.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/trace_util.h"

namespace psbox {
namespace {

// --- (a) spatial concurrency ------------------------------------------------

void PanelA() {
  std::printf("\n--- Fig 3a: 2 instances vs doubled 1 instance (CPU rail) ---\n");
  auto run = [](int instances) {
    Stack s;
    for (int i = 0; i < instances; ++i) {
      AppOptions opts;
      opts.deadline = Seconds(1);
      SpawnBodytrack(s.kernel, "inst" + std::to_string(i), opts);
    }
    s.kernel.RunUntil(Seconds(1));
    // Mean power over the steady phase (skip the governor ramp).
    return s.board.cpu_rail().trace().MeanOver(Millis(200), Millis(900));
  };
  const Watts one = run(1);
  const Watts two = run(2);
  TextTable table({"configuration", "mean CPU power", "vs naive 2x"});
  table.AddRow({"1 instance", FormatDouble(one, 3) + " W", ""});
  table.AddRow({"1 instance doubled (naive)", FormatDouble(2 * one, 3) + " W", "(ref)"});
  table.AddRow({"2 instances (measured)", FormatDouble(two, 3) + " W",
                Pct(PercentDelta(2 * one, two))});
  table.Print(std::cout);
  std::printf("Expected shape: measured 2-instance power < doubled estimate\n"
              "(entangled active cores share uncore power and rail headroom).\n");
}

// --- (b) blurry request boundary ---------------------------------------------

void PanelB() {
  std::printf("\n--- Fig 3b: three GPU commands, cmd 2 overlaps cmd 1 ---\n");
  Board board;
  AccelDevice& gpu = board.gpu();
  struct Done {
    uint64_t id;
    TimeNs dispatch;
    TimeNs end;
  };
  std::vector<Done> done;
  gpu.set_on_complete([&](const AccelCompletion& c) {
    done.push_back({c.cmd.id, c.dispatch_time, c.end_time});
  });
  // Command 1: long type-A command. Commands 2 and 3: same type B.
  AccelCommand c1{1, 0, /*type=*/1, 8 * kMillisecond, 0.8};
  AccelCommand c2{2, 1, /*type=*/2, 5 * kMillisecond, 0.6};
  AccelCommand c3{3, 1, /*type=*/2, 5 * kMillisecond, 0.6};
  board.sim().ScheduleAt(Millis(1), [&] { gpu.Dispatch(c1); });
  board.sim().ScheduleAt(Millis(4), [&] { gpu.Dispatch(c2); });  // overlaps c1
  board.sim().ScheduleAt(Millis(16), [&] { gpu.Dispatch(c3); }); // runs alone
  board.sim().RunUntil(Millis(30));

  TextTable table({"command", "span (CPU-visible)", "apparent energy", "note"});
  for (const Done& d : done) {
    const Joules e = board.gpu_rail().EnergyOver(d.dispatch, d.end) -
                     board.gpu_rail().idle_power() * ToSeconds(d.end - d.dispatch);
    std::string note;
    if (d.id == 1) {
      note = "type A";
    } else if (d.id == 2) {
      note = "type B, overlaps cmd 1";
    } else {
      note = "type B, runs alone";
    }
    table.AddRow({"cmd " + std::to_string(d.id),
                  FormatDouble(ToMillis(d.end - d.dispatch), 2) + " ms",
                  Mj(e), note});
  }
  table.Print(std::cout);
  const auto series = DownsampleTrace(board.gpu_rail().trace(), 0, Millis(25), 60);
  std::printf("GPU power 0-25 ms: [%s]\n", Sparkline(series).c_str());
  std::printf("Expected shape: cmds 2 and 3 are the same type, but cmd 2's\n"
              "span/energy is entangled with cmd 1 (stretched + superposed).\n");
}

// --- (c) lingering power state ------------------------------------------------

void PanelC() {
  std::printf("\n--- Fig 3c: exec after idle vs exec after busy (CPU rail) ---\n");
  auto run = [](bool predecessor) {
    Stack s;
    if (predecessor) {
      AppOptions busy;
      busy.deadline = Millis(500);
      SpawnBodytrack(s.kernel, "predecessor", busy);
    }
    s.kernel.RunUntil(Millis(500));
    AppOptions opts;
    opts.iterations = 30;
    AppHandle app = SpawnDedup(s.kernel, "app", opts);
    RunUntilAppDone(s, app.app, Seconds(3));
    const TimeNs t0 = app.stats->start_time;
    // Power over the app's first 40 ms: within the governor's decay window,
    // where the lingering OPP from the predecessor dominates.
    return s.board.cpu_rail().trace().MeanOver(t0, t0 + Millis(40));
  };
  const Watts after_idle = run(false);
  const Watts after_busy = run(true);
  TextTable table({"scenario", "mean power (first 40 ms)"});
  table.AddRow({"exec after idle", FormatDouble(after_idle, 3) + " W"});
  table.AddRow({"exec after busy", FormatDouble(after_busy, 3) + " W"});
  table.Print(std::cout);
  std::printf("Expected shape: after-busy draws noticeably more power — the\n"
              "governor's raised clock lingers into the successor (Fig 3c).\n");
}

}  // namespace
}  // namespace psbox

int main() {
  std::printf("Figure 3: the three causes of power entanglement.\n");
  psbox::PanelA();
  psbox::PanelB();
  psbox::PanelC();
  return 0;
}
