// StepTrace hot-path microbench: cursored lookups + prefix-sum energy vs the
// pre-optimisation implementation (per-query binary search, range-scan
// integrals), which is embedded below as NaiveTrace.
//
//   ./steptrace_sampling [--json PATH] [--steps N]
//
// Four cases over an N-step trace (default 1e5, the trace size a busy rail
// accumulates in tens of simulated seconds):
//   valueat_sweep   — monotone ValueAt probes, the virtual meter's pattern;
//   integral_window — advancing fixed-width energy windows (power_splitter);
//   resample_100khz — one 100 kHz Resample over the whole trace, the DAQ
//                     emulation path (the headline case: the cursor makes it
//                     amortized O(1) per sample instead of O(log n));
//   trim_long_run   — sustained append + windowed queries with TrimBefore
//                     keeping the working set bounded, vs the same load on
//                     an unbounded naive trace.
// Each case cross-checks the two implementations' results, then reports
// wall time and speedup to stdout and machine-readable JSON (default
// BENCH_steptrace.json) for CI trend tracking.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/csv.h"
#include "src/base/rng.h"
#include "src/base/step_trace.h"

namespace psbox {
namespace {

// The pre-optimisation StepTrace, verbatim semantics: every lookup is a full
// binary search, every integral a range scan, no cursor, no prefix sums.
class NaiveTrace {
 public:
  struct Step {
    TimeNs time;
    double value;
  };

  void Set(TimeNs time, double value) {
    if (!steps_.empty()) {
      if (steps_.back().time == time) {
        steps_.back().value = value;
        return;
      }
      if (steps_.back().value == value) {
        return;
      }
    }
    steps_.push_back({time, value});
  }

  double ValueAt(TimeNs time) const {
    const ptrdiff_t idx = FindIndex(time);
    return idx < 0 ? 0.0 : steps_[static_cast<size_t>(idx)].value;
  }

  double IntegralOver(TimeNs t0, TimeNs t1) const {
    if (steps_.empty() || t0 == t1) {
      return 0.0;
    }
    double total = 0.0;
    ptrdiff_t idx = FindIndex(t0);
    TimeNs cursor = t0;
    while (cursor < t1) {
      const double value = idx < 0 ? 0.0 : steps_[static_cast<size_t>(idx)].value;
      const TimeNs next_step = (static_cast<size_t>(idx + 1) < steps_.size())
                                   ? steps_[static_cast<size_t>(idx + 1)].time
                                   : t1;
      const TimeNs segment_end = std::min(next_step, t1);
      total += value * ToSeconds(segment_end - cursor);
      cursor = segment_end;
      ++idx;
    }
    return total;
  }

  std::vector<double> Resample(TimeNs t0, TimeNs t1, DurationNs period) const {
    std::vector<double> out;
    out.reserve(static_cast<size_t>(std::max<int64_t>(0, (t1 - t0) / period)));
    for (TimeNs t = t0; t < t1; t += period) {
      out.push_back(ValueAt(t));
    }
    return out;
  }

  size_t size() const { return steps_.size(); }

 private:
  ptrdiff_t FindIndex(TimeNs time) const {
    auto it = std::upper_bound(steps_.begin(), steps_.end(), time,
                               [](TimeNs t, const Step& s) { return t < s.time; });
    return static_cast<ptrdiff_t>(it - steps_.begin()) - 1;
  }

  std::vector<Step> steps_;
};

double MillisBetween(std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

struct CaseResult {
  std::string name;
  uint64_t work = 0;  // queries / samples / appends
  double naive_ms = 0.0;
  double fast_ms = 0.0;
  double speedup() const { return fast_ms > 0.0 ? naive_ms / fast_ms : 0.0; }
};

// A power-rail-like trace: steps spaced 100-900 us apart, values wandering in
// [0.1, 4.0] W.
void BuildTraces(size_t steps, StepTrace* fast, NaiveTrace* naive, TimeNs* end) {
  Rng rng(0x57e9);
  TimeNs when = 0;
  double value = 1.0;
  for (size_t i = 0; i < steps; ++i) {
    value = std::min(4.0, std::max(0.1, value + rng.Uniform(-0.3, 0.3)));
    fast->Set(when, value);
    naive->Set(when, value);
    when += rng.UniformInt(100 * kMicrosecond, 900 * kMicrosecond);
  }
  *end = when;
}

CaseResult RunValueAtSweep(const StepTrace& fast, const NaiveTrace& naive,
                           TimeNs end) {
  CaseResult r;
  r.name = "valueat_sweep";
  r.work = 2'000'000;
  const DurationNs stride = std::max<DurationNs>(1, end / static_cast<TimeNs>(r.work));
  double sum_naive = 0.0;
  double sum_fast = 0.0;

  auto t0 = std::chrono::steady_clock::now();
  for (TimeNs t = 0; t < end; t += stride) {
    sum_naive += naive.ValueAt(t);
  }
  auto t1 = std::chrono::steady_clock::now();
  for (TimeNs t = 0; t < end; t += stride) {
    sum_fast += fast.ValueAt(t);
  }
  auto t2 = std::chrono::steady_clock::now();

  PSBOX_CHECK(sum_fast == sum_naive);  // lookups are exact, not just close
  r.naive_ms = MillisBetween(t0, t1);
  r.fast_ms = MillisBetween(t1, t2);
  return r;
}

CaseResult RunIntegralWindow(const StepTrace& fast, const NaiveTrace& naive,
                             TimeNs end) {
  CaseResult r;
  r.name = "integral_window";
  r.work = 100'000;
  const DurationNs window = 100 * kMillisecond;
  const DurationNs stride =
      std::max<DurationNs>(1, (end - window) / static_cast<TimeNs>(r.work));
  double sum_naive = 0.0;
  double sum_fast = 0.0;

  auto t0 = std::chrono::steady_clock::now();
  for (TimeNs t = 0; t + window < end; t += stride) {
    sum_naive += naive.IntegralOver(t, t + window);
  }
  auto t1 = std::chrono::steady_clock::now();
  for (TimeNs t = 0; t + window < end; t += stride) {
    sum_fast += fast.IntegralOver(t, t + window);
  }
  auto t2 = std::chrono::steady_clock::now();

  PSBOX_CHECK_LE(std::abs(sum_fast - sum_naive), 1e-6 * std::abs(sum_naive));
  r.naive_ms = MillisBetween(t0, t1);
  r.fast_ms = MillisBetween(t1, t2);
  return r;
}

CaseResult RunResample100kHz(const StepTrace& fast, const NaiveTrace& naive,
                             TimeNs end) {
  CaseResult r;
  r.name = "resample_100khz";
  const DurationNs period = 10 * kMicrosecond;  // 100 kHz DAQ
  r.work = static_cast<uint64_t>(end / period);

  auto t0 = std::chrono::steady_clock::now();
  const std::vector<double> got_naive = naive.Resample(0, end, period);
  auto t1 = std::chrono::steady_clock::now();
  const std::vector<double> got_fast = fast.Resample(0, end, period);
  auto t2 = std::chrono::steady_clock::now();

  PSBOX_CHECK_EQ(got_fast.size(), got_naive.size());
  for (size_t i = 0; i < got_fast.size(); i += 97) {
    PSBOX_CHECK(got_fast[i] == got_naive[i]);
  }
  r.naive_ms = MillisBetween(t0, t1);
  r.fast_ms = MillisBetween(t1, t2);
  return r;
}

// Sustained load: append steps while querying a trailing energy window, the
// shape of a long fleet run. The fast trace trims behind a 1-second
// retention horizon every 10k appends; the naive trace grows forever.
CaseResult RunTrimLongRun(size_t* retained, uint64_t* trimmed,
                          size_t* unbounded) {
  CaseResult r;
  r.name = "trim_long_run";
  r.work = 2'000'000;
  const DurationNs retention = Seconds(1);
  const DurationNs spacing = 50 * kMicrosecond;

  auto drive = [&](auto& trace, auto&& trim_at) -> double {
    Rng rng(0x10e6);
    double sink = 0.0;
    TimeNs when = 0;
    double value = 1.0;
    for (uint64_t i = 0; i < r.work; ++i) {
      value = std::min(4.0, std::max(0.1, value + rng.Uniform(-0.3, 0.3)));
      trace.Set(when, value);
      when += spacing;
      if (i % 1000 == 0 && when > retention) {
        sink += trace.IntegralOver(when - retention, when);
      }
      if (i % 10000 == 0 && when > retention) {
        trim_at(when - retention);
      }
    }
    return sink;
  };

  NaiveTrace naive;
  auto t0 = std::chrono::steady_clock::now();
  const double sum_naive = drive(naive, [](TimeNs) {});  // unbounded
  auto t1 = std::chrono::steady_clock::now();
  StepTrace fast;
  const double sum_fast =
      drive(fast, [&fast](TimeNs horizon) { fast.TrimBefore(horizon); });
  auto t2 = std::chrono::steady_clock::now();

  PSBOX_CHECK_LE(std::abs(sum_fast - sum_naive), 1e-6 * std::abs(sum_naive));
  r.naive_ms = MillisBetween(t0, t1);
  r.fast_ms = MillisBetween(t1, t2);
  *retained = fast.size();
  *trimmed = fast.trimmed_steps();
  *unbounded = naive.size();
  return r;
}

}  // namespace
}  // namespace psbox

int main(int argc, char** argv) {
  using namespace psbox;
  std::string json_path = "BENCH_steptrace.json";
  size_t steps = 100'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--steps" && i + 1 < argc) {
      steps = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "usage: steptrace_sampling [--json PATH] [--steps N]\n");
      return 2;
    }
  }

  StepTrace fast;
  NaiveTrace naive;
  TimeNs end = 0;
  BuildTraces(steps, &fast, &naive, &end);
  std::printf("steptrace_sampling: %zu-step trace spanning %.1f simulated s\n\n",
              fast.size(), ToSeconds(end));

  std::vector<CaseResult> results;
  results.push_back(RunValueAtSweep(fast, naive, end));
  results.push_back(RunIntegralWindow(fast, naive, end));
  results.push_back(RunResample100kHz(fast, naive, end));
  size_t retained = 0;
  uint64_t trimmed = 0;
  size_t unbounded = 0;
  results.push_back(RunTrimLongRun(&retained, &trimmed, &unbounded));

  TextTable table({"case", "work", "naive (ms)", "cursored (ms)", "speedup"});
  for (const CaseResult& r : results) {
    table.AddRow({r.name, std::to_string(r.work), FormatDouble(r.naive_ms, 2),
                  FormatDouble(r.fast_ms, 2),
                  FormatDouble(r.speedup(), 2) + "x"});
  }
  table.Print(std::cout);
  std::printf(
      "\ntrim_long_run working set: %zu steps retained (%llu trimmed) vs %zu "
      "unbounded\n",
      retained, static_cast<unsigned long long>(trimmed), unbounded);

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"steptrace_sampling\",\n  \"trace_steps\": " << steps
       << ",\n  \"trim_retained_steps\": " << retained
       << ",\n  \"trim_trimmed_steps\": " << trimmed
       << ",\n  \"unbounded_steps\": " << unbounded << ",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    json << "    {\"case\": \"" << r.name << "\", \"work\": " << r.work
         << ", \"naive_ms\": " << FormatDouble(r.naive_ms, 3)
         << ", \"fast_ms\": " << FormatDouble(r.fast_ms, 3)
         << ", \"speedup\": " << FormatDouble(r.speedup(), 3) << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nJSON written to %s\n", json_path.c_str());
  return 0;
}
