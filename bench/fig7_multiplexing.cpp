// Figure 7 — Resource multiplexing and the resultant system power, before
// and after one app (*) enters its psbox.
//
//   (a)/(b): dual-core CPU schedule + power, calib3d* with bodytrack. With
//   psbox, calib3d runs in spatial balloons: while it holds the cluster the
//   other core is forced idle (lower power), and outside the balloons the
//   kernel multiplexes the other apps freely as usual.
//   (c)/(d): DSP commands + power, dgemm* with sgemm and monte. With psbox,
//   dgemm's commands execute in temporal balloons that never overlap other
//   apps' commands.
//
// Timelines are printed as ASCII tracks (one char per bin).

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/analysis/trace_util.h"

namespace psbox {
namespace {

constexpr size_t kBins = 76;

// Renders a per-core schedule trace as one char per bin: '1'/'2'/... = app,
// '.' = idle, '#' = balloon dummy (forced idle).
std::string ScheduleTrack(const StepTrace& trace, TimeNs t0, TimeNs t1,
                          const std::vector<AppId>& apps) {
  std::string out;
  const DurationNs width = (t1 - t0) / static_cast<DurationNs>(kBins);
  for (size_t i = 0; i < kBins; ++i) {
    const TimeNs t = t0 + static_cast<DurationNs>(i) * width + width / 2;
    const auto app = static_cast<AppId>(trace.ValueAt(t));
    char c = '.';
    if (app == kIdleApp) {
      c = '#';
    } else {
      for (size_t k = 0; k < apps.size(); ++k) {
        if (apps[k] == app) {
          c = static_cast<char>('1' + k);
        }
      }
    }
    out += c;
  }
  return out;
}

// Renders per-app accelerator occupancy from the usage ledger.
std::string AccelTrack(const std::vector<UsageRecord>& records, AppId app,
                       TimeNs t0, TimeNs t1) {
  std::string out(kBins, '.');
  const DurationNs width = (t1 - t0) / static_cast<DurationNs>(kBins);
  for (const UsageRecord& r : records) {
    if (r.app != app) {
      continue;
    }
    for (size_t i = 0; i < kBins; ++i) {
      const TimeNs t = t0 + static_cast<DurationNs>(i) * width + width / 2;
      if (t >= r.begin && t < r.end) {
        out[i] = '=';
      }
    }
  }
  return out;
}

void CpuPanel(bool with_psbox) {
  Stack s;
  AppOptions calib_opts;
  calib_opts.deadline = Seconds(1);
  calib_opts.use_psbox = with_psbox;
  AppHandle calib = SpawnCalib3d(s.kernel, "calib3d", calib_opts);
  AppOptions body_opts;
  body_opts.deadline = Seconds(1);
  AppHandle body = SpawnBodytrack(s.kernel, "bodytrack", body_opts);
  s.kernel.RunUntil(Seconds(1));

  const TimeNs t0 = Millis(500);
  const TimeNs t1 = Millis(650);
  std::printf("\n--- Fig 7%s: dual-core CPU %s psbox (window %lld-%lld ms) ---\n",
              with_psbox ? "b" : "a", with_psbox ? "w/" : "w/o",
              static_cast<long long>(ToMillis(t0)), static_cast<long long>(ToMillis(t1)));
  std::printf("legend: 1=calib3d%s 2=bodytrack .=idle #=balloon dummy (forced idle)\n",
              with_psbox ? "*" : "");
  for (CoreId c = 0; c < s.kernel.scheduler().num_cores(); ++c) {
    std::printf("core%d [%s]\n", c,
                ScheduleTrack(s.kernel.scheduler().ScheduleTrace(c), t0, t1,
                              {calib.app, body.app})
                    .c_str());
  }
  const auto power = DownsampleTrace(s.board.cpu_rail().trace(), t0, t1, kBins);
  std::printf("power [%s] peak %.2f W\n", Sparkline(power).c_str(),
              *std::max_element(power.begin(), power.end()));
}

void DspPanel(bool with_psbox) {
  Stack s;
  AppOptions dgemm_opts;
  dgemm_opts.deadline = Seconds(3);
  dgemm_opts.use_psbox = with_psbox;
  AppHandle dgemm = SpawnDgemm(s.kernel, "dgemm", dgemm_opts);
  AppOptions other;
  other.deadline = Seconds(3);
  AppHandle sgemm = SpawnSgemm(s.kernel, "sgemm", other);
  AppHandle monte = SpawnMonte(s.kernel, "monte", other);
  s.kernel.RunUntil(Seconds(3));

  const TimeNs t0 = Seconds(1);
  const TimeNs t1 = Seconds(1) + Millis(600);
  std::printf("\n--- Fig 7%s: DSP commands %s psbox (window %lld-%lld ms) ---\n",
              with_psbox ? "d" : "c", with_psbox ? "w/" : "w/o",
              static_cast<long long>(ToMillis(t0)), static_cast<long long>(ToMillis(t1)));
  const auto& records = s.kernel.ledger().records(HwComponent::kDsp);
  std::printf("dgemm%s [%s]\n", with_psbox ? "*" : " ",
              AccelTrack(records, dgemm.app, t0, t1).c_str());
  std::printf("sgemm  [%s]\n", AccelTrack(records, sgemm.app, t0, t1).c_str());
  std::printf("monte  [%s]\n", AccelTrack(records, monte.app, t0, t1).c_str());
  const auto power = DownsampleTrace(s.board.dsp_rail().trace(), t0, t1, kBins);
  std::printf("power  [%s] peak %.2f W\n", Sparkline(power).c_str(),
              *std::max_element(power.begin(), power.end()));
}

}  // namespace
}  // namespace psbox

int main() {
  std::printf("Figure 7: resource balloons in action. Expected shape: with\n"
              "psbox the sandboxed app's occupancy never overlaps others';\n"
              "on the CPU the peer core is forced idle during its balloons.\n");
  psbox::CpuPanel(false);
  psbox::CpuPanel(true);
  psbox::DspPanel(false);
  psbox::DspPanel(true);
  return 0;
}
