// Shared scaffolding for the paper-reproduction benches.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <functional>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/csv.h"
#include "src/base/stats.h"
#include "src/hw/board.h"
#include "src/kernel/kernel.h"
#include "src/psbox/psbox_manager.h"
#include "src/workloads/table5_apps.h"

namespace psbox {

// A full simulated system: board + kernel + psbox manager.
struct Stack {
  Board board;
  Kernel kernel;
  PsboxManager manager;

  explicit Stack(BoardConfig board_cfg = {}, KernelConfig kernel_cfg = {})
      : board(board_cfg), kernel(&board, kernel_cfg), manager(&kernel) {}
};

// Advances the simulation until |app| has finished (all tasks exited) or
// |limit| is reached; returns the finish time.
inline TimeNs RunUntilAppDone(Stack& s, AppId app, TimeNs limit) {
  while (!s.kernel.AppFinished(app) && s.kernel.Now() < limit) {
    s.kernel.RunUntil(s.kernel.Now() + 10 * kMillisecond);
  }
  PSBOX_CHECK(s.kernel.AppFinished(app));
  return s.kernel.Now();
}

// An app factory bound to everything but the kernel, so scenarios can be
// described as data.
using AppFactory = std::function<AppHandle(Kernel&, AppOptions)>;

inline std::string Mj(Joules j) { return FormatDouble(j * 1e3, 1) + " mJ"; }
inline std::string Pct(double p) {
  return (p >= 0 ? "+" : "") + FormatDouble(p, 1) + "%";
}

}  // namespace psbox

#endif  // BENCH_BENCH_COMMON_H_
