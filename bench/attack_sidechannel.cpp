// §2.5 — Power side channel: inferring the victim browser's website from
// GPU power, and how psbox closes the channel.
//
// Training: the attacker records labelled GPU power traces while the victim
// browser opens each of the Alexa-top-10 websites alone. Probing: the victim
// opens a random website while the attacker co-runs a light camouflage GPU
// workload and observes power, then infers the website as the 1-NN reference
// under DTW distance.
//
//   * Without psbox the attacker reads the whole GPU rail (system power
//     metering): paper success rate 60 % = 6x random guess (10 %).
//   * With psbox enforced as the only way to observe power, the attacker
//     only sees its own sandboxed power plus idle filler: success collapses
//     to ~random.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/analysis/trace_util.h"
#include "src/attack/side_channel_attacker.h"

namespace psbox {
namespace {

constexpr TimeNs kObservation = Millis(450);
constexpr size_t kTraceBins = 120;
constexpr int kProbesPerSite = 5;

std::string SiteLabel(int site) { return "site" + std::to_string(site); }

// One training run: victim alone, whole-rail observation.
std::vector<double> TrainTrace(int site) {
  BoardConfig cfg;
  cfg.seed = 0x7ea1 + static_cast<uint64_t>(site);
  Stack s(cfg);
  AppOptions opts;
  SpawnWebsiteVisit(s.kernel, "victim", site, opts);
  s.kernel.RunUntil(kObservation);
  auto samples = s.board.meter().SampleRail(s.board.gpu_rail(), 0, kObservation);
  return DownsampleSamples(samples, 0, kObservation, kTraceBins);
}

// One probe run: victim + camouflaged attacker; returns (whole-rail trace,
// psbox-confined trace).
std::pair<std::vector<double>, std::vector<double>> ProbeTraces(int site, int rep) {
  BoardConfig cfg;
  cfg.seed = 0xa77ac + static_cast<uint64_t>(site * 100 + rep);
  Stack s(cfg);
  // The attacker cannot know exactly when the page load begins; the victim
  // starts at an unknown offset within the observation window.
  Rng delay_rng(cfg.seed ^ 0xde1a);
  const DurationNs victim_delay = delay_rng.UniformInt(0, 5) * kMillisecond;
  s.kernel.sim().ScheduleAfter(victim_delay, [&s, site] {
    AppOptions victim_opts;
    SpawnWebsiteVisit(s.kernel, "victim", site, victim_opts);
  });
  AppOptions attacker_opts;
  attacker_opts.deadline = kObservation;
  AppHandle attacker = SpawnAttackerCamouflage(s.kernel, "attacker", attacker_opts);
  // The psbox world: the attacker may only observe power from inside its own
  // sandbox bound to the GPU.
  const int box = s.manager.CreateBox(attacker.app, {HwComponent::kGpu});
  s.manager.EnterBox(box);
  s.kernel.RunUntil(kObservation);

  auto rail_samples = s.board.meter().SampleRail(s.board.gpu_rail(), 0, kObservation);
  auto rail_trace = DownsampleSamples(rail_samples, 0, kObservation, kTraceBins);

  Rng sample_rng(cfg.seed ^ 0x5a5a);
  auto boxed_samples = s.manager.sandbox(box).ObservedSamples(
      s.board.gpu_rail(), HwComponent::kGpu, 0, kObservation,
      s.board.config().meter.sample_period, s.board.config().meter.noise_stddev,
      &sample_rng);
  auto boxed_trace = DownsampleSamples(boxed_samples, 0, kObservation, kTraceBins);
  return {rail_trace, boxed_trace};
}

}  // namespace
}  // namespace psbox

int main() {
  using namespace psbox;
  std::printf("§2.5 GPU power side channel: website inference via DTW 1-NN.\n");

  SideChannelAttacker attacker;
  for (int site = 0; site < kNumWebsites; ++site) {
    attacker.Train(SiteLabel(site), TrainTrace(site));
  }
  std::printf("trained on %zu labelled traces (%d websites)\n",
              attacker.reference_count(), kNumWebsites);

  std::vector<std::pair<std::string, std::vector<double>>> rail_probes;
  std::vector<std::pair<std::string, std::vector<double>>> boxed_probes;
  for (int site = 0; site < kNumWebsites; ++site) {
    for (int rep = 0; rep < kProbesPerSite; ++rep) {
      auto [rail_trace, boxed_trace] = ProbeTraces(site, rep);
      rail_probes.emplace_back(SiteLabel(site), std::move(rail_trace));
      boxed_probes.emplace_back(SiteLabel(site), std::move(boxed_trace));
    }
  }

  const double rate_open = attacker.SuccessRate(rail_probes);
  const double rate_psbox = attacker.SuccessRate(boxed_probes);
  const double random_guess = 1.0 / kNumWebsites;

  std::printf("\nprobes: %zu (%d websites x %d repetitions)\n", rail_probes.size(),
              kNumWebsites, kProbesPerSite);
  std::printf("attacker success, system power metering (no psbox): %.0f%%  (%.1fx random)\n",
              rate_open * 100.0, rate_open / random_guess);
  std::printf("attacker success, psbox-confined observation:       %.0f%%  (%.1fx random)\n",
              rate_psbox * 100.0, rate_psbox / random_guess);
  std::printf("random guess baseline:                              %.0f%%\n",
              random_guess * 100.0);
  std::printf("\nExpected shape (paper): ~60%% = 6x random without insulation;\n"
              "~random once psbox is the only way to observe power.\n");
  return 0;
}
