// §2.5 — Power side channel: inferring the victim browser's website from
// GPU power, and how psbox closes the channel.
//
// Training: the attacker records labelled GPU power traces while the victim
// browser opens each of the Alexa-top-10 websites alone. Probing: the victim
// opens a random website while the attacker co-runs a light camouflage GPU
// workload and observes power, then infers the website as the 1-NN reference
// under DTW distance.
//
//   * Without psbox the attacker reads the whole GPU rail (system power
//     metering): paper success rate 60 % = 6x random guess (10 %).
//   * With psbox enforced as the only way to observe power, the attacker
//     only sees its own sandboxed power plus idle filler: success collapses
//     to ~random.

// Population-scale variant (second half of the output): the same probe runs
// again with the victim hidden inside generated background traffic at
// increasing arrival densities. Each density row reports the whole-rail
// inference accuracy — the open channel degrades as unrelated population
// apps pollute the rail, quantifying how much anonymity a crowd buys
// *without* psbox (and how psbox still beats it at every density).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/analysis/trace_util.h"
#include "src/attack/side_channel_attacker.h"
#include "src/popgen/app_catalog.h"
#include "src/popgen/population_generator.h"

namespace psbox {
namespace {

constexpr TimeNs kObservation = Millis(450);
constexpr size_t kTraceBins = 120;
constexpr int kProbesPerSite = 5;

std::string SiteLabel(int site) { return "site" + std::to_string(site); }

// One training run: victim alone, whole-rail observation.
std::vector<double> TrainTrace(int site) {
  BoardConfig cfg;
  cfg.seed = 0x7ea1 + static_cast<uint64_t>(site);
  Stack s(cfg);
  AppOptions opts;
  SpawnWebsiteVisit(s.kernel, "victim", site, opts);
  s.kernel.RunUntil(kObservation);
  auto samples = s.board.meter().SampleRail(s.board.gpu_rail(), 0, kObservation);
  return DownsampleSamples(samples, 0, kObservation, kTraceBins);
}

// One probe run: victim + camouflaged attacker; returns (whole-rail trace,
// psbox-confined trace).
std::pair<std::vector<double>, std::vector<double>> ProbeTraces(int site, int rep) {
  BoardConfig cfg;
  cfg.seed = 0xa77ac + static_cast<uint64_t>(site * 100 + rep);
  Stack s(cfg);
  // The attacker cannot know exactly when the page load begins; the victim
  // starts at an unknown offset within the observation window.
  Rng delay_rng(cfg.seed ^ 0xde1a);
  const DurationNs victim_delay = delay_rng.UniformInt(0, 5) * kMillisecond;
  s.kernel.sim().ScheduleAfter(victim_delay, [&s, site] {
    AppOptions victim_opts;
    SpawnWebsiteVisit(s.kernel, "victim", site, victim_opts);
  });
  AppOptions attacker_opts;
  attacker_opts.deadline = kObservation;
  AppHandle attacker = SpawnAttackerCamouflage(s.kernel, "attacker", attacker_opts);
  // The psbox world: the attacker may only observe power from inside its own
  // sandbox bound to the GPU.
  const int box = s.manager.CreateBox(attacker.app, {HwComponent::kGpu});
  s.manager.EnterBox(box);
  s.kernel.RunUntil(kObservation);

  auto rail_samples = s.board.meter().SampleRail(s.board.gpu_rail(), 0, kObservation);
  auto rail_trace = DownsampleSamples(rail_samples, 0, kObservation, kTraceBins);

  Rng sample_rng(cfg.seed ^ 0x5a5a);
  auto boxed_samples = s.manager.sandbox(box).ObservedSamples(
      s.board.gpu_rail(), HwComponent::kGpu, 0, kObservation,
      s.board.config().meter.sample_period, s.board.config().meter.noise_stddev,
      &sample_rng);
  auto boxed_trace = DownsampleSamples(boxed_samples, 0, kObservation, kTraceBins);
  return {rail_trace, boxed_trace};
}

// One probe at population density |rate_hz|: generated background arrivals
// spawn around the victim and the camouflaged attacker for the whole
// observation window. Returns (whole-rail trace, psbox-confined trace).
std::pair<std::vector<double>, std::vector<double>> ProbeTracesInPopulation(
    int site, int rep, double rate_hz) {
  BoardConfig cfg;
  cfg.seed = 0xbade + static_cast<uint64_t>(site * 100 + rep);
  Stack s(cfg);
  if (rate_hz > 0.0) {
    PopulationConfig pop;
    pop.seed = cfg.seed ^ 0x9e3779b97f4a7c15ull;
    pop.base_rate_hz = rate_hz;
    pop.tenants_per_board = 0;  // plain co-runners; no tenant nesting here
    PopulationGenerator gen(pop, pop.seed);
    for (GeneratedArrival a = gen.Next(); a.when < kObservation;
         a = gen.Next()) {
      const CatalogEntry& entry =
          AppCatalog()[static_cast<size_t>(a.catalog_index)];
      const std::string label = "bg" + std::to_string(a.seq);
      AppOptions opts;
      opts.iterations = a.iterations;
      const PopAppFactory factory = entry.factory;
      s.kernel.sim().ScheduleAt(a.when, [&s, factory, label, opts] {
        factory(s.kernel, label, opts);
      });
    }
  }
  Rng delay_rng(cfg.seed ^ 0xde1a);
  const DurationNs victim_delay = delay_rng.UniformInt(0, 5) * kMillisecond;
  s.kernel.sim().ScheduleAfter(victim_delay, [&s, site] {
    AppOptions victim_opts;
    SpawnWebsiteVisit(s.kernel, "victim", site, victim_opts);
  });
  AppOptions attacker_opts;
  attacker_opts.deadline = kObservation;
  AppHandle attacker = SpawnAttackerCamouflage(s.kernel, "attacker", attacker_opts);
  const int box = s.manager.CreateBox(attacker.app, {HwComponent::kGpu});
  s.manager.EnterBox(box);
  s.kernel.RunUntil(kObservation);

  auto rail_samples = s.board.meter().SampleRail(s.board.gpu_rail(), 0, kObservation);
  auto rail_trace = DownsampleSamples(rail_samples, 0, kObservation, kTraceBins);

  Rng sample_rng(cfg.seed ^ 0x5a5a);
  auto boxed_samples = s.manager.sandbox(box).ObservedSamples(
      s.board.gpu_rail(), HwComponent::kGpu, 0, kObservation,
      s.board.config().meter.sample_period, s.board.config().meter.noise_stddev,
      &sample_rng);
  auto boxed_trace = DownsampleSamples(boxed_samples, 0, kObservation, kTraceBins);
  return {rail_trace, boxed_trace};
}

}  // namespace
}  // namespace psbox

int main() {
  using namespace psbox;
  std::printf("§2.5 GPU power side channel: website inference via DTW 1-NN.\n");

  SideChannelAttacker attacker;
  for (int site = 0; site < kNumWebsites; ++site) {
    attacker.Train(SiteLabel(site), TrainTrace(site));
  }
  std::printf("trained on %zu labelled traces (%d websites)\n",
              attacker.reference_count(), kNumWebsites);

  std::vector<std::pair<std::string, std::vector<double>>> rail_probes;
  std::vector<std::pair<std::string, std::vector<double>>> boxed_probes;
  for (int site = 0; site < kNumWebsites; ++site) {
    for (int rep = 0; rep < kProbesPerSite; ++rep) {
      auto [rail_trace, boxed_trace] = ProbeTraces(site, rep);
      rail_probes.emplace_back(SiteLabel(site), std::move(rail_trace));
      boxed_probes.emplace_back(SiteLabel(site), std::move(boxed_trace));
    }
  }

  const double rate_open = attacker.SuccessRate(rail_probes);
  const double rate_psbox = attacker.SuccessRate(boxed_probes);
  const double random_guess = 1.0 / kNumWebsites;

  std::printf("\nprobes: %zu (%d websites x %d repetitions)\n", rail_probes.size(),
              kNumWebsites, kProbesPerSite);
  std::printf("attacker success, system power metering (no psbox): %.0f%%  (%.1fx random)\n",
              rate_open * 100.0, rate_open / random_guess);
  std::printf("attacker success, psbox-confined observation:       %.0f%%  (%.1fx random)\n",
              rate_psbox * 100.0, rate_psbox / random_guess);
  std::printf("random guess baseline:                              %.0f%%\n",
              random_guess * 100.0);
  std::printf("\nExpected shape (paper): ~60%% = 6x random without insulation;\n"
              "~random once psbox is the only way to observe power.\n");

  // Population-scale sweep: the victim hides inside generated background
  // traffic of increasing density.
  std::printf("\npopulation-scale variant: victim hidden in generated traffic\n");
  std::printf("%12s  %18s  %18s\n", "density", "rail accuracy", "psbox accuracy");
  for (const double rate_hz : {0.0, 15.0, 40.0, 80.0}) {
    std::vector<std::pair<std::string, std::vector<double>>> rail;
    std::vector<std::pair<std::string, std::vector<double>>> boxed;
    for (int site = 0; site < kNumWebsites; ++site) {
      for (int rep = 0; rep < kProbesPerSite; ++rep) {
        auto [rail_trace, boxed_trace] =
            ProbeTracesInPopulation(site, rep, rate_hz);
        rail.emplace_back(SiteLabel(site), std::move(rail_trace));
        boxed.emplace_back(SiteLabel(site), std::move(boxed_trace));
      }
    }
    std::printf("%8.0f /s  %16.0f%%  %16.0f%%\n", rate_hz,
                attacker.SuccessRate(rail) * 100.0,
                attacker.SuccessRate(boxed) * 100.0);
  }
  std::printf("\nExpected shape: rail accuracy decays toward random as the\n"
              "crowd grows; psbox-confined observation stays ~random at every\n"
              "density — insulation does not depend on background load.\n");
  return 0;
}
