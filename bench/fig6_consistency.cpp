// Figure 6 — Elimination of power entanglement (§6.1).
//
// For each hardware component, a designated power-aware app runs alone and
// then co-runs with other apps. With psbox, the app's observed energy stays
// consistent across scenarios (paper: within ~5%); with the prior
// utilisation-based accounting [AppScope/96], the attributed energy swings
// (paper: up to ~63%). Prints one table per component row of Figure 6.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/accounting/power_splitter.h"

namespace psbox {
namespace {

struct Scenario {
  std::string label;               // e.g. "dgemm [w/ sgemm]"
  std::vector<AppFactory> co_runners;
};

struct ComponentSpec {
  std::string name;
  HwComponent hw;
  AppFactory main_app;      // the power-aware app under test
  uint64_t iterations;      // fixed work so energy is comparable
  std::vector<Scenario> scenarios;
  TimeNs limit;
};

Joules RunScenario(const ComponentSpec& spec, const Scenario& scenario,
                   bool use_psbox, uint64_t seed) {
  BoardConfig board_cfg;
  board_cfg.seed = seed;
  Stack s(board_cfg);
  AppOptions main_opts;
  main_opts.iterations = spec.iterations;
  main_opts.use_psbox = use_psbox;
  AppHandle main_app = spec.main_app(s.kernel, main_opts);
  for (const AppFactory& co : scenario.co_runners) {
    AppOptions co_opts;  // endless
    co(s.kernel, co_opts);
  }
  RunUntilAppDone(s, main_app.app, spec.limit);
  if (use_psbox) {
    PSBOX_CHECK_GE(main_app.stats->psbox_energy, 0.0);
    return main_app.stats->psbox_energy;
  }
  // Prior approach: utilisation-proportional division of the metered rail
  // samples over the app's execution window.
  PowerSplitter splitter;
  auto shares = splitter.SplitEnergy(s.board.RailFor(spec.hw),
                                     s.kernel.ledger().records(spec.hw),
                                     main_app.stats->start_time,
                                     main_app.stats->finish_time);
  return shares[main_app.app];
}

void RunComponent(const ComponentSpec& spec) {
  std::printf("\n=== Fig 6, %s row: %s under psbox vs existing accounting ===\n",
              spec.name.c_str(), spec.scenarios.front().label.c_str());
  TextTable table({"scenario", "psbox energy", "psbox delta", "existing energy",
                   "existing delta"});
  Joules psbox_alone = 0.0;
  Joules existing_alone = 0.0;
  for (size_t i = 0; i < spec.scenarios.size(); ++i) {
    const Scenario& scenario = spec.scenarios[i];
    const Joules p = RunScenario(spec, scenario, /*use_psbox=*/true, 0x5eed + i);
    const Joules e = RunScenario(spec, scenario, /*use_psbox=*/false, 0x5eed + i);
    if (i == 0) {
      psbox_alone = p;
      existing_alone = e;
      table.AddRow({scenario.label, Mj(p), "(ref)", Mj(e), "(ref)"});
    } else {
      table.AddRow({scenario.label, Mj(p), Pct(PercentDelta(psbox_alone, p)),
                    Mj(e), Pct(PercentDelta(existing_alone, e))});
    }
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace psbox

int main() {
  using namespace psbox;
  std::printf("Figure 6: app-observed energy across co-running scenarios.\n"
              "Expected shape: psbox deltas stay small (paper: <5%% in most\n"
              "sets); the existing approach swings widely (paper: up to 63%%;\n"
              "WiFi psbox inherits a +%% outlier from uninsulated RX).\n");

  auto wrap = [](AppHandle (*fn)(Kernel&, const std::string&, AppOptions),
                 const char* name) {
    return [fn, name](Kernel& k, AppOptions o) { return fn(k, name, o); };
  };

  ComponentSpec cpu{
      "CPU",
      HwComponent::kCpu,
      wrap(SpawnCalib3d, "calib3d"),
      120,
      {{"calib3d", {}},
       {"calib3d [w/ body]", {wrap(SpawnBodytrack, "bodytrack")}},
       {"calib3d [w/ dedup]", {wrap(SpawnDedup, "dedup")}}},
      Seconds(20)};
  RunComponent(cpu);

  ComponentSpec dsp{
      "DSP",
      HwComponent::kDsp,
      wrap(SpawnDgemm, "dgemm"),
      100,
      {{"dgemm", {}},
       {"dgemm [w/ sgemm]", {wrap(SpawnSgemm, "sgemm")}},
       {"dgemm [w/ monte+sgemm]",
        {wrap(SpawnMonte, "monte"), wrap(SpawnSgemm, "sgemm")}}},
      Seconds(60)};
  RunComponent(dsp);

  ComponentSpec gpu{
      "GPU",
      HwComponent::kGpu,
      wrap(SpawnGpuBrowser, "browser"),
      25,
      {{"browser", {}},
       {"browser [w/ magic]", {wrap(SpawnMagic, "magic")}},
       {"browser [w/ triangle]", {wrap(SpawnTriangle, "triangle")}}},
      Seconds(20)};
  RunComponent(gpu);

  ComponentSpec wifi{
      "WiFi",
      HwComponent::kWifi,
      wrap(SpawnWifiBrowser, "browser"),
      8,
      {{"browser", {}},
       {"browser [w/ scp]", {wrap(SpawnScp, "scp")}},
       {"browser [w/ wget]", {wrap(SpawnWget, "wget")}}},
      Seconds(30)};
  RunComponent(wifi);

  return 0;
}
