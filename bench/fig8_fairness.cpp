// Figure 8 + §6.3 — Confinement of throughput loss.
//
// Co-running instances of the same app; one instance (marked *) enters its
// psbox. Expected shape: only the sandboxed instance loses throughput; the
// others keep theirs despite the total hardware throughput decreasing. The
// final panel is the §6.3 stress test: browser* under psbox against the
// synthetic triangle spammer — browser drops several-fold (excessive drain
// time), triangle loses only ~1%.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"

namespace psbox {
namespace {

struct InstanceResult {
  std::string name;
  double before;
  double after;
};

void RunPanel(const std::string& title, const std::string& unit,
              const std::vector<AppFactory>& instances, size_t sandboxed_index,
              TimeNs window,
              const std::function<double(Stack&, const AppHandle&)>& metric) {
  auto run = [&](bool sandbox) {
    std::vector<double> out;
    Stack s;
    std::vector<AppHandle> handles;
    for (size_t i = 0; i < instances.size(); ++i) {
      AppOptions opts;
      opts.deadline = window;
      opts.use_psbox = sandbox && i == sandboxed_index;
      handles.push_back(instances[i](s.kernel, opts));
    }
    s.kernel.RunUntil(window + Millis(50));
    for (const AppHandle& h : handles) {
      out.push_back(metric(s, h));
    }
    return out;
  };
  const std::vector<double> before = run(false);
  const std::vector<double> after = run(true);

  std::printf("\n--- Fig 8 %s ---\n", title.c_str());
  TextTable table({"instance", "before (" + unit + ")", "after (" + unit + ")",
                   "change"});
  double total_before = 0.0;
  double total_after = 0.0;
  for (size_t i = 0; i < before.size(); ++i) {
    const bool sandboxed = i == sandboxed_index;
    table.AddRow({"inst" + std::to_string(i + 1) + (sandboxed ? "*" : ""),
                  FormatDouble(before[i], 1), FormatDouble(after[i], 1),
                  Pct(PercentDelta(before[i], after[i]))});
    total_before += before[i];
    total_after += after[i];
  }
  table.AddRow({"total", FormatDouble(total_before, 1), FormatDouble(total_after, 1),
                Pct(PercentDelta(total_before, total_after))});
  table.Print(std::cout);
}

double IterationsPerSecond(Stack& s, const AppHandle& h) {
  const TimeNs end =
      h.stats->finish_time > 0 ? h.stats->finish_time : s.kernel.Now();
  const double secs = ToSeconds(end - h.stats->start_time);
  return secs > 0 ? static_cast<double>(h.stats->iterations) / secs : 0.0;
}

double KilobytesPerSecond(Stack& s, const AppHandle& h) {
  const TimeNs end =
      h.stats->finish_time > 0 ? h.stats->finish_time : s.kernel.Now();
  const double secs = ToSeconds(end - h.stats->start_time);
  const double kb = static_cast<double>(s.kernel.net().BytesDelivered(h.app)) / 1024.0;
  return secs > 0 ? kb / secs : 0.0;
}

}  // namespace
}  // namespace psbox

int main() {
  using namespace psbox;
  std::printf("Figure 8: throughput of co-running instances before/after one\n"
              "instance (*) enters its psbox. Expected shape: only * drops.\n");

  auto wrap = [](AppHandle (*fn)(Kernel&, const std::string&, AppOptions),
                 const char* name) {
    return [fn, name](Kernel& k, AppOptions o) { return fn(k, name, o); };
  };

  RunPanel("(a) CPU: 3x calib3d", "frames/s",
           {wrap(SpawnCalib3d, "calib1"), wrap(SpawnCalib3d, "calib2"),
            wrap(SpawnCalib3d, "calib3")},
           2, Seconds(4), IterationsPerSecond);

  RunPanel("(b) DSP: 3x sgemm", "mults/s",
           {wrap(SpawnSgemm, "sgemm1"), wrap(SpawnSgemm, "sgemm2"),
            wrap(SpawnSgemm, "sgemm3")},
           2, Seconds(4), IterationsPerSecond);

  RunPanel("(c) GPU: 2x cube", "frames/s",
           {wrap(SpawnCube, "cube1"), wrap(SpawnCube, "cube2")}, 1, Seconds(4),
           IterationsPerSecond);

  RunPanel("(d) WiFi: 2x wget", "KB/s",
           {wrap(SpawnWget, "wget1"), wrap(SpawnWget, "wget2")}, 1, Seconds(4),
           KilobytesPerSecond);

  std::printf("\n=== §6.3 stress: browser* (psbox) vs triangle on the GPU ===\n"
              "Expected shape: browser drops several-fold (drain time under\n"
              "extreme contention); triangle barely changes (~1%% in paper).\n");
  auto heavy_triangle = [](Kernel& k, AppOptions o) {
    o.work_scale = 4.0;  // extremely intensive contention, per §6.3
    return SpawnTriangle(k, "triangle", o);
  };
  RunPanel("(stress) GPU: browser* + triangle", "cmds/s",
           {heavy_triangle, wrap(SpawnBrowserStream, "browser")}, 1, Seconds(4),
           IterationsPerSecond);

  return 0;
}
