// Population soak: a 64-board fleet streaming a generated app population,
// cross-checked for determinism and audited for the nested accounting bound.
//
//   ./popgen_soak [--json PATH] [--boards N] [--seconds S] [--rate HZ]
//
// The fleet runs no fixed cast at all — every app on every board arrives
// from the seeded population generator (diurnal wave + flash crowd over the
// behavior-library mix), nested under per-board tenant sandboxes. The same
// scenario is run twice with different worker-thread counts; the two fleet
// fingerprints must be bit-identical or the soak fails. After the run the
// per-board tenant hierarchies are audited: every level must respect the
// <= 10 % accounting bound, and the violation count reported (and asserted)
// is zero.
//
// Reported (and written to BENCH_popgen.json for CI trend tracking):
//   * spawn throughput — generated apps spawned per wall-clock second
//   * steady-state apps/board — spawned minus completed at the horizon,
//     averaged over boards (the standing population the boards carry)
//   * accounting-bound violations — must be 0

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/csv.h"
#include "src/fleet/root_coordinator.h"
#include "src/popgen/board_population.h"

namespace psbox {
namespace {

FleetScenario SoakScenario(int boards, TimeNs horizon, double rate_hz) {
  FleetScenario scenario;
  scenario.seed = 0x50AC;
  scenario.horizon = horizon;
  scenario.epoch = 10 * kMillisecond;
  scenario.subfleets = boards >= 8 ? 8 : 1;
  scenario.root_period = 4;
  scenario.migration.enabled = false;
  scenario.boards.resize(static_cast<size_t>(boards));
  scenario.population.seed = 0x90D5;
  scenario.population.base_rate_hz = rate_hz;
  scenario.population.diurnal_amplitude = 0.5;
  scenario.population.diurnal_period = 400 * kMillisecond;
  scenario.population.flash_start = horizon / 2;
  scenario.population.flash_duration = horizon / 5;
  scenario.population.flash_multiplier = 2.5;
  scenario.population.tenants_per_board = 2;
  scenario.population.tenant_budget = 0.8;
  scenario.population.child_budget = 0.05;
  return scenario;
}

int ThreadBudget(int boards) {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(
      std::min<unsigned>(static_cast<unsigned>(boards), hw > 0 ? hw : 1));
}

struct SoakResult {
  int threads = 0;
  double wall_s = 0.0;
  uint64_t fingerprint = 0;
  uint64_t spawned = 0;
  uint64_t completed = 0;
  size_t violations = 0;
};

SoakResult RunOnce(const FleetScenario& scenario, int threads, int boards) {
  SoakResult r;
  r.threads = threads;
  RootCoordinator fleet(scenario, threads);
  const auto t0 = std::chrono::steady_clock::now();
  const FleetStats stats = fleet.Run();
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.fingerprint = stats.Fingerprint();
  for (const FleetBoardStats& b : stats.boards) {
    r.spawned += b.popgen_spawned;
    r.completed += b.popgen_completed;
  }
  // Audit the tenant hierarchy on every board: served balloon energy must
  // stay within 10 % of metered truth at every level of the nesting.
  for (int b = 0; b < boards; ++b) {
    BoardPopulation* pop = fleet.population(b);
    if (pop != nullptr) {
      r.violations += pop->AccountingViolations(0.10);
    }
  }
  return r;
}

}  // namespace
}  // namespace psbox

int main(int argc, char** argv) {
  using namespace psbox;
  std::string json_path = "BENCH_popgen.json";
  int boards = 64;
  int seconds = 1;
  double rate_hz = 100.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--boards" && i + 1 < argc) {
      boards = std::atoi(argv[++i]);
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atoi(argv[++i]);
    } else if (arg == "--rate" && i + 1 < argc) {
      rate_hz = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: popgen_soak [--json PATH] [--boards N] "
                   "[--seconds S] [--rate HZ]\n");
      return 2;
    }
  }

  const FleetScenario scenario =
      SoakScenario(boards, Seconds(seconds), rate_hz);
  // The two runs must use genuinely different worker counts for the
  // determinism cross-check to mean anything, even on a 1-core machine
  // (workers are plain threads; oversubscription only costs wall time).
  const int threads_a = ThreadBudget(boards);
  const int threads_b =
      threads_a > 1 ? threads_a - threads_a / 2 : std::min(2, boards);

  std::printf("population soak: %d boards, %d s, %.0f arrivals/s/board\n",
              boards, seconds, rate_hz);
  const SoakResult a = RunOnce(scenario, threads_a, boards);
  const SoakResult b = RunOnce(scenario, threads_b, boards);

  const bool deterministic = a.fingerprint == b.fingerprint;
  const uint64_t live = a.spawned - a.completed;
  const double apps_per_board =
      static_cast<double>(live) / static_cast<double>(boards);
  const double spawn_per_s =
      a.wall_s > 0.0 ? static_cast<double>(a.spawned) / a.wall_s : 0.0;

  TextTable table({"threads", "wall (s)", "spawned", "completed",
                   "violations", "fingerprint"});
  for (const SoakResult* r : {&a, &b}) {
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(r->fingerprint));
    table.AddRow({std::to_string(r->threads), FormatDouble(r->wall_s, 3),
                  std::to_string(r->spawned), std::to_string(r->completed),
                  std::to_string(r->violations), fp});
  }
  table.Print(std::cout);
  std::printf("\nspawn throughput: %.0f apps/s (wall)\n", spawn_per_s);
  std::printf("steady-state apps/board at horizon: %.1f\n", apps_per_board);
  std::printf("fingerprints %s across %d vs %d threads\n",
              deterministic ? "IDENTICAL" : "DIFFER", threads_a, threads_b);

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  char fpa[32], fpb[32];
  std::snprintf(fpa, sizeof(fpa), "%016llx",
                static_cast<unsigned long long>(a.fingerprint));
  std::snprintf(fpb, sizeof(fpb), "%016llx",
                static_cast<unsigned long long>(b.fingerprint));
  json << "{\n  \"bench\": \"popgen_soak\",\n"
       << "  \"boards\": " << boards << ",\n  \"horizon_s\": " << seconds
       << ",\n  \"rate_hz\": " << FormatDouble(rate_hz, 1)
       << ",\n  \"threads_a\": " << threads_a
       << ",\n  \"threads_b\": " << threads_b << ",\n  \"fingerprint_a\": \""
       << fpa << "\",\n  \"fingerprint_b\": \"" << fpb
       << "\",\n  \"deterministic\": " << (deterministic ? "true" : "false")
       << ",\n  \"spawned\": " << a.spawned
       << ",\n  \"completed\": " << a.completed
       << ",\n  \"spawn_per_wall_s\": " << FormatDouble(spawn_per_s, 1)
       << ",\n  \"steady_apps_per_board\": " << FormatDouble(apps_per_board, 2)
       << ",\n  \"accounting_violations\": " << (a.violations + b.violations)
       << "\n}\n";
  std::printf("JSON written to %s\n", json_path.c_str());

  if (!deterministic) {
    std::fprintf(stderr, "popgen_soak: FINGERPRINT MISMATCH\n");
    return 1;
  }
  if (a.violations + b.violations != 0) {
    std::fprintf(stderr, "popgen_soak: accounting bound violated\n");
    return 1;
  }
  if (a.spawned < 5000 && boards >= 64 && seconds >= 1 && rate_hz >= 100.0) {
    std::fprintf(stderr, "popgen_soak: expected >= 5000 generated apps, got %llu\n",
                 static_cast<unsigned long long>(a.spawned));
    return 1;
  }
  return 0;
}
