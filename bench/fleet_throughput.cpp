// Fleet throughput bench: how fast the shard pool advances simulated boards.
//
//   ./fleet_throughput [--json PATH] [--seconds S]
//
// Runs the same per-board workload at 1, 4 and 8 shards (worker threads
// matched to the shard count, capped at the hardware concurrency) and
// reports boards-advanced-per-second: board-seconds of simulation completed
// per wall-clock second. Also emits machine-readable JSON (default
// BENCH_fleet.json) so CI can track the shard-scaling trend, plus each run's
// fleet fingerprint — a throughput number from a non-deterministic run would
// be meaningless.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/csv.h"
#include "src/fleet/fleet_coordinator.h"

namespace psbox {
namespace {

// Every board runs the same three-app mix: a sandboxed CPU app (spatial
// balloons), a sandboxed GPU app (temporal balloons) and a plain co-runner —
// enough cross-domain traffic that shard advancement is representative.
FleetScenario BenchScenario(int boards, int seconds) {
  FleetScenario scenario;
  scenario.seed = 0xBE7C;
  scenario.horizon = Seconds(seconds);
  scenario.epoch = 10 * kMillisecond;
  scenario.migration.enabled = false;  // measure pure shard advancement
  scenario.boards.resize(static_cast<size_t>(boards));
  for (int b = 0; b < boards; ++b) {
    const struct {
      const char* name;
      AppFactory factory;
      bool sandboxed;
    } mix[] = {
        {"calib3d", &SpawnCalib3d, true},
        {"triangle", &SpawnTriangle, true},
        {"bodytrack", &SpawnBodytrack, false},
    };
    for (const auto& m : mix) {
      FleetAppSpec spec;
      spec.name = std::string(m.name) + std::to_string(b);
      spec.factory = m.factory;
      spec.board = b;
      spec.options.deadline = scenario.horizon;
      spec.options.use_psbox = m.sandboxed;
      scenario.apps.push_back(spec);
    }
  }
  return scenario;
}

struct Result {
  int boards = 0;
  int threads = 0;
  double wall_s = 0.0;
  double board_seconds_per_s = 0.0;
  uint64_t fingerprint = 0;
};

Result RunOnce(int boards, int seconds) {
  const unsigned hw = std::thread::hardware_concurrency();
  Result r;
  r.boards = boards;
  r.threads = static_cast<int>(
      std::min<unsigned>(static_cast<unsigned>(boards), hw > 0 ? hw : 1));
  FleetCoordinator fleet(BenchScenario(boards, seconds), r.threads);
  const auto t0 = std::chrono::steady_clock::now();
  const FleetStats stats = fleet.Run();
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.board_seconds_per_s =
      r.wall_s > 0.0 ? boards * static_cast<double>(seconds) / r.wall_s : 0.0;
  r.fingerprint = stats.Fingerprint();
  return r;
}

}  // namespace
}  // namespace psbox

int main(int argc, char** argv) {
  using namespace psbox;
  std::string json_path = "BENCH_fleet.json";
  int seconds = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: fleet_throughput [--json PATH] [--seconds S]\n");
      return 2;
    }
  }

  std::vector<Result> results;
  for (int boards : {1, 4, 8}) {
    results.push_back(RunOnce(boards, seconds));
  }

  TextTable table({"boards", "threads", "wall (s)", "board-s/s", "fingerprint"});
  for (const Result& r : results) {
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    table.AddRow({std::to_string(r.boards), std::to_string(r.threads),
                  FormatDouble(r.wall_s, 3),
                  FormatDouble(r.board_seconds_per_s, 1), fp});
  }
  std::printf("fleet throughput (%d simulated second(s) per board)\n\n", seconds);
  table.Print(std::cout);

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"fleet_throughput\",\n  \"horizon_s\": " << seconds
       << ",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    json << "    {\"boards\": " << r.boards << ", \"threads\": " << r.threads
         << ", \"wall_s\": " << FormatDouble(r.wall_s, 6)
         << ", \"board_seconds_per_s\": "
         << FormatDouble(r.board_seconds_per_s, 3) << ", \"fingerprint\": \""
         << fp << "\"}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nJSON written to %s\n", json_path.c_str());
  return 0;
}
