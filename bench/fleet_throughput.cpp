// Fleet throughput bench: flat vs hierarchical coordination at scale.
//
//   ./fleet_throughput [--json PATH] [--seconds S]
//
// Runs the same per-board workload at 8, 64 and 256 boards, once flat
// (subfleets = 1, root_period = 1: every board synchronises at every epoch
// barrier on one shared worker pool) and once hierarchical (contiguous
// sub-fleets with their own worker slices, root barrier every 8 sub-epochs),
// and reports boards-advanced-per-second: board-seconds of simulation
// completed per wall-clock second. The flat/hier gap is the cost of global
// synchronisation — the hierarchy turns one fleet-wide barrier + one shared
// pool mutex into per-slice barriers that only meet at root boundaries.
//
// Before any configuration is timed, its determinism is cross-checked: the
// same scenario is run twice with different worker allocations and the two
// fleet fingerprints must be bit-identical (a throughput number from a
// non-deterministic run would be meaningless). Results go to machine-
// readable JSON (default BENCH_fleet_hier.json) so CI can track the trend.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/csv.h"
#include "src/fleet/root_coordinator.h"

namespace psbox {
namespace {

// Every board runs the same three-app mix: a sandboxed CPU app (spatial
// balloons), a sandboxed GPU app (temporal balloons) and a plain co-runner —
// enough cross-domain traffic that shard advancement is representative.
FleetScenario BenchScenario(int boards, int subfleets, int root_period,
                            TimeNs horizon) {
  FleetScenario scenario;
  scenario.seed = 0xBE7C;
  scenario.horizon = horizon;
  scenario.epoch = 10 * kMillisecond;
  scenario.subfleets = subfleets;
  scenario.root_period = root_period;
  scenario.migration.enabled = false;  // measure pure shard advancement
  scenario.boards.resize(static_cast<size_t>(boards));
  for (int b = 0; b < boards; ++b) {
    const struct {
      const char* name;
      AppFactory factory;
      bool sandboxed;
    } mix[] = {
        {"calib3d", &SpawnCalib3d, true},
        {"triangle", &SpawnTriangle, true},
        {"bodytrack", &SpawnBodytrack, false},
    };
    for (const auto& m : mix) {
      FleetAppSpec spec;
      spec.name = std::string(m.name) + std::to_string(b);
      spec.factory = m.factory;
      spec.board = b;
      spec.options.deadline = scenario.horizon;
      spec.options.use_psbox = m.sandboxed;
      scenario.apps.push_back(spec);
    }
  }
  return scenario;
}

struct Config {
  int boards = 0;
  int subfleets = 1;
  int root_period = 1;
  const char* mode = "flat";
};

struct Result {
  Config config;
  int threads = 0;
  double wall_s = 0.0;
  double board_seconds_per_s = 0.0;
  uint64_t fingerprint = 0;
};

int ThreadBudget(int boards) {
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(
      std::min<unsigned>(static_cast<unsigned>(boards), hw > 0 ? hw : 1));
}

// Determinism cross-check on a short horizon: the same scenario under two
// different worker allocations must produce one fingerprint. Returns false
// (and complains) when it does not.
bool CrossCheck(const Config& c) {
  const TimeNs horizon = Millis(300);
  const int threads = ThreadBudget(c.boards);
  RootCoordinator a(
      BenchScenario(c.boards, c.subfleets, c.root_period, horizon), threads);
  const uint64_t fp_a = a.Run().Fingerprint();
  uint64_t fp_b = 0;
  if (c.subfleets > 1) {
    // Deliberately lopsided split: everything spare on the first sub-fleet.
    std::vector<int> split(static_cast<size_t>(c.subfleets), 1);
    split[0] = std::max(1, threads - (c.subfleets - 1));
    RootCoordinator b(
        BenchScenario(c.boards, c.subfleets, c.root_period, horizon),
        std::move(split));
    fp_b = b.Run().Fingerprint();
  } else {
    RootCoordinator b(
        BenchScenario(c.boards, c.subfleets, c.root_period, horizon),
        std::max(1, threads / 2));
    fp_b = b.Run().Fingerprint();
  }
  if (fp_a != fp_b) {
    std::fprintf(stderr,
                 "fleet_throughput: %s/%d boards NOT deterministic: "
                 "%016llx vs %016llx\n",
                 c.mode, c.boards, static_cast<unsigned long long>(fp_a),
                 static_cast<unsigned long long>(fp_b));
    return false;
  }
  return true;
}

Result RunOnce(const Config& c, int seconds) {
  Result r;
  r.config = c;
  r.threads = ThreadBudget(c.boards);
  RootCoordinator fleet(
      BenchScenario(c.boards, c.subfleets, c.root_period, Seconds(seconds)),
      r.threads);
  const auto t0 = std::chrono::steady_clock::now();
  const FleetStats stats = fleet.Run();
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.board_seconds_per_s =
      r.wall_s > 0.0 ? c.boards * static_cast<double>(seconds) / r.wall_s
                     : 0.0;
  r.fingerprint = stats.Fingerprint();
  return r;
}

}  // namespace
}  // namespace psbox

int main(int argc, char** argv) {
  using namespace psbox;
  std::string json_path = "BENCH_fleet_hier.json";
  int seconds = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: fleet_throughput [--json PATH] [--seconds S]\n");
      return 2;
    }
  }

  // Flat vs hierarchical at each size; 8 sub-fleets once there are enough
  // boards for real slices, root barrier every 8 sub-epochs.
  const std::vector<Config> configs = {
      {8, 1, 1, "flat"},    {8, 2, 8, "hier"},   {64, 1, 1, "flat"},
      {64, 8, 8, "hier"},   {256, 1, 1, "flat"}, {256, 8, 8, "hier"},
  };

  for (const Config& c : configs) {
    if (!CrossCheck(c)) {
      return 1;
    }
  }

  std::vector<Result> results;
  for (const Config& c : configs) {
    results.push_back(RunOnce(c, seconds));
  }

  TextTable table({"boards", "mode", "subfleets", "threads", "wall (s)",
                   "board-s/s", "fingerprint"});
  for (const Result& r : results) {
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    table.AddRow({std::to_string(r.config.boards), r.config.mode,
                  std::to_string(r.config.subfleets),
                  std::to_string(r.threads), FormatDouble(r.wall_s, 3),
                  FormatDouble(r.board_seconds_per_s, 1), fp});
  }
  std::printf("fleet throughput, flat vs hierarchical "
              "(%d simulated second(s) per board)\n\n",
              seconds);
  table.Print(std::cout);

  // Headline: the hierarchical speedup at each size.
  for (size_t i = 0; i + 1 < results.size(); i += 2) {
    const Result& flat = results[i];
    const Result& hier = results[i + 1];
    std::printf("%d boards: hier/flat throughput = %.2fx\n",
                flat.config.boards,
                flat.board_seconds_per_s > 0.0
                    ? hier.board_seconds_per_s / flat.board_seconds_per_s
                    : 0.0);
  }

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"fleet_hier\",\n  \"horizon_s\": " << seconds
       << ",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(r.fingerprint));
    json << "    {\"boards\": " << r.config.boards << ", \"mode\": \""
         << r.config.mode << "\", \"subfleets\": " << r.config.subfleets
         << ", \"root_period\": " << r.config.root_period
         << ", \"threads\": " << r.threads
         << ", \"wall_s\": " << FormatDouble(r.wall_s, 6)
         << ", \"board_seconds_per_s\": "
         << FormatDouble(r.board_seconds_per_s, 3) << ", \"fingerprint\": \""
         << fp << "\"}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nJSON written to %s\n", json_path.c_str());
  return 0;
}
