// Microbenchmarks (google-benchmark) for the simulator's hot paths.
//
// Not a paper figure: these quantify the substrate itself — event queue
// throughput, scheduler cost per simulated second, StepTrace integration,
// DTW, and the accounting sweep — so regressions in the simulation engine
// are caught independently of the experiment shapes.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/accounting/power_splitter.h"
#include "src/analysis/dtw.h"
#include "src/base/rng.h"
#include "src/sim/simulator.h"

namespace psbox {
namespace {

void BM_EventQueueScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAt(i * 100, [&sink] { ++sink; });
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_StepTraceIntegral(benchmark::State& state) {
  StepTrace trace;
  Rng rng(7);
  TimeNs t = 0;
  for (int i = 0; i < 10000; ++i) {
    t += rng.UniformInt(1000, 100000);
    trace.Set(t, rng.Uniform(0.0, 5.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.IntegralOver(t / 4, 3 * t / 4));
  }
}
BENCHMARK(BM_StepTraceIntegral);

void BM_DtwDistance(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(11);
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Uniform(0.0, 1.0);
    b[i] = rng.Uniform(0.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtwDistance(a, b));
  }
}
BENCHMARK(BM_DtwDistance)->Arg(120)->Arg(240);

void BM_SimulatedCpuSecond(benchmark::State& state) {
  for (auto _ : state) {
    Stack s;
    AppOptions opts;
    opts.deadline = Seconds(1);
    SpawnCalib3d(s.kernel, "calib3d", opts);
    SpawnBodytrack(s.kernel, "bodytrack", opts);
    s.kernel.RunUntil(Seconds(1));
    benchmark::DoNotOptimize(s.kernel.scheduler().stats().context_switches);
  }
}
BENCHMARK(BM_SimulatedCpuSecond);

void BM_SimulatedSandboxSecond(benchmark::State& state) {
  for (auto _ : state) {
    Stack s;
    AppOptions opts;
    opts.deadline = Seconds(1);
    opts.use_psbox = true;
    SpawnCalib3d(s.kernel, "calib3d", opts);
    AppOptions co;
    co.deadline = Seconds(1);
    SpawnBodytrack(s.kernel, "bodytrack", co);
    s.kernel.RunUntil(Seconds(1));
    benchmark::DoNotOptimize(s.kernel.scheduler().domain_stats().balloons);
  }
}
BENCHMARK(BM_SimulatedSandboxSecond);

void BM_SplitterSweep(benchmark::State& state) {
  Stack s;
  AppOptions opts;
  opts.deadline = Seconds(1);
  SpawnCalib3d(s.kernel, "calib3d", opts);
  SpawnBodytrack(s.kernel, "bodytrack", opts);
  s.kernel.RunUntil(Seconds(1));
  PowerSplitter splitter;
  for (auto _ : state) {
    auto shares = splitter.SplitEnergy(s.board.cpu_rail(),
                                       s.kernel.ledger().records(HwComponent::kCpu),
                                       0, Seconds(1));
    benchmark::DoNotOptimize(shares);
  }
}
BENCHMARK(BM_SplitterSweep);

}  // namespace
}  // namespace psbox

BENCHMARK_MAIN();
