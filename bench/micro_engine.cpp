// Event-engine microbench: the rebuilt timing-wheel/slab Simulator vs the
// pre-rewrite engine, preserved verbatim as NaiveSimulator (binary heap +
// per-event std::function in a hash map + tombstoned cancels).
//
//   ./micro_engine [--json PATH]
//   ./micro_engine --gbench [google-benchmark args...]
//
// Default mode replays the same deterministic workload through both engines,
// cross-checks the firing-order hash (and final clock / fired counts) so the
// comparison can never silently measure diverging behaviour, then reports
// wall time and speedup to stdout and JSON (default BENCH_engine.json) for
// CI trend tracking. Cases:
//   schedule_fire  — bulk one-shot timers: schedule a batch, drain, repeat.
//                    The slab + wheel vs per-event allocation + heap sift.
//   cancel_rearm   — the watchdog/completion-timer pattern from the kernel
//                    drivers: a small population of timers each cancelled and
//                    re-armed every tick, firing only across occasional long
//                    gaps. Cancel+ScheduleAfter on BOTH engines (the naive
//                    engine's only re-arm path) — the headline case.
//   reschedule     — same workload, but the new engine uses its O(1)
//                    in-place Reschedule() while the naive engine still pays
//                    Cancel+ScheduleAfter; measures what the driver call
//                    sites actually run today.
//   mixed_horizon  — randomized schedule/cancel/advance churn with delays
//                    spanning all queue levels (due list, L0, L1, overflow
//                    heap), the fleet-like steady state.
//
// --gbench runs the original google-benchmark suite (engine plus StepTrace /
// DTW / whole-kernel cases) for fine-grained per-op numbers.

#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bench/naive_simulator.h"
#include "src/accounting/power_splitter.h"
#include "src/analysis/dtw.h"
#include "src/base/rng.h"
#include "src/sim/simulator.h"

namespace psbox {
namespace {

// ---------------------------------------------------------------------------
// Differential comparison harness (default mode).

double MillisBetween(std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

struct CaseResult {
  std::string name;
  uint64_t work = 0;  // schedules + cancels + re-arms driven through the engine
  uint64_t fired = 0;
  double naive_ms = 0.0;
  double fast_ms = 0.0;
  double speedup() const { return fast_ms > 0.0 ? naive_ms / fast_ms : 0.0; }
};

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
  return h;
}

// What one workload run produced; every field must match across engines.
struct RunOutcome {
  uint64_t order_hash = kFnvOffset;  // FNV over (fire time, label), in order
  uint64_t fired = 0;
  uint64_t work = 0;
  TimeNs end = 0;
};

// Bulk one-shot timers: schedule a batch with scattered sub-4ms delays,
// drain to completion, repeat. No cancels — this isolates the allocation and
// queue-insert/pop cost per event.
template <typename Engine>
RunOutcome RunScheduleFire(Engine& eng) {
  constexpr int kRounds = 25;
  constexpr int kBatch = 10'000;
  RunOutcome out;
  Rng rng(0x5c4ed);
  uint32_t label = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kBatch; ++i) {
      const DurationNs delay = rng.UniformInt(0, 4 * kMillisecond);
      const uint32_t l = label++;
      eng.ScheduleAfter(delay, [&out, &eng, l] {
        out.order_hash = Mix(Mix(out.order_hash, static_cast<uint64_t>(eng.Now())), l);
        ++out.fired;
      });
    }
    eng.RunToCompletion();
  }
  out.work = static_cast<uint64_t>(kRounds) * kBatch;
  out.end = eng.Now();
  return out;
}

// The driver watchdog pattern: |kTimers| timers armed 1 ms out, each
// cancelled and re-armed every 10 us tick (activity keeps resetting the
// deadline), with an occasional long quiet gap that lets the whole
// population expire and re-arm from scratch. kUseReschedule switches the
// re-arm from Cancel+ScheduleAfter to the new engine's in-place Reschedule
// (engines without one, i.e. the naive baseline, always take the
// cancel+schedule path — that is all they have).
template <bool kUseReschedule, typename Engine>
RunOutcome RunCancelRearm(Engine& eng) {
  constexpr int kTimers = 64;
  constexpr int kSteps = 20'000;
  constexpr DurationNs kTick = 10 * kMicrosecond;
  constexpr DurationNs kTimeout = kMillisecond;
  RunOutcome out;

  struct Driver {
    RunOutcome* out;
    Engine* eng;
    std::array<EventId, kTimers> ids;
  } d{&out, &eng, {}};
  d.ids.fill(kInvalidEventId);

  auto expire_cb = [&d](int t) {
    return [dp = &d, t] {
      dp->out->order_hash = Mix(Mix(dp->out->order_hash,
                                    static_cast<uint64_t>(dp->eng->Now())),
                                static_cast<uint64_t>(t));
      ++dp->out->fired;
      dp->ids[static_cast<size_t>(t)] = kInvalidEventId;
    };
  };

  for (int step = 0; step < kSteps; ++step) {
    for (int t = 0; t < kTimers; ++t) {
      EventId& id = d.ids[static_cast<size_t>(t)];
      const TimeNs deadline = eng.Now() + kTimeout;
      if constexpr (kUseReschedule &&
                    requires { eng.Reschedule(EventId{}, TimeNs{}); }) {
        if (id != kInvalidEventId) {
          id = eng.Reschedule(id, deadline);
          ++out.work;
          continue;
        }
      } else {
        eng.Cancel(id);  // no-op for expired timers
      }
      id = eng.ScheduleAt(deadline, expire_cb(t));
      ++out.work;
    }
    // Every ~1k ticks the workload goes quiet past the timeout: the whole
    // timer population fires, exercising the expiry + fresh-arm path.
    const DurationNs advance = (step % 1024 == 1023) ? 2 * kMillisecond : kTick;
    eng.RunUntil(eng.Now() + advance);
  }
  eng.RunToCompletion();
  out.end = eng.Now();
  return out;
}

// Delay mixture spanning every queue level of the wheel engine: the due
// list (zero), L0 (< 2^16 ns buckets), L1, and the overflow heap.
DurationNs MixedDelay(Rng& rng) {
  const int64_t pick = rng.UniformInt(0, 99);
  if (pick < 5) {
    return 0;
  }
  if (pick < 55) {
    return rng.UniformInt(1, 4 * (1 << 16));
  }
  if (pick < 85) {
    return rng.UniformInt(1, 40 * kMillisecond);
  }
  if (pick < 96) {
    return rng.UniformInt(1, 6 * Seconds(1));
  }
  return rng.UniformInt(1, 60 * Seconds(1));
}

// Randomized churn: 60% schedule at a mixed-horizon delay, 15% cancel a
// random live id (stale ids exercise the generation guard), 25% advance the
// clock. Same Rng seed on both engines -> identical op sequences.
template <typename Engine>
RunOutcome RunMixedHorizon(Engine& eng) {
  constexpr int kOps = 120'000;
  RunOutcome out;
  Rng rng(0xab1e5);
  std::vector<EventId> live;
  live.reserve(1024);
  uint32_t label = 0;
  for (int op = 0; op < kOps; ++op) {
    const int64_t pick = rng.UniformInt(0, 99);
    if (pick < 60) {
      const DurationNs delay = MixedDelay(rng);
      const uint32_t l = label++;
      live.push_back(eng.ScheduleAfter(delay, [&out, &eng, l] {
        out.order_hash =
            Mix(Mix(out.order_hash, static_cast<uint64_t>(eng.Now())), l);
        ++out.fired;
      }));
      ++out.work;
    } else if (pick < 75) {
      if (!live.empty()) {
        const auto idx = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
        eng.Cancel(live[idx]);  // may be stale (already fired): must no-op
        live[idx] = live.back();
        live.pop_back();
        ++out.work;
      }
    } else {
      eng.RunUntil(eng.Now() + rng.UniformInt(0, 20 * kMillisecond));
    }
  }
  eng.RunToCompletion();
  out.end = eng.Now();
  return out;
}

// Runs |workload| through both engines, checks the outcomes are identical,
// and returns the timed comparison.
template <typename Workload>
CaseResult Compare(const std::string& name, Workload&& workload) {
  const auto t0 = std::chrono::steady_clock::now();
  NaiveSimulator naive;
  const RunOutcome base = workload(naive);
  const auto t1 = std::chrono::steady_clock::now();
  Simulator fast;
  const RunOutcome got = workload(fast);
  const auto t2 = std::chrono::steady_clock::now();

  // The engines must have done byte-for-byte the same thing, in the same
  // order, before their times are comparable.
  PSBOX_CHECK_EQ(got.order_hash, base.order_hash);
  PSBOX_CHECK_EQ(got.fired, base.fired);
  PSBOX_CHECK_EQ(got.end, base.end);
  PSBOX_CHECK_EQ(naive.total_fired(), fast.total_fired());
  PSBOX_CHECK_EQ(naive.pending_events(), fast.pending_events());

  CaseResult r;
  r.name = name;
  r.work = base.work;
  r.fired = base.fired;
  r.naive_ms = MillisBetween(t0, t1);
  r.fast_ms = MillisBetween(t1, t2);
  return r;
}

int RunComparison(const std::string& json_path) {
  std::vector<CaseResult> results;
  results.push_back(Compare(
      "schedule_fire", [](auto& eng) { return RunScheduleFire(eng); }));
  results.push_back(Compare(
      "cancel_rearm", [](auto& eng) { return RunCancelRearm<false>(eng); }));
  results.push_back(Compare(
      "reschedule", [](auto& eng) { return RunCancelRearm<true>(eng); }));
  results.push_back(Compare(
      "mixed_horizon", [](auto& eng) { return RunMixedHorizon(eng); }));

  TextTable table({"case", "work", "fired", "naive (ms)", "wheel (ms)", "speedup"});
  for (const CaseResult& r : results) {
    table.AddRow({r.name, std::to_string(r.work), std::to_string(r.fired),
                  FormatDouble(r.naive_ms, 2), FormatDouble(r.fast_ms, 2),
                  FormatDouble(r.speedup(), 2) + "x"});
  }
  table.Print(std::cout);

  std::ofstream json(json_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  json << "{\n  \"bench\": \"micro_engine\",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    json << "    {\"case\": \"" << r.name << "\", \"work\": " << r.work
         << ", \"fired\": " << r.fired
         << ", \"naive_ms\": " << FormatDouble(r.naive_ms, 3)
         << ", \"fast_ms\": " << FormatDouble(r.fast_ms, 3)
         << ", \"speedup\": " << FormatDouble(r.speedup(), 3) << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nJSON written to %s\n", json_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// google-benchmark suite (--gbench): per-op engine numbers plus the original
// substrate cases (StepTrace, DTW, whole-kernel simulated seconds).

void BM_EventQueueScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAt(i * 100, [&sink] { ++sink; });
    }
    sim.RunToCompletion();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleFire);

void BM_EventQueueCancelRearm(benchmark::State& state) {
  Simulator sim;
  int sink = 0;
  EventId id = sim.ScheduleAfter(kMillisecond, [&sink] { ++sink; });
  for (auto _ : state) {
    sim.Cancel(id);
    id = sim.ScheduleAfter(kMillisecond, [&sink] { ++sink; });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueCancelRearm);

void BM_EventQueueReschedule(benchmark::State& state) {
  Simulator sim;
  int sink = 0;
  EventId id = sim.ScheduleAfter(kMillisecond, [&sink] { ++sink; });
  for (auto _ : state) {
    id = sim.Reschedule(id, sim.Now() + kMillisecond);
  }
  benchmark::DoNotOptimize(sink);
  benchmark::DoNotOptimize(id);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueReschedule);

void BM_StepTraceIntegral(benchmark::State& state) {
  StepTrace trace;
  Rng rng(7);
  TimeNs t = 0;
  for (int i = 0; i < 10000; ++i) {
    t += rng.UniformInt(1000, 100000);
    trace.Set(t, rng.Uniform(0.0, 5.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace.IntegralOver(t / 4, 3 * t / 4));
  }
}
BENCHMARK(BM_StepTraceIntegral);

void BM_DtwDistance(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(11);
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Uniform(0.0, 1.0);
    b[i] = rng.Uniform(0.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtwDistance(a, b));
  }
}
BENCHMARK(BM_DtwDistance)->Arg(120)->Arg(240);

void BM_SimulatedCpuSecond(benchmark::State& state) {
  for (auto _ : state) {
    Stack s;
    AppOptions opts;
    opts.deadline = Seconds(1);
    SpawnCalib3d(s.kernel, "calib3d", opts);
    SpawnBodytrack(s.kernel, "bodytrack", opts);
    s.kernel.RunUntil(Seconds(1));
    benchmark::DoNotOptimize(s.kernel.scheduler().stats().context_switches);
  }
}
BENCHMARK(BM_SimulatedCpuSecond);

void BM_SimulatedSandboxSecond(benchmark::State& state) {
  for (auto _ : state) {
    Stack s;
    AppOptions opts;
    opts.deadline = Seconds(1);
    opts.use_psbox = true;
    SpawnCalib3d(s.kernel, "calib3d", opts);
    AppOptions co;
    co.deadline = Seconds(1);
    SpawnBodytrack(s.kernel, "bodytrack", co);
    s.kernel.RunUntil(Seconds(1));
    benchmark::DoNotOptimize(s.kernel.scheduler().domain_stats().balloons);
  }
}
BENCHMARK(BM_SimulatedSandboxSecond);

void BM_SplitterSweep(benchmark::State& state) {
  Stack s;
  AppOptions opts;
  opts.deadline = Seconds(1);
  SpawnCalib3d(s.kernel, "calib3d", opts);
  SpawnBodytrack(s.kernel, "bodytrack", opts);
  s.kernel.RunUntil(Seconds(1));
  PowerSplitter splitter;
  for (auto _ : state) {
    auto shares = splitter.SplitEnergy(s.board.cpu_rail(),
                                       s.kernel.ledger().records(HwComponent::kCpu),
                                       0, Seconds(1));
    benchmark::DoNotOptimize(shares);
  }
}
BENCHMARK(BM_SplitterSweep);

}  // namespace
}  // namespace psbox

int main(int argc, char** argv) {
  std::string json_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gbench") {
      // Hand everything after --gbench to google-benchmark.
      int gargc = argc - i;
      std::vector<char*> gargv;
      gargv.push_back(argv[0]);
      for (int j = i + 1; j < argc; ++j) {
        gargv.push_back(argv[j]);
      }
      benchmark::Initialize(&gargc, gargv.data());
      benchmark::RunSpecifiedBenchmarks();
      benchmark::Shutdown();
      return 0;
    }
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: micro_engine [--json PATH] | --gbench [args...]\n");
      return 2;
    }
  }
  return psbox::RunComparison(json_path);
}
