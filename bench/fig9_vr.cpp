// Figure 9 / §6.4 — the end-to-end VR use case.
//
// The rendering task periodically observes its own power through a psbox
// (insulated from the gesture task's input-dependent load) and trades
// fidelity for power. The paper reports an 8.9x achievable power range
// (90 mW to 800 mW) across fidelity settings.

#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "src/analysis/trace_util.h"
#include "src/workloads/vr_app.h"

namespace psbox {
namespace {

std::shared_ptr<VrStats> RunVr(Watts target_low, Watts target_high, TimeNs secs,
                               Board** board_out = nullptr) {
  static Stack* stack = nullptr;
  delete stack;
  stack = new Stack();
  VrConfig cfg;
  cfg.target_low = target_low;
  cfg.target_high = target_high;
  cfg.deadline = secs;
  VrHandles vr = SpawnVrScenario(stack->kernel, cfg);
  stack->kernel.RunUntil(secs + Millis(100));
  if (board_out != nullptr) {
    *board_out = &stack->board;
  }
  return vr.stats;
}

}  // namespace
}  // namespace psbox

int main() {
  using namespace psbox;
  std::printf("Figure 9: VR scenario — rendering observes its own power in a\n"
              "psbox and adapts fidelity; gesture's varying load is insulated.\n");

  // Trace panel: mid band, show the adaptation at work alongside total power.
  Board* board = nullptr;
  auto stats = RunVr(0.35, 0.70, Seconds(6), &board);
  std::printf("\n--- adaptation trace (band 0.35-0.70 W) ---\n");
  TextTable trace({"t (ms)", "fidelity", "observed (W)", "active (W)"});
  for (size_t i = 0; i < stats->windows.size(); i += 3) {
    const VrWindow& w = stats->windows[i];
    trace.AddRow({FormatDouble(ToMillis(w.when), 0), std::to_string(w.fidelity),
                  FormatDouble(w.observed_power, 3), FormatDouble(w.active_power, 3)});
  }
  trace.Print(std::cout);
  const auto total = DownsampleTrace(board->cpu_rail().trace(), 0, Seconds(6), 72);
  std::printf("total CPU rail power: [%s] (gesture + rendering entangled)\n",
              Sparkline(total).c_str());

  // Range panel: push the band to both extremes (paper: 8.9x, 90->800 mW).
  auto low = RunVr(0.00, 0.001, Seconds(6));   // always step down -> fidelity 0
  auto high = RunVr(10.0, 20.0, Seconds(6));   // never step down -> fidelity max
  RunningStats low_power;
  RunningStats high_power;
  for (const VrWindow& w : low->windows) {
    if (w.fidelity == 0) {
      low_power.Add(w.active_power);
    }
  }
  for (const VrWindow& w : high->windows) {
    if (w.fidelity == kVrFidelityLevels - 1) {
      high_power.Add(w.active_power);
    }
  }
  std::printf("\n--- fidelity-for-power range (§6.4) ---\n");
  TextTable range({"fidelity", "mean active power"});
  range.AddRow({"lowest (0)", FormatDouble(low_power.mean() * 1e3, 0) + " mW"});
  range.AddRow({"highest (" + std::to_string(kVrFidelityLevels - 1) + ")",
                FormatDouble(high_power.mean() * 1e3, 0) + " mW"});
  range.Print(std::cout);
  std::printf("achievable power range: %.1fx (paper: 8.9x, 90->800 mW)\n",
              high_power.mean() / std::max(1e-6, low_power.mean()));
  return 0;
}
