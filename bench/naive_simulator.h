// The pre-timing-wheel event engine, preserved verbatim (renamed) as a
// differential baseline: bench/micro_engine.cpp measures the rebuilt engine
// against it, and tests/sim_test.cpp replays randomized event storms through
// both and requires identical firing sequences. Binary heap ordered by
// (time, insertion-seq) with per-event std::function closures in a hash map;
// Cancel leaves a tombstone in the heap and compaction sweeps tombstones once
// they outnumber live entries.
//
// Not part of the production engine — do not include from src/.

#ifndef BENCH_NAIVE_SIMULATOR_H_
#define BENCH_NAIVE_SIMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/base/time.h"
#include "src/sim/simulator.h"  // EventId / kInvalidEventId

namespace psbox {

class NaiveSimulator {
 public:
  NaiveSimulator() = default;
  NaiveSimulator(const NaiveSimulator&) = delete;
  NaiveSimulator& operator=(const NaiveSimulator&) = delete;

  TimeNs Now() const { return now_; }

  EventId ScheduleAt(TimeNs when, std::function<void()> fn) {
    PSBOX_CHECK_GE(when, now_);
    const EventId id = ++next_id_;
    queue_.push_back(Event{when, next_seq_++, id});
    std::push_heap(queue_.begin(), queue_.end(), EventLater{});
    closures_.emplace(id, std::move(fn));
    return id;
  }

  EventId ScheduleAfter(DurationNs delay, std::function<void()> fn) {
    PSBOX_CHECK_GE(delay, 0);
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  bool Cancel(EventId id) {
    if (id == kInvalidEventId) {
      return false;
    }
    if (closures_.erase(id) == 0) {
      return false;
    }
    ++tombstones_;
    MaybeCompact();
    return true;
  }

  size_t RunUntil(TimeNs deadline) {
    size_t fired = 0;
    Event ev;
    std::function<void()> fn;
    while (PopNext(deadline, &ev, &fn)) {
      PSBOX_CHECK_GE(ev.when, now_);
      now_ = ev.when;
      ++total_fired_;
      ++fired;
      fn();
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
    return fired;
  }

  size_t RunToCompletion() {
    size_t fired = 0;
    Event ev;
    std::function<void()> fn;
    while (PopNext(/*deadline=*/-1, &ev, &fn)) {
      now_ = ev.when;
      ++total_fired_;
      ++fired;
      fn();
    }
    return fired;
  }

  bool IsPending(EventId id) const { return closures_.count(id) > 0; }
  size_t pending_events() const { return closures_.size(); }
  uint64_t total_fired() const { return total_fired_; }

 private:
  struct Event {
    TimeNs when;
    uint64_t seq;
    EventId id;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  bool PopNext(TimeNs deadline, Event* out, std::function<void()>* fn) {
    while (!queue_.empty()) {
      const Event& top = queue_.front();
      auto it = closures_.find(top.id);
      if (it == closures_.end()) {
        std::pop_heap(queue_.begin(), queue_.end(), EventLater{});
        queue_.pop_back();
        PSBOX_CHECK_GT(tombstones_, 0u);
        --tombstones_;
        continue;
      }
      if (deadline >= 0 && top.when > deadline) {
        return false;
      }
      *out = top;
      *fn = std::move(it->second);
      closures_.erase(it);
      std::pop_heap(queue_.begin(), queue_.end(), EventLater{});
      queue_.pop_back();
      return true;
    }
    return false;
  }

  void MaybeCompact() {
    if (tombstones_ <= queue_.size() / 2) {
      return;
    }
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [this](const Event& e) {
                                  return closures_.count(e.id) == 0;
                                }),
                 queue_.end());
    std::make_heap(queue_.begin(), queue_.end(), EventLater{});
    tombstones_ = 0;
  }

  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  uint64_t total_fired_ = 0;
  uint64_t tombstones_ = 0;
  std::vector<Event> queue_;
  std::unordered_map<EventId, std::function<void()>> closures_;
};

}  // namespace psbox

#endif  // BENCH_NAIVE_SIMULATOR_H_
