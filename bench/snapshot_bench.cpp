// Checkpoint/restore cost: how long does it take to serialise a busy board
// shard, how big is the snapshot, and how long does a restore take — as a
// function of how much history the shard has accumulated.
//
// Output (stdout, aligned):
//   sim_ms   snapshot_kb   save_us   restore_us   resave_identical
//
// The last column re-saves the restored world and compares bytes — the
// bit-identity contract, checked here on every row because bench scenarios
// run far longer than the unit tests' (telemetry traces, many meter
// samples, deep ledger history).

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/snapshot/board_snapshot.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {
namespace {

struct World {
  std::unique_ptr<Stack> stack;
};

void SpawnMix(Kernel& kernel, TimeNs deadline) {
  AppOptions sandboxed;
  sandboxed.use_psbox = true;
  sandboxed.deadline = deadline;
  SpawnCalib3d(kernel, "calib3d", sandboxed);
  SpawnTriangle(kernel, "triangle", sandboxed);
  SpawnScp(kernel, "scp", sandboxed);
  AppOptions plain;
  plain.deadline = deadline;
  SpawnBodytrack(kernel, "bodytrack", plain);
}

double ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void Row(TimeNs sim_time) {
  const TimeNs deadline = sim_time + Seconds(10);  // apps outlive the snapshot
  Stack original;
  SpawnMix(original.kernel, deadline);
  original.kernel.RunUntil(sim_time);

  SnapshotWriter writer;
  std::string error;
  auto t0 = std::chrono::steady_clock::now();
  PSBOX_CHECK(SaveBoardShard(original.board, original.kernel, original.manager,
                             &writer, &error));
  const std::vector<uint8_t> sealed = writer.Seal();
  const double save_us = ElapsedUs(t0);

  Stack restored;
  SnapshotReader reader;
  PSBOX_CHECK(reader.Open(sealed));
  t0 = std::chrono::steady_clock::now();
  PSBOX_CHECK(RestoreBoardShard(
      reader, restored.board, restored.kernel, restored.manager,
      [&restored, deadline] { SpawnMix(restored.kernel, deadline); }, &error));
  const double restore_us = ElapsedUs(t0);

  SnapshotWriter rewriter;
  PSBOX_CHECK(SaveBoardShard(restored.board, restored.kernel, restored.manager,
                             &rewriter, &error));
  const bool identical = rewriter.Seal() == sealed;

  std::printf("%8.0f %13.1f %9.0f %12.0f %18s\n", ToMillis(sim_time),
              sealed.size() / 1024.0, save_us, restore_us,
              identical ? "yes" : "NO");
  PSBOX_CHECK(identical);
}

}  // namespace
}  // namespace psbox

int main() {
  using namespace psbox;
  std::printf("%8s %13s %9s %12s %18s\n", "sim_ms", "snapshot_kb", "save_us",
              "restore_us", "resave_identical");
  for (const TimeNs t : {Millis(100), Millis(500), Seconds(1), Seconds(2),
                         Seconds(4)}) {
    Row(t);
  }
  return 0;
}
