// BoardPopulation: streams one board's generated app population onto its
// kernel through the event engine.
//
// Live stepping is window-based: before a shard runs an epoch to T1, the
// coordinator calls ScheduleWindow(T1), which turns every generated arrival
// in (scheduled_until, T1] into a simulator event; RunUntil(T1) fires events
// at <= T1, so the window fully drains before the barrier — a checkpoint cut
// at a barrier never sees a pending arrival event. Spawning never consults
// simulation state (no admission control), so a restore can reproduce the
// exact app/task construction sequence by replaying the generator from its
// seed through the restored clock (ReplayArrivalsThrough).
//
// Tenancy: the board gets tenants_per_board tenant sandboxes bound to all
// balloon-metered components; each arrival's app box nests under its
// round-robin tenant, claiming child_budget joules of the tenant's slice.

#ifndef SRC_POPGEN_BOARD_POPULATION_H_
#define SRC_POPGEN_BOARD_POPULATION_H_

#include <vector>

#include "src/popgen/population_generator.h"
#include "src/psbox/psbox_manager.h"

namespace psbox {

class BoardPopulation {
 public:
  // |stream_seed| must be derived from (config seed, board index) by the
  // caller so every board draws an independent deterministic stream.
  BoardPopulation(const PopulationConfig& cfg, uint64_t stream_seed,
                  int board_index, Kernel* kernel, PsboxManager* manager);

  // Creates the per-board tenant principals (apps + tenant sandboxes). Must
  // run before any arrival spawns and before any other boxes exist on the
  // board, so tenant box ids are deterministically 0..tenants-1. On the
  // restore path only the apps are re-created (the manager replays its
  // sandboxes from the snapshot itself).
  void CreateTenants(bool restoring);

  // Live stepping: schedules every arrival in (scheduled_until, until] as a
  // simulator event. Call from the shard's worker before RunUntil(until).
  void ScheduleWindow(TimeNs until);

  // Restore replay: immediately re-invokes the spawn factory for every
  // arrival in (scheduled_until, until], in arrival order. Runs under
  // Kernel::BeginRestore — the factories recreate apps/tasks for the
  // snapshot overlay; behaviors never execute.
  void ReplayArrivalsThrough(TimeNs until);

  // Population stats (fingerprinted per board).
  uint64_t spawned() const { return spawned_; }
  // Spawned apps that have run to completion, judged by the kernel.
  uint64_t CompletedCount() const;
  // Nested accounting audit over this board's tenants (see
  // PsboxManager::AccountingViolations).
  size_t AccountingViolations(double bound) const;

  int tenant_box(int tenant) const { return tenant_boxes_[static_cast<size_t>(tenant)]; }
  int tenant_count() const { return static_cast<int>(tenant_boxes_.size()); }

 private:
  void SpawnArrival(const GeneratedArrival& a);
  // Pulls the next arrival at or before |until| into |a| (the lookahead
  // overshoot is kept pending for the next window). False when the window
  // is exhausted.
  bool PopArrivalUpTo(TimeNs until, GeneratedArrival* a);

  PopulationConfig cfg_;
  int board_;
  Kernel* kernel_;
  PsboxManager* manager_;
  PopulationGenerator gen_;
  bool has_pending_ = false;
  GeneratedArrival pending_;
  TimeNs scheduled_until_ = 0;
  std::vector<int> tenant_boxes_;
  std::vector<AppId> spawned_apps_;
  uint64_t spawned_ = 0;
};

}  // namespace psbox

#endif  // SRC_POPGEN_BOARD_POPULATION_H_
