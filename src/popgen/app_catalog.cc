#include "src/popgen/app_catalog.h"

namespace psbox {

const std::vector<CatalogEntry>& AppCatalog() {
  static const std::vector<CatalogEntry> kCatalog = {
      {"calib3d", &SpawnCalib3d},
      {"bodytrack", &SpawnBodytrack},
      {"dedup", &SpawnDedup},
      {"gpu_browser", &SpawnGpuBrowser},
      {"browser_stream", &SpawnBrowserStream},
      {"magic", &SpawnMagic},
      {"cube", &SpawnCube},
      {"triangle", &SpawnTriangle},
      {"sgemm", &SpawnSgemm},
      {"dgemm", &SpawnDgemm},
      {"monte", &SpawnMonte},
      {"wifi_browser", &SpawnWifiBrowser},
      {"scp", &SpawnScp},
      {"wget", &SpawnWget},
      {"photo_sync", &SpawnPhotoSync},
      {"media_scan", &SpawnMediaScan},
      {"camouflage", &SpawnAttackerCamouflage},
  };
  return kCatalog;
}

int FindCatalogIndex(const std::string& name) {
  const auto& catalog = AppCatalog();
  for (size_t i = 0; i < catalog.size(); ++i) {
    if (name == catalog[i].name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int CamouflageIndex() { return FindCatalogIndex("camouflage"); }

std::vector<PopulationMixEntry> DefaultMix() {
  return {
      {"calib3d", 3.0},  {"bodytrack", 2.0}, {"dedup", 2.0},
      {"gpu_browser", 2.0}, {"cube", 1.0},   {"magic", 1.0},
      {"sgemm", 1.0},    {"monte", 1.0},     {"wifi_browser", 2.0},
      {"wget", 1.0},     {"photo_sync", 1.0}, {"media_scan", 1.0},
  };
}

}  // namespace psbox
