#include "src/popgen/board_population.h"

#include <algorithm>
#include <string>

#include "src/base/check.h"
#include "src/popgen/app_catalog.h"

namespace psbox {

namespace {

// The balloon-metered components tenant boxes span. Direct-metered hardware
// (display, GPS) never composes — no balloons — so tenants exclude it.
const std::vector<HwComponent>& TenantComponents() {
  static const std::vector<HwComponent> kComponents = {
      HwComponent::kCpu, HwComponent::kGpu, HwComponent::kDsp,
      HwComponent::kWifi, HwComponent::kStorage};
  return kComponents;
}

}  // namespace

BoardPopulation::BoardPopulation(const PopulationConfig& cfg,
                                 uint64_t stream_seed, int board_index,
                                 Kernel* kernel, PsboxManager* manager)
    : cfg_(cfg), board_(board_index), kernel_(kernel), manager_(manager),
      gen_(cfg, stream_seed) {
  PSBOX_CHECK(kernel_ != nullptr);
  PSBOX_CHECK(manager_ != nullptr);
}

void BoardPopulation::CreateTenants(bool restoring) {
  PSBOX_CHECK(tenant_boxes_.empty());
  for (int i = 0; i < cfg_.tenants_per_board; ++i) {
    const std::string name =
        "tenant" + std::to_string(i) + "@b" + std::to_string(board_);
    const AppId app = kernel_->CreateApp(name);
    if (restoring) {
      // The manager replays its sandboxes from the snapshot; tenant boxes
      // were created first on this board, so their ids are 0..tenants-1.
      tenant_boxes_.push_back(i);
      continue;
    }
    PSBOX_CHECK_EQ(manager_->box_count(), static_cast<size_t>(i));
    const int box = manager_->CreateBox(app, TenantComponents());
    manager_->sandbox(box).set_budget(cfg_.tenant_budget);
    tenant_boxes_.push_back(box);
  }
}

bool BoardPopulation::PopArrivalUpTo(TimeNs until, GeneratedArrival* a) {
  if (!has_pending_) {
    pending_ = gen_.Next();
    has_pending_ = true;
  }
  if (pending_.when > until) {
    return false;  // overshoot stays pending for the next window
  }
  *a = pending_;
  has_pending_ = false;
  return true;
}

void BoardPopulation::ScheduleWindow(TimeNs until) {
  PSBOX_CHECK_GE(until, scheduled_until_);
  GeneratedArrival a;
  while (PopArrivalUpTo(until, &a)) {
    kernel_->sim().ScheduleAt(a.when, [this, a] { SpawnArrival(a); });
  }
  scheduled_until_ = until;
}

void BoardPopulation::ReplayArrivalsThrough(TimeNs until) {
  GeneratedArrival a;
  while (PopArrivalUpTo(until, &a)) {
    SpawnArrival(a);
  }
  scheduled_until_ = std::max(scheduled_until_, until);
}

void BoardPopulation::SpawnArrival(const GeneratedArrival& a) {
  const CatalogEntry& entry =
      AppCatalog()[static_cast<size_t>(a.catalog_index)];
  AppOptions opts;
  opts.iterations = a.iterations;
  opts.use_psbox = true;
  if (a.tenant >= 0) {
    opts.psbox_parent = tenant_boxes_[static_cast<size_t>(a.tenant)];
    opts.psbox_budget = cfg_.child_budget;
  }
  const std::string label = std::string(a.adversarial ? "adv" : "pop") +
                            std::to_string(a.seq) + ":" + entry.name + "@b" +
                            std::to_string(board_);
  const AppHandle handle = entry.factory(*kernel_, label, opts);
  spawned_apps_.push_back(handle.app);
  ++spawned_;
}

uint64_t BoardPopulation::CompletedCount() const {
  uint64_t done = 0;
  for (const AppId app : spawned_apps_) {
    if (kernel_->AppFinished(app)) {
      ++done;
    }
  }
  return done;
}

size_t BoardPopulation::AccountingViolations(double bound) const {
  return manager_->AccountingViolations(bound);
}

}  // namespace psbox
