// AppCatalog: the name -> factory registry the population generator draws
// from. Every entry is a behavior-library factory (table5_apps.h) reachable
// from a PopulationConfig mix row by name.

#ifndef SRC_POPGEN_APP_CATALOG_H_
#define SRC_POPGEN_APP_CATALOG_H_

#include <string>
#include <vector>

#include "src/popgen/population_config.h"
#include "src/workloads/table5_apps.h"

namespace psbox {

using PopAppFactory = AppHandle (*)(Kernel&, const std::string&, AppOptions);

struct CatalogEntry {
  const char* name;
  PopAppFactory factory;
};

// All spawnable population apps, in a fixed order (indices are stable —
// GeneratedArrival records them).
const std::vector<CatalogEntry>& AppCatalog();

// Index of |name| in AppCatalog(), or -1 if unknown.
int FindCatalogIndex(const std::string& name);

// Catalog index of the camouflage probe app adversarial arrivals turn into.
int CamouflageIndex();

// The default app mix used when a PopulationConfig carries no mix rows:
// short CPU work dominates, with GPU/DSP/WiFi/storage tails.
std::vector<PopulationMixEntry> DefaultMix();

}  // namespace psbox

#endif  // SRC_POPGEN_APP_CATALOG_H_
