#include "src/popgen/population_generator.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"
#include "src/popgen/app_catalog.h"

namespace psbox {

PopulationGenerator::PopulationGenerator(const PopulationConfig& cfg,
                                         uint64_t stream_seed)
    : cfg_(cfg), rng_(stream_seed) {
  PSBOX_CHECK(cfg_.enabled());
  PSBOX_CHECK_LE(cfg_.min_iterations, cfg_.max_iterations);
  const std::vector<PopulationMixEntry> mix =
      cfg_.mix.empty() ? DefaultMix() : cfg_.mix;
  for (const auto& m : mix) {
    const int idx = FindCatalogIndex(m.app);
    PSBOX_CHECK_GE(idx, 0);
    PSBOX_CHECK_GT(m.weight, 0.0);
    mix_index_.push_back(idx);
    total_weight_ += m.weight;
    cum_weights_.push_back(total_weight_);
  }
  peak_rate_ = cfg_.base_rate_hz * (1.0 + cfg_.diurnal_amplitude) *
               std::max(1.0, cfg_.flash_multiplier);
}

double PopulationGenerator::RateAt(TimeNs t) const {
  double rate = cfg_.base_rate_hz;
  if (cfg_.diurnal_amplitude > 0.0 && cfg_.diurnal_period > 0) {
    const double frac =
        static_cast<double>(t % cfg_.diurnal_period) /
        static_cast<double>(cfg_.diurnal_period);
    rate *= 1.0 + cfg_.diurnal_amplitude * std::sin(2.0 * M_PI * frac);
  }
  if (cfg_.flash_duration > 0 && t >= cfg_.flash_start &&
      t < cfg_.flash_start + cfg_.flash_duration) {
    rate *= cfg_.flash_multiplier;
  }
  return rate;
}

GeneratedArrival PopulationGenerator::Next() {
  // Thinning: exponential candidate gaps at the peak rate, accepted with
  // probability rate(t)/peak. peak >= rate(t) everywhere by construction.
  for (;;) {
    const double gap_s = rng_.Exponential(1.0 / peak_rate_);
    const auto gap =
        static_cast<DurationNs>(std::min(gap_s * 1e9, 9.0e15));  // finite clamp
    clock_ += std::max<DurationNs>(1, gap);
    if (rng_.NextDouble() * peak_rate_ <= RateAt(clock_)) {
      break;
    }
  }
  GeneratedArrival a;
  a.when = clock_;
  a.seq = seq_++;
  // Adversarial phase: recurring windows (period 0 = always in phase) in
  // which arrivals turn into camouflage probes with the configured odds.
  bool in_phase = cfg_.adversarial_fraction > 0.0;
  if (in_phase && cfg_.adversarial_period > 0) {
    const auto phase = static_cast<double>(a.when % cfg_.adversarial_period);
    in_phase = phase < cfg_.adversarial_duty *
                           static_cast<double>(cfg_.adversarial_period);
  }
  // Fixed draw order (mix pick, then Pareto, then the adversarial coin) so
  // the stream stays stable however the arrival is classified.
  const double pick = rng_.NextDouble() * total_weight_;
  const auto it =
      std::upper_bound(cum_weights_.begin(), cum_weights_.end(), pick);
  const size_t mi = std::min<size_t>(
      static_cast<size_t>(it - cum_weights_.begin()), mix_index_.size() - 1);
  a.catalog_index = mix_index_[mi];
  // Bounded Pareto on [min, max] with shape alpha (heavy-tailed work sizes).
  const double lo = static_cast<double>(cfg_.min_iterations);
  const double hi = static_cast<double>(cfg_.max_iterations);
  uint64_t iters = cfg_.min_iterations;
  if (cfg_.max_iterations > cfg_.min_iterations) {
    const double u = rng_.NextDouble();
    const double x =
        lo / std::pow(1.0 - u * (1.0 - std::pow(lo / hi, cfg_.pareto_alpha)),
                      1.0 / cfg_.pareto_alpha);
    iters = static_cast<uint64_t>(x);
    iters = std::max(cfg_.min_iterations, std::min(cfg_.max_iterations, iters));
  }
  a.iterations = iters;
  if (in_phase && rng_.Bernoulli(cfg_.adversarial_fraction)) {
    a.adversarial = true;
    a.catalog_index = CamouflageIndex();
  }
  if (cfg_.tenants_per_board > 0) {
    a.tenant = static_cast<int>(a.seq %
                                static_cast<uint64_t>(cfg_.tenants_per_board));
  }
  return a;
}

}  // namespace psbox
