// PopulationGenerator: the seeded arrival stream behind a PopulationConfig.
//
// Arrivals follow a nonhomogeneous Poisson process realised by thinning
// against the peak rate: candidate gaps are exponential at the peak, and a
// candidate at t survives with probability rate(t)/peak — so diurnal waves
// and flash crowds shape the intensity while every draw still comes from one
// seeded stream. The sequence is a pure function of (config, stream seed):
// replaying Next() after a restore regenerates the identical population.

#ifndef SRC_POPGEN_POPULATION_GENERATOR_H_
#define SRC_POPGEN_POPULATION_GENERATOR_H_

#include <vector>

#include "src/base/rng.h"
#include "src/popgen/population_config.h"

namespace psbox {

// One generated app arrival.
struct GeneratedArrival {
  TimeNs when = 0;
  uint64_t seq = 0;        // per-stream arrival index
  int catalog_index = -1;  // into AppCatalog()
  uint64_t iterations = 0;
  bool adversarial = false;  // camouflage side-channel probe
  int tenant = -1;           // tenant slot on the board (-1 = no tenants)
};

class PopulationGenerator {
 public:
  PopulationGenerator(const PopulationConfig& cfg, uint64_t stream_seed);

  // The next arrival; |when| is strictly increasing across calls.
  GeneratedArrival Next();

  // Instantaneous arrival rate (arrivals/s) at |t|: base rate shaped by the
  // diurnal sine and the flash-crowd window.
  double RateAt(TimeNs t) const;

  uint64_t generated() const { return seq_; }

 private:
  PopulationConfig cfg_;
  std::vector<int> mix_index_;        // catalog index per mix entry
  std::vector<double> cum_weights_;   // cumulative mix weights
  double total_weight_ = 0.0;
  double peak_rate_ = 0.0;
  Rng rng_;
  TimeNs clock_ = 0;
  uint64_t seq_ = 0;
};

}  // namespace psbox

#endif  // SRC_POPGEN_POPULATION_GENERATOR_H_
