#include "src/popgen/population_config.h"

#include <cerrno>
#include <cstdlib>

#include "src/base/csv.h"
#include "src/popgen/app_catalog.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

namespace {

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 0);  // 0x ok
  if (errno != 0 || end == s.c_str() || *end != '\0') {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end == s.c_str() || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) {
    *error = msg;
  }
  return false;
}

}  // namespace

bool ParsePopulationConfig(const std::string& text, PopulationConfig* out,
                           std::string* error) {
  PopulationConfig cfg;
  cfg.mix.clear();
  for (const auto& row : CsvReader::Parse(text)) {
    const std::string& key = row[0];
    if (key == "mix") {
      if (row.size() != 3) {
        return Fail(error, "mix rows must be 'mix,<app>,<weight>'");
      }
      if (FindCatalogIndex(row[1]) < 0) {
        return Fail(error, "unknown app '" + row[1] +
                               "' in mix row (see AppCatalog for valid names)");
      }
      double weight = 0.0;
      if (!ParseF64(row[2], &weight) || weight <= 0.0) {
        return Fail(error, "mix weight for '" + row[1] +
                               "' must be a positive number, got '" + row[2] + "'");
      }
      cfg.mix.push_back({row[1], weight});
      continue;
    }
    if (row.size() != 2) {
      return Fail(error, "row for key '" + key + "' must be 'key,value'");
    }
    const std::string& val = row[1];
    double f = 0.0;
    uint64_t u = 0;
    if (key == "seed") {
      if (!ParseU64(val, &cfg.seed)) {
        return Fail(error, "seed must be an unsigned integer, got '" + val + "'");
      }
    } else if (key == "base_rate_hz") {
      if (!ParseF64(val, &cfg.base_rate_hz) || cfg.base_rate_hz <= 0.0) {
        return Fail(error, "base_rate_hz must be > 0, got '" + val + "'");
      }
    } else if (key == "diurnal_amplitude") {
      if (!ParseF64(val, &cfg.diurnal_amplitude) || cfg.diurnal_amplitude < 0.0 ||
          cfg.diurnal_amplitude >= 1.0) {
        return Fail(error, "diurnal_amplitude must be in [0, 1), got '" + val + "'");
      }
    } else if (key == "diurnal_period_ms") {
      if (!ParseF64(val, &f) || f <= 0.0) {
        return Fail(error, "diurnal_period_ms must be > 0, got '" + val + "'");
      }
      cfg.diurnal_period = static_cast<DurationNs>(f * kMillisecond);
    } else if (key == "flash_start_ms") {
      if (!ParseF64(val, &f) || f < 0.0) {
        return Fail(error, "flash_start_ms must be >= 0, got '" + val + "'");
      }
      cfg.flash_start = static_cast<TimeNs>(f * kMillisecond);
    } else if (key == "flash_duration_ms") {
      if (!ParseF64(val, &f) || f < 0.0) {
        return Fail(error, "flash_duration_ms must be >= 0, got '" + val + "'");
      }
      cfg.flash_duration = static_cast<DurationNs>(f * kMillisecond);
    } else if (key == "flash_multiplier") {
      if (!ParseF64(val, &cfg.flash_multiplier) || cfg.flash_multiplier <= 0.0) {
        return Fail(error, "flash_multiplier must be > 0, got '" + val + "'");
      }
    } else if (key == "adversarial_fraction") {
      if (!ParseF64(val, &cfg.adversarial_fraction) ||
          cfg.adversarial_fraction < 0.0 || cfg.adversarial_fraction > 1.0) {
        return Fail(error,
                    "adversarial_fraction must be in [0, 1], got '" + val + "'");
      }
    } else if (key == "adversarial_period_ms") {
      if (!ParseF64(val, &f) || f < 0.0) {
        return Fail(error, "adversarial_period_ms must be >= 0, got '" + val + "'");
      }
      cfg.adversarial_period = static_cast<DurationNs>(f * kMillisecond);
    } else if (key == "adversarial_duty") {
      if (!ParseF64(val, &cfg.adversarial_duty) || cfg.adversarial_duty < 0.0 ||
          cfg.adversarial_duty > 1.0) {
        return Fail(error, "adversarial_duty must be in [0, 1], got '" + val + "'");
      }
    } else if (key == "pareto_alpha") {
      if (!ParseF64(val, &cfg.pareto_alpha) || cfg.pareto_alpha <= 0.0) {
        return Fail(error, "pareto_alpha must be > 0, got '" + val + "'");
      }
    } else if (key == "min_iterations") {
      if (!ParseU64(val, &cfg.min_iterations) || cfg.min_iterations == 0) {
        return Fail(error, "min_iterations must be >= 1, got '" + val + "'");
      }
    } else if (key == "max_iterations") {
      if (!ParseU64(val, &cfg.max_iterations) || cfg.max_iterations == 0) {
        return Fail(error, "max_iterations must be >= 1, got '" + val + "'");
      }
    } else if (key == "tenants_per_board") {
      if (!ParseU64(val, &u) || u > 64) {
        return Fail(error,
                    "tenants_per_board must be an integer in [0, 64], got '" +
                        val + "'");
      }
      cfg.tenants_per_board = static_cast<int>(u);
    } else if (key == "tenant_budget_j") {
      if (!ParseF64(val, &cfg.tenant_budget) || cfg.tenant_budget < 0.0) {
        return Fail(error, "tenant_budget_j must be >= 0, got '" + val + "'");
      }
    } else if (key == "child_budget_j") {
      if (!ParseF64(val, &cfg.child_budget) || cfg.child_budget < 0.0) {
        return Fail(error, "child_budget_j must be >= 0, got '" + val + "'");
      }
    } else {
      return Fail(error, "unknown population config key '" + key + "'");
    }
  }
  if (!cfg.enabled()) {
    return Fail(error, "population config must set base_rate_hz > 0");
  }
  if (cfg.min_iterations > cfg.max_iterations) {
    return Fail(error, "min_iterations must be <= max_iterations");
  }
  *out = cfg;
  return true;
}

bool LoadPopulationConfig(const std::string& path, PopulationConfig* out,
                          std::string* error) {
  std::vector<std::vector<std::string>> rows;
  if (!CsvReader::ReadFile(path, &rows, error)) {
    return false;
  }
  // Re-parse from text for one shared code path: rebuild the CSV text.
  std::string text;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) {
        text += ',';
      }
      text += row[i];
    }
    text += '\n';
  }
  return ParsePopulationConfig(text, out, error);
}

void PopulationConfig::SaveState(SnapshotWriter& w) const {
  w.U64(seed);
  w.F64(base_rate_hz);
  w.F64(diurnal_amplitude);
  w.I64(diurnal_period);
  w.I64(flash_start);
  w.I64(flash_duration);
  w.F64(flash_multiplier);
  w.F64(adversarial_fraction);
  w.I64(adversarial_period);
  w.F64(adversarial_duty);
  w.F64(pareto_alpha);
  w.U64(min_iterations);
  w.U64(max_iterations);
  w.U64(static_cast<uint64_t>(tenants_per_board));
  w.F64(tenant_budget);
  w.F64(child_budget);
  w.U64(mix.size());
  for (const auto& m : mix) {
    w.Str(m.app);
    w.F64(m.weight);
  }
}

void PopulationConfig::RestoreState(SnapshotReader& r) {
  seed = r.U64();
  base_rate_hz = r.F64();
  diurnal_amplitude = r.F64();
  diurnal_period = r.I64();
  flash_start = r.I64();
  flash_duration = r.I64();
  flash_multiplier = r.F64();
  adversarial_fraction = r.F64();
  adversarial_period = r.I64();
  adversarial_duty = r.F64();
  pareto_alpha = r.F64();
  min_iterations = r.U64();
  max_iterations = r.U64();
  tenants_per_board = static_cast<int>(r.U64());
  tenant_budget = r.F64();
  child_budget = r.F64();
  mix.clear();
  const size_t n = r.Count(9);
  for (size_t i = 0; i < n && r.ok(); ++i) {
    PopulationMixEntry m;
    m.app = r.Str();
    m.weight = r.F64();
    mix.push_back(std::move(m));
  }
}

bool PopulationConfig::operator==(const PopulationConfig& other) const {
  if (seed != other.seed || base_rate_hz != other.base_rate_hz ||
      diurnal_amplitude != other.diurnal_amplitude ||
      diurnal_period != other.diurnal_period ||
      flash_start != other.flash_start ||
      flash_duration != other.flash_duration ||
      flash_multiplier != other.flash_multiplier ||
      adversarial_fraction != other.adversarial_fraction ||
      adversarial_period != other.adversarial_period ||
      adversarial_duty != other.adversarial_duty ||
      pareto_alpha != other.pareto_alpha ||
      min_iterations != other.min_iterations ||
      max_iterations != other.max_iterations ||
      tenants_per_board != other.tenants_per_board ||
      tenant_budget != other.tenant_budget ||
      child_budget != other.child_budget || mix.size() != other.mix.size()) {
    return false;
  }
  for (size_t i = 0; i < mix.size(); ++i) {
    if (mix[i].app != other.mix[i].app || mix[i].weight != other.mix[i].weight) {
      return false;
    }
  }
  return true;
}

}  // namespace psbox
