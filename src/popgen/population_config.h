// PopulationConfig: a small seeded description of an endless app population.
//
// "Millions of users" cannot be a fixed cast: this config drives a
// nonhomogeneous Poisson arrival process (diurnal waves, flash crowds,
// recurring adversarial phases) over a weighted mix of the behavior-library
// apps with bounded-Pareto (heavy-tailed) iteration counts. Every draw comes
// from one seeded stream per board, so the generated population — and hence
// the fleet fingerprint — is a pure function of (config, board index),
// bit-identical across worker-thread counts and reproducible from a
// checkpoint by replaying the generator through the restored clock.

#ifndef SRC_POPGEN_POPULATION_CONFIG_H_
#define SRC_POPGEN_POPULATION_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/base/types.h"

namespace psbox {

class SnapshotReader;
class SnapshotWriter;

// One app-mix row: relative weight of |app| (an AppCatalog name) among
// arrivals.
struct PopulationMixEntry {
  std::string app;
  double weight = 1.0;
};

struct PopulationConfig {
  uint64_t seed = 0x90D5;
  // Mean arrival rate per board in arrivals/second; 0 disables the
  // population generator entirely.
  double base_rate_hz = 0.0;
  // Diurnal wave: rate(t) scales by 1 + amplitude * sin(2*pi*t/period).
  double diurnal_amplitude = 0.0;  // in [0, 1)
  DurationNs diurnal_period = 500 * kMillisecond;
  // Flash crowd: the rate is multiplied by |flash_multiplier| inside
  // [flash_start, flash_start + flash_duration).
  TimeNs flash_start = 0;
  DurationNs flash_duration = 0;
  double flash_multiplier = 1.0;
  // Adversarial phases: within each |adversarial_period| window, the first
  // |adversarial_duty| fraction is a phase in which each arrival becomes a
  // camouflage side-channel probe with probability |adversarial_fraction|.
  // period 0 = the phase is always active.
  double adversarial_fraction = 0.0;
  DurationNs adversarial_period = 0;
  double adversarial_duty = 1.0;
  // Heavy-tailed per-app work: iteration counts drawn from a bounded Pareto
  // on [min_iterations, max_iterations] with shape |pareto_alpha|.
  double pareto_alpha = 1.5;
  uint64_t min_iterations = 2;
  uint64_t max_iterations = 48;
  // Tenancy: each board gets |tenants_per_board| tenant sandboxes (bound to
  // all balloon-metered components); arrivals are assigned round-robin and
  // their app boxes nest under the tenant, claiming |child_budget| joules of
  // the tenant's |tenant_budget| slice (0 = unbudgeted). 0 tenants = the
  // generated apps run in top-level boxes.
  int tenants_per_board = 2;
  Joules tenant_budget = 0.0;
  Joules child_budget = 0.0;
  // App mix over AppCatalog names; empty = DefaultMix().
  std::vector<PopulationMixEntry> mix;

  bool enabled() const { return base_rate_hz > 0.0; }

  // Checkpoint compat block: a restored fleet must regenerate the identical
  // population, so the full config rides in the snapshot and is compared on
  // restore.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);
  bool operator==(const PopulationConfig& other) const;
};

// Parses a population config CSV: "key,value" rows plus "mix,<app>,<weight>"
// rows (blank lines and '#' comments skipped; durations are *_ms keys in
// milliseconds, budgets are *_j keys in joules). Returns false with a
// descriptive |error| on unknown keys, malformed numbers, unknown catalog
// apps, or out-of-range values.
bool ParsePopulationConfig(const std::string& text, PopulationConfig* out,
                           std::string* error);
// Same, reading |path| first.
bool LoadPopulationConfig(const std::string& path, PopulationConfig* out,
                          std::string* error);

}  // namespace psbox

#endif  // SRC_POPGEN_POPULATION_CONFIG_H_
