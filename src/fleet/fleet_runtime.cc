#include "src/fleet/fleet_runtime.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {
namespace {

// SplitMix64 step: derives statistically independent per-shard seeds from
// (fleet seed, stream index) so board randomness never depends on how many
// boards exist before it in the spec list.
uint64_t DeriveSeed(uint64_t master, uint64_t stream) {
  uint64_t z = master + (stream + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FleetRuntime::FleetRuntime(FleetScenario scenario)
    : scenario_(std::move(scenario)), policy_(scenario_.migration) {
  BuildShards();
}

FleetRuntime::~FleetRuntime() = default;

void FleetRuntime::BuildShards() {
  PSBOX_CHECK(!scenario_.boards.empty());
  PSBOX_CHECK_GT(scenario_.epoch, 0);
  PSBOX_CHECK_GT(scenario_.horizon, 0);
  PSBOX_CHECK_GE(scenario_.subfleets, 1);
  PSBOX_CHECK_LE(static_cast<size_t>(scenario_.subfleets),
                 scenario_.boards.size());
  PSBOX_CHECK_GE(scenario_.root_period, 1);
  PSBOX_CHECK_GE(scenario_.fleet_budget, 0.0);

  shards_.reserve(scenario_.boards.size());
  board_iterations_.assign(scenario_.boards.size(), 0);
  for (size_t i = 0; i < scenario_.boards.size(); ++i) {
    const FleetBoardSpec& spec = scenario_.boards[i];
    auto shard = std::make_unique<FleetShard>();
    shard->index = static_cast<int>(i);
    shard->fail_at = spec.fail_at;
    BoardConfig board_config = spec.board;
    board_config.seed = DeriveSeed(scenario_.seed, i * 2);
    board_config.faults.seed = DeriveSeed(scenario_.seed, i * 2 + 1);
    shard->board = std::make_unique<Board>(board_config);
    shard->kernel = std::make_unique<Kernel>(shard->board.get(), spec.kernel);
    shard->manager = std::make_unique<PsboxManager>(shard->kernel.get());
    if (scenario_.population.enabled()) {
      // An independent deterministic stream per board, keyed off the
      // population's own seed space (stream indices disjoint from the
      // board/fault streams above by construction — different master seed).
      shard->population = std::make_unique<BoardPopulation>(
          scenario_.population, DeriveSeed(scenario_.population.seed, i),
          static_cast<int>(i), shard->kernel.get(), shard->manager.get());
    }
    shards_.push_back(std::move(shard));
  }

  apps_.reserve(scenario_.apps.size());
  for (const FleetAppSpec& spec : scenario_.apps) {
    PSBOX_CHECK(spec.factory != nullptr);
    PSBOX_CHECK_GE(spec.board, 0);
    PSBOX_CHECK_LT(static_cast<size_t>(spec.board), shards_.size());
    PSBOX_CHECK(spec.options.stop == nullptr);  // the coordinator owns this
    FleetAppRuntime app;
    app.spec = spec;
    app.budget_remaining = spec.energy_budget;
    app.remaining = spec.options.iterations;
    apps_.push_back(std::move(app));
  }
}

void FleetRuntime::SpawnOn(FleetAppRuntime& app, int board_index,
                           std::vector<SpawnRecord>* spawn_log) {
  FleetShard& shard = *shards_[static_cast<size_t>(board_index)];
  AppOptions opts = app.spec.options;
  opts.iterations = app.remaining;
  app.stop = std::make_shared<bool>(false);
  opts.stop = app.stop;
  std::string label = app.spec.name;
  if (app.hops > 0) {
    // Hop-qualified label so every instance is distinct in per-board output.
    label += "@b" + std::to_string(board_index);
  }
  spawn_log->push_back({static_cast<int>(&app - apps_.data()), board_index,
                        label, app.remaining, shard.now});
  app.handle = app.spec.factory(*shard.kernel, label, opts);
  app.board = board_index;
  app.draining = false;
  app.parked = false;
  app.evac_pending = false;
  app.cross_target = -1;
  app.parked_from = -1;
  app.transferred_base = 0.0;  // a state transfer re-seeds this afterwards
}

Joules FleetRuntime::CloseHop(FleetAppRuntime& app, Joules* raw_reading) {
  // Raw cumulative meter value for this hop (any transferred base included):
  // the wrap behaviour's exit reading when the app drained cleanly, otherwise
  // (crash evacuation, end-of-run settle) a live virtual-meter read at the
  // shard's current instant.
  Joules raw = app.transferred_base;  // box never created: carried value only
  if (app.spec.options.use_psbox && app.handle.stats != nullptr) {
    app.ever_sandboxed = true;
    if (app.handle.stats->psbox_energy >= 0.0) {
      raw = app.handle.stats->psbox_energy;
    } else if (app.handle.stats->box >= 0) {
      FleetShard& shard = *shards_[static_cast<size_t>(app.board)];
      raw = shard.manager->ReadEnergy(app.handle.stats->box);
    }
  }
  if (raw_reading != nullptr) {
    *raw_reading = raw;
  }
  // Billing excludes what a state transfer carried onto this board — that
  // part was already billed on the boards that actually spent it.
  const Joules consumed = std::max(0.0, raw - app.transferred_base);
  app.billed += consumed;
  app.budget_remaining = std::max(0.0, app.budget_remaining - consumed);

  // Iteration progress: fold this hop into the app's running total, shrink
  // the remaining target, and attribute the work to the board it ran on.
  const uint64_t done_hop =
      app.handle.stats != nullptr ? app.handle.stats->iterations : 0;
  app.iterations_prev += done_hop;
  if (app.remaining > 0) {
    app.remaining = done_hop >= app.remaining ? 0 : app.remaining - done_hop;
  }
  board_iterations_[static_cast<size_t>(app.board)] += done_hop;
  return consumed;
}

bool FleetRuntime::TransferAppState(FleetAppRuntime& app, int source,
                                    int target, Joules raw_reading,
                                    std::vector<SpawnRecord>* spawn_log) {
  const bool transferred = [&] {
    if (!scenario_.crash_state_transfer || !app.spec.options.use_psbox) {
      return false;  // no virtual meter, nothing transferable
    }
    // The dying board serialises the app's billing state; a torn write
    // (power already failing) truncates the blob, which the CRC/size
    // validation below rejects — we then fall back to the drain-style carry.
    FleetShard& src = *shards_[static_cast<size_t>(source)];
    SnapshotWriter w;
    w.Section("evac");
    w.Str(app.spec.name);
    w.F64(app.budget_remaining);
    w.F64(raw_reading);
    w.U64(app.iterations_prev);
    std::vector<uint8_t> blob = w.Seal();
    if (src.board->fault_injector().ShouldCorruptSnapshot()) {
      blob.resize(blob.size() / 2);
    }
    SnapshotReader r;
    if (!r.Open(blob) || !r.Section("evac")) {
      return false;
    }
    const std::string name = r.Str();
    const Joules budget = r.F64();
    const Joules carried = r.F64();
    const uint64_t iterations = r.U64();
    if (!r.ok() || name != app.spec.name) {
      return false;
    }
    SpawnOn(app, target, spawn_log);
    // Billing resumes from the transferred raw value: the target's manager
    // seeds the app's next sandbox with it, and hop accounting subtracts it.
    app.budget_remaining = budget;
    app.iterations_prev = iterations;
    if (carried > 0.0) {
      shards_[static_cast<size_t>(target)]->manager->StageTransferredEnergy(
          app.handle.app, carried);
      app.transferred_base = carried;
    }
    return true;
  }();
  if (!transferred) {
    SpawnOn(app, target, spawn_log);  // drain-style carry: billing restarts at 0
  }
  return transferred;
}

Joules FleetRuntime::BoardEnergy(int index) const {
  FleetShard& shard = *shards_[static_cast<size_t>(index)];
  Joules total = 0.0;
  for (size_t c = 0; c < kNumHwComponents; ++c) {
    total += shard.board->RailFor(static_cast<HwComponent>(c))
                 .EnergyOver(0, shard.now);
  }
  return total;
}

}  // namespace psbox
