#include "src/fleet/root_coordinator.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "src/base/check.h"
#include "src/snapshot/board_snapshot.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {
namespace {

// Even division of the fleet-wide worker budget: every sub-fleet gets at
// least one worker; the first |threads % subfleets| slices get the spare.
std::vector<int> SplitThreads(int subfleets, int threads) {
  PSBOX_CHECK_GE(threads, 1);
  std::vector<int> split(static_cast<size_t>(subfleets), 1);
  const int base = threads / subfleets;
  const int rem = threads % subfleets;
  for (int s = 0; s < subfleets; ++s) {
    split[static_cast<size_t>(s)] = std::max(1, base + (s < rem ? 1 : 0));
  }
  return split;
}

}  // namespace

RootCoordinator::RootCoordinator(FleetScenario scenario, int threads)
    : rt_(std::move(scenario)) {
  Init(SplitThreads(rt_.scenario().subfleets, threads), /*spawn=*/true);
}

RootCoordinator::RootCoordinator(FleetScenario scenario,
                                 std::vector<int> subfleet_threads)
    : rt_(std::move(scenario)) {
  Init(subfleet_threads, /*spawn=*/true);
}

RootCoordinator::RootCoordinator(FleetScenario scenario, int threads,
                                 RestoreTag)
    : rt_(std::move(scenario)) {
  // Checkpoint restore: sub-fleets and app runtimes are built, but every
  // spawn is replayed from the checkpoint's logs instead (LoadCheckpoint).
  Init(SplitThreads(rt_.scenario().subfleets, threads), /*spawn=*/false);
}

RootCoordinator::~RootCoordinator() = default;

void RootCoordinator::Init(const std::vector<int>& threads_per_subfleet,
                           bool spawn) {
  const int subfleet_count = rt_.scenario().subfleets;
  PSBOX_CHECK_EQ(static_cast<int>(threads_per_subfleet.size()),
                 subfleet_count);
  const int boards = static_cast<int>(rt_.shards().size());
  const int base = boards / subfleet_count;
  const int rem = boards % subfleet_count;
  board_to_subfleet_.assign(static_cast<size_t>(boards), 0);
  int first = 0;
  for (int s = 0; s < subfleet_count; ++s) {
    const int count = base + (s < rem ? 1 : 0);
    PSBOX_CHECK_GE(threads_per_subfleet[static_cast<size_t>(s)], 1);
    subfleets_.push_back(std::make_unique<SubFleetCoordinator>(
        &rt_, s, first, count, threads_per_subfleet[static_cast<size_t>(s)]));
    for (int b = first; b < first + count; ++b) {
      board_to_subfleet_[static_cast<size_t>(b)] = s;
    }
    first += count;
  }

  budget_.total = rt_.scenario().fleet_budget;
  budget_.allocation.assign(static_cast<size_t>(subfleet_count), 0.0);
  budget_.consumed.assign(static_cast<size_t>(subfleet_count), 0.0);
  if (budget_.enabled()) {
    // Initial division: proportional to board count (everything is alive).
    for (int s = 0; s < subfleet_count; ++s) {
      budget_.allocation[static_cast<size_t>(s)] =
          budget_.total * subfleets_[static_cast<size_t>(s)]->board_count() /
          boards;
      subfleets_[static_cast<size_t>(s)]->set_allocation(
          budget_.allocation[static_cast<size_t>(s)]);
    }
  }

  if (subfleet_count > 1) {
    driver_pool_ = std::make_unique<ThreadPool>(subfleet_count);
  }

  if (spawn) {
    // Tenant principals first: their apps and sandboxes must precede every
    // other app and box on a board so their ids stay deterministic and the
    // generated arrivals can nest under them from the first epoch. The
    // restore path recreates them inside the per-shard replay instead.
    for (auto& shard : rt_.shards()) {
      if (shard->population != nullptr) {
        shard->population->CreateTenants(/*restoring=*/false);
      }
    }
    auto& apps = rt_.apps();
    for (size_t i = 0; i < apps.size(); ++i) {
      SubFleetCoordinator& sf =
          *subfleets_[static_cast<size_t>(SubfleetOf(apps[i].spec.board))];
      sf.AdoptApp(static_cast<int>(i));
      rt_.SpawnOn(apps[i], apps[i].spec.board, &sf.spawn_log());
    }
  }
}

void RootCoordinator::MoveApp(int app_index, int from_subfleet,
                              int to_subfleet) {
  if (from_subfleet == to_subfleet) {
    return;
  }
  subfleets_[static_cast<size_t>(from_subfleet)]->ReleaseApp(app_index);
  subfleets_[static_cast<size_t>(to_subfleet)]->AdoptApp(app_index);
}

void RootCoordinator::RunRounds(TimeNs from, TimeNs until) {
  if (subfleets_.size() == 1) {
    subfleets_[0]->RunRound(from, until);
    return;
  }
  for (auto& sf : subfleets_) {
    SubFleetCoordinator* p = sf.get();
    driver_pool_->Submit([p, from, until] { p->RunRound(from, until); });
  }
  driver_pool_->WaitIdle();
}

void RootCoordinator::BoundaryBarriers(TimeNs now) {
  if (subfleets_.size() == 1) {
    subfleets_[0]->ProcessBarrier(now);
    subfleets_[0]->TrimShards();
    return;
  }
  // Safe to run concurrently: each barrier touches only its own shard slice
  // and its own app ownership list.
  for (auto& sf : subfleets_) {
    SubFleetCoordinator* p = sf.get();
    driver_pool_->Submit([p, now] {
      p->ProcessBarrier(now);
      p->TrimShards();
    });
  }
  driver_pool_->WaitIdle();
}

void RootCoordinator::ProcessRootBarrier(TimeNs now) {
  const size_t subfleet_count = subfleets_.size();
  auto& apps = rt_.apps();
  auto& shards = rt_.shards();
  const MigrationPolicy& policy = rt_.policy();

  // --- 1. digest exchange --------------------------------------------------
  std::vector<SubFleetDigest> digests;
  digests.reserve(subfleet_count);
  for (auto& sf : subfleets_) {
    digests.push_back(sf->BuildDigest());
  }
  // Global load view assembled purely from the digests. For placement this
  // is as fresh as it gets (the digests were built at this boundary); the
  // point is that it is the *only* remote state the root consumes.
  std::vector<BoardLoad> view(shards.size());
  for (const SubFleetDigest& d : digests) {
    for (size_t i = 0; i < d.loads.size(); ++i) {
      view[static_cast<size_t>(d.first_board) + i] = d.loads[i];
    }
  }

  // --- 2a. cross-sub-fleet crash evacuations -------------------------------
  // Apps whose whole sub-fleet slice died before a local target was found.
  for (size_t ai = 0; ai < apps.size(); ++ai) {
    FleetAppRuntime& app = apps[ai];
    if (!app.evac_pending) {
      continue;
    }
    app.evac_pending = false;
    const int from = app.parked_from;
    const int target = policy.ClaimTarget(view, from);
    if (target < 0) {
      app.lost = true;  // the whole fleet is dead
      continue;
    }
    ++app.hops;
    const bool transferred = rt_.TransferAppState(
        app, from, target, app.parked_raw,
        &subfleets_[static_cast<size_t>(SubfleetOf(target))]->spawn_log());
    MigrationRecord rec;
    rec.when = now;
    rec.app = app.spec.name;
    rec.from = from;
    rec.to = target;
    rec.crash = true;
    rec.cross_subfleet = true;
    rec.state_transfer = transferred;
    rec.consumed_source = app.parked_consumed;
    rec.budget_carried = app.budget_remaining;
    rec.iterations_done = app.iterations_prev;
    root_migrations_.push_back(std::move(rec));
    MoveApp(static_cast<int>(ai), SubfleetOf(from), SubfleetOf(target));
  }

  // --- 2b. parked graceful hand-offs ---------------------------------------
  // Drains the root ordered towards a remote target; the target is
  // re-validated against this boundary's digests (it may have died since the
  // decision one root period ago).
  for (size_t ai = 0; ai < apps.size(); ++ai) {
    FleetAppRuntime& app = apps[ai];
    if (!app.parked) {
      continue;
    }
    app.parked = false;
    const int from = app.parked_from;
    int target = app.cross_target;
    if (target >= 0 && view[static_cast<size_t>(target)].alive) {
      ++view[static_cast<size_t>(target)].active_apps;  // claim
    } else {
      target = policy.ClaimTarget(view, from);
    }
    if (target < 0) {
      app.finished = true;  // nowhere to go; what ran is the outcome
      app.board = from;
      app.cross_target = -1;
      continue;
    }
    ++app.hops;
    ++app.rebalance_hops;
    rt_.SpawnOn(
        app, target,
        &subfleets_[static_cast<size_t>(SubfleetOf(target))]->spawn_log());
    MigrationRecord rec;
    rec.when = now;
    rec.app = app.spec.name;
    rec.from = from;
    rec.to = target;
    rec.crash = false;
    rec.cross_subfleet = true;
    rec.consumed_source = app.parked_consumed;
    rec.budget_carried = app.budget_remaining;
    rec.iterations_done = app.iterations_prev;
    root_migrations_.push_back(std::move(rec));
    MoveApp(static_cast<int>(ai), SubfleetOf(from), SubfleetOf(target));
  }

  // --- 3. fleet-budget ledger re-division ----------------------------------
  if (budget_.enabled()) {
    int alive_total = 0;
    for (const SubFleetDigest& d : digests) {
      alive_total += d.alive_boards;
    }
    for (size_t s = 0; s < subfleet_count; ++s) {
      budget_.consumed[s] = digests[s].energy_total;
      budget_.allocation[s] =
          alive_total > 0
              ? budget_.total * digests[s].alive_boards / alive_total
              : 0.0;
      subfleets_[s]->set_allocation(budget_.allocation[s]);
    }
  }

  // --- 4. rebalance: at most one donated app per root barrier --------------
  if (!budget_.enabled() || !policy.config().enabled || subfleet_count < 2 ||
      now >= rt_.scenario().horizon) {
    return;
  }
  const double fleet_pressure = budget_.FleetPressure();
  if (fleet_pressure <= 0.0) {
    return;
  }
  int donor = -1;
  double donor_pressure = 0.0;
  for (size_t s = 0; s < subfleet_count; ++s) {
    const double p = budget_.Pressure(s);
    if (donor < 0 || p > donor_pressure) {
      donor = static_cast<int>(s);
      donor_pressure = p;
    }
  }
  if (donor_pressure <= policy.config().rebalance_ratio * fleet_pressure) {
    return;
  }
  // The donor's hungriest live app: most energy drawn on its current hop.
  // Ties break towards the lowest app index (strict >).
  int best_app = -1;
  Joules best_consumed = -1.0;
  for (int ai : subfleets_[static_cast<size_t>(donor)]->owned_apps()) {
    FleetAppRuntime& app = apps[static_cast<size_t>(ai)];
    if (app.finished || app.lost || app.draining || app.parked ||
        app.evac_pending || !app.spec.migratable || app.board < 0) {
      continue;
    }
    if (app.rebalance_hops >= policy.config().max_hops) {
      continue;
    }
    if (!app.spec.options.use_psbox || app.handle.stats == nullptr ||
        app.handle.stats->box < 0) {
      continue;
    }
    FleetShard& shard = *shards[static_cast<size_t>(app.board)];
    if (shard.failed) {
      continue;
    }
    const Joules consumed =
        std::max(0.0, shard.manager->ReadEnergy(app.handle.stats->box) -
                          app.transferred_base);
    if (consumed > best_consumed) {
      best_app = ai;
      best_consumed = consumed;
    }
  }
  if (best_app < 0) {
    return;
  }
  // Target: lowest-score alive board outside the donor, from the digests.
  std::vector<BoardLoad> outside = view;
  const int donor_first =
      subfleets_[static_cast<size_t>(donor)]->first_board();
  const int donor_boards =
      subfleets_[static_cast<size_t>(donor)]->board_count();
  for (int b = donor_first; b < donor_first + donor_boards; ++b) {
    outside[static_cast<size_t>(b)].alive = false;
  }
  const int target = policy.PickTarget(outside, -1);
  if (target < 0) {
    return;
  }
  FleetAppRuntime& app = apps[static_cast<size_t>(best_app)];
  app.cross_target = target;
  *app.stop = true;  // cooperative drain; the park happens at a sub-barrier
  app.draining = true;
}

FleetStats RootCoordinator::Run() {
  PSBOX_CHECK(!ran_);
  ran_ = true;
  const FleetScenario& scenario = rt_.scenario();
  const DurationNs period = scenario.epoch * scenario.root_period;

  TimeNs t = 0;
  uint64_t epochs_done = 0;
  if (resumed_) {
    // The checkpoint was cut with every shard advanced to resume_t_ but the
    // boundary barriers not yet processed — re-run them (and the root
    // barrier) on the restored, bit-identical state and continue.
    BoundaryBarriers(resume_t_);
    ProcessRootBarrier(resume_t_);
    t = resume_t_;
    epochs_done = static_cast<uint64_t>(resume_t_ / scenario.epoch);
  }
  uint64_t next_checkpoint =
      checkpoint_every_ > 0
          ? (epochs_done / static_cast<uint64_t>(checkpoint_every_) + 1) *
                static_cast<uint64_t>(checkpoint_every_)
          : 0;

  while (t < scenario.horizon) {
    const TimeNs next = std::min<TimeNs>(t + period, scenario.horizon);
    RunRounds(t, next);
    epochs_done +=
        static_cast<uint64_t>((next - t + scenario.epoch - 1) / scenario.epoch);
    // Checkpoint cadence: the instant after all rounds joined and before the
    // boundary barriers is the only globally quiescent point — the barriers'
    // respawns schedule work that the event census would (correctly) refuse
    // to serialise.
    if (checkpoint_every_ > 0 && !checkpoint_path_.empty() &&
        next < scenario.horizon && epochs_done >= next_checkpoint) {
      std::string error;
      if (!WriteCheckpoint(next, &error)) {
        // Census refusal: a serialiser lost a timer. Say which one.
        std::fprintf(stderr, "[psbox] checkpoint write failed: %s\n",
                     error.c_str());
        PSBOX_CHECK(false);
      }
      next_checkpoint =
          (epochs_done / static_cast<uint64_t>(checkpoint_every_) + 1) *
          static_cast<uint64_t>(checkpoint_every_);
    }
    BoundaryBarriers(next);
    ProcessRootBarrier(next);
    t = next;
  }

  // Settle apps still running at the horizon so their last hop is billed.
  // Parked hops were already closed when they parked.
  for (FleetAppRuntime& app : rt_.apps()) {
    if (!app.finished && !app.lost && !app.parked && !app.evac_pending &&
        app.board >= 0) {
      rt_.CloseHop(app);
    }
  }
  return Aggregate();
}

bool RootCoordinator::WriteCheckpoint(TimeNs now, std::string* error) {
  const FleetScenario& scenario = rt_.scenario();
  SnapshotWriter w;
  w.Section("fleet");

  // Compatibility block: enough of the scenario to refuse a restore under a
  // different one (factories cannot be serialised, so the caller re-supplies
  // the scenario and these fields cross-check it).
  w.U64(scenario.seed);
  w.I64(scenario.epoch);
  w.I64(scenario.horizon);
  w.U64(scenario.boards.size());
  for (const FleetBoardSpec& spec : scenario.boards) {
    w.I64(spec.fail_at);
  }
  w.U64(scenario.apps.size());
  for (const FleetAppSpec& spec : scenario.apps) {
    w.Str(spec.name);
    w.I64(spec.board);
    w.Bool(spec.options.use_psbox);
  }
  w.Bool(scenario.migration.enabled);
  w.F64(scenario.migration.pressure_fraction);
  w.I64(scenario.migration.max_hops);
  w.Bool(scenario.crash_state_transfer);
  // Hierarchy/budget block (format v2): the sub-fleet split shapes every
  // load view and therefore every placement — a different split is a
  // different scenario, not a resumable state.
  w.I64(scenario.subfleets);
  w.I64(scenario.root_period);
  w.F64(scenario.fleet_budget);
  w.F64(scenario.migration.energy_weight);
  w.F64(scenario.migration.rebalance_ratio);
  // Population block (format v3). The generator carries no runtime state of
  // its own: a restore re-derives every arrival up to each shard's clock by
  // replaying the seeded stream, so the full config is the cursor — it rides
  // in the file and is compared against the re-supplied scenario.
  scenario.population.SaveState(w);

  w.I64(now);  // root boundary the restored run resumes at

  // Budget ledger: the live allocations are bounded-stale state the
  // sub-fleets keep using until the next root barrier.
  for (const auto& sf : subfleets_) {
    w.F64(sf->allocation());
  }

  const auto write_migrations =
      [&w](const std::vector<MigrationRecord>& migrations) {
        w.U64(migrations.size());
        for (const MigrationRecord& m : migrations) {
          w.I64(m.when);
          w.Str(m.app);
          w.I64(m.from);
          w.I64(m.to);
          w.Bool(m.crash);
          w.Bool(m.cross_subfleet);
          w.Bool(m.state_transfer);
          w.F64(m.consumed_source);
          w.F64(m.budget_carried);
          w.U64(m.iterations_done);
        }
      };

  // Per-sub-fleet spawn logs (replayed verbatim on restore so every shard
  // re-creates its apps/tasks through the same factory calls, in the same
  // order) and local migration histories.
  for (const auto& sf : subfleets_) {
    const std::vector<SpawnRecord>& log = sf->spawn_log();
    w.U64(log.size());
    for (const SpawnRecord& rec : log) {
      w.I64(rec.app_index);
      w.I64(rec.board);
      w.Str(rec.label);
      w.U64(rec.iterations);
      w.I64(rec.when);
    }
    write_migrations(sf->migrations());
  }
  write_migrations(root_migrations_);

  // Coordinator-side app runtime state.
  for (const FleetAppRuntime& app : rt_.apps()) {
    w.I64(app.board);
    w.I64(app.hops);
    w.I64(app.budget_hops);
    w.I64(app.rebalance_hops);
    w.Bool(app.draining);
    w.Bool(app.finished);
    w.Bool(app.lost);
    w.F64(app.billed);
    w.Bool(app.ever_sandboxed);
    w.F64(app.budget_remaining);
    w.U64(app.iterations_prev);
    w.U64(app.remaining);
    w.F64(app.transferred_base);
    w.I64(app.cross_target);
    w.Bool(app.parked);
    w.Bool(app.evac_pending);
    w.I64(app.parked_from);
    w.F64(app.parked_consumed);
    w.F64(app.parked_raw);
  }
  for (uint64_t iters : rt_.board_iterations()) {
    w.U64(iters);
  }

  // Every shard, whole: device state, kernel, sandboxes, pending events.
  for (const auto& shard : rt_.shards()) {
    w.Bool(shard->failed);
    w.I64(shard->now);
    if (!SaveBoardShard(*shard->board, *shard->kernel, *shard->manager, &w,
                        error)) {
      return false;
    }
  }

  // snapshot_corrupt fault: the checkpoint write itself is torn mid-file
  // (simulated power loss while flushing). The truncated file fails CRC/size
  // validation on restore — exactly the robustness case being modelled — so
  // the write "succeeds" from the running fleet's point of view.
  if (rt_.shards()[0]->board->fault_injector().ShouldCorruptSnapshot()) {
    std::vector<uint8_t> blob = w.Seal();
    blob.resize(blob.size() / 2);
    std::ofstream out(checkpoint_path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    return true;
  }
  return w.WriteFile(checkpoint_path_, error);
}

bool RootCoordinator::LoadCheckpoint(SnapshotReader& r, std::string* error) {
  const FleetScenario& scenario = rt_.scenario();
  auto& apps = rt_.apps();
  auto& shards = rt_.shards();
  auto fail = [&](const std::string& msg) {
    *error = msg;
    return false;
  };
  if (!r.Section("fleet")) {
    return fail(r.error());
  }

  // Compatibility block: every mismatch is a different scenario, not a
  // corrupt file — say so.
  const uint64_t seed = r.U64();
  const TimeNs epoch = r.I64();
  const TimeNs horizon = r.I64();
  if (!r.ok()) {
    return fail(r.error());
  }
  if (seed != scenario.seed || epoch != scenario.epoch ||
      horizon != scenario.horizon) {
    return fail(
        "checkpoint was written under a different fleet scenario "
        "(seed/epoch/horizon mismatch)");
  }
  const size_t board_count = r.Count(sizeof(int64_t));
  if (board_count != scenario.boards.size()) {
    return fail("checkpoint board count does not match the scenario");
  }
  for (size_t i = 0; i < board_count && r.ok(); ++i) {
    if (r.I64() != scenario.boards[i].fail_at) {
      return fail("checkpoint board failure plan does not match the scenario");
    }
  }
  const size_t app_count = r.Count(1);
  if (app_count != scenario.apps.size()) {
    return fail("checkpoint app count does not match the scenario");
  }
  for (size_t i = 0; i < app_count && r.ok(); ++i) {
    const std::string name = r.Str();
    const int64_t board = r.I64();
    const bool use_psbox = r.Bool();
    const FleetAppSpec& spec = scenario.apps[i];
    if (name != spec.name || board != spec.board ||
        use_psbox != spec.options.use_psbox) {
      return fail("checkpoint app list does not match the scenario");
    }
  }
  const bool mig_enabled = r.Bool();
  const double pressure = r.F64();
  const int64_t max_hops = r.I64();
  const bool state_transfer = r.Bool();
  if (!r.ok()) {
    return fail(r.error());
  }
  if (mig_enabled != scenario.migration.enabled ||
      pressure != scenario.migration.pressure_fraction ||
      max_hops != scenario.migration.max_hops ||
      state_transfer != scenario.crash_state_transfer) {
    return fail("checkpoint migration policy does not match the scenario");
  }
  const int64_t subfleet_count = r.I64();
  const int64_t root_period = r.I64();
  const double fleet_budget = r.F64();
  const double energy_weight = r.F64();
  const double rebalance_ratio = r.F64();
  if (!r.ok()) {
    return fail(r.error());
  }
  if (subfleet_count != scenario.subfleets ||
      root_period != scenario.root_period ||
      fleet_budget != scenario.fleet_budget ||
      energy_weight != scenario.migration.energy_weight ||
      rebalance_ratio != scenario.migration.rebalance_ratio) {
    return fail(
        "checkpoint was written under a different fleet scenario "
        "(hierarchy/budget mismatch)");
  }
  PopulationConfig population;
  population.RestoreState(r);
  if (!r.ok()) {
    return fail(r.error());
  }
  if (!(population == scenario.population)) {
    return fail(
        "checkpoint was written under a different fleet scenario "
        "(population mismatch)");
  }

  resume_t_ = r.I64();

  for (auto& sf : subfleets_) {
    const Joules allocation = r.F64();
    sf->set_allocation(allocation);
    budget_.allocation[static_cast<size_t>(sf->index())] = allocation;
  }

  const auto read_migrations = [&](std::vector<MigrationRecord>* out) {
    const size_t count = r.Count(6 * sizeof(int64_t));
    out->clear();
    out->reserve(count);
    for (size_t i = 0; i < count && r.ok(); ++i) {
      MigrationRecord m;
      m.when = r.I64();
      m.app = r.Str();
      m.from = static_cast<int>(r.I64());
      m.to = static_cast<int>(r.I64());
      m.crash = r.Bool();
      m.cross_subfleet = r.Bool();
      m.state_transfer = r.Bool();
      m.consumed_source = r.F64();
      m.budget_carried = r.F64();
      m.iterations_done = r.U64();
      out->push_back(std::move(m));
    }
  };

  for (auto& sf : subfleets_) {
    const size_t spawn_count = r.Count(4 * sizeof(int64_t));
    std::vector<SpawnRecord>& log = sf->spawn_log();
    log.clear();
    log.reserve(spawn_count);
    for (size_t i = 0; i < spawn_count && r.ok(); ++i) {
      SpawnRecord rec;
      rec.app_index = static_cast<int>(r.I64());
      rec.board = static_cast<int>(r.I64());
      rec.label = r.Str();
      rec.iterations = r.U64();
      rec.when = r.I64();
      if (rec.app_index < 0 ||
          static_cast<size_t>(rec.app_index) >= apps.size() ||
          !sf->Owns(rec.board)) {
        return fail("checkpoint spawn log references an out-of-range app/board");
      }
      log.push_back(std::move(rec));
    }
    read_migrations(&sf->migrations());
  }
  read_migrations(&root_migrations_);

  for (FleetAppRuntime& app : apps) {
    app.board = static_cast<int>(r.I64());
    app.hops = static_cast<int>(r.I64());
    app.budget_hops = static_cast<int>(r.I64());
    app.rebalance_hops = static_cast<int>(r.I64());
    app.draining = r.Bool();
    app.finished = r.Bool();
    app.lost = r.Bool();
    app.billed = r.F64();
    app.ever_sandboxed = r.Bool();
    app.budget_remaining = r.F64();
    app.iterations_prev = r.U64();
    app.remaining = r.U64();
    app.transferred_base = r.F64();
    app.cross_target = static_cast<int>(r.I64());
    app.parked = r.Bool();
    app.evac_pending = r.Bool();
    app.parked_from = static_cast<int>(r.I64());
    app.parked_consumed = r.F64();
    app.parked_raw = r.F64();
  }
  for (uint64_t& iters : rt_.board_iterations()) {
    iters = r.U64();
  }
  if (!r.ok()) {
    return fail(r.error());
  }

  // Rebuild the per-sub-fleet app ownership lists from the restored state:
  // an app belongs to the sub-fleet of its current board, or — parked with
  // its hop closed — of the board it last ran on.
  for (size_t i = 0; i < apps.size(); ++i) {
    const int home = apps[i].board >= 0 ? apps[i].board : apps[i].parked_from;
    if (home < 0 || static_cast<size_t>(home) >= shards.size()) {
      return fail("checkpoint app state references an out-of-range board");
    }
    subfleets_[static_cast<size_t>(SubfleetOf(home))]->AdoptApp(
        static_cast<int>(i));
  }

  // An app's live handle/stop belong to its most recent spawn — within one
  // sub-fleet's log that is its last record, and only the log of the
  // sub-fleet owning the app's current board can hold it (the board is
  // cross-checked to reject a stale last record in a sub-fleet the app has
  // since left). Earlier spawns are replayed only to reconstruct each
  // shard's task population.
  std::vector<std::vector<int>> last_spawn(subfleets_.size());
  for (const auto& sf : subfleets_) {
    std::vector<int>& last = last_spawn[static_cast<size_t>(sf->index())];
    last.assign(apps.size(), -1);
    const std::vector<SpawnRecord>& log = sf->spawn_log();
    for (size_t i = 0; i < log.size(); ++i) {
      last[static_cast<size_t>(log[i].app_index)] = static_cast<int>(i);
    }
  }

  for (auto& shard : shards) {
    shard->failed = r.Bool();
    shard->now = r.I64();
    if (!r.ok()) {
      return fail(r.error());
    }
    FleetShard* s = shard.get();
    SubFleetCoordinator& owner =
        *subfleets_[static_cast<size_t>(SubfleetOf(s->index))];
    const std::vector<int>& last =
        last_spawn[static_cast<size_t>(owner.index())];
    auto replay = [this, s, &owner, &last] {
      // Reconstruct the shard's app/task population in the exact live
      // creation order: tenant principals, then the board's spawn records
      // merged in time order with the regenerated population arrivals
      // (arrivals at a barrier instant fired before the barrier's spawns
      // ran, so each record is preceded by every arrival at <= its instant).
      if (s->population != nullptr) {
        s->population->CreateTenants(/*restoring=*/true);
      }
      const std::vector<SpawnRecord>& log = owner.spawn_log();
      auto& all_apps = rt_.apps();
      for (size_t i = 0; i < log.size(); ++i) {
        const SpawnRecord& rec = log[i];
        if (rec.board != s->index) {
          continue;
        }
        if (s->population != nullptr) {
          s->population->ReplayArrivalsThrough(rec.when);
        }
        FleetAppRuntime& app = all_apps[static_cast<size_t>(rec.app_index)];
        AppOptions opts = app.spec.options;
        opts.iterations = rec.iterations;
        auto stop = std::make_shared<bool>(false);
        opts.stop = stop;
        AppHandle handle = app.spec.factory(*s->kernel, rec.label, opts);
        if (last[static_cast<size_t>(rec.app_index)] == static_cast<int>(i) &&
            rec.board == app.board) {
          app.stop = std::move(stop);
          app.handle = handle;
        }
      }
      if (s->population != nullptr) {
        s->population->ReplayArrivalsThrough(s->now);
      }
    };
    if (!RestoreBoardShard(r, *s->board, *s->kernel, *s->manager, replay,
                           error)) {
      return false;
    }
  }

  // Draining apps had their cooperative stop flag raised before the
  // checkpoint; the replayed tasks get fresh flags, so re-raise them.
  for (FleetAppRuntime& app : apps) {
    if (app.draining && app.stop != nullptr) {
      *app.stop = true;
    }
  }

  if (!r.AtEnd()) {
    return fail("checkpoint has trailing bytes after the last shard");
  }
  return true;
}

std::unique_ptr<RootCoordinator> RootCoordinator::RestoreFromCheckpoint(
    FleetScenario scenario, int threads, const std::string& path,
    std::string* error) {
  SnapshotReader r;
  if (!r.OpenFile(path)) {
    *error = r.error();
    return nullptr;
  }
  std::unique_ptr<RootCoordinator> coord(
      new RootCoordinator(std::move(scenario), threads, RestoreTag{}));
  if (!coord->LoadCheckpoint(r, error)) {
    return nullptr;
  }
  coord->resumed_ = true;
  return coord;
}

FleetStats RootCoordinator::Aggregate() {
  auto& shards = rt_.shards();
  auto& apps = rt_.apps();
  FleetStats stats;
  stats.boards.resize(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    FleetShard& shard = *shards[i];
    FleetBoardStats& b = stats.boards[i];
    b.failed = shard.failed;
    b.ran_until = shard.now;
    b.iterations = rt_.board_iterations()[i];
    b.events_fired = shard.kernel->sim().total_fired();
    if (shard.population != nullptr) {
      b.popgen_spawned = shard.population->spawned();
      b.popgen_completed = shard.population->CompletedCount();
    }
    for (size_t c = 0; c < kNumHwComponents; ++c) {
      const HwComponent hw = static_cast<HwComponent>(c);
      b.rail_energy += shard.board->RailFor(hw).EnergyOver(0, shard.now);
      const DomainStats& d = shard.kernel->domain(hw).domain_stats();
      b.balloons += d.balloons;
      b.balloons_aborted += d.aborted;
    }
  }

  // Migration history: the sub-fleets' local lists (each internally
  // chronological) in sub-fleet order, then the root's cross-sub-fleet list,
  // merged into one chronological stream. The stable sort keeps the
  // fixed concatenation order within a barrier instant, so the merged list
  // is identical at any thread count.
  for (const auto& sf : subfleets_) {
    stats.migrations.insert(stats.migrations.end(), sf->migrations().begin(),
                            sf->migrations().end());
  }
  stats.migrations.insert(stats.migrations.end(), root_migrations_.begin(),
                          root_migrations_.end());
  std::stable_sort(
      stats.migrations.begin(), stats.migrations.end(),
      [](const MigrationRecord& a, const MigrationRecord& b) {
        return a.when < b.when;
      });
  for (const MigrationRecord& m : stats.migrations) {
    ++stats.boards[static_cast<size_t>(m.from)].migrations_out;
    ++stats.boards[static_cast<size_t>(m.to)].migrations_in;
  }

  stats.subfleets.resize(subfleets_.size());
  for (size_t s = 0; s < subfleets_.size(); ++s) {
    SubFleetStats& out = stats.subfleets[s];
    out.first_board = subfleets_[s]->first_board();
    out.boards = subfleets_[s]->board_count();
    out.allocation = subfleets_[s]->allocation();
    for (int b = out.first_board; b < out.first_board + out.boards; ++b) {
      out.energy += stats.boards[static_cast<size_t>(b)].rail_energy;
    }
  }
  for (const MigrationRecord& m : root_migrations_) {
    ++stats.subfleets[static_cast<size_t>(SubfleetOf(m.from))].cross_out;
    ++stats.subfleets[static_cast<size_t>(SubfleetOf(m.to))].cross_in;
  }

  stats.apps.reserve(apps.size());
  for (const FleetAppRuntime& app : apps) {
    FleetAppOutcome out;
    out.name = app.spec.name;
    out.hops = app.hops;
    out.final_board = app.board;
    out.finished = app.finished;
    out.lost = app.lost;
    out.iterations = app.iterations_prev;
    out.billed_energy = app.ever_sandboxed ? app.billed : -1.0;
    stats.apps.push_back(std::move(out));
  }
  return stats;
}

}  // namespace psbox
