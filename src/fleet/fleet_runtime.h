// FleetRuntime: the state layer shared by the two coordinator levels.
//
// It owns the shard islands (Board + Kernel + PsboxManager), the per-app
// runtime records that follow apps across boards, and the mechanics every
// migration flavour is built from: spawning an app instance on a board,
// closing a hop (billing energy + iterations to the board it ran on), and
// serialising billing state off a dying board (crash state transfer).
//
// Ownership discipline (the determinism argument leans on it): between root
// barriers, every shard and every app belongs to exactly one sub-fleet —
// SubFleetCoordinators only ever touch their own slice, so concurrent
// sub-fleet rounds are data-race free by construction. The root touches
// anything it likes, but only from its single-threaded barrier.

#ifndef SRC_FLEET_FLEET_RUNTIME_H_
#define SRC_FLEET_FLEET_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/fleet/migration.h"
#include "src/popgen/board_population.h"
#include "src/psbox/psbox_manager.h"

namespace psbox {

// One board island.
struct FleetShard {
  int index = 0;
  TimeNs fail_at = 0;       // 0 = never
  bool failed = false;
  TimeNs now = 0;           // local clock at the last barrier
  std::unique_ptr<Board> board;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<PsboxManager> manager;
  // Generated background population (null when the scenario disables it).
  std::unique_ptr<BoardPopulation> population;
};

// Runtime state of one FleetAppSpec instance as it moves across boards.
struct FleetAppRuntime {
  FleetAppSpec spec;
  int board = -1;
  int hops = 0;              // completed migrations (any kind)
  int budget_hops = 0;       // budget-pressure migrations (capped)
  int rebalance_hops = 0;    // root fleet-budget rebalance hops (capped)
  bool draining = false;
  bool finished = false;
  bool lost = false;
  Joules billed = 0.0;       // accumulated over completed hops
  bool ever_sandboxed = false;
  Joules budget_remaining = 0.0;
  uint64_t iterations_prev = 0;  // completed on boards already left
  uint64_t remaining = 0;        // iteration target for the current hop
  // Raw meter value carried onto the current board by a state-transfer
  // evacuation; the current hop's meter readings include it, so hop
  // billing subtracts it back out (0 after a fresh/drain-style spawn).
  Joules transferred_base = 0.0;

  // Cross-sub-fleet hand-off state. A sub-fleet that cannot (crash, no
  // local target) or must not (root-chosen remote target) finish a hand-off
  // locally parks the app here; the root resolves it at the next root
  // barrier from digests.
  int cross_target = -1;     // remote board the root picked (-1 = none)
  bool parked = false;       // hop closed, awaiting the root respawn
  bool evac_pending = false; // crashed with no local target; root decides
  int parked_from = -1;      // board the closed hop ran on
  Joules parked_consumed = 0.0;  // hop billing captured at park time
  Joules parked_raw = 0.0;       // raw meter reading for state transfer

  std::shared_ptr<bool> stop;
  AppHandle handle;
};

// One factory invocation, recorded so a checkpoint restore can replay the
// exact app/task construction sequence on every shard.
struct SpawnRecord {
  int app_index = -1;
  int board = -1;
  std::string label;
  uint64_t iterations = 0;
  // Target shard's local clock when the factory ran (the barrier instant; 0
  // for initial spawns). Restore interleaves the replayed factory calls with
  // regenerated population arrivals in time order — arrivals at a barrier
  // instant precede the barrier's spawns, exactly as the live engine fired
  // them before the barrier code ran.
  TimeNs when = 0;
};

class FleetRuntime {
 public:
  FleetRuntime(FleetScenario scenario);
  ~FleetRuntime();
  FleetRuntime(const FleetRuntime&) = delete;
  FleetRuntime& operator=(const FleetRuntime&) = delete;

  const FleetScenario& scenario() const { return scenario_; }
  const MigrationPolicy& policy() const { return policy_; }
  std::vector<std::unique_ptr<FleetShard>>& shards() { return shards_; }
  const std::vector<std::unique_ptr<FleetShard>>& shards() const {
    return shards_;
  }
  std::vector<FleetAppRuntime>& apps() { return apps_; }
  const std::vector<FleetAppRuntime>& apps() const { return apps_; }
  std::vector<uint64_t>& board_iterations() { return board_iterations_; }

  // Spawns |app|'s behavior on |board_index| with its remaining iteration
  // target, appending the factory call to |spawn_log| for checkpoint replay.
  void SpawnOn(FleetAppRuntime& app, int board_index,
               std::vector<SpawnRecord>* spawn_log);

  // Bills the current hop (energy + iterations, attributed to the board it
  // ran on) and returns the energy consumed on it. |raw_reading| (optional)
  // receives the hop's raw cumulative meter value, transferred base
  // included — the quantity a state-transfer evacuation ships onward.
  Joules CloseHop(FleetAppRuntime& app, Joules* raw_reading = nullptr);

  // Crash evacuation of |app| from |source| onto |target|: serialise the
  // billing state on the dying board, validate, and stage it on the target
  // (true), or fall back to the drain-style carry on a torn/corrupt blob
  // (false). Either way the app ends up spawned on |target|.
  bool TransferAppState(FleetAppRuntime& app, int source, int target,
                        Joules raw_reading, std::vector<SpawnRecord>* spawn_log);

  // Cumulative rail energy (all seven rails) board |index| consumed up to
  // its local clock. Prefix-sum lookups: cheap enough for every barrier.
  Joules BoardEnergy(int index) const;

 private:
  void BuildShards();

  FleetScenario scenario_;
  MigrationPolicy policy_;
  std::vector<std::unique_ptr<FleetShard>> shards_;
  std::vector<FleetAppRuntime> apps_;
  // App iterations completed per board (cross-hop attribution).
  std::vector<uint64_t> board_iterations_;
};

}  // namespace psbox

#endif  // SRC_FLEET_FLEET_RUNTIME_H_
