#include "src/fleet/subfleet_coordinator.h"

#include <algorithm>

#include "src/base/check.h"

namespace psbox {

SubFleetCoordinator::SubFleetCoordinator(FleetRuntime* runtime, int index,
                                         int first, int count, int threads)
    : rt_(runtime), index_(index), first_(first), count_(count),
      pool_(threads) {
  PSBOX_CHECK_GE(first, 0);
  PSBOX_CHECK_GT(count, 0);
  PSBOX_CHECK_LE(static_cast<size_t>(first + count), rt_->shards().size());
}

void SubFleetCoordinator::AdoptApp(int app_index) {
  // Keep the list sorted so barrier iteration stays in global app order —
  // the same order the flat coordinator used, hence the same decisions.
  auto it = std::lower_bound(owned_apps_.begin(), owned_apps_.end(), app_index);
  PSBOX_CHECK(it == owned_apps_.end() || *it != app_index);
  owned_apps_.insert(it, app_index);
}

void SubFleetCoordinator::ReleaseApp(int app_index) {
  auto it = std::lower_bound(owned_apps_.begin(), owned_apps_.end(), app_index);
  PSBOX_CHECK(it != owned_apps_.end() && *it == app_index);
  owned_apps_.erase(it);
}

void SubFleetCoordinator::RunRound(TimeNs from, TimeNs until) {
  const DurationNs epoch = rt_->scenario().epoch;
  auto& shards = rt_->shards();
  TimeNs t = from;
  while (t < until) {
    const TimeNs next = std::min(t + epoch, until);
    // Parallel phase: each alive local shard advances independently to the
    // next sub-fleet barrier (or to its failure instant, whichever comes
    // first). Shards share no mutable state, so this cannot perturb any
    // shard's event order; WaitIdle() publishes all shard writes back to
    // this sub-fleet's driver thread.
    for (int b = first_; b < first_ + count_; ++b) {
      FleetShard* s = shards[static_cast<size_t>(b)].get();
      if (s->failed) {
        continue;
      }
      const TimeNs target =
          s->fail_at > 0 ? std::min(next, s->fail_at) : next;
      if (target <= s->now) {
        continue;
      }
      pool_.Submit([s, target] {
        if (s->population != nullptr) {
          // Arm the window (now, target] of generated arrivals before the
          // shard runs it: RunUntil(target) fires events at <= target, so
          // every arrival drains before the barrier and a checkpoint cut at
          // a root boundary never sees a pending arrival event.
          s->population->ScheduleWindow(target);
        }
        s->kernel->RunUntil(target);
      });
      s->now = target;
    }
    pool_.WaitIdle();
    // The boundary at |until| belongs to the root: the checkpoint is cut
    // there (the only globally quiescent instant), then the root runs this
    // barrier and its own on top.
    if (next < until) {
      ProcessBarrier(next);
      TrimShards();
    }
    t = next;
  }
}

std::vector<BoardLoad> SubFleetCoordinator::LocalLoads(bool with_energy) const {
  auto& shards = rt_->shards();
  std::vector<BoardLoad> loads(static_cast<size_t>(count_));
  for (int i = 0; i < count_; ++i) {
    FleetShard& s = *shards[static_cast<size_t>(first_ + i)];
    loads[static_cast<size_t>(i)].alive = !s.failed;
    if (with_energy) {
      loads[static_cast<size_t>(i)].energy = rt_->BoardEnergy(first_ + i);
      if (allocation_ > 0.0) {
        // Each board's pressure is measured against an equal slice of the
        // sub-fleet's (bounded-stale) allocation.
        loads[static_cast<size_t>(i)].pressure =
            loads[static_cast<size_t>(i)].energy / (allocation_ / count_);
      }
    }
  }
  for (int ai : owned_apps_) {
    const FleetAppRuntime& app = rt_->apps()[static_cast<size_t>(ai)];
    if (!app.finished && !app.lost && !app.parked && !app.evac_pending &&
        app.board >= 0 && Owns(app.board)) {
      ++loads[static_cast<size_t>(app.board - first_)].active_apps;
    }
  }
  return loads;
}

void SubFleetCoordinator::ProcessBarrier(TimeNs now) {
  auto& shards = rt_->shards();
  auto& apps = rt_->apps();
  const MigrationPolicy& policy = rt_->policy();
  // One load snapshot per barrier, maintained incrementally as decisions
  // change it (ClaimTarget bumps the chosen board, so back-to-back
  // evictions spread instead of piling onto one target).
  std::vector<BoardLoad> loads =
      LocalLoads(rt_->scenario().fleet_budget > 0.0);
  const auto local = [this](int board) { return board - first_; };

  // --- 1. board failures: freeze the shard, evacuate its residents --------
  // This is the in-epoch hand-off: the failure is detected and resolved at
  // the sub-fleet barrier of the sub-epoch it happened in, never waiting
  // for the root. Only when the whole local slice is dead does the app park
  // for a cross-sub-fleet evacuation at the next root barrier.
  for (int b = first_; b < first_ + count_; ++b) {
    FleetShard& shard = *shards[static_cast<size_t>(b)];
    if (shard.failed || shard.fail_at <= 0 || now < shard.fail_at) {
      continue;
    }
    shard.failed = true;  // shard.now stopped exactly at fail_at
    loads[static_cast<size_t>(local(b))].alive = false;
    for (int ai : owned_apps_) {
      FleetAppRuntime& app = apps[static_cast<size_t>(ai)];
      if (app.board != b || app.finished || app.lost || app.parked ||
          app.evac_pending) {
        continue;
      }
      Joules raw = 0.0;
      const Joules consumed = rt_->CloseHop(app, &raw);
      const bool work_done =
          (app.spec.options.iterations > 0 && app.remaining == 0) ||
          shard.kernel->AppFinished(app.handle.app);
      if (work_done) {
        app.finished = true;
        --loads[static_cast<size_t>(local(b))].active_apps;
        continue;
      }
      if (!app.spec.migratable) {
        app.lost = true;  // died with its board
        --loads[static_cast<size_t>(local(b))].active_apps;
        continue;
      }
      const int target_local = policy.ClaimTarget(loads, local(b));
      if (target_local < 0) {
        // Every other local board is dead: escalate to the root, which
        // resolves the evacuation cross-sub-fleet from digests.
        app.evac_pending = true;
        app.parked_from = b;
        app.parked_raw = raw;
        app.parked_consumed = consumed;
        --loads[static_cast<size_t>(local(b))].active_apps;
        continue;
      }
      const int target = first_ + target_local;
      ++app.hops;
      const bool transferred =
          rt_->TransferAppState(app, b, target, raw, &spawn_log_);
      MigrationRecord rec;
      rec.when = now;
      rec.app = app.spec.name;
      rec.from = b;
      rec.to = target;
      rec.crash = true;
      rec.state_transfer = transferred;
      rec.consumed_source = consumed;
      rec.budget_carried = app.budget_remaining;
      rec.iterations_done = app.iterations_prev;
      migrations_.push_back(std::move(rec));
      --loads[static_cast<size_t>(local(b))].active_apps;
    }
  }

  // --- 2. completions & graceful hand-offs --------------------------------
  for (int ai : owned_apps_) {
    FleetAppRuntime& app = apps[static_cast<size_t>(ai)];
    if (app.finished || app.lost || app.parked || app.evac_pending ||
        app.board < 0 || !Owns(app.board)) {
      continue;
    }
    FleetShard& shard = *shards[static_cast<size_t>(app.board)];
    if (shard.failed || !shard.kernel->AppFinished(app.handle.app)) {
      continue;
    }
    const int from = app.board;
    const Joules consumed = rt_->CloseHop(app);
    const bool work_done =
        (app.spec.options.iterations > 0 && app.remaining == 0) ||
        (app.spec.options.deadline > 0 && now >= app.spec.options.deadline);
    if (!app.draining || work_done) {
      app.finished = true;
      --loads[static_cast<size_t>(local(from))].active_apps;
      continue;
    }
    if (app.cross_target >= 0) {
      // The root chose a remote target for this drain (fleet-budget
      // rebalance): park the closed hop; the root executes the respawn at
      // the next root barrier, re-picking from fresh digests if the target
      // died in the meantime.
      app.parked = true;
      app.parked_from = from;
      app.parked_consumed = consumed;
      app.board = -1;
      --loads[static_cast<size_t>(local(from))].active_apps;
      continue;
    }
    // Drained on the policy's order: hand the remainder to a local target.
    const int target_local = policy.ClaimTarget(loads, local(from));
    if (target_local < 0) {
      app.finished = true;  // nowhere to go; what ran is the outcome
      --loads[static_cast<size_t>(local(from))].active_apps;
      continue;
    }
    ++app.hops;
    ++app.budget_hops;
    rt_->SpawnOn(app, first_ + target_local, &spawn_log_);
    MigrationRecord rec;
    rec.when = now;
    rec.app = app.spec.name;
    rec.from = from;
    rec.to = first_ + target_local;
    rec.crash = false;
    rec.consumed_source = consumed;
    rec.budget_carried = app.budget_remaining;
    rec.iterations_done = app.iterations_prev;
    migrations_.push_back(std::move(rec));
    --loads[static_cast<size_t>(local(from))].active_apps;
  }

  // --- 3. budget-pressure drain decisions ----------------------------------
  if (!policy.config().enabled) {
    return;
  }
  for (int ai : owned_apps_) {
    FleetAppRuntime& app = apps[static_cast<size_t>(ai)];
    if (app.finished || app.lost || app.draining || app.parked ||
        app.evac_pending || !app.spec.migratable || app.board < 0 ||
        !Owns(app.board)) {
      continue;
    }
    FleetShard& shard = *shards[static_cast<size_t>(app.board)];
    if (shard.failed || !app.spec.options.use_psbox ||
        app.handle.stats->box < 0) {
      continue;
    }
    // Pressure is against what was spent on *this* board, so a transferred
    // base (already billed on previous boards) is subtracted back out.
    const Joules consumed =
        std::max(0.0, shard.manager->ReadEnergy(app.handle.stats->box) -
                          app.transferred_base);
    if (policy.ShouldDrain(consumed, app.budget_remaining, app.budget_hops) &&
        policy.PickTarget(loads, local(app.board)) >= 0) {
      *app.stop = true;  // LoopBehaviors exit at their next iteration boundary
      app.draining = true;
    }
  }
}

void SubFleetCoordinator::TrimShards() {
  // Telemetry retention: shards with a bounded-retention kernel config are
  // trimmed behind the barrier as well (their own periodic tick handles the
  // mid-epoch cadence; this pass keeps memory bounded even when epochs
  // outpace the tick, in deterministic board order). Trimming folds exact
  // energy bases first, so results are unchanged.
  auto& shards = rt_->shards();
  for (int b = first_; b < first_ + count_; ++b) {
    FleetShard& shard = *shards[static_cast<size_t>(b)];
    const DurationNs retention = shard.kernel->config().telemetry_retention;
    if (!shard.failed && retention > 0) {
      shard.kernel->TrimTelemetry(shard.now - retention);
    }
  }
}

SubFleetDigest SubFleetCoordinator::BuildDigest() const {
  SubFleetDigest d;
  d.subfleet = index_;
  d.first_board = first_;
  d.loads = LocalLoads(/*with_energy=*/true);
  for (const BoardLoad& load : d.loads) {
    if (load.alive) {
      ++d.alive_boards;
    }
    d.active_apps += load.active_apps;
    d.energy_total += load.energy;
  }
  d.allocation = allocation_;
  if (allocation_ > 0.0) {
    d.pressure = d.energy_total / allocation_;
  }
  return d;
}

}  // namespace psbox
