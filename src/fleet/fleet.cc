#include "src/fleet/fleet.h"

#include <cstring>

namespace psbox {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void HashBytes(uint64_t* h, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= bytes[i];
    *h *= kFnvPrime;
  }
}

void HashU64(uint64_t* h, uint64_t v) { HashBytes(h, &v, sizeof(v)); }
void HashI64(uint64_t* h, int64_t v) { HashBytes(h, &v, sizeof(v)); }
void HashDouble(uint64_t* h, double v) {
  // Bit-pattern hash: the determinism contract is bit-identical doubles, not
  // approximately equal ones.
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  HashU64(h, bits);
}
void HashString(uint64_t* h, const std::string& s) {
  HashU64(h, s.size());
  HashBytes(h, s.data(), s.size());
}

}  // namespace

uint64_t FleetStats::Fingerprint() const {
  uint64_t h = kFnvOffset;
  HashU64(&h, boards.size());
  for (const FleetBoardStats& b : boards) {
    HashU64(&h, b.failed ? 1 : 0);
    HashI64(&h, b.ran_until);
    HashDouble(&h, b.rail_energy);
    HashU64(&h, b.balloons);
    HashU64(&h, b.balloons_aborted);
    HashU64(&h, b.iterations);
    HashI64(&h, b.migrations_in);
    HashI64(&h, b.migrations_out);
    HashU64(&h, b.popgen_spawned);
    HashU64(&h, b.popgen_completed);
  }
  HashU64(&h, subfleets.size());
  for (const SubFleetStats& s : subfleets) {
    HashI64(&h, s.first_board);
    HashI64(&h, s.boards);
    HashDouble(&h, s.energy);
    HashDouble(&h, s.allocation);
    HashI64(&h, s.cross_in);
    HashI64(&h, s.cross_out);
  }
  HashU64(&h, apps.size());
  for (const FleetAppOutcome& a : apps) {
    HashString(&h, a.name);
    HashI64(&h, a.hops);
    HashI64(&h, a.final_board);
    HashU64(&h, a.finished ? 1 : 0);
    HashU64(&h, a.lost ? 1 : 0);
    HashU64(&h, a.iterations);
    HashDouble(&h, a.billed_energy);
  }
  HashU64(&h, migrations.size());
  for (const MigrationRecord& m : migrations) {
    HashI64(&h, m.when);
    HashString(&h, m.app);
    HashI64(&h, m.from);
    HashI64(&h, m.to);
    HashU64(&h, m.crash ? 1 : 0);
    HashU64(&h, m.cross_subfleet ? 1 : 0);
    HashU64(&h, m.state_transfer ? 1 : 0);
    HashDouble(&h, m.consumed_source);
    HashDouble(&h, m.budget_carried);
    HashU64(&h, m.iterations_done);
  }
  return h;
}

}  // namespace psbox
