// MigrationPolicy: the decision half of cross-board app migration.
//
// The coordinator asks two questions at every epoch barrier, always from the
// single-threaded barrier context and always in deterministic order:
//
//   ShouldDrain  — has this app's consumption crossed the budget-pressure
//                  watermark on its current board?
//   PickTarget   — which alive board should receive an evicted app?
//
// The policy is pure: it reads the snapshot the coordinator hands it and
// never touches shard state itself, so its decisions are trivially
// reproducible across thread counts.

#ifndef SRC_FLEET_MIGRATION_H_
#define SRC_FLEET_MIGRATION_H_

#include <vector>

#include "src/fleet/fleet.h"

namespace psbox {

// Per-board load snapshot the coordinator assembles at each barrier.
struct BoardLoad {
  bool alive = true;
  // Apps currently resident and still running.
  int active_apps = 0;
};

class MigrationPolicy {
 public:
  explicit MigrationPolicy(MigrationConfig config) : config_(config) {}

  const MigrationConfig& config() const { return config_; }

  // True when |consumed| joules spent on the current board warrant draining
  // an app that has |budget_remaining| joules left and |hops| completed
  // budget migrations.
  bool ShouldDrain(Joules consumed, Joules budget_remaining, int hops) const {
    if (!config_.enabled || hops >= config_.max_hops) {
      return false;
    }
    if (budget_remaining <= 0.0) {
      return false;  // budgetless apps never feel pressure
    }
    return consumed >= config_.pressure_fraction * budget_remaining;
  }

  // Least-loaded alive board other than |source|; ties break towards the
  // lowest index. Returns -1 when no board can take the app.
  int PickTarget(const std::vector<BoardLoad>& loads, int source) const {
    int best = -1;
    for (int i = 0; i < static_cast<int>(loads.size()); ++i) {
      if (i == source || !loads[i].alive) {
        continue;
      }
      if (best < 0 || loads[i].active_apps < loads[static_cast<size_t>(best)].active_apps) {
        best = i;
      }
    }
    return best;
  }

 private:
  MigrationConfig config_;
};

}  // namespace psbox

#endif  // SRC_FLEET_MIGRATION_H_
