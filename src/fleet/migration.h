// MigrationPolicy: the decision half of cross-board app migration.
//
// Coordinators ask two questions at every barrier, always from a
// single-threaded barrier context and always in deterministic order:
//
//   ShouldDrain  — has this app's consumption crossed the budget-pressure
//                  watermark on its current board?
//   ClaimTarget  — which alive board should receive an evicted app?
//
// The policy is pure over the load view it is handed and never touches shard
// state itself, so its decisions are trivially reproducible across thread
// counts. The load view may be the sub-fleet's own fresh slice (intra-
// sub-fleet decisions) or a digest-assembled, bounded-stale global view
// (root decisions) — the policy cannot tell the difference.
//
// ClaimTarget additionally *claims* the chosen board by bumping its
// active_apps in the caller's view, so back-to-back evictions inside one
// barrier see each other's placements instead of piling onto the board that
// was least loaded when the barrier started.

#ifndef SRC_FLEET_MIGRATION_H_
#define SRC_FLEET_MIGRATION_H_

#include <cstddef>
#include <vector>

#include "src/fleet/fleet.h"

namespace psbox {

class MigrationPolicy {
 public:
  explicit MigrationPolicy(MigrationConfig config) : config_(config) {}

  const MigrationConfig& config() const { return config_; }

  // True when |consumed| joules spent on the current board warrant draining
  // an app that has |budget_remaining| joules left and |hops| completed
  // budget migrations.
  bool ShouldDrain(Joules consumed, Joules budget_remaining, int hops) const {
    if (!config_.enabled || hops >= config_.max_hops) {
      return false;
    }
    if (budget_remaining <= 0.0) {
      return false;  // budgetless apps never feel pressure
    }
    return consumed >= config_.pressure_fraction * budget_remaining;
  }

  // Placement cost of a board: resident apps plus the weighted
  // energy-pressure term. With the fleet budget disabled pressure is always
  // 0 and this degenerates to pure least-loaded.
  double Score(const BoardLoad& load) const {
    return static_cast<double>(load.active_apps) +
           config_.energy_weight * load.pressure;
  }

  // Lowest-score alive board other than |source|; ties break towards the
  // lowest index (strict < keeps the first minimum). Returns -1 when no
  // board can take the app. Pure: the caller's view is not modified — use
  // ClaimTarget inside decision loops.
  int PickTarget(const std::vector<BoardLoad>& loads, int source) const {
    int best = -1;
    double best_score = 0.0;
    for (int i = 0; i < static_cast<int>(loads.size()); ++i) {
      if (i == source || !loads[static_cast<size_t>(i)].alive) {
        continue;
      }
      const double score = Score(loads[static_cast<size_t>(i)]);
      if (best < 0 || score < best_score) {
        best = i;
        best_score = score;
      }
    }
    return best;
  }

  // PickTarget plus the claim: the chosen board's active_apps is bumped in
  // |loads| so subsequent decisions in the same barrier account for the
  // placement that was just made.
  int ClaimTarget(std::vector<BoardLoad>& loads, int source) const {
    const int target = PickTarget(loads, source);
    if (target >= 0) {
      ++loads[static_cast<size_t>(target)].active_apps;
    }
    return target;
  }

 private:
  MigrationConfig config_;
};

}  // namespace psbox

#endif  // SRC_FLEET_MIGRATION_H_
