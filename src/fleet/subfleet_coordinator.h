// SubFleetCoordinator: the lower level of the fleet-of-fleets hierarchy.
//
// Owns a contiguous slice of board shards and a slice of the fleet's worker
// threads (its own ThreadPool). Between two root barriers it is entirely
// self-sufficient: it advances its shards in bounded-lag sub-epochs, runs its
// own single-threaded barrier at every sub-epoch boundary, and performs all
// *intra*-sub-fleet migration — budget-pressure drains and, crucially,
// in-epoch board-failure hand-off: a failed board's residents are evacuated
// at the sub-fleet barrier that detects the failure, against the sub-fleet's
// own fresh load view, instead of waiting for the next root barrier. Only
// when every other local board is dead does an evacuation escalate (park) to
// the root, which resolves it cross-sub-fleet from digests.
//
// Determinism: a sub-fleet only ever touches its own shards, the runtime
// records of apps currently resident on them, and its own logs. Two
// sub-fleets therefore share no mutable state between root barriers, and
// concurrent sub-fleet rounds are race-free and order-independent by
// construction — the fingerprint is invariant under both the worker-thread
// count of each slice and the assignment of threads to slices.

#ifndef SRC_FLEET_SUBFLEET_COORDINATOR_H_
#define SRC_FLEET_SUBFLEET_COORDINATOR_H_

#include <vector>

#include "src/fleet/fleet_runtime.h"
#include "src/fleet/thread_pool.h"

namespace psbox {

class SubFleetCoordinator {
 public:
  // Owns boards [first, first + count) of |runtime| and spawns |threads|
  // workers for them. The thread count affects wall-clock time only.
  SubFleetCoordinator(FleetRuntime* runtime, int index, int first, int count,
                      int threads);
  SubFleetCoordinator(const SubFleetCoordinator&) = delete;
  SubFleetCoordinator& operator=(const SubFleetCoordinator&) = delete;

  int index() const { return index_; }
  int first_board() const { return first_; }
  int board_count() const { return count_; }
  bool Owns(int board) const { return board >= first_ && board < first_ + count_; }

  // Budget slice assigned by the root at the last root barrier. Bounded-
  // stale by design: mid-period pressure terms are computed against it.
  Joules allocation() const { return allocation_; }
  void set_allocation(Joules a) { allocation_ = a; }

  // Advances every local shard from |from| to |until| in sub-epoch rounds,
  // processing the sub-fleet barrier at every boundary *except* |until|
  // (the root owns that one: checkpoint cut, then ProcessBarrier, then the
  // root barrier). Safe to run concurrently with other sub-fleets' rounds.
  void RunRound(TimeNs from, TimeNs until);

  // Single-threaded sub-fleet barrier: board failures (in-epoch hand-off),
  // app completions and graceful hand-offs, budget-pressure drain decisions
  // — all restricted to the local slice, in fixed board/app order.
  void ProcessBarrier(TimeNs now);

  // Post-barrier telemetry retention pass (deterministic board order).
  void TrimShards();

  // Compact summary shipped to the root. Call after ProcessBarrier so the
  // alive set and loads reflect this boundary's decisions.
  SubFleetDigest BuildDigest() const;

  // Hand-off history and factory-call log (checkpoint replay), local
  // decisions only; the root keeps its own for cross-sub-fleet moves.
  std::vector<MigrationRecord>& migrations() { return migrations_; }
  std::vector<SpawnRecord>& spawn_log() { return spawn_log_; }

  // Indices (into FleetRuntime::apps) of the apps this sub-fleet owns,
  // ascending. Barriers iterate this list and nothing else, so concurrent
  // sub-fleet rounds never touch another sub-fleet's app records — the
  // race-freedom argument in the header comment. Only the root (single-
  // threaded, at root barriers) moves an app between lists.
  const std::vector<int>& owned_apps() const { return owned_apps_; }
  void AdoptApp(int app_index);
  void ReleaseApp(int app_index);

 private:
  // Fresh per-board load view of the local slice; index i = board first_+i.
  // Energy/pressure terms are filled only when |with_energy| (they cost a
  // few prefix-sum lookups per board, and placement only needs them when
  // the fleet budget is enabled).
  std::vector<BoardLoad> LocalLoads(bool with_energy) const;

  FleetRuntime* rt_;
  int index_ = 0;
  int first_ = 0;
  int count_ = 0;
  ThreadPool pool_;
  Joules allocation_ = 0.0;
  std::vector<int> owned_apps_;  // ascending indices into rt_->apps()
  std::vector<MigrationRecord> migrations_;
  std::vector<SpawnRecord> spawn_log_;
};

}  // namespace psbox

#endif  // SRC_FLEET_SUBFLEET_COORDINATOR_H_
