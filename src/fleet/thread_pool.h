// A small fixed-size thread pool for advancing fleet shards in parallel.
//
// The coordinator submits one closure per shard each epoch and then blocks in
// WaitIdle(), which returns only after every submitted closure has finished
// running. WaitIdle() synchronises-with the workers (mutex hand-off), so all
// shard state written inside a closure is visible to the coordinator thread
// afterwards — the epoch barrier the determinism argument leans on.

#ifndef SRC_FLEET_THREAD_POOL_H_
#define SRC_FLEET_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psbox {

class ThreadPool {
 public:
  // Spawns |threads| (>= 1) workers immediately.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues |fn| for execution on some worker. Never blocks.
  void Submit(std::function<void()> fn);

  // Blocks until the queue is empty and no worker is mid-task.
  void WaitIdle();

  int thread_count() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled on submit / shutdown
  std::condition_variable idle_cv_;   // signalled when a worker finishes
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int busy_ = 0;
  bool stop_ = false;
};

}  // namespace psbox

#endif  // SRC_FLEET_THREAD_POOL_H_
