// FleetCoordinator: runs a FleetScenario — N Board+Kernel+PsboxManager
// shards advanced in bounded-lag epochs on a thread pool, with cross-board
// app migration decided and executed at single-threaded epoch barriers.
//
// Determinism: each shard is a self-contained deterministic island (its own
// Simulator, Rng streams derived from the fleet seed and board index, its
// own FaultInjector). Worker threads only ever run one shard's RunUntil at a
// time and shards share no mutable state, so the parallel phase cannot
// perturb any shard's event order. Everything cross-shard — failure
// detection, drain decisions, hand-offs, respawns, stats — happens between
// rounds on the coordinator thread, iterating boards and apps in fixed index
// order. Results are therefore bit-identical for a fixed scenario at any
// worker-thread count; fleet_test pins this with FleetStats::Fingerprint().
//
// Migration protocol (one app, one hop):
//   1. decide   — at a barrier, MigrationPolicy::ShouldDrain fires (budget
//                 pressure) or the app's board hits fail_at (crash).
//   2. drain    — budget case: the coordinator raises the app's cooperative
//                 stop flag; its LoopBehaviors exit at the next iteration
//                 boundary and the psbox teardown (psbox_leave ->
//                 ClearSandboxed) unwinds any in-flight balloons through the
//                 existing ResourceDomain abort path. Crash case: the shard
//                 froze at fail_at; there is nothing left to drain.
//   3. snapshot — billed energy so far (the psbox's own reading) and
//                 completed iterations are captured; the budget remainder is
//                 budget - consumed.
//   4. respawn  — the same factory re-spawns the behavior on the target
//                 board with the leftover iteration count and the budget
//                 remainder; billing continues in the app's fresh psbox.

#ifndef SRC_FLEET_FLEET_COORDINATOR_H_
#define SRC_FLEET_FLEET_COORDINATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/fleet/migration.h"
#include "src/fleet/thread_pool.h"
#include "src/psbox/psbox_manager.h"

namespace psbox {

class FleetCoordinator {
 public:
  // |threads| sizes the shard worker pool (>= 1). The thread count affects
  // wall-clock time only, never results.
  FleetCoordinator(FleetScenario scenario, int threads);
  ~FleetCoordinator();
  FleetCoordinator(const FleetCoordinator&) = delete;
  FleetCoordinator& operator=(const FleetCoordinator&) = delete;

  // Advances every shard to the scenario horizon and returns the aggregated
  // fleet stats. Call once.
  FleetStats Run();

  // Periodic checkpointing: every |every_n_epochs| epoch barriers (before
  // the barrier is processed — the only quiescent instant with no freshly
  // spawned-but-unscheduled work) the whole fleet state is serialised to
  // |path| (overwriting earlier checkpoints). Call before Run().
  void set_checkpoint(std::string path, int every_n_epochs) {
    checkpoint_path_ = std::move(path);
    checkpoint_every_ = every_n_epochs;
  }

  // Warm restart: rebuilds a coordinator from a checkpoint written by a run
  // of the *same* scenario (the caller re-supplies it — factories cannot be
  // serialised; key fields are cross-checked against the file). The returned
  // coordinator's Run() resumes at the checkpointed barrier and produces
  // stats bit-identical to the uninterrupted run at any thread count.
  // Returns nullptr with a descriptive |error| when the file is missing,
  // corrupt, truncated, or from a different scenario.
  static std::unique_ptr<FleetCoordinator> RestoreFromCheckpoint(
      FleetScenario scenario, int threads, const std::string& path,
      std::string* error);

  // Barrier time a restored coordinator resumes from (0 on a fresh one).
  TimeNs resume_time() const { return resume_t_; }

  // Post-run access for trace export (valid after Run()).
  int board_count() const { return static_cast<int>(shards_.size()); }
  Kernel& kernel(int board) { return *shards_[static_cast<size_t>(board)]->kernel; }

 private:
  struct Shard {
    int index = 0;
    TimeNs fail_at = 0;       // 0 = never
    bool failed = false;
    TimeNs now = 0;           // local clock at the last barrier
    std::unique_ptr<Board> board;
    std::unique_ptr<Kernel> kernel;
    std::unique_ptr<PsboxManager> manager;
  };

  // Runtime state of one FleetAppSpec instance as it moves across boards.
  struct AppRuntime {
    FleetAppSpec spec;
    int board = -1;
    int hops = 0;              // completed migrations (any kind)
    int budget_hops = 0;       // budget-pressure migrations (capped)
    bool draining = false;
    bool finished = false;
    bool lost = false;
    Joules billed = 0.0;       // accumulated over completed hops
    bool ever_sandboxed = false;
    Joules budget_remaining = 0.0;
    uint64_t iterations_prev = 0;  // completed on boards already left
    uint64_t remaining = 0;        // iteration target for the current hop
    // Raw meter value carried onto the current board by a state-transfer
    // evacuation; the current hop's meter readings include it, so hop
    // billing subtracts it back out (0 after a fresh/drain-style spawn).
    Joules transferred_base = 0.0;
    std::shared_ptr<bool> stop;
    AppHandle handle;
  };

  // One factory invocation, recorded so a checkpoint restore can replay the
  // exact app/task construction sequence on every shard.
  struct SpawnRecord {
    int app_index = -1;
    int board = -1;
    std::string label;
    uint64_t iterations = 0;
  };

  struct RestoreTag {};
  // Builds shards and app runtimes but spawns nothing (checkpoint restore).
  FleetCoordinator(FleetScenario scenario, int threads, RestoreTag);
  void BuildShards();

  void SpawnOn(AppRuntime& app, int board_index);
  // Bills the current hop (energy + iterations, attributed to the board it
  // ran on) and returns the energy consumed on it. |raw_reading| (optional)
  // receives the hop's raw cumulative meter value, transferred base
  // included — the quantity a state-transfer evacuation ships onward.
  Joules CloseHop(AppRuntime& app, Joules* raw_reading = nullptr);
  // Crash evacuation of |app| onto |target|: serialise the billing state on
  // the dying board, validate, and stage it on the target (true), or fall
  // back to the drain-style carry on a torn/corrupt blob (false).
  bool TransferAppState(AppRuntime& app, int target, Joules raw_reading);
  std::vector<BoardLoad> LoadSnapshot() const;
  void ProcessBarrier(TimeNs now);
  // Post-barrier telemetry retention pass (deterministic board order).
  void TrimShards();
  bool WriteCheckpoint(TimeNs now, std::string* error);
  bool LoadCheckpoint(SnapshotReader& r, std::string* error);
  FleetStats Aggregate() const;

  FleetScenario scenario_;
  MigrationPolicy policy_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<AppRuntime> apps_;
  std::vector<MigrationRecord> migrations_;
  // App iterations completed per board (cross-hop attribution).
  std::vector<uint64_t> board_iterations_;
  std::vector<SpawnRecord> spawn_log_;
  std::string checkpoint_path_;
  int checkpoint_every_ = 0;
  TimeNs resume_t_ = 0;
  bool resumed_ = false;
  bool ran_ = false;
};

}  // namespace psbox

#endif  // SRC_FLEET_FLEET_COORDINATOR_H_
