#include "src/fleet/thread_pool.h"

#include "src/base/check.h"

namespace psbox {

ThreadPool::ThreadPool(int threads) {
  PSBOX_CHECK_GE(threads, 1);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to run
      }
      fn = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
    }
    fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace psbox
