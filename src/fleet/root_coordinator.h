// RootCoordinator: the upper level of the fleet-of-fleets hierarchy.
//
// It slices the fleet's boards into contiguous sub-fleets (each with its own
// worker-thread slice — see SubFleetCoordinator) and advances them in *root
// periods* of `root_period` sub-epochs. Between root barriers the sub-fleets
// run concurrently and fully independently; at every root barrier (and only
// there) the root:
//
//   1. collects one compact SubFleetDigest per sub-fleet — the only
//      cross-sub-fleet communication channel, so the root's view of remote
//      load is bounded-stale (at most one root period old) by design;
//   2. resolves parked cross-sub-fleet hand-offs from the digest-assembled
//      global load view: crash evacuations a dying sub-fleet could not place
//      locally, and graceful drains it parked for a root-chosen remote
//      target;
//   3. re-divides the FleetBudget ledger across sub-fleets in proportion to
//      their alive boards and pushes the fresh allocations down;
//   4. makes at most one rebalance decision: when a sub-fleet's budget
//      pressure exceeds `rebalance_ratio` times the fleet-wide pressure, its
//      hungriest migratable app is put on a cooperative drain towards the
//      least-loaded board outside the donor.
//
// Determinism: the root barrier is single-threaded and iterates sub-fleets
// and apps in fixed index order; between barriers sub-fleets share no
// mutable state (each owns its shard slice and an explicit app-index list).
// FleetStats::Fingerprint() is therefore bit-identical for a fixed scenario
// at any worker-thread count and any assignment of workers to sub-fleets.
// `subfleets = 1, root_period = 1` reproduces the old flat single-barrier
// coordinator exactly.

#ifndef SRC_FLEET_ROOT_COORDINATOR_H_
#define SRC_FLEET_ROOT_COORDINATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/fleet/fleet_runtime.h"
#include "src/fleet/subfleet_coordinator.h"
#include "src/fleet/thread_pool.h"

namespace psbox {

class SnapshotReader;

class RootCoordinator {
 public:
  // |threads| is the fleet-wide worker budget (>= 1), divided across
  // sub-fleets as evenly as possible with every sub-fleet getting at least
  // one worker. The count and the division affect wall-clock time only.
  RootCoordinator(FleetScenario scenario, int threads);
  // Explicit per-sub-fleet worker allocation (size must equal
  // scenario.subfleets, every entry >= 1). Results are invariant under the
  // allocation — fleet_test pins this.
  RootCoordinator(FleetScenario scenario, std::vector<int> subfleet_threads);
  ~RootCoordinator();
  RootCoordinator(const RootCoordinator&) = delete;
  RootCoordinator& operator=(const RootCoordinator&) = delete;

  // Advances every sub-fleet to the scenario horizon and returns the
  // aggregated fleet stats. Call once.
  FleetStats Run();

  // Periodic checkpointing: at the first root boundary where at least
  // |every_n_epochs| sub-epochs have completed since the last cut (before
  // the boundary barriers run — the only globally quiescent instant), the
  // whole fleet is serialised to |path| (overwriting earlier checkpoints).
  // With subfleets = 1 and root_period = 1 this is exactly the old flat
  // "every N epoch barriers" cadence. Call before Run().
  void set_checkpoint(std::string path, int every_n_epochs) {
    checkpoint_path_ = std::move(path);
    checkpoint_every_ = every_n_epochs;
  }

  // Warm restart: rebuilds a coordinator from a checkpoint written by a run
  // of the *same* scenario (the caller re-supplies it — factories cannot be
  // serialised; key fields, including the hierarchy and budget parameters,
  // are cross-checked against the file). The returned coordinator's Run()
  // resumes at the checkpointed root boundary and produces stats
  // bit-identical to the uninterrupted run at any thread count. Returns
  // nullptr with a descriptive |error| when the file is missing, corrupt,
  // truncated, or from a different scenario.
  static std::unique_ptr<RootCoordinator> RestoreFromCheckpoint(
      FleetScenario scenario, int threads, const std::string& path,
      std::string* error);

  // Root boundary a restored coordinator resumes from (0 on a fresh one).
  TimeNs resume_time() const { return resume_t_; }

  int subfleet_count() const { return static_cast<int>(subfleets_.size()); }

  // Post-run access for trace export (valid after Run()).
  int board_count() const { return static_cast<int>(rt_.shards().size()); }
  Kernel& kernel(int board) {
    return *rt_.shards()[static_cast<size_t>(board)]->kernel;
  }
  PsboxManager& manager(int board) {
    return *rt_.shards()[static_cast<size_t>(board)]->manager;
  }
  // Generated population of |board| (null when the scenario disables it).
  BoardPopulation* population(int board) {
    return rt_.shards()[static_cast<size_t>(board)]->population.get();
  }

 private:
  struct RestoreTag {};
  // Builds sub-fleets and app runtimes but spawns nothing (restore path).
  RootCoordinator(FleetScenario scenario, int threads, RestoreTag);

  // Slices boards into sub-fleets, seeds the budget ledger, and (unless
  // restoring) performs the initial spawns in app index order.
  void Init(const std::vector<int>& threads_per_subfleet, bool spawn);

  int SubfleetOf(int board) const {
    return board_to_subfleet_[static_cast<size_t>(board)];
  }
  void MoveApp(int app_index, int from_subfleet, int to_subfleet);

  // Runs every sub-fleet from |from| to |until| (concurrently when there is
  // more than one), stopping short of the boundary barrier at |until|.
  void RunRounds(TimeNs from, TimeNs until);
  // The sub-fleet barriers at a root boundary (concurrent; race-free via the
  // per-sub-fleet app ownership lists).
  void BoundaryBarriers(TimeNs now);
  // Digest exchange + cross-sub-fleet migration + budget ledger, single-
  // threaded, in fixed order.
  void ProcessRootBarrier(TimeNs now);

  bool WriteCheckpoint(TimeNs now, std::string* error);
  bool LoadCheckpoint(SnapshotReader& r, std::string* error);
  FleetStats Aggregate();

  FleetRuntime rt_;
  std::vector<std::unique_ptr<SubFleetCoordinator>> subfleets_;
  std::vector<int> board_to_subfleet_;
  // Drives concurrent sub-fleet rounds (null when there is one sub-fleet —
  // the root thread runs the round inline).
  std::unique_ptr<ThreadPool> driver_pool_;
  FleetBudget budget_;
  // Cross-sub-fleet hand-offs executed at root barriers; sub-fleets keep
  // their own local lists.
  std::vector<MigrationRecord> root_migrations_;
  std::string checkpoint_path_;
  int checkpoint_every_ = 0;
  TimeNs resume_t_ = 0;
  bool resumed_ = false;
  bool ran_ = false;
};

}  // namespace psbox

#endif  // SRC_FLEET_ROOT_COORDINATOR_H_
