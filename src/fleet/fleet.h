// Fleet scenario and result types: a fleet is N independent simulated boards
// ("shards"), each a full Board + Kernel + PsboxManager island with its own
// derived seed and fault plan, advanced in lock-step epochs and exchanging
// apps through cross-board migration (fleet_coordinator.h).
//
// Everything here is plain configuration/result data; the coordinator owns
// the runtime objects.

#ifndef SRC_FLEET_FLEET_H_
#define SRC_FLEET_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/board.h"
#include "src/kernel/kernel.h"
#include "src/workloads/table5_apps.h"

namespace psbox {

// A Table-5 style app factory (SpawnCalib3d, SpawnTriangle, ...).
using AppFactory = AppHandle (*)(Kernel&, const std::string&, AppOptions);

// One app placed somewhere in the fleet.
struct FleetAppSpec {
  std::string name;
  AppFactory factory = nullptr;
  // Index of the board the app initially runs on.
  int board = 0;
  // Spawn options; `stop` is managed by the coordinator (the migration drain
  // flag) and must be left null here. Migration billing needs `use_psbox`.
  AppOptions options;
  // Energy budget in joules; > 0 makes the app eligible for budget-pressure
  // migration once its consumption crosses the policy watermark. 0 = no
  // budget (the app never migrates on pressure, only on board failure).
  Joules energy_budget = 0.0;
  // Whether the migration policy may move this app at all.
  bool migratable = false;
};

// One board of the fleet.
struct FleetBoardSpec {
  // Hardware configuration. The coordinator overrides `board.seed` and
  // `board.faults.seed` with values derived from FleetScenario::seed and the
  // board index, so shard randomness is a pure function of (fleet seed,
  // board index) regardless of how specs are assembled.
  BoardConfig board;
  KernelConfig kernel;
  // Simulated instant at which this board fails outright (power loss): its
  // shard freezes there and its migratable apps are crash-migrated at the
  // next epoch barrier. 0 = never fails.
  TimeNs fail_at = 0;
};

struct MigrationConfig {
  bool enabled = true;
  // Budget pressure watermark: an app starts draining once the energy
  // consumed on its current board reaches this fraction of its remaining
  // budget.
  double pressure_fraction = 0.6;
  // Migration count cap per app (budget-pressure migrations; board-failure
  // evacuations ignore the cap — dying boards always evict).
  int max_hops = 1;
};

struct FleetScenario {
  // Master seed; shard i's board/fault seeds are derived from it.
  uint64_t seed = 0x5eed;
  // Epoch barrier spacing: shards drift at most one epoch apart mid-round
  // and are exactly synchronised at every barrier.
  DurationNs epoch = 10 * kMillisecond;
  // Total simulated time per board.
  TimeNs horizon = Seconds(2);
  std::vector<FleetBoardSpec> boards;
  std::vector<FleetAppSpec> apps;
  MigrationConfig migration;
  // Crash-evacuation mode. When true (the default), a failing board's
  // sandboxed apps are evacuated by *state transfer*: the dying board
  // serialises the app's billing state (raw meter reading, residual budget,
  // progress) into a CRC-guarded blob and the target board resumes billing
  // from the transferred value. A torn write (snapshot_corrupt fault) makes
  // the blob fail validation, and the evacuation falls back to the legacy
  // drain-style carry (billing restarts at zero on the target; the budget
  // ledger stays conserved either way). When false, the legacy carry is
  // always used.
  bool crash_state_transfer = true;
};

// One completed migration (graceful drain or crash evacuation).
struct MigrationRecord {
  TimeNs when = 0;           // barrier time the hand-off happened at
  std::string app;           // FleetAppSpec::name
  int from = -1;
  int to = -1;
  bool crash = false;        // board-failure evacuation vs budget drain
  // Crash evacuations only: the billing state made it to the target by
  // snapshot transfer (false = the blob failed validation, or transfer was
  // disabled, and the hop fell back to the drain-style carry).
  bool state_transfer = false;
  Joules consumed_source = 0.0;  // billed on the source board this hop
  Joules budget_carried = 0.0;   // remaining budget moved to the target
  uint64_t iterations_done = 0;  // iterations completed before the hand-off
};

// Aggregated per-board results.
struct FleetBoardStats {
  bool failed = false;
  TimeNs ran_until = 0;          // horizon, or fail_at for failed boards
  Joules rail_energy = 0.0;      // summed over all seven rails
  uint64_t balloons = 0;         // summed over all resource domains
  uint64_t balloons_aborted = 0;
  uint64_t iterations = 0;       // app iterations completed on this board
  int migrations_in = 0;
  int migrations_out = 0;
  // Discrete events the board's engine fired over the run. Observability
  // only: excluded from Fingerprint() so fingerprints survive engine-internal
  // changes to event decomposition; determinism of the count itself is pinned
  // separately by fleet_test.
  uint64_t events_fired = 0;
};

// Final per-app outcome, across however many boards the app visited.
struct FleetAppOutcome {
  std::string name;
  int hops = 0;               // completed migrations
  int final_board = -1;
  bool finished = false;      // ran to its iteration/deadline end
  bool lost = false;          // died with its board (non-migratable / no target)
  uint64_t iterations = 0;    // total across all boards
  // Total energy billed through the app's psboxes, summed across boards.
  // -1 when the app never ran sandboxed.
  Joules billed_energy = -1.0;
};

struct FleetStats {
  std::vector<FleetBoardStats> boards;
  std::vector<FleetAppOutcome> apps;
  std::vector<MigrationRecord> migrations;

  // Order-sensitive FNV-1a hash over every field above. Two runs of the same
  // scenario produce the same fingerprint regardless of the worker-thread
  // count — the determinism contract fleet_test pins down.
  uint64_t Fingerprint() const;
};

}  // namespace psbox

#endif  // SRC_FLEET_FLEET_H_
