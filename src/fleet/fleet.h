// Fleet scenario and result types: a fleet is N independent simulated boards
// ("shards"), each a full Board + Kernel + PsboxManager island with its own
// derived seed and fault plan, advanced in lock-step epochs and exchanging
// apps through cross-board migration.
//
// The runtime is hierarchical (a fleet of fleets): boards are split into
// contiguous *sub-fleets*, each running its own bounded-lag barrier on its
// own worker-thread slice (subfleet_coordinator.h), while a root coordinator
// synchronises the sub-fleets every `root_period` sub-epochs by exchanging
// compact SubFleetDigests and driving cross-sub-fleet migration from them
// (root_coordinator.h). `subfleets = 1, root_period = 1` degenerates to the
// old flat single-barrier coordinator.
//
// Everything here is plain configuration/result data; the coordinators own
// the runtime objects.

#ifndef SRC_FLEET_FLEET_H_
#define SRC_FLEET_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/board.h"
#include "src/kernel/kernel.h"
#include "src/popgen/population_config.h"
#include "src/workloads/table5_apps.h"

namespace psbox {

// A Table-5 style app factory (SpawnCalib3d, SpawnTriangle, ...).
using AppFactory = AppHandle (*)(Kernel&, const std::string&, AppOptions);

// One app placed somewhere in the fleet.
struct FleetAppSpec {
  std::string name;
  AppFactory factory = nullptr;
  // Index of the board the app initially runs on.
  int board = 0;
  // Spawn options; `stop` is managed by the coordinator (the migration drain
  // flag) and must be left null here. Migration billing needs `use_psbox`.
  AppOptions options;
  // Energy budget in joules; > 0 makes the app eligible for budget-pressure
  // migration once its consumption crosses the policy watermark. 0 = no
  // budget (the app never migrates on pressure, only on board failure).
  Joules energy_budget = 0.0;
  // Whether the migration policy may move this app at all.
  bool migratable = false;
};

// One board of the fleet.
struct FleetBoardSpec {
  // Hardware configuration. The coordinator overrides `board.seed` and
  // `board.faults.seed` with values derived from FleetScenario::seed and the
  // board index, so shard randomness is a pure function of (fleet seed,
  // board index) regardless of how specs are assembled.
  BoardConfig board;
  KernelConfig kernel;
  // Simulated instant at which this board fails outright (power loss): its
  // shard freezes there and its migratable apps are crash-migrated at the
  // next *sub-fleet* barrier (in-epoch hand-off — evacuation never waits for
  // the root barrier unless every other board of the sub-fleet is dead too).
  // 0 = never fails.
  TimeNs fail_at = 0;
};

struct MigrationConfig {
  bool enabled = true;
  // Budget pressure watermark: an app starts draining once the energy
  // consumed on its current board reaches this fraction of its remaining
  // budget.
  double pressure_fraction = 0.6;
  // Migration count cap per app (budget-pressure migrations; board-failure
  // evacuations ignore the cap — dying boards always evict. Root-driven
  // fleet-budget rebalance hops are capped by the same value but counted
  // separately).
  int max_hops = 1;
  // Weight of the energy-pressure term in the placement score
  // (MigrationPolicy::Score): score = active_apps + energy_weight * pressure.
  // With the fleet budget disabled every board's pressure is 0 and placement
  // degenerates to pure least-loaded.
  double energy_weight = 1.0;
  // Root rebalance trigger: a sub-fleet donates an app when its budget
  // pressure exceeds `rebalance_ratio` times the fleet-wide pressure.
  double rebalance_ratio = 1.25;
};

struct FleetScenario {
  // Master seed; shard i's board/fault seeds are derived from it.
  uint64_t seed = 0x5eed;
  // Epoch barrier spacing: within a sub-fleet, shards drift at most one
  // epoch apart mid-round and are exactly synchronised at every sub-fleet
  // barrier.
  DurationNs epoch = 10 * kMillisecond;
  // Total simulated time per board.
  TimeNs horizon = Seconds(2);
  // Hierarchy: boards are split into `subfleets` contiguous slices. Each
  // sub-fleet barriers on its own at every epoch; the root synchronises all
  // sub-fleets (digest exchange, cross-sub-fleet migration, budget
  // re-division) every `root_period` sub-epochs. 1/1 = flat fleet.
  int subfleets = 1;
  int root_period = 1;
  // Fleet-wide energy budget in joules (0 = disabled). The root keeps a
  // FleetBudget ledger subdivided into per-sub-fleet allocations
  // (proportional to alive boards, re-divided at every root barrier) and
  // rebalances app placement when a sub-fleet overruns its allocation. The
  // per-app accounting bound underneath is unchanged.
  Joules fleet_budget = 0.0;
  std::vector<FleetBoardSpec> boards;
  std::vector<FleetAppSpec> apps;
  MigrationConfig migration;
  // Crash-evacuation mode. When true (the default), a failing board's
  // sandboxed apps are evacuated by *state transfer*: the dying board
  // serialises the app's billing state (raw meter reading, residual budget,
  // progress) into a CRC-guarded blob and the target board resumes billing
  // from the transferred value. A torn write (snapshot_corrupt fault) makes
  // the blob fail validation, and the evacuation falls back to the legacy
  // drain-style carry (billing restarts at zero on the target; the budget
  // ledger stays conserved either way). When false, the legacy carry is
  // always used.
  bool crash_state_transfer = true;
  // Generated background population: when enabled, every board streams a
  // seeded endless arrival mix (one independent stream per board, derived
  // from population.seed and the board index) under per-board tenant
  // sandboxes, alongside the fixed `apps` cast. Deterministic per seed, so
  // fingerprints stay bit-identical across worker-thread counts.
  PopulationConfig population;
};

// Per-board load snapshot, assembled at sub-fleet barriers (fresh for the
// local slice) and shipped upward inside SubFleetDigests (bounded-stale, at
// most one root period old, for everyone else).
struct BoardLoad {
  bool alive = true;
  // Apps currently resident and still running.
  int active_apps = 0;
  // Cumulative rail energy (all rails) the board consumed so far. Only
  // computed when the fleet budget is enabled.
  Joules energy = 0.0;
  // Energy-pressure term: `energy` divided by the board's slice of its
  // sub-fleet's budget allocation. 0 when the fleet budget is disabled.
  double pressure = 0.0;
};

// Compact per-sub-fleet summary exchanged at root barriers. This is the
// *only* cross-sub-fleet communication channel: the root never reads shard
// state directly, so its view of remote load is bounded-stale by design.
struct SubFleetDigest {
  int subfleet = -1;
  int first_board = 0;       // global index of the slice start
  int alive_boards = 0;
  int active_apps = 0;
  Joules energy_total = 0.0; // cumulative rail energy over the whole slice
  Joules allocation = 0.0;   // budget slice at the last root barrier
  double pressure = 0.0;     // energy_total / allocation (0 when unbudgeted)
  std::vector<BoardLoad> loads;  // loads[i] is global board first_board + i
};

// Fleet-wide energy budget ledger (root-owned). `allocation[s]` is
// sub-fleet s's current slice of `total`; `consumed[s]` mirrors the last
// digest's energy total.
struct FleetBudget {
  Joules total = 0.0;  // 0 = disabled
  std::vector<Joules> allocation;
  std::vector<Joules> consumed;

  bool enabled() const { return total > 0.0; }
  double Pressure(size_t s) const {
    return (enabled() && allocation[s] > 0.0) ? consumed[s] / allocation[s]
                                              : 0.0;
  }
  double FleetPressure() const {
    if (!enabled()) {
      return 0.0;
    }
    Joules c = 0.0;
    for (const Joules v : consumed) {
      c += v;
    }
    return c / total;
  }
};

// One completed migration (graceful drain, crash evacuation, or root-driven
// fleet-budget rebalance).
struct MigrationRecord {
  TimeNs when = 0;           // barrier time the hand-off happened at
  std::string app;           // FleetAppSpec::name
  int from = -1;
  int to = -1;
  bool crash = false;        // board-failure evacuation vs budget drain
  // The hop crossed a sub-fleet boundary (decided/executed at a root
  // barrier from digests rather than at a sub-fleet barrier).
  bool cross_subfleet = false;
  // Crash evacuations only: the billing state made it to the target by
  // snapshot transfer (false = the blob failed validation, or transfer was
  // disabled, and the hop fell back to the drain-style carry).
  bool state_transfer = false;
  Joules consumed_source = 0.0;  // billed on the source board this hop
  Joules budget_carried = 0.0;   // remaining budget moved to the target
  uint64_t iterations_done = 0;  // iterations completed before the hand-off
};

// Aggregated per-board results.
struct FleetBoardStats {
  bool failed = false;
  TimeNs ran_until = 0;          // horizon, or fail_at for failed boards
  Joules rail_energy = 0.0;      // summed over all seven rails
  uint64_t balloons = 0;         // summed over all resource domains
  uint64_t balloons_aborted = 0;
  uint64_t iterations = 0;       // app iterations completed on this board
  int migrations_in = 0;
  int migrations_out = 0;
  // Generated population: arrivals spawned on this board and how many of
  // them ran to completion. Both are fingerprinted — the determinism
  // contract extends to the population.
  uint64_t popgen_spawned = 0;
  uint64_t popgen_completed = 0;
  // Discrete events the board's engine fired over the run. Observability
  // only: excluded from Fingerprint() so fingerprints survive engine-internal
  // changes to event decomposition; determinism of the count itself is pinned
  // separately by fleet_test.
  uint64_t events_fired = 0;
};

// Aggregated per-sub-fleet results (hierarchy level between board and fleet).
struct SubFleetStats {
  int first_board = 0;
  int boards = 0;
  Joules energy = 0.0;           // cumulative rail energy over the slice
  Joules allocation = 0.0;       // final budget allocation (0 = unbudgeted)
  int cross_in = 0;              // cross-sub-fleet migrations received
  int cross_out = 0;             // cross-sub-fleet migrations donated
};

// Final per-app outcome, across however many boards the app visited.
struct FleetAppOutcome {
  std::string name;
  int hops = 0;               // completed migrations
  int final_board = -1;
  bool finished = false;      // ran to its iteration/deadline end
  bool lost = false;          // died with its board (non-migratable / no target)
  uint64_t iterations = 0;    // total across all boards
  // Total energy billed through the app's psboxes, summed across boards.
  // -1 when the app never ran sandboxed.
  Joules billed_energy = -1.0;
};

struct FleetStats {
  std::vector<FleetBoardStats> boards;
  std::vector<SubFleetStats> subfleets;
  std::vector<FleetAppOutcome> apps;
  std::vector<MigrationRecord> migrations;

  // Order-sensitive FNV-1a hash over every field above. Two runs of the same
  // scenario produce the same fingerprint regardless of the worker-thread
  // count or of how those workers are allocated to sub-fleets — the
  // determinism contract fleet_test pins down.
  uint64_t Fingerprint() const;
};

}  // namespace psbox

#endif  // SRC_FLEET_FLEET_H_
