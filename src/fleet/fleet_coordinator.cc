#include "src/fleet/fleet_coordinator.h"

#include <algorithm>

#include "src/base/check.h"

namespace psbox {
namespace {

// SplitMix64 step: derives statistically independent per-shard seeds from
// (fleet seed, stream index) so board randomness never depends on how many
// boards exist before it in the spec list.
uint64_t DeriveSeed(uint64_t master, uint64_t stream) {
  uint64_t z = master + (stream + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FleetCoordinator::FleetCoordinator(FleetScenario scenario, int threads)
    : scenario_(std::move(scenario)),
      policy_(scenario_.migration),
      pool_(threads) {
  PSBOX_CHECK(!scenario_.boards.empty());
  PSBOX_CHECK_GT(scenario_.epoch, 0);
  PSBOX_CHECK_GT(scenario_.horizon, 0);

  shards_.reserve(scenario_.boards.size());
  board_iterations_.assign(scenario_.boards.size(), 0);
  for (size_t i = 0; i < scenario_.boards.size(); ++i) {
    const FleetBoardSpec& spec = scenario_.boards[i];
    auto shard = std::make_unique<Shard>();
    shard->index = static_cast<int>(i);
    shard->fail_at = spec.fail_at;
    BoardConfig board_config = spec.board;
    board_config.seed = DeriveSeed(scenario_.seed, i * 2);
    board_config.faults.seed = DeriveSeed(scenario_.seed, i * 2 + 1);
    shard->board = std::make_unique<Board>(board_config);
    shard->kernel = std::make_unique<Kernel>(shard->board.get(), spec.kernel);
    shard->manager = std::make_unique<PsboxManager>(shard->kernel.get());
    shards_.push_back(std::move(shard));
  }

  apps_.reserve(scenario_.apps.size());
  for (const FleetAppSpec& spec : scenario_.apps) {
    PSBOX_CHECK(spec.factory != nullptr);
    PSBOX_CHECK_GE(spec.board, 0);
    PSBOX_CHECK_LT(static_cast<size_t>(spec.board), shards_.size());
    PSBOX_CHECK(spec.options.stop == nullptr);  // the coordinator owns this
    AppRuntime app;
    app.spec = spec;
    app.budget_remaining = spec.energy_budget;
    app.remaining = spec.options.iterations;
    apps_.push_back(std::move(app));
  }
  for (AppRuntime& app : apps_) {
    SpawnOn(app, app.spec.board);
  }
}

FleetCoordinator::~FleetCoordinator() = default;

void FleetCoordinator::SpawnOn(AppRuntime& app, int board_index) {
  Shard& shard = *shards_[static_cast<size_t>(board_index)];
  AppOptions opts = app.spec.options;
  opts.iterations = app.remaining;
  app.stop = std::make_shared<bool>(false);
  opts.stop = app.stop;
  std::string label = app.spec.name;
  if (app.hops > 0) {
    // Hop-qualified label so every instance is distinct in per-board output.
    label += "@b" + std::to_string(board_index);
  }
  app.handle = app.spec.factory(*shard.kernel, label, opts);
  app.board = board_index;
  app.draining = false;
}

Joules FleetCoordinator::CloseHop(AppRuntime& app) {
  // Energy billed on this board: the wrap behaviour's exit reading when the
  // app drained cleanly, otherwise (crash evacuation, end-of-run settle) a
  // live virtual-meter read at the shard's current instant.
  Joules consumed = 0.0;
  if (app.spec.options.use_psbox && app.handle.stats != nullptr) {
    app.ever_sandboxed = true;
    if (app.handle.stats->psbox_energy >= 0.0) {
      consumed = app.handle.stats->psbox_energy;
    } else if (app.handle.stats->box >= 0) {
      Shard& shard = *shards_[static_cast<size_t>(app.board)];
      consumed = shard.manager->ReadEnergy(app.handle.stats->box);
    }
  }
  app.billed += consumed;
  app.budget_remaining = std::max(0.0, app.budget_remaining - consumed);

  // Iteration progress: fold this hop into the app's running total, shrink
  // the remaining target, and attribute the work to the board it ran on.
  const uint64_t done_hop =
      app.handle.stats != nullptr ? app.handle.stats->iterations : 0;
  app.iterations_prev += done_hop;
  if (app.remaining > 0) {
    app.remaining = done_hop >= app.remaining ? 0 : app.remaining - done_hop;
  }
  board_iterations_[static_cast<size_t>(app.board)] += done_hop;
  return consumed;
}

std::vector<BoardLoad> FleetCoordinator::LoadSnapshot() const {
  std::vector<BoardLoad> loads(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    loads[i].alive = !shards_[i]->failed;
  }
  for (const AppRuntime& app : apps_) {
    if (!app.finished && !app.lost && app.board >= 0) {
      ++loads[static_cast<size_t>(app.board)].active_apps;
    }
  }
  return loads;
}

void FleetCoordinator::ProcessBarrier(TimeNs now) {
  // --- 1. board failures: freeze the shard, evacuate its residents --------
  for (auto& shard : shards_) {
    if (shard->failed || shard->fail_at <= 0 || now < shard->fail_at) {
      continue;
    }
    shard->failed = true;  // shard->now stopped exactly at fail_at
    for (AppRuntime& app : apps_) {
      if (app.board != shard->index || app.finished || app.lost) {
        continue;
      }
      const Joules consumed = CloseHop(app);
      const bool work_done =
          (app.spec.options.iterations > 0 && app.remaining == 0) ||
          shard->kernel->AppFinished(app.handle.app);
      if (work_done) {
        app.finished = true;
        continue;
      }
      const int target =
          app.spec.migratable ? policy_.PickTarget(LoadSnapshot(), app.board) : -1;
      if (target < 0) {
        app.lost = true;  // died with its board
        continue;
      }
      migrations_.push_back({now, app.spec.name, app.board, target,
                             /*crash=*/true, consumed, app.budget_remaining,
                             app.iterations_prev});
      ++app.hops;
      SpawnOn(app, target);
    }
  }

  // --- 2. completions & graceful hand-offs --------------------------------
  for (AppRuntime& app : apps_) {
    if (app.finished || app.lost || app.board < 0) {
      continue;
    }
    Shard& shard = *shards_[static_cast<size_t>(app.board)];
    if (shard.failed || !shard.kernel->AppFinished(app.handle.app)) {
      continue;
    }
    const Joules consumed = CloseHop(app);
    const bool work_done =
        (app.spec.options.iterations > 0 && app.remaining == 0) ||
        (app.spec.options.deadline > 0 && now >= app.spec.options.deadline);
    if (!app.draining || work_done) {
      app.finished = true;
      continue;
    }
    // Drained on the policy's order: hand the remainder to a target board.
    const int target = policy_.PickTarget(LoadSnapshot(), app.board);
    if (target < 0) {
      app.finished = true;  // nowhere to go; what ran is the outcome
      continue;
    }
    migrations_.push_back({now, app.spec.name, app.board, target,
                           /*crash=*/false, consumed, app.budget_remaining,
                           app.iterations_prev});
    ++app.hops;
    ++app.budget_hops;
    SpawnOn(app, target);
  }

  // --- 3. budget-pressure drain decisions ----------------------------------
  if (!policy_.config().enabled) {
    return;
  }
  const std::vector<BoardLoad> loads = LoadSnapshot();
  for (AppRuntime& app : apps_) {
    if (app.finished || app.lost || app.draining || !app.spec.migratable ||
        app.board < 0) {
      continue;
    }
    Shard& shard = *shards_[static_cast<size_t>(app.board)];
    if (shard.failed || !app.spec.options.use_psbox ||
        app.handle.stats->box < 0) {
      continue;
    }
    const Joules consumed = shard.manager->ReadEnergy(app.handle.stats->box);
    if (policy_.ShouldDrain(consumed, app.budget_remaining, app.budget_hops) &&
        policy_.PickTarget(loads, app.board) >= 0) {
      *app.stop = true;  // LoopBehaviors exit at their next iteration boundary
      app.draining = true;
    }
  }
}

FleetStats FleetCoordinator::Run() {
  PSBOX_CHECK(!ran_);
  ran_ = true;

  TimeNs t = 0;
  while (t < scenario_.horizon) {
    const TimeNs next = std::min(t + scenario_.epoch, scenario_.horizon);
    // Parallel phase: each alive shard advances independently to the next
    // barrier (or to its failure instant, whichever comes first). Shards
    // share no mutable state, so this cannot perturb any shard's event
    // order; WaitIdle() publishes all shard writes back to this thread.
    for (auto& shard : shards_) {
      if (shard->failed) {
        continue;
      }
      const TimeNs target =
          shard->fail_at > 0 ? std::min(next, shard->fail_at) : next;
      if (target <= shard->now) {
        continue;
      }
      Shard* s = shard.get();
      pool_.Submit([s, target] { s->kernel->RunUntil(target); });
      shard->now = target;
    }
    pool_.WaitIdle();
    // Single-threaded barrier: failures, hand-offs, drain decisions — all in
    // fixed board/app order.
    ProcessBarrier(next);
    // Telemetry retention: shards with a bounded-retention kernel config are
    // trimmed behind the barrier as well (their own periodic tick handles the
    // mid-epoch cadence; this pass keeps memory bounded even when epochs
    // outpace the tick, in deterministic board order). Trimming folds exact
    // energy bases first, so results are unchanged.
    for (auto& shard : shards_) {
      const DurationNs retention = shard->kernel->config().telemetry_retention;
      if (!shard->failed && retention > 0) {
        shard->kernel->TrimTelemetry(shard->now - retention);
      }
    }
    t = next;
  }

  // Settle apps still running at the horizon so their last hop is billed.
  for (AppRuntime& app : apps_) {
    if (!app.finished && !app.lost) {
      CloseHop(app);
    }
  }
  return Aggregate();
}

FleetStats FleetCoordinator::Aggregate() const {
  FleetStats stats;
  stats.boards.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    FleetBoardStats& b = stats.boards[i];
    b.failed = shard.failed;
    b.ran_until = shard.now;
    b.iterations = board_iterations_[i];
    b.events_fired = shard.kernel->sim().total_fired();
    for (size_t c = 0; c < kNumHwComponents; ++c) {
      const HwComponent hw = static_cast<HwComponent>(c);
      b.rail_energy += shard.board->RailFor(hw).EnergyOver(0, shard.now);
      const DomainStats& d = shard.kernel->domain(hw).domain_stats();
      b.balloons += d.balloons;
      b.balloons_aborted += d.aborted;
    }
  }
  for (const MigrationRecord& m : migrations_) {
    ++stats.boards[static_cast<size_t>(m.from)].migrations_out;
    ++stats.boards[static_cast<size_t>(m.to)].migrations_in;
  }
  stats.migrations = migrations_;

  stats.apps.reserve(apps_.size());
  for (const AppRuntime& app : apps_) {
    FleetAppOutcome out;
    out.name = app.spec.name;
    out.hops = app.hops;
    out.final_board = app.board;
    out.finished = app.finished;
    out.lost = app.lost;
    out.iterations = app.iterations_prev;
    out.billed_energy = app.ever_sandboxed ? app.billed : -1.0;
    stats.apps.push_back(std::move(out));
  }
  return stats;
}

}  // namespace psbox
