#include "src/fleet/fleet_coordinator.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "src/base/check.h"
#include "src/snapshot/board_snapshot.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {
namespace {

// SplitMix64 step: derives statistically independent per-shard seeds from
// (fleet seed, stream index) so board randomness never depends on how many
// boards exist before it in the spec list.
uint64_t DeriveSeed(uint64_t master, uint64_t stream) {
  uint64_t z = master + (stream + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FleetCoordinator::FleetCoordinator(FleetScenario scenario, int threads)
    : scenario_(std::move(scenario)),
      policy_(scenario_.migration),
      pool_(threads) {
  BuildShards();
  for (AppRuntime& app : apps_) {
    SpawnOn(app, app.spec.board);
  }
}

FleetCoordinator::FleetCoordinator(FleetScenario scenario, int threads,
                                   RestoreTag)
    : scenario_(std::move(scenario)),
      policy_(scenario_.migration),
      pool_(threads) {
  // Checkpoint restore: shards and app runtimes are built, but every spawn
  // is replayed from the checkpoint's log instead (LoadCheckpoint).
  BuildShards();
}

void FleetCoordinator::BuildShards() {
  PSBOX_CHECK(!scenario_.boards.empty());
  PSBOX_CHECK_GT(scenario_.epoch, 0);
  PSBOX_CHECK_GT(scenario_.horizon, 0);

  shards_.reserve(scenario_.boards.size());
  board_iterations_.assign(scenario_.boards.size(), 0);
  for (size_t i = 0; i < scenario_.boards.size(); ++i) {
    const FleetBoardSpec& spec = scenario_.boards[i];
    auto shard = std::make_unique<Shard>();
    shard->index = static_cast<int>(i);
    shard->fail_at = spec.fail_at;
    BoardConfig board_config = spec.board;
    board_config.seed = DeriveSeed(scenario_.seed, i * 2);
    board_config.faults.seed = DeriveSeed(scenario_.seed, i * 2 + 1);
    shard->board = std::make_unique<Board>(board_config);
    shard->kernel = std::make_unique<Kernel>(shard->board.get(), spec.kernel);
    shard->manager = std::make_unique<PsboxManager>(shard->kernel.get());
    shards_.push_back(std::move(shard));
  }

  apps_.reserve(scenario_.apps.size());
  for (const FleetAppSpec& spec : scenario_.apps) {
    PSBOX_CHECK(spec.factory != nullptr);
    PSBOX_CHECK_GE(spec.board, 0);
    PSBOX_CHECK_LT(static_cast<size_t>(spec.board), shards_.size());
    PSBOX_CHECK(spec.options.stop == nullptr);  // the coordinator owns this
    AppRuntime app;
    app.spec = spec;
    app.budget_remaining = spec.energy_budget;
    app.remaining = spec.options.iterations;
    apps_.push_back(std::move(app));
  }
}

FleetCoordinator::~FleetCoordinator() = default;

void FleetCoordinator::SpawnOn(AppRuntime& app, int board_index) {
  Shard& shard = *shards_[static_cast<size_t>(board_index)];
  AppOptions opts = app.spec.options;
  opts.iterations = app.remaining;
  app.stop = std::make_shared<bool>(false);
  opts.stop = app.stop;
  std::string label = app.spec.name;
  if (app.hops > 0) {
    // Hop-qualified label so every instance is distinct in per-board output.
    label += "@b" + std::to_string(board_index);
  }
  spawn_log_.push_back({static_cast<int>(&app - apps_.data()), board_index,
                        label, app.remaining});
  app.handle = app.spec.factory(*shard.kernel, label, opts);
  app.board = board_index;
  app.draining = false;
  app.transferred_base = 0.0;  // a state transfer re-seeds this afterwards
}

Joules FleetCoordinator::CloseHop(AppRuntime& app, Joules* raw_reading) {
  // Raw cumulative meter value for this hop (any transferred base included):
  // the wrap behaviour's exit reading when the app drained cleanly, otherwise
  // (crash evacuation, end-of-run settle) a live virtual-meter read at the
  // shard's current instant.
  Joules raw = app.transferred_base;  // box never created: carried value only
  if (app.spec.options.use_psbox && app.handle.stats != nullptr) {
    app.ever_sandboxed = true;
    if (app.handle.stats->psbox_energy >= 0.0) {
      raw = app.handle.stats->psbox_energy;
    } else if (app.handle.stats->box >= 0) {
      Shard& shard = *shards_[static_cast<size_t>(app.board)];
      raw = shard.manager->ReadEnergy(app.handle.stats->box);
    }
  }
  if (raw_reading != nullptr) {
    *raw_reading = raw;
  }
  // Billing excludes what a state transfer carried onto this board — that
  // part was already billed on the boards that actually spent it.
  const Joules consumed = std::max(0.0, raw - app.transferred_base);
  app.billed += consumed;
  app.budget_remaining = std::max(0.0, app.budget_remaining - consumed);

  // Iteration progress: fold this hop into the app's running total, shrink
  // the remaining target, and attribute the work to the board it ran on.
  const uint64_t done_hop =
      app.handle.stats != nullptr ? app.handle.stats->iterations : 0;
  app.iterations_prev += done_hop;
  if (app.remaining > 0) {
    app.remaining = done_hop >= app.remaining ? 0 : app.remaining - done_hop;
  }
  board_iterations_[static_cast<size_t>(app.board)] += done_hop;
  return consumed;
}

std::vector<BoardLoad> FleetCoordinator::LoadSnapshot() const {
  std::vector<BoardLoad> loads(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    loads[i].alive = !shards_[i]->failed;
  }
  for (const AppRuntime& app : apps_) {
    if (!app.finished && !app.lost && app.board >= 0) {
      ++loads[static_cast<size_t>(app.board)].active_apps;
    }
  }
  return loads;
}

bool FleetCoordinator::TransferAppState(AppRuntime& app, int target,
                                        Joules raw_reading) {
  if (!app.spec.options.use_psbox) {
    return false;  // no virtual meter, nothing transferable
  }
  // The dying board serialises the app's billing state; a torn write (power
  // already failing) truncates the blob, which the CRC/size validation below
  // rejects — the caller then falls back to the drain-style carry.
  Shard& source = *shards_[static_cast<size_t>(app.board)];
  SnapshotWriter w;
  w.Section("evac");
  w.Str(app.spec.name);
  w.F64(app.budget_remaining);
  w.F64(raw_reading);
  w.U64(app.iterations_prev);
  std::vector<uint8_t> blob = w.Seal();
  if (source.board->fault_injector().ShouldCorruptSnapshot()) {
    blob.resize(blob.size() / 2);
  }
  SnapshotReader r;
  if (!r.Open(blob) || !r.Section("evac")) {
    return false;
  }
  const std::string name = r.Str();
  const Joules budget = r.F64();
  const Joules transferred = r.F64();
  const uint64_t iterations = r.U64();
  if (!r.ok() || name != app.spec.name) {
    return false;
  }
  SpawnOn(app, target);
  // Billing resumes from the transferred raw value: the target's manager
  // seeds the app's next sandbox with it, and hop accounting subtracts it.
  app.budget_remaining = budget;
  app.iterations_prev = iterations;
  if (transferred > 0.0) {
    shards_[static_cast<size_t>(target)]->manager->StageTransferredEnergy(
        app.handle.app, transferred);
    app.transferred_base = transferred;
  }
  return true;
}

void FleetCoordinator::ProcessBarrier(TimeNs now) {
  // One load snapshot per barrier, maintained incrementally as decisions
  // change it (recomputing it for every migration candidate made the barrier
  // quadratic in fleet size).
  std::vector<BoardLoad> loads = LoadSnapshot();

  // --- 1. board failures: freeze the shard, evacuate its residents --------
  for (auto& shard : shards_) {
    if (shard->failed || shard->fail_at <= 0 || now < shard->fail_at) {
      continue;
    }
    shard->failed = true;  // shard->now stopped exactly at fail_at
    loads[static_cast<size_t>(shard->index)].alive = false;
    for (AppRuntime& app : apps_) {
      if (app.board != shard->index || app.finished || app.lost) {
        continue;
      }
      Joules raw = 0.0;
      const Joules consumed = CloseHop(app, &raw);
      const bool work_done =
          (app.spec.options.iterations > 0 && app.remaining == 0) ||
          shard->kernel->AppFinished(app.handle.app);
      if (work_done) {
        app.finished = true;
        --loads[static_cast<size_t>(shard->index)].active_apps;
        continue;
      }
      const int target =
          app.spec.migratable ? policy_.PickTarget(loads, app.board) : -1;
      if (target < 0) {
        app.lost = true;  // died with its board
        --loads[static_cast<size_t>(shard->index)].active_apps;
        continue;
      }
      ++app.hops;
      const bool transferred =
          scenario_.crash_state_transfer && TransferAppState(app, target, raw);
      if (!transferred) {
        SpawnOn(app, target);  // drain-style carry: billing restarts at zero
      }
      MigrationRecord rec;
      rec.when = now;
      rec.app = app.spec.name;
      rec.from = shard->index;
      rec.to = target;
      rec.crash = true;
      rec.state_transfer = transferred;
      rec.consumed_source = consumed;
      rec.budget_carried = app.budget_remaining;
      rec.iterations_done = app.iterations_prev;
      migrations_.push_back(std::move(rec));
      --loads[static_cast<size_t>(shard->index)].active_apps;
      ++loads[static_cast<size_t>(target)].active_apps;
    }
  }

  // --- 2. completions & graceful hand-offs --------------------------------
  for (AppRuntime& app : apps_) {
    if (app.finished || app.lost || app.board < 0) {
      continue;
    }
    Shard& shard = *shards_[static_cast<size_t>(app.board)];
    if (shard.failed || !shard.kernel->AppFinished(app.handle.app)) {
      continue;
    }
    const int from = app.board;
    const Joules consumed = CloseHop(app);
    const bool work_done =
        (app.spec.options.iterations > 0 && app.remaining == 0) ||
        (app.spec.options.deadline > 0 && now >= app.spec.options.deadline);
    if (!app.draining || work_done) {
      app.finished = true;
      --loads[static_cast<size_t>(from)].active_apps;
      continue;
    }
    // Drained on the policy's order: hand the remainder to a target board.
    const int target = policy_.PickTarget(loads, app.board);
    if (target < 0) {
      app.finished = true;  // nowhere to go; what ran is the outcome
      --loads[static_cast<size_t>(from)].active_apps;
      continue;
    }
    ++app.hops;
    ++app.budget_hops;
    SpawnOn(app, target);
    MigrationRecord rec;
    rec.when = now;
    rec.app = app.spec.name;
    rec.from = from;
    rec.to = target;
    rec.crash = false;
    rec.consumed_source = consumed;
    rec.budget_carried = app.budget_remaining;
    rec.iterations_done = app.iterations_prev;
    migrations_.push_back(std::move(rec));
    --loads[static_cast<size_t>(from)].active_apps;
    ++loads[static_cast<size_t>(target)].active_apps;
  }

  // --- 3. budget-pressure drain decisions ----------------------------------
  if (!policy_.config().enabled) {
    return;
  }
  for (AppRuntime& app : apps_) {
    if (app.finished || app.lost || app.draining || !app.spec.migratable ||
        app.board < 0) {
      continue;
    }
    Shard& shard = *shards_[static_cast<size_t>(app.board)];
    if (shard.failed || !app.spec.options.use_psbox ||
        app.handle.stats->box < 0) {
      continue;
    }
    // Pressure is against what was spent on *this* board, so a transferred
    // base (already billed on previous boards) is subtracted back out.
    const Joules consumed =
        std::max(0.0, shard.manager->ReadEnergy(app.handle.stats->box) -
                          app.transferred_base);
    if (policy_.ShouldDrain(consumed, app.budget_remaining, app.budget_hops) &&
        policy_.PickTarget(loads, app.board) >= 0) {
      *app.stop = true;  // LoopBehaviors exit at their next iteration boundary
      app.draining = true;
    }
  }
}

void FleetCoordinator::TrimShards() {
  // Telemetry retention: shards with a bounded-retention kernel config are
  // trimmed behind the barrier as well (their own periodic tick handles the
  // mid-epoch cadence; this pass keeps memory bounded even when epochs
  // outpace the tick, in deterministic board order). Trimming folds exact
  // energy bases first, so results are unchanged.
  for (auto& shard : shards_) {
    const DurationNs retention = shard->kernel->config().telemetry_retention;
    if (!shard->failed && retention > 0) {
      shard->kernel->TrimTelemetry(shard->now - retention);
    }
  }
}

FleetStats FleetCoordinator::Run() {
  PSBOX_CHECK(!ran_);
  ran_ = true;

  TimeNs t = 0;
  if (resumed_) {
    // The checkpoint was written with every shard advanced to resume_t_ but
    // the barrier not yet processed — re-run it on the restored (bit-identical)
    // state and continue from there.
    ProcessBarrier(resume_t_);
    TrimShards();
    t = resume_t_;
  }
  uint64_t epochs_done = 0;
  while (t < scenario_.horizon) {
    const TimeNs next = std::min(t + scenario_.epoch, scenario_.horizon);
    // Parallel phase: each alive shard advances independently to the next
    // barrier (or to its failure instant, whichever comes first). Shards
    // share no mutable state, so this cannot perturb any shard's event
    // order; WaitIdle() publishes all shard writes back to this thread.
    for (auto& shard : shards_) {
      if (shard->failed) {
        continue;
      }
      const TimeNs target =
          shard->fail_at > 0 ? std::min(next, shard->fail_at) : next;
      if (target <= shard->now) {
        continue;
      }
      Shard* s = shard.get();
      pool_.Submit([s, target] { s->kernel->RunUntil(target); });
      shard->now = target;
    }
    pool_.WaitIdle();
    ++epochs_done;
    // Checkpoint cadence: the instant after WaitIdle and before the barrier
    // is the only quiescent point — the barrier's respawns schedule work that
    // the event census would (correctly) refuse to serialise.
    if (checkpoint_every_ > 0 && !checkpoint_path_.empty() &&
        epochs_done % static_cast<uint64_t>(checkpoint_every_) == 0 &&
        next < scenario_.horizon) {
      std::string error;
      if (!WriteCheckpoint(next, &error)) {
        PSBOX_CHECK(false);  // census refusal: a serialiser lost a timer
      }
    }
    // Single-threaded barrier: failures, hand-offs, drain decisions — all in
    // fixed board/app order.
    ProcessBarrier(next);
    TrimShards();
    t = next;
  }

  // Settle apps still running at the horizon so their last hop is billed.
  for (AppRuntime& app : apps_) {
    if (!app.finished && !app.lost) {
      CloseHop(app);
    }
  }
  return Aggregate();
}

bool FleetCoordinator::WriteCheckpoint(TimeNs now, std::string* error) {
  SnapshotWriter w;
  w.Section("fleet");

  // Compatibility block: enough of the scenario to refuse a restore under a
  // different one (factories cannot be serialised, so the caller re-supplies
  // the scenario and these fields cross-check it).
  w.U64(scenario_.seed);
  w.I64(scenario_.epoch);
  w.I64(scenario_.horizon);
  w.U64(scenario_.boards.size());
  for (const FleetBoardSpec& spec : scenario_.boards) {
    w.I64(spec.fail_at);
  }
  w.U64(scenario_.apps.size());
  for (const FleetAppSpec& spec : scenario_.apps) {
    w.Str(spec.name);
    w.I64(spec.board);
    w.Bool(spec.options.use_psbox);
  }
  w.Bool(scenario_.migration.enabled);
  w.F64(scenario_.migration.pressure_fraction);
  w.I64(scenario_.migration.max_hops);
  w.Bool(scenario_.crash_state_transfer);

  w.I64(now);  // barrier the restored run resumes at

  // Spawn log: replayed verbatim on restore so every shard re-creates its
  // apps/tasks through the same factory calls, in the same order.
  w.U64(spawn_log_.size());
  for (const SpawnRecord& rec : spawn_log_) {
    w.I64(rec.app_index);
    w.I64(rec.board);
    w.Str(rec.label);
    w.U64(rec.iterations);
  }

  // Coordinator-side app runtime state.
  for (const AppRuntime& app : apps_) {
    w.I64(app.board);
    w.I64(app.hops);
    w.I64(app.budget_hops);
    w.Bool(app.draining);
    w.Bool(app.finished);
    w.Bool(app.lost);
    w.F64(app.billed);
    w.Bool(app.ever_sandboxed);
    w.F64(app.budget_remaining);
    w.U64(app.iterations_prev);
    w.U64(app.remaining);
    w.F64(app.transferred_base);
  }
  for (uint64_t iters : board_iterations_) {
    w.U64(iters);
  }
  w.U64(migrations_.size());
  for (const MigrationRecord& m : migrations_) {
    w.I64(m.when);
    w.Str(m.app);
    w.I64(m.from);
    w.I64(m.to);
    w.Bool(m.crash);
    w.Bool(m.state_transfer);
    w.F64(m.consumed_source);
    w.F64(m.budget_carried);
    w.U64(m.iterations_done);
  }

  // Every shard, whole: device state, kernel, sandboxes, pending events.
  for (const auto& shard : shards_) {
    w.Bool(shard->failed);
    w.I64(shard->now);
    if (!SaveBoardShard(*shard->board, *shard->kernel, *shard->manager, &w,
                        error)) {
      return false;
    }
  }

  // snapshot_corrupt fault: the checkpoint write itself is torn mid-file
  // (simulated power loss while flushing). The truncated file fails CRC/size
  // validation on restore — exactly the robustness case being modelled — so
  // the write "succeeds" from the running fleet's point of view.
  if (shards_[0]->board->fault_injector().ShouldCorruptSnapshot()) {
    std::vector<uint8_t> blob = w.Seal();
    blob.resize(blob.size() / 2);
    std::ofstream out(checkpoint_path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    return true;
  }
  return w.WriteFile(checkpoint_path_, error);
}

bool FleetCoordinator::LoadCheckpoint(SnapshotReader& r, std::string* error) {
  auto fail = [&](const std::string& msg) {
    *error = msg;
    return false;
  };
  if (!r.Section("fleet")) {
    return fail(r.error());
  }

  // Compatibility block: every mismatch is a different scenario, not a
  // corrupt file — say so.
  const uint64_t seed = r.U64();
  const TimeNs epoch = r.I64();
  const TimeNs horizon = r.I64();
  if (!r.ok()) {
    return fail(r.error());
  }
  if (seed != scenario_.seed || epoch != scenario_.epoch ||
      horizon != scenario_.horizon) {
    return fail(
        "checkpoint was written under a different fleet scenario "
        "(seed/epoch/horizon mismatch)");
  }
  const size_t board_count = r.Count(sizeof(int64_t));
  if (board_count != scenario_.boards.size()) {
    return fail("checkpoint board count does not match the scenario");
  }
  for (size_t i = 0; i < board_count && r.ok(); ++i) {
    if (r.I64() != scenario_.boards[i].fail_at) {
      return fail("checkpoint board failure plan does not match the scenario");
    }
  }
  const size_t app_count = r.Count(1);
  if (app_count != scenario_.apps.size()) {
    return fail("checkpoint app count does not match the scenario");
  }
  for (size_t i = 0; i < app_count && r.ok(); ++i) {
    const std::string name = r.Str();
    const int64_t board = r.I64();
    const bool use_psbox = r.Bool();
    const FleetAppSpec& spec = scenario_.apps[i];
    if (name != spec.name || board != spec.board ||
        use_psbox != spec.options.use_psbox) {
      return fail("checkpoint app list does not match the scenario");
    }
  }
  const bool mig_enabled = r.Bool();
  const double pressure = r.F64();
  const int64_t max_hops = r.I64();
  const bool state_transfer = r.Bool();
  if (!r.ok()) {
    return fail(r.error());
  }
  if (mig_enabled != scenario_.migration.enabled ||
      pressure != scenario_.migration.pressure_fraction ||
      max_hops != scenario_.migration.max_hops ||
      state_transfer != scenario_.crash_state_transfer) {
    return fail("checkpoint migration policy does not match the scenario");
  }

  resume_t_ = r.I64();

  const size_t spawn_count = r.Count(4 * sizeof(int64_t));
  spawn_log_.clear();
  spawn_log_.reserve(spawn_count);
  for (size_t i = 0; i < spawn_count && r.ok(); ++i) {
    SpawnRecord rec;
    rec.app_index = static_cast<int>(r.I64());
    rec.board = static_cast<int>(r.I64());
    rec.label = r.Str();
    rec.iterations = r.U64();
    if (rec.app_index < 0 || static_cast<size_t>(rec.app_index) >= apps_.size() ||
        rec.board < 0 || static_cast<size_t>(rec.board) >= shards_.size()) {
      return fail("checkpoint spawn log references an out-of-range app/board");
    }
    spawn_log_.push_back(std::move(rec));
  }

  for (AppRuntime& app : apps_) {
    app.board = static_cast<int>(r.I64());
    app.hops = static_cast<int>(r.I64());
    app.budget_hops = static_cast<int>(r.I64());
    app.draining = r.Bool();
    app.finished = r.Bool();
    app.lost = r.Bool();
    app.billed = r.F64();
    app.ever_sandboxed = r.Bool();
    app.budget_remaining = r.F64();
    app.iterations_prev = r.U64();
    app.remaining = r.U64();
    app.transferred_base = r.F64();
  }
  for (uint64_t& iters : board_iterations_) {
    iters = r.U64();
  }
  const size_t migration_count = r.Count(8 * sizeof(int64_t));
  migrations_.clear();
  migrations_.reserve(migration_count);
  for (size_t i = 0; i < migration_count && r.ok(); ++i) {
    MigrationRecord m;
    m.when = r.I64();
    m.app = r.Str();
    m.from = static_cast<int>(r.I64());
    m.to = static_cast<int>(r.I64());
    m.crash = r.Bool();
    m.state_transfer = r.Bool();
    m.consumed_source = r.F64();
    m.budget_carried = r.F64();
    m.iterations_done = r.U64();
    migrations_.push_back(std::move(m));
  }
  if (!r.ok()) {
    return fail(r.error());
  }

  // An app's live handle/stop belong to its most recent spawn; earlier
  // spawns are replayed only to reconstruct each shard's task population.
  std::vector<int> last_spawn(apps_.size(), -1);
  for (size_t i = 0; i < spawn_log_.size(); ++i) {
    last_spawn[static_cast<size_t>(spawn_log_[i].app_index)] =
        static_cast<int>(i);
  }

  for (auto& shard : shards_) {
    shard->failed = r.Bool();
    shard->now = r.I64();
    if (!r.ok()) {
      return fail(r.error());
    }
    Shard* s = shard.get();
    auto replay = [this, s, &last_spawn] {
      for (size_t i = 0; i < spawn_log_.size(); ++i) {
        const SpawnRecord& rec = spawn_log_[i];
        if (rec.board != s->index) {
          continue;
        }
        AppRuntime& app = apps_[static_cast<size_t>(rec.app_index)];
        AppOptions opts = app.spec.options;
        opts.iterations = rec.iterations;
        auto stop = std::make_shared<bool>(false);
        opts.stop = stop;
        AppHandle handle = app.spec.factory(*s->kernel, rec.label, opts);
        if (last_spawn[static_cast<size_t>(rec.app_index)] ==
            static_cast<int>(i)) {
          app.stop = std::move(stop);
          app.handle = handle;
        }
      }
    };
    if (!RestoreBoardShard(r, *s->board, *s->kernel, *s->manager, replay,
                           error)) {
      return false;
    }
  }

  // Draining apps had their cooperative stop flag raised before the
  // checkpoint; the replayed tasks get fresh flags, so re-raise them.
  for (AppRuntime& app : apps_) {
    if (app.draining && app.stop != nullptr) {
      *app.stop = true;
    }
  }

  if (!r.AtEnd()) {
    return fail("checkpoint has trailing bytes after the last shard");
  }
  return true;
}

std::unique_ptr<FleetCoordinator> FleetCoordinator::RestoreFromCheckpoint(
    FleetScenario scenario, int threads, const std::string& path,
    std::string* error) {
  SnapshotReader r;
  if (!r.OpenFile(path)) {
    *error = r.error();
    return nullptr;
  }
  std::unique_ptr<FleetCoordinator> coord(
      new FleetCoordinator(std::move(scenario), threads, RestoreTag{}));
  if (!coord->LoadCheckpoint(r, error)) {
    return nullptr;
  }
  coord->resumed_ = true;
  return coord;
}

FleetStats FleetCoordinator::Aggregate() const {
  FleetStats stats;
  stats.boards.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    FleetBoardStats& b = stats.boards[i];
    b.failed = shard.failed;
    b.ran_until = shard.now;
    b.iterations = board_iterations_[i];
    b.events_fired = shard.kernel->sim().total_fired();
    for (size_t c = 0; c < kNumHwComponents; ++c) {
      const HwComponent hw = static_cast<HwComponent>(c);
      b.rail_energy += shard.board->RailFor(hw).EnergyOver(0, shard.now);
      const DomainStats& d = shard.kernel->domain(hw).domain_stats();
      b.balloons += d.balloons;
      b.balloons_aborted += d.aborted;
    }
  }
  for (const MigrationRecord& m : migrations_) {
    ++stats.boards[static_cast<size_t>(m.from)].migrations_out;
    ++stats.boards[static_cast<size_t>(m.to)].migrations_in;
  }
  stats.migrations = migrations_;

  stats.apps.reserve(apps_.size());
  for (const AppRuntime& app : apps_) {
    FleetAppOutcome out;
    out.name = app.spec.name;
    out.hops = app.hops;
    out.final_board = app.board;
    out.finished = app.finished;
    out.lost = app.lost;
    out.iterations = app.iterations_prev;
    out.billed_energy = app.ever_sandboxed ? app.billed : -1.0;
    stats.apps.push_back(std::move(out));
  }
  return stats;
}

}  // namespace psbox
