// App-defined power events (§8.2 "Software support").
//
// The paper proposes wrapping the psbox native interface under mature sensor
// APIs: apps subscribe to a "power" sensor and register callbacks for events
// like "high power", "frequent power spikes" or "power keeps increasing",
// with the predicates continuously evaluated over power samples by the OS or
// a sensor hub. PowerEventMonitor implements that layer over a psbox's
// virtual power meter: it periodically drains new samples and runs streaming
// predicate evaluators, firing callbacks as events are detected.

#ifndef SRC_PSBOX_POWER_EVENTS_H_
#define SRC_PSBOX_POWER_EVENTS_H_

#include <deque>
#include <functional>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/psbox/psbox_manager.h"

namespace psbox {

enum class PowerEventKind : uint8_t {
  // Power stayed above |threshold| for at least |min_duration|.
  kHighPower,
  // At least |spike_count| upward crossings of |threshold| within |window|.
  kFrequentSpikes,
  // Mean power rose across |rising_windows| consecutive evaluation periods.
  kRisingTrend,
};

struct PowerEventSpec {
  PowerEventKind kind = PowerEventKind::kHighPower;
  Watts threshold = 0.5;
  DurationNs min_duration = 10 * kMillisecond;  // kHighPower
  int spike_count = 3;                          // kFrequentSpikes
  DurationNs window = 100 * kMillisecond;       // kFrequentSpikes
  int rising_windows = 3;                       // kRisingTrend
};

struct PowerEvent {
  PowerEventKind kind;
  TimeNs when;
  // The triggering observation: sustained/mean power, or spike count.
  double value;
};

class PowerEventMonitor {
 public:
  using Callback = std::function<void(const PowerEvent&)>;

  // Evaluates predicates over |box|'s virtual power meter every
  // |eval_period| (the sensor-hub processing cadence).
  PowerEventMonitor(Kernel* kernel, PsboxManager* manager, int box,
                    DurationNs eval_period = 20 * kMillisecond);
  PowerEventMonitor(const PowerEventMonitor&) = delete;
  PowerEventMonitor& operator=(const PowerEventMonitor&) = delete;

  // Registers a predicate; returns a listener id for Unregister.
  int Register(const PowerEventSpec& spec, Callback callback);
  void Unregister(int id);

  // Stops the periodic evaluation entirely.
  void Stop();

  uint64_t events_fired() const { return events_fired_; }
  uint64_t samples_processed() const { return samples_processed_; }

 private:
  struct Listener {
    int id;
    PowerEventSpec spec;
    Callback callback;
    // kHighPower streaming state.
    TimeNs above_since = -1;
    bool excursion_reported = false;
    // kFrequentSpikes state.
    bool was_above = false;
    std::deque<TimeNs> spike_times;
    // kRisingTrend state.
    double last_mean = -1.0;
    int rises = 0;
  };

  void OnEvaluate();
  void Feed(Listener& listener, const std::vector<PowerSample>& samples,
            double window_mean, TimeNs window_end);

  Kernel* kernel_;
  PsboxManager* manager_;
  int box_;
  DurationNs eval_period_;
  TimeNs cursor_;
  std::vector<Listener> listeners_;
  int next_id_ = 1;
  bool stopped_ = false;
  uint64_t events_fired_ = 0;
  uint64_t samples_processed_ = 0;
};

}  // namespace psbox

#endif  // SRC_PSBOX_POWER_EVENTS_H_
