#include "src/psbox/psbox_manager.h"

#include <algorithm>
#include <map>

#include "src/base/check.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

PsboxManager::PsboxManager(Kernel* kernel)
    : kernel_(kernel), rng_(kernel->board().rng().Fork()) {
  kernel_->set_psbox_service(this);
  kernel_->set_balloon_observer(this);
}

PsboxManager::~PsboxManager() = default;

PowerSandbox& PsboxManager::sandbox(int box) {
  PSBOX_CHECK_GE(box, 0);
  PSBOX_CHECK_LT(static_cast<size_t>(box), boxes_.size());
  return *boxes_[static_cast<size_t>(box)];
}

const PowerSandbox& PsboxManager::sandbox(int box) const {
  PSBOX_CHECK_GE(box, 0);
  PSBOX_CHECK_LT(static_cast<size_t>(box), boxes_.size());
  return *boxes_[static_cast<size_t>(box)];
}

int PsboxManager::CreateBox(AppId app, const std::vector<HwComponent>& hw) {
  return CreateBoxInternal(app, hw, /*parent=*/-1, /*budget=*/0.0, /*claim=*/false);
}

int PsboxManager::CreateNestedBox(AppId app, const std::vector<HwComponent>& hw,
                                  int parent, Joules budget) {
  PSBOX_CHECK_GE(parent, 0);
  PSBOX_CHECK_LT(static_cast<size_t>(parent), boxes_.size());
  PSBOX_CHECK_GE(budget, 0.0);
  // The child's binding must be a subset of the tenant's: every balloon the
  // child is granted composes onto the ancestors, which requires them bound
  // to the same component.
  for (HwComponent component : hw) {
    PSBOX_CHECK(sandbox(parent).BoundTo(component));
  }
  return CreateBoxInternal(app, hw, static_cast<PsboxId>(parent), budget,
                           /*claim=*/true);
}

int PsboxManager::CreateBoxInternal(AppId app, const std::vector<HwComponent>& hw,
                                    PsboxId parent, Joules budget, bool claim) {
  PSBOX_CHECK(!hw.empty());
  const PsboxId id = static_cast<PsboxId>(boxes_.size());
  Joules granted = budget;
  if (claim && parent >= 0) {
    granted = sandbox(parent).ClaimChildBudget(budget);
  }
  boxes_.push_back(
      std::make_unique<PowerSandbox>(id, app, hw, kernel_->Now(), parent, granted));
  if (claim && parent >= 0) {
    boxes_.back()->set_budget_claimed(true);
  }
  for (HwComponent component : hw) {
    // Each bound resource domain does its one-time per-box setup (the CPU
    // domain creates the task group and DVFS context; direct-metered
    // domains bind nothing).
    kernel_->domain(component).BindBox(app, id);
  }
  // An evacuated app resumes billing from its transferred value.
  auto staged = staged_transfers_.find(app);
  if (staged != staged_transfers_.end()) {
    boxes_.back()->set_transferred_base(staged->second);
    staged_transfers_.erase(staged);
  }
  return id;
}

void PsboxManager::StageTransferredEnergy(AppId app, Joules energy) {
  // The app's box may already exist — spawn dispatches the behaviour's box
  // setup before the coordinator gets a chance to stage — in which case the
  // transfer applies to it directly. Otherwise it parks here until CreateBox.
  for (auto it = boxes_.rbegin(); it != boxes_.rend(); ++it) {
    if ((*it)->app() == app) {
      (*it)->set_transferred_base((*it)->transferred_base() + energy);
      return;
    }
  }
  staged_transfers_[app] += energy;
}

void PsboxManager::EnterBox(int box) {
  PowerSandbox& sb = sandbox(box);
  if (sb.inside()) {
    return;
  }
  // Re-entering a nested box re-claims its budget slice from the tenant
  // (clamped to what siblings left available in the meantime).
  if (sb.parent() >= 0 && !sb.budget_claimed()) {
    sb.set_budget(sandbox(sb.parent()).ClaimChildBudget(sb.budget()));
    sb.set_budget_claimed(true);
  }
  sb.set_inside(true);
  // Defer the kernel mode switch to the next scheduling point: EnterBox is
  // called from task context (the behaviour is mid-dispatch) and the group
  // move preempts the caller.
  kernel_->sim().ScheduleAfter(0, [this, box] { ApplyEnter(box); });
}

void PsboxManager::ApplyEnter(int box) {
  PowerSandbox& sb = sandbox(box);
  if (!sb.inside()) {
    return;  // left again before the switch applied
  }
  for (HwComponent hw : sb.hardware()) {
    kernel_->domain(hw).SetSandboxed(sb.app(), sb.id());
  }
}

void PsboxManager::LeaveBox(int box) {
  PowerSandbox& sb = sandbox(box);
  if (!sb.inside()) {
    return;
  }
  // A leaving child returns its budget slice to the tenant.
  if (sb.parent() >= 0 && sb.budget_claimed()) {
    sandbox(sb.parent()).ReleaseChildBudget(sb.budget());
    sb.set_budget_claimed(false);
  }
  sb.set_inside(false);
  kernel_->sim().ScheduleAfter(0, [this, box] { ApplyLeave(box); });
}

void PsboxManager::ApplyLeave(int box) {
  PowerSandbox& sb = sandbox(box);
  if (sb.inside()) {
    return;  // re-entered before the switch applied
  }
  for (HwComponent hw : sb.hardware()) {
    kernel_->domain(hw).ClearSandboxed(sb.app());
  }
}

Joules PsboxManager::ComponentEnergy(PowerSandbox& sb, HwComponent hw, TimeNs now) {
  return ComponentEnergyDetail(sb, hw, now).total();
}

PowerSandbox::EnergyDetail PsboxManager::ComponentEnergyDetail(PowerSandbox& sb,
                                                               HwComponent hw,
                                                               TimeNs now) {
  Board& board = kernel_->board();
  const ResourceDomain& domain = kernel_->domain(hw);
  if (domain.direct_metered()) {
    // §7 entanglement-free hardware: the domain attributes energy directly
    // (exact per-app surface energy for the display; safely-revealable
    // operating power for GPS) — no balloons, no DAQ rail, no estimation.
    // Energy behind the retention horizon sits in the box's banked base.
    PowerSandbox::EnergyDetail d;
    d.measured = sb.direct_energy_base(hw) +
                 domain.DirectEnergyOver(sb.app(), sb.direct_from(hw), now);
    d.measured_time = now - sb.meter_start();
    return d;
  }
  // DAQ-metered rails degrade to model-based estimation inside
  // meter-dropout fault windows.
  return sb.ObservedEnergyDetail(board.RailFor(hw), hw, now,
                                 &board.fault_injector());
}

Joules PsboxManager::ReadEnergy(int box) {
  PowerSandbox& sb = sandbox(box);
  Joules total = sb.transferred_base();
  for (HwComponent hw : sb.hardware()) {
    total += ComponentEnergy(sb, hw, kernel_->Now());
  }
  return total;
}

Joules PsboxManager::ReadEnergyFor(int box, HwComponent hw) {
  PowerSandbox& sb = sandbox(box);
  PSBOX_CHECK(sb.BoundTo(hw));
  return ComponentEnergy(sb, hw, kernel_->Now());
}

PowerSandbox::EnergyDetail PsboxManager::ReadEnergyDetail(int box) {
  PowerSandbox& sb = sandbox(box);
  PowerSandbox::EnergyDetail total;
  // Transferred energy was measured on the failed board's rails.
  total.measured = sb.transferred_base();
  for (HwComponent hw : sb.hardware()) {
    const PowerSandbox::EnergyDetail d =
        ComponentEnergyDetail(sb, hw, kernel_->Now());
    total.measured += d.measured;
    total.estimated += d.estimated;
    total.measured_time += d.measured_time;
    total.estimated_time += d.estimated_time;
  }
  return total;
}

double PsboxManager::EstimatedEnergyFraction(int box) {
  const PowerSandbox::EnergyDetail d = ReadEnergyDetail(box);
  const Joules total = d.total();
  return total > 0.0 ? d.estimated / total : 0.0;
}

void PsboxManager::ResetEnergy(int box) { sandbox(box).ResetMeter(kernel_->Now()); }

size_t PsboxManager::Sample(int box, std::vector<PowerSample>* buf,
                            size_t max_samples) {
  PowerSandbox& sb = sandbox(box);
  if (!sb.inside()) {
    return 0;  // psbox is the only way to observe power — and only inside
  }
  PSBOX_CHECK(buf != nullptr);
  const PowerMeterConfig& meter = kernel_->board().config().meter;
  const TimeNs now = kernel_->Now();
  const TimeNs t0 = sb.sample_cursor();
  const DurationNs period = meter.sample_period;
  // One uniform grid for every bound component: n points t0 + i*period
  // covering [t0, now), hard-capped at the caller's budget. The cursor
  // advances by whole periods, so the virtual meter stays phase-aligned on
  // the DAQ grid across drains (mid-period drains included) and a capped
  // drain never returns more than |max_samples|.
  size_t n = 0;
  if (now > t0) {
    n = static_cast<size_t>((now - t0 + period - 1) / period);
    n = std::min(n, max_samples);
  }
  if (n == 0) {
    return 0;
  }
  sample_scratch_.clear();
  sample_scratch_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sample_scratch_.push_back({t0 + static_cast<DurationNs>(i) * period, 0.0, false});
  }
  // Aggregate across bound components by accumulating each one onto the
  // shared grid (a multi-rail virtual meter), component-major so the
  // Gaussian noise draw order is stable.
  for (HwComponent hw : sb.hardware()) {
    const ResourceDomain& domain = kernel_->domain(hw);
    if (domain.direct_metered()) {
      // Entanglement-free hardware (§7): sample the directly-attributable
      // series instead of balloon-gated rail power.
      for (PowerSample& s : sample_scratch_) {
        const Watts truth = domain.DirectPowerAt(sb.app(), s.timestamp);
        s.watts += std::max(0.0, truth + rng_.Gaussian(0.0, meter.noise_stddev));
      }
    } else {
      sb.AccumulateObservedSamples(kernel_->board().RailFor(hw), hw,
                                   meter.noise_stddev, &rng_,
                                   &kernel_->board().fault_injector(),
                                   &sample_scratch_);
    }
  }
  sb.set_sample_cursor(t0 + static_cast<DurationNs>(n) * period);
  buf->insert(buf->end(), sample_scratch_.begin(), sample_scratch_.end());
  return n;
}

bool PsboxManager::InBox(int box) const { return sandbox(box).inside(); }

TimeNs PsboxManager::TelemetryFloor(TimeNs desired) {
  // Lowering the horizon for one constraint can expose an earlier straddling
  // interval on another box or component, so iterate the per-box floors to a
  // fixpoint (each strict drop lands on some interval begin — terminates).
  TimeNs h = desired;
  while (true) {
    TimeNs next = h;
    for (const auto& boxp : boxes_) {
      for (HwComponent hw : boxp->hardware()) {
        if (kernel_->domain(hw).direct_metered()) {
          continue;  // banked via BankDirectEnergy; no ownership windows
        }
        next = std::min(next, boxp->RetainFloor(hw, h));
      }
    }
    if (next == h) {
      return h;
    }
    h = next;
  }
}

void PsboxManager::TrimTelemetry(TimeNs horizon) {
  Board& board = kernel_->board();
  const DurationNs period = board.config().meter.sample_period;
  for (const auto& boxp : boxes_) {
    PowerSandbox& sb = *boxp;
    for (HwComponent hw : sb.hardware()) {
      const ResourceDomain& domain = kernel_->domain(hw);
      if (domain.direct_metered()) {
        // Bank the directly-attributed energy behind the horizon and advance
        // the integration start, so the domain's trace can be trimmed.
        if (horizon > sb.direct_from(hw)) {
          sb.BankDirectEnergy(
              hw, domain.DirectEnergyOver(sb.app(), sb.direct_from(hw), horizon),
              horizon);
        }
      } else {
        sb.TrimOwned(hw, horizon, board.RailFor(hw), &board.fault_injector());
      }
    }
    sb.DropSampleBacklogBefore(horizon, period);
  }
}

void PsboxManager::SaveState(SnapshotWriter& w) const {
  w.Section("psbox");
  rng_.SaveState(w);
  {
    const std::map<AppId, Joules> staged(staged_transfers_.begin(),
                                         staged_transfers_.end());
    w.U64(staged.size());
    for (const auto& [app, energy] : staged) {
      w.I64(app);
      w.F64(energy);
    }
  }
  w.U64(boxes_.size());
  for (const auto& bp : boxes_) {
    w.I64(bp->app());
    w.U64(bp->hardware().size());
    for (HwComponent hw : bp->hardware()) {
      w.U8(static_cast<uint8_t>(hw));
    }
    // v3: creation parameters for the hierarchy (needed to rebuild the box
    // before its state record overwrites the mutable ledger).
    w.I64(bp->parent());
    w.F64(bp->budget());
    bp->SaveState(w);
  }
}

void PsboxManager::RestoreState(SnapshotReader& r) {
  if (!r.Section("psbox")) {
    return;
  }
  rng_.RestoreState(r);
  staged_transfers_.clear();
  const size_t num_staged = r.Count(12);
  for (size_t i = 0; i < num_staged && r.ok(); ++i) {
    const AppId app = static_cast<AppId>(r.I64());
    staged_transfers_[app] = r.F64();
  }
  if (!boxes_.empty()) {
    r.Fail("sandbox restore requires a freshly constructed manager");
    return;
  }
  const size_t num_boxes = r.Count(16);
  for (size_t i = 0; i < num_boxes && r.ok(); ++i) {
    const AppId app = static_cast<AppId>(r.I64());
    const size_t nhw = r.Count(1);
    std::vector<HwComponent> hw;
    hw.reserve(nhw);
    for (size_t j = 0; j < nhw && r.ok(); ++j) {
      hw.push_back(static_cast<HwComponent>(r.U8()));
    }
    if (!r.ok()) {
      return;
    }
    if (hw.empty()) {
      r.Fail("sandbox with no bound hardware in snapshot");
      return;
    }
    const PsboxId parent = static_cast<PsboxId>(r.I64());
    const Joules budget = r.F64();
    if (parent >= static_cast<PsboxId>(i)) {
      r.Fail("sandbox parent must precede child in snapshot");
      return;
    }
    if (!r.ok()) {
      return;
    }
    // claim=false: the parent's children_budget ledger was snapshotted after
    // the original claims and is restored verbatim below — claiming again
    // during replay would double-count.
    const int box = CreateBoxInternal(app, hw, parent, budget, /*claim=*/false);
    boxes_[static_cast<size_t>(box)]->RestoreState(r);
  }
}

void PsboxManager::OnBalloonIn(PsboxId box, HwComponent hw, TimeNs when) {
  // Compose the edge up the hierarchy: the owner and every ancestor tenant
  // open (or deepen) an ownership interval. CreateNestedBox enforces that a
  // child's binding is a subset of its parent's, so every ancestor is bound.
  for (PsboxId b = box; b >= 0; b = sandbox(b).parent()) {
    sandbox(b).OnOwnershipStart(hw, when);
  }
}

void PsboxManager::OnBalloonOut(PsboxId box, HwComponent hw, TimeNs when) {
  for (PsboxId b = box; b >= 0; b = sandbox(b).parent()) {
    sandbox(b).OnOwnershipEnd(hw, when);
  }
}

size_t PsboxManager::AccountingViolations(double bound) {
  const TimeNs now = kernel_->Now();
  // Sum each tenant's live children over balloon-metered components (the
  // direct-metered §7 components never compose — no balloons), then check
  // the one-sided bound: a tenant's composed meter covers every child
  // balloon, so children may only exceed it by the protocol slack.
  std::vector<Joules> child_sum(boxes_.size(), 0.0);
  std::vector<bool> is_tenant(boxes_.size(), false);
  for (const auto& bp : boxes_) {
    PowerSandbox& sb = *bp;
    if (sb.parent() < 0) {
      continue;
    }
    is_tenant[static_cast<size_t>(sb.parent())] = true;
    // Transferred bases are prior-board history (audited on the board that
    // served them); this audit covers what composed HERE, on both sides.
    Joules e = 0.0;
    for (HwComponent hw : sb.hardware()) {
      if (kernel_->domain(hw).direct_metered()) {
        continue;
      }
      e += ComponentEnergy(sb, hw, now);
    }
    child_sum[static_cast<size_t>(sb.parent())] += e;
  }
  size_t violations = 0;
  for (size_t i = 0; i < boxes_.size(); ++i) {
    if (!is_tenant[i]) {
      continue;
    }
    PowerSandbox& tenant = *boxes_[i];
    Joules tenant_total = 0.0;
    for (HwComponent hw : tenant.hardware()) {
      if (kernel_->domain(hw).direct_metered()) {
        continue;
      }
      tenant_total += ComponentEnergy(tenant, hw, now);
    }
    if (child_sum[i] > tenant_total * (1.0 + bound) + 1e-9) {
      ++violations;
    }
  }
  return violations;
}

}  // namespace psbox
