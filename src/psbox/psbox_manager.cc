#include "src/psbox/psbox_manager.h"

#include <algorithm>

#include "src/base/check.h"

namespace psbox {

PsboxManager::PsboxManager(Kernel* kernel)
    : kernel_(kernel), rng_(kernel->board().rng().Fork()) {
  kernel_->set_psbox_service(this);
  kernel_->set_balloon_observer(this);
}

PsboxManager::~PsboxManager() = default;

PowerSandbox& PsboxManager::sandbox(int box) {
  PSBOX_CHECK_GE(box, 0);
  PSBOX_CHECK_LT(static_cast<size_t>(box), boxes_.size());
  return *boxes_[static_cast<size_t>(box)];
}

const PowerSandbox& PsboxManager::sandbox(int box) const {
  PSBOX_CHECK_GE(box, 0);
  PSBOX_CHECK_LT(static_cast<size_t>(box), boxes_.size());
  return *boxes_[static_cast<size_t>(box)];
}

int PsboxManager::CreateBox(AppId app, const std::vector<HwComponent>& hw) {
  PSBOX_CHECK(!hw.empty());
  const PsboxId id = static_cast<PsboxId>(boxes_.size());
  boxes_.push_back(std::make_unique<PowerSandbox>(id, app, hw, kernel_->Now()));
  for (HwComponent component : hw) {
    // Each bound resource domain does its one-time per-box setup (the CPU
    // domain creates the task group and DVFS context; direct-metered
    // domains bind nothing).
    kernel_->domain(component).BindBox(app, id);
  }
  return id;
}

void PsboxManager::EnterBox(int box) {
  PowerSandbox& sb = sandbox(box);
  if (sb.inside()) {
    return;
  }
  sb.set_inside(true);
  // Defer the kernel mode switch to the next scheduling point: EnterBox is
  // called from task context (the behaviour is mid-dispatch) and the group
  // move preempts the caller.
  kernel_->sim().ScheduleAfter(0, [this, box] { ApplyEnter(box); });
}

void PsboxManager::ApplyEnter(int box) {
  PowerSandbox& sb = sandbox(box);
  if (!sb.inside()) {
    return;  // left again before the switch applied
  }
  for (HwComponent hw : sb.hardware()) {
    kernel_->domain(hw).SetSandboxed(sb.app(), sb.id());
  }
}

void PsboxManager::LeaveBox(int box) {
  PowerSandbox& sb = sandbox(box);
  if (!sb.inside()) {
    return;
  }
  sb.set_inside(false);
  kernel_->sim().ScheduleAfter(0, [this, box] { ApplyLeave(box); });
}

void PsboxManager::ApplyLeave(int box) {
  PowerSandbox& sb = sandbox(box);
  if (sb.inside()) {
    return;  // re-entered before the switch applied
  }
  for (HwComponent hw : sb.hardware()) {
    kernel_->domain(hw).ClearSandboxed(sb.app());
  }
}

Joules PsboxManager::ComponentEnergy(PowerSandbox& sb, HwComponent hw, TimeNs now) {
  return ComponentEnergyDetail(sb, hw, now).total();
}

PowerSandbox::EnergyDetail PsboxManager::ComponentEnergyDetail(PowerSandbox& sb,
                                                               HwComponent hw,
                                                               TimeNs now) {
  Board& board = kernel_->board();
  const ResourceDomain& domain = kernel_->domain(hw);
  if (domain.direct_metered()) {
    // §7 entanglement-free hardware: the domain attributes energy directly
    // (exact per-app surface energy for the display; safely-revealable
    // operating power for GPS) — no balloons, no DAQ rail, no estimation.
    PowerSandbox::EnergyDetail d;
    d.measured = domain.DirectEnergyOver(sb.app(), sb.meter_start(), now);
    d.measured_time = now - sb.meter_start();
    return d;
  }
  // DAQ-metered rails degrade to model-based estimation inside
  // meter-dropout fault windows.
  return sb.ObservedEnergyDetail(board.RailFor(hw), hw, now,
                                 &board.fault_injector());
}

Joules PsboxManager::ReadEnergy(int box) {
  PowerSandbox& sb = sandbox(box);
  Joules total = 0.0;
  for (HwComponent hw : sb.hardware()) {
    total += ComponentEnergy(sb, hw, kernel_->Now());
  }
  return total;
}

Joules PsboxManager::ReadEnergyFor(int box, HwComponent hw) {
  PowerSandbox& sb = sandbox(box);
  PSBOX_CHECK(sb.BoundTo(hw));
  return ComponentEnergy(sb, hw, kernel_->Now());
}

PowerSandbox::EnergyDetail PsboxManager::ReadEnergyDetail(int box) {
  PowerSandbox& sb = sandbox(box);
  PowerSandbox::EnergyDetail total;
  for (HwComponent hw : sb.hardware()) {
    const PowerSandbox::EnergyDetail d =
        ComponentEnergyDetail(sb, hw, kernel_->Now());
    total.measured += d.measured;
    total.estimated += d.estimated;
    total.measured_time += d.measured_time;
    total.estimated_time += d.estimated_time;
  }
  return total;
}

double PsboxManager::EstimatedEnergyFraction(int box) {
  const PowerSandbox::EnergyDetail d = ReadEnergyDetail(box);
  const Joules total = d.total();
  return total > 0.0 ? d.estimated / total : 0.0;
}

void PsboxManager::ResetEnergy(int box) { sandbox(box).ResetMeter(kernel_->Now()); }

size_t PsboxManager::Sample(int box, std::vector<PowerSample>* buf,
                            size_t max_samples) {
  PowerSandbox& sb = sandbox(box);
  if (!sb.inside()) {
    return 0;  // psbox is the only way to observe power — and only inside
  }
  PSBOX_CHECK(buf != nullptr);
  const PowerMeterConfig& meter = kernel_->board().config().meter;
  const TimeNs now = kernel_->Now();
  // Aggregate across bound components by summing per-component samples at
  // the same timestamps (a multi-rail virtual meter).
  const TimeNs t0 = sb.sample_cursor();
  TimeNs t1 = now;
  const auto available = static_cast<size_t>(
      std::max<int64_t>(0, (t1 - t0) / meter.sample_period));
  if (available > max_samples) {
    t1 = t0 + static_cast<DurationNs>(max_samples) * meter.sample_period;
  }
  std::vector<PowerSample> sum;
  for (HwComponent hw : sb.hardware()) {
    std::vector<PowerSample> samples;
    const ResourceDomain& domain = kernel_->domain(hw);
    if (domain.direct_metered()) {
      // Entanglement-free hardware (§7): sample the directly-attributable
      // series instead of balloon-gated rail power.
      samples.reserve(static_cast<size_t>((t1 - t0) / meter.sample_period) + 1);
      for (TimeNs t = t0; t < t1; t += meter.sample_period) {
        const Watts truth = domain.DirectPowerAt(sb.app(), t);
        samples.push_back(
            {t, std::max(0.0, truth + rng_.Gaussian(0.0, meter.noise_stddev))});
      }
    } else {
      samples = sb.ObservedSamples(kernel_->board().RailFor(hw), hw, t0, t1,
                                   meter.sample_period, meter.noise_stddev, &rng_,
                                   &kernel_->board().fault_injector());
    }
    if (sum.empty()) {
      sum = std::move(samples);
    } else {
      for (size_t i = 0; i < sum.size() && i < samples.size(); ++i) {
        sum[i].watts += samples[i].watts;
        sum[i].estimated = sum[i].estimated || samples[i].estimated;
      }
    }
  }
  sb.set_sample_cursor(t1);
  buf->insert(buf->end(), sum.begin(), sum.end());
  return sum.size();
}

bool PsboxManager::InBox(int box) const { return sandbox(box).inside(); }

void PsboxManager::OnBalloonIn(PsboxId box, HwComponent hw, TimeNs when) {
  sandbox(box).OnOwnershipStart(hw, when);
}

void PsboxManager::OnBalloonOut(PsboxId box, HwComponent hw, TimeNs when) {
  sandbox(box).OnOwnershipEnd(hw, when);
}

}  // namespace psbox
