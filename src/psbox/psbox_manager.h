// PsboxManager: the psbox OS principal's control plane.
//
// Implements the kernel's PsboxService (the psbox_* syscall surface of
// Listing 1) and receives balloon-edge notifications as the kernel's
// external BalloonObserver. It owns every PowerSandbox, arms/disarms the
// kernel extensions when apps enter/leave, and serves virtual-power-meter
// reads.

#ifndef SRC_PSBOX_PSBOX_MANAGER_H_
#define SRC_PSBOX_PSBOX_MANAGER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/rng.h"
#include "src/kernel/balloon_observer.h"
#include "src/kernel/kernel.h"
#include "src/kernel/psbox_service.h"
#include "src/psbox/power_sandbox.h"

namespace psbox {

class PsboxManager : public PsboxService, public BalloonObserver {
 public:
  explicit PsboxManager(Kernel* kernel);
  ~PsboxManager() override;
  PsboxManager(const PsboxManager&) = delete;
  PsboxManager& operator=(const PsboxManager&) = delete;

  // PsboxService:
  int CreateBox(AppId app, const std::vector<HwComponent>& hw) override;
  // Nested (tenant) sandbox: |hw| must be a subset of the parent's binding;
  // |budget| is claimed from the parent's slice (clamped to what remains
  // when the parent is budgeted). LeaveBox returns the claim; EnterBox
  // re-claims it.
  int CreateNestedBox(AppId app, const std::vector<HwComponent>& hw, int parent,
                      Joules budget) override;
  void EnterBox(int box) override;
  void LeaveBox(int box) override;
  Joules ReadEnergy(int box) override;
  void ResetEnergy(int box) override;
  size_t Sample(int box, std::vector<PowerSample>* buf, size_t max_samples) override;
  bool InBox(int box) const override;
  // Telemetry retention: the sandboxes' exact-accounting floor (fixpoint
  // over open balloons and straddling ownership intervals), and the fold of
  // trimmed history into per-box energy bases + sample-backlog drop.
  TimeNs TelemetryFloor(TimeNs desired) override;
  void TrimTelemetry(TimeNs horizon) override;

  // BalloonObserver (forwarded by the kernel after its own context switch).
  // A granted balloon composes up the sandbox hierarchy: the owning box and
  // every ancestor record the edge, so a child's served energy bills its own
  // virtual meter and the enclosing tenant's.
  void OnBalloonIn(PsboxId box, HwComponent hw, TimeNs when) override;
  void OnBalloonOut(PsboxId box, HwComponent hw, TimeNs when) override;

  // Hierarchy audit: number of tenant boxes whose live children's summed
  // balloon-metered energy exceeds the tenant's own composed meter by more
  // than |bound| (the paper's ≤10% accounting bound, applied per level).
  // 0 on a healthy board at every instant.
  size_t AccountingViolations(double bound);

  // Per-component observed energy (benches/tests need the split).
  Joules ReadEnergyFor(int box, HwComponent hw);

  // Virtual-meter energy split into DAQ-measured and model-estimated parts,
  // summed over the box's bound components. The estimated share is the
  // meter-dropout degradation; ReadEnergy() reports the same total.
  PowerSandbox::EnergyDetail ReadEnergyDetail(int box);
  // Fraction of the reported energy that came from estimation (0 when the
  // meter never glitched). The accounting error bound scales with this.
  double EstimatedEnergyFraction(int box);

  PowerSandbox& sandbox(int box);
  const PowerSandbox& sandbox(int box) const;
  size_t box_count() const { return boxes_.size(); }

  // --- crash evacuation (state transfer) ----------------------------------
  // Banks energy already billed to |app| on a failed board; the app's next
  // CreateBox on this board seeds the sandbox's transferred base with it, so
  // meter reads continue from the evacuated value instead of zero.
  void StageTransferredEnergy(AppId app, Joules energy);

  // --- checkpoint/restore -------------------------------------------------
  // SaveState persists the sampling RNG, staged transfers and every sandbox
  // (creation parameters + meter state). RestoreState replays CreateBox for
  // each saved sandbox — re-running the per-domain BindBox setup — and then
  // overwrites the sandbox state; it requires an empty manager (fresh boards
  // only).
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  // Shared creation path. |claim| gates the budget claim against the parent:
  // live creation claims; snapshot replay must not (the parent's ledger is
  // restored verbatim from the snapshot after the children are created).
  int CreateBoxInternal(AppId app, const std::vector<HwComponent>& hw,
                        PsboxId parent, Joules budget, bool claim);
  void ApplyEnter(int box);
  void ApplyLeave(int box);
  // Per-component observed energy over [meter_start, now); dispatches on the
  // component kind (balloon-metered vs. entanglement-free §7 hardware).
  Joules ComponentEnergy(PowerSandbox& sb, HwComponent hw, TimeNs now);
  PowerSandbox::EnergyDetail ComponentEnergyDetail(PowerSandbox& sb,
                                                   HwComponent hw, TimeNs now);

  Kernel* kernel_;
  Rng rng_;
  std::vector<std::unique_ptr<PowerSandbox>> boxes_;
  // Evacuated energy waiting for its app's next CreateBox.
  std::unordered_map<AppId, Joules> staged_transfers_;
  // Reusable merge buffer for Sample(): one grid of timestamps, every bound
  // component accumulates onto it in a single pass (no per-call per-component
  // vector churn on the 100 kHz hot path).
  std::vector<PowerSample> sample_scratch_;
};

}  // namespace psbox

#endif  // SRC_PSBOX_PSBOX_MANAGER_H_
