#include "src/psbox/power_events.h"

#include <algorithm>

#include "src/base/check.h"

namespace psbox {

PowerEventMonitor::PowerEventMonitor(Kernel* kernel, PsboxManager* manager, int box,
                                     DurationNs eval_period)
    : kernel_(kernel), manager_(manager), box_(box), eval_period_(eval_period),
      cursor_(kernel->Now()) {
  PSBOX_CHECK_GT(eval_period_, 0);
  kernel_->sim().ScheduleAfter(eval_period_, [this] { OnEvaluate(); });
}

int PowerEventMonitor::Register(const PowerEventSpec& spec, Callback callback) {
  Listener listener;
  listener.id = next_id_++;
  listener.spec = spec;
  listener.callback = std::move(callback);
  listeners_.push_back(std::move(listener));
  return listeners_.back().id;
}

void PowerEventMonitor::Unregister(int id) {
  listeners_.erase(std::remove_if(listeners_.begin(), listeners_.end(),
                                  [id](const Listener& l) { return l.id == id; }),
                   listeners_.end());
}

void PowerEventMonitor::Stop() { stopped_ = true; }

void PowerEventMonitor::OnEvaluate() {
  if (stopped_) {
    return;
  }
  const TimeNs now = kernel_->Now();
  const PowerMeterConfig& meter = kernel_->board().config().meter;
  PowerSandbox& sb = manager_->sandbox(box_);
  // Pull the new samples since the last evaluation from the virtual power
  // meter (the monitor evaluates on the OS/sensor-hub side, so it reads the
  // sandbox's meter directly rather than through psbox_sample()).
  std::vector<PowerSample> samples;
  for (HwComponent hw : sb.hardware()) {
    auto part = sb.ObservedSamples(kernel_->board().RailFor(hw), hw, cursor_, now,
                                   meter.sample_period, 0.0, nullptr);
    if (samples.empty()) {
      samples = std::move(part);
    } else {
      for (size_t i = 0; i < samples.size() && i < part.size(); ++i) {
        samples[i].watts += part[i].watts;
      }
    }
  }
  cursor_ = now;
  samples_processed_ += samples.size();

  double window_mean = 0.0;
  for (const PowerSample& s : samples) {
    window_mean += s.watts;
  }
  if (!samples.empty()) {
    window_mean /= static_cast<double>(samples.size());
  }
  for (Listener& listener : listeners_) {
    Feed(listener, samples, window_mean, now);
  }
  kernel_->sim().ScheduleAfter(eval_period_, [this] { OnEvaluate(); });
}

void PowerEventMonitor::Feed(Listener& listener,
                             const std::vector<PowerSample>& samples,
                             double window_mean, TimeNs window_end) {
  const PowerEventSpec& spec = listener.spec;
  auto fire = [&](TimeNs when, double value) {
    ++events_fired_;
    if (listener.callback) {
      listener.callback(PowerEvent{spec.kind, when, value});
    }
  };
  switch (spec.kind) {
    case PowerEventKind::kHighPower: {
      for (const PowerSample& s : samples) {
        if (s.watts >= spec.threshold) {
          if (listener.above_since < 0) {
            listener.above_since = s.timestamp;
          }
          if (!listener.excursion_reported &&
              s.timestamp - listener.above_since >= spec.min_duration) {
            listener.excursion_reported = true;
            fire(s.timestamp, s.watts);
          }
        } else {
          listener.above_since = -1;
          listener.excursion_reported = false;
        }
      }
      break;
    }
    case PowerEventKind::kFrequentSpikes: {
      for (const PowerSample& s : samples) {
        const bool above = s.watts >= spec.threshold;
        if (above && !listener.was_above) {
          listener.spike_times.push_back(s.timestamp);
          while (!listener.spike_times.empty() &&
                 s.timestamp - listener.spike_times.front() > spec.window) {
            listener.spike_times.pop_front();
          }
          if (static_cast<int>(listener.spike_times.size()) >= spec.spike_count) {
            fire(s.timestamp, static_cast<double>(listener.spike_times.size()));
            listener.spike_times.clear();
          }
        }
        listener.was_above = above;
      }
      break;
    }
    case PowerEventKind::kRisingTrend: {
      if (samples.empty()) {
        break;
      }
      if (listener.last_mean >= 0.0 && window_mean > listener.last_mean * 1.01) {
        ++listener.rises;
        if (listener.rises >= spec.rising_windows) {
          fire(window_end, window_mean);
          listener.rises = 0;
        }
      } else {
        listener.rises = 0;
      }
      listener.last_mean = window_mean;
      break;
    }
  }
}

}  // namespace psbox
