#include "src/psbox/psbox_api.h"

#include "src/base/check.h"
#include "src/kernel/kernel.h"
#include "src/kernel/psbox_service.h"

namespace psbox {

namespace {
PsboxService& ServiceOf(TaskEnv& env) {
  PSBOX_CHECK(env.kernel != nullptr);
  PsboxService* service = env.kernel->psbox_service();
  PSBOX_CHECK(service != nullptr);
  return *service;
}
}  // namespace

int psbox_create(TaskEnv& env, const std::vector<HwComponent>& hw) {
  return ServiceOf(env).CreateBox(env.task->app(), hw);
}

int psbox_create_in(TaskEnv& env, const std::vector<HwComponent>& hw, int parent,
                    Joules budget) {
  return ServiceOf(env).CreateNestedBox(env.task->app(), hw, parent, budget);
}

void psbox_enter(TaskEnv& env, int box) { ServiceOf(env).EnterBox(box); }

void psbox_leave(TaskEnv& env, int box) { ServiceOf(env).LeaveBox(box); }

Joules psbox_read(TaskEnv& env, int box) { return ServiceOf(env).ReadEnergy(box); }

void psbox_reset(TaskEnv& env, int box) { ServiceOf(env).ResetEnergy(box); }

size_t psbox_sample(TaskEnv& env, int box, std::vector<PowerSample>* buf,
                    size_t num_samples) {
  return ServiceOf(env).Sample(box, buf, num_samples);
}

bool psbox_inside(TaskEnv& env, int box) { return ServiceOf(env).InBox(box); }

TimeNs psbox_gettime(TaskEnv& env) { return env.kernel->Now(); }

}  // namespace psbox
