// PowerSandbox: one psbox instance and its virtual power meter.
//
// A psbox encloses one app and is bound to a set of hardware components
// (§3). Whenever the kernel grants the psbox a resource balloon on a bound
// component, the ownership interval is recorded here; the virtual power
// meter then exposes:
//   * inside an owned interval  — the component's true rail power (the app
//     plus its vertical environment; power states already virtualised by
//     the kernel, so no residue from other apps);
//   * outside owned intervals   — the component's idle power (the only
//     possible contribution of concurrent apps, §3; also what off/suspended
//     periods are reported as, closing that side channel, §4.1).
//
// Retention: on long runs the ownership history and the rail traces behind
// it are trimmed to a bounded horizon (Kernel::TrimTelemetry). Before an
// owned interval is dropped, its exact energy contribution — measured and
// dropout-estimated spans separately — is folded into per-component base
// accumulators, so psbox_read stays exact (and bit-identical to the
// untrimmed computation) while memory stays bounded.

#ifndef SRC_PSBOX_POWER_SANDBOX_H_
#define SRC_PSBOX_POWER_SANDBOX_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/base/interval_set.h"
#include "src/base/rng.h"
#include "src/base/types.h"
#include "src/hw/power_meter.h"
#include "src/hw/power_rail.h"
#include "src/sim/fault_injector.h"

namespace psbox {

class SnapshotReader;
class SnapshotWriter;

class PowerSandbox {
 public:
  PowerSandbox(PsboxId id, AppId app, std::vector<HwComponent> hw, TimeNs created,
               PsboxId parent = -1, Joules budget = 0.0);

  PsboxId id() const { return id_; }
  AppId app() const { return app_; }
  const std::vector<HwComponent>& hardware() const { return hw_; }
  bool BoundTo(HwComponent hw) const;

  bool inside() const { return inside_; }
  void set_inside(bool inside) { inside_ = inside; }

  // --- hierarchy (nested / tenant sandboxes) ------------------------------
  // A box created with a parent is nested: its hardware binding is a subset
  // of the parent's, its budget subdivides the parent's, and every balloon
  // it is granted is composed onto all its ancestors' virtual meters (the
  // child's served energy bills its own window AND the enclosing tenant's).
  PsboxId parent() const { return parent_; }
  // Energy budget carved out of the parent at creation (0 = unbudgeted).
  Joules budget() const { return budget_; }
  // Re-claiming after a leave may clamp tighter (siblings claimed meanwhile).
  void set_budget(Joules b) { budget_ = b; }
  // Sum of the budgets currently claimed by live (not-yet-left) children.
  Joules children_budget() const { return children_budget_; }
  // Budget subdivision ledger: a child claims its slice from the parent at
  // creation and returns it when its app leaves the box. With an unbudgeted
  // parent (budget 0) claims are unconstrained; otherwise the grant clamps
  // to what remains, so the subdivision invariant
  //     sum(live children budgets) <= parent budget
  // holds at every level by construction.
  Joules ClaimChildBudget(Joules requested);
  void ReleaseChildBudget(Joules granted);
  bool budget_claimed() const { return budget_claimed_; }
  void set_budget_claimed(bool claimed) { budget_claimed_ = claimed; }

  // Kernel balloon-edge notifications (via the manager, which walks the
  // ancestor chain). Ownership composes through the hierarchy as a nesting
  // counter per component: the interval opens on the 0->1 transition and
  // closes on 1->0, so a box's own balloon and a descendant's back-to-back
  // balloons merge into one composed interval instead of tripping the
  // single-owner invariant.
  void OnOwnershipStart(HwComponent hw, TimeNs when);
  void OnOwnershipEnd(HwComponent hw, TimeNs when);

  // Energy observed by the virtual power meter for |hw| over
  // [meter_start, now): rail energy inside owned intervals + idle power
  // elsewhere.
  Joules ObservedEnergy(const PowerRail& rail, HwComponent hw, TimeNs now) const;

  // Virtual-meter energy split into DAQ-measured and model-estimated parts.
  // Owned spans falling inside meter-dropout fault windows cannot be
  // measured; they are estimated as the average power measured elsewhere in
  // the window (the rail's idle draw when the whole window was dark), so the
  // reported energy degrades gracefully instead of silently under-counting.
  struct EnergyDetail {
    Joules measured = 0.0;
    Joules estimated = 0.0;
    DurationNs measured_time = 0;
    DurationNs estimated_time = 0;
    Joules total() const { return measured + estimated; }
  };
  EnergyDetail ObservedEnergyDetail(const PowerRail& rail, HwComponent hw,
                                    TimeNs now, const FaultInjector* faults) const;

  // Timestamped virtual-meter samples for |hw| over [t0, t1). Samples inside
  // a meter-dropout window are substituted with the rail's idle draw and
  // tagged estimated.
  std::vector<PowerSample> ObservedSamples(const PowerRail& rail, HwComponent hw,
                                           TimeNs t0, TimeNs t1,
                                           DurationNs period, Watts noise_stddev,
                                           Rng* rng,
                                           const FaultInjector* faults = nullptr) const;

  // Single-pass merge primitive behind PsboxManager::Sample: adds this
  // component's virtual-meter reading onto |buf| (whose timestamps are
  // prefilled), OR-ing the estimated tag. Consumes one Gaussian draw per
  // non-dropped sample, in buffer order, exactly like ObservedSamples.
  void AccumulateObservedSamples(const PowerRail& rail, HwComponent hw,
                                 Watts noise_stddev, Rng* rng,
                                 const FaultInjector* faults,
                                 std::vector<PowerSample>* buf) const;

  TimeNs meter_start() const { return meter_start_; }
  void ResetMeter(TimeNs now);

  TimeNs sample_cursor() const { return sample_cursor_; }
  void set_sample_cursor(TimeNs t) { sample_cursor_ = t; }

  const IntervalSet& owned(HwComponent hw) const {
    return owned_[static_cast<size_t>(hw)];
  }

  // Whether the sandbox owned |hw| at instant |t| (closed intervals plus a
  // still-open balloon).
  bool OwnedAt(HwComponent hw, TimeNs t) const;

  // --- retention (driven by PsboxManager::TrimTelemetry) ------------------

  // Earliest rail instant this sandbox still needs to resolve queries
  // exactly, given a desired horizon: open balloons and closed intervals
  // straddling |desired| pin the floor (trimmed intervals do not — their
  // energy moves into the bases).
  TimeNs RetainFloor(HwComponent hw, TimeNs desired) const;

  // Folds every owned interval of |hw| ending at or before |horizon| into
  // the plain/detail energy bases (exactly the spans the untrimmed query
  // would integrate, in the same order) and drops those intervals.
  void TrimOwned(HwComponent hw, TimeNs horizon, const PowerRail& rail,
                 const FaultInjector* faults);

  // Direct-metered components: banks [direct_from, horizon) energy (computed
  // by the caller from the domain) and advances the integration start.
  TimeNs direct_from(HwComponent hw) const {
    return direct_from_[static_cast<size_t>(hw)];
  }
  Joules direct_energy_base(HwComponent hw) const {
    return direct_base_[static_cast<size_t>(hw)];
  }
  void BankDirectEnergy(HwComponent hw, Joules energy, TimeNs new_from);

  // Advances the sample cursor to the first grid point at or past |horizon|
  // (keeping the grid phase), dropping the backlog a lagging reader never
  // drained — the virtual meter behaves as a bounded ring buffer under
  // retention. Returns the number of samples dropped.
  uint64_t DropSampleBacklogBefore(TimeNs horizon, DurationNs period);
  uint64_t samples_lost() const { return samples_lost_; }

  // --- crash evacuation (state transfer) ----------------------------------
  // Energy already billed to this app on a previous board, carried over by a
  // crash evacuation. Reported as part of every meter reading (measured
  // share) and deliberately NOT cleared by ResetMeter: the transferred value
  // stands in for history the new board's rails never saw.
  Joules transferred_base() const { return transferred_base_; }
  void set_transferred_base(Joules j) { transferred_base_ = j; }

  // Snapshot support: verifies identity (id/app/hardware must match the
  // replayed CreateBox) and overwrites all mutable meter state.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  // Owned duration within [t0, t1), treating a still-open balloon as
  // extending to t1.
  DurationNs OwnedWithin(HwComponent hw, TimeNs t0, TimeNs t1) const;

  // Splits [b, e) at the meter-dropout windows, integrating measured pieces
  // off the rail and accumulating dropped pieces as estimation time.
  void AccumulateSpan(const PowerRail& rail, const FaultInjector* faults,
                      TimeNs b, TimeNs e, EnergyDetail* d) const;

  PsboxId id_;
  AppId app_;
  std::vector<HwComponent> hw_;
  bool inside_ = false;
  TimeNs meter_start_;
  TimeNs sample_cursor_;
  std::array<IntervalSet, kNumHwComponents> owned_;
  std::array<TimeNs, kNumHwComponents> open_since_;  // filled with -1 in ctor
  // Hierarchy: enclosing tenant box (-1 = top-level), the budget slice this
  // box claimed from it, the slices live children currently hold of ours,
  // and whether our own claim against the parent is outstanding (released
  // when the app leaves the box, re-claimed on re-entry).
  PsboxId parent_ = -1;
  Joules budget_ = 0.0;
  Joules children_budget_ = 0.0;
  bool budget_claimed_ = false;
  // Per-component balloon nesting depth: this box's own balloon plus any
  // descendant balloons composed onto it. The owned interval spans the
  // outermost 0->1 .. 1->0 pair.
  std::array<int32_t, kNumHwComponents> compose_depth_{};
  // Retention bases: energy of trimmed ownership history. plain_base_ backs
  // ObservedEnergy; detail_base_ backs ObservedEnergyDetail (its .estimated
  // is always 0 — estimation is derived from the aggregated measured average
  // at query time, so trimming never changes the reported split).
  std::array<Joules, kNumHwComponents> plain_base_{};
  std::array<EnergyDetail, kNumHwComponents> detail_base_{};
  std::array<Joules, kNumHwComponents> direct_base_{};
  std::array<TimeNs, kNumHwComponents> direct_from_;
  uint64_t samples_lost_ = 0;
  Joules transferred_base_ = 0.0;
};

}  // namespace psbox

#endif  // SRC_PSBOX_POWER_SANDBOX_H_
