#include "src/psbox/power_sandbox.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

PowerSandbox::PowerSandbox(PsboxId id, AppId app, std::vector<HwComponent> hw,
                           TimeNs created, PsboxId parent, Joules budget)
    : id_(id), app_(app), hw_(std::move(hw)), meter_start_(created),
      sample_cursor_(created), parent_(parent), budget_(budget) {
  open_since_.fill(-1);
  direct_from_.fill(created);
}

bool PowerSandbox::BoundTo(HwComponent hw) const {
  return std::find(hw_.begin(), hw_.end(), hw) != hw_.end();
}

Joules PowerSandbox::ClaimChildBudget(Joules requested) {
  Joules granted = requested;
  if (budget_ > 0.0) {
    granted = std::min(requested, std::max(0.0, budget_ - children_budget_));
  }
  children_budget_ += granted;
  return granted;
}

void PowerSandbox::ReleaseChildBudget(Joules granted) {
  children_budget_ -= granted;
  if (children_budget_ < 0.0) {
    children_budget_ = 0.0;  // float drift guard; the ledger is claim/release balanced
  }
}

void PowerSandbox::OnOwnershipStart(HwComponent hw, TimeNs when) {
  const size_t i = static_cast<size_t>(hw);
  auto& since = open_since_[i];
  if (compose_depth_[i]++ == 0) {
    PSBOX_CHECK_EQ(since, -1);
    since = when;
  }
}

void PowerSandbox::OnOwnershipEnd(HwComponent hw, TimeNs when) {
  const size_t i = static_cast<size_t>(hw);
  auto& since = open_since_[i];
  PSBOX_CHECK_GT(compose_depth_[i], 0);
  PSBOX_CHECK_GE(since, 0);
  if (--compose_depth_[i] == 0) {
    owned_[i].Add(since, when);
    since = -1;
  }
}

void PowerSandbox::ResetMeter(TimeNs now) {
  meter_start_ = now;
  // Everything banked from trimmed history predates the new meter epoch; the
  // untrimmed computation would clamp those spans away, so the bases restart
  // at zero with it.
  plain_base_.fill(0.0);
  detail_base_.fill(EnergyDetail{});
  direct_base_.fill(0.0);
  direct_from_.fill(now);
}

bool PowerSandbox::OwnedAt(HwComponent hw, TimeNs t) const {
  const TimeNs since = open_since_[static_cast<size_t>(hw)];
  if (since >= 0 && t >= since) {
    return true;
  }
  return owned_[static_cast<size_t>(hw)].Contains(t);
}

DurationNs PowerSandbox::OwnedWithin(HwComponent hw, TimeNs t0, TimeNs t1) const {
  DurationNs covered = owned_[static_cast<size_t>(hw)].CoveredWithin(t0, t1);
  const TimeNs since = open_since_[static_cast<size_t>(hw)];
  if (since >= 0 && since < t1) {
    covered += t1 - std::max(since, t0);
  }
  return covered;
}

Joules PowerSandbox::ObservedEnergy(const PowerRail& rail, HwComponent hw,
                                    TimeNs now) const {
  PSBOX_CHECK(BoundTo(hw));
  const TimeNs t0 = meter_start_;
  // Accumulated energy is the energy metered for the psbox's resource
  // balloons: rail energy inside the owned intervals. Outside of them the
  // hardware belongs to others and contributes nothing to the app's account
  // (the sample stream shows idle power there, but idle time is not billed —
  // this is what keeps the observation consistent when co-running stretches
  // the app's wall time, Fig 6). Trimmed-away intervals were folded into the
  // base by TrimOwned with the identical per-interval sums, so the running
  // total is bit-identical with and without retention.
  Joules energy = plain_base_[static_cast<size_t>(hw)];
  if (now <= t0) {
    return energy;
  }
  const auto& intervals = owned_[static_cast<size_t>(hw)].intervals();
  for (const auto& iv : intervals) {
    const TimeNs b = std::max(iv.begin, t0);
    const TimeNs e = std::min(iv.end, now);
    if (e > b) {
      energy += rail.EnergyOver(b, e);
    }
  }
  const TimeNs since = open_since_[static_cast<size_t>(hw)];
  if (since >= 0 && since < now) {
    energy += rail.EnergyOver(std::max(since, t0), now);
  }
  return energy;
}

void PowerSandbox::AccumulateSpan(const PowerRail& rail, const FaultInjector* faults,
                                  TimeNs b, TimeNs e, EnergyDetail* d) const {
  if (e <= b) {
    return;
  }
  // Subtract the dropout windows from the owned span: measured pieces
  // integrate the rail, dropped pieces only accumulate time for estimation.
  TimeNs cursor = b;
  if (faults != nullptr) {
    for (const FaultWindow& w : faults->meter_dropouts()) {
      if (w.end <= cursor) {
        continue;
      }
      if (w.begin >= e) {
        break;
      }
      const TimeNs db = std::max(cursor, w.begin);
      const TimeNs de = std::min(e, w.end);
      if (db > cursor) {
        d->measured += rail.EnergyOver(cursor, db);
        d->measured_time += db - cursor;
      }
      d->estimated_time += de - db;
      cursor = de;
      if (cursor >= e) {
        break;
      }
    }
  }
  if (cursor < e) {
    d->measured += rail.EnergyOver(cursor, e);
    d->measured_time += e - cursor;
  }
}

PowerSandbox::EnergyDetail PowerSandbox::ObservedEnergyDetail(
    const PowerRail& rail, HwComponent hw, TimeNs now,
    const FaultInjector* faults) const {
  PSBOX_CHECK(BoundTo(hw));
  // The base carries the measured energy and measured/estimated durations of
  // trimmed intervals; the estimate itself is always derived below from the
  // aggregated totals, exactly as the untrimmed computation would.
  EnergyDetail d = detail_base_[static_cast<size_t>(hw)];
  const TimeNs t0 = meter_start_;
  if (now <= t0) {
    return d;
  }
  for (const auto& iv : owned_[static_cast<size_t>(hw)].intervals()) {
    AccumulateSpan(rail, faults, std::max(iv.begin, t0), std::min(iv.end, now), &d);
  }
  const TimeNs since = open_since_[static_cast<size_t>(hw)];
  if (since >= 0 && since < now) {
    AccumulateSpan(rail, faults, std::max(since, t0), now, &d);
  }
  if (d.estimated_time > 0) {
    // Model-based estimation for the unmeasurable spans: the average power
    // the DAQ did measure for this sandbox on this rail, falling back to the
    // rail's idle draw when the entire window was dark.
    const Watts est_power = d.measured_time > 0
                                ? d.measured / ToSeconds(d.measured_time)
                                : rail.idle_power();
    d.estimated = est_power * ToSeconds(d.estimated_time);
  }
  return d;
}

std::vector<PowerSample> PowerSandbox::ObservedSamples(
    const PowerRail& rail, HwComponent hw, TimeNs t0, TimeNs t1, DurationNs period,
    Watts noise_stddev, Rng* rng, const FaultInjector* faults) const {
  std::vector<PowerSample> out;
  if (t1 <= t0) {
    return out;
  }
  out.reserve(static_cast<size_t>((t1 - t0 + period - 1) / period));
  for (TimeNs t = t0; t < t1; t += period) {
    out.push_back({t, 0.0, false});
  }
  AccumulateObservedSamples(rail, hw, noise_stddev, rng, faults, &out);
  return out;
}

void PowerSandbox::AccumulateObservedSamples(const PowerRail& rail, HwComponent hw,
                                             Watts noise_stddev, Rng* rng,
                                             const FaultInjector* faults,
                                             std::vector<PowerSample>* buf) const {
  PSBOX_CHECK(BoundTo(hw));
  if (buf->empty()) {
    return;
  }
  // Sample grids are monotone, so hoist the per-probe segment searches into
  // forward-walking cursors (the Resample pattern): one walker over the rail
  // trace, one over the closed ownership intervals, and an index over the
  // sorted dropout windows. Each grid point then costs a comparison per
  // structure instead of a galloping lookup.
  const size_t i = static_cast<size_t>(hw);
  StepTrace::Walker power(rail.trace(), buf->front().timestamp);
  IntervalSet::Walker owned(owned_[i], buf->front().timestamp);
  const std::vector<FaultWindow>* dropouts =
      faults != nullptr ? &faults->meter_dropouts() : nullptr;
  size_t drop_idx = 0;
  const TimeNs since = open_since_[i];
  const Watts idle = rail.idle_power();
  for (PowerSample& s : *buf) {
    const TimeNs t = s.timestamp;
    if (dropouts != nullptr) {
      while (drop_idx < dropouts->size() && t >= (*dropouts)[drop_idx].end) {
        ++drop_idx;
      }
      if (drop_idx < dropouts->size() && t >= (*dropouts)[drop_idx].begin) {
        // No measurement exists here; substitute the model estimate (exact
        // for unowned instants, the degraded fallback inside a balloon). No
        // noise and no Gaussian draw: synthesised values are not
        // measurements.
        s.watts += idle;
        s.estimated = true;
        continue;
      }
    }
    // OwnedAt(hw, t) with the open-balloon check hoisted out of the loop.
    const Watts truth =
        (since >= 0 && t >= since) || owned.Contains(t) ? power.ValueAt(t) : idle;
    s.watts += std::max(
        0.0, truth + (rng != nullptr ? rng->Gaussian(0.0, noise_stddev) : 0.0));
  }
}

TimeNs PowerSandbox::RetainFloor(HwComponent hw, TimeNs desired) const {
  const size_t i = static_cast<size_t>(hw);
  TimeNs floor = desired;
  // An open balloon will close at some t > now and be integrated from its
  // start; the rail must keep that span. Spans always clamp to meter_start,
  // so nothing earlier than it can pin the floor.
  const TimeNs since = open_since_[i];
  if (since >= 0) {
    floor = std::min(floor, std::max(since, meter_start_));
  }
  // A closed interval straddling the horizon is kept whole (never split —
  // splitting would change the summation the untrimmed query performs), so
  // its begin pins the floor too.
  for (const auto& iv : owned_[i].intervals()) {
    if (iv.end <= desired) {
      continue;  // will be folded into the base
    }
    if (iv.begin < desired) {
      floor = std::min(floor, std::max(iv.begin, meter_start_));
    }
    break;  // only the first retained interval can straddle
  }
  return floor;
}

void PowerSandbox::TrimOwned(HwComponent hw, TimeNs horizon, const PowerRail& rail,
                             const FaultInjector* faults) {
  const size_t i = static_cast<size_t>(hw);
  // Fold exactly the spans the untrimmed queries would integrate for the
  // intervals about to drop, in the same order — the running sums (and hence
  // every later psbox_read) stay bit-identical to the untrimmed run.
  for (const auto& iv : owned_[i].intervals()) {
    if (iv.end > horizon) {
      break;
    }
    const TimeNs b = std::max(iv.begin, meter_start_);
    if (iv.end > b) {
      plain_base_[i] += rail.EnergyOver(b, iv.end);
    }
    AccumulateSpan(rail, faults, b, iv.end, &detail_base_[i]);
  }
  owned_[i].TrimBefore(horizon);
}

void PowerSandbox::BankDirectEnergy(HwComponent hw, Joules energy, TimeNs new_from) {
  const size_t i = static_cast<size_t>(hw);
  direct_base_[i] += energy;
  direct_from_[i] = new_from;
}

void PowerSandbox::SaveState(SnapshotWriter& w) const {
  w.U64(static_cast<uint64_t>(id_));
  w.I64(app_);
  w.U64(hw_.size());
  for (HwComponent hw : hw_) {
    w.U8(static_cast<uint8_t>(hw));
  }
  w.Bool(inside_);
  w.I64(meter_start_);
  w.I64(sample_cursor_);
  for (size_t i = 0; i < kNumHwComponents; ++i) {
    owned_[i].SaveState(w);
    w.I64(open_since_[i]);
    w.F64(plain_base_[i]);
    w.F64(detail_base_[i].measured);
    w.F64(detail_base_[i].estimated);
    w.I64(detail_base_[i].measured_time);
    w.I64(detail_base_[i].estimated_time);
    w.F64(direct_base_[i]);
    w.I64(direct_from_[i]);
  }
  w.U64(samples_lost_);
  w.F64(transferred_base_);
  // v3: hierarchy state. parent_/budget_ double as an identity check against
  // the replayed creation; the rest is mutable ledger state.
  w.I64(parent_);
  w.F64(budget_);
  w.F64(children_budget_);
  w.Bool(budget_claimed_);
  for (size_t i = 0; i < kNumHwComponents; ++i) {
    w.U32(static_cast<uint32_t>(compose_depth_[i]));
  }
}

void PowerSandbox::RestoreState(SnapshotReader& r) {
  if (r.U64() != static_cast<uint64_t>(id_) || static_cast<AppId>(r.I64()) != app_) {
    r.Fail("sandbox identity mismatch between snapshot and replayed creation");
    return;
  }
  const size_t nhw = r.Count(1);
  if (r.ok() && nhw != hw_.size()) {
    r.Fail("sandbox hardware binding mismatch between snapshot and replayed creation");
    return;
  }
  for (size_t i = 0; i < nhw && r.ok(); ++i) {
    if (static_cast<HwComponent>(r.U8()) != hw_[i]) {
      r.Fail("sandbox hardware binding mismatch between snapshot and replayed creation");
      return;
    }
  }
  inside_ = r.Bool();
  meter_start_ = r.I64();
  sample_cursor_ = r.I64();
  for (size_t i = 0; i < kNumHwComponents && r.ok(); ++i) {
    owned_[i].RestoreState(r);
    open_since_[i] = r.I64();
    plain_base_[i] = r.F64();
    detail_base_[i].measured = r.F64();
    detail_base_[i].estimated = r.F64();
    detail_base_[i].measured_time = r.I64();
    detail_base_[i].estimated_time = r.I64();
    direct_base_[i] = r.F64();
    direct_from_[i] = r.I64();
  }
  samples_lost_ = r.U64();
  transferred_base_ = r.F64();
  if (static_cast<PsboxId>(r.I64()) != parent_) {
    r.Fail("sandbox parent mismatch between snapshot and replayed creation");
    return;
  }
  budget_ = r.F64();
  children_budget_ = r.F64();
  budget_claimed_ = r.Bool();
  for (size_t i = 0; i < kNumHwComponents && r.ok(); ++i) {
    compose_depth_[i] = static_cast<int32_t>(r.U32());
  }
}

uint64_t PowerSandbox::DropSampleBacklogBefore(TimeNs horizon, DurationNs period) {
  PSBOX_CHECK_GT(period, 0);
  if (sample_cursor_ >= horizon) {
    return 0;
  }
  const auto k = static_cast<uint64_t>(
      (horizon - sample_cursor_ + period - 1) / period);
  sample_cursor_ += static_cast<DurationNs>(k) * period;
  samples_lost_ += k;
  return k;
}

}  // namespace psbox
