#include "src/psbox/power_sandbox.h"

#include <algorithm>

#include "src/base/check.h"

namespace psbox {

PowerSandbox::PowerSandbox(PsboxId id, AppId app, std::vector<HwComponent> hw,
                           TimeNs created)
    : id_(id), app_(app), hw_(std::move(hw)), meter_start_(created),
      sample_cursor_(created) {
  open_since_.fill(-1);
}

bool PowerSandbox::BoundTo(HwComponent hw) const {
  return std::find(hw_.begin(), hw_.end(), hw) != hw_.end();
}

void PowerSandbox::OnOwnershipStart(HwComponent hw, TimeNs when) {
  auto& since = open_since_[static_cast<size_t>(hw)];
  PSBOX_CHECK_EQ(since, -1);
  since = when;
}

void PowerSandbox::OnOwnershipEnd(HwComponent hw, TimeNs when) {
  auto& since = open_since_[static_cast<size_t>(hw)];
  PSBOX_CHECK_GE(since, 0);
  owned_[static_cast<size_t>(hw)].Add(since, when);
  since = -1;
}

bool PowerSandbox::OwnedAt(HwComponent hw, TimeNs t) const {
  const TimeNs since = open_since_[static_cast<size_t>(hw)];
  if (since >= 0 && t >= since) {
    return true;
  }
  return owned_[static_cast<size_t>(hw)].Contains(t);
}

DurationNs PowerSandbox::OwnedWithin(HwComponent hw, TimeNs t0, TimeNs t1) const {
  DurationNs covered = owned_[static_cast<size_t>(hw)].CoveredWithin(t0, t1);
  const TimeNs since = open_since_[static_cast<size_t>(hw)];
  if (since >= 0 && since < t1) {
    covered += t1 - std::max(since, t0);
  }
  return covered;
}

Joules PowerSandbox::ObservedEnergy(const PowerRail& rail, HwComponent hw,
                                    TimeNs now) const {
  PSBOX_CHECK(BoundTo(hw));
  const TimeNs t0 = meter_start_;
  if (now <= t0) {
    return 0.0;
  }
  // Accumulated energy is the energy metered for the psbox's resource
  // balloons: rail energy inside the owned intervals. Outside of them the
  // hardware belongs to others and contributes nothing to the app's account
  // (the sample stream shows idle power there, but idle time is not billed —
  // this is what keeps the observation consistent when co-running stretches
  // the app's wall time, Fig 6).
  Joules energy = 0.0;
  const auto& intervals = owned_[static_cast<size_t>(hw)].intervals();
  for (const auto& iv : intervals) {
    const TimeNs b = std::max(iv.begin, t0);
    const TimeNs e = std::min(iv.end, now);
    if (e > b) {
      energy += rail.EnergyOver(b, e);
    }
  }
  const TimeNs since = open_since_[static_cast<size_t>(hw)];
  if (since >= 0 && since < now) {
    energy += rail.EnergyOver(std::max(since, t0), now);
  }
  return energy;
}

PowerSandbox::EnergyDetail PowerSandbox::ObservedEnergyDetail(
    const PowerRail& rail, HwComponent hw, TimeNs now,
    const FaultInjector* faults) const {
  PSBOX_CHECK(BoundTo(hw));
  EnergyDetail d;
  const TimeNs t0 = meter_start_;
  if (now <= t0) {
    return d;
  }
  // Subtract the dropout windows from each owned span: measured pieces
  // integrate the rail, dropped pieces only accumulate time for estimation.
  auto add_span = [&](TimeNs b, TimeNs e) {
    if (e <= b) {
      return;
    }
    TimeNs cursor = b;
    if (faults != nullptr) {
      for (const FaultWindow& w : faults->meter_dropouts()) {
        if (w.end <= cursor) {
          continue;
        }
        if (w.begin >= e) {
          break;
        }
        const TimeNs db = std::max(cursor, w.begin);
        const TimeNs de = std::min(e, w.end);
        if (db > cursor) {
          d.measured += rail.EnergyOver(cursor, db);
          d.measured_time += db - cursor;
        }
        d.estimated_time += de - db;
        cursor = de;
        if (cursor >= e) {
          break;
        }
      }
    }
    if (cursor < e) {
      d.measured += rail.EnergyOver(cursor, e);
      d.measured_time += e - cursor;
    }
  };
  for (const auto& iv : owned_[static_cast<size_t>(hw)].intervals()) {
    add_span(std::max(iv.begin, t0), std::min(iv.end, now));
  }
  const TimeNs since = open_since_[static_cast<size_t>(hw)];
  if (since >= 0 && since < now) {
    add_span(std::max(since, t0), now);
  }
  if (d.estimated_time > 0) {
    // Model-based estimation for the unmeasurable spans: the average power
    // the DAQ did measure for this sandbox on this rail, falling back to the
    // rail's idle draw when the entire window was dark.
    const Watts est_power = d.measured_time > 0
                                ? d.measured / ToSeconds(d.measured_time)
                                : rail.idle_power();
    d.estimated = est_power * ToSeconds(d.estimated_time);
  }
  return d;
}

std::vector<PowerSample> PowerSandbox::ObservedSamples(
    const PowerRail& rail, HwComponent hw, TimeNs t0, TimeNs t1, DurationNs period,
    Watts noise_stddev, Rng* rng, const FaultInjector* faults) const {
  PSBOX_CHECK(BoundTo(hw));
  std::vector<PowerSample> out;
  if (t1 <= t0) {
    return out;
  }
  out.reserve(static_cast<size_t>((t1 - t0) / period) + 1);
  for (TimeNs t = t0; t < t1; t += period) {
    if (faults != nullptr && faults->MeterDroppedAt(t)) {
      // No measurement exists here; substitute the model estimate (exact for
      // unowned instants, the degraded fallback inside a balloon). No noise:
      // synthesised values are not measurements.
      out.push_back({t, rail.idle_power(), /*estimated=*/true});
      continue;
    }
    const Watts truth = OwnedAt(hw, t) ? rail.PowerAt(t) : rail.idle_power();
    const Watts noisy =
        std::max(0.0, truth + (rng != nullptr ? rng->Gaussian(0.0, noise_stddev) : 0.0));
    out.push_back({t, noisy});
  }
  return out;
}

}  // namespace psbox
