// The psbox user API (Listing 1 of the paper).
//
//   box = psbox_create(env, {HwComponent::kCpu});
//   psbox_enter(env, box);
//   psbox_sample(env, box, &buf, NUM_SAMPLES);
//   energy = psbox_read(env, box);
//   psbox_leave(env, box);
//
// These are thin wrappers over the kernel's PsboxService hook, callable from
// any Behavior via its TaskEnv. All power readings are timestamped against
// the same clock tasks read with psbox_gettime() (the clock_gettime()
// analogue), so apps can map power to their own activities.

#ifndef SRC_PSBOX_PSBOX_API_H_
#define SRC_PSBOX_PSBOX_API_H_

#include <vector>

#include "src/base/types.h"
#include "src/hw/power_meter.h"
#include "src/kernel/task.h"

namespace psbox {

// Creates a power sandbox for the calling task's app, bound to |hw|.
int psbox_create(TaskEnv& env, const std::vector<HwComponent>& hw);

// Creates a power sandbox nested inside |parent| (a tenant box): |hw| must
// be a subset of the parent's binding, and |budget| joules are claimed from
// the parent's slice (clamped to what the parent has left). The child's
// served energy bills both its own meter and every ancestor's.
int psbox_create_in(TaskEnv& env, const std::vector<HwComponent>& hw, int parent,
                    Joules budget);

// Enters/leaves the sandbox; effective at the kernel's next scheduling point.
void psbox_enter(TaskEnv& env, int box);
void psbox_leave(TaskEnv& env, int box);

// One-time query of accumulated energy (joules) observed by the box's
// virtual power meter.
Joules psbox_read(TaskEnv& env, int box);

// Restarts the box's energy accumulator (e.g. at the start of a phase of
// interest).
void psbox_reset(TaskEnv& env, int box);

// Continuous collection of power samples into a user buffer; returns the
// number of samples appended. Only delivers data while inside the box.
size_t psbox_sample(TaskEnv& env, int box, std::vector<PowerSample>* buf,
                    size_t num_samples);

// Whether the app is currently inside the box.
bool psbox_inside(TaskEnv& env, int box);

// The standard clock psbox timestamps come from.
TimeNs psbox_gettime(TaskEnv& env);

}  // namespace psbox

#endif  // SRC_PSBOX_PSBOX_API_H_
