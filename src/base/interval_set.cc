#include "src/base/interval_set.h"

#include <algorithm>

#include "src/base/check.h"

namespace psbox {

void IntervalSet::Add(TimeNs begin, TimeNs end) {
  PSBOX_CHECK_LE(begin, end);
  if (begin == end) {
    return;
  }
  // Fast path: appended in order, not touching the previous interval.
  if (intervals_.empty() || begin > intervals_.back().end) {
    intervals_.push_back({begin, end});
    return;
  }
  // Fast path: extends the last interval.
  if (begin >= intervals_.back().begin) {
    intervals_.back().end = std::max(intervals_.back().end, end);
    return;
  }
  // General (rare) path: insert and merge.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), begin,
      [](const Interval& iv, TimeNs t) { return iv.end < t; });
  Interval merged{begin, end};
  auto first = it;
  while (it != intervals_.end() && it->begin <= merged.end) {
    merged.begin = std::min(merged.begin, it->begin);
    merged.end = std::max(merged.end, it->end);
    ++it;
  }
  it = intervals_.erase(first, it);
  intervals_.insert(it, merged);
}

bool IntervalSet::Contains(TimeNs t) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](TimeNs time, const Interval& iv) { return time < iv.begin; });
  if (it == intervals_.begin()) {
    return false;
  }
  --it;
  return t >= it->begin && t < it->end;
}

DurationNs IntervalSet::CoveredWithin(TimeNs t0, TimeNs t1) const {
  if (t1 <= t0) {
    return 0;
  }
  DurationNs covered = 0;
  for (const Interval& iv : intervals_) {
    if (iv.end <= t0) {
      continue;
    }
    if (iv.begin >= t1) {
      break;
    }
    covered += std::min(iv.end, t1) - std::max(iv.begin, t0);
  }
  return covered;
}

DurationNs IntervalSet::TotalCovered() const {
  DurationNs covered = 0;
  for (const Interval& iv : intervals_) {
    covered += iv.end - iv.begin;
  }
  return covered;
}

}  // namespace psbox
