#include "src/base/interval_set.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

void IntervalSet::Add(TimeNs begin, TimeNs end) {
  PSBOX_CHECK_LE(begin, end);
  if (begin == end) {
    return;
  }
  // Fast path: appended in order, not touching the previous interval.
  if (intervals_.empty() || begin > intervals_.back().end) {
    intervals_.push_back({begin, end});
    return;
  }
  // Fast path: extends the last interval.
  if (begin >= intervals_.back().begin) {
    intervals_.back().end = std::max(intervals_.back().end, end);
    return;
  }
  // General (rare) path: insert and merge. Indexes shift, so the read cursor
  // is reset.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), begin,
      [](const Interval& iv, TimeNs t) { return iv.end < t; });
  Interval merged{begin, end};
  auto first = it;
  while (it != intervals_.end() && it->begin <= merged.end) {
    merged.begin = std::min(merged.begin, it->begin);
    merged.end = std::max(merged.end, it->end);
    ++it;
  }
  it = intervals_.erase(first, it);
  intervals_.insert(it, merged);
  cursor_ = 0;
}

ptrdiff_t IntervalSet::FindIndex(TimeNs t) const {
  if (intervals_.empty()) {
    return -1;
  }
  const size_t n = intervals_.size();
  size_t lo = 0;
  size_t hi = n;
  const size_t c = cursor_ < n ? cursor_ : n - 1;
  if (intervals_[c].begin <= t) {
    lo = c;
    size_t width = 1;
    while (lo + width < n && intervals_[lo + width].begin <= t) {
      lo += width;
      width <<= 1;
    }
    hi = std::min(n, lo + width);
  } else {
    hi = c;
    size_t width = 1;
    while (width < hi && intervals_[hi - width].begin > t) {
      hi -= width;
      width <<= 1;
    }
    lo = width < hi ? hi - width : 0;
    if (intervals_[lo].begin > t) {
      cursor_ = 0;
      return -1;
    }
  }
  auto it = std::upper_bound(
      intervals_.begin() + static_cast<ptrdiff_t>(lo),
      intervals_.begin() + static_cast<ptrdiff_t>(hi), t,
      [](TimeNs time, const Interval& iv) { return time < iv.begin; });
  const ptrdiff_t idx = (it - intervals_.begin()) - 1;
  cursor_ = idx >= 0 ? static_cast<size_t>(idx) : 0;
  return idx;
}

bool IntervalSet::Contains(TimeNs t) const {
  const ptrdiff_t idx = FindIndex(t);
  if (idx < 0) {
    return false;
  }
  const Interval& iv = intervals_[static_cast<size_t>(idx)];
  return t >= iv.begin && t < iv.end;
}

DurationNs IntervalSet::CoveredWithin(TimeNs t0, TimeNs t1) const {
  if (t1 <= t0) {
    return 0;
  }
  DurationNs covered = 0;
  for (const Interval& iv : intervals_) {
    if (iv.end <= t0) {
      continue;
    }
    if (iv.begin >= t1) {
      break;
    }
    covered += std::min(iv.end, t1) - std::max(iv.begin, t0);
  }
  return covered;
}

DurationNs IntervalSet::TotalCovered() const {
  DurationNs covered = 0;
  for (const Interval& iv : intervals_) {
    covered += iv.end - iv.begin;
  }
  return covered;
}

size_t IntervalSet::TrimBefore(TimeNs horizon) {
  size_t drop = 0;
  while (drop < intervals_.size() && intervals_[drop].end <= horizon) {
    ++drop;
  }
  if (drop == 0) {
    return 0;
  }
  intervals_.erase(intervals_.begin(), intervals_.begin() + static_cast<ptrdiff_t>(drop));
  cursor_ = 0;
  trimmed_intervals_ += drop;
  return drop;
}

IntervalSet::Walker::Walker(const IntervalSet& set, TimeNs start)
    : intervals_(&set.intervals_) {
  // First interval that could still cover a probe at or after |start|.
  const ptrdiff_t fi = set.FindIndex(start);
  if (fi < 0) {
    idx_ = 0;
  } else if ((*intervals_)[static_cast<size_t>(fi)].end > start) {
    idx_ = static_cast<size_t>(fi);
  } else {
    idx_ = static_cast<size_t>(fi) + 1;
  }
}

void IntervalSet::SaveState(SnapshotWriter& w) const {
  w.U64(intervals_.size());
  for (const Interval& iv : intervals_) {
    w.I64(iv.begin);
    w.I64(iv.end);
  }
  w.U64(trimmed_intervals_);
}

void IntervalSet::RestoreState(SnapshotReader& r) {
  const size_t n = r.Count(2 * sizeof(TimeNs));
  intervals_.clear();
  intervals_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const TimeNs begin = r.I64();
    const TimeNs end = r.I64();
    intervals_.push_back(Interval{begin, end});
  }
  cursor_ = 0;
  trimmed_intervals_ = r.U64();
}

}  // namespace psbox
