#include "src/base/csv.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/base/check.h"

namespace psbox {

namespace {

std::string TrimCell(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace

std::vector<std::vector<std::string>> CsvReader::Parse(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = TrimCell(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ls(trimmed);
    while (std::getline(ls, cell, ',')) {
      cells.push_back(TrimCell(cell));
    }
    if (!trimmed.empty() && trimmed.back() == ',') {
      cells.emplace_back();  // trailing empty cell getline() drops
    }
    rows.push_back(std::move(cells));
  }
  return rows;
}

bool CsvReader::ReadFile(const std::string& path,
                         std::vector<std::vector<std::string>>* rows,
                         std::string* error) {
  PSBOX_CHECK(rows != nullptr);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "' for reading";
    }
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    if (error != nullptr) {
      *error = "I/O error while reading '" + path + "'";
    }
    return false;
  }
  *rows = Parse(buf.str());
  return true;
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << cells[i];
  }
  out_ << '\n';
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return std::string(buf);
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  PSBOX_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "| " : " | ");
      out << row[i];
      out << std::string(widths[i] - row[i].size(), ' ');
    }
    out << " |\n";
  };
  print_row(header_);
  out << '|';
  for (size_t i = 0; i < header_.size(); ++i) {
    out << std::string(widths[i] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace psbox
