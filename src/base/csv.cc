#include "src/base/csv.h"

#include <algorithm>
#include <cstdio>

#include "src/base/check.h"

namespace psbox {

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << cells[i];
  }
  out_ << '\n';
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return std::string(buf);
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  PSBOX_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "| " : " | ");
      out << row[i];
      out << std::string(widths[i] - row[i].size(), ' ');
    }
    out << " |\n";
  };
  print_row(header_);
  out << '|';
  for (size_t i = 0; i < header_.size(); ++i) {
    out << std::string(widths[i] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace psbox
