#include "src/base/rng.h"

#include <cmath>

#include "src/base/check.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  PSBOX_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PSBOX_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::Gaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double mean) {
  PSBOX_CHECK_GT(mean, 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(NextU64()); }

void Rng::SaveState(SnapshotWriter& w) const {
  for (uint64_t word : state_) {
    w.U64(word);
  }
  w.Bool(has_cached_gaussian_);
  w.F64(cached_gaussian_);
}

void Rng::RestoreState(SnapshotReader& r) {
  for (uint64_t& word : state_) {
    word = r.U64();
  }
  has_cached_gaussian_ = r.Bool();
  cached_gaussian_ = r.F64();
}

}  // namespace psbox
