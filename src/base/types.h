// Shared identifier types.

#ifndef SRC_BASE_TYPES_H_
#define SRC_BASE_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace psbox {

// An app is one or a group of user processes (the unit a psbox encloses).
using AppId = int32_t;
constexpr AppId kNoApp = -1;
// The idle/dummy pseudo-app: occupies hardware on behalf of a balloon.
constexpr AppId kIdleApp = -2;

using TaskId = int32_t;
using CoreId = int32_t;
using PsboxId = int32_t;
constexpr PsboxId kNoPsbox = -1;

// Hardware components a psbox can bind to (psbox_create(HW_CPU | ...)).
// Display and GPS follow §7: the display (OLED) is free of power
// entanglement (per-pixel additive), and GPS operating power can be safely
// revealed without virtualisation.
enum class HwComponent : uint8_t {
  kCpu = 0,
  kGpu = 1,
  kDsp = 2,
  kWifi = 3,
  kDisplay = 4,
  kGps = 5,
  kStorage = 6,
};

constexpr size_t kNumHwComponents = 7;

inline const char* HwComponentName(HwComponent hw) {
  switch (hw) {
    case HwComponent::kCpu:
      return "CPU";
    case HwComponent::kGpu:
      return "GPU";
    case HwComponent::kDsp:
      return "DSP";
    case HwComponent::kWifi:
      return "WiFi";
    case HwComponent::kDisplay:
      return "Display";
    case HwComponent::kGps:
      return "GPS";
    case HwComponent::kStorage:
      return "Storage";
  }
  return "?";
}

}  // namespace psbox

#endif  // SRC_BASE_TYPES_H_
