// Deterministic random number generation.
//
// Every stochastic element of the simulator (measurement noise, workload
// jitter, website traces) draws from an explicitly-seeded Rng so that each
// experiment is bit-reproducible. The generator is xoshiro256**, seeded via
// splitmix64 per the reference implementation recommendations.

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

namespace psbox {

class SnapshotReader;
class SnapshotWriter;

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on [0, 2^64).
  uint64_t NextU64();
  // Uniform on [0.0, 1.0).
  double NextDouble();
  // Uniform on [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer on [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Standard normal via Box-Muller; Gaussian(mean, stddev) scales it.
  double Gaussian(double mean, double stddev);
  // True with probability p.
  bool Bernoulli(double p);
  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Derives an independent child stream; used to give each component its own
  // stream so adding consumers never perturbs existing draws.
  Rng Fork();

  // Snapshot support: persists/overwrites the exact generator state,
  // including the cached Box-Muller half-sample.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace psbox

#endif  // SRC_BASE_RNG_H_
