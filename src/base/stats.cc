#include "src/base/stats.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"

namespace psbox {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  PSBOX_CHECK(!values.empty());
  PSBOX_CHECK_GE(p, 0.0);
  PSBOX_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values[0];
  }
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double PercentDelta(double a, double b) {
  if (a == 0.0) {
    return 0.0;
  }
  return (b - a) / a * 100.0;
}

}  // namespace psbox
