// Sorted set of disjoint half-open time intervals.
//
// Used for resource-balloon ownership windows (which instants of the hardware
// belong to a psbox) and for the baseline accounting usage ledgers.
//
// Contains() keeps a monotone read cursor: the virtual power meters probe
// ownership at 100 kHz in time order, so lookups gallop from the last hit and
// cost amortized O(1) per probe (O(log n) for arbitrary jumps). TrimBefore()
// drops intervals behind a retention horizon so ownership history does not
// grow without bound on long runs (callers fold the dropped intervals'
// energy into a base offset first — see PowerSandbox).

#ifndef SRC_BASE_INTERVAL_SET_H_
#define SRC_BASE_INTERVAL_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/time.h"

namespace psbox {

class SnapshotReader;
class SnapshotWriter;

class IntervalSet {
 public:
  struct Interval {
    TimeNs begin;
    TimeNs end;  // exclusive
  };

  // Adds [begin, end); merges with adjacent/overlapping intervals. Intervals
  // are typically appended in time order (amortised O(1)); out-of-order adds
  // are supported but O(n).
  void Add(TimeNs begin, TimeNs end);

  bool Contains(TimeNs t) const;

  // Forward-only membership cursor for monotone probe sweeps: construction
  // seeks once (galloping from the set's shared read cursor), then each
  // Contains costs one comparison per visited interval. Probe times must be
  // non-decreasing; mutating the set invalidates the walker.
  class Walker {
   public:
    Walker(const IntervalSet& set, TimeNs start);

    // Whether |t| lies in a covered interval; |t| must be >= every earlier
    // probe.
    bool Contains(TimeNs t) {
      const size_t n = intervals_->size();
      while (idx_ < n && (*intervals_)[idx_].end <= t) {
        ++idx_;
      }
      return idx_ < n && (*intervals_)[idx_].begin <= t;
    }

   private:
    const std::vector<Interval>* intervals_;
    size_t idx_;  // first interval with end > last probe
  };

  // Total covered duration within [t0, t1).
  DurationNs CoveredWithin(TimeNs t0, TimeNs t1) const;

  // Total covered duration.
  DurationNs TotalCovered() const;

  // Drops every interval that ends at or before |horizon| (intervals
  // straddling the horizon are kept whole). Returns the number dropped.
  size_t TrimBefore(TimeNs horizon);

  const std::vector<Interval>& intervals() const { return intervals_; }
  bool empty() const { return intervals_.empty(); }
  size_t size() const { return intervals_.size(); }
  // Intervals dropped by TrimBefore over the set's lifetime.
  uint64_t trimmed_intervals() const { return trimmed_intervals_; }
  void Clear() {
    intervals_.clear();
    cursor_ = 0;
    trimmed_intervals_ = 0;
  }

  // Snapshot support: persists/overwrites the retained intervals and the
  // lifetime trim counter. The read cursor restarts at zero.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  // Index of the last interval with begin <= |t|, or -1; gallops from the
  // read cursor and remembers the hit.
  ptrdiff_t FindIndex(TimeNs t) const;

  std::vector<Interval> intervals_;
  mutable size_t cursor_ = 0;
  uint64_t trimmed_intervals_ = 0;
};

}  // namespace psbox

#endif  // SRC_BASE_INTERVAL_SET_H_
