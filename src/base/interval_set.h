// Sorted set of disjoint half-open time intervals.
//
// Used for resource-balloon ownership windows (which instants of the hardware
// belong to a psbox) and for the baseline accounting usage ledgers.

#ifndef SRC_BASE_INTERVAL_SET_H_
#define SRC_BASE_INTERVAL_SET_H_

#include <cstddef>
#include <vector>

#include "src/base/time.h"

namespace psbox {

class IntervalSet {
 public:
  struct Interval {
    TimeNs begin;
    TimeNs end;  // exclusive
  };

  // Adds [begin, end); merges with adjacent/overlapping intervals. Intervals
  // are typically appended in time order (amortised O(1)); out-of-order adds
  // are supported but O(n).
  void Add(TimeNs begin, TimeNs end);

  bool Contains(TimeNs t) const;

  // Total covered duration within [t0, t1).
  DurationNs CoveredWithin(TimeNs t0, TimeNs t1) const;

  // Total covered duration.
  DurationNs TotalCovered() const;

  const std::vector<Interval>& intervals() const { return intervals_; }
  bool empty() const { return intervals_.empty(); }
  size_t size() const { return intervals_.size(); }
  void Clear() { intervals_.clear(); }

 private:
  std::vector<Interval> intervals_;
};

}  // namespace psbox

#endif  // SRC_BASE_INTERVAL_SET_H_
