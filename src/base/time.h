// Simulated-time primitives.
//
// The whole system runs on a single simulated clock with nanosecond
// resolution, mirroring the paper's setup where the power meter and the CPU
// synchronise their clocks so that power samples can be aligned with software
// activities (§5). Durations and instants are plain signed 64-bit nanosecond
// counts; helpers below construct them readably.

#ifndef SRC_BASE_TIME_H_
#define SRC_BASE_TIME_H_

#include <cstdint>

namespace psbox {

// An instant on the simulated clock, in nanoseconds since simulation start.
using TimeNs = int64_t;
// A span of simulated time, in nanoseconds.
using DurationNs = int64_t;

constexpr DurationNs kNanosecond = 1;
constexpr DurationNs kMicrosecond = 1'000;
constexpr DurationNs kMillisecond = 1'000'000;
constexpr DurationNs kSecond = 1'000'000'000;

constexpr DurationNs Micros(int64_t n) { return n * kMicrosecond; }
constexpr DurationNs Millis(int64_t n) { return n * kMillisecond; }
constexpr DurationNs Seconds(int64_t n) { return n * kSecond; }

constexpr double ToSeconds(DurationNs d) { return static_cast<double>(d) / kSecond; }
constexpr double ToMillis(DurationNs d) { return static_cast<double>(d) / kMillisecond; }
constexpr double ToMicros(DurationNs d) { return static_cast<double>(d) / kMicrosecond; }

// Energy in joules accumulated by integrating watts over simulated seconds.
using Joules = double;
using Watts = double;

}  // namespace psbox

#endif  // SRC_BASE_TIME_H_
