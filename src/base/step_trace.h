// Piecewise-constant time series.
//
// Hardware power in the simulator is piecewise constant: it only changes when
// some component changes state (a task is scheduled, a command starts, a
// frequency steps). A StepTrace records those steps as (time, value) pairs and
// supports exact value lookup, exact energy integration, and uniform
// resampling — the primitive behind both the in-situ power meter and the
// per-psbox virtual power meters.

#ifndef SRC_BASE_STEP_TRACE_H_
#define SRC_BASE_STEP_TRACE_H_

#include <cstddef>
#include <vector>

#include "src/base/time.h"

namespace psbox {

class StepTrace {
 public:
  struct Step {
    TimeNs time;
    double value;
  };

  // Appends a step at |time| with |value|. Times must be non-decreasing; a
  // step at the same time as the previous one overwrites it (the last write
  // within one simulated instant wins).
  void Set(TimeNs time, double value);

  // Value in effect at |time| (0.0 before the first step).
  double ValueAt(TimeNs time) const;

  // Exact integral of the trace over [t0, t1), in value·seconds (i.e. joules
  // when the trace is in watts).
  double IntegralOver(TimeNs t0, TimeNs t1) const;

  // Mean value over [t0, t1).
  double MeanOver(TimeNs t0, TimeNs t1) const;

  // Uniformly resamples the trace at |period| starting at |t0|, up to but not
  // including |t1|.
  std::vector<double> Resample(TimeNs t0, TimeNs t1, DurationNs period) const;

  bool empty() const { return steps_.empty(); }
  size_t size() const { return steps_.size(); }
  const std::vector<Step>& steps() const { return steps_; }
  TimeNs last_time() const { return steps_.empty() ? 0 : steps_.back().time; }

  void Clear() { steps_.clear(); }

 private:
  // Index of the last step with time <= |time|, or -1.
  ptrdiff_t FindIndex(TimeNs time) const;

  std::vector<Step> steps_;
};

}  // namespace psbox

#endif  // SRC_BASE_STEP_TRACE_H_
