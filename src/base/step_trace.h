// Piecewise-constant time series.
//
// Hardware power in the simulator is piecewise constant: it only changes when
// some component changes state (a task is scheduled, a command starts, a
// frequency steps). A StepTrace records those steps as (time, value) pairs and
// supports exact value lookup, exact energy integration, and uniform
// resampling — the primitive behind both the in-situ power meter and the
// per-psbox virtual power meters.
//
// Hot-path design (every 100 kHz sample bottoms out here):
//   * a cumulative integral ("prefix sum") is maintained alongside the steps,
//     so IntegralOver/MeanOver are two lookups instead of a range scan;
//   * lookups start from a monotone read cursor and gallop outward, so the
//     forward-moving sweeps of the meters (ValueAt/Resample at a fixed rate,
//     energy windows that only advance) cost amortized O(1) per query and
//     degrade gracefully to O(log n) for arbitrary jumps;
//   * TrimBefore() drops steps behind a retention horizon while keeping the
//     trimmed prefix's integral inside the retained cumulative values, so
//     long-running simulations keep exact energy accounting in bounded
//     memory.

#ifndef SRC_BASE_STEP_TRACE_H_
#define SRC_BASE_STEP_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/time.h"

namespace psbox {

class SnapshotReader;
class SnapshotWriter;

class StepTrace {
 public:
  struct Step {
    TimeNs time;
    double value;
  };

  // Appends a step at |time| with |value|. Times must be non-decreasing; a
  // step at the same time as the previous one overwrites it (the last write
  // within one simulated instant wins).
  void Set(TimeNs time, double value);

  // Value in effect at |time| (0.0 before the first retained step).
  double ValueAt(TimeNs time) const;

  // Exact integral of the trace over [t0, t1), in value·seconds (i.e. joules
  // when the trace is in watts). After TrimBefore(h), a |t0| before the first
  // retained step is answered as if it were the original trace origin — exact
  // for whole-history queries (t0 at or before the first step ever recorded)
  // and for any window starting at or after the retention horizon; windows
  // starting strictly inside the trimmed region are no longer resolvable.
  double IntegralOver(TimeNs t0, TimeNs t1) const;

  // Mean value over [t0, t1).
  double MeanOver(TimeNs t0, TimeNs t1) const;

  // Uniformly resamples the trace at |period| starting at |t0|, up to but not
  // including |t1|.
  std::vector<double> Resample(TimeNs t0, TimeNs t1, DurationNs period) const;

  // Forward-only segment cursor for monotone sweeps: construction seeks once
  // (galloping from the trace's shared read cursor), then each ValueAt costs
  // one comparison per visited segment instead of a full lookup per query.
  // Query times must be non-decreasing. The walker holds no ownership —
  // mutating the trace invalidates it.
  class Walker {
   public:
    Walker(const StepTrace& trace, TimeNs start);

    // Value in effect at |t| (0.0 before the first retained step); |t| must
    // be >= every earlier query.
    double ValueAt(TimeNs t) {
      while (t >= next_) {
        ++idx_;
        value_ = (*steps_)[static_cast<size_t>(idx_)].value;
        Refill();
      }
      return value_;
    }

    // Index of the segment in effect after the last query (-1 before the
    // first step); callers use it to re-seed the trace's shared cursor.
    ptrdiff_t index() const { return idx_; }

   private:
    void Refill();

    const std::vector<Step>* steps_;
    ptrdiff_t idx_;
    double value_;
    TimeNs next_;  // start of the segment after idx_
  };

  // Drops steps strictly older than the step in effect at |horizon| (that
  // boundary step is retained so ValueAt stays exact for every t >= horizon).
  // The dropped prefix's integral stays folded into the retained cumulative
  // values, so IntegralOver keeps the exact base offset — see IntegralOver()
  // for the resulting query semantics. Returns the number of steps dropped.
  size_t TrimBefore(TimeNs horizon);

  bool empty() const { return steps_.empty(); }
  size_t size() const { return steps_.size(); }
  const std::vector<Step>& steps() const { return steps_; }
  TimeNs first_time() const { return steps_.empty() ? 0 : steps_.front().time; }
  TimeNs last_time() const { return steps_.empty() ? 0 : steps_.back().time; }
  // Total steps dropped by TrimBefore over the trace's lifetime.
  uint64_t trimmed_steps() const { return trimmed_steps_; }

  void Clear() {
    steps_.clear();
    cum_.clear();
    cursor_ = 0;
    trimmed_steps_ = 0;
  }

  // Snapshot support: persists/overwrites the retained steps, their
  // cumulative-integral offsets (which carry the trimmed prefix's energy)
  // and the lifetime trim counter. The read cursor restarts at zero.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  // Index of the last step with time <= |time|, or -1. Starts at the read
  // cursor and gallops, then remembers the hit — amortized O(1) for monotone
  // query sweeps, O(log n) worst case.
  ptrdiff_t FindIndex(TimeNs time) const;

  // Exact integral over (-inf, t] of the original (never-trimmed) trace;
  // 0.0 before the first retained step.
  double CumulativeAt(TimeNs t) const;

  std::vector<Step> steps_;
  // cum_[i] = integral of the original trace over (-inf, steps_[i].time).
  // Maintained incrementally by Set; TrimBefore only drops array prefixes, so
  // retained entries keep the trimmed prefix's energy as a base offset.
  std::vector<double> cum_;
  mutable size_t cursor_ = 0;
  uint64_t trimmed_steps_ = 0;
};

}  // namespace psbox

#endif  // SRC_BASE_STEP_TRACE_H_
