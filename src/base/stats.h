// Small statistics helpers used by benches and tests.

#ifndef SRC_BASE_STATS_H_
#define SRC_BASE_STATS_H_

#include <cstddef>
#include <vector>

namespace psbox {

// Welford running mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile over a copy of |values| (p in [0, 100]); linear interpolation.
double Percentile(std::vector<double> values, double p);

// Relative difference (b - a) / a, in percent; 0 if a == 0.
double PercentDelta(double a, double b);

}  // namespace psbox

#endif  // SRC_BASE_STATS_H_
