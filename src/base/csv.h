// Small CSV / table output helpers for benches and examples.

#ifndef SRC_BASE_CSV_H_
#define SRC_BASE_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace psbox {

// Streams rows of a CSV file; quoting is not needed for our numeric output.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& cells);
  void WriteHeader(const std::vector<std::string>& names) { WriteRow(names); }

 private:
  std::ostream& out_;
};

// Reads rows of a CSV file (the counterpart of CsvWriter): cells split on
// commas, surrounding whitespace trimmed, blank lines and '#' comment lines
// skipped. No quoting/escapes — our configs are plain identifiers + numbers.
class CsvReader {
 public:
  // Parses in-memory CSV text into rows of cells.
  static std::vector<std::vector<std::string>> Parse(const std::string& text);
  // Reads and parses |path|; on I/O failure returns false and sets |error|
  // to a descriptive message.
  static bool ReadFile(const std::string& path,
                       std::vector<std::vector<std::string>>* rows,
                       std::string* error);
};

// Formats a double with |digits| decimals.
std::string FormatDouble(double v, int digits = 3);

// Renders a compact fixed-width text table (benches print these so that each
// binary regenerates a paper table on stdout).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psbox

#endif  // SRC_BASE_CSV_H_
