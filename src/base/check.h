// Fail-fast assertion macros.
//
// The simulator is deterministic, so any internal inconsistency is a plain
// bug; we abort loudly instead of limping on. CHECK is always on; DCHECK
// compiles out in NDEBUG builds.

#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

#include <sstream>
#include <string>

namespace psbox {

// Aborts the process after printing |message| with source location.
[[noreturn]] void CheckFail(const char* file, int line, const std::string& message);

}  // namespace psbox

#define PSBOX_CHECK(cond)                                                 \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::psbox::CheckFail(__FILE__, __LINE__, "CHECK failed: " #cond);     \
    }                                                                     \
  } while (0)

#define PSBOX_CHECK_OP(op, a, b)                                              \
  do {                                                                        \
    auto va_ = (a);                                                           \
    auto vb_ = (b);                                                           \
    if (!(va_ op vb_)) {                                                      \
      std::ostringstream oss_;                                                \
      oss_ << "CHECK failed: " #a " " #op " " #b " (" << va_ << " vs " << vb_ \
           << ")";                                                            \
      ::psbox::CheckFail(__FILE__, __LINE__, oss_.str());                     \
    }                                                                         \
  } while (0)

#define PSBOX_CHECK_EQ(a, b) PSBOX_CHECK_OP(==, a, b)
#define PSBOX_CHECK_NE(a, b) PSBOX_CHECK_OP(!=, a, b)
#define PSBOX_CHECK_LT(a, b) PSBOX_CHECK_OP(<, a, b)
#define PSBOX_CHECK_LE(a, b) PSBOX_CHECK_OP(<=, a, b)
#define PSBOX_CHECK_GT(a, b) PSBOX_CHECK_OP(>, a, b)
#define PSBOX_CHECK_GE(a, b) PSBOX_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define PSBOX_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define PSBOX_DCHECK(cond) PSBOX_CHECK(cond)
#endif

#endif  // SRC_BASE_CHECK_H_
