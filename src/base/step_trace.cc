#include "src/base/step_trace.h"

#include <algorithm>
#include <limits>

#include "src/base/check.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

void StepTrace::Set(TimeNs time, double value) {
  if (!steps_.empty()) {
    PSBOX_CHECK_GE(time, steps_.back().time);
    if (steps_.back().time == time) {
      // The cumulative integral up to this instant is unaffected: the
      // overwritten value only applies from |time| onwards.
      steps_.back().value = value;
      return;
    }
    if (steps_.back().value == value) {
      return;  // No change; keep the trace compact.
    }
  }
  double cum = 0.0;
  if (!steps_.empty()) {
    const Step& prev = steps_.back();
    cum = cum_.back() + prev.value * ToSeconds(time - prev.time);
  }
  steps_.push_back({time, value});
  cum_.push_back(cum);
}

ptrdiff_t StepTrace::FindIndex(TimeNs time) const {
  if (steps_.empty()) {
    return -1;
  }
  const size_t n = steps_.size();
  // Gallop outward from the cursor to bracket |time|, then binary-search the
  // bracket. Monotone sweeps hit the first probe; far jumps pay O(log gap).
  size_t lo = 0;
  size_t hi = n;
  const size_t c = cursor_ < n ? cursor_ : n - 1;
  if (steps_[c].time <= time) {
    lo = c;
    size_t width = 1;
    while (lo + width < n && steps_[lo + width].time <= time) {
      lo += width;
      width <<= 1;
    }
    hi = std::min(n, lo + width);
  } else {
    hi = c;
    size_t width = 1;
    while (width < hi && steps_[hi - width].time > time) {
      hi -= width;
      width <<= 1;
    }
    lo = width < hi ? hi - width : 0;
    if (steps_[lo].time > time) {
      cursor_ = 0;
      return -1;  // before the first retained step
    }
  }
  // Last step in [lo, hi) with step.time <= time.
  auto it = std::upper_bound(
      steps_.begin() + static_cast<ptrdiff_t>(lo),
      steps_.begin() + static_cast<ptrdiff_t>(hi), time,
      [](TimeNs t, const Step& s) { return t < s.time; });
  const ptrdiff_t idx = (it - steps_.begin()) - 1;
  cursor_ = idx >= 0 ? static_cast<size_t>(idx) : 0;
  return idx;
}

double StepTrace::ValueAt(TimeNs time) const {
  const ptrdiff_t idx = FindIndex(time);
  if (idx < 0) {
    return 0.0;
  }
  return steps_[static_cast<size_t>(idx)].value;
}

double StepTrace::CumulativeAt(TimeNs t) const {
  const ptrdiff_t idx = FindIndex(t);
  if (idx < 0) {
    return 0.0;
  }
  const Step& s = steps_[static_cast<size_t>(idx)];
  return cum_[static_cast<size_t>(idx)] + s.value * ToSeconds(t - s.time);
}

double StepTrace::IntegralOver(TimeNs t0, TimeNs t1) const {
  PSBOX_CHECK_LE(t0, t1);
  if (steps_.empty() || t0 == t1) {
    return 0.0;
  }
  return CumulativeAt(t1) - CumulativeAt(t0);
}

double StepTrace::MeanOver(TimeNs t0, TimeNs t1) const {
  if (t1 <= t0) {
    return 0.0;
  }
  return IntegralOver(t0, t1) / ToSeconds(t1 - t0);
}

std::vector<double> StepTrace::Resample(TimeNs t0, TimeNs t1, DurationNs period) const {
  PSBOX_CHECK_GT(period, 0);
  std::vector<double> out;
  if (t1 <= t0) {
    return out;
  }
  out.reserve(static_cast<size_t>((t1 - t0 + period - 1) / period));
  // One seek for the first point, then a single forward walk: the sweep is
  // monotone by construction, so the inner loop is one comparison against
  // the current segment's end plus a store — not a full lookup per sample.
  Walker walker(*this, t0);
  for (TimeNs t = t0; t < t1; t += period) {
    out.push_back(walker.ValueAt(t));
  }
  if (walker.index() > 0) {
    cursor_ = static_cast<size_t>(walker.index());
  }
  return out;
}

StepTrace::Walker::Walker(const StepTrace& trace, TimeNs start)
    : steps_(&trace.steps_), idx_(trace.FindIndex(start)) {
  value_ = idx_ < 0 ? 0.0 : (*steps_)[static_cast<size_t>(idx_)].value;
  Refill();
}

void StepTrace::Walker::Refill() {
  next_ = idx_ + 1 < static_cast<ptrdiff_t>(steps_->size())
              ? (*steps_)[static_cast<size_t>(idx_ + 1)].time
              : std::numeric_limits<TimeNs>::max();
}

size_t StepTrace::TrimBefore(TimeNs horizon) {
  // Keep the step in effect at |horizon| so every lookup at t >= horizon
  // stays exact; everything before it is dropped. The retained cum_ entries
  // already include the dropped prefix's integral (they are absolute), which
  // is what preserves whole-history IntegralOver queries.
  const ptrdiff_t idx = FindIndex(horizon);
  if (idx <= 0) {
    return 0;
  }
  const size_t drop = static_cast<size_t>(idx);
  steps_.erase(steps_.begin(), steps_.begin() + static_cast<ptrdiff_t>(drop));
  cum_.erase(cum_.begin(), cum_.begin() + static_cast<ptrdiff_t>(drop));
  cursor_ = 0;
  trimmed_steps_ += drop;
  return drop;
}

void StepTrace::SaveState(SnapshotWriter& w) const {
  w.U64(steps_.size());
  for (const Step& s : steps_) {
    w.I64(s.time);
    w.F64(s.value);
  }
  for (double c : cum_) {
    w.F64(c);
  }
  w.U64(trimmed_steps_);
}

void StepTrace::RestoreState(SnapshotReader& r) {
  const size_t n = r.Count(sizeof(TimeNs) + sizeof(double));
  steps_.clear();
  steps_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const TimeNs time = r.I64();
    const double value = r.F64();
    steps_.push_back(Step{time, value});
  }
  cum_.clear();
  cum_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    cum_.push_back(r.F64());
  }
  cursor_ = 0;
  trimmed_steps_ = r.U64();
}

}  // namespace psbox
