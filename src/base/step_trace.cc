#include "src/base/step_trace.h"

#include <algorithm>

#include "src/base/check.h"

namespace psbox {

void StepTrace::Set(TimeNs time, double value) {
  if (!steps_.empty()) {
    PSBOX_CHECK_GE(time, steps_.back().time);
    if (steps_.back().time == time) {
      steps_.back().value = value;
      return;
    }
    if (steps_.back().value == value) {
      return;  // No change; keep the trace compact.
    }
  }
  steps_.push_back({time, value});
}

ptrdiff_t StepTrace::FindIndex(TimeNs time) const {
  // Last step with step.time <= time.
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), time,
      [](TimeNs t, const Step& s) { return t < s.time; });
  return static_cast<ptrdiff_t>(it - steps_.begin()) - 1;
}

double StepTrace::ValueAt(TimeNs time) const {
  const ptrdiff_t idx = FindIndex(time);
  if (idx < 0) {
    return 0.0;
  }
  return steps_[static_cast<size_t>(idx)].value;
}

double StepTrace::IntegralOver(TimeNs t0, TimeNs t1) const {
  PSBOX_CHECK_LE(t0, t1);
  if (steps_.empty() || t0 == t1) {
    return 0.0;
  }
  double total = 0.0;
  ptrdiff_t idx = FindIndex(t0);
  TimeNs cursor = t0;
  while (cursor < t1) {
    const double value = idx < 0 ? 0.0 : steps_[static_cast<size_t>(idx)].value;
    const TimeNs next_step = (static_cast<size_t>(idx + 1) < steps_.size())
                                 ? steps_[static_cast<size_t>(idx + 1)].time
                                 : t1;
    const TimeNs segment_end = std::min(next_step, t1);
    total += value * ToSeconds(segment_end - cursor);
    cursor = segment_end;
    ++idx;
  }
  return total;
}

double StepTrace::MeanOver(TimeNs t0, TimeNs t1) const {
  if (t1 <= t0) {
    return 0.0;
  }
  return IntegralOver(t0, t1) / ToSeconds(t1 - t0);
}

std::vector<double> StepTrace::Resample(TimeNs t0, TimeNs t1, DurationNs period) const {
  PSBOX_CHECK_GT(period, 0);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(std::max<int64_t>(0, (t1 - t0) / period)));
  for (TimeNs t = t0; t < t1; t += period) {
    out.push_back(ValueAt(t));
  }
  return out;
}

}  // namespace psbox
