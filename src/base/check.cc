#include "src/base/check.h"

#include <cstdio>
#include <cstdlib>

namespace psbox {

void CheckFail(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[psbox] %s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace psbox
