// Discrete-event simulation core.
//
// A Simulator owns the simulated clock and a priority queue of events. All
// hardware and kernel models are callback-driven: they schedule events, and
// the simulator fires them in (time, insertion-order) order so that runs are
// deterministic. Events can be cancelled via the EventId handle, which the
// schedulers use for pending-preemption and timer management.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/base/check.h"
#include "src/base/time.h"

namespace psbox {

using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules |fn| to run at absolute simulated time |when| (>= Now()).
  EventId ScheduleAt(TimeNs when, std::function<void()> fn);

  // Schedules |fn| to run |delay| after Now().
  EventId ScheduleAfter(DurationNs delay, std::function<void()> fn) {
    PSBOX_CHECK_GE(delay, 0);
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a no-op; returns whether anything was cancelled.
  bool Cancel(EventId id);

  // Runs events until the queue drains or the clock would pass |deadline|.
  // Events scheduled exactly at |deadline| do run. Returns the number of
  // events fired.
  size_t RunUntil(TimeNs deadline);

  // Runs until the queue is empty.
  size_t RunToCompletion();

  // True if an event with |id| is still pending.
  bool IsPending(EventId id) const { return closures_.count(id) > 0; }

  size_t pending_events() const { return closures_.size(); }
  uint64_t total_fired() const { return total_fired_; }
  // Tombstones swept out of the heap by compaction (see MaybeCompact). A
  // cheap proxy for how much cancel-heavy workloads stress the queue.
  uint64_t tombstones_compacted() const { return tombstones_compacted_; }

 private:
  // Heap entries carry only ordering state; the closure lives in |closures_|
  // so that Cancel can release its captures eagerly. A heap entry whose id is
  // no longer in |closures_| is a tombstone and is skipped on pop — cancelled
  // events therefore cost O(log n) heap residue but never keep captured
  // objects (e.g. |this| pointers) alive until the queue drains past them.
  // When tombstones outnumber live entries the heap is compacted in one
  // O(n) sweep (timer-heavy workloads re-arm watchdogs far more often than
  // they let them fire, so residue would otherwise dominate the heap).
  struct Event {
    TimeNs when;
    uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Pops the next live event into |out|; false when the queue is exhausted
  // or the next live event lies past |deadline| (no deadline when < 0).
  bool PopNext(TimeNs deadline, Event* out, std::function<void()>* fn);
  // Sweeps tombstones out of the heap once they exceed half of it.
  void MaybeCompact();

  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  uint64_t total_fired_ = 0;
  uint64_t tombstones_ = 0;  // cancelled entries still in the heap
  uint64_t tombstones_compacted_ = 0;
  // Binary heap ordered by EventLater (std::push_heap/pop_heap), kept as a
  // plain vector so compaction can erase tombstones in place.
  std::vector<Event> queue_;
  std::unordered_map<EventId, std::function<void()>> closures_;
};

}  // namespace psbox

#endif  // SRC_SIM_SIMULATOR_H_
