// Discrete-event simulation core.
//
// A Simulator owns the simulated clock and the pending-event queue. All
// hardware and kernel models are callback-driven: they schedule events, and
// the simulator fires them in exact (time, insertion-order) order so that
// runs are deterministic down to the bit.
//
// The queue is a two-level hierarchical timing wheel with a binary heap
// demoted to an overflow level for far-future events:
//
//   level 0   256 buckets x 2^16 ns  — covers ~16.8 ms past the wheel clock
//   level 1   256 buckets x 2^24 ns  — covers ~4.29 s past the wheel clock
//   overflow  binary heap            — everything farther out
//
// Buckets are indexed by absolute time bits ((when >> shift) & 255), so
// insertion is O(1) with no per-event comparisons. Short-horizon traffic
// (scheduler ticks, watchdog pets, retransmit backoff) lands in level 0 and
// never touches a comparison-based structure; level-1 buckets redistribute
// into level 0 when the wheel clock enters their 16.8 ms window; overflow
// events stay in the heap until the wheel drains below them (they are fired
// straight from the heap, never migrated). When a level-0 bucket becomes the
// earliest pending work it is sorted once by (time, seq) into a "due list"
// that subsequent pops consume in order — same-time FIFO holds across all
// three levels because every candidate comparison is on the exact
// (time, seq) key.
//
// Closures live in an EventSlab (see event_slab.h): small-buffer slots
// addressed by generation-tagged EventIds. Cancel and IsPending are O(1) —
// cancelling frees the slot (releasing captures eagerly) and bumps its
// generation, which invalidates the queue entry in place; no tombstone
// sweeping is needed outside the overflow heap. Re-arm-heavy paths
// (cancel + schedule, or the in-place Reschedule) therefore perform no heap
// allocation and no O(log n) sift in steady state.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/base/time.h"
#include "src/sim/event_slab.h"

namespace psbox {

// Handle to a pending event: (slot+1) in the high 32 bits, the slot's odd
// generation in the low 32. The +1 bias keeps small raw integers (and 0 ==
// kInvalidEventId) from aliasing slot 0.
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  // Engine-internals counters, exposed for tests and benches.
  struct EngineStats {
    uint64_t bucket_activations = 0;  // level-0 buckets sorted into the due list
    uint64_t cascades = 0;            // level-1 buckets redistributed to level 0
    uint64_t overflow_inserts = 0;    // events parked in the far-future heap
    uint64_t overflow_compacted = 0;  // dead entries swept out of that heap
    uint64_t cancelled = 0;
    uint64_t rescheduled = 0;
    uint64_t closure_heap_allocs = 0;  // closures too big for inline slots
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimeNs Now() const { return now_; }

  // Schedules |fn| to run at absolute simulated time |when| (>= Now()).
  template <typename Fn>
  EventId ScheduleAt(TimeNs when, Fn&& fn) {
    PSBOX_CHECK_GE(when, now_);
    const uint32_t slot = slab_.Alloc();
    if (!slab_[slot].closure.Emplace(std::forward<Fn>(fn))) {
      ++stats_.closure_heap_allocs;
    }
    InsertPending(when, slot);
    return MakeEventId(slot, slab_[slot].generation);
  }

  // Schedules |fn| to run |delay| after Now().
  template <typename Fn>
  EventId ScheduleAfter(DurationNs delay, Fn&& fn) {
    PSBOX_CHECK_GE(delay, 0);
    return ScheduleAt(now_ + delay, std::forward<Fn>(fn));
  }

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a no-op; returns whether anything was cancelled.
  bool Cancel(EventId id);

  // Moves a pending event to fire at |when| (>= Now()) instead, keeping its
  // closure in place — the O(1) re-arm path for watchdog pets and timer
  // extensions. Returns the event's new id (the old one is retired), or
  // kInvalidEventId if |id| was no longer pending. Consumes one insertion
  // sequence number, exactly like Cancel + ScheduleAt, so firing order is
  // identical to the cancel-and-recreate idiom.
  EventId Reschedule(EventId id, TimeNs when);

  // Runs events until the queue drains or the clock would pass |deadline|.
  // Events scheduled exactly at |deadline| do run. Returns the number of
  // events fired.
  size_t RunUntil(TimeNs deadline);

  // Runs until the queue is empty.
  size_t RunToCompletion();

  // True if an event with |id| is still pending. O(1): the slot's current
  // generation matches iff this exact handle is still live.
  bool IsPending(EventId id) const {
    const uint32_t slot = SlotOf(id);
    return slot < slab_.size() && slab_[slot].generation == GenOf(id) &&
           (GenOf(id) & 1u) == 1u;
  }

  // Ordering key of a pending event: its firing time and the insertion
  // sequence number that breaks same-time ties. Checkpointing persists this
  // so restore can replay re-arms in the original firing order.
  struct PendingEventInfo {
    TimeNs when = 0;
    uint64_t seq = 0;
  };
  PendingEventInfo PendingInfo(EventId id) const {
    PSBOX_CHECK(IsPending(id));
    const EventSlab::Slot& s = slab_[SlotOf(id)];
    return PendingEventInfo{s.when, s.seq};
  }

  // Snapshot-restore support: discards every pending event and resets the
  // clock and sequence space so the restored subsystems can re-arm their
  // pending work from scratch. Only valid at a quiescent point (between
  // RunUntil calls); the caller is responsible for re-arming in original
  // seq order so that same-time ties break as in the uninterrupted run.
  void ResetForRestore(TimeNs now, uint64_t total_fired);

  // Insertion-sequence counter, exposed for checkpointing: persisting it and
  // re-arming every pending event under its original seq (see
  // SetNextSeqForRestore) makes a restored engine's sequence space — and
  // hence every later snapshot's bytes — identical to the uninterrupted
  // run's.
  uint64_t next_seq() const { return next_seq_; }
  // Restore-only: forces the seq the next ScheduleAt will consume. Called by
  // EventRearmer::Replay before each re-arm, and once more afterwards to
  // land the counter on the checkpointed value.
  void SetNextSeqForRestore(uint64_t seq) { next_seq_ = seq; }

  size_t pending_events() const { return live_; }
  // Debug aid for census failures: (when, seq) of every live pending event,
  // in slab order.
  std::vector<PendingEventInfo> DebugPendingEvents() const {
    std::vector<PendingEventInfo> out;
    for (size_t i = 0; i < slab_.size(); ++i) {
      const EventSlab::Slot& s = slab_[i];
      if ((s.generation & 1u) == 1u) {
        out.push_back(PendingEventInfo{s.when, s.seq});
      }
    }
    return out;
  }
  uint64_t total_fired() const { return total_fired_; }
  const EngineStats& stats() const { return stats_; }

 private:
  // Wheel geometry. Level 0 buckets span 2^16 ns (65.536 us) and one level-0
  // window spans 2^24 ns; level 1 buckets span one level-0 window and one
  // level-1 window spans 2^32 ns (~4.29 s). Absolute bit indexing makes the
  // level test a shift+compare against wheel_time_.
  static constexpr int kShiftL0 = 16;
  static constexpr int kShiftL1 = 24;
  static constexpr int kShiftOverflow = 32;
  static constexpr size_t kWheelSlots = 256;
  static constexpr uint64_t kWheelMask = kWheelSlots - 1;
  static constexpr size_t kBitmapWords = kWheelSlots / 64;

  // Queue entries are POD ordering records; the closure stays in the slab.
  // An entry whose generation no longer matches its slot is stale (the event
  // was cancelled or rescheduled) and is dropped wherever it surfaces.
  struct Entry {
    TimeNs when;
    uint64_t seq;  // tie-break: FIFO among same-time events
    uint32_t slot;
    uint32_t gen;
  };
  struct EntryBefore {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when < b.when;
      }
      return a.seq < b.seq;
    }
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  static EventId MakeEventId(uint32_t slot, uint32_t gen) {
    return (static_cast<uint64_t>(slot) + 1) << 32 | gen;
  }
  static uint32_t SlotOf(EventId id) {
    return static_cast<uint32_t>((id >> 32) - 1);  // wraps to huge for id < 2^32
  }
  static uint32_t GenOf(EventId id) { return static_cast<uint32_t>(id); }

  bool Alive(const Entry& e) const {
    return slab_[e.slot].generation == e.gen;
  }

  // Routes a fresh (when, next_seq_) entry for |slot| into the due list,
  // a wheel bucket, or the overflow heap.
  void InsertPending(TimeNs when, uint32_t slot);
  // Pops the next live event into |out| and moves its closure into |fn|
  // (freeing the slot first, so the callback may re-arm into it); false when
  // the queue is exhausted or the next live event lies past |deadline|
  // (no deadline when < 0).
  bool PopNext(TimeNs deadline, Entry* out, ClosureSlot* fn);
  // Advances the wheel clock, cascading the level-1 bucket that covers the
  // new position when a level-0 window boundary is crossed.
  void AdvanceWheelTime(TimeNs t);
  // Sorts level-0 bucket |b| into the due list.
  void ActivateBucket(size_t b);
  // Redistributes level-1 bucket |b| into level-0 buckets.
  void CascadeBucket(size_t b);
  // Frees the popped entry's slot, moving its closure out into |fn|.
  void TakeClosure(const Entry& e, ClosureSlot* fn);
  // Sweeps dead entries out of the overflow heap once they exceed half of it.
  void MaybeCompactOverflow();

  TimeNs Level0BucketStart(size_t b) const {
    const uint64_t window =
        static_cast<uint64_t>(wheel_time_) >> kShiftL1 << kShiftL1;
    return static_cast<TimeNs>(window | (static_cast<uint64_t>(b) << kShiftL0));
  }
  TimeNs Level1BucketStart(size_t b) const {
    const uint64_t window =
        static_cast<uint64_t>(wheel_time_) >> kShiftOverflow << kShiftOverflow;
    return static_cast<TimeNs>(window | (static_cast<uint64_t>(b) << kShiftL1));
  }

  using Bitmap = std::array<uint64_t, kBitmapWords>;
  static void SetBit(Bitmap& bm, size_t b) { bm[b >> 6] |= uint64_t{1} << (b & 63); }
  static void ClearBit(Bitmap& bm, size_t b) {
    bm[b >> 6] &= ~(uint64_t{1} << (b & 63));
  }
  static bool TestBit(const Bitmap& bm, size_t b) {
    return (bm[b >> 6] >> (b & 63)) & 1;
  }
  // Lowest set bit, or -1 when empty.
  static int FirstBit(const Bitmap& bm);

  TimeNs now_ = 0;
  // Logical wheel position: always <= the time of every pending event, so
  // whenever it crosses a window boundary the structures that would alias
  // across that boundary are provably empty (see AdvanceWheelTime).
  TimeNs wheel_time_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t total_fired_ = 0;
  size_t live_ = 0;  // pending (non-cancelled) events
  EngineStats stats_;

  EventSlab slab_;

  // Active level-0 bucket, sorted by (when, seq); due_pos_ is the read head.
  // In-bucket insertions while draining splice into the unread suffix.
  std::vector<Entry> due_;
  size_t due_pos_ = 0;
  bool due_active_ = false;
  TimeNs due_end_ = 0;  // exclusive end of the active bucket's time range

  std::array<std::vector<Entry>, kWheelSlots> level0_;
  std::array<std::vector<Entry>, kWheelSlots> level1_;
  Bitmap bitmap0_{};
  Bitmap bitmap1_{};

  // Far-future overflow: binary heap ordered by EntryLater. Entries are fired
  // straight from the heap (never migrated into the wheel); dead entries are
  // swept in one O(n) pass when they outnumber the live ones.
  std::vector<Entry> overflow_;
  uint64_t overflow_dead_ = 0;
};

}  // namespace psbox

#endif  // SRC_SIM_SIMULATOR_H_
