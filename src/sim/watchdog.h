// Generic watchdog timer for driver recovery paths.
//
// A Watchdog wraps the classic arm/pet/expire pattern over the simulator's
// event queue: Arm() starts the countdown, Pet() restarts it (progress was
// observed), Disarm() stops it, and if the countdown ever reaches zero the
// expiry callback fires exactly once per arming. Drivers use it to detect
// wedged hardware (a command that never completes, a drain phase that never
// empties) and trigger their reset / abort recovery paths.
//
// Re-arming an armed watchdog goes through Simulator::Reschedule, the O(1)
// in-place re-arm path: the pending closure stays in its slab slot and only
// the firing time moves, so the high-rate arm/pet pattern of a per-command
// watchdog performs no allocation and accumulates no captured state.

#ifndef SRC_SIM_WATCHDOG_H_
#define SRC_SIM_WATCHDOG_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "src/base/check.h"
#include "src/sim/simulator.h"

namespace psbox {

class Watchdog {
 public:
  // |on_expire| runs from event context when the countdown elapses without a
  // Pet(). The watchdog is disarmed when it fires; the callback may re-Arm().
  Watchdog(Simulator* sim, DurationNs timeout, std::function<void()> on_expire)
      : sim_(sim), timeout_(timeout), on_expire_(std::move(on_expire)) {
    PSBOX_CHECK_GT(timeout_, 0);
  }
  ~Watchdog() { Disarm(); }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Starts (or restarts) the countdown.
  void Arm() {
    if (event_ != kInvalidEventId) {
      // The expiry closure is unchanged; only the deadline moves.
      event_ = sim_->Reschedule(event_, sim_->Now() + timeout_);
      PSBOX_DCHECK(event_ != kInvalidEventId);
      return;
    }
    event_ = sim_->ScheduleAfter(timeout_, [this] { Expire(); });
  }

  // Re-arms at an absolute deadline: the snapshot-restore path, replaying a
  // countdown that was in flight when the checkpoint was taken.
  void RearmAt(TimeNs when) {
    PSBOX_DCHECK(event_ == kInvalidEventId);
    event_ = sim_->ScheduleAt(when, [this] { Expire(); });
  }

  // Restarts the countdown iff currently armed (progress heartbeat).
  void Pet() {
    if (armed()) {
      Arm();
    }
  }

  void Disarm() {
    if (event_ != kInvalidEventId) {
      sim_->Cancel(event_);
      event_ = kInvalidEventId;
    }
  }

  void set_timeout(DurationNs timeout) {
    PSBOX_CHECK_GT(timeout, 0);
    timeout_ = timeout;
  }
  DurationNs timeout() const { return timeout_; }

  bool armed() const { return event_ != kInvalidEventId; }
  EventId event() const { return event_; }
  uint64_t fires() const { return fires_; }
  void set_fires(uint64_t fires) { fires_ = fires; }

 private:
  void Expire() {
    event_ = kInvalidEventId;
    ++fires_;
    on_expire_();
  }

  Simulator* sim_;
  DurationNs timeout_;
  std::function<void()> on_expire_;
  EventId event_ = kInvalidEventId;
  uint64_t fires_ = 0;
};

}  // namespace psbox

#endif  // SRC_SIM_WATCHDOG_H_
