// Seeded, deterministic fault injection.
//
// A FaultPlan declares what may go wrong during a run: probabilistic faults
// (an accelerator command hangs, a WiFi TX frame is lost on the air, a CPU
// frequency transition fails) and scheduled fault windows (WiFi link flaps,
// power-meter sample dropouts). The FaultInjector turns the plan into
// per-component decision hooks that the hardware models consult.
//
// Determinism: every probabilistic decision draws from a private RNG stream
// derived from the plan seed and the *scope* name (e.g. "gpu", "dsp",
// "wifi", "cpu"), so two runs with the same plan make bit-identical
// decisions, and adding a fault consumer in one component never perturbs the
// decisions seen by another. Scheduled windows are pure functions of time.
//
// The injector is passive — it never schedules events itself. Components ask
// at their own decision points (dispatch, frame completion, OPP transition,
// sample generation), which keeps the event order of a faultless run
// untouched: a default FaultPlan injects nothing.

#ifndef SRC_SIM_FAULT_INJECTOR_H_
#define SRC_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"

namespace psbox {

// A half-open window [begin, end) of simulated time during which a scheduled
// fault is active.
struct FaultWindow {
  TimeNs begin = 0;
  TimeNs end = 0;
};

struct FaultPlan {
  uint64_t seed = 0xFA17;

  // --- Accelerator command faults (scoped per device: "gpu", "dsp") -------
  // Probability that a dispatched command wedges the engine: it occupies its
  // slot and never completes until the driver resets the device.
  double accel_hang_prob = 0.0;
  // Probability that a dispatched command suffers a latency spike (thermal
  // throttle / memory stall): its work is stretched by accel_latency_factor.
  double accel_latency_prob = 0.0;
  double accel_latency_factor = 4.0;

  // --- WiFi faults --------------------------------------------------------
  // Probability that a TX frame is corrupted on the air (consumes airtime,
  // never ACKed; the driver must retransmit).
  double wifi_tx_loss_prob = 0.0;
  // Link-flap windows: every TX frame completing inside one is lost.
  std::vector<FaultWindow> wifi_link_down;

  // --- Power-meter faults -------------------------------------------------
  // Sample-dropout windows: the DAQ returns no samples and rail readings are
  // unavailable; virtual meters must fall back to model-based estimation.
  std::vector<FaultWindow> meter_dropout;

  // --- CPU DVFS faults ----------------------------------------------------
  // Probability that an OPP transition fails (regulator timeout): the
  // hardware stays at the previous operating point and reports failure.
  double freq_fail_prob = 0.0;

  // --- Storage faults (scope "storage") -----------------------------------
  // Probability that a dispatched flash command wedges the channel: it holds
  // the bus busy (and the rail hot) and never completes until the driver
  // resets the controller.
  double storage_hang_prob = 0.0;

  // --- Snapshot faults (scope "snapshot") ---------------------------------
  // Probability that a checkpoint or evacuation snapshot suffers a torn
  // write (power cut mid-flush): the written bytes are truncated at an
  // arbitrary point and the CRC no longer matches. Consumers must reject the
  // snapshot and fall back (e.g. crash evacuation degrades to a drain).
  double snapshot_corrupt_prob = 0.0;

  // True when the plan can inject anything at all.
  bool Any() const {
    return accel_hang_prob > 0.0 || accel_latency_prob > 0.0 ||
           wifi_tx_loss_prob > 0.0 || !wifi_link_down.empty() ||
           !meter_dropout.empty() || freq_fail_prob > 0.0 ||
           storage_hang_prob > 0.0 || snapshot_corrupt_prob > 0.0;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- probabilistic decision hooks (consume the scope's RNG stream) ------
  bool ShouldHangCommand(const std::string& scope);
  // Returns the work multiplier for a freshly dispatched command; 1.0 means
  // no spike.
  double CommandLatencyFactor(const std::string& scope);
  bool ShouldDropTxFrame(TimeNs now);
  bool ShouldFailFreqTransition(const std::string& scope);
  bool ShouldHangStorageCommand();
  bool ShouldCorruptSnapshot();

  // --- scheduled-window queries (pure functions of time) ------------------
  bool LinkUpAt(TimeNs t) const;
  bool MeterDroppedAt(TimeNs t) const;
  // Total overlap of meter-dropout windows with [t0, t1).
  DurationNs MeterDroppedWithin(TimeNs t0, TimeNs t1) const;
  // Normalised (sorted, merged) dropout windows, for interval subtraction.
  const std::vector<FaultWindow>& meter_dropouts() const { return meter_dropout_; }

  struct Stats {
    uint64_t accel_hangs = 0;
    uint64_t accel_latency_spikes = 0;
    uint64_t wifi_frames_dropped = 0;
    uint64_t freq_transition_fails = 0;
    uint64_t storage_hangs = 0;
    uint64_t snapshots_corrupted = 0;
    uint64_t Total() const {
      return accel_hangs + accel_latency_spikes + wifi_frames_dropped +
             freq_transition_fails + storage_hangs + snapshots_corrupted;
    }
  };
  const Stats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }

  // Snapshot support: persists/overwrites the per-scope RNG stream states
  // and the fault counters (the plan itself is configuration, not state).
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  // Independent deterministic stream for |scope|, derived from the plan seed
  // and the scope name (not from call order).
  Rng& StreamFor(const std::string& scope);

  FaultPlan plan_;
  std::vector<FaultWindow> wifi_link_down_;
  std::vector<FaultWindow> meter_dropout_;
  std::map<std::string, Rng> streams_;
  Stats stats_;
};

}  // namespace psbox

#endif  // SRC_SIM_FAULT_INJECTOR_H_
