#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>

namespace psbox {

int Simulator::FirstBit(const Bitmap& bm) {
  for (size_t w = 0; w < kBitmapWords; ++w) {
    if (bm[w] != 0) {
      return static_cast<int>(w * 64 +
                              static_cast<size_t>(std::countr_zero(bm[w])));
    }
  }
  return -1;
}

void Simulator::InsertPending(TimeNs when, uint32_t slot) {
  EventSlab::Slot& s = slab_[slot];
  s.in_overflow = false;
  const Entry e{when, next_seq_++, slot, s.generation};
  s.when = when;
  s.seq = e.seq;
  ++live_;
  const uint64_t w = static_cast<uint64_t>(when);
  const uint64_t wt = static_cast<uint64_t>(wheel_time_);
  if (due_active_ && when < due_end_) {
    // Lands in the bucket currently being drained: splice into the unread
    // suffix. Correct because |when| >= now_ >= every already-consumed entry,
    // and the new entry carries the largest seq, so it can only belong at or
    // after the read head.
    auto it = std::upper_bound(due_.begin() + static_cast<ptrdiff_t>(due_pos_),
                               due_.end(), e, EntryBefore{});
    due_.insert(it, e);
  } else if ((w >> kShiftL1) == (wt >> kShiftL1)) {
    const size_t b = (w >> kShiftL0) & kWheelMask;
    level0_[b].push_back(e);
    SetBit(bitmap0_, b);
  } else if ((w >> kShiftOverflow) == (wt >> kShiftOverflow)) {
    const size_t b = (w >> kShiftL1) & kWheelMask;
    level1_[b].push_back(e);
    SetBit(bitmap1_, b);
  } else {
    overflow_.push_back(e);
    std::push_heap(overflow_.begin(), overflow_.end(), EntryLater{});
    s.in_overflow = true;
    ++stats_.overflow_inserts;
  }
}

bool Simulator::Cancel(EventId id) {
  if (!IsPending(id)) {
    return false;
  }
  const uint32_t slot = SlotOf(id);
  if (slab_[slot].in_overflow) {
    ++overflow_dead_;
  }
  // Freeing destroys the closure (captures released eagerly) and bumps the
  // slot generation, which turns the queue entry stale wherever it sits —
  // no tombstone is left behind in the wheel.
  slab_.Free(slot);
  --live_;
  ++stats_.cancelled;
  MaybeCompactOverflow();
  return true;
}

EventId Simulator::Reschedule(EventId id, TimeNs when) {
  PSBOX_CHECK_GE(when, now_);
  if (!IsPending(id)) {
    return kInvalidEventId;
  }
  const uint32_t slot = SlotOf(id);
  EventSlab::Slot& s = slab_[slot];
  if (s.in_overflow) {
    ++overflow_dead_;
  }
  // Retire the old handle without freeing the slot: bumping by 2 keeps the
  // generation odd (still pending) while invalidating the old queue entry.
  // The closure never moves.
  s.generation += 2;
  --live_;  // InsertPending re-counts it
  ++stats_.rescheduled;
  InsertPending(when, slot);
  MaybeCompactOverflow();
  return MakeEventId(slot, s.generation);
}

void Simulator::MaybeCompactOverflow() {
  if (overflow_dead_ <= overflow_.size() / 2) {
    return;
  }
  // One O(n) sweep; survivor ordering is untouched ((when, seq) keys don't
  // change), so determinism is preserved.
  overflow_.erase(std::remove_if(overflow_.begin(), overflow_.end(),
                                 [this](const Entry& e) { return !Alive(e); }),
                  overflow_.end());
  std::make_heap(overflow_.begin(), overflow_.end(), EntryLater{});
  stats_.overflow_compacted += overflow_dead_;
  overflow_dead_ = 0;
}

void Simulator::AdvanceWheelTime(TimeNs t) {
  if (t <= wheel_time_) {
    return;
  }
  const uint64_t old_pos = static_cast<uint64_t>(wheel_time_);
  wheel_time_ = t;
  const uint64_t new_pos = static_cast<uint64_t>(t);
  if ((old_pos >> kShiftL1) != (new_pos >> kShiftL1)) {
    // Entered a new level-0 window: the level-1 bucket covering it may hold
    // events for this window, which must redistribute into level 0 before
    // any level-0 scan. Buckets for skipped windows are provably empty —
    // their whole range precedes the new wheel position, and wheel_time_
    // never overtakes a pending event.
    const size_t b = (new_pos >> kShiftL1) & kWheelMask;
    if (TestBit(bitmap1_, b)) {
      CascadeBucket(b);
    }
  }
}

void Simulator::ActivateBucket(size_t b) {
  PSBOX_DCHECK(due_pos_ >= due_.size());
  const TimeNs start = Level0BucketStart(b);
  due_.clear();
  due_pos_ = 0;
  std::vector<Entry>& bucket = level0_[b];
  for (const Entry& e : bucket) {
    if (Alive(e)) {
      due_.push_back(e);
    }
  }
  bucket.clear();
  ClearBit(bitmap0_, b);
  std::sort(due_.begin(), due_.end(), EntryBefore{});
  due_active_ = true;
  due_end_ = start + (TimeNs{1} << kShiftL0);
  if (wheel_time_ < start) {
    // Same level-0 window as the current position, so no cascade check.
    wheel_time_ = start;
  }
  ++stats_.bucket_activations;
}

void Simulator::CascadeBucket(size_t b) {
  // Only called once the wheel clock is inside this bucket's window, so every
  // live entry maps to a level-0 bucket of the current window.
  std::vector<Entry>& bucket = level1_[b];
  for (const Entry& e : bucket) {
    if (!Alive(e)) {
      continue;
    }
    const size_t b0 = (static_cast<uint64_t>(e.when) >> kShiftL0) & kWheelMask;
    level0_[b0].push_back(e);
    SetBit(bitmap0_, b0);
  }
  bucket.clear();
  ClearBit(bitmap1_, b);
  ++stats_.cascades;
}

void Simulator::TakeClosure(const Entry& e, ClosureSlot* fn) {
  EventSlab::Slot& s = slab_[e.slot];
  PSBOX_DCHECK(s.generation == e.gen);
  // Move the closure out and free the slot before invoking, so the callback
  // can re-arm into the very slot it fired from.
  s.closure.RelocateTo(fn);
  slab_.Free(e.slot);
  --live_;
}

bool Simulator::PopNext(TimeNs deadline, Entry* out, ClosureSlot* fn) {
  for (;;) {
    // Drop stale (cancelled/rescheduled) entries at the due read head and at
    // the overflow top, so the candidate comparison below sees live events.
    while (due_pos_ < due_.size() && !Alive(due_[due_pos_])) {
      ++due_pos_;
    }
    while (!overflow_.empty() && !Alive(overflow_.front())) {
      std::pop_heap(overflow_.begin(), overflow_.end(), EntryLater{});
      overflow_.pop_back();
      PSBOX_DCHECK(overflow_dead_ > 0);
      --overflow_dead_;
    }
    if (due_pos_ < due_.size()) {
      // The active bucket holds the earliest wheel events; only the overflow
      // heap can undercut it (the wheel clock may have caught up with a
      // once-far-future event). Exact (when, seq) comparison keeps same-time
      // FIFO across the two structures.
      const Entry& d = due_[due_pos_];
      const bool heap_first =
          !overflow_.empty() && EntryBefore{}(overflow_.front(), d);
      const Entry& best = heap_first ? overflow_.front() : d;
      if (deadline >= 0 && best.when > deadline) {
        return false;
      }
      *out = best;
      if (heap_first) {
        std::pop_heap(overflow_.begin(), overflow_.end(), EntryLater{});
        overflow_.pop_back();
      } else {
        ++due_pos_;
      }
      TakeClosure(*out, fn);
      return true;
    }
    // Due list exhausted: the next wheel work is the first occupied level-0
    // bucket, else the first occupied level-1 bucket, else only the heap.
    const int b0 = FirstBit(bitmap0_);
    if (b0 >= 0) {
      const TimeNs start = Level0BucketStart(static_cast<size_t>(b0));
      if (!overflow_.empty() && overflow_.front().when < start) {
        // Every wheel event is >= start, so the heap top fires first.
        if (deadline >= 0 && overflow_.front().when > deadline) {
          return false;
        }
        *out = overflow_.front();
        std::pop_heap(overflow_.begin(), overflow_.end(), EntryLater{});
        overflow_.pop_back();
        TakeClosure(*out, fn);
        return true;
      }
      if (deadline >= 0 && start > deadline) {
        return false;
      }
      ActivateBucket(static_cast<size_t>(b0));
      continue;
    }
    const int b1 = FirstBit(bitmap1_);
    if (b1 >= 0) {
      const TimeNs start = Level1BucketStart(static_cast<size_t>(b1));
      if (!overflow_.empty() && overflow_.front().when < start) {
        if (deadline >= 0 && overflow_.front().when > deadline) {
          return false;
        }
        *out = overflow_.front();
        std::pop_heap(overflow_.begin(), overflow_.end(), EntryLater{});
        overflow_.pop_back();
        TakeClosure(*out, fn);
        return true;
      }
      if (deadline >= 0 && start > deadline) {
        return false;
      }
      // Entering the bucket's window cascades it into level 0.
      AdvanceWheelTime(start);
      PSBOX_DCHECK(!TestBit(bitmap1_, static_cast<size_t>(b1)));
      continue;
    }
    if (!overflow_.empty()) {
      if (deadline >= 0 && overflow_.front().when > deadline) {
        return false;
      }
      *out = overflow_.front();
      std::pop_heap(overflow_.begin(), overflow_.end(), EntryLater{});
      overflow_.pop_back();
      TakeClosure(*out, fn);
      return true;
    }
    return false;
  }
}

size_t Simulator::RunUntil(TimeNs deadline) {
  size_t fired = 0;
  Entry ev;
  ClosureSlot fn;
  while (PopNext(deadline, &ev, &fn)) {
    PSBOX_CHECK_GE(ev.when, now_);
    now_ = ev.when;
    AdvanceWheelTime(now_);
    ++total_fired_;
    ++fired;
    fn.Invoke();
    fn.Destroy();
  }
  if (now_ < deadline) {
    now_ = deadline;
    AdvanceWheelTime(now_);
  }
  return fired;
}

void Simulator::ResetForRestore(TimeNs now, uint64_t total_fired) {
  // Free every pending slot (destroying captured state) so the restored
  // subsystems start from an empty queue. Slot generations keep advancing,
  // which is all stale EventIds held by those subsystems need.
  for (uint32_t i = 0; i < slab_.size(); ++i) {
    if ((slab_[i].generation & 1u) == 1u) {
      slab_.Free(i);
    }
  }
  due_.clear();
  due_pos_ = 0;
  due_active_ = false;
  due_end_ = 0;
  for (size_t b = 0; b < kWheelSlots; ++b) {
    level0_[b].clear();
    level1_[b].clear();
  }
  bitmap0_ = Bitmap{};
  bitmap1_ = Bitmap{};
  overflow_.clear();
  overflow_dead_ = 0;
  live_ = 0;
  next_seq_ = 1;
  now_ = now;
  wheel_time_ = now;
  total_fired_ = total_fired;
}

size_t Simulator::RunToCompletion() {
  size_t fired = 0;
  Entry ev;
  ClosureSlot fn;
  while (PopNext(/*deadline=*/-1, &ev, &fn)) {
    PSBOX_CHECK_GE(ev.when, now_);
    now_ = ev.when;
    AdvanceWheelTime(now_);
    ++total_fired_;
    ++fired;
    fn.Invoke();
    fn.Destroy();
  }
  return fired;
}

}  // namespace psbox
