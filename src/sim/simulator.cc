#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

namespace psbox {

EventId Simulator::ScheduleAt(TimeNs when, std::function<void()> fn) {
  PSBOX_CHECK_GE(when, now_);
  const EventId id = ++next_id_;
  queue_.push_back(Event{when, next_seq_++, id});
  std::push_heap(queue_.begin(), queue_.end(), EventLater{});
  closures_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) {
    return false;
  }
  // Eagerly drop the closure (and everything it captures); the heap entry
  // stays behind as a tombstone and is skipped when popped — unless
  // tombstones pile up enough to warrant a sweep.
  if (closures_.erase(id) == 0) {
    return false;
  }
  ++tombstones_;
  MaybeCompact();
  return true;
}

void Simulator::MaybeCompact() {
  if (tombstones_ <= queue_.size() / 2) {
    return;
  }
  // Erase every entry whose closure is gone, in one pass, then restore the
  // heap invariant. Ordering among survivors is untouched: (when, seq) keys
  // don't change, so determinism is preserved.
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [this](const Event& e) {
                                return closures_.count(e.id) == 0;
                              }),
               queue_.end());
  std::make_heap(queue_.begin(), queue_.end(), EventLater{});
  tombstones_compacted_ += tombstones_;
  tombstones_ = 0;
}

bool Simulator::PopNext(TimeNs deadline, Event* out, std::function<void()>* fn) {
  while (!queue_.empty()) {
    const Event& top = queue_.front();
    auto it = closures_.find(top.id);
    if (it == closures_.end()) {
      // Tombstone of a cancelled event.
      std::pop_heap(queue_.begin(), queue_.end(), EventLater{});
      queue_.pop_back();
      PSBOX_CHECK_GT(tombstones_, 0u);
      --tombstones_;
      continue;
    }
    if (deadline >= 0 && top.when > deadline) {
      return false;
    }
    *out = top;
    *fn = std::move(it->second);
    closures_.erase(it);
    std::pop_heap(queue_.begin(), queue_.end(), EventLater{});
    queue_.pop_back();
    return true;
  }
  return false;
}

size_t Simulator::RunUntil(TimeNs deadline) {
  size_t fired = 0;
  Event ev;
  std::function<void()> fn;
  while (PopNext(deadline, &ev, &fn)) {
    PSBOX_CHECK_GE(ev.when, now_);
    now_ = ev.when;
    ++total_fired_;
    ++fired;
    fn();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return fired;
}

size_t Simulator::RunToCompletion() {
  size_t fired = 0;
  Event ev;
  std::function<void()> fn;
  while (PopNext(/*deadline=*/-1, &ev, &fn)) {
    now_ = ev.when;
    ++total_fired_;
    ++fired;
    fn();
  }
  return fired;
}

}  // namespace psbox
