#include "src/sim/simulator.h"

#include <utility>

namespace psbox {

EventId Simulator::ScheduleAt(TimeNs when, std::function<void()> fn) {
  PSBOX_CHECK_GE(when, now_);
  const EventId id = ++next_id_;
  queue_.push(Event{when, next_seq_++, id});
  closures_.emplace(id, std::move(fn));
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) {
    return false;
  }
  // Eagerly drop the closure (and everything it captures); the heap entry
  // stays behind as a tombstone and is skipped when popped.
  return closures_.erase(id) > 0;
}

bool Simulator::PopNext(TimeNs deadline, Event* out, std::function<void()>* fn) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    auto it = closures_.find(top.id);
    if (it == closures_.end()) {
      queue_.pop();  // tombstone of a cancelled event
      continue;
    }
    if (deadline >= 0 && top.when > deadline) {
      return false;
    }
    *out = top;
    *fn = std::move(it->second);
    closures_.erase(it);
    queue_.pop();
    return true;
  }
  return false;
}

size_t Simulator::RunUntil(TimeNs deadline) {
  size_t fired = 0;
  Event ev;
  std::function<void()> fn;
  while (PopNext(deadline, &ev, &fn)) {
    PSBOX_CHECK_GE(ev.when, now_);
    now_ = ev.when;
    ++total_fired_;
    ++fired;
    fn();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return fired;
}

size_t Simulator::RunToCompletion() {
  size_t fired = 0;
  Event ev;
  std::function<void()> fn;
  while (PopNext(/*deadline=*/-1, &ev, &fn)) {
    now_ = ev.when;
    ++total_fired_;
    ++fired;
    fn();
  }
  return fired;
}

}  // namespace psbox
