#include "src/sim/simulator.h"

namespace psbox {

EventId Simulator::ScheduleAt(TimeNs when, std::function<void()> fn) {
  PSBOX_CHECK_GE(when, now_);
  const EventId id = ++next_id_;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) {
    return false;
  }
  auto it = pending_.find(id);
  if (it == pending_.end()) {
    return false;
  }
  if (cancelled_.count(id) > 0) {
    return false;
  }
  cancelled_.insert(id);
  return true;
}

size_t Simulator::RunUntil(TimeNs deadline) {
  size_t fired = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    pending_.erase(pending_.find(ev.id));
    if (cancelled_.erase(ev.id) > 0) {
      continue;
    }
    PSBOX_CHECK_GE(ev.when, now_);
    now_ = ev.when;
    ++total_fired_;
    ++fired;
    ev.fn();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
  return fired;
}

size_t Simulator::RunToCompletion() {
  size_t fired = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    pending_.erase(pending_.find(ev.id));
    if (cancelled_.erase(ev.id) > 0) {
      continue;
    }
    now_ = ev.when;
    ++total_fired_;
    ++fired;
    ev.fn();
  }
  return fired;
}

}  // namespace psbox
