#include "src/sim/fault_injector.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {
namespace {

// FNV-1a over the scope name: per-scope stream seeds depend only on the plan
// seed and the name, never on first-use order.
uint64_t HashScope(const std::string& scope) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : scope) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<FaultWindow> Normalize(std::vector<FaultWindow> windows) {
  std::vector<FaultWindow> valid;
  for (const FaultWindow& w : windows) {
    if (w.end > w.begin) {
      valid.push_back(w);
    }
  }
  std::sort(valid.begin(), valid.end(),
            [](const FaultWindow& a, const FaultWindow& b) { return a.begin < b.begin; });
  std::vector<FaultWindow> merged;
  for (const FaultWindow& w : valid) {
    if (!merged.empty() && w.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, w.end);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

bool Covers(const std::vector<FaultWindow>& windows, TimeNs t) {
  for (const FaultWindow& w : windows) {
    if (t >= w.end) {
      continue;
    }
    return t >= w.begin;
  }
  return false;
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      wifi_link_down_(Normalize(plan_.wifi_link_down)),
      meter_dropout_(Normalize(plan_.meter_dropout)) {
  PSBOX_CHECK_GE(plan_.accel_hang_prob, 0.0);
  PSBOX_CHECK_GE(plan_.accel_latency_prob, 0.0);
  PSBOX_CHECK_GE(plan_.wifi_tx_loss_prob, 0.0);
  PSBOX_CHECK_GE(plan_.freq_fail_prob, 0.0);
  PSBOX_CHECK_GE(plan_.accel_latency_factor, 1.0);
  PSBOX_CHECK_GE(plan_.storage_hang_prob, 0.0);
}

Rng& FaultInjector::StreamFor(const std::string& scope) {
  auto it = streams_.find(scope);
  if (it == streams_.end()) {
    it = streams_.emplace(scope, Rng(plan_.seed ^ HashScope(scope))).first;
  }
  return it->second;
}

bool FaultInjector::ShouldHangCommand(const std::string& scope) {
  if (plan_.accel_hang_prob <= 0.0) {
    return false;
  }
  if (!StreamFor(scope).Bernoulli(plan_.accel_hang_prob)) {
    return false;
  }
  ++stats_.accel_hangs;
  return true;
}

double FaultInjector::CommandLatencyFactor(const std::string& scope) {
  if (plan_.accel_latency_prob <= 0.0) {
    return 1.0;
  }
  if (!StreamFor(scope + "/latency").Bernoulli(plan_.accel_latency_prob)) {
    return 1.0;
  }
  ++stats_.accel_latency_spikes;
  return plan_.accel_latency_factor;
}

bool FaultInjector::ShouldDropTxFrame(TimeNs now) {
  if (!LinkUpAt(now)) {
    ++stats_.wifi_frames_dropped;
    return true;
  }
  if (plan_.wifi_tx_loss_prob <= 0.0) {
    return false;
  }
  if (!StreamFor("wifi").Bernoulli(plan_.wifi_tx_loss_prob)) {
    return false;
  }
  ++stats_.wifi_frames_dropped;
  return true;
}

bool FaultInjector::ShouldFailFreqTransition(const std::string& scope) {
  if (plan_.freq_fail_prob <= 0.0) {
    return false;
  }
  if (!StreamFor(scope + "/freq").Bernoulli(plan_.freq_fail_prob)) {
    return false;
  }
  ++stats_.freq_transition_fails;
  return true;
}

bool FaultInjector::ShouldHangStorageCommand() {
  if (plan_.storage_hang_prob <= 0.0) {
    return false;
  }
  if (!StreamFor("storage").Bernoulli(plan_.storage_hang_prob)) {
    return false;
  }
  ++stats_.storage_hangs;
  return true;
}

bool FaultInjector::ShouldCorruptSnapshot() {
  if (plan_.snapshot_corrupt_prob <= 0.0) {
    return false;
  }
  if (!StreamFor("snapshot").Bernoulli(plan_.snapshot_corrupt_prob)) {
    return false;
  }
  ++stats_.snapshots_corrupted;
  return true;
}

void FaultInjector::SaveState(SnapshotWriter& w) const {
  w.Section("faults");
  // std::map iterates in sorted key order, so the stream list is stable.
  w.U64(streams_.size());
  for (const auto& [scope, rng] : streams_) {
    w.Str(scope);
    rng.SaveState(w);
  }
  w.U64(stats_.accel_hangs);
  w.U64(stats_.accel_latency_spikes);
  w.U64(stats_.wifi_frames_dropped);
  w.U64(stats_.freq_transition_fails);
  w.U64(stats_.storage_hangs);
  w.U64(stats_.snapshots_corrupted);
}

void FaultInjector::RestoreState(SnapshotReader& r) {
  if (!r.Section("faults")) {
    return;
  }
  streams_.clear();
  const size_t n = r.Count();
  for (size_t i = 0; i < n; ++i) {
    const std::string scope = r.Str();
    Rng rng(0);
    rng.RestoreState(r);
    if (!r.ok()) {
      return;
    }
    streams_.emplace(scope, rng);
  }
  stats_.accel_hangs = r.U64();
  stats_.accel_latency_spikes = r.U64();
  stats_.wifi_frames_dropped = r.U64();
  stats_.freq_transition_fails = r.U64();
  stats_.storage_hangs = r.U64();
  stats_.snapshots_corrupted = r.U64();
}

bool FaultInjector::LinkUpAt(TimeNs t) const { return !Covers(wifi_link_down_, t); }

bool FaultInjector::MeterDroppedAt(TimeNs t) const { return Covers(meter_dropout_, t); }

DurationNs FaultInjector::MeterDroppedWithin(TimeNs t0, TimeNs t1) const {
  DurationNs covered = 0;
  for (const FaultWindow& w : meter_dropout_) {
    const TimeNs b = std::max(w.begin, t0);
    const TimeNs e = std::min(w.end, t1);
    if (e > b) {
      covered += e - b;
    }
  }
  return covered;
}

}  // namespace psbox
