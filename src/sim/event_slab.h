// Slab storage for pending-event closures.
//
// The event engine stores one ClosureSlot per pending event in a chunked
// slab. Three properties matter on the re-arm-heavy paths (watchdog pets,
// scheduler tick/completion timers, retransmit backoff):
//
//   * small-buffer optimisation — a callable of up to kInlineCapacity bytes
//     is move-constructed straight into the slot, so the schedule/cancel
//     cycle performs no heap allocation. Larger captures fall back to a
//     single owned heap object (counted, so benches can assert the fast
//     path stays allocation-free).
//   * generation tags — every slot carries a generation counter that is odd
//     while the slot holds a pending event and bumped on free, so a stale
//     reference (a cancelled event's queue entry, a retired EventId) can be
//     recognised in O(1) without tombstone bookkeeping.
//   * stable addresses — slots live in fixed-size chunks that never move,
//     so the engine can hold Slot pointers across allocations.
//
// Cancelling destroys the closure eagerly (captured objects are released
// immediately, not when the queue drains past the entry) and pushes the slot
// onto a free list; steady-state re-arm traffic recycles a handful of slots.

#ifndef SRC_SIM_EVENT_SLAB_H_
#define SRC_SIM_EVENT_SLAB_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/base/check.h"

namespace psbox {

// Type-erased nullary callable with small-buffer optimisation. Unlike
// std::function it supports explicit relocation between slots (used to move
// the closure out of the slab before firing, so the callback can re-arm into
// the very slot it fired from) and exposes whether storage went inline.
class ClosureSlot {
 public:
  static constexpr size_t kInlineCapacity = 48;

  ClosureSlot() = default;
  ~ClosureSlot() { Destroy(); }
  ClosureSlot(const ClosureSlot&) = delete;
  ClosureSlot& operator=(const ClosureSlot&) = delete;

  // Captures |fn|; returns true when it was stored inline (no allocation).
  // Inline storage requires a nothrow-move-constructible callable so that
  // relocation cannot fail mid-move.
  template <typename Fn>
  bool Emplace(Fn&& fn) {
    PSBOX_DCHECK(!engaged());
    using D = std::decay_t<Fn>;
    static_assert(std::is_invocable_r_v<void, D&>,
                  "event closures must be callable as void()");
    if constexpr (sizeof(D) <= kInlineCapacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<Fn>(fn));
      invoke_ = &InvokeInline<D>;
      relocate_ = &RelocateInline<D>;
      destroy_ = &DestroyInline<D>;
      return true;
    } else {
      D* heap = new D(std::forward<Fn>(fn));
      std::memcpy(buf_, &heap, sizeof(heap));
      invoke_ = &InvokeHeap<D>;
      relocate_ = nullptr;  // relocation is a pointer copy
      destroy_ = &DestroyHeap<D>;
      return false;
    }
  }

  // Moves the callable into |dst| (which must be empty); this slot ends up
  // disengaged and immediately reusable.
  void RelocateTo(ClosureSlot* dst) {
    PSBOX_DCHECK(engaged());
    PSBOX_DCHECK(!dst->engaged());
    if (relocate_ != nullptr) {
      relocate_(buf_, dst->buf_);
    } else {
      std::memcpy(dst->buf_, buf_, sizeof(void*));
    }
    dst->invoke_ = invoke_;
    dst->relocate_ = relocate_;
    dst->destroy_ = destroy_;
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

  void Invoke() {
    PSBOX_DCHECK(engaged());
    invoke_(buf_);
  }

  void Destroy() {
    if (engaged()) {
      destroy_(buf_);
      invoke_ = nullptr;
      relocate_ = nullptr;
      destroy_ = nullptr;
    }
  }

  bool engaged() const { return invoke_ != nullptr; }

 private:
  template <typename D>
  static void InvokeInline(void* buf) {
    (*std::launder(reinterpret_cast<D*>(buf)))();
  }
  template <typename D>
  static void DestroyInline(void* buf) {
    std::launder(reinterpret_cast<D*>(buf))->~D();
  }
  template <typename D>
  static void RelocateInline(void* src, void* dst) {
    D* s = std::launder(reinterpret_cast<D*>(src));
    ::new (dst) D(std::move(*s));
    s->~D();
  }
  template <typename D>
  static void InvokeHeap(void* buf) {
    D* p;
    std::memcpy(&p, buf, sizeof(p));
    (*p)();
  }
  template <typename D>
  static void DestroyHeap(void* buf) {
    D* p;
    std::memcpy(&p, buf, sizeof(p));
    delete p;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

// Chunked slab of event slots with a free list. Chunks are never moved or
// released, so slot indices and addresses stay valid for the slab's lifetime;
// capacity is the high-water mark of concurrently pending events.
class EventSlab {
 public:
  static constexpr uint32_t kNil = 0xffffffffu;

  struct Slot {
    ClosureSlot closure;
    // Odd while the slot holds a pending event; bumped on both allocate and
    // free, so any stale (slot, generation) reference compares unequal.
    uint32_t generation = 0;
    uint32_t next_free = kNil;
    // True while the pending entry for this slot is parked in the engine's
    // far-future overflow heap (the only queue where cancelled residue can
    // linger long enough to be worth compacting).
    bool in_overflow = false;
    // Mirror of the queue entry's ordering key, kept so a pending event's
    // (time, insertion-seq) position can be read back through its EventId —
    // the checkpoint path persists this and replays re-arms in seq order.
    int64_t when = 0;
    uint64_t seq = 0;
  };

  // Allocates a slot and returns its index; the slot's generation is odd.
  uint32_t Alloc() {
    uint32_t index;
    if (free_head_ != kNil) {
      index = free_head_;
      free_head_ = (*this)[index].next_free;
    } else {
      index = static_cast<uint32_t>(size_);
      const size_t chunk = size_ >> kChunkShift;
      if (chunk == chunks_.size()) {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      }
      ++size_;
    }
    Slot& s = (*this)[index];
    ++s.generation;  // even -> odd: pending
    PSBOX_DCHECK((s.generation & 1u) == 1u);
    s.in_overflow = false;
    return index;
  }

  // Releases a slot (destroying any closure still held) and recycles it.
  void Free(uint32_t index) {
    Slot& s = (*this)[index];
    PSBOX_DCHECK((s.generation & 1u) == 1u);
    s.closure.Destroy();
    ++s.generation;  // odd -> even: free
    s.next_free = free_head_;
    s.in_overflow = false;
    free_head_ = index;
  }

  Slot& operator[](uint32_t index) {
    PSBOX_DCHECK(index < size_);
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  const Slot& operator[](uint32_t index) const {
    PSBOX_DCHECK(index < size_);
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  // Slots ever allocated (the concurrently-pending high-water mark).
  size_t size() const { return size_; }

 private:
  static constexpr size_t kChunkShift = 8;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  size_t size_ = 0;
  uint32_t free_head_ = kNil;
};

}  // namespace psbox

#endif  // SRC_SIM_EVENT_SLAB_H_
