// Power side-channel attacker (§2.5).
//
// Reproduces the paper's demonstration: an attacker app, trained once on
// labelled GPU power traces of a victim browser visiting the Alexa top-10
// websites, later infers which website the browser is opening by comparing
// its observed power trace against the references with DTW (1-nearest
// neighbour). Without psbox the attacker observes whole-rail power that
// embeds the victim's workload; with psbox it only ever sees its own
// sandboxed power plus idle filler, collapsing the channel.

#ifndef SRC_ATTACK_SIDE_CHANNEL_ATTACKER_H_
#define SRC_ATTACK_SIDE_CHANNEL_ATTACKER_H_

#include <string>
#include <vector>

#include "src/analysis/dtw.h"

namespace psbox {

class SideChannelAttacker {
 public:
  explicit SideChannelAttacker(DtwConfig config = {});

  // Adds one labelled reference trace (training run of the victim alone).
  void Train(const std::string& label, std::vector<double> trace);

  // 1-NN inference: the label of the closest reference under DTW.
  std::string Infer(const std::vector<double>& trace) const;

  // Convenience: fraction of (trace, truth) pairs inferred correctly.
  double SuccessRate(
      const std::vector<std::pair<std::string, std::vector<double>>>& probes) const;

  size_t reference_count() const { return references_.size(); }

 private:
  struct Reference {
    std::string label;
    std::vector<double> trace;
  };

  DtwConfig config_;
  std::vector<Reference> references_;
};

}  // namespace psbox

#endif  // SRC_ATTACK_SIDE_CHANNEL_ATTACKER_H_
