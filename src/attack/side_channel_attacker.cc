#include "src/attack/side_channel_attacker.h"

#include <limits>

#include "src/base/check.h"

namespace psbox {

SideChannelAttacker::SideChannelAttacker(DtwConfig config) : config_(config) {}

void SideChannelAttacker::Train(const std::string& label, std::vector<double> trace) {
  PSBOX_CHECK(!trace.empty());
  references_.push_back({label, std::move(trace)});
}

std::string SideChannelAttacker::Infer(const std::vector<double>& trace) const {
  PSBOX_CHECK(!references_.empty());
  double best = std::numeric_limits<double>::infinity();
  const Reference* winner = &references_.front();
  for (const Reference& ref : references_) {
    const double d = DtwDistance(trace, ref.trace, config_);
    if (d < best) {
      best = d;
      winner = &ref;
    }
  }
  return winner->label;
}

double SideChannelAttacker::SuccessRate(
    const std::vector<std::pair<std::string, std::vector<double>>>& probes) const {
  if (probes.empty()) {
    return 0.0;
  }
  size_t hits = 0;
  for (const auto& [truth, trace] : probes) {
    if (Infer(trace) == truth) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(probes.size());
}

}  // namespace psbox
