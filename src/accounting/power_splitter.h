// Prior-approach power accounting (the baseline psbox is compared against).
//
// These splitters implement the classic second step of OS power awareness
// (§1, §2.3): divide each metered system-power sample among concurrent apps
// using a heuristic chosen at OS development time. We implement the three
// families the paper surveys:
//   * kUtilization — AppScope-style [96]: each sample is divided
//     proportionally to the apps' hardware usage within the sampling
//     interval. Implemented favourably, at 10 µs granularity (§6.1).
//   * kEvenSplit   — split evenly among apps active in the interval [94].
//   * kLastTrigger — Eprof-style [70]: the whole sample goes to the app that
//     used the hardware most recently (this is the one that charges WiFi
//     tail energy to the last transmission).
// All of them operate on the UsageLedger the kernel records; none of them
// can undo power entanglement, which is the paper's point.

#ifndef SRC_ACCOUNTING_POWER_SPLITTER_H_
#define SRC_ACCOUNTING_POWER_SPLITTER_H_

#include <map>
#include <vector>

#include "src/base/time.h"
#include "src/base/types.h"
#include "src/hw/power_meter.h"
#include "src/hw/power_rail.h"
#include "src/kernel/usage_ledger.h"

namespace psbox {

enum class AccountingPolicy { kUtilization, kEvenSplit, kLastTrigger };

struct SplitterConfig {
  AccountingPolicy policy = AccountingPolicy::kUtilization;
  // Power-sampling interval over which usage shares are computed.
  DurationNs window = 10 * kMicrosecond;
  // A window with no usage whose power exceeds idle*|tail_factor| is deemed
  // lingering (tail) power and attributed to the most recent user.
  double tail_factor = 1.3;
};

class PowerSplitter {
 public:
  explicit PowerSplitter(SplitterConfig config = {});

  // Divides the rail's energy over [t0, t1) among apps according to the
  // ledger records for the component. Unattributed (idle) energy is returned
  // under kNoApp.
  std::map<AppId, Joules> SplitEnergy(const PowerRail& rail,
                                      const std::vector<UsageRecord>& records,
                                      TimeNs t0, TimeNs t1) const;

  // The power time series attributed to |app| (one value per window) — what
  // the app would "observe" under this accounting scheme (Fig 6, columns
  // 4-5).
  std::vector<PowerSample> ShareSeries(const PowerRail& rail,
                                       const std::vector<UsageRecord>& records,
                                       AppId app, TimeNs t0, TimeNs t1) const;

  const SplitterConfig& config() const { return config_; }

 private:
  // Sweeps windows over [t0, t1), invoking |emit| with the window start, the
  // window's mean power, and the per-app weights.
  template <typename Emit>
  void Sweep(const PowerRail& rail, const std::vector<UsageRecord>& records,
             TimeNs t0, TimeNs t1, Emit&& emit) const;

  SplitterConfig config_;
};

}  // namespace psbox

#endif  // SRC_ACCOUNTING_POWER_SPLITTER_H_
