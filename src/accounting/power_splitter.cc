#include "src/accounting/power_splitter.h"

#include <algorithm>

#include "src/base/check.h"

namespace psbox {

PowerSplitter::PowerSplitter(SplitterConfig config) : config_(config) {
  PSBOX_CHECK_GT(config_.window, 0);
}

template <typename Emit>
void PowerSplitter::Sweep(const PowerRail& rail,
                          const std::vector<UsageRecord>& records, TimeNs t0,
                          TimeNs t1, Emit&& emit) const {
  // Records are appended in completion order; sort by begin for the sweep.
  std::vector<UsageRecord> sorted = records;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const UsageRecord& a, const UsageRecord& b) {
                     return a.begin < b.begin;
                   });
  size_t next = 0;
  std::vector<UsageRecord> active;
  AppId last_user = kNoApp;
  TimeNs last_user_end = -1;

  std::map<AppId, double> weights;
  for (TimeNs w = t0; w < t1; w += config_.window) {
    const TimeNs wend = std::min(w + config_.window, t1);
    // Admit records that start before the window ends.
    while (next < sorted.size() && sorted[next].begin < wend) {
      active.push_back(sorted[next]);
      ++next;
    }
    // Retire records that ended before the window, remembering the most
    // recent user for the tail heuristic.
    for (size_t i = 0; i < active.size();) {
      if (active[i].end <= w) {
        if (active[i].end > last_user_end) {
          last_user_end = active[i].end;
          last_user = active[i].app;
        }
        active[i] = active.back();
        active.pop_back();
      } else {
        ++i;
      }
    }
    weights.clear();
    for (const UsageRecord& r : active) {
      const TimeNs b = std::max(r.begin, w);
      const TimeNs e = std::min(r.end, wend);
      if (e > b) {
        weights[r.app] += static_cast<double>(e - b) * r.weight;
      }
    }
    const Watts mean_power = rail.trace().MeanOver(w, wend);
    emit(w, wend, mean_power, weights, last_user);
  }
}

std::map<AppId, Joules> PowerSplitter::SplitEnergy(
    const PowerRail& rail, const std::vector<UsageRecord>& records, TimeNs t0,
    TimeNs t1) const {
  std::map<AppId, Joules> out;
  const Watts idle = rail.idle_power();
  Sweep(rail, records, t0, t1,
        [&](TimeNs w, TimeNs wend, Watts power, const std::map<AppId, double>& weights,
            AppId last_user) {
          const Joules energy = power * ToSeconds(wend - w);
          if (weights.empty()) {
            // No usage this window: lingering (tail) power goes to the most
            // recent user; true idle stays unattributed.
            if (last_user != kNoApp && power > idle * config_.tail_factor) {
              out[last_user] += energy;
            } else {
              out[kNoApp] += energy;
            }
            return;
          }
          switch (config_.policy) {
            case AccountingPolicy::kUtilization: {
              double total = 0.0;
              for (const auto& [app, weight] : weights) {
                total += weight;
              }
              for (const auto& [app, weight] : weights) {
                out[app] += energy * (weight / total);
              }
              break;
            }
            case AccountingPolicy::kEvenSplit: {
              const double share = energy / static_cast<double>(weights.size());
              for (const auto& [app, weight] : weights) {
                (void)weight;
                out[app] += share;
              }
              break;
            }
            case AccountingPolicy::kLastTrigger: {
              // Whole sample to the app whose usage extends furthest.
              AppId chosen = weights.begin()->first;
              out[chosen] += energy;
              break;
            }
          }
        });
  return out;
}

std::vector<PowerSample> PowerSplitter::ShareSeries(
    const PowerRail& rail, const std::vector<UsageRecord>& records, AppId app,
    TimeNs t0, TimeNs t1) const {
  std::vector<PowerSample> out;
  out.reserve(static_cast<size_t>((t1 - t0) / config_.window) + 1);
  const Watts idle = rail.idle_power();
  Sweep(rail, records, t0, t1,
        [&](TimeNs w, TimeNs wend, Watts power, const std::map<AppId, double>& weights,
            AppId last_user) {
          (void)wend;
          Watts share = 0.0;
          if (weights.empty()) {
            if (last_user == app && power > idle * config_.tail_factor) {
              share = power;
            }
          } else {
            auto it = weights.find(app);
            if (it != weights.end()) {
              switch (config_.policy) {
                case AccountingPolicy::kUtilization: {
                  double total = 0.0;
                  for (const auto& [a, weight] : weights) {
                    (void)a;
                    total += weight;
                  }
                  share = power * (it->second / total);
                  break;
                }
                case AccountingPolicy::kEvenSplit:
                  share = power / static_cast<double>(weights.size());
                  break;
                case AccountingPolicy::kLastTrigger:
                  share = (weights.begin()->first == app) ? power : 0.0;
                  break;
              }
            }
          }
          out.push_back({w, share});
        });
  return out;
}

}  // namespace psbox
