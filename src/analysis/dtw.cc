#include "src/analysis/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/base/check.h"

namespace psbox {

void ZNormalize(std::vector<double>* series) {
  if (series->empty()) {
    return;
  }
  double mean = 0.0;
  for (double v : *series) {
    mean += v;
  }
  mean /= static_cast<double>(series->size());
  double var = 0.0;
  for (double v : *series) {
    var += (v - mean) * (v - mean);
  }
  var /= static_cast<double>(series->size());
  const double stddev = std::sqrt(var);
  for (double& v : *series) {
    v = stddev > 1e-12 ? (v - mean) / stddev : 0.0;
  }
}

double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   const DtwConfig& config) {
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  std::vector<double> x = a;
  std::vector<double> y = b;
  if (config.z_normalize) {
    ZNormalize(&x);
    ZNormalize(&y);
  }
  const size_t n = x.size();
  const size_t m = y.size();
  const double inf = std::numeric_limits<double>::infinity();
  size_t band = std::max(n, m);
  if (config.band_fraction > 0.0) {
    band = static_cast<size_t>(config.band_fraction *
                               static_cast<double>(std::max(n, m)));
    // The band must at least cover the length difference.
    band = std::max(band, (n > m ? n - m : m - n) + 1);
  }
  std::vector<double> prev(m + 1, inf);
  std::vector<double> curr(m + 1, inf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), inf);
    const size_t lo = i > band ? i - band : 1;
    const size_t hi = std::min(m, i + band);
    for (size_t j = lo; j <= hi; ++j) {
      const double d = x[i - 1] - y[j - 1];
      const double cost = d * d;
      const double best =
          std::min({prev[j], prev[j - 1], curr[j - 1]});
      curr[j] = cost + best;
    }
    std::swap(prev, curr);
  }
  return std::sqrt(prev[m]);
}

}  // namespace psbox
