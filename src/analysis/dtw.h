// Dynamic Time Warping distance for power-trace similarity (§2.5).
//
// The paper's side-channel attacker measures similarity between observed and
// reference GPU power traces with DTW. We implement the classic quadratic DP
// with an optional Sakoe-Chiba band and optional z-normalisation.

#ifndef SRC_ANALYSIS_DTW_H_
#define SRC_ANALYSIS_DTW_H_

#include <cstddef>
#include <vector>

namespace psbox {

struct DtwConfig {
  // Sakoe-Chiba band half-width as a fraction of the longer series length;
  // <= 0 disables the band.
  double band_fraction = 0.15;
  bool z_normalize = true;
};

// DTW distance between |a| and |b|; returns +infinity when the band admits
// no path. Cost is squared pointwise difference; the result is the square
// root of the accumulated cost.
double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   const DtwConfig& config = {});

// In-place z-normalisation (mean 0, stddev 1); constant series become zeros.
void ZNormalize(std::vector<double>* series);

}  // namespace psbox

#endif  // SRC_ANALYSIS_DTW_H_
