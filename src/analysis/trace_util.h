// Power-trace utilities shared by benches, tests and the attacker.

#ifndef SRC_ANALYSIS_TRACE_UTIL_H_
#define SRC_ANALYSIS_TRACE_UTIL_H_

#include <string>
#include <vector>

#include "src/base/step_trace.h"
#include "src/base/time.h"
#include "src/hw/power_meter.h"

namespace psbox {

// Bins |samples| into |bins| equal-duration means over [t0, t1); empty bins
// repeat the previous value.
std::vector<double> DownsampleSamples(const std::vector<PowerSample>& samples,
                                      TimeNs t0, TimeNs t1, size_t bins);

// Bins a step trace into |bins| exact window means over [t0, t1).
std::vector<double> DownsampleTrace(const StepTrace& trace, TimeNs t0, TimeNs t1,
                                    size_t bins);

// Riemann-sum energy from uniform samples.
Joules SampleEnergy(const std::vector<PowerSample>& samples, DurationNs period);

// Renders a coarse ASCII sparkline of a series (benches use this to "plot"
// the paper's figures on stdout).
std::string Sparkline(const std::vector<double>& series, double vmax = 0.0);

}  // namespace psbox

#endif  // SRC_ANALYSIS_TRACE_UTIL_H_
