#include "src/analysis/trace_util.h"

#include <algorithm>

#include "src/base/check.h"

namespace psbox {

std::vector<double> DownsampleSamples(const std::vector<PowerSample>& samples,
                                      TimeNs t0, TimeNs t1, size_t bins) {
  PSBOX_CHECK_GT(bins, 0u);
  PSBOX_CHECK_LT(t0, t1);
  std::vector<double> sums(bins, 0.0);
  std::vector<size_t> counts(bins, 0);
  const double span = static_cast<double>(t1 - t0);
  for (const PowerSample& s : samples) {
    if (s.timestamp < t0 || s.timestamp >= t1) {
      continue;
    }
    const auto bin = static_cast<size_t>(
        static_cast<double>(s.timestamp - t0) / span * static_cast<double>(bins));
    const size_t clamped = std::min(bin, bins - 1);
    sums[clamped] += s.watts;
    ++counts[clamped];
  }
  std::vector<double> out(bins, 0.0);
  double last = 0.0;
  for (size_t i = 0; i < bins; ++i) {
    if (counts[i] > 0) {
      last = sums[i] / static_cast<double>(counts[i]);
    }
    out[i] = last;
  }
  return out;
}

std::vector<double> DownsampleTrace(const StepTrace& trace, TimeNs t0, TimeNs t1,
                                    size_t bins) {
  PSBOX_CHECK_GT(bins, 0u);
  PSBOX_CHECK_LT(t0, t1);
  std::vector<double> out(bins, 0.0);
  const DurationNs width = (t1 - t0) / static_cast<DurationNs>(bins);
  PSBOX_CHECK_GT(width, 0);
  for (size_t i = 0; i < bins; ++i) {
    const TimeNs b = t0 + static_cast<DurationNs>(i) * width;
    out[i] = trace.MeanOver(b, b + width);
  }
  return out;
}

Joules SampleEnergy(const std::vector<PowerSample>& samples, DurationNs period) {
  Joules total = 0.0;
  for (const PowerSample& s : samples) {
    total += s.watts * ToSeconds(period);
  }
  return total;
}

std::string Sparkline(const std::vector<double>& series, double vmax) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (series.empty()) {
    return "";
  }
  double top = vmax;
  if (top <= 0.0) {
    top = *std::max_element(series.begin(), series.end());
  }
  std::string out;
  out.reserve(series.size());
  for (double v : series) {
    int level = top > 0.0 ? static_cast<int>(v / top * 7.0 + 0.5) : 0;
    level = std::clamp(level, 0, 7);
    out += kLevels[level];
  }
  return out;
}

}  // namespace psbox
