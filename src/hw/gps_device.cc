#include "src/hw/gps_device.h"

#include "src/base/check.h"
#include "src/snapshot/event_rearmer.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

GpsDevice::GpsDevice(Simulator* sim, PowerRail* rail, GpsConfig config)
    : sim_(sim), rail_(rail), config_(config) {
  operating_trace_.Set(0, 0.0);
  Update();
}

void GpsDevice::Request(AppId app) {
  const bool was_empty = users_.empty();
  users_.insert(app);
  if (was_empty && state_ == GpsState::kOff) {
    state_ = GpsState::kAcquiring;
    acquire_event_ = sim_->ScheduleAfter(config_.cold_start, [this] {
      acquire_event_ = kInvalidEventId;
      OnAcquired();
    });
    Update();
  }
}

void GpsDevice::OnAcquired() {
  if (users_.empty()) {
    return;  // released during acquisition; Release already powered off
  }
  state_ = GpsState::kOn;
  operating_trace_.Set(sim_->Now(), 1.0);
  Update();
}

void GpsDevice::Release(AppId app) {
  users_.erase(app);
  if (!users_.empty()) {
    return;  // other apps keep the device on: their power is unaffected (§7)
  }
  if (acquire_event_ != kInvalidEventId) {
    sim_->Cancel(acquire_event_);
    acquire_event_ = kInvalidEventId;
  }
  state_ = GpsState::kOff;
  operating_trace_.Set(sim_->Now(), 0.0);
  Update();
}

void GpsDevice::SaveState(SnapshotWriter& w) const {
  w.U8(static_cast<uint8_t>(state_));
  w.U64(users_.size());
  for (const AppId app : users_) {
    w.I64(app);
  }
  SaveEvent(w, *sim_, acquire_event_);
  operating_trace_.SaveState(w);
}

void GpsDevice::RestoreState(SnapshotReader& r, EventRearmer& rearmer) {
  state_ = static_cast<GpsState>(r.U8());
  users_.clear();
  const size_t n = r.Count(sizeof(AppId));
  for (size_t i = 0; i < n; ++i) {
    users_.insert(static_cast<AppId>(r.I64()));
  }
  acquire_event_ = kInvalidEventId;
  LoadEvent(r, rearmer, [this](TimeNs when) {
    acquire_event_ = sim_->ScheduleAt(when, [this] {
      acquire_event_ = kInvalidEventId;
      OnAcquired();
    });
  });
  operating_trace_.RestoreState(r);
}

Watts GpsDevice::ModelPower() const {
  switch (state_) {
    case GpsState::kOff:
      return config_.off_power;
    case GpsState::kAcquiring:
      return config_.acquire_power;
    case GpsState::kOn:
      return config_.on_power;
  }
  PSBOX_CHECK(false);
}

void GpsDevice::Update() { rail_->SetPower(ModelPower()); }

}  // namespace psbox
