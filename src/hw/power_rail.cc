#include "src/hw/power_rail.h"

#include "src/sim/simulator.h"

namespace psbox {

PowerRail::PowerRail(Simulator* sim, std::string name, Watts idle_power)
    : sim_(sim), name_(std::move(name)), idle_power_(idle_power) {
  trace_.Set(0, idle_power_);
}

void PowerRail::SetPower(Watts watts) { trace_.Set(sim_->Now(), watts); }

Watts PowerRail::PowerAt(TimeNs t) const { return trace_.ValueAt(t); }

Joules PowerRail::EnergyOver(TimeNs t0, TimeNs t1) const {
  return trace_.IntegralOver(t0, t1);
}

}  // namespace psbox
