// Board assembly: the simulated equivalent of the paper's two prototype
// platforms (Figure 4) folded into one — an AM57EVM-like SoC (dual-A15 CPU,
// SGX544-like GPU, C66x-like DSP) plus a WiLink8-like WiFi module, each on
// its own measurable power rail, instrumented by a 100 kHz in-situ meter.

#ifndef SRC_HW_BOARD_H_
#define SRC_HW_BOARD_H_

#include <memory>

#include "src/base/rng.h"
#include "src/hw/accel_device.h"
#include "src/hw/cpu_device.h"
#include "src/hw/display_device.h"
#include "src/hw/gps_device.h"
#include "src/hw/power_meter.h"
#include "src/hw/power_rail.h"
#include "src/hw/storage_device.h"
#include "src/hw/wifi_device.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"

namespace psbox {

struct BoardConfig {
  uint64_t seed = 0x5eed;
  CpuConfig cpu;
  AccelConfig gpu = MakeGpuConfig();
  AccelConfig dsp = MakeDspConfig();
  WifiConfig wifi;
  DisplayConfig display;
  GpsConfig gps;
  StorageConfig storage;
  PowerMeterConfig meter;
  // Deterministic fault plan; the default injects nothing (ideal hardware).
  FaultPlan faults;
};

class Board {
 public:
  explicit Board(BoardConfig config = {});
  Board(const Board&) = delete;
  Board& operator=(const Board&) = delete;

  Simulator& sim() { return sim_; }
  Rng& rng() { return rng_; }
  FaultInjector& fault_injector() { return *fault_injector_; }
  const FaultInjector& fault_injector() const { return *fault_injector_; }

  CpuDevice& cpu() { return *cpu_; }
  AccelDevice& gpu() { return *gpu_; }
  AccelDevice& dsp() { return *dsp_; }
  WifiDevice& wifi() { return *wifi_; }
  DisplayDevice& display() { return *display_; }
  GpsDevice& gps() { return *gps_; }
  StorageDevice& storage() { return *storage_; }
  PowerMeter& meter() { return *meter_; }

  PowerRail& cpu_rail() { return *cpu_rail_; }
  PowerRail& gpu_rail() { return *gpu_rail_; }
  PowerRail& dsp_rail() { return *dsp_rail_; }
  PowerRail& wifi_rail() { return *wifi_rail_; }
  PowerRail& display_rail() { return *display_rail_; }
  PowerRail& gps_rail() { return *gps_rail_; }
  PowerRail& storage_rail() { return *storage_rail_; }

  PowerRail& RailFor(HwComponent hw);
  const BoardConfig& config() const { return config_; }

  // Snapshot support: serialises every rail history, every device, the meter,
  // the board RNG, and the fault-injector streams. The simulator clock and
  // pending events are handled by the snapshot layer (the devices hand their
  // timers to |rearmer|); configuration is not serialised — restore requires
  // a Board built from the identical BoardConfig.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r, EventRearmer& rearmer);

 private:
  BoardConfig config_;
  Simulator sim_;
  Rng rng_;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::unique_ptr<PowerRail> cpu_rail_;
  std::unique_ptr<PowerRail> gpu_rail_;
  std::unique_ptr<PowerRail> dsp_rail_;
  std::unique_ptr<PowerRail> wifi_rail_;
  std::unique_ptr<PowerRail> display_rail_;
  std::unique_ptr<PowerRail> gps_rail_;
  std::unique_ptr<PowerRail> storage_rail_;
  std::unique_ptr<CpuDevice> cpu_;
  std::unique_ptr<AccelDevice> gpu_;
  std::unique_ptr<AccelDevice> dsp_;
  std::unique_ptr<WifiDevice> wifi_;
  std::unique_ptr<DisplayDevice> display_;
  std::unique_ptr<GpsDevice> gps_;
  std::unique_ptr<StorageDevice> storage_;
  std::unique_ptr<PowerMeter> meter_;
};

}  // namespace psbox

#endif  // SRC_HW_BOARD_H_
