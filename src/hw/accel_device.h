// Accelerator model: an asynchronous command-queue device (GPU or DSP).
//
// CPU-side software dispatches commands and is notified of completion by an
// interrupt, with no visibility into execution in between (§2.3 "blurry
// request boundary"). The device executes up to |slots| commands concurrently
// (GPU pipelining / DSP multi-core), so in-flight commands from different
// apps overlap in time and their power impacts superpose with an interference
// term — exactly the entanglement of Fig 3b. Configured as:
//   * GPU: 2 pipelined slots, PowerVR SGX544-like operating points;
//   * DSP: 4 spatial slots, TI C66x-like operating points.

#ifndef SRC_HW_ACCEL_DEVICE_H_
#define SRC_HW_ACCEL_DEVICE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/hw/cpu_device.h"
#include "src/hw/power_rail.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"

namespace psbox {

class EventRearmer;

struct AccelCommand {
  uint64_t id = 0;
  AppId app = kNoApp;
  // Workload-defined command type; commands of the same type have the same
  // nominal power/duration signature (the colours in Fig 3b).
  int type = 0;
  // Execution time at the top operating point with the device to itself.
  DurationNs nominal_work = 0;
  // Additional rail draw while this command executes at the top OPP.
  Watts active_power = 0.0;
};

// Completion record delivered to the driver, with the true execution span
// (which the CPU side of a real system would *not* know; exposed here for
// ground-truth validation in tests and figures).
struct AccelCompletion {
  AccelCommand cmd;
  TimeNs dispatch_time = 0;
  TimeNs start_time = 0;
  TimeNs end_time = 0;
};

struct AccelConfig {
  std::string name = "accel";
  int slots = 2;
  std::vector<CpuOpp> opps = {{200, 0.95}, {304, 1.05}, {400, 1.15}};
  Watts idle_power = 0.12;
  // Each extra in-flight command stretches everyone's execution by this
  // fraction (shared bandwidth / scheduling interference).
  double contention_slowdown = 0.18;
  // Each extra in-flight command discounts the summed active power by this
  // fraction (shared front-end; power impacts entangle sub-additively).
  double power_interference = 0.10;
};

class AccelDevice {
 public:
  using CompletionCallback = std::function<void(const AccelCompletion&)>;

  AccelDevice(Simulator* sim, PowerRail* rail, AccelConfig config);

  // Whether another command can enter execution right now.
  bool CanDispatch() const { return static_cast<int>(in_flight_.size()) < config_.slots; }
  int in_flight() const { return static_cast<int>(in_flight_.size()); }
  int slots() const { return config_.slots; }

  // Starts executing |cmd|; requires CanDispatch(). The completion interrupt
  // fires through the callback installed with set_on_complete(). With a fault
  // injector attached, the command may hang (wedging its slot until Reset())
  // or suffer a latency spike.
  void Dispatch(const AccelCommand& cmd);

  void set_on_complete(CompletionCallback cb) { on_complete_ = std::move(cb); }

  // Optional fault hook; null (the default) means an ideal device.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  // A command aborted by a device reset; the driver decides whether to
  // requeue it (execution restarts from scratch — partial progress is lost).
  struct AbortedCommand {
    AccelCommand cmd;
    bool hung = false;  // this command wedged the engine (vs innocent victim)
  };

  // Engine reset: aborts every in-flight command (hung or not), cancels the
  // pending completion interrupt and returns the engine to an empty, usable
  // state at the current operating point. The kernel driver's watchdog path.
  std::vector<AbortedCommand> Reset();

  // True when no live (non-hung) command can ever complete — i.e. the engine
  // is wedged and only Reset() can recover it.
  bool Wedged() const;

  uint64_t resets() const { return resets_; }
  uint64_t hung_commands() const { return hung_commands_; }

  // Operating point; the accelerator's main lingering power state, which
  // psbox virtualises per sandbox (§4.2).
  void SetOppIndex(int opp);
  int opp_index() const { return opp_index_; }
  int num_opps() const { return static_cast<int>(config_.opps.size()); }

  // Apps with at least one command currently in flight.
  std::vector<AppId> ActiveApps() const;

  Watts ModelPower() const;
  const AccelConfig& config() const { return config_; }
  PowerRail* rail() { return rail_; }

  // Snapshot support: in-flight commands with their exact remaining work, the
  // lingering OPP index, reset/hang counters, and the pending completion
  // interrupt (re-armed at its exact saved time through |rearmer|).
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r, EventRearmer& rearmer);

 private:
  struct Exec {
    AccelCommand cmd;
    TimeNs dispatch_time;
    TimeNs start_time;
    // Remaining work expressed in nominal-duration nanoseconds.
    double remaining_work;
    // A hung command occupies its slot (contention + power) but makes no
    // progress and never completes; cleared only by Reset().
    bool hung = false;
  };

  double SpeedFactor() const;
  double PowerScale() const;
  // Nominal-work consumed per real nanosecond under current freq/contention.
  double ExecutionRate() const;
  // Folds elapsed time into remaining_work of all in-flight commands.
  void AdvanceProgress();
  // (Re)schedules the next completion event.
  void RescheduleCompletion();
  void UpdateRail();
  void OnCompletionEvent();

  Simulator* sim_;
  PowerRail* rail_;
  AccelConfig config_;
  CompletionCallback on_complete_;
  FaultInjector* faults_ = nullptr;
  std::vector<Exec> in_flight_;
  TimeNs last_progress_time_ = 0;
  int opp_index_;
  EventId completion_event_ = kInvalidEventId;
  uint64_t resets_ = 0;
  uint64_t hung_commands_ = 0;
};

// Factory configurations for the two accelerators of the paper's platform.
AccelConfig MakeGpuConfig();
AccelConfig MakeDspConfig();

}  // namespace psbox

#endif  // SRC_HW_ACCEL_DEVICE_H_
