// OLED display model (§7 "Support psbox on extra hardware").
//
// Modern OLED panels are free of power entanglement: every pixel contributes
// to total power independently, with little lingering state. Apps composite
// surfaces onto the panel; each surface's power contribution is a separable
// function of its area and brightness, so the OS can divide display power
// among apps exactly — a psbox bound to the display needs no resource
// balloons at all. The device keeps a per-app contribution trace that the
// psbox virtual power meter reads directly.

#ifndef SRC_HW_DISPLAY_DEVICE_H_
#define SRC_HW_DISPLAY_DEVICE_H_

#include <map>

#include "src/base/step_trace.h"
#include "src/base/types.h"
#include "src/hw/power_rail.h"
#include "src/sim/simulator.h"

namespace psbox {

struct DisplayConfig {
  // Panel controller draw with the panel on but all pixels black.
  Watts base_power = 0.08;
  // Draw of the full panel lit at brightness 1.0.
  Watts full_panel_power = 1.10;
};

class DisplayDevice {
 public:
  DisplayDevice(Simulator* sim, PowerRail* rail, DisplayConfig config);

  // Composites (or updates) |app|'s surface: |area| in [0, 1] of the panel,
  // |brightness| in [0, 1] mean emitted luminance.
  void SetSurface(AppId app, double area, double brightness);
  void RemoveSurface(AppId app);

  // Instantaneous contribution of |app|'s surface.
  Watts AppPower(AppId app) const;
  // Historical contribution of |app|'s surface at time |t|.
  Watts AppPowerAt(AppId app, TimeNs t) const;
  // Exact energy of |app|'s own pixels over [t0, t1) — directly attributable
  // per §7, no accounting heuristics needed.
  Joules AppEnergy(AppId app, TimeNs t0, TimeNs t1) const;

  Watts ModelPower() const;
  const DisplayConfig& config() const { return config_; }

  // Drops per-app contribution history behind |horizon| (telemetry
  // retention); AppPowerAt/AppEnergy stay exact for t >= horizon. Returns
  // steps dropped across all surfaces.
  size_t TrimHistory(TimeNs horizon);

  // Snapshot support: composited surfaces and per-app contribution traces.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  struct Surface {
    double area = 0.0;
    double brightness = 0.0;
  };

  void Update();

  Simulator* sim_;
  PowerRail* rail_;
  DisplayConfig config_;
  std::map<AppId, Surface> surfaces_;
  // Per-app contribution traces (the per-pixel separability of OLED).
  std::map<AppId, StepTrace> app_traces_;
};

}  // namespace psbox

#endif  // SRC_HW_DISPLAY_DEVICE_H_
