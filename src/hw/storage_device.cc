#include "src/hw/storage_device.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/snapshot/event_rearmer.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

namespace {
// MB/s -> bytes per nanosecond.
double BytesPerNs(double mbps) { return mbps * 1e6 / 1e9; }
}  // namespace

StorageDevice::StorageDevice(Simulator* sim, PowerRail* rail, StorageConfig config)
    : sim_(sim), rail_(rail), config_(config) {}

double StorageDevice::BusRate(bool is_write) const {
  const bool high = power_state_.perf_level > 0;
  if (is_write) {
    return BytesPerNs(high ? config_.write_buffer_mbps_high
                           : config_.write_buffer_mbps_low);
  }
  return BytesPerNs(high ? config_.read_mbps_high : config_.read_mbps_low);
}

Watts StorageDevice::ChannelPower() const {
  const bool high = power_state_.perf_level > 0;
  if (current_.is_write) {
    return high ? config_.write_power_high : config_.write_power_low;
  }
  return high ? config_.read_power_high : config_.read_power_low;
}

Watts StorageDevice::ModelPower() const {
  Watts p = config_.idle_power;
  if (channel_busy_) {
    p += ChannelPower();
  }
  if (flush_active_) {
    p += config_.flush_power;
  }
  return p;
}

void StorageDevice::UpdateRail() { rail_->SetPower(ModelPower()); }

void StorageDevice::Dispatch(const StorageCommand& cmd) {
  PSBOX_CHECK(CanDispatch());
  PSBOX_CHECK_GT(cmd.bytes, 0u);
  channel_busy_ = true;
  current_ = cmd;
  current_dispatch_ = sim_->Now();
  remaining_bytes_ = static_cast<double>(cmd.bytes);
  // The fixed command overhead is a setup prefix; bytes only start moving
  // once it has elapsed.
  last_channel_update_ = sim_->Now() + config_.per_command_overhead;
  hung_ = faults_ != nullptr && faults_->ShouldHangStorageCommand();
  if (hung_) {
    // The command wedges the channel: the bus stays busy (and the rail hot)
    // but no completion will ever fire. Only Reset() clears it.
    ++hung_commands_;
  } else {
    const DurationNs duration =
        config_.per_command_overhead +
        static_cast<DurationNs>(remaining_bytes_ / BusRate(cmd.is_write));
    transfer_event_ =
        sim_->ScheduleAfter(duration, [this] { OnTransferComplete(); });
  }
  UpdateRail();
}

void StorageDevice::OnTransferComplete() {
  transfer_event_ = kInvalidEventId;
  const StorageCommand cmd = current_;
  channel_busy_ = false;
  remaining_bytes_ = 0.0;
  if (cmd.is_write) {
    // The data now sits in the write-back buffer; the flush (and its energy)
    // comes later — the completion interrupt fires regardless.
    if (flush_active_) {
      AdvanceFlush();
      buffer_bytes_ += static_cast<double>(cmd.bytes);
      if (flush_end_event_ != kInvalidEventId) {
        sim_->Cancel(flush_end_event_);
      }
      flush_end_event_ = sim_->ScheduleAfter(
          static_cast<DurationNs>(buffer_bytes_ / BytesPerNs(config_.flush_mbps)),
          [this] { OnFlushComplete(); });
    } else {
      buffer_bytes_ += static_cast<double>(cmd.bytes);
      ArmFlushStart();
    }
  }
  UpdateRail();
  StorageCompletion done;
  done.cmd = cmd;
  done.dispatch_time = current_dispatch_;
  done.end_time = sim_->Now();
  if (on_complete_) {
    on_complete_(done);
  }
  NotifyIfQuiescent();
}

void StorageDevice::ArmFlushStart() {
  if (flush_start_event_ != kInvalidEventId) {
    sim_->Cancel(flush_start_event_);
  }
  flush_start_event_ =
      sim_->ScheduleAfter(power_state_.flush_delay, [this] { BeginFlush(); });
}

void StorageDevice::BeginFlush() {
  flush_start_event_ = kInvalidEventId;
  PSBOX_CHECK(!flush_active_);
  PSBOX_CHECK_GT(buffer_bytes_, 0.0);
  flush_active_ = true;
  last_flush_update_ = sim_->Now();
  flush_end_event_ = sim_->ScheduleAfter(
      static_cast<DurationNs>(buffer_bytes_ / BytesPerNs(config_.flush_mbps)),
      [this] { OnFlushComplete(); });
  UpdateRail();
}

void StorageDevice::AdvanceFlush() {
  if (!flush_active_) {
    return;
  }
  const TimeNs now = sim_->Now();
  buffer_bytes_ -= static_cast<double>(now - last_flush_update_) *
                   BytesPerNs(config_.flush_mbps);
  buffer_bytes_ = std::max(buffer_bytes_, 0.0);
  last_flush_update_ = now;
}

void StorageDevice::OnFlushComplete() {
  flush_end_event_ = kInvalidEventId;
  flush_active_ = false;
  buffer_bytes_ = 0.0;
  UpdateRail();
  NotifyIfQuiescent();
}

void StorageDevice::NotifyIfQuiescent() {
  if (Quiescent() && on_quiescent_) {
    on_quiescent_();
  }
}

size_t StorageDevice::buffered_bytes() const {
  double bytes = buffer_bytes_;
  if (flush_active_) {
    bytes -= static_cast<double>(sim_->Now() - last_flush_update_) *
             BytesPerNs(config_.flush_mbps);
  }
  return static_cast<size_t>(std::max(bytes, 0.0));
}

std::vector<StorageDevice::AbortedCommand> StorageDevice::Reset() {
  std::vector<AbortedCommand> aborted;
  ++resets_;
  if (channel_busy_) {
    if (transfer_event_ != kInvalidEventId) {
      sim_->Cancel(transfer_event_);
      transfer_event_ = kInvalidEventId;
    }
    aborted.push_back(AbortedCommand{current_, hung_});
    channel_busy_ = false;
    hung_ = false;
    remaining_bytes_ = 0.0;
  }
  // The write-back buffer survives the reset: already-acknowledged data keeps
  // flushing to the array (its energy has to go somewhere).
  UpdateRail();
  return aborted;
}

void StorageDevice::SaveState(SnapshotWriter& w) const {
  w.U32(static_cast<uint32_t>(power_state_.perf_level));
  w.I64(power_state_.flush_delay);
  w.Bool(channel_busy_);
  w.Bool(hung_);
  w.U64(current_.id);
  w.I64(current_.app);
  w.Bool(current_.is_write);
  w.U64(current_.bytes);
  w.I64(current_dispatch_);
  w.F64(remaining_bytes_);
  w.I64(last_channel_update_);
  w.F64(buffer_bytes_);
  w.Bool(flush_active_);
  w.I64(last_flush_update_);
  w.U64(resets_);
  w.U64(hung_commands_);
  SaveEvent(w, *sim_, transfer_event_);
  SaveEvent(w, *sim_, flush_start_event_);
  SaveEvent(w, *sim_, flush_end_event_);
}

void StorageDevice::RestoreState(SnapshotReader& r, EventRearmer& rearmer) {
  power_state_.perf_level = static_cast<int>(r.U32());
  power_state_.flush_delay = r.I64();
  channel_busy_ = r.Bool();
  hung_ = r.Bool();
  current_.id = r.U64();
  current_.app = static_cast<AppId>(r.I64());
  current_.is_write = r.Bool();
  current_.bytes = r.U64();
  current_dispatch_ = r.I64();
  remaining_bytes_ = r.F64();
  last_channel_update_ = r.I64();
  buffer_bytes_ = r.F64();
  flush_active_ = r.Bool();
  last_flush_update_ = r.I64();
  resets_ = r.U64();
  hung_commands_ = r.U64();
  transfer_event_ = kInvalidEventId;
  flush_start_event_ = kInvalidEventId;
  flush_end_event_ = kInvalidEventId;
  LoadEvent(r, rearmer, [this](TimeNs when) {
    transfer_event_ = sim_->ScheduleAt(when, [this] { OnTransferComplete(); });
  });
  LoadEvent(r, rearmer, [this](TimeNs when) {
    flush_start_event_ = sim_->ScheduleAt(when, [this] { BeginFlush(); });
  });
  LoadEvent(r, rearmer, [this](TimeNs when) {
    flush_end_event_ = sim_->ScheduleAt(when, [this] { OnFlushComplete(); });
  });
}

void StorageDevice::SetPowerState(const StoragePowerState& state) {
  if (state.perf_level == power_state_.perf_level &&
      state.flush_delay == power_state_.flush_delay) {
    return;
  }
  // Rescale the in-progress transfer to the new bus speed: work done so far
  // is banked at the old rate, the remainder re-timed at the new one.
  if (channel_busy_ && !hung_) {
    const TimeNs now = sim_->Now();
    if (now > last_channel_update_) {
      remaining_bytes_ -= static_cast<double>(now - last_channel_update_) *
                          BusRate(current_.is_write);
      remaining_bytes_ = std::max(remaining_bytes_, 0.0);
      last_channel_update_ = now;
    }
    power_state_ = state;
    if (transfer_event_ != kInvalidEventId) {
      sim_->Cancel(transfer_event_);
    }
    // Any leftover setup prefix still has to elapse before bytes move again.
    const DurationNs lead = std::max<TimeNs>(0, last_channel_update_ - now);
    transfer_event_ = sim_->ScheduleAfter(
        lead + static_cast<DurationNs>(remaining_bytes_ /
                                       BusRate(current_.is_write)),
        [this] { OnTransferComplete(); });
  } else {
    power_state_ = state;
  }
  UpdateRail();
}

}  // namespace psbox
