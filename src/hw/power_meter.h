// In-situ power meter (DAQ model).
//
// Models the paper's measurement rig: an MCCDAQ USB1608G sampling four
// distinct power rails at up to 100 kHz, clock-synchronised with the target
// CPU so every sample is timestamped on the shared simulated clock (§5).
// Samples carry Gaussian measurement noise; exact (noise-free) energy queries
// are also provided for ground truth in tests.

#ifndef SRC_HW_POWER_METER_H_
#define SRC_HW_POWER_METER_H_

#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/hw/power_rail.h"
#include "src/sim/fault_injector.h"

namespace psbox {

struct PowerSample {
  TimeNs timestamp;
  Watts watts;
  // True when the value was synthesised by model-based estimation (the DAQ
  // was inside a dropout window) rather than measured.
  bool estimated = false;
};

struct PowerMeterConfig {
  DurationNs sample_period = 10 * kMicrosecond;  // 100 kHz
  Watts noise_stddev = 0.004;                    // ~4 mW per-sample noise
};

class PowerMeter {
 public:
  PowerMeter(Rng rng, PowerMeterConfig config);

  // Timestamped samples of |rail| over [t0, t1) at the configured rate.
  // Samples falling inside a meter-dropout fault window are omitted — the
  // DAQ simply has a gap there, as a glitching USB meter would.
  std::vector<PowerSample> SampleRail(const PowerRail& rail, TimeNs t0, TimeNs t1);

  // Optional fault hook; null (the default) means a glitch-free meter.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  uint64_t samples_dropped() const { return samples_dropped_; }

  // Noise-free energy over [t0, t1) (the DAQ integrates far above the
  // sampling rate; treated as exact).
  Joules MeasureEnergy(const PowerRail& rail, TimeNs t0, TimeNs t1) const;

  // Trapezoid-free summation of sampled power; what an app computing energy
  // from samples would get.
  static Joules EnergyFromSamples(const std::vector<PowerSample>& samples,
                                  DurationNs sample_period);

  const PowerMeterConfig& config() const { return config_; }

  // Snapshot support: the noise RNG stream position and the dropout counter.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  Rng rng_;
  PowerMeterConfig config_;
  FaultInjector* faults_ = nullptr;
  uint64_t samples_dropped_ = 0;
};

}  // namespace psbox

#endif  // SRC_HW_POWER_METER_H_
