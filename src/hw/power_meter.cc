#include "src/hw/power_meter.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

PowerMeter::PowerMeter(Rng rng, PowerMeterConfig config)
    : rng_(rng), config_(config) {
  PSBOX_CHECK_GT(config_.sample_period, 0);
}

std::vector<PowerSample> PowerMeter::SampleRail(const PowerRail& rail, TimeNs t0,
                                                TimeNs t1) {
  std::vector<PowerSample> samples;
  if (t1 <= t0) {
    return samples;
  }
  samples.reserve(static_cast<size_t>((t1 - t0) / config_.sample_period) + 1);
  for (TimeNs t = t0; t < t1; t += config_.sample_period) {
    if (faults_ != nullptr && faults_->MeterDroppedAt(t)) {
      ++samples_dropped_;
      continue;
    }
    const Watts truth = rail.PowerAt(t);
    const Watts noisy =
        std::max(0.0, truth + rng_.Gaussian(0.0, config_.noise_stddev));
    samples.push_back({t, noisy});
  }
  return samples;
}

Joules PowerMeter::MeasureEnergy(const PowerRail& rail, TimeNs t0, TimeNs t1) const {
  return rail.EnergyOver(t0, t1);
}

void PowerMeter::SaveState(SnapshotWriter& w) const {
  rng_.SaveState(w);
  w.U64(samples_dropped_);
}

void PowerMeter::RestoreState(SnapshotReader& r) {
  rng_.RestoreState(r);
  samples_dropped_ = r.U64();
}

Joules PowerMeter::EnergyFromSamples(const std::vector<PowerSample>& samples,
                                     DurationNs sample_period) {
  Joules total = 0.0;
  for (const PowerSample& s : samples) {
    total += s.watts * ToSeconds(sample_period);
  }
  return total;
}

}  // namespace psbox
