// GPS receiver model (§7 "Support psbox on extra hardware").
//
// GPS power is unaffected by concurrent uses once the device is operating:
// any number of apps can read fixes from the one navigation engine. The
// expensive state is the off→operating transition (cold start / satellite
// acquisition), which psbox deliberately does NOT virtualise — recreating it
// per sandbox would be prohibitive, and revealing raw off/suspended state
// would leak other apps' usage (§4.1). While operating, the kernel can
// safely reveal the hardware power to every psbox; while off or acquiring it
// reports idle power instead.

#ifndef SRC_HW_GPS_DEVICE_H_
#define SRC_HW_GPS_DEVICE_H_

#include <set>

#include "src/base/types.h"
#include "src/hw/power_rail.h"
#include "src/sim/simulator.h"

namespace psbox {

class EventRearmer;

enum class GpsState : uint8_t { kOff, kAcquiring, kOn };

struct GpsConfig {
  Watts off_power = 0.004;
  Watts acquire_power = 0.145;  // cold start: correlators at full tilt
  Watts on_power = 0.075;       // tracking/navigation
  DurationNs cold_start = 2 * kSecond;
};

class GpsDevice {
 public:
  GpsDevice(Simulator* sim, PowerRail* rail, GpsConfig config);

  // Reference-counted use: the device powers on with the first requester and
  // off with the last release.
  void Request(AppId app);
  void Release(AppId app);

  GpsState state() const { return state_; }
  bool Operating() const { return state_ == GpsState::kOn; }
  size_t users() const { return users_.size(); }

  Watts ModelPower() const;
  const GpsConfig& config() const { return config_; }

  // The intervals during which the device was operating — what a psbox's
  // virtual meter may reveal (off/acquiring periods read as idle).
  const StepTrace& operating_trace() const { return operating_trace_; }

  // Drops operating history behind |horizon| (telemetry retention); reads at
  // or after the horizon stay exact. Returns steps dropped.
  size_t TrimHistory(TimeNs horizon) { return operating_trace_.TrimBefore(horizon); }

  // Snapshot support: power state, reference counts, operating history, and
  // the in-flight acquisition event (re-armed through |rearmer|).
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r, EventRearmer& rearmer);

 private:
  void Update();
  void OnAcquired();

  Simulator* sim_;
  PowerRail* rail_;
  GpsConfig config_;
  GpsState state_ = GpsState::kOff;
  std::set<AppId> users_;
  EventId acquire_event_ = kInvalidEventId;
  StepTrace operating_trace_;  // 1.0 while kOn, else 0.0
};

}  // namespace psbox

#endif  // SRC_HW_GPS_DEVICE_H_
