// Onboard storage model (eMMC-like managed flash).
//
// The controller serialises a single command channel: one read or write
// transfer on the bus at a time. Writes land in the controller's write-back
// buffer at bus speed and complete quickly; the flash translation layer
// flushes the buffer to the NAND array in the background, starting a
// coalescing delay after the last write. The flush keeps the rail hot long
// after the completion interrupt — storage's version of the lingering power
// state / blurry request boundary of §2.3 and Fig 3c: software observes
// "write done" while the energy is still being spent. The OS-controllable
// power state (bus performance level and the coalescing delay) is what psbox
// virtualises per sandbox.

#ifndef SRC_HW_STORAGE_DEVICE_H_
#define SRC_HW_STORAGE_DEVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/base/types.h"
#include "src/hw/power_rail.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"

namespace psbox {

class EventRearmer;

struct StorageCommand {
  uint64_t id = 0;
  AppId app = kNoApp;
  bool is_write = false;
  size_t bytes = 0;
};

struct StorageCompletion {
  StorageCommand cmd;
  TimeNs dispatch_time = 0;
  TimeNs end_time = 0;
};

// The OS-controllable power state, virtualised per psbox (§4.2).
struct StoragePowerState {
  // 0 = low bus performance (slower transfers, lower draw), 1 = high.
  int perf_level = 1;
  // Coalescing window before the write-back buffer starts flushing.
  DurationNs flush_delay = 10 * kMillisecond;
};

struct StorageConfig {
  Watts idle_power = 0.020;
  // Bus transfer draw while a command occupies the channel.
  Watts read_power_high = 0.28;
  Watts read_power_low = 0.18;
  Watts write_power_high = 0.33;
  Watts write_power_low = 0.22;
  // NAND-array programming draw while the buffer flushes (superposes with
  // any concurrent channel activity — the entanglement term).
  Watts flush_power = 0.26;
  double read_mbps_high = 280.0;
  double read_mbps_low = 140.0;
  // Writes stream into the buffer at bus speed...
  double write_buffer_mbps_high = 380.0;
  double write_buffer_mbps_low = 190.0;
  // ...and trickle to the array at programming speed.
  double flush_mbps = 45.0;
  DurationNs per_command_overhead = 60 * kMicrosecond;
};

class StorageDevice {
 public:
  using CompletionCallback = std::function<void(const StorageCompletion&)>;

  StorageDevice(Simulator* sim, PowerRail* rail, StorageConfig config);

  bool CanDispatch() const { return !channel_busy_; }
  // Starts the bus transfer for |cmd|; requires CanDispatch(). With a fault
  // injector attached, the command may wedge the channel until Reset().
  void Dispatch(const StorageCommand& cmd);

  void set_on_complete(CompletionCallback cb) { on_complete_ = std::move(cb); }
  // Fired whenever the device drains to a fully quiescent state (channel
  // idle and write-back buffer empty) — the driver's drain-phase trigger.
  void set_on_quiescent(std::function<void()> cb) { on_quiescent_ = std::move(cb); }

  // Optional fault hook; null (the default) means an ideal device.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  struct AbortedCommand {
    StorageCommand cmd;
    bool hung = false;  // wedged the channel (vs innocent queued victim)
  };
  // Controller reset: aborts the in-flight command, returning the channel to
  // an empty usable state. The write-back buffer survives — already-buffered
  // data keeps flushing (its energy has to go somewhere).
  std::vector<AbortedCommand> Reset();
  // True when the in-flight command is hung and only Reset() helps.
  bool Wedged() const { return channel_busy_ && hung_; }

  // Channel idle AND write-back buffer fully flushed: no storage energy is
  // attributable to past requests any more (what balloon drains wait for).
  bool Quiescent() const { return !channel_busy_ && !flush_active_ && flush_start_event_ == kInvalidEventId; }
  bool channel_busy() const { return channel_busy_; }
  size_t buffered_bytes() const;
  bool flushing() const { return flush_active_; }

  // Applies an OS-selected power state; an in-progress transfer is rescaled
  // to the new bus speed.
  void SetPowerState(const StoragePowerState& state);
  const StoragePowerState& power_state() const { return power_state_; }

  Watts ModelPower() const;
  uint64_t resets() const { return resets_; }
  uint64_t hung_commands() const { return hung_commands_; }
  const StorageConfig& config() const { return config_; }
  PowerRail* rail() { return rail_; }

  // Snapshot support: channel transfer, write-back buffer/flush machinery,
  // the virtualisable power state, and all three timers.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r, EventRearmer& rearmer);

 private:
  double BusRate(bool is_write) const;  // bytes per nanosecond
  Watts ChannelPower() const;
  void UpdateRail();
  void OnTransferComplete();
  // (Re)arms the coalescing timer after a write completes into the buffer.
  void ArmFlushStart();
  void BeginFlush();
  void AdvanceFlush();
  void OnFlushComplete();
  void NotifyIfQuiescent();

  Simulator* sim_;
  PowerRail* rail_;
  StorageConfig config_;
  StoragePowerState power_state_;
  CompletionCallback on_complete_;
  std::function<void()> on_quiescent_;
  FaultInjector* faults_ = nullptr;

  // Channel (one transfer at a time).
  bool channel_busy_ = false;
  bool hung_ = false;
  StorageCommand current_;
  TimeNs current_dispatch_ = 0;
  double remaining_bytes_ = 0.0;  // of the in-progress transfer
  TimeNs last_channel_update_ = 0;
  EventId transfer_event_ = kInvalidEventId;

  // Write-back buffer & background flush.
  double buffer_bytes_ = 0.0;
  bool flush_active_ = false;
  TimeNs last_flush_update_ = 0;
  EventId flush_start_event_ = kInvalidEventId;
  EventId flush_end_event_ = kInvalidEventId;

  uint64_t resets_ = 0;
  uint64_t hung_commands_ = 0;
};

}  // namespace psbox

#endif  // SRC_HW_STORAGE_DEVICE_H_
