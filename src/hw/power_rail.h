// A measurable power rail.
//
// Our prototype boards (DESIGN.md) expose one rail per major component, like
// the paper's AM57EVM instrumented through four distinct rails. Components
// push their instantaneous draw here whenever their state changes; the rail
// keeps the exact piecewise-constant history that the in-situ power meter
// (hw::PowerMeter) and the accounting baselines read back.

#ifndef SRC_HW_POWER_RAIL_H_
#define SRC_HW_POWER_RAIL_H_

#include <string>

#include "src/base/step_trace.h"
#include "src/base/time.h"

namespace psbox {

class Simulator;

class PowerRail {
 public:
  PowerRail(Simulator* sim, std::string name, Watts idle_power);

  // Sets the rail draw as of the current simulated time.
  void SetPower(Watts watts);

  // Instantaneous draw at |t| (idle power before the first update).
  Watts PowerAt(TimeNs t) const;

  // Exact energy over [t0, t1).
  Joules EnergyOver(TimeNs t0, TimeNs t1) const;

  Watts idle_power() const { return idle_power_; }
  const std::string& name() const { return name_; }
  const StepTrace& trace() const { return trace_; }

  // Drops trace history behind |horizon| (telemetry retention). Lookups and
  // windows at or after the horizon — and whole-history energy queries, whose
  // base offset the StepTrace retains — stay exact. Returns steps dropped.
  size_t TrimBefore(TimeNs horizon) { return trace_.TrimBefore(horizon); }

  // Snapshot support: the rail's only state is its power history (name and
  // idle power are configuration).
  void SaveState(SnapshotWriter& w) const { trace_.SaveState(w); }
  void RestoreState(SnapshotReader& r) { trace_.RestoreState(r); }

 private:
  Simulator* sim_;
  std::string name_;
  Watts idle_power_;
  StepTrace trace_;
};

}  // namespace psbox

#endif  // SRC_HW_POWER_RAIL_H_
