#include "src/hw/display_device.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

DisplayDevice::DisplayDevice(Simulator* sim, PowerRail* rail, DisplayConfig config)
    : sim_(sim), rail_(rail), config_(config) {
  Update();
}

void DisplayDevice::SetSurface(AppId app, double area, double brightness) {
  PSBOX_CHECK_GE(area, 0.0);
  PSBOX_CHECK_LE(area, 1.0);
  PSBOX_CHECK_GE(brightness, 0.0);
  PSBOX_CHECK_LE(brightness, 1.0);
  surfaces_[app] = Surface{area, brightness};
  Update();
}

void DisplayDevice::RemoveSurface(AppId app) {
  surfaces_.erase(app);
  auto it = app_traces_.find(app);
  if (it != app_traces_.end()) {
    it->second.Set(sim_->Now(), 0.0);
  }
  Update();
}

Watts DisplayDevice::AppPower(AppId app) const {
  auto it = surfaces_.find(app);
  if (it == surfaces_.end()) {
    return 0.0;
  }
  return config_.full_panel_power * it->second.area * it->second.brightness;
}

Watts DisplayDevice::AppPowerAt(AppId app, TimeNs t) const {
  auto it = app_traces_.find(app);
  if (it == app_traces_.end()) {
    return 0.0;
  }
  return it->second.ValueAt(t);
}

Joules DisplayDevice::AppEnergy(AppId app, TimeNs t0, TimeNs t1) const {
  auto it = app_traces_.find(app);
  if (it == app_traces_.end()) {
    return 0.0;
  }
  return it->second.IntegralOver(t0, t1);
}

Watts DisplayDevice::ModelPower() const {
  Watts total = config_.base_power;
  for (const auto& [app, surface] : surfaces_) {
    (void)surface;
    total += AppPower(app);
  }
  return total;
}

size_t DisplayDevice::TrimHistory(TimeNs horizon) {
  size_t dropped = 0;
  for (auto& [app, trace] : app_traces_) {
    dropped += trace.TrimBefore(horizon);
  }
  return dropped;
}

void DisplayDevice::SaveState(SnapshotWriter& w) const {
  w.U64(surfaces_.size());
  for (const auto& [app, surface] : surfaces_) {
    w.I64(app);
    w.F64(surface.area);
    w.F64(surface.brightness);
  }
  w.U64(app_traces_.size());
  for (const auto& [app, trace] : app_traces_) {
    w.I64(app);
    trace.SaveState(w);
  }
}

void DisplayDevice::RestoreState(SnapshotReader& r) {
  surfaces_.clear();
  const size_t num_surfaces = r.Count(3 * sizeof(double));
  for (size_t i = 0; i < num_surfaces; ++i) {
    const AppId app = static_cast<AppId>(r.I64());
    Surface s;
    s.area = r.F64();
    s.brightness = r.F64();
    surfaces_[app] = s;
  }
  app_traces_.clear();
  const size_t num_traces = r.Count(sizeof(AppId));
  for (size_t i = 0; i < num_traces; ++i) {
    const AppId app = static_cast<AppId>(r.I64());
    app_traces_[app].RestoreState(r);
    if (!r.ok()) {
      return;
    }
  }
}

void DisplayDevice::Update() {
  for (const auto& [app, surface] : surfaces_) {
    (void)surface;
    app_traces_[app].Set(sim_->Now(), AppPower(app));
  }
  rail_->SetPower(ModelPower());
}

}  // namespace psbox
