// Multicore CPU model with a shared power rail and cluster-wide DVFS.
//
// Modelled after the dual Cortex-A15 cluster of the paper's AM57EVM: all
// cores share one voltage rail, so rail power can only be metered as a whole
// (§2.3 "spatial concurrency in hardware"). The power model deliberately
// reproduces the paper's three entanglement causes:
//
//   * spatial concurrency — per-core dynamic power is discounted when several
//     cores are active (shared uncore / rail interaction), so two instances
//     draw less than 2x one instance (Fig 3a);
//   * lingering power state — the operating point (frequency/voltage) is set
//     by a governor and persists across workloads (Fig 3c);
//   * a shared "uncore" block that powers on whenever any core is active and
//     is unattributable to a single core.

#ifndef SRC_HW_CPU_DEVICE_H_
#define SRC_HW_CPU_DEVICE_H_

#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/hw/power_rail.h"
#include "src/sim/fault_injector.h"

namespace psbox {

// One operating performance point of the cluster.
struct CpuOpp {
  double freq_mhz;
  double volts;
};

struct CpuConfig {
  int num_cores = 2;
  std::vector<CpuOpp> opps = {
      {600, 0.95}, {800, 1.00}, {1000, 1.06}, {1200, 1.15}, {1500, 1.25}};
  // Rail floor with all cores in WFI.
  Watts idle_power = 0.30;
  // Shared uncore (interconnect, L2 control) while any core is active.
  Watts uncore_active_power = 0.30;
  // Dynamic power coefficient: P_dyn = k * f_ghz * v^2 per core at
  // intensity 1.0.
  double dyn_coeff = 0.95;
  // Active leakage per core, proportional to voltage.
  double leak_coeff = 0.08;
  // Multiplicative discount applied to summed per-core power when k cores are
  // active: factor = 1 - share_discount * (k - 1) / max(1, cores - 1).
  double share_discount = 0.10;
};

class CpuDevice {
 public:
  CpuDevice(Simulator* sim, PowerRail* rail, CpuConfig config);

  int num_cores() const { return config_.num_cores; }
  int num_opps() const { return static_cast<int>(config_.opps.size()); }

  // Marks |core| as running work of |app| at the given |intensity| (relative
  // switching activity, ~0.5 for memory-bound up to ~1.3 for vector-heavy),
  // or idle when |active| is false. Updates the rail.
  void SetCoreState(CoreId core, bool active, double intensity, AppId app);

  // Cluster-wide operating point (index into the OPP table). The lingering
  // power state a psbox must virtualise. Returns false when the transition
  // failed (regulator timeout fault): the cluster stays at the previous OPP
  // and the governor is expected to retry.
  bool SetOppIndex(int opp);
  int opp_index() const { return opp_index_; }

  // Optional fault hook; null (the default) means transitions never fail.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  uint64_t failed_transitions() const { return failed_transitions_; }
  const CpuOpp& current_opp() const { return config_.opps[static_cast<size_t>(opp_index_)]; }

  // Relative performance of the current OPP vs the fastest one, in (0, 1].
  // A compute burst of nominal duration d takes d / SpeedFactor().
  double SpeedFactor() const;

  bool CoreActive(CoreId core) const;
  AppId CoreApp(CoreId core) const;
  int ActiveCoreCount() const;

  // Instantaneous rail power implied by the current state; exposed for tests.
  Watts ModelPower() const;

  const CpuConfig& config() const { return config_; }
  PowerRail* rail() { return rail_; }

  // Snapshot support: per-core activity, the lingering OPP index, and the
  // failed-transition counter (the OPP table itself is configuration).
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  struct CoreState {
    bool active = false;
    double intensity = 0.0;
    AppId app = kNoApp;
  };

  void UpdateRail();

  Simulator* sim_;
  PowerRail* rail_;
  CpuConfig config_;
  std::vector<CoreState> cores_;
  int opp_index_ = 0;
  FaultInjector* faults_ = nullptr;
  uint64_t failed_transitions_ = 0;
};

}  // namespace psbox

#endif  // SRC_HW_CPU_DEVICE_H_
