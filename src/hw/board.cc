#include "src/hw/board.h"

#include "src/base/check.h"
#include "src/snapshot/event_rearmer.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

Board::Board(BoardConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  // The injector seeds its own per-scope streams from the plan seed, so
  // attaching it never perturbs the board RNG forks below (faultless runs
  // stay bit-identical to pre-fault-injection builds).
  fault_injector_ = std::make_unique<FaultInjector>(config_.faults);
  cpu_rail_ = std::make_unique<PowerRail>(&sim_, "cpu", config_.cpu.idle_power);
  gpu_rail_ = std::make_unique<PowerRail>(&sim_, "gpu", config_.gpu.idle_power);
  dsp_rail_ = std::make_unique<PowerRail>(&sim_, "dsp", config_.dsp.idle_power);
  wifi_rail_ = std::make_unique<PowerRail>(&sim_, "wifi", config_.wifi.idle_power);
  display_rail_ =
      std::make_unique<PowerRail>(&sim_, "display", config_.display.base_power);
  gps_rail_ = std::make_unique<PowerRail>(&sim_, "gps", config_.gps.off_power);
  storage_rail_ =
      std::make_unique<PowerRail>(&sim_, "storage", config_.storage.idle_power);
  cpu_ = std::make_unique<CpuDevice>(&sim_, cpu_rail_.get(), config_.cpu);
  gpu_ = std::make_unique<AccelDevice>(&sim_, gpu_rail_.get(), config_.gpu);
  dsp_ = std::make_unique<AccelDevice>(&sim_, dsp_rail_.get(), config_.dsp);
  wifi_ = std::make_unique<WifiDevice>(&sim_, wifi_rail_.get(), config_.wifi);
  display_ = std::make_unique<DisplayDevice>(&sim_, display_rail_.get(),
                                             config_.display);
  gps_ = std::make_unique<GpsDevice>(&sim_, gps_rail_.get(), config_.gps);
  // Rails and the storage device schedule no events and fork no RNG, so
  // adding them here leaves meter seeding and event IDs untouched.
  storage_ = std::make_unique<StorageDevice>(&sim_, storage_rail_.get(),
                                             config_.storage);
  meter_ = std::make_unique<PowerMeter>(rng_.Fork(), config_.meter);

  cpu_->set_fault_injector(fault_injector_.get());
  gpu_->set_fault_injector(fault_injector_.get());
  dsp_->set_fault_injector(fault_injector_.get());
  wifi_->set_fault_injector(fault_injector_.get());
  storage_->set_fault_injector(fault_injector_.get());
  meter_->set_fault_injector(fault_injector_.get());
}

void Board::SaveState(SnapshotWriter& w) const {
  w.Section("board");
  rng_.SaveState(w);
  fault_injector_->SaveState(w);
  // Rails in construction order, then devices in construction order.
  cpu_rail_->SaveState(w);
  gpu_rail_->SaveState(w);
  dsp_rail_->SaveState(w);
  wifi_rail_->SaveState(w);
  display_rail_->SaveState(w);
  gps_rail_->SaveState(w);
  storage_rail_->SaveState(w);
  cpu_->SaveState(w);
  gpu_->SaveState(w);
  dsp_->SaveState(w);
  wifi_->SaveState(w);
  display_->SaveState(w);
  gps_->SaveState(w);
  storage_->SaveState(w);
  meter_->SaveState(w);
}

void Board::RestoreState(SnapshotReader& r, EventRearmer& rearmer) {
  if (!r.Section("board")) {
    return;
  }
  rng_.RestoreState(r);
  fault_injector_->RestoreState(r);
  cpu_rail_->RestoreState(r);
  gpu_rail_->RestoreState(r);
  dsp_rail_->RestoreState(r);
  wifi_rail_->RestoreState(r);
  display_rail_->RestoreState(r);
  gps_rail_->RestoreState(r);
  storage_rail_->RestoreState(r);
  cpu_->RestoreState(r);
  gpu_->RestoreState(r, rearmer);
  dsp_->RestoreState(r, rearmer);
  wifi_->RestoreState(r, rearmer);
  display_->RestoreState(r);
  gps_->RestoreState(r, rearmer);
  storage_->RestoreState(r, rearmer);
  meter_->RestoreState(r);
}

PowerRail& Board::RailFor(HwComponent hw) {
  switch (hw) {
    case HwComponent::kCpu:
      return *cpu_rail_;
    case HwComponent::kGpu:
      return *gpu_rail_;
    case HwComponent::kDsp:
      return *dsp_rail_;
    case HwComponent::kWifi:
      return *wifi_rail_;
    case HwComponent::kDisplay:
      return *display_rail_;
    case HwComponent::kGps:
      return *gps_rail_;
    case HwComponent::kStorage:
      return *storage_rail_;
  }
  PSBOX_CHECK(false);
}

}  // namespace psbox
