#include "src/hw/cpu_device.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/sim/simulator.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

CpuDevice::CpuDevice(Simulator* sim, PowerRail* rail, CpuConfig config)
    : sim_(sim), rail_(rail), config_(std::move(config)) {
  PSBOX_CHECK_GT(config_.num_cores, 0);
  PSBOX_CHECK(!config_.opps.empty());
  cores_.resize(static_cast<size_t>(config_.num_cores));
  UpdateRail();
}

void CpuDevice::SetCoreState(CoreId core, bool active, double intensity, AppId app) {
  PSBOX_CHECK_GE(core, 0);
  PSBOX_CHECK_LT(core, config_.num_cores);
  auto& state = cores_[static_cast<size_t>(core)];
  state.active = active;
  state.intensity = active ? intensity : 0.0;
  state.app = active ? app : kNoApp;
  UpdateRail();
}

bool CpuDevice::SetOppIndex(int opp) {
  PSBOX_CHECK_GE(opp, 0);
  PSBOX_CHECK_LT(opp, num_opps());
  if (opp == opp_index_) {
    return true;  // no transition attempted
  }
  if (faults_ != nullptr && faults_->ShouldFailFreqTransition("cpu")) {
    // Regulator timeout: the cluster keeps running at the old OPP.
    ++failed_transitions_;
    return false;
  }
  opp_index_ = opp;
  UpdateRail();
  return true;
}

double CpuDevice::SpeedFactor() const {
  return current_opp().freq_mhz / config_.opps.back().freq_mhz;
}

bool CpuDevice::CoreActive(CoreId core) const {
  return cores_[static_cast<size_t>(core)].active;
}

AppId CpuDevice::CoreApp(CoreId core) const {
  return cores_[static_cast<size_t>(core)].app;
}

int CpuDevice::ActiveCoreCount() const {
  int n = 0;
  for (const auto& c : cores_) {
    if (c.active) {
      ++n;
    }
  }
  return n;
}

Watts CpuDevice::ModelPower() const {
  const CpuOpp& opp = current_opp();
  const double f_ghz = opp.freq_mhz / 1000.0;
  const double v2 = opp.volts * opp.volts;

  double core_sum = 0.0;
  int active = 0;
  for (const auto& c : cores_) {
    if (!c.active) {
      continue;
    }
    ++active;
    core_sum += config_.dyn_coeff * c.intensity * f_ghz * v2 +
                config_.leak_coeff * opp.volts;
  }
  if (active == 0) {
    return config_.idle_power;
  }
  // Spatial-concurrency entanglement: concurrently active cores contend on
  // shared resources, lowering combined switching activity below the sum of
  // solo runs. This is what defeats "double the one-instance power" (Fig 3a).
  const double denom = std::max(1, config_.num_cores - 1);
  const double share =
      1.0 - config_.share_discount * static_cast<double>(active - 1) / denom;
  return config_.idle_power + config_.uncore_active_power + core_sum * share;
}

void CpuDevice::SaveState(SnapshotWriter& w) const {
  w.U64(cores_.size());
  for (const CoreState& c : cores_) {
    w.Bool(c.active);
    w.F64(c.intensity);
    w.I64(c.app);
  }
  w.U32(static_cast<uint32_t>(opp_index_));
  w.U64(failed_transitions_);
}

void CpuDevice::RestoreState(SnapshotReader& r) {
  const size_t n = r.Count(3);
  if (n != cores_.size()) {
    r.Fail("cpu core count mismatch between snapshot and config");
    return;
  }
  for (CoreState& c : cores_) {
    c.active = r.Bool();
    c.intensity = r.F64();
    c.app = static_cast<AppId>(r.I64());
  }
  opp_index_ = static_cast<int>(r.U32());
  if (opp_index_ < 0 || opp_index_ >= num_opps()) {
    r.Fail("cpu opp index out of range in snapshot");
    return;
  }
  failed_transitions_ = r.U64();
}

void CpuDevice::UpdateRail() { rail_->SetPower(ModelPower()); }

}  // namespace psbox
