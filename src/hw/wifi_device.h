// WiFi NIC model (TI WiLink8-like).
//
// The NIC serialises the half-duplex medium: one frame (TX or RX) at a time.
// Its power is dominated by a state machine with a *lingering* component: the
// chip stays in a high-power "tail" state for a power-save timeout after the
// last activity before dropping back to power-save idle — the WiFi analogue
// of Fig 3c. The controllable power state (transmission power level and
// power-save timeout) is what psbox virtualises per sandbox. Packet
// *reception* cannot be deferred by software — mirroring the paper's WiLink8
// limitation (§5), which shows up as the +17 % wget outlier in Fig 6.

#ifndef SRC_HW_WIFI_DEVICE_H_
#define SRC_HW_WIFI_DEVICE_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "src/base/types.h"
#include "src/hw/power_rail.h"
#include "src/sim/fault_injector.h"
#include "src/sim/simulator.h"

namespace psbox {

class EventRearmer;

struct WifiFrame {
  uint64_t id = 0;
  AppId app = kNoApp;
  int socket = -1;
  size_t bytes = 0;
  bool is_rx = false;
};

struct WifiFrameDone {
  WifiFrame frame;
  TimeNs start_time = 0;
  TimeNs end_time = 0;
  // False when the frame was corrupted on the air or sent into a link-down
  // window: it consumed its airtime (and power) but was never ACKed. The
  // driver is expected to retransmit. RX frames are always delivered.
  bool delivered = true;
};

// The OS-controllable power state, virtualised per psbox (§4.2).
struct WifiPowerState {
  // 0 = low transmission power, 1 = high. Affects TX draw and rate.
  int tx_power_level = 1;
  // How long the chip lingers in the tail state after activity.
  DurationNs ps_timeout = 45 * kMillisecond;
};

struct WifiConfig {
  Watts idle_power = 0.045;  // power-save doze
  Watts tail_power = 0.30;   // awake, no traffic, PS timer running
  Watts rx_power = 0.55;
  Watts tx_power_high = 0.95;
  Watts tx_power_low = 0.68;
  double rate_mbps_high = 24.0;
  double rate_mbps_low = 16.0;
  DurationNs per_frame_overhead = 180 * kMicrosecond;  // contention + preamble + ACK
};

class WifiDevice {
 public:
  using FrameCallback = std::function<void(const WifiFrameDone&)>;

  WifiDevice(Simulator* sim, PowerRail* rail, WifiConfig config);

  // Enqueues a frame for the medium; TX frames come from the driver, RX
  // frames from the channel model. Completion is reported via the callback.
  void SubmitFrame(const WifiFrame& frame);

  void set_on_frame_done(FrameCallback cb) { on_frame_done_ = std::move(cb); }

  // Optional fault hook; null (the default) means a loss-free medium.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  uint64_t frames_lost() const { return frames_lost_; }

  // Applies an OS-selected power state (the virtualised state).
  void SetPowerState(const WifiPowerState& state);
  const WifiPowerState& power_state() const { return power_state_; }

  // Airtime a frame of |bytes| occupies under the current power state.
  DurationNs FrameAirtime(size_t bytes) const;

  bool busy() const { return busy_; }
  size_t queued_frames() const { return queue_.size(); }
  const WifiConfig& config() const { return config_; }
  PowerRail* rail() { return rail_; }

  // Snapshot support: queued/in-flight frames, the tail state machine, the
  // virtualisable power state, and the frame/tail timers.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r, EventRearmer& rearmer);

 private:
  void StartNextFrame();
  void OnFrameComplete();
  void OnTailExpire();
  void UpdateRail();

  Simulator* sim_;
  PowerRail* rail_;
  WifiConfig config_;
  WifiPowerState power_state_;
  FrameCallback on_frame_done_;
  FaultInjector* faults_ = nullptr;
  uint64_t frames_lost_ = 0;

  std::deque<WifiFrame> queue_;
  bool busy_ = false;
  bool in_tail_ = false;
  WifiFrame current_frame_;
  TimeNs current_start_ = 0;
  EventId frame_event_ = kInvalidEventId;
  EventId tail_event_ = kInvalidEventId;
};

}  // namespace psbox

#endif  // SRC_HW_WIFI_DEVICE_H_
