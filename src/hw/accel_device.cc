#include "src/hw/accel_device.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"
#include "src/snapshot/event_rearmer.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

AccelDevice::AccelDevice(Simulator* sim, PowerRail* rail, AccelConfig config)
    : sim_(sim), rail_(rail), config_(std::move(config)),
      opp_index_(static_cast<int>(config_.opps.size()) - 1) {
  PSBOX_CHECK_GT(config_.slots, 0);
  PSBOX_CHECK(!config_.opps.empty());
  UpdateRail();
}

double AccelDevice::SpeedFactor() const {
  return config_.opps[static_cast<size_t>(opp_index_)].freq_mhz /
         config_.opps.back().freq_mhz;
}

double AccelDevice::PowerScale() const {
  const CpuOpp& opp = config_.opps[static_cast<size_t>(opp_index_)];
  const CpuOpp& top = config_.opps.back();
  return (opp.freq_mhz * opp.volts * opp.volts) /
         (top.freq_mhz * top.volts * top.volts);
}

double AccelDevice::ExecutionRate() const {
  const int k = static_cast<int>(in_flight_.size());
  if (k == 0) {
    return 0.0;
  }
  const double contention = 1.0 + config_.contention_slowdown * (k - 1);
  return SpeedFactor() / contention;
}

void AccelDevice::AdvanceProgress() {
  const TimeNs now = sim_->Now();
  const double rate = ExecutionRate();
  const double elapsed = static_cast<double>(now - last_progress_time_);
  if (rate > 0.0 && elapsed > 0.0) {
    for (Exec& e : in_flight_) {
      if (e.hung) {
        continue;  // a wedged command makes no progress
      }
      e.remaining_work = std::max(0.0, e.remaining_work - elapsed * rate);
    }
  }
  last_progress_time_ = now;
}

void AccelDevice::RescheduleCompletion() {
  if (completion_event_ != kInvalidEventId) {
    sim_->Cancel(completion_event_);
    completion_event_ = kInvalidEventId;
  }
  if (in_flight_.empty()) {
    return;
  }
  const double rate = ExecutionRate();
  PSBOX_CHECK_GT(rate, 0.0);
  // Only live commands can complete; a fully-hung device schedules nothing
  // (it is wedged until the driver's watchdog resets it).
  bool any_live = false;
  double min_remaining = 0.0;
  for (const Exec& e : in_flight_) {
    if (e.hung) {
      continue;
    }
    min_remaining = any_live ? std::min(min_remaining, e.remaining_work)
                             : e.remaining_work;
    any_live = true;
  }
  if (!any_live) {
    return;
  }
  const auto delay = static_cast<DurationNs>(std::ceil(min_remaining / rate));
  completion_event_ = sim_->ScheduleAfter(std::max<DurationNs>(delay, 0),
                                          [this] { OnCompletionEvent(); });
}

void AccelDevice::Dispatch(const AccelCommand& cmd) {
  PSBOX_CHECK(CanDispatch());
  PSBOX_CHECK_GT(cmd.nominal_work, 0);
  AdvanceProgress();
  Exec exec{cmd, sim_->Now(), sim_->Now(), static_cast<double>(cmd.nominal_work),
            /*hung=*/false};
  if (faults_ != nullptr) {
    exec.hung = faults_->ShouldHangCommand(config_.name);
    if (exec.hung) {
      ++hung_commands_;
    } else {
      exec.remaining_work *= faults_->CommandLatencyFactor(config_.name);
    }
  }
  in_flight_.push_back(exec);
  RescheduleCompletion();
  UpdateRail();
}

void AccelDevice::OnCompletionEvent() {
  completion_event_ = kInvalidEventId;
  AdvanceProgress();
  // Collect all commands that finished at this instant (remaining ~ 0).
  std::vector<Exec> done;
  auto it = in_flight_.begin();
  while (it != in_flight_.end()) {
    if (!it->hung && it->remaining_work <= 0.5) {  // sub-ns rounding residue
      done.push_back(*it);
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  RescheduleCompletion();
  UpdateRail();
  for (const Exec& e : done) {
    if (on_complete_) {
      AccelCompletion completion{e.cmd, e.dispatch_time, e.start_time, sim_->Now()};
      on_complete_(completion);
    }
  }
}

bool AccelDevice::Wedged() const {
  bool any_hung = false;
  for (const Exec& e : in_flight_) {
    if (!e.hung) {
      return false;
    }
    any_hung = true;
  }
  return any_hung;
}

std::vector<AccelDevice::AbortedCommand> AccelDevice::Reset() {
  AdvanceProgress();
  if (completion_event_ != kInvalidEventId) {
    sim_->Cancel(completion_event_);
    completion_event_ = kInvalidEventId;
  }
  std::vector<AbortedCommand> aborted;
  aborted.reserve(in_flight_.size());
  for (const Exec& e : in_flight_) {
    aborted.push_back(AbortedCommand{e.cmd, e.hung});
  }
  in_flight_.clear();
  ++resets_;
  UpdateRail();
  return aborted;
}

void AccelDevice::SetOppIndex(int opp) {
  PSBOX_CHECK_GE(opp, 0);
  PSBOX_CHECK_LT(opp, num_opps());
  if (opp == opp_index_) {
    return;
  }
  AdvanceProgress();
  opp_index_ = opp;
  RescheduleCompletion();
  UpdateRail();
}

std::vector<AppId> AccelDevice::ActiveApps() const {
  std::vector<AppId> apps;
  for (const Exec& e : in_flight_) {
    if (std::find(apps.begin(), apps.end(), e.cmd.app) == apps.end()) {
      apps.push_back(e.cmd.app);
    }
  }
  return apps;
}

Watts AccelDevice::ModelPower() const {
  const int k = static_cast<int>(in_flight_.size());
  if (k == 0) {
    return config_.idle_power;
  }
  double sum = 0.0;
  for (const Exec& e : in_flight_) {
    sum += e.cmd.active_power;
  }
  // Blurry-request-boundary entanglement: overlapping commands draw less than
  // the sum of their solo powers, and the rail cannot tell them apart.
  const double interference = 1.0 - config_.power_interference * (k - 1);
  return config_.idle_power + sum * interference * PowerScale();
}

void AccelDevice::SaveState(SnapshotWriter& w) const {
  w.U64(in_flight_.size());
  for (const Exec& e : in_flight_) {
    w.U64(e.cmd.id);
    w.I64(e.cmd.app);
    w.U32(static_cast<uint32_t>(e.cmd.type));
    w.I64(e.cmd.nominal_work);
    w.F64(e.cmd.active_power);
    w.I64(e.dispatch_time);
    w.I64(e.start_time);
    w.F64(e.remaining_work);
    w.Bool(e.hung);
  }
  w.I64(last_progress_time_);
  w.U32(static_cast<uint32_t>(opp_index_));
  w.U64(resets_);
  w.U64(hung_commands_);
  // The pending completion interrupt must be re-armed at its exact saved
  // time: recomputing the delay from remaining work would re-apply ceil()
  // rounding and drift off the original timeline.
  SaveEvent(w, *sim_, completion_event_);
}

void AccelDevice::RestoreState(SnapshotReader& r, EventRearmer& rearmer) {
  in_flight_.clear();
  const size_t n = r.Count(8);
  for (size_t i = 0; i < n; ++i) {
    Exec e;
    e.cmd.id = r.U64();
    e.cmd.app = static_cast<AppId>(r.I64());
    e.cmd.type = static_cast<int>(r.U32());
    e.cmd.nominal_work = r.I64();
    e.cmd.active_power = r.F64();
    e.dispatch_time = r.I64();
    e.start_time = r.I64();
    e.remaining_work = r.F64();
    e.hung = r.Bool();
    in_flight_.push_back(e);
  }
  last_progress_time_ = r.I64();
  opp_index_ = static_cast<int>(r.U32());
  if (opp_index_ < 0 || opp_index_ >= num_opps()) {
    r.Fail("accel opp index out of range in snapshot");
    return;
  }
  resets_ = r.U64();
  hung_commands_ = r.U64();
  completion_event_ = kInvalidEventId;
  LoadEvent(r, rearmer, [this](TimeNs when) {
    completion_event_ = sim_->ScheduleAt(when, [this] { OnCompletionEvent(); });
  });
}

void AccelDevice::UpdateRail() { rail_->SetPower(ModelPower()); }

AccelConfig MakeGpuConfig() {
  AccelConfig cfg;
  cfg.name = "gpu";
  cfg.slots = 2;  // pipelined command overlap (Fig 3b)
  cfg.opps = {{192, 0.95}, {304, 1.05}, {384, 1.15}};
  cfg.idle_power = 0.12;
  cfg.contention_slowdown = 0.25;
  cfg.power_interference = 0.18;
  return cfg;
}

AccelConfig MakeDspConfig() {
  AccelConfig cfg;
  cfg.name = "dsp";
  cfg.slots = 4;  // spatial concurrency across C66x cores
  cfg.opps = {{370, 0.95}, {500, 1.00}, {600, 1.10}, {750, 1.15}};
  cfg.idle_power = 0.10;
  cfg.contention_slowdown = 0.18;
  cfg.power_interference = 0.22;
  return cfg;
}

}  // namespace psbox
