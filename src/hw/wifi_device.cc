#include "src/hw/wifi_device.h"

#include <cmath>

#include "src/base/check.h"
#include "src/snapshot/event_rearmer.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

namespace {

void SaveFrame(SnapshotWriter& w, const WifiFrame& f) {
  w.U64(f.id);
  w.I64(f.app);
  w.U32(static_cast<uint32_t>(f.socket));
  w.U64(f.bytes);
  w.Bool(f.is_rx);
}

WifiFrame LoadFrame(SnapshotReader& r) {
  WifiFrame f;
  f.id = r.U64();
  f.app = static_cast<AppId>(r.I64());
  f.socket = static_cast<int>(r.U32());
  f.bytes = r.U64();
  f.is_rx = r.Bool();
  return f;
}

}  // namespace

WifiDevice::WifiDevice(Simulator* sim, PowerRail* rail, WifiConfig config)
    : sim_(sim), rail_(rail), config_(std::move(config)) {
  UpdateRail();
}

DurationNs WifiDevice::FrameAirtime(size_t bytes) const {
  const double rate_mbps = power_state_.tx_power_level > 0 ? config_.rate_mbps_high
                                                           : config_.rate_mbps_low;
  const double bits = static_cast<double>(bytes) * 8.0;
  const auto payload_ns = static_cast<DurationNs>(bits / rate_mbps * 1000.0);
  return config_.per_frame_overhead + payload_ns;
}

void WifiDevice::SubmitFrame(const WifiFrame& frame) {
  queue_.push_back(frame);
  if (!busy_) {
    StartNextFrame();
  }
}

void WifiDevice::StartNextFrame() {
  PSBOX_CHECK(!busy_);
  if (queue_.empty()) {
    return;
  }
  if (tail_event_ != kInvalidEventId) {
    sim_->Cancel(tail_event_);
    tail_event_ = kInvalidEventId;
  }
  in_tail_ = false;
  busy_ = true;
  current_frame_ = queue_.front();
  queue_.pop_front();
  current_start_ = sim_->Now();
  frame_event_ = sim_->ScheduleAfter(FrameAirtime(current_frame_.bytes),
                                     [this] { OnFrameComplete(); });
  UpdateRail();
}

void WifiDevice::OnFrameComplete() {
  frame_event_ = kInvalidEventId;
  busy_ = false;
  // Frame loss applies to TX only: a corrupted or link-down TX frame burns
  // its airtime but is never ACKed. Reception stays reliable — the channel
  // model owns RX delivery and the MAC cannot defer it (§5).
  bool delivered = true;
  if (faults_ != nullptr && !current_frame_.is_rx &&
      faults_->ShouldDropTxFrame(sim_->Now())) {
    delivered = false;
    ++frames_lost_;
  }
  const WifiFrameDone done{current_frame_, current_start_, sim_->Now(), delivered};
  if (!queue_.empty()) {
    StartNextFrame();
  } else {
    // Lingering power state: stay awake in the tail until the PS timer fires.
    in_tail_ = true;
    tail_event_ = sim_->ScheduleAfter(power_state_.ps_timeout, [this] { OnTailExpire(); });
    UpdateRail();
  }
  if (on_frame_done_) {
    on_frame_done_(done);
  }
}

void WifiDevice::OnTailExpire() {
  tail_event_ = kInvalidEventId;
  in_tail_ = false;
  UpdateRail();
}

void WifiDevice::SetPowerState(const WifiPowerState& state) {
  power_state_ = state;
  if (in_tail_) {
    // Re-arm the tail timer under the new timeout.
    if (tail_event_ != kInvalidEventId) {
      sim_->Cancel(tail_event_);
    }
    tail_event_ = sim_->ScheduleAfter(power_state_.ps_timeout, [this] { OnTailExpire(); });
  }
  UpdateRail();
}

void WifiDevice::SaveState(SnapshotWriter& w) const {
  w.U32(static_cast<uint32_t>(power_state_.tx_power_level));
  w.I64(power_state_.ps_timeout);
  w.U64(frames_lost_);
  w.U64(queue_.size());
  for (const WifiFrame& f : queue_) {
    SaveFrame(w, f);
  }
  w.Bool(busy_);
  w.Bool(in_tail_);
  SaveFrame(w, current_frame_);
  w.I64(current_start_);
  SaveEvent(w, *sim_, frame_event_);
  SaveEvent(w, *sim_, tail_event_);
}

void WifiDevice::RestoreState(SnapshotReader& r, EventRearmer& rearmer) {
  power_state_.tx_power_level = static_cast<int>(r.U32());
  power_state_.ps_timeout = r.I64();
  frames_lost_ = r.U64();
  queue_.clear();
  const size_t n = r.Count(8);
  for (size_t i = 0; i < n; ++i) {
    queue_.push_back(LoadFrame(r));
  }
  busy_ = r.Bool();
  in_tail_ = r.Bool();
  current_frame_ = LoadFrame(r);
  current_start_ = r.I64();
  frame_event_ = kInvalidEventId;
  tail_event_ = kInvalidEventId;
  LoadEvent(r, rearmer, [this](TimeNs when) {
    frame_event_ = sim_->ScheduleAt(when, [this] { OnFrameComplete(); });
  });
  LoadEvent(r, rearmer, [this](TimeNs when) {
    tail_event_ = sim_->ScheduleAt(when, [this] { OnTailExpire(); });
  });
}

void WifiDevice::UpdateRail() {
  Watts p = config_.idle_power;
  if (busy_) {
    if (current_frame_.is_rx) {
      p = config_.rx_power;
    } else {
      p = power_state_.tx_power_level > 0 ? config_.tx_power_high : config_.tx_power_low;
    }
  } else if (in_tail_) {
    p = config_.tail_power;
  }
  rail_->SetPower(p);
}

}  // namespace psbox
