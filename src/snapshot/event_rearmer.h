// Pending-event reification for snapshot restore.
//
// The event engine's closures are opaque, so a snapshot cannot persist them
// directly. Instead, every subsystem that owns a pending event saves a typed
// descriptor — its firing time and original insertion sequence number — via
// SaveEvent(), and on restore registers a re-arm callback via LoadEvent().
// After all subsystems have restored their plain state (and the engine has
// been ResetForRestore'd to an empty queue), EventRearmer::Replay() invokes
// the re-arm callbacks in ascending original-seq order. Fresh sequence
// numbers are handed out in call order, so both cross-time ordering and
// same-time FIFO ties come out exactly as in the uninterrupted run.

#ifndef SRC_SNAPSHOT_EVENT_REARMER_H_
#define SRC_SNAPSHOT_EVENT_REARMER_H_

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "src/sim/simulator.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

class EventRearmer {
 public:
  void Defer(uint64_t seq, std::function<void()> rearm) {
    items_.push_back(Item{seq, std::move(rearm)});
  }

  // Invokes every deferred re-arm in ascending original-seq order, forcing
  // each re-armed event onto its original insertion sequence number so the
  // restored engine's ordering state is bit-identical to the uninterrupted
  // run's. Call exactly once, after Simulator::ResetForRestore.
  void Replay(Simulator& sim) {
    std::sort(items_.begin(), items_.end(),
              [](const Item& a, const Item& b) { return a.seq < b.seq; });
    for (Item& item : items_) {
      sim.SetNextSeqForRestore(item.seq);
      item.fn();
      // Every saved event descriptor re-arms exactly one engine event; more
      // would silently shift later seqs off their checkpointed values.
      PSBOX_CHECK_EQ(sim.next_seq(), item.seq + 1);
    }
    items_.clear();
  }

  size_t deferred() const { return items_.size(); }

 private:
  struct Item {
    uint64_t seq;
    std::function<void()> fn;
  };
  std::vector<Item> items_;
};

// Persists a maybe-pending event: a presence flag, then (when, seq). Every
// present event is claimed toward the writer's pending-event census, which
// the save orchestrator checks against the engine's live count.
inline void SaveEvent(SnapshotWriter& w, const Simulator& sim, EventId id) {
  const bool present = sim.IsPending(id);
  w.Bool(present);
  if (present) {
    const Simulator::PendingEventInfo info = sim.PendingInfo(id);
    w.I64(info.when);
    w.U64(info.seq);
    w.ClaimEvent();
  }
}

// Mirror of SaveEvent: when an event was saved, defers |rearm(when)| under
// its original sequence number.
inline void LoadEvent(SnapshotReader& r, EventRearmer& re,
                      std::function<void(TimeNs)> rearm) {
  if (!r.Bool()) {
    return;
  }
  const TimeNs when = r.I64();
  const uint64_t seq = r.U64();
  if (!r.ok()) {
    return;
  }
  re.Defer(seq, [when, rearm = std::move(rearm)] { rearm(when); });
}

}  // namespace psbox

#endif  // SRC_SNAPSHOT_EVENT_REARMER_H_
