// Whole-shard checkpoint orchestration.
//
// A board shard — the Board devices and rails, the Kernel and all its
// subsystems, and the PsboxManager — serialises into one snapshot stream at
// a quiescent point (between RunUntil calls, when no 0-delay work is in
// flight). The event engine's closures are opaque, so pending events travel
// as typed (when, seq) descriptors that each owning subsystem re-arms
// through its normal scheduling path on restore; EventRearmer replays the
// re-arms in original insertion order, making the restored run bit-identical
// to the uninterrupted one.
//
// Restore targets FRESHLY constructed objects built from the identical
// configuration: the caller replays the scenario's app/task construction
// (under Kernel::BeginRestore, so nothing is scheduled), then
// RestoreBoardShard overwrites all mutable state, resets the engine clock
// and replays the pending events. On any failure the reader carries a
// descriptive error and the half-built objects must be discarded — never
// swap them into live use.

#ifndef SRC_SNAPSHOT_BOARD_SNAPSHOT_H_
#define SRC_SNAPSHOT_BOARD_SNAPSHOT_H_

#include <functional>
#include <string>

namespace psbox {

class Board;
class Kernel;
class PsboxManager;
class SnapshotReader;
class SnapshotWriter;

// Serialises the shard (sim clock, board, psbox manager, kernel) into |w|.
// Must be called at a quiescent point; refuses (returns false with a
// descriptive |error|) when some pending event went unclaimed by the
// subsystem serialisers — snapshotting then would silently drop work.
bool SaveBoardShard(Board& board, Kernel& kernel, PsboxManager& manager,
                    SnapshotWriter* w, std::string* error);

// Restores a shard saved by SaveBoardShard into freshly built objects.
// |replay_setup| runs under restore mode and must recreate the scenario's
// apps and tasks exactly as the original run did (same creation order, same
// ids); sandboxes are replayed from the snapshot itself. Returns false with
// a descriptive |error| on any validation failure, in which case the target
// objects are in an unspecified state and must be thrown away.
bool RestoreBoardShard(SnapshotReader& r, Board& board, Kernel& kernel,
                       PsboxManager& manager,
                       const std::function<void()>& replay_setup,
                       std::string* error);

}  // namespace psbox

#endif  // SRC_SNAPSHOT_BOARD_SNAPSHOT_H_
