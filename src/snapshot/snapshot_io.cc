#include "src/snapshot/snapshot_io.h"

#include <cstdio>

namespace psbox {

namespace {

// A section marker is a two-byte sentinel, a one-byte name length and the
// name itself. The sentinel makes a misaligned parse fail fast even when the
// misread length byte happens to be plausible.
constexpr uint8_t kSectionSentinel0 = 0x5E;
constexpr uint8_t kSectionSentinel1 = 0xC7;

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

}  // namespace

uint32_t SnapshotCrc32(const uint8_t* data, size_t n) {
  static const Crc32Table table;
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table.t[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void SnapshotWriter::Section(const char* name) {
  U8(kSectionSentinel0);
  U8(kSectionSentinel1);
  const size_t n = std::char_traits<char>::length(name);
  U8(static_cast<uint8_t>(n));
  Bytes(name, n);
}

std::vector<uint8_t> SnapshotWriter::Seal() const {
  std::vector<uint8_t> out;
  out.reserve(kSnapshotHeaderSize + buf_.size());
  out.insert(out.end(), kSnapshotMagic, kSnapshotMagic + sizeof(kSnapshotMagic));
  auto le = [&out](uint64_t v, size_t bytes) {
    for (size_t i = 0; i < bytes; ++i) {
      out.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  le(kSnapshotFormatVersion, 4);
  le(buf_.size(), 8);
  le(SnapshotCrc32(buf_.data(), buf_.size()), 4);
  out.insert(out.end(), buf_.begin(), buf_.end());
  return out;
}

bool SnapshotWriter::WriteFile(const std::string& path,
                               std::string* error) const {
  const std::vector<uint8_t> sealed = Seal();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "snapshot: cannot open " + tmp + " for writing";
    }
    return false;
  }
  const size_t written = std::fwrite(sealed.data(), 1, sealed.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != sealed.size() || !flushed) {
    std::remove(tmp.c_str());
    if (error != nullptr) {
      *error = "snapshot: short write to " + tmp;
    }
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) {
      *error = "snapshot: cannot rename " + tmp + " to " + path;
    }
    return false;
  }
  return true;
}

bool SnapshotReader::Open(const uint8_t* data, size_t n) {
  ok_ = true;
  error_.clear();
  payload_.clear();
  pos_ = 0;
  if (n < kSnapshotHeaderSize) {
    Fail("snapshot header truncated: " + std::to_string(n) + " bytes, need " +
         std::to_string(kSnapshotHeaderSize));
    return false;
  }
  if (std::memcmp(data, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    Fail("snapshot magic mismatch: not a psbox snapshot");
    return false;
  }
  auto le = [data](size_t off, size_t bytes) {
    uint64_t v = 0;
    for (size_t i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(data[off + i]) << (8 * i);
    }
    return v;
  };
  const auto version = static_cast<uint32_t>(le(8, 4));
  if (version != kSnapshotFormatVersion) {
    Fail("snapshot format version " + std::to_string(version) +
         " unsupported (expected " + std::to_string(kSnapshotFormatVersion) +
         ")");
    return false;
  }
  const uint64_t payload_size = le(12, 8);
  if (payload_size != n - kSnapshotHeaderSize) {
    Fail("snapshot truncated: header declares " + std::to_string(payload_size) +
         " payload bytes, got " + std::to_string(n - kSnapshotHeaderSize));
    return false;
  }
  const auto crc = static_cast<uint32_t>(le(20, 4));
  const uint32_t actual =
      SnapshotCrc32(data + kSnapshotHeaderSize, payload_size);
  if (crc != actual) {
    Fail("snapshot payload CRC mismatch (corrupt or torn write)");
    return false;
  }
  payload_.assign(data + kSnapshotHeaderSize, data + n);
  return true;
}

bool SnapshotReader::OpenFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ok_ = true;  // Fail() records only the first error
    error_.clear();
    Fail("snapshot: cannot open " + path);
    return false;
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[4096];
  size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  std::fclose(f);
  return Open(bytes.data(), bytes.size());
}

uint8_t SnapshotReader::ReadByte() {
  if (!ok_) {
    return 0;
  }
  if (pos_ >= payload_.size()) {
    Fail("snapshot payload exhausted at offset " + std::to_string(pos_));
    return 0;
  }
  return payload_[pos_++];
}

std::string SnapshotReader::Str() {
  const uint32_t len = U32();
  if (!ok_) {
    return {};
  }
  if (len > remaining()) {
    Fail("snapshot string length " + std::to_string(len) +
         " exceeds remaining payload at offset " + std::to_string(pos_));
    return {};
  }
  std::string s(payload_.begin() + static_cast<ptrdiff_t>(pos_),
                payload_.begin() + static_cast<ptrdiff_t>(pos_ + len));
  pos_ += len;
  return s;
}

size_t SnapshotReader::Count(size_t min_element_size) {
  const uint64_t count = U64();
  if (!ok_) {
    return 0;
  }
  if (min_element_size == 0) {
    min_element_size = 1;
  }
  if (count > remaining() / min_element_size) {
    Fail("snapshot element count " + std::to_string(count) +
         " exceeds remaining payload at offset " + std::to_string(pos_));
    return 0;
  }
  return static_cast<size_t>(count);
}

bool SnapshotReader::Section(const char* name) {
  const size_t at = pos_;
  const uint8_t s0 = ReadByte();
  const uint8_t s1 = ReadByte();
  if (ok_ && (s0 != kSectionSentinel0 || s1 != kSectionSentinel1)) {
    Fail(std::string("snapshot section '") + name +
         "' marker missing at offset " + std::to_string(at) +
         " (format drift?)");
    return false;
  }
  const uint8_t len = ReadByte();
  std::string found;
  for (uint8_t i = 0; i < len && ok_; ++i) {
    found.push_back(static_cast<char>(ReadByte()));
  }
  if (ok_ && found != name) {
    Fail("snapshot section mismatch at offset " + std::to_string(at) +
         ": expected '" + name + "', found '" + found + "'");
    return false;
  }
  return ok_;
}

void SnapshotReader::Fail(const std::string& msg) {
  if (ok_) {
    ok_ = false;
    error_ = msg;
  }
}

}  // namespace psbox
