// Versioned, CRC-guarded binary snapshot streams.
//
// A snapshot is a little-endian byte payload wrapped in a fixed header:
//
//   bytes 0..7   magic "PSBXSNAP"
//   bytes 8..11  format version (u32)
//   bytes 12..19 payload size in bytes (u64)
//   bytes 20..23 CRC-32 of the payload (u32)
//   bytes 24..   payload
//
// SnapshotWriter appends primitives to the payload; SnapshotReader validates
// the header (magic, version, size, CRC) before a single payload byte is
// parsed, so truncation and bit flips are rejected up front with a
// descriptive error instead of surfacing as garbage state. Inside the
// payload, section markers give misaligned reads (a format drift that the
// CRC cannot catch) a precise failure point: every marker names the section
// it opens, and a mismatch poisons the reader.
//
// A poisoned reader never throws and never crashes: every subsequent read
// returns a zero value, counts clamp to zero, and ok()/error() report the
// first failure. Restore orchestration checks ok() at section boundaries and
// discards the half-built objects, so a bad snapshot can never leak partial
// state into a live board.
//
// This header is dependency-free (standard library only) so that the lowest
// layers of the tree (base/, hw/) can serialize themselves without cycles.

#ifndef SRC_SNAPSHOT_SNAPSHOT_IO_H_
#define SRC_SNAPSHOT_SNAPSHOT_IO_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace psbox {

// Bump on any payload layout change; readers reject other versions.
// v2: hierarchical fleet checkpoints — hierarchy/budget compat block,
// per-sub-fleet spawn logs and allocations, cross-sub-fleet app state.
// v3: population + nested sandboxes — population config compat block,
// per-spawn-record timestamps (arrival/spawn replay interleaving), sandbox
// hierarchy state (parent, budget ledger, ownership compose depth).
inline constexpr uint32_t kSnapshotFormatVersion = 3;
inline constexpr char kSnapshotMagic[8] = {'P', 'S', 'B', 'X',
                                           'S', 'N', 'A', 'P'};
inline constexpr size_t kSnapshotHeaderSize = 8 + 4 + 8 + 4;

uint32_t SnapshotCrc32(const uint8_t* data, size_t n);

class SnapshotWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    AppendLe(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  // Opens a named section. Purely a parse-time guard: the reader verifies
  // the name in place and poisons itself on mismatch.
  void Section(const char* name);

  // Pending-event census: every subsystem that persists one of its pending
  // events claims it here, and the save orchestrator refuses to snapshot
  // when the claimed count disagrees with the engine's live count — an
  // untracked event would otherwise silently vanish across a restore.
  void ClaimEvent() { ++claimed_events_; }
  size_t claimed_events() const { return claimed_events_; }
  void ResetClaimedEvents() { claimed_events_ = 0; }

  const std::vector<uint8_t>& payload() const { return buf_; }

  // Header + payload, ready to hit disk or a wire.
  std::vector<uint8_t> Seal() const;

  // Seals and writes to |path| (via a rename from a temp file, so a crashed
  // writer cannot leave a half-written snapshot under the final name).
  bool WriteFile(const std::string& path, std::string* error) const;

 private:
  template <typename T>
  void AppendLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
  size_t claimed_events_ = 0;
};

class SnapshotReader {
 public:
  // Validates the header of a sealed snapshot and adopts its payload. On
  // failure the reader is poisoned (ok() false, error() descriptive).
  bool Open(const uint8_t* data, size_t n);
  bool Open(const std::vector<uint8_t>& sealed) {
    return Open(sealed.data(), sealed.size());
  }
  bool OpenFile(const std::string& path);

  uint8_t U8() { return ReadByte(); }
  bool Bool() { return ReadByte() != 0; }
  uint32_t U32() { return ReadLe<uint32_t>(); }
  uint64_t U64() { return ReadLe<uint64_t>(); }
  int64_t I64() { return static_cast<int64_t>(ReadLe<uint64_t>()); }
  double F64() {
    const uint64_t bits = ReadLe<uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str();

  // Reads an element count and clamps it against the bytes actually left in
  // the payload (each element takes >= |min_element_size| bytes), so a
  // corrupt count cannot trigger a huge allocation.
  size_t Count(size_t min_element_size = 1);

  // Verifies the next section marker; poisons the reader on mismatch.
  bool Section(const char* name);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  // Semantic failure raised by a caller (e.g. an impossible field value).
  void Fail(const std::string& msg);

  size_t remaining() const { return payload_.size() - pos_; }
  bool AtEnd() const { return pos_ == payload_.size(); }

 private:
  uint8_t ReadByte();
  template <typename T>
  T ReadLe() {
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(ReadByte()) << (8 * i);
    }
    return v;
  }

  std::vector<uint8_t> payload_;
  size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace psbox

#endif  // SRC_SNAPSHOT_SNAPSHOT_IO_H_
