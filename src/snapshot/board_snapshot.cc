#include "src/snapshot/board_snapshot.h"

#include "src/hw/board.h"
#include "src/kernel/kernel.h"
#include "src/psbox/psbox_manager.h"
#include "src/snapshot/event_rearmer.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

bool SaveBoardShard(Board& board, Kernel& kernel, PsboxManager& manager,
                    SnapshotWriter* w, std::string* error) {
  w->ResetClaimedEvents();
  w->Section("shard");
  w->I64(board.sim().Now());
  w->U64(board.sim().total_fired());
  w->U64(board.sim().next_seq());
  board.SaveState(*w);
  manager.SaveState(*w);
  kernel.SaveState(*w);
  // Pending-event census: every event the engine still holds must have been
  // claimed by exactly one subsystem serialiser above, or the restored run
  // would silently lose (or invent) work. A mismatch means the shard is not
  // at a quiescent point, or a subsystem grew an untracked timer.
  if (w->claimed_events() != board.sim().pending_events()) {
    if (error != nullptr) {
      *error = "snapshot refused: " +
               std::to_string(board.sim().pending_events()) +
               " events pending but " + std::to_string(w->claimed_events()) +
               " claimed by serialisers (shard not quiescent or a timer is "
               "untracked)";
    }
    return false;
  }
  return true;
}

bool RestoreBoardShard(SnapshotReader& r, Board& board, Kernel& kernel,
                       PsboxManager& manager,
                       const std::function<void()>& replay_setup,
                       std::string* error) {
  kernel.BeginRestore();
  if (replay_setup) {
    replay_setup();
  }
  EventRearmer rearmer;
  TimeNs now = 0;
  uint64_t total_fired = 0;
  uint64_t next_seq = 1;
  if (r.Section("shard")) {
    now = r.I64();
    total_fired = r.U64();
    next_seq = r.U64();
    board.RestoreState(r, rearmer);
    manager.RestoreState(r);  // replays CreateBox, so groups exist below
    kernel.RestoreState(r, rearmer);
  }
  if (!r.ok()) {
    kernel.EndRestore();
    if (error != nullptr) {
      *error = r.error();
    }
    return false;
  }
  board.sim().ResetForRestore(now, total_fired);
  // Re-arm pending events under their original seqs, then land the counter
  // on the checkpointed value: the engine's whole sequence space — not just
  // relative order — survives the restore, so later snapshots of a restored
  // world are byte-identical to the uninterrupted run's.
  rearmer.Replay(board.sim());
  board.sim().SetNextSeqForRestore(next_seq);
  kernel.EndRestore();
  return true;
}

}  // namespace psbox
