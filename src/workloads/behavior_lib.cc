#include "src/workloads/behavior_lib.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/psbox/psbox_api.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

namespace {

void SaveAction(SnapshotWriter& w, const Action& a) {
  w.U8(static_cast<uint8_t>(a.kind));
  w.I64(a.duration);
  w.F64(a.intensity);
  w.U8(static_cast<uint8_t>(a.accel));
  w.U64(a.cmd.id);
  w.I64(a.cmd.app);
  w.I64(a.cmd.type);
  w.I64(a.cmd.nominal_work);
  w.F64(a.cmd.active_power);
  w.U64(a.bytes);
  w.U64(a.response_bytes);
  w.I64(a.response_delay);
  w.I64(a.response_count);
  w.I64(a.count);
  w.Bool(a.storage_write);
}

Action LoadAction(SnapshotReader& r) {
  Action a;
  a.kind = static_cast<ActionKind>(r.U8());
  a.duration = r.I64();
  a.intensity = r.F64();
  a.accel = static_cast<HwComponent>(r.U8());
  a.cmd.id = r.U64();
  a.cmd.app = static_cast<AppId>(r.I64());
  a.cmd.type = static_cast<int>(r.I64());
  a.cmd.nominal_work = r.I64();
  a.cmd.active_power = r.F64();
  a.bytes = r.U64();
  a.response_bytes = r.U64();
  a.response_delay = r.I64();
  a.response_count = static_cast<int>(r.I64());
  a.count = static_cast<int>(r.I64());
  a.storage_write = r.Bool();
  return a;
}

}  // namespace

LoopBehavior::LoopBehavior(std::shared_ptr<WorkloadStats> stats, StepFn step,
                           uint64_t max_iterations, TimeNs deadline, Rng rng,
                           std::shared_ptr<const bool> stop)
    : stats_(std::move(stats)), step_(std::move(step)),
      max_iterations_(max_iterations), deadline_(deadline), rng_(rng),
      stop_(std::move(stop)) {
  PSBOX_CHECK(stats_ != nullptr);
}

Action LoopBehavior::NextAction(TaskEnv& env) {
  if (finished_) {
    return Action::Exit();
  }
  if (queue_.empty()) {
    if (!started_) {
      started_ = true;
      // Stats may be shared by several worker threads: the app starts with
      // its first worker and finishes with its last.
      if (stats_->start_time < 0) {
        stats_->start_time = env.now;
      }
    } else {
      ++stats_->iterations;  // the previous iteration's actions all completed
    }
    const bool over_iters = max_iterations_ > 0 && iter_ >= max_iterations_;
    const bool over_deadline = deadline_ > 0 && env.now >= deadline_;
    const bool stopped = stop_ != nullptr && *stop_;
    if (stopped) {
      stats_->evicted = true;
    }
    if (over_iters || over_deadline || stopped) {
      finished_ = true;
      stats_->finish_time = std::max(stats_->finish_time, env.now);
      return Action::Exit();
    }
    std::vector<Action> actions = step_(env, iter_, rng_);
    ++iter_;
    if (actions.empty()) {
      finished_ = true;
      stats_->finish_time = std::max(stats_->finish_time, env.now);
      return Action::Exit();
    }
    queue_.assign(actions.begin(), actions.end());
  }
  Action a = queue_.front();
  queue_.pop_front();
  return a;
}

void LoopBehavior::SaveState(SnapshotWriter& w) const {
  // Stats may be shared by several worker tasks; every sharer writes the same
  // values, so the repeated restores are idempotent.
  w.U64(stats_->iterations);
  w.I64(stats_->start_time);
  w.I64(stats_->finish_time);
  w.F64(stats_->psbox_energy);
  w.I64(stats_->box);
  w.Bool(stats_->evicted);
  w.U64(queue_.size());
  for (const Action& a : queue_) {
    SaveAction(w, a);
  }
  w.U64(iter_);
  w.Bool(started_);
  w.Bool(finished_);
  rng_.SaveState(w);
  // stop_ is re-wired by the restoring coordinator, not serialised.
}

void LoopBehavior::RestoreState(SnapshotReader& r) {
  stats_->iterations = r.U64();
  stats_->start_time = r.I64();
  stats_->finish_time = r.I64();
  stats_->psbox_energy = r.F64();
  stats_->box = static_cast<int>(r.I64());
  stats_->evicted = r.Bool();
  queue_.clear();
  const size_t depth = r.Count(32);
  for (size_t i = 0; i < depth && r.ok(); ++i) {
    queue_.push_back(LoadAction(r));
  }
  iter_ = r.U64();
  started_ = r.Bool();
  finished_ = r.Bool();
  rng_.RestoreState(r);
}

PsboxWrapBehavior::PsboxWrapBehavior(std::unique_ptr<Behavior> inner,
                                     std::vector<HwComponent> hw,
                                     std::shared_ptr<WorkloadStats> stats,
                                     int psbox_parent, Joules psbox_budget)
    : inner_(std::move(inner)), hw_(std::move(hw)), stats_(std::move(stats)),
      psbox_parent_(psbox_parent), psbox_budget_(psbox_budget) {
  PSBOX_CHECK(inner_ != nullptr);
  PSBOX_CHECK(!hw_.empty());
}

Action PsboxWrapBehavior::NextAction(TaskEnv& env) {
  if (box_ < 0) {
    box_ = psbox_parent_ >= 0
               ? psbox_create_in(env, hw_, psbox_parent_, psbox_budget_)
               : psbox_create(env, hw_);
    stats_->box = box_;
    psbox_enter(env, box_);
    psbox_reset(env, box_);
  }
  Action a = inner_->NextAction(env);
  if (a.kind == ActionKind::kExit && !finished_) {
    finished_ = true;
    stats_->psbox_energy = psbox_read(env, box_);
    psbox_leave(env, box_);
  }
  return a;
}

void PsboxWrapBehavior::SaveState(SnapshotWriter& w) const {
  w.I64(box_);
  w.Bool(finished_);
  w.U8(inner_->SnapshotMarker());
  inner_->SaveState(w);
}

void PsboxWrapBehavior::RestoreState(SnapshotReader& r) {
  box_ = static_cast<int>(r.I64());
  finished_ = r.Bool();
  if (r.U8() != inner_->SnapshotMarker()) {
    r.Fail("wrapped behavior type mismatch between snapshot and scenario");
    return;
  }
  inner_->RestoreState(r);
}

DurationNs Jitter(Rng& rng, DurationNs value, double frac) {
  if (frac <= 0.0) {
    return value;
  }
  const double scaled = static_cast<double>(value) * rng.Uniform(1.0 - frac, 1.0 + frac);
  return static_cast<DurationNs>(scaled);
}

}  // namespace psbox
