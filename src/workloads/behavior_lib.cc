#include "src/workloads/behavior_lib.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/psbox/psbox_api.h"

namespace psbox {

LoopBehavior::LoopBehavior(std::shared_ptr<WorkloadStats> stats, StepFn step,
                           uint64_t max_iterations, TimeNs deadline, Rng rng,
                           std::shared_ptr<const bool> stop)
    : stats_(std::move(stats)), step_(std::move(step)),
      max_iterations_(max_iterations), deadline_(deadline), rng_(rng),
      stop_(std::move(stop)) {
  PSBOX_CHECK(stats_ != nullptr);
}

Action LoopBehavior::NextAction(TaskEnv& env) {
  if (finished_) {
    return Action::Exit();
  }
  if (queue_.empty()) {
    if (!started_) {
      started_ = true;
      // Stats may be shared by several worker threads: the app starts with
      // its first worker and finishes with its last.
      if (stats_->start_time < 0) {
        stats_->start_time = env.now;
      }
    } else {
      ++stats_->iterations;  // the previous iteration's actions all completed
    }
    const bool over_iters = max_iterations_ > 0 && iter_ >= max_iterations_;
    const bool over_deadline = deadline_ > 0 && env.now >= deadline_;
    const bool stopped = stop_ != nullptr && *stop_;
    if (stopped) {
      stats_->evicted = true;
    }
    if (over_iters || over_deadline || stopped) {
      finished_ = true;
      stats_->finish_time = std::max(stats_->finish_time, env.now);
      return Action::Exit();
    }
    std::vector<Action> actions = step_(env, iter_, rng_);
    ++iter_;
    if (actions.empty()) {
      finished_ = true;
      stats_->finish_time = std::max(stats_->finish_time, env.now);
      return Action::Exit();
    }
    queue_.assign(actions.begin(), actions.end());
  }
  Action a = queue_.front();
  queue_.pop_front();
  return a;
}

PsboxWrapBehavior::PsboxWrapBehavior(std::unique_ptr<Behavior> inner,
                                     std::vector<HwComponent> hw,
                                     std::shared_ptr<WorkloadStats> stats)
    : inner_(std::move(inner)), hw_(std::move(hw)), stats_(std::move(stats)) {
  PSBOX_CHECK(inner_ != nullptr);
  PSBOX_CHECK(!hw_.empty());
}

Action PsboxWrapBehavior::NextAction(TaskEnv& env) {
  if (box_ < 0) {
    box_ = psbox_create(env, hw_);
    stats_->box = box_;
    psbox_enter(env, box_);
    psbox_reset(env, box_);
  }
  Action a = inner_->NextAction(env);
  if (a.kind == ActionKind::kExit && !finished_) {
    finished_ = true;
    stats_->psbox_energy = psbox_read(env, box_);
    psbox_leave(env, box_);
  }
  return a;
}

DurationNs Jitter(Rng& rng, DurationNs value, double frac) {
  if (frac <= 0.0) {
    return value;
  }
  const double scaled = static_cast<double>(value) * rng.Uniform(1.0 - frac, 1.0 + frac);
  return static_cast<DurationNs>(scaled);
}

}  // namespace psbox
