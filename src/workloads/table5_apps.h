// The benchmark apps of the paper's Table 5 (Figure 5), as workload models.
//
//   CPU : bodytrack (PARSEC), calib3d (OpenCV), dedup (PARSEC)
//   GPU : browser (webkit page load), magic (PowerVR demo), cube (Qt demo),
//         triangle (synthetic offscreen spam)
//   DSP : sgemm, dgemm, monte (TI AM57 SDK kernels)
//   WiFi: browser (Links page load), scp (50 MB over ssh), wget (50 MB over
//         http — generates the RX traffic behind the Fig 6 +17 % outlier)
//
// Each factory spawns one app (one task) running a LoopBehavior whose
// actions approximate the real app's power/timing signature: CPU burst
// lengths and intensities, accelerator command streams, packet trains.
// Durations are nominal (top OPP); `iterations` bounds the work (0 = run
// until the deadline), `deadline` bounds wall time (0 = unbounded), and
// `use_psbox` wraps the workload in a psbox bound to its component.

#ifndef SRC_WORKLOADS_TABLE5_APPS_H_
#define SRC_WORKLOADS_TABLE5_APPS_H_

#include <memory>
#include <string>

#include "src/kernel/kernel.h"
#include "src/workloads/behavior_lib.h"

namespace psbox {

struct AppHandle {
  AppId app = kNoApp;
  Task* task = nullptr;
  std::shared_ptr<WorkloadStats> stats;
};

struct AppOptions {
  uint64_t iterations = 0;
  TimeNs deadline = 0;
  bool use_psbox = false;
  double jitter = 0.05;    // per-action duration jitter fraction
  double work_scale = 1.0; // scales per-iteration work (stress variants)
  // Worker threads (tasks) per app; iterations are split across them and
  // progress is aggregated in the shared WorkloadStats. With use_psbox, the
  // first worker drives the psbox lifecycle; siblings join its task group
  // automatically when it enters (the box encloses the whole app).
  int threads = 1;
  // Cooperative eviction flag, checked by every worker at iteration
  // boundaries; raising it makes the app drain and exit cleanly (psbox
  // energy recorded). The fleet migration path raises this on the source
  // board, then respawns the app's remaining work on the target.
  std::shared_ptr<bool> stop;
  // Nested sandboxes: with use_psbox, a non-negative psbox_parent creates the
  // app's box inside that tenant box, claiming psbox_budget joules from the
  // tenant's slice (population-generated apps run under per-tenant boxes).
  int psbox_parent = -1;
  Joules psbox_budget = 0.0;
};

// --- CPU apps -------------------------------------------------------------
AppHandle SpawnCalib3d(Kernel& kernel, const std::string& name, AppOptions opts);
AppHandle SpawnBodytrack(Kernel& kernel, const std::string& name, AppOptions opts);
AppHandle SpawnDedup(Kernel& kernel, const std::string& name, AppOptions opts);

// --- GPU apps -------------------------------------------------------------
AppHandle SpawnGpuBrowser(Kernel& kernel, const std::string& name, AppOptions opts);
// Continuously-rendering browser (no vsync pacing): streams small render
// commands back-to-back. The §6.3 stress-test victim.
AppHandle SpawnBrowserStream(Kernel& kernel, const std::string& name, AppOptions opts);
AppHandle SpawnMagic(Kernel& kernel, const std::string& name, AppOptions opts);
AppHandle SpawnCube(Kernel& kernel, const std::string& name, AppOptions opts);
AppHandle SpawnTriangle(Kernel& kernel, const std::string& name, AppOptions opts);

// --- DSP apps -------------------------------------------------------------
AppHandle SpawnSgemm(Kernel& kernel, const std::string& name, AppOptions opts);
AppHandle SpawnDgemm(Kernel& kernel, const std::string& name, AppOptions opts);
AppHandle SpawnMonte(Kernel& kernel, const std::string& name, AppOptions opts);

// --- WiFi apps ------------------------------------------------------------
AppHandle SpawnWifiBrowser(Kernel& kernel, const std::string& name, AppOptions opts);
AppHandle SpawnScp(Kernel& kernel, const std::string& name, AppOptions opts);
AppHandle SpawnWget(Kernel& kernel, const std::string& name, AppOptions opts);

// --- Storage apps ----------------------------------------------------------
// Photo sync: CPU encode bursts followed by large write batches; binds its
// psbox to {CPU, Storage} — the two components its energy actually lands on.
AppHandle SpawnPhotoSync(Kernel& kernel, const std::string& name, AppOptions opts);
// Media-library scan: read-dominated with light per-file metadata compute;
// binds to {Storage} only.
AppHandle SpawnMediaScan(Kernel& kernel, const std::string& name, AppOptions opts);

// --- Websites (for the §2.5 side channel) ---------------------------------
// Number of distinct website GPU profiles available (the "Alexa top-10").
constexpr int kNumWebsites = 10;
// Spawns a browser app loading website |site| (0..kNumWebsites-1) once; each
// site produces a distinct GPU command stream and hence power signature.
AppHandle SpawnWebsiteVisit(Kernel& kernel, const std::string& name, int site,
                            AppOptions opts);
// The light camouflage GPU workload the attacker runs while observing.
AppHandle SpawnAttackerCamouflage(Kernel& kernel, const std::string& name,
                                  AppOptions opts);

}  // namespace psbox

#endif  // SRC_WORKLOADS_TABLE5_APPS_H_
