// Behaviour building blocks for workload models.
//
// Each Table-5 benchmark app is a LoopBehavior: a step function that emits
// the actions of one iteration (a frame, a matrix multiply, a page load...),
// with optional jitter, iteration caps and deadline. PsboxWrapBehavior turns
// any behaviour into a power-aware app that runs its whole workload inside a
// psbox and records the observed energy — the measurement harness of the
// Fig 6 consistency experiment.

#ifndef SRC_WORKLOADS_BEHAVIOR_LIB_H_
#define SRC_WORKLOADS_BEHAVIOR_LIB_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time.h"
#include "src/kernel/task.h"

namespace psbox {

struct WorkloadStats {
  // Completed iterations (the throughput unit of Fig 8).
  uint64_t iterations = 0;
  TimeNs start_time = -1;
  TimeNs finish_time = -1;
  // Energy observed through the app's own psbox (PsboxWrapBehavior).
  Joules psbox_energy = -1.0;
  int box = -1;
  // True when the loop ended because its eviction flag was raised rather
  // than by iteration/deadline exhaustion (fleet migration drains).
  bool evicted = false;
};

class LoopBehavior : public Behavior {
 public:
  // |step| emits the actions of iteration |iter| (0-based). The loop ends
  // after |max_iterations| (> 0), at |deadline| (> 0, checked at iteration
  // boundaries), or when |step| returns an empty vector.
  using StepFn = std::function<std::vector<Action>(TaskEnv&, uint64_t iter, Rng&)>;

  // |stop|, when non-null, is a cooperative eviction flag: the loop checks it
  // at every iteration boundary and exits cleanly (marking stats->evicted)
  // once it reads true — the graceful-drain half of fleet migration.
  LoopBehavior(std::shared_ptr<WorkloadStats> stats, StepFn step,
               uint64_t max_iterations, TimeNs deadline, Rng rng,
               std::shared_ptr<const bool> stop = nullptr);

  Action NextAction(TaskEnv& env) override;

  const WorkloadStats& stats() const { return *stats_; }

  uint8_t SnapshotMarker() const override { return 1; }
  void SaveState(SnapshotWriter& w) const override;
  void RestoreState(SnapshotReader& r) override;

 private:
  std::shared_ptr<WorkloadStats> stats_;
  StepFn step_;
  uint64_t max_iterations_;
  TimeNs deadline_;
  Rng rng_;
  std::shared_ptr<const bool> stop_;
  std::deque<Action> queue_;
  uint64_t iter_ = 0;
  bool started_ = false;
  bool finished_ = false;
};

// Runs |inner| entirely inside a psbox bound to |hw|; on exit records the
// observed energy into |stats|. When |psbox_parent| >= 0 the box is created
// nested inside that tenant box with |psbox_budget| joules claimed from its
// slice. Parent/budget are construction parameters (like |hw|), re-supplied
// by the spawn path on restore rather than serialized.
class PsboxWrapBehavior : public Behavior {
 public:
  PsboxWrapBehavior(std::unique_ptr<Behavior> inner, std::vector<HwComponent> hw,
                    std::shared_ptr<WorkloadStats> stats, int psbox_parent = -1,
                    Joules psbox_budget = 0.0);

  Action NextAction(TaskEnv& env) override;

  uint8_t SnapshotMarker() const override { return 2; }
  void SaveState(SnapshotWriter& w) const override;
  void RestoreState(SnapshotReader& r) override;

 private:
  std::unique_ptr<Behavior> inner_;
  std::vector<HwComponent> hw_;
  std::shared_ptr<WorkloadStats> stats_;
  int psbox_parent_ = -1;
  Joules psbox_budget_ = 0.0;
  int box_ = -1;
  bool finished_ = false;
};

// Uniform jitter helper: |value| +/- |frac| (e.g. 0.1 for +-10%).
DurationNs Jitter(Rng& rng, DurationNs value, double frac);

}  // namespace psbox

#endif  // SRC_WORKLOADS_BEHAVIOR_LIB_H_
