// The end-to-end VR use case (§6.4, Figure 9).
//
// Two continuously-running tasks derived from the paper's SDK demo:
//   * gesture   — processes camera frames and recognises hand gestures; its
//     CPU load varies with the number of contours in each frame, so its
//     power impact fluctuates with the input;
//   * rendering — translates gestures into wind, refreshes the water height
//     map, and is made *power-aware*: it periodically observes its own power
//     through a psbox and trades rendering fidelity (frame work, intensity)
//     for lower power.
// Without psbox the rendering task would reason over entangled power that
// embeds gesture's input-dependent load; with psbox its observation is
// insulated, and the adaptation reaches a wide (paper: 8.9x) power range.

#ifndef SRC_WORKLOADS_VR_APP_H_
#define SRC_WORKLOADS_VR_APP_H_

#include <array>
#include <memory>
#include <vector>

#include "src/base/stats.h"
#include "src/kernel/kernel.h"

namespace psbox {

constexpr int kVrFidelityLevels = 5;

struct VrConfig {
  // Adaptation control band over the rendering task's observed power (its
  // duty-weighted balloon power), in watts. The task lowers fidelity above
  // |target_high| and raises it below |target_low|.
  Watts target_low = 0.35;
  Watts target_high = 0.70;
  int initial_fidelity = kVrFidelityLevels - 1;
  DurationNs adapt_window = 200 * kMillisecond;
  bool use_psbox = true;  // ablation: adapt on raw (entangled) rail power
  TimeNs deadline = 0;
};

struct VrWindow {
  TimeNs when;
  Watts observed_power;  // mean psbox-observed power over the window
  Watts active_power;    // the task's duty-weighted power impact
  int fidelity;
};

struct VrStats {
  std::vector<VrWindow> windows;
  std::array<RunningStats, kVrFidelityLevels> active_power_by_fidelity;
  uint64_t frames = 0;
  int box = -1;
};

struct VrHandles {
  AppId gesture_app = kNoApp;
  AppId render_app = kNoApp;
  std::shared_ptr<VrStats> stats;
};

// Spawns both tasks; they run until |config.deadline| (which must be > 0).
VrHandles SpawnVrScenario(Kernel& kernel, const VrConfig& config);

// Frame parameters per fidelity level (exposed for tests).
DurationNs VrFrameWork(int fidelity);
double VrFrameIntensity(int fidelity);

}  // namespace psbox

#endif  // SRC_WORKLOADS_VR_APP_H_
