#include "src/workloads/table5_apps.h"

#include <utility>

#include "src/base/check.h"

namespace psbox {
namespace {

// Shared factory plumbing: builds one LoopBehavior per worker thread
// (optionally psbox-wrapped on the first) and spawns them as one app.
AppHandle SpawnLoopApp(Kernel& kernel, const std::string& name,
                       std::vector<HwComponent> psbox_hw, const AppOptions& opts,
                       LoopBehavior::StepFn step) {
  PSBOX_CHECK_GE(opts.threads, 1);
  AppHandle handle;
  handle.stats = std::make_shared<WorkloadStats>();
  handle.app = kernel.CreateApp(name);
  const auto threads = static_cast<uint64_t>(opts.threads);
  for (uint64_t t = 0; t < threads; ++t) {
    // Iterations are split across workers (first workers take the remainder).
    uint64_t iters = 0;
    if (opts.iterations > 0) {
      iters = opts.iterations / threads + (t < opts.iterations % threads ? 1 : 0);
    }
    std::unique_ptr<Behavior> behavior = std::make_unique<LoopBehavior>(
        handle.stats, step, iters, opts.deadline, kernel.board().rng().Fork(),
        opts.stop);
    if (opts.use_psbox && t == 0) {
      behavior = std::make_unique<PsboxWrapBehavior>(std::move(behavior), psbox_hw,
                                                     handle.stats, opts.psbox_parent,
                                                     opts.psbox_budget);
    }
    Task* task = kernel.SpawnTask(
        handle.app, threads > 1 ? name + "/" + std::to_string(t) : name,
        std::move(behavior));
    if (t == 0) {
      handle.task = task;
    }
  }
  return handle;
}

}  // namespace

// ---------------------------------------------------------------------------
// CPU apps. One iteration = one processed frame / chunk.
// ---------------------------------------------------------------------------

AppHandle SpawnCalib3d(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  return SpawnLoopApp(
      kernel, name, {HwComponent::kCpu}, opts,
      [j](TaskEnv&, uint64_t, Rng& rng) {
        // Camera calibration: a vector-heavy corner-detection burst, a
        // moderate solver burst, then an I/O gap.
        return std::vector<Action>{
            Action::Compute(Jitter(rng, 2200 * kMicrosecond, j), 1.25),
            Action::Compute(Jitter(rng, 1400 * kMicrosecond, j), 0.95),
            Action::Sleep(Jitter(rng, 700 * kMicrosecond, j)),
        };
      });
}

AppHandle SpawnBodytrack(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  return SpawnLoopApp(
      kernel, name, {HwComponent::kCpu}, opts,
      [j](TaskEnv&, uint64_t, Rng& rng) {
        // Particle-filter tracking: CPU-saturating with mild phase change.
        return std::vector<Action>{
            Action::Compute(Jitter(rng, 3000 * kMicrosecond, j), 1.05),
            Action::Compute(Jitter(rng, 1000 * kMicrosecond, j), 0.85),
        };
      });
}

AppHandle SpawnDedup(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  return SpawnLoopApp(
      kernel, name, {HwComponent::kCpu}, opts,
      [j](TaskEnv&, uint64_t, Rng& rng) {
        // Stream compression: memory-bound (low switching intensity) bursts
        // interleaved with pipeline stalls.
        return std::vector<Action>{
            Action::Compute(Jitter(rng, 1200 * kMicrosecond, j), 0.65),
            Action::Compute(Jitter(rng, 1200 * kMicrosecond, j), 0.70),
            Action::Sleep(Jitter(rng, 400 * kMicrosecond, j)),
        };
      });
}

// ---------------------------------------------------------------------------
// GPU apps. Command types: 1=layout, 2=paint, 3=render, 4=post, 5=spam.
// ---------------------------------------------------------------------------

AppHandle SpawnGpuBrowser(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  return SpawnLoopApp(
      kernel, name, {HwComponent::kGpu}, opts,
      [j](TaskEnv&, uint64_t iter, Rng& rng) {
        // Page load: a heavy first paint, then progressively lighter frames.
        const bool first = iter == 0;
        const DurationNs layout = first ? 4 * kMillisecond : 1500 * kMicrosecond;
        const DurationNs paint = first ? 6 * kMillisecond : 2500 * kMicrosecond;
        return std::vector<Action>{
            Action::Compute(Jitter(rng, 600 * kMicrosecond, j), 0.9),
            Action::SubmitAccel(HwComponent::kGpu, 1, Jitter(rng, layout, j), 0.55),
            Action::SubmitAccel(HwComponent::kGpu, 2, Jitter(rng, paint, j), 0.80),
            Action::WaitAccel(2),
            Action::Sleep(Jitter(rng, 7 * kMillisecond, j)),
        };
      });
}

AppHandle SpawnBrowserStream(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  const auto work = static_cast<DurationNs>(3.0 * kMillisecond * opts.work_scale);
  return SpawnLoopApp(
      kernel, name, {HwComponent::kGpu}, opts,
      [j, work](TaskEnv&, uint64_t iter, Rng& rng) {
        // Continuous rendering: a standing two-deep queue of paint commands.
        if (iter == 0) {
          return std::vector<Action>{
              Action::SubmitAccel(HwComponent::kGpu, 2, Jitter(rng, work, j), 0.80),
              Action::SubmitAccel(HwComponent::kGpu, 2, Jitter(rng, work, j), 0.80),
          };
        }
        return std::vector<Action>{
            Action::WaitAccel(1),
            Action::Compute(Jitter(rng, 200 * kMicrosecond, j), 0.9),
            Action::SubmitAccel(HwComponent::kGpu, 2, Jitter(rng, work, j), 0.80),
        };
      });
}

AppHandle SpawnMagic(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  return SpawnLoopApp(
      kernel, name, {HwComponent::kGpu}, opts,
      [j](TaskEnv&, uint64_t, Rng& rng) {
        // "Magic lantern" at 60 fps: a render pass plus a post pass.
        return std::vector<Action>{
            Action::Compute(Jitter(rng, 800 * kMicrosecond, j), 0.9),
            Action::SubmitAccel(HwComponent::kGpu, 3, Jitter(rng, 6 * kMillisecond, j), 0.95),
            Action::SubmitAccel(HwComponent::kGpu, 4, Jitter(rng, 2 * kMillisecond, j), 0.60),
            Action::WaitAccel(2),
            Action::Sleep(Jitter(rng, 8 * kMillisecond, j)),
        };
      });
}

AppHandle SpawnCube(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  const auto render =
      static_cast<DurationNs>(11.0 * kMillisecond * opts.work_scale);
  return SpawnLoopApp(
      kernel, name, {HwComponent::kGpu}, opts,
      [j, render](TaskEnv&, uint64_t, Rng& rng) {
        // Rotating cube targeting 60 fps: one render command per frame;
        // heavy enough that two instances contend for the GPU (Fig 8c).
        return std::vector<Action>{
            Action::Compute(Jitter(rng, 400 * kMicrosecond, j), 0.8),
            Action::SubmitAccel(HwComponent::kGpu, 3, Jitter(rng, render, j), 0.70),
            Action::WaitAccel(1),
            Action::Sleep(Jitter(rng, 4 * kMillisecond, j)),
        };
      });
}

AppHandle SpawnTriangle(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  const auto work =
      static_cast<DurationNs>(5.0 * kMillisecond * opts.work_scale);
  return SpawnLoopApp(
      kernel, name, {HwComponent::kGpu}, opts,
      [j, work](TaskEnv&, uint64_t iter, Rng& rng) {
        // Synthetic offscreen spam: keeps a standing two-deep command queue
        // so the GPU pipeline never drains on its own (no vsync).
        if (iter == 0) {
          return std::vector<Action>{
              Action::SubmitAccel(HwComponent::kGpu, 5, Jitter(rng, work, j), 1.00),
              Action::SubmitAccel(HwComponent::kGpu, 5, Jitter(rng, work, j), 1.00),
          };
        }
        return std::vector<Action>{
            Action::WaitAccel(1),
            Action::Compute(Jitter(rng, 150 * kMicrosecond, j), 0.9),
            Action::SubmitAccel(HwComponent::kGpu, 5, Jitter(rng, work, j), 1.00),
        };
      });
}

// ---------------------------------------------------------------------------
// DSP apps. One iteration = one offloaded kernel.
// ---------------------------------------------------------------------------

AppHandle SpawnSgemm(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  return SpawnLoopApp(
      kernel, name, {HwComponent::kDsp}, opts,
      [j](TaskEnv&, uint64_t, Rng& rng) {
        // The OpenCL kernel splits the multiply across two DSP cores.
        return std::vector<Action>{
            Action::Compute(Jitter(rng, 500 * kMicrosecond, j), 0.8),
            Action::SubmitAccel(HwComponent::kDsp, 10, Jitter(rng, 9 * kMillisecond, j), 0.48),
            Action::SubmitAccel(HwComponent::kDsp, 10, Jitter(rng, 9 * kMillisecond, j), 0.48),
            Action::WaitAccel(2),
        };
      });
}

AppHandle SpawnDgemm(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  return SpawnLoopApp(
      kernel, name, {HwComponent::kDsp}, opts,
      [j](TaskEnv&, uint64_t, Rng& rng) {
        return std::vector<Action>{
            Action::Compute(Jitter(rng, 500 * kMicrosecond, j), 0.8),
            Action::SubmitAccel(HwComponent::kDsp, 11, Jitter(rng, 18 * kMillisecond, j), 0.58),
            Action::SubmitAccel(HwComponent::kDsp, 11, Jitter(rng, 18 * kMillisecond, j), 0.58),
            Action::WaitAccel(2),
        };
      });
}

AppHandle SpawnMonte(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  return SpawnLoopApp(
      kernel, name, {HwComponent::kDsp}, opts,
      [j](TaskEnv&, uint64_t, Rng& rng) {
        return std::vector<Action>{
            Action::Compute(Jitter(rng, 300 * kMicrosecond, j), 0.7),
            Action::SubmitAccel(HwComponent::kDsp, 12, Jitter(rng, 8 * kMillisecond, j), 0.65),
            Action::WaitAccel(1),
            Action::Sleep(Jitter(rng, 2 * kMillisecond, j)),
        };
      });
}

// ---------------------------------------------------------------------------
// WiFi apps. One iteration = one request / transfer window.
// ---------------------------------------------------------------------------

AppHandle SpawnWifiBrowser(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  return SpawnLoopApp(
      kernel, name, {HwComponent::kWifi}, opts,
      [j](TaskEnv&, uint64_t, Rng& rng) {
        // Page fetch: a small request, a sizeable response, then think time
        // longer than the NIC power-save tail (the NIC dozes between pages).
        return std::vector<Action>{
            Action::Send(700, /*response_bytes=*/48 * 1024,
                         /*response_delay=*/Jitter(rng, 9 * kMillisecond, j)),
            Action::WaitNet(),
            Action::Sleep(Jitter(rng, 60 * kMillisecond, j)),
        };
      });
}

AppHandle SpawnScp(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  return SpawnLoopApp(
      kernel, name, {HwComponent::kWifi}, opts,
      [j](TaskEnv&, uint64_t, Rng& rng) {
        // Bulk upload: a TX window of 8 x 24 KiB, then a tiny protocol ack.
        std::vector<Action> actions;
        for (int i = 0; i < 8; ++i) {
          actions.push_back(Action::Send(24 * 1024));
        }
        actions.push_back(Action::Send(512, /*response_bytes=*/128,
                                       /*response_delay=*/Jitter(rng, 3 * kMillisecond, j)));
        actions.push_back(Action::WaitNet());
        return actions;
      });
}

AppHandle SpawnWget(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  return SpawnLoopApp(
      kernel, name, {HwComponent::kWifi}, opts,
      [j](TaskEnv&, uint64_t, Rng& rng) {
        // HTTP download of a 50 MB file: small range requests answered by
        // large RX chunks. Reception cannot be deferred by the driver (§5),
        // so these chunks land inside other apps' balloons — the traffic
        // behind the Fig 6 +17 % browser outlier.
        return std::vector<Action>{
            Action::Send(400, /*response_bytes=*/30 * 1024,
                         /*response_delay=*/Jitter(rng, 12 * kMillisecond, j),
                         /*response_count=*/6),
            Action::WaitNet(),
        };
      });
}

// ---------------------------------------------------------------------------
// Storage apps. One iteration = one synced photo / scanned file batch.
// ---------------------------------------------------------------------------

AppHandle SpawnPhotoSync(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  const auto photo =
      static_cast<size_t>(768.0 * 1024 * opts.work_scale);
  return SpawnLoopApp(
      kernel, name, {HwComponent::kCpu, HwComponent::kStorage}, opts,
      [j, photo](TaskEnv&, uint64_t, Rng& rng) {
        // Encode a photo on the CPU, then write it out in two chunks. The
        // writes land in the device's write-back buffer; the flush tail that
        // follows is exactly the §4.1 lingering power state the storage
        // balloon must keep inside the owner's window.
        return std::vector<Action>{
            Action::Compute(Jitter(rng, 2500 * kMicrosecond, j), 1.1),
            Action::StorageWrite(photo / 2),
            Action::StorageWrite(photo / 2),
            Action::WaitStorage(2),
            Action::Sleep(Jitter(rng, 3 * kMillisecond, j)),
        };
      });
}

AppHandle SpawnMediaScan(Kernel& kernel, const std::string& name, AppOptions opts) {
  const double j = opts.jitter;
  const auto chunk =
      static_cast<size_t>(256.0 * 1024 * opts.work_scale);
  return SpawnLoopApp(
      kernel, name, {HwComponent::kStorage}, opts,
      [j, chunk](TaskEnv&, uint64_t, Rng& rng) {
        // Read a batch of files, then a short metadata-extraction burst.
        return std::vector<Action>{
            Action::StorageRead(chunk),
            Action::StorageRead(chunk),
            Action::WaitStorage(2),
            Action::Compute(Jitter(rng, 600 * kMicrosecond, j), 0.8),
        };
      });
}

// ---------------------------------------------------------------------------
// Websites & attacker camouflage (§2.5)
// ---------------------------------------------------------------------------

namespace {

struct SiteProfile {
  int num_frames;         // page-load frames
  DurationNs layout_work; // per-frame layout command
  DurationNs paint_work;  // per-frame paint command
  Watts layout_power;
  Watts paint_power;
  DurationNs frame_gap;
  int heavy_every;        // every k-th frame is ~2x heavier (ads/videos)
};

// Ten distinct page profiles: different frame counts, command weights and
// cadences give each site a distinguishable GPU power signature.
constexpr SiteProfile kSites[kNumWebsites] = {
    {8, 1500 * kMicrosecond, 2500 * kMicrosecond, 0.50, 0.75, 7 * kMillisecond, 0},
    {14, 900 * kMicrosecond, 1800 * kMicrosecond, 0.45, 0.65, 4 * kMillisecond, 3},
    {6, 3500 * kMicrosecond, 5000 * kMicrosecond, 0.60, 0.95, 11 * kMillisecond, 0},
    {20, 600 * kMicrosecond, 1000 * kMicrosecond, 0.40, 0.55, 3 * kMillisecond, 5},
    {10, 2000 * kMicrosecond, 1500 * kMicrosecond, 0.70, 0.50, 8 * kMillisecond, 2},
    {12, 1200 * kMicrosecond, 3200 * kMicrosecond, 0.48, 0.88, 6 * kMillisecond, 4},
    {7, 2800 * kMicrosecond, 2800 * kMicrosecond, 0.65, 0.65, 14 * kMillisecond, 0},
    {16, 800 * kMicrosecond, 2400 * kMicrosecond, 0.42, 0.78, 5 * kMillisecond, 2},
    {9, 1800 * kMicrosecond, 4200 * kMicrosecond, 0.55, 0.92, 9 * kMillisecond, 3},
    {13, 1100 * kMicrosecond, 1300 * kMicrosecond, 0.52, 0.58, 4500 * kMicrosecond, 6},
};

}  // namespace

AppHandle SpawnWebsiteVisit(Kernel& kernel, const std::string& name, int site,
                            AppOptions opts) {
  PSBOX_CHECK_GE(site, 0);
  PSBOX_CHECK_LT(site, kNumWebsites);
  const SiteProfile profile = kSites[site];
  const double j = opts.jitter;
  if (opts.iterations == 0) {
    opts.iterations = static_cast<uint64_t>(profile.num_frames);
  }
  return SpawnLoopApp(
      kernel, name, {HwComponent::kGpu}, opts,
      [profile, j](TaskEnv&, uint64_t iter, Rng& rng) {
        double scale = 1.0;
        if (profile.heavy_every > 0 &&
            iter % static_cast<uint64_t>(profile.heavy_every) == 0) {
          scale = 2.0;
        }
        const auto layout =
            static_cast<DurationNs>(static_cast<double>(profile.layout_work) * scale);
        const auto paint =
            static_cast<DurationNs>(static_cast<double>(profile.paint_work) * scale);
        return std::vector<Action>{
            Action::Compute(Jitter(rng, 400 * kMicrosecond, j), 0.9),
            Action::SubmitAccel(HwComponent::kGpu, 1, Jitter(rng, layout, j),
                                profile.layout_power),
            Action::SubmitAccel(HwComponent::kGpu, 2, Jitter(rng, paint, j),
                                profile.paint_power),
            Action::WaitAccel(2),
            Action::Sleep(Jitter(rng, profile.frame_gap, j)),
        };
      });
}

AppHandle SpawnAttackerCamouflage(Kernel& kernel, const std::string& name,
                                  AppOptions opts) {
  const double j = opts.jitter;
  return SpawnLoopApp(
      kernel, name, {HwComponent::kGpu}, opts,
      [j](TaskEnv&, uint64_t, Rng& rng) {
        // Light periodic GPU work so the attacker looks like a normal app
        // while it samples power. Its own commands overlap the victim's and
        // partially corrupt the observed signature.
        return std::vector<Action>{
            Action::SubmitAccel(HwComponent::kGpu, 9, Jitter(rng, 800 * kMicrosecond, j), 0.30),
            Action::WaitAccel(1),
            Action::Sleep(Jitter(rng, 7 * kMillisecond, j)),
        };
      });
}

}  // namespace psbox
