#include "src/workloads/vr_app.h"

#include <algorithm>
#include <deque>

#include "src/base/check.h"
#include "src/psbox/psbox_api.h"

namespace psbox {

DurationNs VrFrameWork(int fidelity) {
  static constexpr DurationNs kWork[kVrFidelityLevels] = {
      800 * kMicrosecond, 1800 * kMicrosecond, 3200 * kMicrosecond,
      5000 * kMicrosecond, 5800 * kMicrosecond};
  PSBOX_CHECK_GE(fidelity, 0);
  PSBOX_CHECK_LT(fidelity, kVrFidelityLevels);
  return kWork[fidelity];
}

double VrFrameIntensity(int fidelity) {
  static constexpr double kIntensity[kVrFidelityLevels] = {0.55, 0.70, 0.85, 0.95,
                                                           1.05};
  PSBOX_CHECK_GE(fidelity, 0);
  PSBOX_CHECK_LT(fidelity, kVrFidelityLevels);
  return kIntensity[fidelity];
}

namespace {

constexpr DurationNs kRenderFramePeriod = 16600 * kMicrosecond;
constexpr DurationNs kGestureFramePeriod = 33 * kMillisecond;

// Gesture recognition with input-dependent load: the contour count walks
// randomly, swinging the task's CPU burst between ~1 ms and ~7 ms.
class GestureBehavior : public Behavior {
 public:
  GestureBehavior(Rng rng, TimeNs deadline) : rng_(rng), deadline_(deadline) {}

  Action NextAction(TaskEnv& env) override {
    if (env.now >= deadline_) {
      return Action::Exit();
    }
    if (!queue_.empty()) {
      Action a = queue_.front();
      queue_.pop_front();
      return a;
    }
    contours_ += rng_.UniformInt(-2, 2);
    contours_ = std::clamp<int64_t>(contours_, 1, 10);
    const DurationNs work = 1 * kMillisecond + contours_ * 600 * kMicrosecond;
    queue_.push_back(Action::Sleep(std::max<DurationNs>(
        kGestureFramePeriod - work, 1 * kMillisecond)));
    return Action::Compute(work, 1.0);
  }

 private:
  Rng rng_;
  TimeNs deadline_;
  int64_t contours_ = 5;
  std::deque<Action> queue_;
};

// The power-aware rendering task: observes its own power through a psbox at
// a fixed cadence and adapts fidelity toward the configured band.
class RenderBehavior : public Behavior {
 public:
  RenderBehavior(VrConfig config, std::shared_ptr<VrStats> stats, Watts idle_floor)
      : config_(config), stats_(std::move(stats)), idle_floor_(idle_floor),
        fidelity_(config_.initial_fidelity) {}

  Action NextAction(TaskEnv& env) override {
    if (env.now >= config_.deadline) {
      if (box_ >= 0 && config_.use_psbox) {
        psbox_leave(env, box_);
      }
      return Action::Exit();
    }
    if (box_ < 0 && config_.use_psbox) {
      box_ = psbox_create(env, {HwComponent::kCpu});
      stats_->box = box_;
      psbox_enter(env, box_);
      psbox_reset(env, box_);
      window_start_ = env.now;
      last_energy_ = 0.0;
    }
    if (config_.use_psbox && env.now - window_start_ >= config_.adapt_window) {
      const Joules energy = psbox_read(env, box_);
      const double window_s = ToSeconds(env.now - window_start_);
      // The virtual power meter accumulates the energy of the rendering
      // task's resource balloons, so dividing by the window yields the
      // task's duty-weighted power impact — its "active power".
      const Watts observed = (energy - last_energy_) / window_s;
      const Watts active = observed;
      stats_->windows.push_back({env.now, observed, active, fidelity_});
      stats_->active_power_by_fidelity[static_cast<size_t>(fidelity_)].Add(active);
      // Trade fidelity for power (§6.4): step down when hot, up when cold.
      if (active > config_.target_high && fidelity_ > 0) {
        --fidelity_;
      } else if (active < config_.target_low && fidelity_ < kVrFidelityLevels - 1) {
        ++fidelity_;
      }
      last_energy_ = energy;
      window_start_ = env.now;
    }
    if (!queue_.empty()) {
      Action a = queue_.front();
      queue_.pop_front();
      return a;
    }
    ++stats_->frames;
    const DurationNs work = VrFrameWork(fidelity_);
    queue_.push_back(Action::Sleep(std::max<DurationNs>(
        kRenderFramePeriod - work, 1 * kMillisecond)));
    return Action::Compute(work, VrFrameIntensity(fidelity_));
  }

 private:
  VrConfig config_;
  std::shared_ptr<VrStats> stats_;
  Watts idle_floor_;
  int fidelity_;
  int box_ = -1;
  TimeNs window_start_ = 0;
  Joules last_energy_ = 0.0;
  std::deque<Action> queue_;
};

}  // namespace

VrHandles SpawnVrScenario(Kernel& kernel, const VrConfig& config) {
  PSBOX_CHECK_GT(config.deadline, 0);
  VrHandles handles;
  handles.stats = std::make_shared<VrStats>();
  handles.gesture_app = kernel.CreateApp("vr_gesture");
  handles.render_app = kernel.CreateApp("vr_render");
  kernel.SpawnTask(handles.gesture_app, "gesture",
                   std::make_unique<GestureBehavior>(kernel.board().rng().Fork(),
                                                     config.deadline));
  const Watts idle_floor = kernel.board().cpu_rail().idle_power();
  kernel.SpawnTask(handles.render_app, "rendering",
                   std::make_unique<RenderBehavior>(config, handles.stats, idle_floor));
  return handles;
}

}  // namespace psbox
