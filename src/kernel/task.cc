#include "src/kernel/task.h"

namespace psbox {

Action Action::Compute(DurationNs d, double intensity) {
  Action a;
  a.kind = ActionKind::kCompute;
  a.duration = d;
  a.intensity = intensity;
  return a;
}

Action Action::Sleep(DurationNs d) {
  Action a;
  a.kind = ActionKind::kSleep;
  a.duration = d;
  return a;
}

Action Action::SubmitAccel(HwComponent accel, int type, DurationNs work, Watts power) {
  Action a;
  a.kind = ActionKind::kSubmitAccel;
  a.accel = accel;
  a.cmd.type = type;
  a.cmd.nominal_work = work;
  a.cmd.active_power = power;
  return a;
}

Action Action::WaitAccel(int count) {
  Action a;
  a.kind = ActionKind::kWaitAccel;
  a.count = count;
  return a;
}

Action Action::Send(size_t bytes, size_t response_bytes, DurationNs response_delay,
                    int response_count) {
  Action a;
  a.kind = ActionKind::kSend;
  a.bytes = bytes;
  a.response_bytes = response_bytes;
  a.response_delay = response_delay;
  a.response_count = response_count;
  return a;
}

Action Action::WaitNet() {
  Action a;
  a.kind = ActionKind::kWaitNet;
  return a;
}

Action Action::StorageRead(size_t bytes) {
  Action a;
  a.kind = ActionKind::kSubmitStorage;
  a.bytes = bytes;
  a.storage_write = false;
  return a;
}

Action Action::StorageWrite(size_t bytes) {
  Action a;
  a.kind = ActionKind::kSubmitStorage;
  a.bytes = bytes;
  a.storage_write = true;
  return a;
}

Action Action::WaitStorage(int count) {
  Action a;
  a.kind = ActionKind::kWaitStorage;
  a.count = count;
  return a;
}

Action Action::Exit() {
  Action a;
  a.kind = ActionKind::kExit;
  return a;
}

}  // namespace psbox
