// Kernel → psbox notification hook.
//
// The kernel extensions (CPU scheduler, accelerator drivers, packet
// scheduler) report resource-balloon boundaries through this interface. The
// psbox library implements it to (a) accumulate the ownership intervals its
// virtual power meters read from and (b) swap virtualised power states at
// exactly the balloon edges (§4.1).

#ifndef SRC_KERNEL_BALLOON_OBSERVER_H_
#define SRC_KERNEL_BALLOON_OBSERVER_H_

#include "src/base/time.h"
#include "src/base/types.h"

namespace psbox {

class BalloonObserver {
 public:
  virtual ~BalloonObserver() = default;

  // The balloon for |psbox| now exclusively owns |hw| (all members joined).
  virtual void OnBalloonIn(PsboxId psbox, HwComponent hw, TimeNs when) = 0;

  // The balloon released |hw|.
  virtual void OnBalloonOut(PsboxId psbox, HwComponent hw, TimeNs when) = 0;
};

}  // namespace psbox

#endif  // SRC_KERNEL_BALLOON_OBSERVER_H_
