// Tasks and app behaviours.
//
// A Task is the schedulable unit (a thread). An app — the psbox principal —
// is one or more tasks sharing an AppId. Task logic is expressed as a
// Behavior: a state machine the kernel polls for the next Action whenever the
// previous one finishes. Actions model the ways apps exercise the hardware:
// CPU bursts, sleeps, accelerator command submission, packet transmission —
// enough to script every benchmark app of the paper's Table 5.

#ifndef SRC_KERNEL_TASK_H_
#define SRC_KERNEL_TASK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/base/time.h"
#include "src/base/types.h"
#include "src/hw/accel_device.h"

namespace psbox {

enum class ActionKind : uint8_t {
  // Run on the CPU for |duration| (nominal, at the top OPP) at |intensity|.
  kCompute,
  // Block for |duration| of wall time.
  kSleep,
  // Enqueue an accelerator command (|accel|, |cmd|); non-blocking.
  kSubmitAccel,
  // Block until |count| accelerator completions have been delivered to this
  // task (counting from previous waits).
  kWaitAccel,
  // Deposit a packet of |bytes| into this task's socket; non-blocking. If
  // |response_bytes| > 0, the channel model delivers that much RX traffic
  // back after |response_delay|.
  kSend,
  // Block until all of this task's submitted packets have left the NIC and
  // all pending responses have been received.
  kWaitNet,
  // Enqueue a storage transfer of |bytes| (|storage_write| selects the
  // direction); non-blocking.
  kSubmitStorage,
  // Block until |count| storage completions have been delivered to this task
  // (counting from previous waits).
  kWaitStorage,
  // Terminate the task.
  kExit,
};

struct Action {
  ActionKind kind = ActionKind::kExit;
  DurationNs duration = 0;
  double intensity = 1.0;
  HwComponent accel = HwComponent::kGpu;
  AccelCommand cmd;
  size_t bytes = 0;
  size_t response_bytes = 0;
  DurationNs response_delay = 0;
  // Number of RX chunks of |response_bytes| the channel answers with, spaced
  // |response_delay| apart (a streaming download).
  int response_count = 1;
  int count = 1;
  // Direction of a kSubmitStorage transfer (|bytes| is its size).
  bool storage_write = false;

  static Action Compute(DurationNs d, double intensity = 1.0);
  static Action Sleep(DurationNs d);
  static Action SubmitAccel(HwComponent accel, int type, DurationNs work, Watts power);
  static Action WaitAccel(int count = 1);
  static Action Send(size_t bytes, size_t response_bytes = 0,
                     DurationNs response_delay = 0, int response_count = 1);
  static Action WaitNet();
  static Action StorageRead(size_t bytes);
  static Action StorageWrite(size_t bytes);
  static Action WaitStorage(int count = 1);
  static Action Exit();
};

class Kernel;
class SnapshotReader;
class SnapshotWriter;
class Task;
class TaskGroup;

// What a behaviour sees when asked for its next action. |kernel| gives
// access to the simulated clock and the psbox user API (psbox_* calls are
// synchronous reads/mode changes and happen inline here).
struct TaskEnv {
  Kernel* kernel = nullptr;
  Task* task = nullptr;
  TimeNs now = 0;
};

class Behavior {
 public:
  virtual ~Behavior() = default;
  // Called when the previous action has fully completed. kExit ends the task.
  virtual Action NextAction(TaskEnv& env) = 0;

  // --- checkpoint support -------------------------------------------------
  // Restore replays the scenario's task factories to rebuild behaviours and
  // then overwrites their mutable state from the snapshot; the marker guards
  // against a snapshot written under a different scenario (the restored
  // behaviour type must match the saved one). 0 = stateless base.
  virtual uint8_t SnapshotMarker() const { return 0; }
  virtual void SaveState(SnapshotWriter& w) const { (void)w; }
  virtual void RestoreState(SnapshotReader& r) { (void)r; }
};

enum class TaskState : uint8_t { kRunnable, kRunning, kBlocked, kExited };

class Task {
 public:
  Task(TaskId id, AppId app, std::string name, std::unique_ptr<Behavior> behavior)
      : id_(id), app_(app), name_(std::move(name)), behavior_(std::move(behavior)) {}

  TaskId id() const { return id_; }
  AppId app() const { return app_; }
  const std::string& name() const { return name_; }
  Behavior& behavior() { return *behavior_; }

  TaskState state() const { return state_; }
  void set_state(TaskState s) { state_ = s; }

  // Leftover of the in-progress kCompute action, in nominal nanoseconds.
  DurationNs remaining_compute() const { return remaining_compute_; }
  void set_remaining_compute(DurationNs d) { remaining_compute_ = d; }
  double intensity() const { return intensity_; }
  void set_intensity(double i) { intensity_ = i; }

  // Accelerator completions delivered but not yet consumed by kWaitAccel.
  int pending_accel_completions = 0;
  int awaited_accel_completions = 0;
  // Packets in flight (TX not done or response not yet received).
  int net_inflight = 0;
  bool waiting_net = false;
  // Storage completions delivered but not yet consumed by kWaitStorage.
  int pending_storage_completions = 0;
  int awaited_storage_completions = 0;

  // Core this task currently prefers / runs on; -1 before first placement.
  CoreId core = -1;

  // Cumulative on-CPU time (real ns) — throughput/fairness metrics.
  DurationNs total_cpu_time = 0;

  // Scheduler state: CFS virtual runtime and (when sandboxed) the task group
  // this task belongs to.
  double vruntime = 0.0;
  TaskGroup* group = nullptr;

 private:
  TaskId id_;
  AppId app_;
  std::string name_;
  std::unique_ptr<Behavior> behavior_;
  TaskState state_ = TaskState::kRunnable;
  DurationNs remaining_compute_ = 0;
  double intensity_ = 1.0;
};

}  // namespace psbox

#endif  // SRC_KERNEL_TASK_H_
