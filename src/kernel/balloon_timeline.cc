#include "src/kernel/balloon_timeline.h"

#include <fstream>

#include "src/base/csv.h"
#include "src/kernel/kernel.h"

namespace psbox {

void WriteBalloonTimelineCsv(const ResourceDomain& domain, std::ostream& out) {
  CsvWriter csv(out);
  csv.WriteHeader({"time_ms", "edge", "app", "psbox"});
  for (const BalloonEdge& edge : domain.timeline()) {
    csv.WriteRow({FormatDouble(ToMillis(edge.when), 4),
                  BalloonEdgeKindName(edge.kind), std::to_string(edge.app),
                  std::to_string(edge.box)});
  }
}

int ExportBalloonTimelines(Kernel& kernel, const std::string& dir,
                           const std::string& prefix) {
  int written = 0;
  for (size_t i = 0; i < kNumHwComponents; ++i) {
    const HwComponent hw = static_cast<HwComponent>(i);
    const ResourceDomain& domain = kernel.domain(hw);
    if (domain.timeline().empty()) {
      continue;  // never ballooned (idle or direct-metered domain)
    }
    std::ofstream out(dir + "/" + prefix + "balloons_" +
                      HwComponentName(hw) + ".csv");
    if (!out) {
      continue;  // unwritable directory; callers report the path they passed
    }
    WriteBalloonTimelineCsv(domain, out);
    ++written;
  }
  return written;
}

}  // namespace psbox
