#include "src/kernel/kernel.h"

#include <algorithm>

#include "src/base/check.h"

namespace psbox {

Kernel::Kernel(Board* board, KernelConfig config)
    : board_(board), config_(config) {
  scheduler_ = std::make_unique<CpuScheduler>(&board_->sim(), &board_->cpu(),
                                              config_.sched, this);
  governor_ = std::make_unique<CpufreqGovernor>(&board_->sim(), scheduler_.get(),
                                                &board_->cpu(), config_.governor);
  AccelDriverConfig gpu_cfg = config_.gpu_driver;
  AccelDriverConfig dsp_cfg = config_.dsp_driver;
  // The DSP serves long-running kernels; give balloons a longer grant (this
  // is why the paper reports ~100 ms DSP dispatch latencies vs 1.8 ms GPU).
  if (dsp_cfg.min_grant == AccelDriverConfig{}.min_grant) {
    dsp_cfg.min_grant = 40 * kMillisecond;
    dsp_cfg.switch_lead = 20 * kMillisecond;
  }
  gpu_driver_ = std::make_unique<AccelDriver>(&board_->sim(), &board_->gpu(),
                                              HwComponent::kGpu, this, gpu_cfg);
  dsp_driver_ = std::make_unique<AccelDriver>(&board_->sim(), &board_->dsp(),
                                              HwComponent::kDsp, this, dsp_cfg);
  net_ = std::make_unique<NetStack>(&board_->sim(), &board_->wifi(), this, config_.net);
  storage_driver_ = std::make_unique<StorageDriver>(
      &board_->sim(), &board_->storage(), this, config_.storage_driver);
  display_domain_ = std::make_unique<DisplayDomain>(&board_->sim(), &board_->display());
  gps_domain_ = std::make_unique<GpsDomain>(&board_->sim(), &board_->gps());

  RegisterDomain(scheduler_.get());
  RegisterDomain(gpu_driver_.get());
  RegisterDomain(dsp_driver_.get());
  RegisterDomain(net_.get());
  RegisterDomain(storage_driver_.get());
  RegisterDomain(display_domain_.get());
  RegisterDomain(gps_domain_.get());
  governor_->Start();
  if (config_.telemetry_retention > 0) {
    ArmTelemetryTrim();
  }
}

void Kernel::ArmTelemetryTrim() {
  const DurationNs period =
      config_.telemetry_trim_period > 0
          ? config_.telemetry_trim_period
          : std::max<DurationNs>(1, config_.telemetry_retention / 2);
  board_->sim().ScheduleAfter(period, [this] {
    TrimTelemetry(Now() - config_.telemetry_retention);
    ArmTelemetryTrim();
  });
}

TimeNs Kernel::TrimTelemetry(TimeNs desired) {
  // Clamp the horizon to what every consumer can still resolve exactly:
  // open accounting windows (domains) and sandbox retain floors (service).
  TimeNs horizon = desired;
  for (ResourceDomain* d : domains_) {
    if (d != nullptr) {
      horizon = std::min(horizon, d->TelemetryFloor(desired));
    }
  }
  if (psbox_service_ != nullptr) {
    horizon = psbox_service_->TelemetryFloor(horizon);
  }
  if (horizon <= 0) {
    return 0;
  }
  // Sandboxes fold their trimmed ownership history into energy bases first —
  // the folding integrates the rails, so it must see them untrimmed.
  if (psbox_service_ != nullptr) {
    psbox_service_->TrimTelemetry(horizon);
  }
  for (size_t i = 0; i < kNumHwComponents; ++i) {
    if (domains_[i] != nullptr) {
      domains_[i]->TrimTelemetry(horizon);
    }
    board_->RailFor(static_cast<HwComponent>(i)).TrimBefore(horizon);
  }
  ledger_.TrimBefore(horizon);
  last_trim_horizon_ = horizon;
  return horizon;
}

Kernel::~Kernel() = default;

AppId Kernel::CreateApp(std::string name) {
  app_names_.push_back(std::move(name));
  const AppId app = static_cast<AppId>(app_names_.size() - 1);
  app_tasks_[app];  // materialise the (possibly empty) task list
  return app;
}

const std::string& Kernel::AppName(AppId app) const {
  PSBOX_CHECK_GE(app, 0);
  PSBOX_CHECK_LT(static_cast<size_t>(app), app_names_.size());
  return app_names_[static_cast<size_t>(app)];
}

Task* Kernel::SpawnTask(AppId app, std::string name, std::unique_ptr<Behavior> behavior,
                        CoreId core) {
  tasks_.push_back(std::make_unique<Task>(next_task_id_++, app, std::move(name),
                                          std::move(behavior)));
  Task* task = tasks_.back().get();
  app_tasks_[app].push_back(task);
  scheduler_->AddTask(task, core);
  return task;
}

const std::vector<Task*>& Kernel::AppTasks(AppId app) const {
  auto it = app_tasks_.find(app);
  PSBOX_CHECK(it != app_tasks_.end());
  return it->second;
}

bool Kernel::AppFinished(AppId app) const {
  for (const Task* t : AppTasks(app)) {
    if (t->state() != TaskState::kExited) {
      return false;
    }
  }
  return true;
}

void Kernel::RegisterDomain(ResourceDomain* domain) {
  const size_t slot = static_cast<size_t>(domain->kind());
  if (domains_[slot] != nullptr) {
    CheckFail(__FILE__, __LINE__,
              std::string("duplicate ResourceDomain registration for ") +
                  domain->name());
  }
  domains_[slot] = domain;
  domain->set_balloon_observer(this);
  domain->set_ledger(&ledger_);
}

ResourceDomain& Kernel::domain(HwComponent hw) {
  ResourceDomain* d = FindDomain(hw);
  if (d == nullptr) {
    CheckFail(__FILE__, __LINE__,
              std::string("no ResourceDomain registered for ") +
                  HwComponentName(hw));
  }
  return *d;
}

AccelDriver& Kernel::DriverFor(HwComponent hw) {
  if (hw != HwComponent::kGpu && hw != HwComponent::kDsp) {
    CheckFail(__FILE__, __LINE__,
              std::string("DriverFor: ") + HwComponentName(hw) +
                  " is not an accelerator (use domain() for the generic "
                  "balloon surface)");
  }
  return static_cast<AccelDriver&>(domain(hw));
}

void Kernel::RegisterCpuContext(PsboxId box) {
  cpu_context_of_box_[box] = governor_->ContextForBox(box);
}

void Kernel::OnBalloonIn(PsboxId box, HwComponent hw, TimeNs when) {
  if (hw == HwComponent::kCpu && config_.virtualize_cpu_freq) {
    // Power state virtualisation for the CPU: restore the sandbox's DVFS
    // context at the balloon edge. (Accelerator/NIC state is swapped inside
    // their drivers.)
    auto it = cpu_context_of_box_.find(box);
    if (it != cpu_context_of_box_.end()) {
      governor_->SwitchContext(it->second);
    }
  }
  if (external_observer_ != nullptr) {
    external_observer_->OnBalloonIn(box, hw, when);
  }
}

void Kernel::OnBalloonOut(PsboxId box, HwComponent hw, TimeNs when) {
  if (hw == HwComponent::kCpu && config_.virtualize_cpu_freq) {
    governor_->SwitchContext(CpufreqGovernor::kGlobalContext);
  }
  if (external_observer_ != nullptr) {
    external_observer_->OnBalloonOut(box, hw, when);
  }
}

void Kernel::ScheduleTaskWake(Task* task, DurationNs delay) {
  board_->sim().ScheduleAfter(delay, [this, task] {
    if (task->state() == TaskState::kBlocked) {
      scheduler_->WakeTask(task);
    }
  });
}

void Kernel::HandleSubmitAccel(Task* task, const Action& action) {
  DriverFor(action.accel).Submit(task, action.cmd);
}

void Kernel::HandleSend(Task* task, const Action& action) {
  net_->Send(task, action);
}

void Kernel::HandleSubmitStorage(Task* task, const Action& action) {
  StorageCommand cmd;
  cmd.is_write = action.storage_write;
  cmd.bytes = action.bytes;
  storage_driver_->Submit(task, cmd);
}

void Kernel::DeliverAccelCompletion(Task* task) {
  if (task->state() == TaskState::kBlocked && task->awaited_accel_completions > 0 &&
      task->pending_accel_completions >= task->awaited_accel_completions) {
    task->pending_accel_completions -= task->awaited_accel_completions;
    task->awaited_accel_completions = 0;
    scheduler_->WakeTask(task);
  }
}

void Kernel::DeliverStorageCompletion(Task* task) {
  if (task->state() == TaskState::kBlocked &&
      task->awaited_storage_completions > 0 &&
      task->pending_storage_completions >= task->awaited_storage_completions) {
    task->pending_storage_completions -= task->awaited_storage_completions;
    task->awaited_storage_completions = 0;
    scheduler_->WakeTask(task);
  }
}

void Kernel::DeliverNetDone(Task* task) {
  if (task->state() == TaskState::kBlocked && task->waiting_net &&
      task->net_inflight == 0) {
    task->waiting_net = false;
    scheduler_->WakeTask(task);
  }
}

void Kernel::ExpectRx(Task* task, size_t bytes) {
  (void)bytes;
  rx_waiters_[task->app()].push_back(task);
}

void Kernel::DeliverRx(AppId app, size_t bytes) {
  (void)bytes;
  auto it = rx_waiters_.find(app);
  if (it == rx_waiters_.end() || it->second.empty()) {
    return;  // unsolicited RX (co-runner downloads etc.)
  }
  Task* task = it->second.front();
  it->second.pop_front();
  --task->net_inflight;
  DeliverNetDone(task);
}

}  // namespace psbox
