#include "src/kernel/kernel.h"

#include <algorithm>
#include <map>

#include "src/base/check.h"
#include "src/snapshot/event_rearmer.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

Kernel::Kernel(Board* board, KernelConfig config)
    : board_(board), config_(config) {
  scheduler_ = std::make_unique<CpuScheduler>(&board_->sim(), &board_->cpu(),
                                              config_.sched, this);
  governor_ = std::make_unique<CpufreqGovernor>(&board_->sim(), scheduler_.get(),
                                                &board_->cpu(), config_.governor);
  AccelDriverConfig gpu_cfg = config_.gpu_driver;
  AccelDriverConfig dsp_cfg = config_.dsp_driver;
  // The DSP serves long-running kernels; give balloons a longer grant (this
  // is why the paper reports ~100 ms DSP dispatch latencies vs 1.8 ms GPU).
  if (dsp_cfg.min_grant == AccelDriverConfig{}.min_grant) {
    dsp_cfg.min_grant = 40 * kMillisecond;
    dsp_cfg.switch_lead = 20 * kMillisecond;
  }
  gpu_driver_ = std::make_unique<AccelDriver>(&board_->sim(), &board_->gpu(),
                                              HwComponent::kGpu, this, gpu_cfg);
  dsp_driver_ = std::make_unique<AccelDriver>(&board_->sim(), &board_->dsp(),
                                              HwComponent::kDsp, this, dsp_cfg);
  net_ = std::make_unique<NetStack>(&board_->sim(), &board_->wifi(), this, config_.net);
  storage_driver_ = std::make_unique<StorageDriver>(
      &board_->sim(), &board_->storage(), this, config_.storage_driver);
  display_domain_ = std::make_unique<DisplayDomain>(&board_->sim(), &board_->display());
  gps_domain_ = std::make_unique<GpsDomain>(&board_->sim(), &board_->gps());

  RegisterDomain(scheduler_.get());
  RegisterDomain(gpu_driver_.get());
  RegisterDomain(dsp_driver_.get());
  RegisterDomain(net_.get());
  RegisterDomain(storage_driver_.get());
  RegisterDomain(display_domain_.get());
  RegisterDomain(gps_domain_.get());
  governor_->Start();
  if (config_.telemetry_retention > 0) {
    ArmTelemetryTrim();
  }
}

void Kernel::ArmTelemetryTrim() {
  const DurationNs period =
      config_.telemetry_trim_period > 0
          ? config_.telemetry_trim_period
          : std::max<DurationNs>(1, config_.telemetry_retention / 2);
  ArmTelemetryTrimAt(board_->sim().Now() + period);
}

void Kernel::ArmTelemetryTrimAt(TimeNs when) {
  trim_event_ = board_->sim().ScheduleAt(when, [this] {
    trim_event_ = kInvalidEventId;
    TrimTelemetry(Now() - config_.telemetry_retention);
    ArmTelemetryTrim();
  });
}

TimeNs Kernel::TrimTelemetry(TimeNs desired) {
  // Clamp the horizon to what every consumer can still resolve exactly:
  // open accounting windows (domains) and sandbox retain floors (service).
  TimeNs horizon = desired;
  for (ResourceDomain* d : domains_) {
    if (d != nullptr) {
      horizon = std::min(horizon, d->TelemetryFloor(desired));
    }
  }
  if (psbox_service_ != nullptr) {
    horizon = psbox_service_->TelemetryFloor(horizon);
  }
  if (horizon <= 0) {
    return 0;
  }
  // Sandboxes fold their trimmed ownership history into energy bases first —
  // the folding integrates the rails, so it must see them untrimmed.
  if (psbox_service_ != nullptr) {
    psbox_service_->TrimTelemetry(horizon);
  }
  for (size_t i = 0; i < kNumHwComponents; ++i) {
    if (domains_[i] != nullptr) {
      domains_[i]->TrimTelemetry(horizon);
    }
    board_->RailFor(static_cast<HwComponent>(i)).TrimBefore(horizon);
  }
  ledger_.TrimBefore(horizon);
  last_trim_horizon_ = horizon;
  return horizon;
}

Kernel::~Kernel() = default;

AppId Kernel::CreateApp(std::string name) {
  app_names_.push_back(std::move(name));
  const AppId app = static_cast<AppId>(app_names_.size() - 1);
  app_tasks_[app];  // materialise the (possibly empty) task list
  return app;
}

const std::string& Kernel::AppName(AppId app) const {
  PSBOX_CHECK_GE(app, 0);
  PSBOX_CHECK_LT(static_cast<size_t>(app), app_names_.size());
  return app_names_[static_cast<size_t>(app)];
}

Task* Kernel::SpawnTask(AppId app, std::string name, std::unique_ptr<Behavior> behavior,
                        CoreId core) {
  tasks_.push_back(std::make_unique<Task>(next_task_id_++, app, std::move(name),
                                          std::move(behavior)));
  Task* task = tasks_.back().get();
  app_tasks_[app].push_back(task);
  if (!restoring_) {
    // During snapshot restore the scenario replay only registers the task;
    // its scheduler state is overwritten wholesale by RestoreState.
    scheduler_->AddTask(task, core);
  }
  return task;
}

const std::vector<Task*>& Kernel::AppTasks(AppId app) const {
  auto it = app_tasks_.find(app);
  PSBOX_CHECK(it != app_tasks_.end());
  return it->second;
}

bool Kernel::AppFinished(AppId app) const {
  for (const Task* t : AppTasks(app)) {
    if (t->state() != TaskState::kExited) {
      return false;
    }
  }
  return true;
}

void Kernel::RegisterDomain(ResourceDomain* domain) {
  const size_t slot = static_cast<size_t>(domain->kind());
  if (domains_[slot] != nullptr) {
    CheckFail(__FILE__, __LINE__,
              std::string("duplicate ResourceDomain registration for ") +
                  domain->name());
  }
  domains_[slot] = domain;
  domain->set_balloon_observer(this);
  domain->set_ledger(&ledger_);
}

ResourceDomain& Kernel::domain(HwComponent hw) {
  ResourceDomain* d = FindDomain(hw);
  if (d == nullptr) {
    CheckFail(__FILE__, __LINE__,
              std::string("no ResourceDomain registered for ") +
                  HwComponentName(hw));
  }
  return *d;
}

AccelDriver& Kernel::DriverFor(HwComponent hw) {
  if (hw != HwComponent::kGpu && hw != HwComponent::kDsp) {
    CheckFail(__FILE__, __LINE__,
              std::string("DriverFor: ") + HwComponentName(hw) +
                  " is not an accelerator (use domain() for the generic "
                  "balloon surface)");
  }
  return static_cast<AccelDriver&>(domain(hw));
}

void Kernel::RegisterCpuContext(PsboxId box) {
  cpu_context_of_box_[box] = governor_->ContextForBox(box);
}

void Kernel::OnBalloonIn(PsboxId box, HwComponent hw, TimeNs when) {
  if (hw == HwComponent::kCpu && config_.virtualize_cpu_freq) {
    // Power state virtualisation for the CPU: restore the sandbox's DVFS
    // context at the balloon edge. (Accelerator/NIC state is swapped inside
    // their drivers.)
    auto it = cpu_context_of_box_.find(box);
    if (it != cpu_context_of_box_.end()) {
      governor_->SwitchContext(it->second);
    }
  }
  if (external_observer_ != nullptr) {
    external_observer_->OnBalloonIn(box, hw, when);
  }
}

void Kernel::OnBalloonOut(PsboxId box, HwComponent hw, TimeNs when) {
  if (hw == HwComponent::kCpu && config_.virtualize_cpu_freq) {
    governor_->SwitchContext(CpufreqGovernor::kGlobalContext);
  }
  if (external_observer_ != nullptr) {
    external_observer_->OnBalloonOut(box, hw, when);
  }
}

void Kernel::ScheduleTaskWake(Task* task, DurationNs delay) {
  ScheduleTaskWakeAt(task, board_->sim().Now() + delay);
}

void Kernel::ScheduleTaskWakeAt(Task* task, TimeNs when) {
  std::erase_if(wake_events_, [this](const std::pair<TaskId, EventId>& we) {
    return !board_->sim().IsPending(we.second);
  });
  wake_events_.emplace_back(
      task->id(), board_->sim().ScheduleAt(when, [this, task] {
        if (task->state() == TaskState::kBlocked) {
          scheduler_->WakeTask(task);
        }
      }));
}

void Kernel::HandleSubmitAccel(Task* task, const Action& action) {
  DriverFor(action.accel).Submit(task, action.cmd);
}

void Kernel::HandleSend(Task* task, const Action& action) {
  net_->Send(task, action);
}

void Kernel::HandleSubmitStorage(Task* task, const Action& action) {
  StorageCommand cmd;
  cmd.is_write = action.storage_write;
  cmd.bytes = action.bytes;
  storage_driver_->Submit(task, cmd);
}

void Kernel::DeliverAccelCompletion(Task* task) {
  if (task->state() == TaskState::kBlocked && task->awaited_accel_completions > 0 &&
      task->pending_accel_completions >= task->awaited_accel_completions) {
    task->pending_accel_completions -= task->awaited_accel_completions;
    task->awaited_accel_completions = 0;
    scheduler_->WakeTask(task);
  }
}

void Kernel::DeliverStorageCompletion(Task* task) {
  if (task->state() == TaskState::kBlocked &&
      task->awaited_storage_completions > 0 &&
      task->pending_storage_completions >= task->awaited_storage_completions) {
    task->pending_storage_completions -= task->awaited_storage_completions;
    task->awaited_storage_completions = 0;
    scheduler_->WakeTask(task);
  }
}

void Kernel::DeliverNetDone(Task* task) {
  if (task->state() == TaskState::kBlocked && task->waiting_net &&
      task->net_inflight == 0) {
    task->waiting_net = false;
    scheduler_->WakeTask(task);
  }
}

void Kernel::ExpectRx(Task* task, size_t bytes) {
  (void)bytes;
  rx_waiters_[task->app()].push_back(task);
}

void Kernel::DeliverRx(AppId app, size_t bytes) {
  (void)bytes;
  auto it = rx_waiters_.find(app);
  if (it == rx_waiters_.end() || it->second.empty()) {
    return;  // unsolicited RX (co-runner downloads etc.)
  }
  Task* task = it->second.front();
  it->second.pop_front();
  --task->net_inflight;
  DeliverNetDone(task);
}

// ---------------------------------------------------------------------------
// Checkpoint/restore
// ---------------------------------------------------------------------------

void Kernel::SaveState(SnapshotWriter& w) const {
  w.Section("kernel");
  w.U64(app_names_.size());
  for (const std::string& name : app_names_) {
    w.Str(name);
  }
  w.U64(tasks_.size());
  for (const auto& tp : tasks_) {
    const Task& t = *tp;
    w.U64(static_cast<uint64_t>(t.id()));
    w.I64(t.app());
    w.U8(static_cast<uint8_t>(t.state()));
    w.I64(t.remaining_compute());
    w.F64(t.intensity());
    w.I64(t.pending_accel_completions);
    w.I64(t.awaited_accel_completions);
    w.I64(t.net_inflight);
    w.Bool(t.waiting_net);
    w.I64(t.pending_storage_completions);
    w.I64(t.awaited_storage_completions);
    w.I64(t.core);
    w.I64(t.total_cpu_time);
    w.F64(t.vruntime);
    w.U8(const_cast<Task&>(t).behavior().SnapshotMarker());
    const_cast<Task&>(t).behavior().SaveState(w);
  }
  w.U64(static_cast<uint64_t>(next_task_id_));
  {
    // rx_waiters_ in sorted-app order for a stable byte stream.
    std::map<AppId, const std::deque<Task*>*> sorted;
    for (const auto& [app, waiters] : rx_waiters_) {
      sorted[app] = &waiters;
    }
    w.U64(sorted.size());
    for (const auto& [app, waiters] : sorted) {
      w.I64(app);
      w.U64(waiters->size());
      for (const Task* t : *waiters) {
        w.U64(static_cast<uint64_t>(t->id()));
      }
    }
  }
  {
    const std::map<PsboxId, int> contexts(cpu_context_of_box_.begin(),
                                          cpu_context_of_box_.end());
    w.U64(contexts.size());
    for (const auto& [box, ctx] : contexts) {
      w.I64(box);
      w.I64(ctx);
    }
  }
  w.I64(last_trim_horizon_);
  ledger_.SaveState(w);
  SaveEvent(w, board_->sim(), trim_event_);
  uint64_t live_wakes = 0;
  for (const auto& [task_id, event] : wake_events_) {
    if (board_->sim().IsPending(event)) {
      ++live_wakes;
    }
  }
  w.U64(live_wakes);
  for (const auto& [task_id, event] : wake_events_) {
    if (board_->sim().IsPending(event)) {
      w.U64(static_cast<uint64_t>(task_id));
      SaveEvent(w, board_->sim(), event);
    }
  }
  scheduler_->SaveState(w);
  governor_->SaveState(w);
  gpu_driver_->SaveState(w);
  dsp_driver_->SaveState(w);
  net_->SaveState(w);
  storage_driver_->SaveState(w);
  display_domain_->SaveDomainState(w);
  gps_domain_->SaveDomainState(w);
}

void Kernel::RestoreState(SnapshotReader& r, EventRearmer& rearmer) {
  if (!r.Section("kernel")) {
    return;
  }
  const size_t num_apps = r.Count(9);
  if (r.ok() && num_apps != app_names_.size()) {
    r.Fail("app count mismatch between snapshot and restored scenario");
    return;
  }
  for (size_t i = 0; i < num_apps && r.ok(); ++i) {
    if (r.Str() != app_names_[i]) {
      r.Fail("app name mismatch between snapshot and restored scenario");
      return;
    }
  }
  const size_t num_tasks = r.Count(64);
  if (r.ok() && num_tasks != tasks_.size()) {
    r.Fail("task count mismatch between snapshot and restored scenario");
    return;
  }
  for (size_t i = 0; i < num_tasks && r.ok(); ++i) {
    Task& t = *tasks_[i];
    const uint64_t id = r.U64();
    const AppId app = static_cast<AppId>(r.I64());
    if (id != static_cast<uint64_t>(t.id()) || app != t.app()) {
      r.Fail("task identity mismatch between snapshot and restored scenario");
      return;
    }
    t.set_state(static_cast<TaskState>(r.U8()));
    t.set_remaining_compute(r.I64());
    t.set_intensity(r.F64());
    t.pending_accel_completions = static_cast<int>(r.I64());
    t.awaited_accel_completions = static_cast<int>(r.I64());
    t.net_inflight = static_cast<int>(r.I64());
    t.waiting_net = r.Bool();
    t.pending_storage_completions = static_cast<int>(r.I64());
    t.awaited_storage_completions = static_cast<int>(r.I64());
    t.core = static_cast<CoreId>(r.I64());
    t.total_cpu_time = r.I64();
    t.vruntime = r.F64();
    t.group = nullptr;  // re-linked by the scheduler's group restore
    if (r.U8() != t.behavior().SnapshotMarker()) {
      r.Fail("task behavior type mismatch between snapshot and scenario");
      return;
    }
    t.behavior().RestoreState(r);
  }
  const uint64_t next_id = r.U64();
  if (r.ok() && next_id != static_cast<uint64_t>(next_task_id_)) {
    r.Fail("task id sequence mismatch between snapshot and restored scenario");
    return;
  }
  rx_waiters_.clear();
  const size_t num_waiter_apps = r.Count(16);
  for (size_t i = 0; i < num_waiter_apps && r.ok(); ++i) {
    const AppId app = static_cast<AppId>(r.I64());
    std::deque<Task*>& waiters = rx_waiters_[app];
    const size_t n = r.Count(8);
    for (size_t j = 0; j < n && r.ok(); ++j) {
      Task* t = TaskById(static_cast<TaskId>(r.U64()));
      if (t == nullptr) {
        r.Fail("rx waiter references unknown task in snapshot");
        return;
      }
      waiters.push_back(t);
    }
  }
  cpu_context_of_box_.clear();
  const size_t num_ctx = r.Count(16);
  for (size_t i = 0; i < num_ctx && r.ok(); ++i) {
    const PsboxId box = static_cast<PsboxId>(r.I64());
    cpu_context_of_box_[box] = static_cast<int>(r.I64());
  }
  last_trim_horizon_ = r.I64();
  ledger_.RestoreState(r);
  trim_event_ = kInvalidEventId;
  LoadEvent(r, rearmer, [this](TimeNs when) { ArmTelemetryTrimAt(when); });
  wake_events_.clear();
  const size_t num_wakes = r.Count(18);
  for (size_t i = 0; i < num_wakes && r.ok(); ++i) {
    Task* t = TaskById(static_cast<TaskId>(r.U64()));
    if (t == nullptr) {
      r.Fail("wake timer references unknown task in snapshot");
      return;
    }
    LoadEvent(r, rearmer,
              [this, t](TimeNs when) { ScheduleTaskWakeAt(t, when); });
  }
  scheduler_->RestoreState(r, rearmer);
  governor_->RestoreState(r, rearmer);
  gpu_driver_->RestoreState(r, rearmer);
  dsp_driver_->RestoreState(r, rearmer);
  net_->RestoreState(r, rearmer);
  storage_driver_->RestoreState(r, rearmer);
  display_domain_->RestoreDomainState(r, rearmer);
  gps_domain_->RestoreDomainState(r, rearmer);
}

}  // namespace psbox
