#include "src/kernel/accel_driver.h"

#include <algorithm>
#include <limits>

#include "src/base/check.h"
#include "src/kernel/kernel.h"
#include "src/snapshot/event_rearmer.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

AccelDriver::AccelDriver(Simulator* sim, AccelDevice* device, HwComponent kind,
                         Kernel* kernel, AccelDriverConfig config)
    : ResourceDomain(sim, kind, config.drain_timeout),
      device_(device), kernel_(kernel), config_(config) {
  context_opp_[0] = device_->opp_index();
  device_->set_on_complete([this](const AccelCompletion& c) { OnComplete(c); });
  last_ctx_mark_ = sim_->Now();
  gov_event_ = sim_->ScheduleAfter(config_.governor_period, [this] { OnGovernorTick(); });
}

void AccelDriver::SchedulePumpAt(TimeNs when) {
  // Prune fired entries so the list stays small and checkpoints only see
  // genuinely pending wake-ups.
  std::erase_if(pump_events_, [this](EventId e) { return !sim_->IsPending(e); });
  pump_events_.push_back(sim_->ScheduleAt(when, [this] { Pump(); }));
}

void AccelDriver::MarkContextTime() {
  const TimeNs now = sim_->Now();
  if (busy_since_ >= 0) {
    ctx_busy_[current_context_] += now - busy_since_;
    busy_since_ = now;
  }
  ctx_wall_[current_context_] += now - last_ctx_mark_;
  last_ctx_mark_ = now;
}

AccelDriver::AppQueue& AccelDriver::QueueFor(AppId app) { return queues_[app]; }

void AccelDriver::Submit(Task* task, AccelCommand cmd) {
  cmd.id = next_cmd_id_++;
  cmd.app = task->app();
  ++stats_.submitted;
  AppQueue& q = QueueFor(cmd.app);
  q.q.push_back(Pending{cmd, task, sim_->Now()});
  q.last_seen = sim_->Now();
  Pump();
}

double AccelDriver::MinRecentCompetitorVruntime(AppId owner) const {
  constexpr DurationNs kRecency = 50 * kMillisecond;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [app, q] : queues_) {
    if (app == owner) {
      continue;
    }
    const bool recent =
        q.last_seen >= 0 && sim_->Now() - q.last_seen <= kRecency;
    if (!q.q.empty() || recent) {
      best = std::min(best, q.vruntime);
    }
  }
  return best;
}

AppId AccelDriver::BestPendingApp(bool exclude_sandboxed_owner) const {
  AppId best = kNoApp;
  double best_vr = std::numeric_limits<double>::infinity();
  for (const auto& [app, q] : queues_) {
    if (q.q.empty()) {
      continue;
    }
    if (exclude_sandboxed_owner && app == balloon_owner()) {
      continue;
    }
    if (q.vruntime < best_vr) {
      best_vr = q.vruntime;
      best = app;
    }
  }
  return best;
}

void AccelDriver::Pump() {
  // Busy-state bookkeeping for the frequency governor.
  auto update_busy = [this] {
    if (device_->in_flight() > 0 && busy_since_ < 0) {
      busy_since_ = sim_->Now();
    } else if (device_->in_flight() == 0 && busy_since_ >= 0) {
      ctx_busy_[current_context_] += sim_->Now() - busy_since_;
      busy_since_ = -1;
    }
  };

  while (true) {
    switch (balloon_phase()) {
      case BalloonPhase::kIdle: {  // phase 5 / normal fair dispatch
        if (!device_->CanDispatch()) {
          update_busy();
          return;
        }
        AppId best = BestPendingApp(false);
        if (best == kNoApp) {
          update_busy();
          return;
        }
        if (QueueFor(best).sandboxed) {
          // A sandboxed app only takes the device when it is not still
          // repaying its previous balloon relative to apps that will be back
          // momentarily (non-work-conserving toward the sandbox; this is
          // what confines the loss to the sandboxed app, §6.3).
          const double competitor = MinRecentCompetitorVruntime(best);
          if (QueueFor(best).vruntime >
              competitor + static_cast<double>(config_.switch_lead)) {
            // Try the best non-sandboxed pending app instead.
            AppId fallback = kNoApp;
            double fallback_vr = std::numeric_limits<double>::infinity();
            for (const auto& [app, q2] : queues_) {
              if (q2.q.empty() || q2.sandboxed) {
                continue;
              }
              if (q2.vruntime < fallback_vr) {
                fallback_vr = q2.vruntime;
                fallback = app;
              }
            }
            if (fallback == kNoApp) {
              // Idle on purpose; retry once the competition catches up.
              if (retry_event_ == kInvalidEventId) {
                retry_event_ = sim_->ScheduleAfter(1 * kMillisecond, [this] {
                  retry_event_ = kInvalidEventId;
                  Pump();
                });
              }
              update_busy();
              return;
            }
            best = fallback;
          } else {
            // Phase 1 — drain others: buffer everything until the device is
            // empty, then the balloon owns it.
            BalloonRequest(best, QueueFor(best).box);
            continue;
          }
        }
        AppQueue& q = QueueFor(best);
        Pending p = q.q.front();
        q.q.pop_front();
        const DurationNs lat = sim_->Now() - p.submit_time;
        stats_.total_dispatch_latency += lat;
        stats_.max_dispatch_latency = std::max(stats_.max_dispatch_latency, lat);
        device_->Dispatch(p.cmd);
        in_flight_[p.cmd.id] = p;
        ArmCommandWatchdog(p.cmd.id);
        update_busy();
        continue;
      }
      case BalloonPhase::kDrainOthers: {
        if (device_->in_flight() > 0) {
          update_busy();
          return;
        }
        // Balloon-in: exclusive ownership begins; restore the sandbox's
        // virtualised operating frequency before the observer looks.
        if (config_.virtualize_freq) {
          SwitchOppContext(QueueFor(balloon_owner()).opp_context);
        }
        BalloonServe();
        continue;
      }
      case BalloonPhase::kServe: {
        AppQueue& sq = QueueFor(balloon_owner());
        const AppId contender = BestPendingApp(/*exclude_sandboxed_owner=*/true);
        const bool grant_over = sim_->Now() - balloon_start() >= config_.min_grant;
        const bool owner_idle = sq.q.empty() && device_->in_flight() == 0;
        if (owner_idle) {
          if (owner_idle_since_ < 0) {
            owner_idle_since_ = sim_->Now();
            SchedulePumpAt(sim_->Now() + config_.idle_release);
          }
        } else {
          owner_idle_since_ = -1;
        }
        const bool idle_expired =
            owner_idle && sim_->Now() - owner_idle_since_ >= config_.idle_release;
        // The owner's accrued-so-far billing for this balloon counts toward
        // the lead check — otherwise a single long balloon (whose billing
        // only lands at balloon end) could hold the device forever.
        const double accrued =
            static_cast<double>(sim_->Now() - balloon_start()) * device_->slots();
        const bool lead_exceeded =
            contender != kNoApp &&
            sq.vruntime + (config_.bill_balloon ? accrued : 0.0) -
                    QueueFor(contender).vruntime >
                static_cast<double>(config_.switch_lead);
        if ((contender != kNoApp && grant_over && (owner_idle || lead_exceeded)) ||
            idle_expired) {
          owner_idle_since_ = -1;
          BalloonRelease();  // phase 4: drain the owner
          continue;
        }
        if (!device_->CanDispatch() || sq.q.empty()) {
          // Nothing to do now. If a contender is waiting for the grant to
          // expire, make sure we come back then.
          if (contender != kNoApp && !grant_over) {
            const TimeNs when = balloon_start() + config_.min_grant;
            SchedulePumpAt(std::max(when, sim_->Now()));
          }
          update_busy();
          return;
        }
        // Phases 2-3 — flush & serve the sandboxed app.
        Pending p = sq.q.front();
        sq.q.pop_front();
        const DurationNs lat = sim_->Now() - p.submit_time;
        stats_.total_dispatch_latency += lat;
        stats_.max_dispatch_latency = std::max(stats_.max_dispatch_latency, lat);
        device_->Dispatch(p.cmd);
        in_flight_[p.cmd.id] = p;
        ArmCommandWatchdog(p.cmd.id);
        update_busy();
        continue;
      }
      case BalloonPhase::kDrainOwner: {
        if (device_->in_flight() > 0) {
          update_busy();
          return;
        }
        // Balloon-out: bill the *whole* accelerator for the whole balloon to
        // the sandboxed app (drain stalls and idle slots included).
        AppQueue& sq = QueueFor(balloon_owner());
        if (config_.bill_balloon) {
          sq.vruntime += static_cast<double>(sim_->Now() - balloon_start()) *
                         device_->slots();
        }
        if (config_.virtualize_freq) {
          SwitchOppContext(0);
        }
        BalloonFinish();
        owner_idle_since_ = -1;
        continue;  // phase 5: flush others in queueing order
      }
    }
  }
}

void AccelDriver::OnComplete(const AccelCompletion& completion) {
  auto it = in_flight_.find(completion.cmd.id);
  PSBOX_CHECK(it != in_flight_.end());
  const Pending p = it->second;
  in_flight_.erase(it);
  sim_->Cancel(p.watchdog);
  ++stats_.completed;
  AppQueue& q = QueueFor(completion.cmd.app);
  ++q.completed;
  q.last_seen = sim_->Now();
  if (completion.cmd.app != balloon_owner()) {
    // Normal billing: the span the command occupied the device, as visible
    // to the CPU side (dispatch to completion interrupt).
    q.vruntime +=
        static_cast<double>(completion.end_time - completion.dispatch_time);
  }
  if (ledger_ != nullptr) {
    ledger_->Add(kind(), completion.cmd.app, completion.dispatch_time,
                 completion.end_time);
  }
  // Deliver the completion to the submitting task (may wake it).
  if (p.task != nullptr) {
    ++p.task->pending_accel_completions;
    kernel_->DeliverAccelCompletion(p.task);
  }
  Pump();
}

void AccelDriver::SetSandboxed(AppId app, PsboxId box) {
  AppQueue& q = QueueFor(app);
  q.sandboxed = true;
  q.box = box;
  if (q.opp_context < 0) {
    q.opp_context = CreateOppContext();
  }
  Pump();
}

void AccelDriver::ClearSandboxed(AppId app) {
  AppQueue& q = QueueFor(app);
  q.sandboxed = false;
  if (balloon_owner() == app) {
    if (balloon_phase() == BalloonPhase::kDrainOthers) {
      // Balloon never took ownership; just unwind.
      BalloonCancel();
    } else if (balloon_phase() == BalloonPhase::kServe) {
      BalloonRelease();
    }
  }
  Pump();
}

int AccelDriver::CreateOppContext() {
  const int ctx = next_context_++;
  context_opp_[ctx] = 0;
  return ctx;
}

void AccelDriver::SwitchOppContext(int ctx) {
  PSBOX_CHECK(context_opp_.count(ctx) > 0);
  if (ctx == current_context_) {
    return;
  }
  MarkContextTime();
  context_opp_[current_context_] = device_->opp_index();
  current_context_ = ctx;
  device_->SetOppIndex(context_opp_[ctx]);
}

void AccelDriver::OnGovernorTick() {
  MarkContextTime();
  // Update every context that owned the device long enough this window,
  // judging each by the utilisation measured while it was in charge.
  for (auto& [ctx, wall] : ctx_wall_) {
    if (wall >= 2 * kMillisecond) {
      const double util =
          static_cast<double>(ctx_busy_[ctx]) / static_cast<double>(wall);
      int opp = context_opp_[ctx];
      if (ctx == current_context_) {
        opp = device_->opp_index();
      }
      if (util > config_.governor_up) {
        opp = device_->num_opps() - 1;
      } else if (util < config_.governor_down) {
        opp = std::max(0, opp - 1);
      }
      context_opp_[ctx] = opp;
      if (ctx == current_context_) {
        device_->SetOppIndex(opp);
      }
    }
    wall = 0;
    ctx_busy_[ctx] = 0;
  }
  gov_event_ = sim_->ScheduleAfter(config_.governor_period, [this] { OnGovernorTick(); });
}

void AccelDriver::ArmCommandWatchdog(uint64_t cmd_id) {
  // Raw slab event instead of a heap-allocated Watchdog object: the handle
  // rides in the in-flight record and the whole arm/complete cycle stays
  // allocation-free.
  Pending& p = in_flight_.at(cmd_id);
  const DurationNs timeout =
      config_.command_timeout_base +
      static_cast<DurationNs>(static_cast<double>(p.cmd.nominal_work) *
                              config_.command_timeout_work_factor);
  p.watchdog =
      sim_->ScheduleAfter(timeout, [this, cmd_id] { OnCommandTimeout(cmd_id); });
}

void AccelDriver::OnCommandTimeout(uint64_t cmd_id) {
  if (in_flight_.count(cmd_id) == 0) {
    return;  // completed concurrently with the expiry; stale
  }
  ++stats_.watchdog_fires;
  ResetAndRequeue();
  Pump();
}

void AccelDriver::ResetAndRequeue() {
  std::vector<AccelDevice::AbortedCommand> aborted = device_->Reset();
  ++stats_.device_resets;
  RecordRecovery();
  // Every in-flight command was aborted; their watchdogs go with them. (For
  // the expired watchdog that got us here, Cancel is a stale-handle no-op:
  // its event already left the simulator queue.)
  for (auto& [cmd_id, pending] : in_flight_) {
    sim_->Cancel(pending.watchdog);
    pending.watchdog = kInvalidEventId;
  }
  // Push front in reverse so the requeued commands re-dispatch in their
  // original order, ahead of anything submitted since.
  for (auto it = aborted.rbegin(); it != aborted.rend(); ++it) {
    auto fit = in_flight_.find(it->cmd.id);
    PSBOX_CHECK(fit != in_flight_.end());
    Pending p = fit->second;
    in_flight_.erase(fit);
    if (it->hung) {
      ++p.retries;
    }
    if (p.retries > config_.max_command_retries) {
      FailCommand(p);
      continue;
    }
    ++stats_.command_retries;
    QueueFor(p.cmd.app).q.push_front(p);
  }
}

void AccelDriver::OnDrainTimeout() {
  ++stats_.watchdog_fires;
  // Unwind the balloon before clearing the hardware: ResetAndRequeue can
  // re-enter Pump (a failed command wakes its submitter, which may submit
  // again synchronously), and the reentrant pump must see a settled domain.
  AppQueue& sq = QueueFor(balloon_owner());
  const bool owned = balloon_phase() == BalloonPhase::kDrainOwner;
  if (owned && config_.virtualize_freq) {
    SwitchOppContext(0);
  }
  // Bills only the service actually rendered — nothing for a kDrainOthers
  // abort, where ownership never began and no balloon-in was signalled.
  const DurationNs served = BalloonAbort();
  if (owned && config_.bill_balloon) {
    sq.vruntime += static_cast<double>(served) * device_->slots();
  }
  owner_idle_since_ = -1;
  if (device_->in_flight() > 0) {
    // The drain was stuck behind wedged work; clear it now rather than wait
    // for the per-command watchdogs to come around.
    ResetAndRequeue();
  }
  Pump();
}

void AccelDriver::FailCommand(const Pending& p) {
  ++stats_.commands_failed;
  // The submitter still gets a completion (an error status, in a real
  // driver) so it unblocks and can react to the loss.
  if (p.task != nullptr) {
    ++p.task->pending_accel_completions;
    kernel_->DeliverAccelCompletion(p.task);
  }
}

void AccelDriver::SaveState(SnapshotWriter& w) const {
  w.Section("accel_driver");
  SaveDomainState(w);
  auto save_cmd = [&w](const AccelCommand& cmd) {
    w.U64(cmd.id);
    w.I64(cmd.app);
    w.U32(static_cast<uint32_t>(cmd.type));
    w.I64(cmd.nominal_work);
    w.F64(cmd.active_power);
  };
  auto save_pending_fields = [&](const Pending& p) {
    save_cmd(p.cmd);
    w.I64(p.task != nullptr ? p.task->id() : 0);
    w.I64(p.submit_time);
    w.U32(static_cast<uint32_t>(p.retries));
  };
  w.U64(queues_.size());
  for (const auto& [app, q] : queues_) {
    w.I64(app);
    w.U64(q.q.size());
    for (const Pending& p : q.q) {
      save_pending_fields(p);
    }
    w.F64(q.vruntime);
    w.Bool(q.sandboxed);
    w.I64(q.box);
    w.U32(static_cast<uint32_t>(q.opp_context));
    w.U64(q.completed);
    w.I64(q.last_seen);
  }
  // In-flight commands in id order; each carries its hang watchdog.
  std::map<uint64_t, const Pending*> inflight;
  for (const auto& [id, p] : in_flight_) {
    inflight[id] = &p;
  }
  w.U64(inflight.size());
  for (const auto& [id, p] : inflight) {
    save_pending_fields(*p);
    SaveEvent(w, *sim_, p->watchdog);
  }
  w.U64(next_cmd_id_);
  w.I64(owner_idle_since_);
  const std::map<int, int> opps(context_opp_.begin(), context_opp_.end());
  w.U64(opps.size());
  for (const auto& [ctx, opp] : opps) {
    w.U32(static_cast<uint32_t>(ctx));
    w.U32(static_cast<uint32_t>(opp));
  }
  w.U32(static_cast<uint32_t>(next_context_));
  w.U32(static_cast<uint32_t>(current_context_));
  w.I64(busy_since_);
  w.I64(last_ctx_mark_);
  const std::map<int, DurationNs> busy(ctx_busy_.begin(), ctx_busy_.end());
  w.U64(busy.size());
  for (const auto& [ctx, ns] : busy) {
    w.U32(static_cast<uint32_t>(ctx));
    w.I64(ns);
  }
  const std::map<int, DurationNs> wall(ctx_wall_.begin(), ctx_wall_.end());
  w.U64(wall.size());
  for (const auto& [ctx, ns] : wall) {
    w.U32(static_cast<uint32_t>(ctx));
    w.I64(ns);
  }
  w.U64(stats_.submitted);
  w.U64(stats_.completed);
  w.I64(stats_.total_dispatch_latency);
  w.I64(stats_.max_dispatch_latency);
  w.U64(stats_.watchdog_fires);
  w.U64(stats_.device_resets);
  w.U64(stats_.command_retries);
  w.U64(stats_.commands_failed);
  SaveEvent(w, *sim_, retry_event_);
  SaveEvent(w, *sim_, gov_event_);
  uint64_t pumps = 0;
  for (const EventId e : pump_events_) {
    if (sim_->IsPending(e)) {
      ++pumps;
    }
  }
  w.U64(pumps);
  for (const EventId e : pump_events_) {
    if (sim_->IsPending(e)) {
      SaveEvent(w, *sim_, e);
    }
  }
}

void AccelDriver::RestoreState(SnapshotReader& r, EventRearmer& rearmer) {
  if (!r.Section("accel_driver")) {
    return;
  }
  RestoreDomainState(r, rearmer);
  auto load_cmd = [&r](AccelCommand& cmd) {
    cmd.id = r.U64();
    cmd.app = static_cast<AppId>(r.I64());
    cmd.type = static_cast<int>(r.U32());
    cmd.nominal_work = r.I64();
    cmd.active_power = r.F64();
  };
  auto load_pending_fields = [&](Pending& p) {
    load_cmd(p.cmd);
    const TaskId task_id = static_cast<TaskId>(r.I64());
    p.task = task_id != 0 ? kernel_->TaskById(task_id) : nullptr;
    p.submit_time = r.I64();
    p.retries = static_cast<int>(r.U32());
    p.watchdog = kInvalidEventId;
  };
  queues_.clear();
  const size_t num_queues = r.Count(8);
  for (size_t i = 0; i < num_queues; ++i) {
    const AppId app = static_cast<AppId>(r.I64());
    AppQueue& q = queues_[app];
    const size_t depth = r.Count(8);
    for (size_t j = 0; j < depth; ++j) {
      Pending p{};
      load_pending_fields(p);
      q.q.push_back(p);
    }
    q.vruntime = r.F64();
    q.sandboxed = r.Bool();
    q.box = static_cast<PsboxId>(r.I64());
    q.opp_context = static_cast<int>(r.U32());
    q.completed = r.U64();
    q.last_seen = r.I64();
    if (!r.ok()) {
      return;
    }
  }
  in_flight_.clear();
  const size_t num_inflight = r.Count(8);
  for (size_t i = 0; i < num_inflight; ++i) {
    Pending p{};
    load_pending_fields(p);
    const uint64_t cmd_id = p.cmd.id;
    in_flight_[cmd_id] = p;
    LoadEvent(r, rearmer, [this, cmd_id](TimeNs when) {
      in_flight_.at(cmd_id).watchdog =
          sim_->ScheduleAt(when, [this, cmd_id] { OnCommandTimeout(cmd_id); });
    });
    if (!r.ok()) {
      return;
    }
  }
  next_cmd_id_ = r.U64();
  owner_idle_since_ = r.I64();
  context_opp_.clear();
  const size_t num_ctx = r.Count(8);
  for (size_t i = 0; i < num_ctx; ++i) {
    const int ctx = static_cast<int>(r.U32());
    context_opp_[ctx] = static_cast<int>(r.U32());
  }
  next_context_ = static_cast<int>(r.U32());
  current_context_ = static_cast<int>(r.U32());
  busy_since_ = r.I64();
  last_ctx_mark_ = r.I64();
  ctx_busy_.clear();
  const size_t num_busy = r.Count(12);
  for (size_t i = 0; i < num_busy; ++i) {
    const int ctx = static_cast<int>(r.U32());
    ctx_busy_[ctx] = r.I64();
  }
  ctx_wall_.clear();
  const size_t num_wall = r.Count(12);
  for (size_t i = 0; i < num_wall; ++i) {
    const int ctx = static_cast<int>(r.U32());
    ctx_wall_[ctx] = r.I64();
  }
  stats_.submitted = r.U64();
  stats_.completed = r.U64();
  stats_.total_dispatch_latency = r.I64();
  stats_.max_dispatch_latency = r.I64();
  stats_.watchdog_fires = r.U64();
  stats_.device_resets = r.U64();
  stats_.command_retries = r.U64();
  stats_.commands_failed = r.U64();
  retry_event_ = kInvalidEventId;
  gov_event_ = kInvalidEventId;
  pump_events_.clear();
  LoadEvent(r, rearmer, [this](TimeNs when) {
    retry_event_ = sim_->ScheduleAt(when, [this] {
      retry_event_ = kInvalidEventId;
      Pump();
    });
  });
  LoadEvent(r, rearmer, [this](TimeNs when) {
    gov_event_ = sim_->ScheduleAt(when, [this] { OnGovernorTick(); });
  });
  const size_t num_pumps = r.Count(1);
  for (size_t i = 0; i < num_pumps; ++i) {
    LoadEvent(r, rearmer, [this](TimeNs when) { SchedulePumpAt(when); });
    if (!r.ok()) {
      return;
    }
  }
}

uint64_t AccelDriver::CompletedFor(AppId app) const {
  auto it = queues_.find(app);
  return it == queues_.end() ? 0 : it->second.completed;
}

}  // namespace psbox
