// Accelerator driver: fair command scheduling + psbox temporal balloons.
//
// Baseline behaviour is a fair-queueing command scheduler in the spirit of
// CFS (§5): per-app pending queues, a per-app virtual accelerator runtime,
// and dispatch always favouring the app with the minimum virtual runtime.
//
// psbox extension (§4.2 "Accelerators") — the five-phase temporal balloon:
//   1. Drain others : stop dispatching; wait for in-flight commands to end.
//   2. Flush psbox  : dispatch the sandboxed app's buffered commands.
//   3. Serve psbox  : only the sandboxed app reaches the device.
//   4. Drain psbox  : stop dispatching; wait for its commands to end.
//   5. Flush others : resume normal fair dispatch in queueing order.
// While a balloon holds the device (phases 1-4), the *entire* accelerator —
// under-utilised slots included — is billed to the sandboxed app. The driver
// also virtualises the accelerator's operating frequency per psbox.
//
// The balloon lifecycle itself (state machine, accounting window, observer
// dispatch, drain watchdog, DomainStats) lives in ResourceDomain; this
// policy keeps the fair queueing, OPP virtualisation and device recovery.

#ifndef SRC_KERNEL_ACCEL_DRIVER_H_
#define SRC_KERNEL_ACCEL_DRIVER_H_

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/types.h"
#include "src/hw/accel_device.h"
#include "src/kernel/resource_domain.h"
#include "src/kernel/task.h"
#include "src/sim/simulator.h"

namespace psbox {

class Kernel;

struct AccelDriverConfig {
  // Minimum service period a balloon holds the device before the scheduler
  // considers switching away (avoids drain thrash).
  DurationNs min_grant = 2 * kMillisecond;
  // The sandboxed app loses the device once its virtual runtime leads the
  // best competitor by this much.
  DurationNs switch_lead = 1 * kMillisecond;
  // A balloon with no pending or in-flight work is released after this long
  // even without a contender, so the ownership windows an app observes are
  // the same whether or not it co-runs ("pay as you go").
  DurationNs idle_release = 500 * kMicrosecond;
  // Simple ondemand frequency governor for the accelerator.
  DurationNs governor_period = 10 * kMillisecond;
  double governor_up = 0.60;
  double governor_down = 0.20;
  // Ablation knobs (DESIGN.md §4); both default to the paper's design.
  bool bill_balloon = true;      // charge the whole device for the balloon
  bool virtualize_freq = true;   // per-psbox frequency contexts

  // --- fault recovery (DESIGN.md "Fault model & recovery semantics") ------
  // A dispatched command producing no completion within
  //   command_timeout_base + nominal_work * command_timeout_work_factor
  // is declared hung: the engine is reset and aborted commands requeued.
  // The bound is sized so that a command running at the lowest OPP under
  // full slot contention still finishes well inside it.
  DurationNs command_timeout_base = 100 * kMillisecond;
  double command_timeout_work_factor = 20.0;
  // How many times a command that itself hung may be requeued before it is
  // dropped and a failure completion is delivered to the submitting task.
  int max_command_retries = 3;
  // A balloon stuck in a drain phase longer than this aborts: the scheduler
  // unwinds to fair mode and bills only the service actually rendered.
  DurationNs drain_timeout = 500 * kMillisecond;
};

class AccelDriver : public ResourceDomain {
 public:
  AccelDriver(Simulator* sim, AccelDevice* device, HwComponent kind, Kernel* kernel,
              AccelDriverConfig config = {});

  // Syscall path: enqueues a command on behalf of |task|.
  void Submit(Task* task, AccelCommand cmd);

  // --- psbox temporal balloons (ResourceDomain) ---
  void SetSandboxed(AppId app, PsboxId box) override;
  void ClearSandboxed(AppId app) override;

  // Per-psbox virtualised frequency context management.
  int CreateOppContext();

  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    DurationNs total_dispatch_latency = 0;  // submit -> device dispatch
    DurationNs max_dispatch_latency = 0;
    // Recovery counters.
    uint64_t watchdog_fires = 0;    // per-command watchdog expirations
    uint64_t device_resets = 0;     // engine resets issued by recovery
    uint64_t command_retries = 0;   // commands requeued after a reset
    uint64_t commands_failed = 0;   // dropped after max_command_retries
  };
  const Stats& stats() const { return stats_; }
  uint64_t CompletedFor(AppId app) const;
  const AccelDriverConfig& config() const { return config_; }

  // Snapshot support: queues, in-flight commands with their hang watchdogs,
  // fairness/governor bookkeeping, and all pending driver timers.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r, EventRearmer& rearmer);

 private:
  struct Pending {
    AccelCommand cmd;
    Task* task;
    TimeNs submit_time;
    int retries = 0;  // times this command was requeued after a reset
    // Hang watchdog for the dispatched command; live only while in flight.
    EventId watchdog = kInvalidEventId;
  };

  struct AppQueue {
    std::deque<Pending> q;
    double vruntime = 0.0;
    bool sandboxed = false;
    PsboxId box = kNoPsbox;
    int opp_context = -1;
    uint64_t completed = 0;
    TimeNs last_seen = -1;  // last submit/completion; recency for fairness
  };

  AppQueue& QueueFor(AppId app);
  // Dispatch loop; runs after every submit and completion.
  void Pump();
  // Smallest virtual runtime among apps other than |owner| that used the
  // device recently (they will be back within a service round); +infinity
  // when there is none. A sandboxed app may only take a balloon when it does
  // not lead this by more than switch_lead — otherwise it is still repaying
  // its previous exclusive occupation.
  double MinRecentCompetitorVruntime(AppId owner) const;
  void OnComplete(const AccelCompletion& completion);
  // Smallest vruntime among apps with pending commands; kNoApp when none.
  AppId BestPendingApp(bool exclude_sandboxed_owner) const;
  void BeginBalloon(AppId app);
  void FinishBalloonIfDrained();
  void SwitchOppContext(int ctx);
  void OnGovernorTick();
  // Tracks a deferred Pump() wake-up so checkpoints can re-arm it; prunes
  // already-fired entries.
  void SchedulePumpAt(TimeNs when);

  // --- fault recovery ---
  void ArmCommandWatchdog(uint64_t cmd_id);
  // A dispatched command exceeded its completion bound: reset the engine and
  // requeue the aborted commands (the hung one with a retry strike).
  void OnCommandTimeout(uint64_t cmd_id);
  // A balloon drain phase stalled: abort the balloon, unwind to fair
  // scheduling and bill only the service that was actually rendered.
  void OnDrainTimeout() override;
  // Resets the engine and requeues the aborted commands at the front of
  // their owners' queues (original order preserved). Hung commands take a
  // retry strike; past max_command_retries they fail instead of requeueing.
  void ResetAndRequeue();
  // Delivers a failure completion for a command dropped by recovery.
  void FailCommand(const Pending& p);

  AccelDevice* device_;
  Kernel* kernel_;
  AccelDriverConfig config_;

  std::map<AppId, AppQueue> queues_;
  std::unordered_map<uint64_t, Pending> in_flight_;
  uint64_t next_cmd_id_ = 1;

  TimeNs owner_idle_since_ = -1;
  EventId retry_event_ = kInvalidEventId;
  EventId gov_event_ = kInvalidEventId;
  // Outstanding deferred-Pump() events (idle-release and min-grant wakeups).
  std::vector<EventId> pump_events_;

  // Frequency virtualisation contexts; context 0 is global.
  std::unordered_map<int, int> context_opp_;
  int next_context_ = 1;
  int current_context_ = 0;

  // Governor busy tracking, attributed per frequency context so a sandbox's
  // virtual frequency is driven by its own demand only.
  void MarkContextTime();
  TimeNs busy_since_ = -1;
  TimeNs last_ctx_mark_ = 0;
  std::unordered_map<int, DurationNs> ctx_busy_;
  std::unordered_map<int, DurationNs> ctx_wall_;

  Stats stats_;
};

}  // namespace psbox

#endif  // SRC_KERNEL_ACCEL_DRIVER_H_
