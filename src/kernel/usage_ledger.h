// Per-app hardware usage ledger.
//
// The kernel logs which app occupied which hardware and when — the raw
// input of the *prior-approach* accounting mechanisms (accounting/) that the
// paper compares psbox against (§6.1). Usage is tracked at the lowest
// software level and at fine granularity, deliberately giving the baseline
// its best shot (the paper tracks at 10 µs, 10x finer than prior work).
// Records may overlap in time (in-flight accelerator commands of different
// apps), which is exactly the entanglement accounting cannot undo.

#ifndef SRC_KERNEL_USAGE_LEDGER_H_
#define SRC_KERNEL_USAGE_LEDGER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/time.h"
#include "src/base/types.h"

namespace psbox {

class SnapshotReader;
class SnapshotWriter;

struct UsageRecord {
  AppId app;
  TimeNs begin;
  TimeNs end;
  // Relative capacity of the component occupied (e.g. 1 core of N); the
  // splitter weighs shares by usage_time x weight.
  double weight;
};

class UsageLedger {
 public:
  void Add(HwComponent hw, AppId app, TimeNs begin, TimeNs end, double weight = 1.0);

  const std::vector<UsageRecord>& records(HwComponent hw) const {
    return records_[static_cast<size_t>(hw)];
  }

  // Drops records that ended at or before |horizon| (telemetry retention;
  // the accounting baselines then only resolve windows past the horizon).
  // Returns the number of records dropped.
  size_t TrimBefore(TimeNs horizon);
  // Records dropped by TrimBefore over the ledger's lifetime.
  uint64_t trimmed_records() const { return trimmed_records_; }

  void Clear();

  // Snapshot support: persists every retained record per component.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r);

 private:
  std::array<std::vector<UsageRecord>, kNumHwComponents> records_;
  uint64_t trimmed_records_ = 0;
};

}  // namespace psbox

#endif  // SRC_KERNEL_USAGE_LEDGER_H_
