#include "src/kernel/net_stack.h"

#include <algorithm>
#include <limits>

#include "src/base/check.h"
#include "src/kernel/kernel.h"
#include "src/snapshot/event_rearmer.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

NetStack::NetStack(Simulator* sim, WifiDevice* device, Kernel* kernel, NetConfig config)
    : ResourceDomain(sim, HwComponent::kWifi, config.drain_timeout),
      device_(device), kernel_(kernel), config_(config) {
  device_->set_on_frame_done([this](const WifiFrameDone& d) { OnFrameDone(d); });
}

NetStack::Socket& NetStack::SockFor(AppId app) { return socks_[app]; }

void NetStack::Send(Task* task, const Action& action) {
  Socket& s = SockFor(task->app());
  WifiFrame frame;
  frame.id = next_frame_id_++;
  frame.app = task->app();
  frame.bytes = action.bytes;
  frame.is_rx = false;
  ++task->net_inflight;
  s.q.push_back(SockPacket{frame, task, action.response_bytes, action.response_delay,
                           action.response_count, sim_->Now()});
  Pump();
}

void NetStack::InjectRx(AppId app, size_t bytes) {
  // Reception defers to nobody: straight to the NIC (§5 limitation).
  WifiFrame frame;
  frame.id = next_frame_id_++;
  frame.app = app;
  frame.bytes = bytes;
  frame.is_rx = true;
  ++stats_.rx_frames;
  device_->SubmitFrame(frame);
}

AppId NetStack::BestPendingApp(bool exclude_owner) const {
  AppId best = kNoApp;
  double best_credit = std::numeric_limits<double>::infinity();
  for (const auto& [app, s] : socks_) {
    // Queued TX demands the medium; so does a sandboxed app's outstanding
    // reception (its balloon must cover the responses, §4.2/§5).
    const bool wants_nic = !s.q.empty() || (s.sandboxed && s.expected_rx > 0);
    if (!wants_nic) {
      continue;
    }
    if (exclude_owner && app == balloon_owner()) {
      continue;
    }
    if (s.credit_bytes < best_credit) {
      best_credit = s.credit_bytes;
      best = app;
    }
  }
  return best;
}

double NetStack::MinRecentCompetitorCredit(AppId owner) const {
  constexpr DurationNs kRecency = 200 * kMillisecond;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [app, s] : socks_) {
    if (app == owner) {
      continue;
    }
    const bool recent =
        s.last_activity >= 0 && sim_->Now() - s.last_activity <= kRecency;
    if (!s.q.empty() || recent) {
      best = std::min(best, s.credit_bytes);
    }
  }
  return best;
}

void NetStack::DispatchFrom(AppId app) {
  Socket& s = SockFor(app);
  PSBOX_CHECK(!s.q.empty());
  SockPacket p = s.q.front();
  s.q.pop_front();
  const DurationNs lat = sim_->Now() - p.enqueue_time;
  stats_.total_tx_latency += lat;
  stats_.max_tx_latency = std::max(stats_.max_tx_latency, lat);
  ++stats_.tx_frames;
  our_tx_pending_ = true;
  tx_in_flight_[p.frame.id] = p;
  device_->SubmitFrame(p.frame);
}

void NetStack::Pump() {
  while (true) {
    // Only one TX of ours on the NIC at a time; the medium may also be busy
    // with RX, which we cannot pre-empt.
    const bool nic_free = !our_tx_pending_ && !device_->busy() &&
                          device_->queued_frames() == 0;
    switch (balloon_phase()) {
      case BalloonPhase::kIdle: {
        if (!nic_free) {
          return;
        }
        AppId best = BestPendingApp(false);
        if (best == kNoApp) {
          return;
        }
        if (!SockFor(best).sandboxed && SockFor(best).q.empty()) {
          return;  // nothing dispatchable (awaiting-RX candidates are boxed)
        }
        if (SockFor(best).sandboxed) {
          const double competitor = MinRecentCompetitorCredit(best);
          if (SockFor(best).credit_bytes >
              competitor + static_cast<double>(config_.switch_lead_bytes)) {
            // Still repaying the previous balloon; serve someone else or
            // hold the NIC idle until the competition catches up.
            AppId fallback = kNoApp;
            double fallback_credit = std::numeric_limits<double>::infinity();
            for (const auto& [app, sock] : socks_) {
              if (sock.q.empty() || sock.sandboxed) {
                continue;
              }
              if (sock.credit_bytes < fallback_credit) {
                fallback_credit = sock.credit_bytes;
                fallback = app;
              }
            }
            if (fallback == kNoApp) {
              if (retry_event_ == kInvalidEventId) {
                retry_event_ = sim_->ScheduleAfter(2 * kMillisecond, [this] {
                  retry_event_ = kInvalidEventId;
                  Pump();
                });
              }
              return;
            }
            best = fallback;
          } else {
            BalloonRequest(best, SockFor(best).box);
            penalty_bytes_ = 0.0;
            continue;
          }
        }
        DispatchFrom(best);
        return;
      }
      case BalloonPhase::kDrainOthers: {
        if (!nic_free) {
          return;
        }
        // Balloon-in: apply the sandbox's virtualised NIC power state before
        // the observer looks.
        Socket& s = SockFor(balloon_owner());
        if (config_.virtualize_power_state) {
          global_state_ = device_->power_state();
          device_->SetPowerState(s.vstate);
        }
        BalloonServe();
        continue;
      }
      case BalloonPhase::kServe: {
        Socket& s = SockFor(balloon_owner());
        const AppId contender = BestPendingApp(/*exclude_owner=*/true);
        const bool grant_over = sim_->Now() - balloon_start() >= config_.min_grant;
        // The owner's NIC session covers queued TX, in-flight TX, responses
        // the channel still owes it, and its power-save tail afterwards.
        const bool owner_active =
            !s.q.empty() || our_tx_pending_ || s.expected_rx > 0;
        const TimeNs tail_deadline =
            s.last_activity >= 0
                ? s.last_activity + device_->power_state().ps_timeout
                : sim_->Now();
        const bool in_tail = !owner_active && sim_->Now() < tail_deadline;
        const bool owner_idle = !owner_active && !in_tail;
        const bool lead_exceeded =
            contender != kNoApp &&
            s.credit_bytes - SockFor(contender).credit_bytes >
                static_cast<double>(config_.switch_lead_bytes);
        // Release rules: (a) the owner went fully idle — its power-save tail
        // has expired, so the observation window is complete; or (b) a
        // credit blow-out while the owner still has TX queued — cutting it
        // then loses no energy (its next balloon resumes the transfer). An
        // owner awaiting responses or sitting in its tail is never cut:
        // those are its own reception and lingering power state (§4.1), and
        // competitors are compensated through penalty_bytes_.
        const bool owner_transmitting = !s.q.empty() || our_tx_pending_;
        if (owner_idle ||
            (contender != kNoApp && grant_over && lead_exceeded &&
             owner_transmitting)) {
          BalloonRelease();
          continue;
        }
        if (!nic_free || s.q.empty()) {
          if (contender != kNoApp && !grant_over) {
            const TimeNs when = balloon_start() + config_.min_grant;
            SchedulePumpAt(std::max(when, sim_->Now()));
          } else if (in_tail && contender == kNoApp) {
            // Come back when the tail expires to release the idle balloon.
            SchedulePumpAt(std::max(tail_deadline, sim_->Now()));
          }
          // Lost sharing opportunity: a competitor's head packet could have
          // used this free slot (§4.2); its bytes discount the owner.
          if (nic_free && contender != kNoApp) {
            penalty_bytes_ +=
                static_cast<double>(SockFor(contender).q.front().frame.bytes);
          }
          return;
        }
        if (contender != kNoApp) {
          // The owner transmits while a competitor's packet waits: the
          // displaced airtime is a lost opportunity charged to the owner.
          penalty_bytes_ += static_cast<double>(
              std::min(s.q.front().frame.bytes,
                       SockFor(contender).q.front().frame.bytes));
        }
        DispatchFrom(balloon_owner());
        return;
      }
      case BalloonPhase::kDrainOwner: {
        if (our_tx_pending_) {
          return;
        }
        Socket& s = SockFor(balloon_owner());
        // Balloon-out: restore the global power state, charge the lost
        // opportunities to the sandboxed app.
        if (config_.virtualize_power_state) {
          s.vstate = device_->power_state();
          device_->SetPowerState(global_state_);
        }
        if (config_.charge_lost_opportunity) {
          s.credit_bytes += penalty_bytes_;
        }
        penalty_bytes_ = 0.0;
        BalloonFinish();
        continue;
      }
    }
  }
}

void NetStack::OnFrameDone(const WifiFrameDone& done) {
  if (ledger_ != nullptr) {
    ledger_->Add(HwComponent::kWifi, done.frame.app, done.start_time, done.end_time);
  }
  if (done.frame.is_rx) {
    Socket& s = SockFor(done.frame.app);
    s.bytes_delivered += done.frame.bytes;
    s.last_activity = done.end_time;
    // Reception is airtime the app consumed; it counts toward its credit so
    // heavy downloaders cannot hide behind tiny TX requests.
    s.credit_bytes += static_cast<double>(done.frame.bytes);
    // RX landing inside the app's own balloon while others wait is likewise
    // a lost sharing opportunity; the charge is capped by what the displaced
    // competitor could actually have sent.
    if ((balloon_phase() == BalloonPhase::kServe ||
         balloon_phase() == BalloonPhase::kDrainOwner) &&
        done.frame.app == balloon_owner()) {
      const AppId contender = BestPendingApp(/*exclude_owner=*/true);
      if (contender != kNoApp) {
        penalty_bytes_ += static_cast<double>(
            std::min(done.frame.bytes, SockFor(contender).q.front().frame.bytes));
      }
    }
    if (s.expected_rx > 0) {
      --s.expected_rx;
    }
    kernel_->DeliverRx(done.frame.app, done.frame.bytes);
    Pump();
    return;
  }
  auto it = tx_in_flight_.find(done.frame.id);
  PSBOX_CHECK(it != tx_in_flight_.end());
  const SockPacket p = it->second;
  tx_in_flight_.erase(it);
  our_tx_pending_ = false;
  Socket& s = SockFor(done.frame.app);
  // Airtime was burned whether or not the frame arrived; it always counts
  // toward the sender's credit (lost frames are not free).
  s.credit_bytes += static_cast<double>(done.frame.bytes);
  s.last_activity = done.end_time;
  if (!done.delivered) {
    HandleTxLoss(p);
    Pump();
    return;
  }
  s.bytes_delivered += done.frame.bytes;
  if (p.resp_bytes > 0 && p.resp_count > 0) {
    // Channel model: the peer answers with |resp_count| chunks spaced
    // |resp_delay| apart (a streaming download when > 1).
    s.expected_rx += p.resp_count;
    const size_t resp_bytes = p.resp_bytes;
    const AppId app = done.frame.app;
    for (int i = 0; i < p.resp_count; ++i) {
      ScheduleRxInject(
          sim_->Now() + std::max<DurationNs>(p.resp_delay, 0) * (i + 1), app,
          resp_bytes);
      kernel_->ExpectRx(p.task, resp_bytes);
    }
    // The task's in-flight unit is retired when the last chunk lands.
    if (p.task != nullptr) {
      p.task->net_inflight += p.resp_count - 1;
    }
  } else if (p.task != nullptr) {
    --p.task->net_inflight;
    kernel_->DeliverNetDone(p.task);
  }
  Pump();
}

void NetStack::HandleTxLoss(SockPacket p) {
  ++p.retries;
  if (p.retries > config_.max_tx_retries) {
    ++stats_.tx_failed;
    RecordRecovery();
    DeliverSocketError(p);
    return;
  }
  // Capped exponential backoff before re-enqueueing: rides out both random
  // loss bursts and link-down windows without hammering the medium.
  DurationNs backoff = config_.retransmit_backoff_base;
  for (int i = 1; i < p.retries && backoff < config_.retransmit_backoff_cap;
       ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, config_.retransmit_backoff_cap);
  ++stats_.tx_retransmits;
  ScheduleRetx(sim_->Now() + backoff, p);
}

void NetStack::SchedulePumpAt(TimeNs when) {
  std::erase_if(pump_events_, [this](EventId e) { return !sim_->IsPending(e); });
  pump_events_.push_back(sim_->ScheduleAt(when, [this] { Pump(); }));
}

void NetStack::ScheduleRetx(TimeNs when, const SockPacket& p) {
  pending_retx_[p.frame.id].pkt = p;
  ArmRetx(p.frame.id, when);
}

void NetStack::ArmRetx(uint64_t frame_id, TimeNs when) {
  pending_retx_.at(frame_id).event = sim_->ScheduleAt(when, [this, frame_id] {
    auto it = pending_retx_.find(frame_id);
    PSBOX_CHECK(it != pending_retx_.end());
    const SockPacket pkt = it->second.pkt;
    pending_retx_.erase(it);
    SockFor(pkt.frame.app).q.push_front(pkt);
    Pump();
  });
}

void NetStack::ScheduleRxInject(TimeNs when, AppId app, size_t bytes) {
  std::erase_if(rx_events_,
                [this](const RxInject& e) { return !sim_->IsPending(e.event); });
  RxInject inj;
  inj.app = app;
  inj.bytes = bytes;
  inj.event =
      sim_->ScheduleAt(when, [this, app, bytes] { InjectRx(app, bytes); });
  rx_events_.push_back(inj);
}

void NetStack::DeliverSocketError(const SockPacket& p) {
  Socket& s = SockFor(p.frame.app);
  ++s.errors;
  ++stats_.socket_errors;
  // The expected responses will never come; retire the task's in-flight unit
  // so the submitter unblocks and can observe the error.
  if (p.task != nullptr) {
    --p.task->net_inflight;
    kernel_->DeliverNetDone(p.task);
  }
}

void NetStack::SetSandboxed(AppId app, PsboxId box) {
  Socket& s = SockFor(app);
  s.sandboxed = true;
  s.box = box;
  Pump();
}

void NetStack::ClearSandboxed(AppId app) {
  Socket& s = SockFor(app);
  s.sandboxed = false;
  if (balloon_owner() == app) {
    if (balloon_phase() == BalloonPhase::kDrainOthers) {
      BalloonCancel();
    } else if (balloon_phase() == BalloonPhase::kServe) {
      BalloonRelease();
    }
  }
  Pump();
}

void NetStack::OnDrainTimeout() {
  Socket& s = SockFor(balloon_owner());
  if (balloon_phase() == BalloonPhase::kDrainOwner &&
      config_.virtualize_power_state) {
    s.vstate = device_->power_state();
    device_->SetPowerState(global_state_);
  }
  if (config_.charge_lost_opportunity) {
    s.credit_bytes += penalty_bytes_;
  }
  penalty_bytes_ = 0.0;
  BalloonAbort();
  Pump();
}

namespace {

void SavePowerState(SnapshotWriter& w, const WifiPowerState& st) {
  w.U32(static_cast<uint32_t>(st.tx_power_level));
  w.I64(st.ps_timeout);
}

WifiPowerState LoadPowerState(SnapshotReader& r) {
  WifiPowerState st;
  st.tx_power_level = static_cast<int>(r.U32());
  st.ps_timeout = r.I64();
  return st;
}

}  // namespace

void NetStack::SavePacket(SnapshotWriter& w, const SockPacket& p) const {
  w.U64(p.frame.id);
  w.I64(p.frame.app);
  w.I64(p.frame.socket);
  w.U64(p.frame.bytes);
  w.Bool(p.frame.is_rx);
  w.U64(p.task != nullptr ? static_cast<uint64_t>(p.task->id()) : 0);
  w.U64(p.resp_bytes);
  w.I64(p.resp_delay);
  w.I64(p.resp_count);
  w.I64(p.enqueue_time);
  w.U32(static_cast<uint32_t>(p.retries));
}

NetStack::SockPacket NetStack::LoadPacket(SnapshotReader& r) {
  SockPacket p{};
  p.frame.id = r.U64();
  p.frame.app = static_cast<AppId>(r.I64());
  p.frame.socket = static_cast<int>(r.I64());
  p.frame.bytes = r.U64();
  p.frame.is_rx = r.Bool();
  const uint64_t task_id = r.U64();
  p.task =
      task_id != 0 ? kernel_->TaskById(static_cast<TaskId>(task_id)) : nullptr;
  p.resp_bytes = r.U64();
  p.resp_delay = r.I64();
  p.resp_count = static_cast<int>(r.I64());
  p.enqueue_time = r.I64();
  p.retries = static_cast<int>(r.U32());
  return p;
}

void NetStack::SaveState(SnapshotWriter& w) const {
  w.Section("net_stack");
  SaveDomainState(w);
  w.U64(socks_.size());
  for (const auto& [app, s] : socks_) {  // std::map: sorted already
    w.I64(app);
    w.U64(s.q.size());
    for (const SockPacket& p : s.q) {
      SavePacket(w, p);
    }
    w.F64(s.credit_bytes);
    w.Bool(s.sandboxed);
    w.I64(s.box);
    SavePowerState(w, s.vstate);
    w.U64(s.bytes_delivered);
    w.I64(s.expected_rx);
    w.I64(s.last_activity);
    w.U64(s.errors);
  }
  // In-flight TX in frame-id order for a stable byte stream.
  const std::map<uint64_t, SockPacket> inflight(tx_in_flight_.begin(),
                                                tx_in_flight_.end());
  w.U64(inflight.size());
  for (const auto& [id, p] : inflight) {
    SavePacket(w, p);
  }
  w.U64(next_frame_id_);
  w.Bool(our_tx_pending_);
  w.F64(penalty_bytes_);
  SavePowerState(w, global_state_);
  w.U64(stats_.tx_frames);
  w.U64(stats_.rx_frames);
  w.I64(stats_.total_tx_latency);
  w.I64(stats_.max_tx_latency);
  w.U64(stats_.tx_retransmits);
  w.U64(stats_.tx_failed);
  w.U64(stats_.socket_errors);
  SaveEvent(w, *sim_, retry_event_);
  w.U64(pending_retx_.size());
  for (const auto& [id, pr] : pending_retx_) {
    SavePacket(w, pr.pkt);
    SaveEvent(w, *sim_, pr.event);
  }
  uint64_t live_rx = 0;
  for (const RxInject& inj : rx_events_) {
    if (sim_->IsPending(inj.event)) {
      ++live_rx;
    }
  }
  w.U64(live_rx);
  for (const RxInject& inj : rx_events_) {
    if (sim_->IsPending(inj.event)) {
      w.I64(inj.app);
      w.U64(inj.bytes);
      SaveEvent(w, *sim_, inj.event);
    }
  }
  uint64_t live_pumps = 0;
  for (EventId e : pump_events_) {
    if (sim_->IsPending(e)) {
      ++live_pumps;
    }
  }
  w.U64(live_pumps);
  for (EventId e : pump_events_) {
    if (sim_->IsPending(e)) {
      SaveEvent(w, *sim_, e);
    }
  }
}

void NetStack::RestoreState(SnapshotReader& r, EventRearmer& rearmer) {
  if (!r.Section("net_stack")) {
    return;
  }
  RestoreDomainState(r, rearmer);
  socks_.clear();
  tx_in_flight_.clear();
  pending_retx_.clear();
  rx_events_.clear();
  pump_events_.clear();
  const size_t num_socks = r.Count(8);
  for (size_t i = 0; i < num_socks && r.ok(); ++i) {
    const AppId app = static_cast<AppId>(r.I64());
    Socket& s = socks_[app];
    const size_t depth = r.Count(8);
    for (size_t j = 0; j < depth && r.ok(); ++j) {
      s.q.push_back(LoadPacket(r));
    }
    s.credit_bytes = r.F64();
    s.sandboxed = r.Bool();
    s.box = static_cast<PsboxId>(r.I64());
    s.vstate = LoadPowerState(r);
    s.bytes_delivered = r.U64();
    s.expected_rx = static_cast<int>(r.I64());
    s.last_activity = r.I64();
    s.errors = r.U64();
  }
  const size_t num_inflight = r.Count(8);
  for (size_t i = 0; i < num_inflight && r.ok(); ++i) {
    const SockPacket p = LoadPacket(r);
    tx_in_flight_[p.frame.id] = p;
  }
  next_frame_id_ = r.U64();
  our_tx_pending_ = r.Bool();
  penalty_bytes_ = r.F64();
  global_state_ = LoadPowerState(r);
  stats_ = Stats{};
  stats_.tx_frames = r.U64();
  stats_.rx_frames = r.U64();
  stats_.total_tx_latency = r.I64();
  stats_.max_tx_latency = r.I64();
  stats_.tx_retransmits = r.U64();
  stats_.tx_failed = r.U64();
  stats_.socket_errors = r.U64();
  retry_event_ = kInvalidEventId;
  LoadEvent(r, rearmer, [this](TimeNs when) {
    retry_event_ = sim_->ScheduleAt(when, [this] {
      retry_event_ = kInvalidEventId;
      Pump();
    });
  });
  const size_t num_retx = r.Count(16);
  for (size_t i = 0; i < num_retx && r.ok(); ++i) {
    const SockPacket p = LoadPacket(r);
    const uint64_t id = p.frame.id;
    pending_retx_[id].pkt = p;
    LoadEvent(r, rearmer, [this, id](TimeNs when) { ArmRetx(id, when); });
  }
  const size_t num_rx = r.Count(16);
  for (size_t i = 0; i < num_rx && r.ok(); ++i) {
    const AppId app = static_cast<AppId>(r.I64());
    const uint64_t bytes = r.U64();
    LoadEvent(r, rearmer, [this, app, bytes](TimeNs when) {
      ScheduleRxInject(when, app, static_cast<size_t>(bytes));
    });
  }
  const size_t num_pumps = r.Count(10);
  for (size_t i = 0; i < num_pumps && r.ok(); ++i) {
    LoadEvent(r, rearmer, [this](TimeNs when) { SchedulePumpAt(when); });
  }
}

size_t NetStack::BytesDelivered(AppId app) const {
  auto it = socks_.find(app);
  return it == socks_.end() ? 0 : it->second.bytes_delivered;
}

uint64_t NetStack::SocketErrors(AppId app) const {
  auto it = socks_.find(app);
  return it == socks_.end() ? 0 : it->second.errors;
}

}  // namespace psbox
