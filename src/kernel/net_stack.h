// Network stack: per-app socket buffers, a fair packet scheduler, and psbox
// temporal balloons for the WiFi NIC (§4.2 "Wireless interfaces").
//
// Apps trap into the kernel to deposit packets into their buffers; the
// packet scheduler dispatches one frame at a time to the NIC, favouring the
// app with the least bytes of credit (fq-style fairness). psbox extensions:
//   * temporal balloons with drain phases, holding back competitors'
//     packets in their per-socket buffers while the sandbox owns the NIC;
//   * lost-opportunity tracking — buffered packets that could have flown
//     without the balloon discount the sandboxed app's credit;
//   * per-psbox virtualised NIC power state (tx power level, PS timeout).
// Packet *reception* cannot be deferred (the WiLink8 MAC limitation, §5):
// RX frames reach the NIC regardless of balloon ownership, which is the
// paper's acknowledged leak in the Fig 6 WiFi row.

#ifndef SRC_KERNEL_NET_STACK_H_
#define SRC_KERNEL_NET_STACK_H_

#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/base/types.h"
#include "src/hw/wifi_device.h"
#include "src/kernel/resource_domain.h"
#include "src/kernel/task.h"
#include "src/sim/simulator.h"

namespace psbox {

class Kernel;

struct NetConfig {
  DurationNs min_grant = 5 * kMillisecond;
  // The balloon releases the NIC once the owner's byte credit leads the best
  // competitor by this much.
  size_t switch_lead_bytes = 24 * 1024;
  // Ablation knobs (DESIGN.md §4); both default to the paper's design.
  bool charge_lost_opportunity = true;
  bool virtualize_power_state = true;

  // --- fault recovery (DESIGN.md "Fault model & recovery semantics") ------
  // A TX frame the channel drops is retransmitted after a capped exponential
  // backoff (base * 2^attempt, at most the cap); after max_tx_retries
  // attempts the packet is dropped and a socket error is delivered instead.
  int max_tx_retries = 5;
  DurationNs retransmit_backoff_base = 1 * kMillisecond;
  DurationNs retransmit_backoff_cap = 32 * kMillisecond;
  // Drain-phase watchdog bound; 0 (the default) leaves the drains unbounded —
  // on this NIC model every frame completes, so a wedged drain cannot occur.
  DurationNs drain_timeout = 0;
};

class NetStack : public ResourceDomain {
 public:
  NetStack(Simulator* sim, WifiDevice* device, Kernel* kernel, NetConfig config = {});

  // Syscall path: enqueue |action.bytes| for transmission on |task|'s app
  // socket; optionally the channel answers with action.response_bytes of RX
  // after action.response_delay.
  void Send(Task* task, const Action& action);

  // Channel-model path: unsolicited RX traffic destined to |app| (cannot be
  // deferred by the driver).
  void InjectRx(AppId app, size_t bytes);

  // --- psbox temporal balloons (ResourceDomain) ---
  void SetSandboxed(AppId app, PsboxId box) override;
  void ClearSandboxed(AppId app) override;

  struct Stats {
    uint64_t tx_frames = 0;
    uint64_t rx_frames = 0;
    DurationNs total_tx_latency = 0;  // enqueue -> airtime start
    DurationNs max_tx_latency = 0;
    // Recovery counters.
    uint64_t tx_retransmits = 0;   // lost frames re-enqueued after backoff
    uint64_t tx_failed = 0;        // packets dropped after max_tx_retries
    uint64_t socket_errors = 0;    // errors delivered to submitting tasks
  };
  const Stats& stats() const { return stats_; }
  size_t BytesDelivered(AppId app) const;
  uint64_t SocketErrors(AppId app) const;

  // Snapshot support: sockets, in-flight TX, retransmit backlog, expected RX
  // injections, and all pending stack timers.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r, EventRearmer& rearmer);

 private:
  struct SockPacket {
    WifiFrame frame;
    Task* task;
    size_t resp_bytes;
    DurationNs resp_delay;
    int resp_count;
    TimeNs enqueue_time;
    int retries = 0;  // transmission attempts already lost
  };

  struct Socket {
    std::deque<SockPacket> q;
    double credit_bytes = 0.0;
    bool sandboxed = false;
    PsboxId box = kNoPsbox;
    WifiPowerState vstate;  // virtualised NIC power state for the sandbox
    size_t bytes_delivered = 0;
    // Responses the channel still owes this app (in-flight request/response
    // exchanges); a balloon stays open while any are outstanding.
    int expected_rx = 0;
    TimeNs last_activity = -1;
    uint64_t errors = 0;  // socket errors delivered (retransmit gave up)
  };

  Socket& SockFor(AppId app);
  void Pump();
  void OnFrameDone(const WifiFrameDone& done);
  AppId BestPendingApp(bool exclude_owner) const;
  // Least byte-credit among recently-active competitors of |owner|;
  // +infinity when none. Gates balloon (re)entry like the CPU/accelerator
  // repayment rules.
  double MinRecentCompetitorCredit(AppId owner) const;
  void DispatchFrom(AppId app);
  // A TX frame was lost on the air: re-enqueue it at the head of its socket
  // after a capped exponential backoff, or give up and deliver a socket
  // error once the retry budget is spent.
  void HandleTxLoss(SockPacket p);
  void DeliverSocketError(const SockPacket& p);
  // A drain phase exceeded the (optionally) configured bound: unwind the
  // balloon, restoring the global power state and settling the penalty.
  void OnDrainTimeout() override;
  // Tracks a deferred Pump() wake-up so checkpoints can re-arm it; prunes
  // already-fired entries.
  void SchedulePumpAt(TimeNs when);
  // Parks a lost frame for retransmission at |when|, keyed by frame id so
  // checkpoints can persist the packet and re-arm the timer.
  void ScheduleRetx(TimeNs when, const SockPacket& p);
  void ArmRetx(uint64_t frame_id, TimeNs when);
  // Schedules a channel-model RX injection, tracked for checkpointing.
  void ScheduleRxInject(TimeNs when, AppId app, size_t bytes);
  void SavePacket(SnapshotWriter& w, const SockPacket& p) const;
  SockPacket LoadPacket(SnapshotReader& r);

  WifiDevice* device_;
  Kernel* kernel_;
  NetConfig config_;

  std::map<AppId, Socket> socks_;
  std::unordered_map<uint64_t, SockPacket> tx_in_flight_;
  uint64_t next_frame_id_ = 1;
  bool our_tx_pending_ = false;  // a TX frame of ours occupies the NIC queue

  EventId retry_event_ = kInvalidEventId;
  double penalty_bytes_ = 0.0;  // lost sharing opportunity during the balloon
  WifiPowerState global_state_;

  // A lost TX frame sitting out its retransmit backoff, keyed by frame id.
  struct PendingRetx {
    SockPacket pkt;
    EventId event = kInvalidEventId;
  };
  std::map<uint64_t, PendingRetx> pending_retx_;
  // Channel-model RX injections still due (request/response exchanges).
  struct RxInject {
    EventId event = kInvalidEventId;
    AppId app = kNoApp;
    uint64_t bytes = 0;
  };
  std::vector<RxInject> rx_events_;
  // Outstanding deferred-Pump() events (min-grant and tail-expiry wakeups).
  std::vector<EventId> pump_events_;

  Stats stats_;
};

}  // namespace psbox

#endif  // SRC_KERNEL_NET_STACK_H_
