// Network stack: per-app socket buffers, a fair packet scheduler, and psbox
// temporal balloons for the WiFi NIC (§4.2 "Wireless interfaces").
//
// Apps trap into the kernel to deposit packets into their buffers; the
// packet scheduler dispatches one frame at a time to the NIC, favouring the
// app with the least bytes of credit (fq-style fairness). psbox extensions:
//   * temporal balloons with drain phases, holding back competitors'
//     packets in their per-socket buffers while the sandbox owns the NIC;
//   * lost-opportunity tracking — buffered packets that could have flown
//     without the balloon discount the sandboxed app's credit;
//   * per-psbox virtualised NIC power state (tx power level, PS timeout).
// Packet *reception* cannot be deferred (the WiLink8 MAC limitation, §5):
// RX frames reach the NIC regardless of balloon ownership, which is the
// paper's acknowledged leak in the Fig 6 WiFi row.

#ifndef SRC_KERNEL_NET_STACK_H_
#define SRC_KERNEL_NET_STACK_H_

#include <deque>
#include <map>
#include <unordered_map>

#include "src/base/types.h"
#include "src/hw/wifi_device.h"
#include "src/kernel/balloon_observer.h"
#include "src/kernel/task.h"
#include "src/kernel/usage_ledger.h"
#include "src/sim/simulator.h"

namespace psbox {

class Kernel;

struct NetConfig {
  DurationNs min_grant = 5 * kMillisecond;
  // The balloon releases the NIC once the owner's byte credit leads the best
  // competitor by this much.
  size_t switch_lead_bytes = 24 * 1024;
  // Ablation knobs (DESIGN.md §4); both default to the paper's design.
  bool charge_lost_opportunity = true;
  bool virtualize_power_state = true;
};

class NetStack {
 public:
  NetStack(Simulator* sim, WifiDevice* device, Kernel* kernel, NetConfig config = {});

  // Syscall path: enqueue |action.bytes| for transmission on |task|'s app
  // socket; optionally the channel answers with action.response_bytes of RX
  // after action.response_delay.
  void Send(Task* task, const Action& action);

  // Channel-model path: unsolicited RX traffic destined to |app| (cannot be
  // deferred by the driver).
  void InjectRx(AppId app, size_t bytes);

  // --- psbox temporal balloons ---
  void SetSandboxed(AppId app, PsboxId box);
  void ClearSandboxed(AppId app);

  void set_balloon_observer(BalloonObserver* observer) { observer_ = observer; }
  void set_ledger(UsageLedger* ledger) { ledger_ = ledger; }

  struct Stats {
    uint64_t tx_frames = 0;
    uint64_t rx_frames = 0;
    uint64_t balloons = 0;
    DurationNs total_tx_latency = 0;  // enqueue -> airtime start
    DurationNs max_tx_latency = 0;
    DurationNs total_balloon_time = 0;
  };
  const Stats& stats() const { return stats_; }
  size_t BytesDelivered(AppId app) const;
  AppId balloon_owner() const { return serving_; }

 private:
  enum class Phase { kNormal, kDrainOthers, kServePsbox, kDrainPsbox };

  struct SockPacket {
    WifiFrame frame;
    Task* task;
    size_t resp_bytes;
    DurationNs resp_delay;
    int resp_count;
    TimeNs enqueue_time;
  };

  struct Socket {
    std::deque<SockPacket> q;
    double credit_bytes = 0.0;
    bool sandboxed = false;
    PsboxId box = kNoPsbox;
    WifiPowerState vstate;  // virtualised NIC power state for the sandbox
    size_t bytes_delivered = 0;
    // Responses the channel still owes this app (in-flight request/response
    // exchanges); a balloon stays open while any are outstanding.
    int expected_rx = 0;
    TimeNs last_activity = -1;
  };

  Socket& SockFor(AppId app);
  void Pump();
  void OnFrameDone(const WifiFrameDone& done);
  AppId BestPendingApp(bool exclude_owner) const;
  // Least byte-credit among recently-active competitors of |owner|;
  // +infinity when none. Gates balloon (re)entry like the CPU/accelerator
  // repayment rules.
  double MinRecentCompetitorCredit(AppId owner) const;
  void DispatchFrom(AppId app);

  Simulator* sim_;
  WifiDevice* device_;
  Kernel* kernel_;
  NetConfig config_;
  BalloonObserver* observer_ = nullptr;
  UsageLedger* ledger_ = nullptr;

  std::map<AppId, Socket> socks_;
  std::unordered_map<uint64_t, SockPacket> tx_in_flight_;
  uint64_t next_frame_id_ = 1;
  bool our_tx_pending_ = false;  // a TX frame of ours occupies the NIC queue

  Phase phase_ = Phase::kNormal;
  AppId serving_ = kNoApp;
  TimeNs balloon_start_ = 0;
  bool balloon_notified_ = false;
  EventId retry_event_ = kInvalidEventId;
  double penalty_bytes_ = 0.0;  // lost sharing opportunity during the balloon
  WifiPowerState global_state_;

  Stats stats_;
};

}  // namespace psbox

#endif  // SRC_KERNEL_NET_STACK_H_
