// App-facing psbox service interface (the syscall surface of Listing 1).
//
// The kernel exposes this hook so that app behaviours can reach the psbox
// user API without the kernel depending on the psbox library; the psbox
// PsboxManager implements it. All calls are made from task context.

#ifndef SRC_KERNEL_PSBOX_SERVICE_H_
#define SRC_KERNEL_PSBOX_SERVICE_H_

#include <vector>

#include "src/base/time.h"
#include "src/base/types.h"
#include "src/hw/power_meter.h"

namespace psbox {

class PsboxService {
 public:
  virtual ~PsboxService() = default;

  // psbox_create(): creates a sandbox for |app| bound to |hw|; returns a
  // box handle (>= 0).
  virtual int CreateBox(AppId app, const std::vector<HwComponent>& hw) = 0;

  // psbox_create() with a tenant: creates a sandbox nested inside |parent|
  // (an existing box whose hardware binding is a superset of |hw|). |budget|
  // is the energy slice the child claims from the parent (clamped to what
  // the parent has left when the parent is budgeted; 0 requests none).
  // Balloon ownership and accounting compose through the hierarchy: energy
  // served to the child bills the child's window and every ancestor's.
  virtual int CreateNestedBox(AppId app, const std::vector<HwComponent>& hw,
                              int parent, Joules budget) = 0;

  // psbox_enter()/psbox_leave(). Mode changes take effect at the kernel's
  // next scheduling decision.
  virtual void EnterBox(int box) = 0;
  virtual void LeaveBox(int box) = 0;

  // psbox_read(): accumulated energy observed by the box's virtual power
  // meter since creation (or since the last ResetEnergy).
  virtual Joules ReadEnergy(int box) = 0;
  virtual void ResetEnergy(int box) = 0;

  // psbox_sample(): drains up to |max_samples| timestamped power samples
  // from the box's virtual power meter into |buf|. Only legal in the box.
  virtual size_t Sample(int box, std::vector<PowerSample>* buf, size_t max_samples) = 0;

  virtual bool InBox(int box) const = 0;

  // --- telemetry retention (driven by Kernel::TrimTelemetry) --------------
  // Lowest trim horizon the sandboxes can tolerate, given the kernel's
  // |desired| one: open balloons and ownership intervals straddling the
  // horizon pin it (their spans must stay resolvable on the rails). Lowering
  // the horizon for one constraint can expose an earlier straddler, so
  // implementations iterate to a fixpoint. Default: no sandboxes, no floor.
  virtual TimeNs TelemetryFloor(TimeNs desired) { return desired; }
  // Folds sandbox ownership/energy history older than |horizon| into exact
  // per-box base accumulators and drops undrained sample backlog behind it
  // (ring-buffer semantics). Runs before the kernel trims the underlying
  // rail and domain traces. Default: nothing to fold.
  virtual void TrimTelemetry(TimeNs horizon) { (void)horizon; }
};

}  // namespace psbox

#endif  // SRC_KERNEL_PSBOX_SERVICE_H_
