// Kernel facade: assembles the scheduler, governor, drivers and network
// stack over a Board, owns apps/tasks, and routes syscalls and interrupts.
//
// This is the simulated equivalent of the Linux 4.4 kernel the paper
// extends: CFS + cgroups (cpu_scheduler), cpufreq ondemand
// (cpufreq_governor), GPU/DSP command-queue drivers (accel_driver), and the
// fair packet scheduler (net_stack) — each carrying the ~2250-SLoC psbox
// extensions described in §4/§5.

#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <array>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/hw/board.h"
#include "src/kernel/accel_driver.h"
#include "src/kernel/balloon_observer.h"
#include "src/kernel/cpu_scheduler.h"
#include "src/kernel/cpufreq_governor.h"
#include "src/kernel/direct_domain.h"
#include "src/kernel/net_stack.h"
#include "src/kernel/psbox_service.h"
#include "src/kernel/resource_domain.h"
#include "src/kernel/storage_driver.h"
#include "src/kernel/task.h"
#include "src/kernel/usage_ledger.h"

namespace psbox {

struct KernelConfig {
  SchedConfig sched;
  GovernorConfig governor;
  AccelDriverConfig gpu_driver;
  AccelDriverConfig dsp_driver;
  NetConfig net;
  StorageDriverConfig storage_driver;
  // Ablation: when false, CPU balloons do not switch DVFS contexts (the
  // sandbox sees whatever operating point the system happens to be in).
  bool virtualize_cpu_freq = true;
  // Telemetry retention (0 = keep everything, the default). When set, the
  // kernel periodically trims power telemetry — rail traces, sandbox
  // ownership history, domain timelines, schedule traces, usage-ledger
  // records — behind Now() - telemetry_retention, after folding the trimmed
  // history into exact per-sandbox base accumulators. Long runs then hold a
  // bounded telemetry working set while psbox_read and whole-history energy
  // queries stay exact; only windowed queries reaching behind the horizon
  // (and undrained sample backlog, dropped with ring-buffer semantics)
  // lose resolution.
  DurationNs telemetry_retention = 0;
  // Trim cadence; 0 = every telemetry_retention / 2.
  DurationNs telemetry_trim_period = 0;
};

class Kernel : public BalloonObserver {
 public:
  explicit Kernel(Board* board, KernelConfig config = {});
  ~Kernel() override;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- apps & tasks -----------------------------------------------------
  AppId CreateApp(std::string name);
  const std::string& AppName(AppId app) const;
  Task* SpawnTask(AppId app, std::string name, std::unique_ptr<Behavior> behavior,
                  CoreId core = -1);
  const std::vector<Task*>& AppTasks(AppId app) const;
  // True once every task of |app| has exited.
  bool AppFinished(AppId app) const;
  // Task with the given id (ids are dense, starting at 1); nullptr when out
  // of range. Snapshot restore uses this to resolve saved task references.
  Task* TaskById(TaskId id) {
    if (id <= 0 || static_cast<size_t>(id) > tasks_.size()) {
      return nullptr;
    }
    return tasks_[static_cast<size_t>(id) - 1].get();
  }

  // --- subsystem access ---------------------------------------------------
  Board& board() { return *board_; }
  const KernelConfig& config() const { return config_; }
  Simulator& sim() { return board_->sim(); }
  TimeNs Now() const { return board_->sim().Now(); }
  CpuScheduler& scheduler() { return *scheduler_; }
  CpufreqGovernor& governor() { return *governor_; }
  AccelDriver& gpu_driver() { return *gpu_driver_; }
  AccelDriver& dsp_driver() { return *dsp_driver_; }
  AccelDriver& DriverFor(HwComponent hw);
  NetStack& net() { return *net_; }
  StorageDriver& storage_driver() { return *storage_driver_; }
  UsageLedger& ledger() { return ledger_; }

  // --- resource-domain registry -------------------------------------------
  // Every HwComponent registers a ResourceDomain here at kernel
  // construction — balloon-carrying policies for CPU/GPU/DSP/WiFi/storage,
  // thin direct-metered policies for the §7 entanglement-free display and
  // GPS — and the psbox manager addresses them uniformly by component.
  // Aborts with a descriptive message when |hw| has no domain (a wiring bug).
  ResourceDomain& domain(HwComponent hw);
  // Null instead of aborting for unbound components.
  ResourceDomain* FindDomain(HwComponent hw) {
    return domains_[static_cast<size_t>(hw)];
  }

  // --- psbox integration ----------------------------------------------
  void set_psbox_service(PsboxService* service) { psbox_service_ = service; }
  PsboxService* psbox_service() { return psbox_service_; }
  // External observer (the psbox manager) notified after the kernel's own
  // balloon handling (power-state context switches).
  void set_balloon_observer(BalloonObserver* observer) { external_observer_ = observer; }
  // Creates the psbox's CPU frequency context; must be called before the
  // psbox's first CPU balloon.
  void RegisterCpuContext(PsboxId box);

  // BalloonObserver (internal dispatch from scheduler/drivers):
  void OnBalloonIn(PsboxId box, HwComponent hw, TimeNs when) override;
  void OnBalloonOut(PsboxId box, HwComponent hw, TimeNs when) override;

  // --- syscall & interrupt plumbing (used by the scheduler/drivers) ----
  void ScheduleTaskWake(Task* task, DurationNs delay);
  void HandleSubmitAccel(Task* task, const Action& action);
  void HandleSend(Task* task, const Action& action);
  void HandleSubmitStorage(Task* task, const Action& action);
  void DeliverAccelCompletion(Task* task);
  void DeliverStorageCompletion(Task* task);
  void DeliverNetDone(Task* task);
  void ExpectRx(Task* task, size_t bytes);
  void DeliverRx(AppId app, size_t bytes);

  // Runs the simulation until |deadline| (convenience passthrough).
  void RunUntil(TimeNs deadline) { board_->sim().RunUntil(deadline); }

  // --- telemetry retention ------------------------------------------------
  // Trims power telemetry behind |desired|, clamped by open accounting
  // windows and sandbox retain floors. Runs on a periodic tick when
  // KernelConfig::telemetry_retention is set; tests and tools may also call
  // it directly. Returns the horizon actually applied (0 = nothing done).
  TimeNs TrimTelemetry(TimeNs desired);
  TimeNs last_trim_horizon() const { return last_trim_horizon_; }

  // --- checkpoint/restore -------------------------------------------------
  // Restore protocol: BeginRestore() puts the kernel in restore mode —
  // SpawnTask then only registers tasks (no scheduling) while the caller
  // replays the scenario's app/task/box construction; RestoreState()
  // overwrites all mutable state from the snapshot; EndRestore() leaves
  // restore mode. See src/snapshot/board_snapshot.h for the full sequence.
  void BeginRestore() { restoring_ = true; }
  void EndRestore() { restoring_ = false; }
  bool restoring() const { return restoring_; }
  // Persists apps, tasks (incl. behaviour state), syscall bookkeeping, the
  // usage ledger and every kernel subsystem.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r, EventRearmer& rearmer);

 private:
  // Binds |domain| into the registry slot for its component and attaches the
  // kernel-side observer and the usage ledger — the one place balloon
  // plumbing happens.
  void RegisterDomain(ResourceDomain* domain);
  // Self-rescheduling periodic trim tick (armed when retention is on).
  void ArmTelemetryTrim();
  void ArmTelemetryTrimAt(TimeNs when);
  // Tracked body of ScheduleTaskWake; prunes fired entries so checkpoints
  // can enumerate the live wake timers.
  void ScheduleTaskWakeAt(Task* task, TimeNs when);

  Board* board_;
  KernelConfig config_;
  UsageLedger ledger_;
  std::unique_ptr<CpuScheduler> scheduler_;
  std::unique_ptr<CpufreqGovernor> governor_;
  std::unique_ptr<AccelDriver> gpu_driver_;
  std::unique_ptr<AccelDriver> dsp_driver_;
  std::unique_ptr<NetStack> net_;
  std::unique_ptr<StorageDriver> storage_driver_;
  std::unique_ptr<DisplayDomain> display_domain_;
  std::unique_ptr<GpsDomain> gps_domain_;
  std::array<ResourceDomain*, kNumHwComponents> domains_{};
  PsboxService* psbox_service_ = nullptr;
  BalloonObserver* external_observer_ = nullptr;

  std::vector<std::string> app_names_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::unordered_map<AppId, std::vector<Task*>> app_tasks_;
  std::unordered_map<PsboxId, int> cpu_context_of_box_;
  std::unordered_map<AppId, std::deque<Task*>> rx_waiters_;
  TaskId next_task_id_ = 1;
  TimeNs last_trim_horizon_ = 0;

  // Checkpoint plumbing: the periodic trim tick, outstanding task-wake
  // timers (fired entries pruned lazily), and the restore-mode flag.
  EventId trim_event_ = kInvalidEventId;
  std::vector<std::pair<TaskId, EventId>> wake_events_;
  bool restoring_ = false;
};

}  // namespace psbox

#endif  // SRC_KERNEL_KERNEL_H_
