#include "src/kernel/usage_ledger.h"

#include <algorithm>

#include "src/base/check.h"

namespace psbox {

void UsageLedger::Add(HwComponent hw, AppId app, TimeNs begin, TimeNs end,
                      double weight) {
  if (end <= begin) {
    return;
  }
  PSBOX_CHECK_GE(weight, 0.0);
  records_[static_cast<size_t>(hw)].push_back({app, begin, end, weight});
}

size_t UsageLedger::TrimBefore(TimeNs horizon) {
  size_t dropped = 0;
  for (auto& v : records_) {
    // Records land in completion order, but overlapping in-flight commands
    // make the end times only roughly sorted — filter rather than slice.
    auto it = std::remove_if(v.begin(), v.end(), [horizon](const UsageRecord& r) {
      return r.end <= horizon;
    });
    dropped += static_cast<size_t>(v.end() - it);
    v.erase(it, v.end());
  }
  trimmed_records_ += dropped;
  return dropped;
}

void UsageLedger::Clear() {
  for (auto& v : records_) {
    v.clear();
  }
}

}  // namespace psbox
