#include "src/kernel/usage_ledger.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

void UsageLedger::Add(HwComponent hw, AppId app, TimeNs begin, TimeNs end,
                      double weight) {
  if (end <= begin) {
    return;
  }
  PSBOX_CHECK_GE(weight, 0.0);
  records_[static_cast<size_t>(hw)].push_back({app, begin, end, weight});
}

size_t UsageLedger::TrimBefore(TimeNs horizon) {
  size_t dropped = 0;
  for (auto& v : records_) {
    // Records land in completion order, but overlapping in-flight commands
    // make the end times only roughly sorted — filter rather than slice.
    auto it = std::remove_if(v.begin(), v.end(), [horizon](const UsageRecord& r) {
      return r.end <= horizon;
    });
    dropped += static_cast<size_t>(v.end() - it);
    v.erase(it, v.end());
  }
  trimmed_records_ += dropped;
  return dropped;
}

void UsageLedger::Clear() {
  for (auto& v : records_) {
    v.clear();
  }
}

void UsageLedger::SaveState(SnapshotWriter& w) const {
  w.Section("ledger");
  for (const auto& v : records_) {
    w.U64(v.size());
    for (const UsageRecord& rec : v) {
      w.I64(rec.app);
      w.I64(rec.begin);
      w.I64(rec.end);
      w.F64(rec.weight);
    }
  }
  w.U64(trimmed_records_);
}

void UsageLedger::RestoreState(SnapshotReader& r) {
  if (!r.Section("ledger")) {
    return;
  }
  for (auto& v : records_) {
    v.clear();
    const size_t n = r.Count(32);
    v.reserve(n);
    for (size_t i = 0; i < n && r.ok(); ++i) {
      UsageRecord rec;
      rec.app = static_cast<AppId>(r.I64());
      rec.begin = r.I64();
      rec.end = r.I64();
      rec.weight = r.F64();
      v.push_back(rec);
    }
  }
  trimmed_records_ = r.U64();
}

}  // namespace psbox
