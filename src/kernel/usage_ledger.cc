#include "src/kernel/usage_ledger.h"

#include "src/base/check.h"

namespace psbox {

void UsageLedger::Add(HwComponent hw, AppId app, TimeNs begin, TimeNs end,
                      double weight) {
  if (end <= begin) {
    return;
  }
  PSBOX_CHECK_GE(weight, 0.0);
  records_[static_cast<size_t>(hw)].push_back({app, begin, end, weight});
}

void UsageLedger::Clear() {
  for (auto& v : records_) {
    v.clear();
  }
}

}  // namespace psbox
