#include "src/kernel/storage_driver.h"

#include <algorithm>
#include <limits>

#include "src/base/check.h"
#include "src/kernel/kernel.h"
#include "src/snapshot/event_rearmer.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

StorageDriver::StorageDriver(Simulator* sim, StorageDevice* device,
                             Kernel* kernel, StorageDriverConfig config)
    : ResourceDomain(sim, HwComponent::kStorage, config.drain_timeout),
      device_(device), kernel_(kernel), config_(config) {
  device_->set_on_complete(
      [this](const StorageCompletion& c) { OnComplete(c); });
  // Quiescence (channel idle, buffer flushed) is what the drain phases wait
  // for; the device tells us the moment it happens.
  device_->set_on_quiescent([this] { Pump(); });
  global_state_ = device_->power_state();
}

StorageDriver::AppQueue& StorageDriver::QueueFor(AppId app) {
  return queues_[app];
}

void StorageDriver::SchedulePumpAt(TimeNs when) {
  std::erase_if(pump_events_, [this](EventId e) { return !sim_->IsPending(e); });
  pump_events_.push_back(sim_->ScheduleAt(when, [this] { Pump(); }));
}

void StorageDriver::Submit(Task* task, StorageCommand cmd) {
  cmd.id = next_cmd_id_++;
  cmd.app = task->app();
  ++stats_.submitted;
  AppQueue& q = QueueFor(cmd.app);
  q.q.push_back(Pending{cmd, task, sim_->Now()});
  q.last_seen = sim_->Now();
  Pump();
}

double StorageDriver::MinRecentCompetitorVtime(AppId owner) const {
  constexpr DurationNs kRecency = 50 * kMillisecond;
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [app, q] : queues_) {
    if (app == owner) {
      continue;
    }
    const bool recent =
        q.last_seen >= 0 && sim_->Now() - q.last_seen <= kRecency;
    if (!q.q.empty() || recent) {
      best = std::min(best, q.vtime);
    }
  }
  return best;
}

AppId StorageDriver::BestPendingApp(bool exclude_sandboxed_owner) const {
  AppId best = kNoApp;
  double best_vt = std::numeric_limits<double>::infinity();
  for (const auto& [app, q] : queues_) {
    if (q.q.empty()) {
      continue;
    }
    if (exclude_sandboxed_owner && app == balloon_owner()) {
      continue;
    }
    if (q.vtime < best_vt) {
      best_vt = q.vtime;
      best = app;
    }
  }
  return best;
}

void StorageDriver::DispatchFrom(AppId app) {
  AppQueue& q = QueueFor(app);
  Pending p = q.q.front();
  q.q.pop_front();
  const DurationNs lat = sim_->Now() - p.submit_time;
  stats_.total_dispatch_latency += lat;
  stats_.max_dispatch_latency = std::max(stats_.max_dispatch_latency, lat);
  device_->Dispatch(p.cmd);
  in_flight_[p.cmd.id] = p;
  ArmCommandWatchdog(p.cmd.id);
}

void StorageDriver::Pump() {
  while (true) {
    switch (balloon_phase()) {
      case BalloonPhase::kIdle: {  // normal fair dispatch
        if (!device_->CanDispatch()) {
          return;
        }
        AppId best = BestPendingApp(false);
        if (best == kNoApp) {
          return;
        }
        if (QueueFor(best).sandboxed) {
          // Non-work-conserving toward the sandbox: it only takes the channel
          // when it is not still repaying its previous balloon relative to
          // apps that will be back momentarily (§6.3).
          const double competitor = MinRecentCompetitorVtime(best);
          if (QueueFor(best).vtime >
              competitor + static_cast<double>(config_.switch_lead)) {
            AppId fallback = kNoApp;
            double fallback_vt = std::numeric_limits<double>::infinity();
            for (const auto& [app, q2] : queues_) {
              if (q2.q.empty() || q2.sandboxed) {
                continue;
              }
              if (q2.vtime < fallback_vt) {
                fallback_vt = q2.vtime;
                fallback = app;
              }
            }
            if (fallback == kNoApp) {
              if (retry_event_ == kInvalidEventId) {
                retry_event_ = sim_->ScheduleAfter(1 * kMillisecond, [this] {
                  retry_event_ = kInvalidEventId;
                  Pump();
                });
              }
              return;
            }
            best = fallback;
          } else {
            // Phase 1 — drain others, flush tails included.
            BalloonRequest(best, QueueFor(best).box);
            continue;
          }
        }
        DispatchFrom(best);
        continue;
      }
      case BalloonPhase::kDrainOthers: {
        // Unlike the accelerators, "drained" here means *quiescent*: channel
        // idle AND the write-back buffer flushed, so no lingering energy from
        // others' writes leaks into the sandbox's window.
        if (!device_->Quiescent()) {
          return;  // on_quiescent pumps us again
        }
        // Balloon-in: restore the sandbox's virtualised power state before
        // the observer looks.
        global_state_ = device_->power_state();
        if (config_.virtualize_power_state) {
          device_->SetPowerState(QueueFor(balloon_owner()).vstate);
        }
        BalloonServe();
        continue;
      }
      case BalloonPhase::kServe: {
        AppQueue& sq = QueueFor(balloon_owner());
        const AppId contender = BestPendingApp(/*exclude_sandboxed_owner=*/true);
        const bool grant_over =
            sim_->Now() - balloon_start() >= config_.min_grant;
        // The owner's flush tail does NOT keep the balloon alive — releasing
        // moves to kDrainOwner, which waits the tail out *inside* the window.
        const bool owner_idle = sq.q.empty() && !device_->channel_busy();
        if (owner_idle) {
          if (owner_idle_since_ < 0) {
            owner_idle_since_ = sim_->Now();
            SchedulePumpAt(sim_->Now() + config_.idle_release);
          }
        } else {
          owner_idle_since_ = -1;
        }
        const bool idle_expired =
            owner_idle &&
            sim_->Now() - owner_idle_since_ >= config_.idle_release;
        const double accrued =
            static_cast<double>(sim_->Now() - balloon_start());
        const bool lead_exceeded =
            contender != kNoApp &&
            sq.vtime + (config_.bill_balloon ? accrued : 0.0) -
                    QueueFor(contender).vtime >
                static_cast<double>(config_.switch_lead);
        if ((contender != kNoApp && grant_over &&
             (owner_idle || lead_exceeded)) ||
            idle_expired) {
          owner_idle_since_ = -1;
          BalloonRelease();  // phase 4: drain the owner (and its flush tail)
          continue;
        }
        if (!device_->CanDispatch() || sq.q.empty()) {
          if (contender != kNoApp && !grant_over) {
            const TimeNs when = balloon_start() + config_.min_grant;
            SchedulePumpAt(std::max(when, sim_->Now()));
          }
          return;
        }
        DispatchFrom(balloon_owner());
        continue;
      }
      case BalloonPhase::kDrainOwner: {
        // The owner's lingering flush energy belongs to its window: wait for
        // full quiescence before closing the balloon.
        if (!device_->Quiescent()) {
          return;
        }
        AppQueue& sq = QueueFor(balloon_owner());
        if (config_.bill_balloon) {
          sq.vtime += static_cast<double>(sim_->Now() - balloon_start());
        }
        // Park the sandbox's power state and restore the global one before
        // the observer sees balloon-out.
        if (config_.virtualize_power_state) {
          sq.vstate = device_->power_state();
          device_->SetPowerState(global_state_);
        }
        BalloonFinish();
        owner_idle_since_ = -1;
        continue;  // back to fair dispatch
      }
    }
  }
}

void StorageDriver::OnComplete(const StorageCompletion& completion) {
  auto it = in_flight_.find(completion.cmd.id);
  PSBOX_CHECK(it != in_flight_.end());
  const Pending p = it->second;
  in_flight_.erase(it);
  sim_->Cancel(p.watchdog);
  ++stats_.completed;
  AppQueue& q = QueueFor(completion.cmd.app);
  ++q.completed;
  q.last_seen = sim_->Now();
  if (completion.cmd.app != balloon_owner()) {
    // Normal billing: the span the command occupied the channel.
    q.vtime +=
        static_cast<double>(completion.end_time - completion.dispatch_time);
  }
  if (ledger_ != nullptr) {
    ledger_->Add(kind(), completion.cmd.app, completion.dispatch_time,
                 completion.end_time);
  }
  if (p.task != nullptr) {
    ++p.task->pending_storage_completions;
    kernel_->DeliverStorageCompletion(p.task);
  }
  Pump();
}

void StorageDriver::SetSandboxed(AppId app, PsboxId box) {
  AppQueue& q = QueueFor(app);
  q.sandboxed = true;
  q.box = box;
  Pump();
}

void StorageDriver::ClearSandboxed(AppId app) {
  AppQueue& q = QueueFor(app);
  q.sandboxed = false;
  if (balloon_owner() == app) {
    if (balloon_phase() == BalloonPhase::kDrainOthers) {
      // Ownership never began; just unwind.
      BalloonCancel();
    } else if (balloon_phase() == BalloonPhase::kServe) {
      BalloonRelease();
    }
  }
  Pump();
}

void StorageDriver::ArmCommandWatchdog(uint64_t cmd_id) {
  // Raw slab event; the handle rides in the in-flight record so the whole
  // arm/complete cycle stays allocation-free.
  Pending& p = in_flight_.at(cmd_id);
  p.watchdog = sim_->ScheduleAfter(config_.command_timeout,
                                   [this, cmd_id] { OnCommandTimeout(cmd_id); });
}

void StorageDriver::OnCommandTimeout(uint64_t cmd_id) {
  if (in_flight_.count(cmd_id) == 0) {
    return;  // completed concurrently with the expiry; stale
  }
  ++stats_.watchdog_fires;
  ResetAndRequeue();
  Pump();
}

void StorageDriver::ResetAndRequeue() {
  std::vector<StorageDevice::AbortedCommand> aborted = device_->Reset();
  ++stats_.device_resets;
  RecordRecovery();
  // Cancel surviving watchdogs; for the expired one this is a stale-handle
  // no-op (its event already left the simulator queue).
  for (auto& [cmd_id, pending] : in_flight_) {
    sim_->Cancel(pending.watchdog);
    pending.watchdog = kInvalidEventId;
  }
  // Single channel: at most one aborted command, but keep the generic shape.
  for (auto it = aborted.rbegin(); it != aborted.rend(); ++it) {
    auto fit = in_flight_.find(it->cmd.id);
    PSBOX_CHECK(fit != in_flight_.end());
    Pending p = fit->second;
    in_flight_.erase(fit);
    if (it->hung) {
      ++p.retries;
    }
    if (p.retries > config_.max_command_retries) {
      FailCommand(p);
      continue;
    }
    ++stats_.command_retries;
    QueueFor(p.cmd.app).q.push_front(p);
  }
}

void StorageDriver::OnDrainTimeout() {
  ++stats_.watchdog_fires;
  // Unwind the balloon before clearing the hardware: ResetAndRequeue can
  // re-enter Pump (a failed command wakes its submitter, which may submit
  // again synchronously), and the reentrant pump must see a settled domain.
  AppQueue& sq = QueueFor(balloon_owner());
  const bool owned = balloon_phase() == BalloonPhase::kDrainOwner;
  if (owned && config_.virtualize_power_state) {
    sq.vstate = device_->power_state();
    device_->SetPowerState(global_state_);
  }
  // Bills only the service actually rendered — nothing for a kDrainOthers
  // abort, where ownership never began.
  const DurationNs served = BalloonAbort();
  if (owned && config_.bill_balloon) {
    sq.vtime += static_cast<double>(served);
  }
  owner_idle_since_ = -1;
  if (device_->Wedged()) {
    // The drain was stuck behind a hung command; clear it now rather than
    // wait for the per-command watchdog.
    ResetAndRequeue();
  }
  Pump();
}

void StorageDriver::FailCommand(const Pending& p) {
  ++stats_.commands_failed;
  // The submitter still gets a completion (an error status, in a real
  // driver) so it unblocks and can react to the loss.
  if (p.task != nullptr) {
    ++p.task->pending_storage_completions;
    kernel_->DeliverStorageCompletion(p.task);
  }
}

namespace {

void SaveStorageCommand(SnapshotWriter& w, const StorageCommand& cmd) {
  w.U64(cmd.id);
  w.I64(cmd.app);
  w.Bool(cmd.is_write);
  w.U64(cmd.bytes);
}

StorageCommand LoadStorageCommand(SnapshotReader& r) {
  StorageCommand cmd;
  cmd.id = r.U64();
  cmd.app = static_cast<AppId>(r.I64());
  cmd.is_write = r.Bool();
  cmd.bytes = r.U64();
  return cmd;
}

}  // namespace

void StorageDriver::SaveState(SnapshotWriter& w) const {
  w.Section("storage_driver");
  SaveDomainState(w);
  w.U64(queues_.size());
  for (const auto& [app, q] : queues_) {  // std::map: sorted already
    w.I64(app);
    w.U64(q.q.size());
    for (const Pending& p : q.q) {
      SaveStorageCommand(w, p.cmd);
      w.U64(p.task != nullptr ? static_cast<uint64_t>(p.task->id()) : 0);
      w.I64(p.submit_time);
      w.U32(static_cast<uint32_t>(p.retries));
    }
    w.F64(q.vtime);
    w.Bool(q.sandboxed);
    w.I64(q.box);
    w.U32(static_cast<uint32_t>(q.vstate.perf_level));
    w.I64(q.vstate.flush_delay);
    w.U64(q.completed);
    w.I64(q.last_seen);
  }
  // In-flight commands in cmd-id order for a stable byte stream.
  const std::map<uint64_t, Pending> inflight(in_flight_.begin(),
                                             in_flight_.end());
  w.U64(inflight.size());
  for (const auto& [cmd_id, p] : inflight) {
    SaveStorageCommand(w, p.cmd);
    w.U64(p.task != nullptr ? static_cast<uint64_t>(p.task->id()) : 0);
    w.I64(p.submit_time);
    w.U32(static_cast<uint32_t>(p.retries));
    SaveEvent(w, *sim_, p.watchdog);
  }
  w.U64(next_cmd_id_);
  w.I64(owner_idle_since_);
  w.U32(static_cast<uint32_t>(global_state_.perf_level));
  w.I64(global_state_.flush_delay);
  w.U64(stats_.submitted);
  w.U64(stats_.completed);
  w.I64(stats_.total_dispatch_latency);
  w.I64(stats_.max_dispatch_latency);
  w.U64(stats_.watchdog_fires);
  w.U64(stats_.device_resets);
  w.U64(stats_.command_retries);
  w.U64(stats_.commands_failed);
  SaveEvent(w, *sim_, retry_event_);
  uint64_t live_pumps = 0;
  for (EventId e : pump_events_) {
    if (sim_->IsPending(e)) {
      ++live_pumps;
    }
  }
  w.U64(live_pumps);
  for (EventId e : pump_events_) {
    if (sim_->IsPending(e)) {
      SaveEvent(w, *sim_, e);
    }
  }
}

void StorageDriver::RestoreState(SnapshotReader& r, EventRearmer& rearmer) {
  if (!r.Section("storage_driver")) {
    return;
  }
  RestoreDomainState(r, rearmer);
  queues_.clear();
  in_flight_.clear();
  const size_t num_apps = r.Count(8);
  for (size_t i = 0; i < num_apps && r.ok(); ++i) {
    const AppId app = static_cast<AppId>(r.I64());
    AppQueue& q = queues_[app];
    const size_t depth = r.Count(8);
    for (size_t j = 0; j < depth && r.ok(); ++j) {
      Pending p{};
      p.cmd = LoadStorageCommand(r);
      const uint64_t task_id = r.U64();
      p.task = task_id != 0 ? kernel_->TaskById(static_cast<TaskId>(task_id))
                            : nullptr;
      p.submit_time = r.I64();
      p.retries = static_cast<int>(r.U32());
      q.q.push_back(p);
    }
    q.vtime = r.F64();
    q.sandboxed = r.Bool();
    q.box = static_cast<PsboxId>(r.I64());
    q.vstate.perf_level = static_cast<int>(r.U32());
    q.vstate.flush_delay = r.I64();
    q.completed = r.U64();
    q.last_seen = r.I64();
  }
  const size_t num_inflight = r.Count(8);
  for (size_t i = 0; i < num_inflight && r.ok(); ++i) {
    Pending p{};
    p.cmd = LoadStorageCommand(r);
    const uint64_t task_id = r.U64();
    p.task = task_id != 0 ? kernel_->TaskById(static_cast<TaskId>(task_id))
                          : nullptr;
    p.submit_time = r.I64();
    p.retries = static_cast<int>(r.U32());
    const uint64_t cmd_id = p.cmd.id;
    in_flight_[cmd_id] = p;
    LoadEvent(r, rearmer, [this, cmd_id](TimeNs when) {
      in_flight_.at(cmd_id).watchdog = sim_->ScheduleAt(
          when, [this, cmd_id] { OnCommandTimeout(cmd_id); });
    });
  }
  next_cmd_id_ = r.U64();
  owner_idle_since_ = r.I64();
  global_state_.perf_level = static_cast<int>(r.U32());
  global_state_.flush_delay = r.I64();
  stats_ = Stats{};
  stats_.submitted = r.U64();
  stats_.completed = r.U64();
  stats_.total_dispatch_latency = r.I64();
  stats_.max_dispatch_latency = r.I64();
  stats_.watchdog_fires = r.U64();
  stats_.device_resets = r.U64();
  stats_.command_retries = r.U64();
  stats_.commands_failed = r.U64();
  retry_event_ = kInvalidEventId;
  LoadEvent(r, rearmer, [this](TimeNs when) {
    retry_event_ = sim_->ScheduleAt(when, [this] {
      retry_event_ = kInvalidEventId;
      Pump();
    });
  });
  pump_events_.clear();
  const size_t num_pumps = r.Count(10);
  for (size_t i = 0; i < num_pumps && r.ok(); ++i) {
    LoadEvent(r, rearmer, [this](TimeNs when) { SchedulePumpAt(when); });
  }
}

uint64_t StorageDriver::CompletedFor(AppId app) const {
  auto it = queues_.find(app);
  return it == queues_.end() ? 0 : it->second.completed;
}

}  // namespace psbox
