// ResourceDomain: the common OS-facing layer of the balloon protocol.
//
// The paper implements one concept — per-resource power balloons with
// drain/serve accounting (§4) — once per resource class: spatial balloons in
// the CPU scheduler, five-phase temporal balloons in the accelerator
// drivers, credit-based balloons in the network stack. ResourceDomain hoists
// everything those implementations share out of the policies:
//
//   * the balloon lifecycle state machine
//       request (drain others) -> serve -> release (drain owner) -> finish
//                    \-> cancel                    \-> abort (watchdog)
//   * the per-box accounting window (balloon_start .. finish/abort) and the
//     unified DomainStats every domain reports;
//   * BalloonObserver dispatch at the ownership edges (balloon-in/out), which
//     is what feeds the psbox virtual power meters;
//   * drain-watchdog arming, so a wedged drain phase always unwinds.
//
// Policies (CpuScheduler, AccelDriver, NetStack, StorageDriver) keep only
// what is genuinely resource-specific: queueing, fairness credits, device
// dispatch, power-state virtualisation and recovery actions. The kernel and
// the psbox manager address every domain uniformly through a registry keyed
// by HwComponent — adding a sandboxed resource means implementing this
// interface, not wiring a fourth special case through the stack.
//
// Two shapes of policy:
//   * temporal domains (accelerators, NIC, storage) drive the five-phase
//     machine directly via BalloonRequest/Serve/Release/Finish/Cancel/Abort;
//   * the spatial CPU domain has its own coscheduling lifecycle and uses the
//     primitives (Notify*/Record*) so its accounting and observer dispatch
//     still flow through the common layer.

#ifndef SRC_KERNEL_RESOURCE_DOMAIN_H_
#define SRC_KERNEL_RESOURCE_DOMAIN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/types.h"
#include "src/kernel/balloon_observer.h"
#include "src/kernel/usage_ledger.h"
#include "src/sim/simulator.h"
#include "src/sim/watchdog.h"

namespace psbox {

class EventRearmer;
class SnapshotReader;
class SnapshotWriter;

// One lifecycle edge of a balloon. Every domain keeps the full edge
// sequence (request → serve → release → finish, or the cancel/abort
// unwinds) so accounting disputes can be replayed offline from the CSV
// export next to the rail traces (balloon_timeline.h).
struct BalloonEdge {
  enum class Kind : uint8_t { kRequest, kServe, kRelease, kFinish, kCancel, kAbort };
  TimeNs when = 0;
  Kind kind = Kind::kRequest;
  AppId app = kNoApp;
  PsboxId box = kNoPsbox;
};

const char* BalloonEdgeKindName(BalloonEdge::Kind kind);

// The stats every resource domain reports, uniformly (the per-resource
// driver stats keep only their subsystem-specific counters).
struct DomainStats {
  // Balloon requests (whether they reached ownership or were unwound).
  uint64_t balloons = 0;
  // Billed ownership time: full windows for finished balloons, only the
  // service actually rendered for aborted ones.
  DurationNs total_balloon_time = 0;
  // Balloons unwound by a drain watchdog (never more than |balloons|).
  uint64_t aborted = 0;
  // Recovery actions the domain took (device resets, retransmit give-ups);
  // zero unless faults are injected.
  uint64_t recoveries = 0;
};

class ResourceDomain {
 public:
  // |drain_timeout| == 0 disables the drain watchdog (the domain's drain
  // phases are then unbounded, e.g. the NIC whose frames always complete).
  ResourceDomain(Simulator* sim, HwComponent kind, DurationNs drain_timeout);
  virtual ~ResourceDomain();
  ResourceDomain(const ResourceDomain&) = delete;
  ResourceDomain& operator=(const ResourceDomain&) = delete;

  HwComponent kind() const { return kind_; }
  const char* name() const { return HwComponentName(kind_); }

  // --- registry surface (driven by Kernel / PsboxManager) -----------------
  // One-time per-psbox setup at psbox_create (task group / context
  // creation); default is nothing.
  virtual void BindBox(AppId app, PsboxId box) {
    (void)app;
    (void)box;
  }
  // Arms / disarms balloons for |app| (psbox enter / leave).
  virtual void SetSandboxed(AppId app, PsboxId box) = 0;
  virtual void ClearSandboxed(AppId app) = 0;

  void set_balloon_observer(BalloonObserver* observer) { observer_ = observer; }
  void set_ledger(UsageLedger* ledger) { ledger_ = ledger; }

  const DomainStats& domain_stats() const { return dstats_; }
  // Current balloon owner (kNoApp when none).
  virtual AppId balloon_owner() const { return owner_; }

  // Full lifecycle-edge sequence since construction, in time order (the
  // domain-level trace the CSV export streams out). Under telemetry
  // retention only the suffix behind the trim horizon is kept.
  const std::vector<BalloonEdge>& timeline() const { return timeline_; }

  // --- telemetry retention ------------------------------------------------
  // Earliest instant the domain's telemetry (and the power rail behind it)
  // must retain to keep accounting exact, given the kernel's desired trim
  // horizon: an open accounting window pins the floor at its start. Policies
  // with their own lifecycle (the spatial CPU domain) override.
  virtual TimeNs TelemetryFloor(TimeNs desired) const;
  // Drops domain-side telemetry (lifecycle edges, policy traces) behind
  // |horizon|. Overrides trim their own traces and call the base.
  virtual void TrimTelemetry(TimeNs horizon);
  // Lifecycle edges dropped by TrimTelemetry over the domain's lifetime.
  uint64_t trimmed_edges() const { return trimmed_edges_; }

  // --- §7 entanglement-free (direct-metered) domains ----------------------
  // Display power is separable per app and GPS operating power is safely
  // revealable, so their domains carry no balloon protocol: the psbox
  // virtual meter reads app-attributable power directly instead of gating
  // on ownership windows. Domains with balloons return false and must not
  // be asked for direct readings.
  virtual bool direct_metered() const { return false; }
  // App-attributable power at instant |t|; aborts unless direct_metered().
  virtual Watts DirectPowerAt(AppId app, TimeNs t) const;
  // App-attributable energy over [t0, t1); aborts unless direct_metered().
  virtual Joules DirectEnergyOver(AppId app, TimeNs t0, TimeNs t1) const;

  // Snapshot support for the common lifecycle layer: phase/owner/accounting
  // window, stats, timeline, and the armed drain watchdog. Policies with
  // extra state serialize it themselves and call these for the shared part.
  void SaveDomainState(SnapshotWriter& w) const;
  void RestoreDomainState(SnapshotReader& r, EventRearmer& rearmer);

 protected:
  enum class BalloonPhase { kIdle, kDrainOthers, kServe, kDrainOwner };

  // --- primitives (used by every domain, incl. the spatial CPU one) -------
  void NotifyBalloonIn(PsboxId box, TimeNs when);
  void NotifyBalloonOut(PsboxId box, TimeNs when);
  // Appends a lifecycle edge to the timeline. The five-phase methods record
  // their own edges; the spatial CPU domain calls this at its coscheduling
  // start/owned/end points.
  void RecordEdge(BalloonEdge::Kind kind, AppId app, PsboxId box);
  void RecordBalloonStart() { ++dstats_.balloons; }
  void RecordBalloonTime(DurationNs held) { dstats_.total_balloon_time += held; }
  void RecordAbort() { ++dstats_.aborted; }
  void RecordRecovery() { ++dstats_.recoveries; }

  // --- the temporal five-phase lifecycle ----------------------------------
  BalloonPhase balloon_phase() const { return phase_; }
  TimeNs balloon_start() const { return balloon_start_; }
  PsboxId owner_box() const { return owner_box_; }
  // Ownership window rendered before the current drain-owner phase began
  // (what an aborted balloon is billed for).
  DurationNs BalloonServed() const { return drain_enter_ - balloon_start_; }

  // kIdle -> kDrainOthers: counts the balloon, opens the accounting window,
  // arms the drain watchdog.
  void BalloonRequest(AppId app, PsboxId box);
  // kDrainOthers -> kServe: disarms the watchdog and signals balloon-in.
  // The policy swaps its virtualised power state *before* calling this, so
  // the observer sees the sandbox's own operating point from the first
  // owned instant.
  void BalloonServe();
  // kServe -> kDrainOwner: arms the drain watchdog.
  void BalloonRelease();
  // kDrainOwner -> kIdle: bills the full window, signals balloon-out.
  // Returns the held duration (the policy's fairness charge).
  DurationNs BalloonFinish();
  // kDrainOthers -> kIdle without billing or an abort count: the sandbox
  // left before ownership ever began.
  void BalloonCancel();
  // Either drain phase -> kIdle on watchdog expiry: bills only the service
  // rendered (zero when ownership never began), counts the abort and signals
  // balloon-out if ownership had been announced. Returns the billed span.
  DurationNs BalloonAbort();

  // Policy hook run when the drain watchdog expires while a drain phase is
  // still pending. The policy clears wedged hardware, settles its fairness
  // credits and calls BalloonAbort().
  virtual void OnDrainTimeout() {}

  Simulator* sim_;
  BalloonObserver* observer_ = nullptr;
  UsageLedger* ledger_ = nullptr;

 private:
  HwComponent kind_;
  BalloonPhase phase_ = BalloonPhase::kIdle;
  AppId owner_ = kNoApp;
  PsboxId owner_box_ = kNoPsbox;
  TimeNs balloon_start_ = 0;
  TimeNs drain_enter_ = -1;
  bool notified_ = false;
  // Guards the drain phases; null when drain_timeout == 0.
  std::unique_ptr<Watchdog> drain_watchdog_;
  DomainStats dstats_;
  std::vector<BalloonEdge> timeline_;
  uint64_t trimmed_edges_ = 0;
};

}  // namespace psbox

#endif  // SRC_KERNEL_RESOURCE_DOMAIN_H_
