// Thin ResourceDomain policies for the §7 entanglement-free hardware.
//
// The display (OLED) and GPS need no balloon protocol: display power is
// per-pixel additive, so each app's contribution is exactly attributable,
// and GPS operating power may be safely revealed to every sandbox (only the
// off/acquiring states are hidden behind idle power, closing the usage side
// channel of §4.1). These domains therefore implement the registry surface
// with pass-through accounting — SetSandboxed/ClearSandboxed arm nothing,
// the balloon counters stay at zero forever, and the psbox virtual meter
// reads app power through the direct_metered() surface instead of ownership
// windows. With them registered the domain registry covers every
// HwComponent and the psbox manager needs no per-component special cases.

#ifndef SRC_KERNEL_DIRECT_DOMAIN_H_
#define SRC_KERNEL_DIRECT_DOMAIN_H_

#include "src/hw/display_device.h"
#include "src/hw/gps_device.h"
#include "src/kernel/resource_domain.h"

namespace psbox {

// OLED display: per-app surface power is separable, so the sandbox reads
// exactly its own pixels' energy — no DAQ rail, no balloons.
class DisplayDomain : public ResourceDomain {
 public:
  DisplayDomain(Simulator* sim, DisplayDevice* display)
      : ResourceDomain(sim, HwComponent::kDisplay, /*drain_timeout=*/0),
        display_(display) {}

  void SetSandboxed(AppId app, PsboxId box) override {
    (void)app;
    (void)box;  // nothing to arm: attribution needs no exclusivity
  }
  void ClearSandboxed(AppId app) override { (void)app; }

  bool direct_metered() const override { return true; }
  Watts DirectPowerAt(AppId app, TimeNs t) const override {
    return display_->AppPowerAt(app, t);
  }
  Joules DirectEnergyOver(AppId app, TimeNs t0, TimeNs t1) const override {
    return display_->AppEnergy(app, t0, t1);
  }

  void TrimTelemetry(TimeNs horizon) override {
    display_->TrimHistory(horizon);
    ResourceDomain::TrimTelemetry(horizon);
  }

 private:
  DisplayDevice* display_;
};

// GPS receiver: while the device operates its power may be revealed to every
// psbox; off/acquiring periods read as idle power so no sandbox can infer
// other apps' (past) GPS usage. The reading is app-independent by design.
class GpsDomain : public ResourceDomain {
 public:
  GpsDomain(Simulator* sim, GpsDevice* gps)
      : ResourceDomain(sim, HwComponent::kGps, /*drain_timeout=*/0), gps_(gps) {}

  void SetSandboxed(AppId app, PsboxId box) override {
    (void)app;
    (void)box;
  }
  void ClearSandboxed(AppId app) override { (void)app; }

  bool direct_metered() const override { return true; }
  Watts DirectPowerAt(AppId app, TimeNs t) const override {
    (void)app;
    return gps_->operating_trace().ValueAt(t) > 0.5 ? gps_->config().on_power
                                                    : gps_->config().off_power;
  }
  Joules DirectEnergyOver(AppId app, TimeNs t0, TimeNs t1) const override {
    (void)app;
    const double operating_s = gps_->operating_trace().IntegralOver(t0, t1);
    const double window_s = ToSeconds(t1 - t0);
    return gps_->config().on_power * operating_s +
           gps_->config().off_power * (window_s - operating_s);
  }

  void TrimTelemetry(TimeNs horizon) override {
    gps_->TrimHistory(horizon);
    ResourceDomain::TrimTelemetry(horizon);
  }

 private:
  GpsDevice* gps_;
};

}  // namespace psbox

#endif  // SRC_KERNEL_DIRECT_DOMAIN_H_
