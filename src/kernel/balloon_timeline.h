// Balloon timeline export: every ResourceDomain records the edges of its
// five-phase protocol (request → serve → release → finish, plus the cancel
// and abort exits) as it runs; this helper dumps one CSV per domain so that
// balloon lifecycles can be laid next to the rail traces that explain them.
//
// Format (one file per domain, <dir>/<prefix>balloons_<domain>.csv):
//   time_ms,edge,app,psbox
// Edges appear in simulation order; a lifecycle is the run of rows sharing
// one psbox id between a request and its finish/cancel/abort.

#ifndef SRC_KERNEL_BALLOON_TIMELINE_H_
#define SRC_KERNEL_BALLOON_TIMELINE_H_

#include <ostream>
#include <string>

#include "src/kernel/resource_domain.h"

namespace psbox {

class Kernel;

// Writes one domain's recorded edges as CSV rows to |out|.
void WriteBalloonTimelineCsv(const ResourceDomain& domain, std::ostream& out);

// Writes <prefix>balloons_<domain>.csv under |dir| for every registered
// domain that recorded at least one edge (direct-metered domains never do).
// Returns the number of files written. |prefix| is typically empty or a
// board tag like "board0_" so fleet shards do not collide.
int ExportBalloonTimelines(Kernel& kernel, const std::string& dir,
                           const std::string& prefix = "");

}  // namespace psbox

#endif  // SRC_KERNEL_BALLOON_TIMELINE_H_
