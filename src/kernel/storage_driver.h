// Storage driver: fair I/O scheduling + psbox temporal balloons for the
// onboard flash — the fourth sandboxed resource, onboarded entirely through
// the ResourceDomain layer.
//
// Baseline behaviour is a single-channel fair I/O scheduler: per-app request
// queues, a per-app virtual service time, dispatch favouring the app with
// the minimum virtual time. The psbox extension is the standard temporal
// balloon, with one storage-specific twist: the drain phases wait for the
// device to go *quiescent* — channel idle AND write-back buffer flushed.
// Draining others' flush tails keeps their lingering write energy out of the
// sandbox's window; draining the owner's own tail keeps it in (§4.1's
// lingering-power-state rule applied to the FTL).

#ifndef SRC_KERNEL_STORAGE_DRIVER_H_
#define SRC_KERNEL_STORAGE_DRIVER_H_

#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/types.h"
#include "src/hw/storage_device.h"
#include "src/kernel/resource_domain.h"
#include "src/kernel/task.h"
#include "src/sim/simulator.h"

namespace psbox {

class Kernel;

struct StorageDriverConfig {
  // Minimum service period a balloon holds the device (drain thrash guard).
  DurationNs min_grant = 2 * kMillisecond;
  // The sandboxed app loses the channel once its virtual service time leads
  // the best competitor by this much.
  DurationNs switch_lead = 1 * kMillisecond;
  // A quiescent balloon with no contender is released after this long, so
  // ownership windows don't depend on who else is running.
  DurationNs idle_release = 500 * kMicrosecond;
  // Ablation knobs; both default to the paper's design.
  bool bill_balloon = true;           // charge the whole window to the owner
  bool virtualize_power_state = true;  // per-psbox bus perf / flush delay

  // --- fault recovery -----------------------------------------------------
  // A dispatched command producing no completion within this bound is
  // declared hung: the controller is reset and aborted commands requeued.
  DurationNs command_timeout = 200 * kMillisecond;
  int max_command_retries = 3;
  // A balloon stuck in a drain phase longer than this aborts.
  DurationNs drain_timeout = 500 * kMillisecond;
};

class StorageDriver : public ResourceDomain {
 public:
  StorageDriver(Simulator* sim, StorageDevice* device, Kernel* kernel,
                StorageDriverConfig config = {});

  // Syscall path: enqueues a transfer on behalf of |task|.
  void Submit(Task* task, StorageCommand cmd);

  // --- psbox temporal balloons (ResourceDomain) ---
  void SetSandboxed(AppId app, PsboxId box) override;
  void ClearSandboxed(AppId app) override;

  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    DurationNs total_dispatch_latency = 0;  // submit -> channel dispatch
    DurationNs max_dispatch_latency = 0;
    // Recovery counters.
    uint64_t watchdog_fires = 0;
    uint64_t device_resets = 0;
    uint64_t command_retries = 0;
    uint64_t commands_failed = 0;
  };
  const Stats& stats() const { return stats_; }
  uint64_t CompletedFor(AppId app) const;
  const StorageDriverConfig& config() const { return config_; }

  // Snapshot support: queues, the in-flight command with its hang watchdog,
  // power-state virtualisation, and all pending driver timers.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r, EventRearmer& rearmer);

 private:
  struct Pending {
    StorageCommand cmd;
    Task* task;
    TimeNs submit_time;
    int retries = 0;
    // Hang watchdog for the dispatched command; live only while in flight.
    EventId watchdog = kInvalidEventId;
  };

  struct AppQueue {
    std::deque<Pending> q;
    double vtime = 0.0;
    bool sandboxed = false;
    PsboxId box = kNoPsbox;
    StoragePowerState vstate;  // virtualised power state for the sandbox
    uint64_t completed = 0;
    TimeNs last_seen = -1;
  };

  AppQueue& QueueFor(AppId app);
  void Pump();
  void OnComplete(const StorageCompletion& completion);
  AppId BestPendingApp(bool exclude_sandboxed_owner) const;
  double MinRecentCompetitorVtime(AppId owner) const;
  void DispatchFrom(AppId app);
  // Tracks a deferred Pump() wake-up so checkpoints can re-arm it; prunes
  // already-fired entries.
  void SchedulePumpAt(TimeNs when);

  // --- fault recovery ---
  void ArmCommandWatchdog(uint64_t cmd_id);
  void OnCommandTimeout(uint64_t cmd_id);
  void OnDrainTimeout() override;
  void ResetAndRequeue();
  void FailCommand(const Pending& p);

  StorageDevice* device_;
  Kernel* kernel_;
  StorageDriverConfig config_;

  std::map<AppId, AppQueue> queues_;
  std::unordered_map<uint64_t, Pending> in_flight_;
  uint64_t next_cmd_id_ = 1;

  TimeNs owner_idle_since_ = -1;
  EventId retry_event_ = kInvalidEventId;
  // Outstanding deferred-Pump() events (idle-release and min-grant wakeups).
  std::vector<EventId> pump_events_;
  StoragePowerState global_state_;

  Stats stats_;
};

}  // namespace psbox

#endif  // SRC_KERNEL_STORAGE_DRIVER_H_
