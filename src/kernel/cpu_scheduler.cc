#include "src/kernel/cpu_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/base/check.h"
#include "src/kernel/kernel.h"
#include "src/snapshot/event_rearmer.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

bool CpuScheduler::Core::QueuedLess::operator()(const Entity& a, const Entity& b) const {
  const double va = sched->EntityVruntime(a, core);
  const double vb = sched->EntityVruntime(b, core);
  if (va != vb) {
    return va < vb;
  }
  return sched->EntityKey(a) < sched->EntityKey(b);
}

CpuScheduler::CpuScheduler(Simulator* sim, CpuDevice* cpu, SchedConfig config,
                           Kernel* kernel)
    : ResourceDomain(sim, HwComponent::kCpu, /*drain_timeout=*/0),
      cpu_(cpu), config_(config), kernel_(kernel) {
  const int n = cpu_->num_cores();
  cores_.reserve(static_cast<size_t>(n));
  for (CoreId c = 0; c < n; ++c) {
    cores_.emplace_back();
    Core& core = cores_.back();
    core.rq = std::set<Entity, Core::QueuedLess>(Core::QueuedLess{this, c});
    core.schedule_trace.Set(0, static_cast<double>(kNoApp));
  }
}

CpuScheduler::~CpuScheduler() = default;

double CpuScheduler::EntityVruntime(const Entity& e, CoreId core) const {
  if (e.is_group()) {
    return e.group->per_core_[static_cast<size_t>(core)].vruntime;
  }
  return e.task->vruntime;
}

int64_t CpuScheduler::EntityKey(const Entity& e) const {
  // Groups sort after tasks at equal vruntime; ids disambiguate within kind.
  if (e.is_group()) {
    return (1LL << 32) + e.group->psbox();
  }
  return e.task->id();
}

void CpuScheduler::Enqueue(CoreId core, Entity e) {
  Core& c = cores_[static_cast<size_t>(core)];
  const auto [it, inserted] = c.rq.insert(e);
  PSBOX_CHECK(inserted);
  if (e.is_group()) {
    e.group->per_core_[static_cast<size_t>(core)].queued = true;
  }
}

void CpuScheduler::Dequeue(CoreId core, Entity e) {
  Core& c = cores_[static_cast<size_t>(core)];
  const size_t erased = c.rq.erase(e);
  PSBOX_CHECK_EQ(erased, 1u);
  if (e.is_group()) {
    e.group->per_core_[static_cast<size_t>(core)].queued = false;
  }
}

bool CpuScheduler::IsQueued(CoreId core, const Entity& e) const {
  const Core& c = cores_[static_cast<size_t>(core)];
  return c.rq.find(e) != c.rq.end();
}

double CpuScheduler::ClampVruntime(CoreId core, double vr) const {
  const Core& c = cores_[static_cast<size_t>(core)];
  const double floor = c.min_vruntime - static_cast<double>(config_.wakeup_granularity);
  return std::max(vr, floor);
}

void CpuScheduler::AccountCore(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  const TimeNs now = sim_->Now();
  const DurationNs delta = now - c.last_update;
  if (delta <= 0) {
    c.last_update = now;
    return;
  }
  const double fdelta = static_cast<double>(delta);
  if (c.balloon != nullptr) {
    // Utilization attribution for the governor: balloon time belongs to the
    // sandbox's frequency context.
    BalloonUtil& bu = balloon_util_[c.balloon->psbox()];
    if (bu.busy_per_core.empty()) {
      bu.busy_per_core.assign(static_cast<size_t>(num_cores()), 0);
    }
    bu.wall += fdelta / static_cast<double>(num_cores());
    if (c.current_task != nullptr) {
      bu.busy_per_core[static_cast<size_t>(core)] += delta;
    }
  } else if (c.current_task != nullptr) {
    c.busy_outside += delta;
  }
  if (c.balloon != nullptr) {
    // Coscheduling: the whole balloon occupancy — dummy-idle cores included
    // — is billed to the group (charging the lost sharing opportunity,
    // §4.2). Each per-core entity carries the full N-core occupancy so that
    // per-core competitions see the group's true consumption, mirroring the
    // accelerator drivers billing the whole device for a balloon.
    auto& pc = c.balloon->per_core_[static_cast<size_t>(core)];
    if (config_.bill_balloon_occupancy) {
      pc.vruntime += fdelta * num_cores();
    } else if (c.current_task != nullptr) {
      pc.vruntime += fdelta;
    }
    if (ledger_ != nullptr) {
      ledger_->Add(HwComponent::kCpu, c.balloon->app(), c.last_update, now);
    }
  }
  if (c.current_task != nullptr) {
    Task* t = c.current_task;
    t->vruntime += fdelta;
    t->total_cpu_time += delta;
    if (c.balloon == nullptr) {
      if (ledger_ != nullptr) {
        ledger_->Add(HwComponent::kCpu, t->app(), c.last_update, now);
      }
    }
    // Consume compute progress at the cluster's current speed.
    const double consumed = fdelta * cpu_->SpeedFactor();
    const DurationNs remaining = t->remaining_compute();
    const auto consumed_ns = static_cast<DurationNs>(std::llround(consumed));
    t->set_remaining_compute(std::max<DurationNs>(0, remaining - consumed_ns));
  }
  // min_vruntime follows the *least* vruntime still competing on this core
  // (CFS semantics): the smaller of the on-cpu entity and the leftmost
  // queued one. Using anything larger would let sleepers be clamped up
  // toward a ballooned group's inflated vruntime, forgiving its loans.
  double least = std::numeric_limits<double>::infinity();
  if (c.balloon != nullptr) {
    least = c.balloon->per_core_[static_cast<size_t>(core)].vruntime;
  } else if (c.current_task != nullptr) {
    least = c.current_task->vruntime;
  }
  if (!c.rq.empty()) {
    least = std::min(least, EntityVruntime(*c.rq.begin(), core));
  }
  if (least != std::numeric_limits<double>::infinity()) {
    c.min_vruntime = std::max(c.min_vruntime, least);
  }
  c.last_update = now;
}

// ---------------------------------------------------------------------------
// Task lifecycle
// ---------------------------------------------------------------------------

CoreId CpuScheduler::LeastLoadedCore() const {
  CoreId best = 0;
  size_t best_load = std::numeric_limits<size_t>::max();
  for (CoreId c = 0; c < num_cores(); ++c) {
    const Core& core = cores_[static_cast<size_t>(c)];
    size_t load = core.rq.size();
    if (core.current_task != nullptr || core.balloon != nullptr) {
      ++load;
    }
    if (load < best_load) {
      best_load = load;
      best = c;
    }
  }
  return best;
}

void CpuScheduler::AddTask(Task* task, CoreId core) {
  if (core < 0) {
    core = LeastLoadedCore();
  }
  task->core = core;
  task->set_state(TaskState::kRunnable);
  TaskGroup* group = task->group != nullptr ? task->group : ActiveGroup(task->app());
  if (group != nullptr) {
    task->group = group;
    if (std::find(group->members_.begin(), group->members_.end(), task) ==
        group->members_.end()) {
      group->members_.push_back(task);
    }
  }
  task->vruntime = ClampVruntime(core, task->vruntime);
  WakeTask(task);
}

void CpuScheduler::WakeTask(Task* task) {
  PSBOX_CHECK(task->state() != TaskState::kExited);
  if (task->state() == TaskState::kRunning) {
    return;
  }
  task->set_state(TaskState::kRunnable);
  CoreId core = task->core >= 0 ? task->core : LeastLoadedCore();
  task->core = core;
  Core& c = cores_[static_cast<size_t>(core)];
  ++stats_.wakeups;
  wake_time_[task->id()] = sim_->Now();
  task->vruntime = ClampVruntime(core, task->vruntime);

  TaskGroup* group = task->group;
  if (group != nullptr) {
    auto& pc = group->per_core_[static_cast<size_t>(core)];
    pc.runnable.push_back(task);
    ++group->runnable_tasks_;
    if (group->coscheduling_) {
      // If this core is the group's dummy-idle slot, fill it immediately.
      if (c.balloon == group && c.current_task == nullptr) {
        AccountCore(core);
        pc.runnable.pop_back();  // the task moves straight onto the core
        SwitchTo(core, task, group);
      }
      return;
    }
    Entity ge{nullptr, group};
    if (!pc.queued) {
      pc.vruntime = ClampVruntime(core, pc.vruntime);
      Enqueue(core, ge);
    }
    ReEvaluate(core);
    return;
  }

  Enqueue(core, Entity{task, nullptr});
  ReEvaluate(core);
}

void CpuScheduler::Resched(CoreId core) {
  sim_->ScheduleAfter(0, [this, core] { ReEvaluate(core); });
}

void CpuScheduler::ReEvaluate(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  if (c.balloon != nullptr) {
    return;  // Ticks and balloon logic govern coscheduled cores.
  }
  AccountCore(core);
  if (c.current_task == nullptr) {
    Schedule(core);
    return;
  }
  // Wakeup preemption: leftmost queued entity must lead by the granularity.
  if (c.rq.empty()) {
    return;
  }
  const Entity best = *c.rq.begin();
  const double lead = c.current_task->vruntime - EntityVruntime(best, core);
  if (lead > static_cast<double>(config_.wakeup_granularity)) {
    Task* prev = c.current_task;
    prev->set_state(TaskState::kRunnable);
    DisarmCompletion(core);
    c.current_task = nullptr;
    Enqueue(core, Entity{prev, nullptr});
    Schedule(core);
  }
}

// ---------------------------------------------------------------------------
// Core scheduling
// ---------------------------------------------------------------------------

double CpuScheduler::CoreLeftmostVruntime(CoreId core, const TaskGroup* exclude) const {
  const Core& c = cores_[static_cast<size_t>(core)];
  for (const Entity& e : c.rq) {
    if (e.is_group() && e.group == exclude) {
      continue;
    }
    return EntityVruntime(e, core);
  }
  return kInf;
}

double CpuScheduler::GlobalCompetitorVruntime(const TaskGroup* group) const {
  double best = kInf;
  for (CoreId j = 0; j < num_cores(); ++j) {
    const Core& cj = cores_[static_cast<size_t>(j)];
    for (const Entity& e : cj.rq) {
      if (e.is_group() && e.group == group) {
        continue;
      }
      best = std::min(best, EntityVruntime(e, j));
      break;  // runqueue is ordered; first non-group entry is the minimum
    }
    if (cj.current_task != nullptr && cj.current_task->group != group) {
      best = std::min(best, cj.current_task->vruntime);
    }
  }
  return best;
}

bool CpuScheduler::BalloonEligible(CoreId core, TaskGroup* group) const {
  if (active_balloon_ != nullptr) {
    return false;  // balloons are whole-cluster; two cannot coexist
  }
  const double competitor = GlobalCompetitorVruntime(group);
  if (competitor == kInf) {
    return true;
  }
  const double vr = group->per_core_[static_cast<size_t>(core)].vruntime;
  return vr <= competitor + static_cast<double>(config_.wakeup_granularity);
}

CpuScheduler::Entity CpuScheduler::PickNext(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  // Group entities are only eligible when the balloon could start: no other
  // balloon active, and the group is not still repaying its loans relative
  // to any competitor in the system.
  const Entity* local = nullptr;
  for (const Entity& e : c.rq) {
    if (e.is_group() && !BalloonEligible(core, e.group)) {
      continue;
    }
    local = &e;
    break;
  }
  const double local_vr = local != nullptr ? EntityVruntime(*local, core) : kInf;

  // Cross-core stealing keeps long-run fairness when runnable counts are
  // unbalanced (e.g. 3 tasks on 2 cores): a queued remote task whose
  // vruntime lags far behind is pulled over. Only plain tasks migrate.
  Task* steal = nullptr;
  CoreId steal_from = -1;
  double steal_vr = local_vr - static_cast<double>(config_.steal_threshold);
  for (CoreId j = 0; j < num_cores(); ++j) {
    if (j == core) {
      continue;
    }
    const Core& cj = cores_[static_cast<size_t>(j)];
    // Only steal from cores that are busy; an idle core will pick its own
    // queued tasks imminently.
    if (cj.current_task == nullptr && cj.balloon == nullptr) {
      continue;
    }
    for (const Entity& e : cj.rq) {
      if (e.is_group()) {
        continue;
      }
      const double vr = e.task->vruntime;
      if (vr < steal_vr) {
        steal = e.task;
        steal_from = j;
        steal_vr = vr;
      }
      break;  // only the leftmost plain task is a candidate
    }
  }
  if (steal != nullptr) {
    Dequeue(steal_from, Entity{steal, nullptr});
    steal->core = core;
    // No vruntime clamp here: the stolen task's lag is precisely its claim
    // to catch-up time (clamping is only for tasks returning from sleep).
    ++stats_.steals;
    return Entity{steal, nullptr};
  }
  if (local != nullptr) {
    Entity e = *local;
    Dequeue(core, e);
    return e;
  }
  return Entity{};
}

void CpuScheduler::Schedule(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  PSBOX_CHECK(c.balloon == nullptr);
  PSBOX_CHECK(c.current_task == nullptr);
  Entity next = PickNext(core);
  if (next.task == nullptr && next.group == nullptr) {
    SwitchToIdle(core);
    if (!c.rq.empty()) {
      // An ineligible group is waiting (repaying loans or blocked behind
      // another balloon); retry once the competition may have caught up.
      ScheduleIdleRetryAt(sim_->Now() + config_.tick_period, core);
    }
    return;
  }
  if (next.is_group()) {
    StartBalloon(core, next.group);
    return;
  }
  SwitchTo(core, next.task, nullptr);
}

void CpuScheduler::SwitchTo(CoreId core, Task* task, TaskGroup* group) {
  Core& c = cores_[static_cast<size_t>(core)];
  ++stats_.context_switches;
  c.current_task = task;
  c.current_group = group;
  c.last_update = sim_->Now();
  if (task != nullptr) {
    task->set_state(TaskState::kRunning);
    task->core = core;
    auto it = wake_time_.find(task->id());
    if (it != wake_time_.end()) {
      stats_.total_wake_latency += sim_->Now() - it->second;
      wake_time_.erase(it);
    }
    cpu_->SetCoreState(core, true, task->intensity(), task->app());
    c.schedule_trace.Set(sim_->Now(), static_cast<double>(task->app()));
    ArmTick(core);
    if (task->remaining_compute() > 0) {
      ArmCompletion(core);
    } else {
      ProcessActions(core);
    }
  } else {
    // Balloon dummy: forces the core idle on behalf of the group.
    PSBOX_CHECK(group != nullptr);
    cpu_->SetCoreState(core, false, 0.0, kNoApp);
    c.schedule_trace.Set(sim_->Now(), static_cast<double>(kIdleApp));
    DisarmCompletion(core);
    ArmTick(core);
  }
}

void CpuScheduler::SwitchToIdle(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  c.current_task = nullptr;
  c.current_group = nullptr;
  c.last_update = sim_->Now();
  cpu_->SetCoreState(core, false, 0.0, kNoApp);
  c.schedule_trace.Set(sim_->Now(), static_cast<double>(kNoApp));
  DisarmTick(core);
  DisarmCompletion(core);
}

void CpuScheduler::ArmTick(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  if (c.tick_event != kInvalidEventId) {
    return;
  }
  c.tick_event = sim_->ScheduleAfter(config_.tick_period, [this, core] {
    cores_[static_cast<size_t>(core)].tick_event = kInvalidEventId;
    OnTick(core);
  });
}

void CpuScheduler::DisarmTick(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  if (c.tick_event != kInvalidEventId) {
    sim_->Cancel(c.tick_event);
    c.tick_event = kInvalidEventId;
  }
}

void CpuScheduler::ArmCompletion(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  PSBOX_CHECK(c.current_task != nullptr);
  const double speed = cpu_->SpeedFactor();
  const double remaining = static_cast<double>(c.current_task->remaining_compute());
  const auto delay = static_cast<DurationNs>(std::ceil(remaining / speed));
  const TimeNs when = sim_->Now() + std::max<DurationNs>(delay, 0);
  if (c.completion_event != kInvalidEventId) {
    // Frequency change or preemption churn: the completion closure is
    // unchanged, only its deadline moves — take the in-place re-arm path.
    c.completion_event = sim_->Reschedule(c.completion_event, when);
    PSBOX_DCHECK(c.completion_event != kInvalidEventId);
    return;
  }
  c.completion_event = sim_->ScheduleAt(when, [this, core] {
    cores_[static_cast<size_t>(core)].completion_event = kInvalidEventId;
    OnComputeComplete(core);
  });
}

void CpuScheduler::DisarmCompletion(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  if (c.completion_event != kInvalidEventId) {
    sim_->Cancel(c.completion_event);
    c.completion_event = kInvalidEventId;
  }
}

void CpuScheduler::OnComputeComplete(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  PSBOX_CHECK(c.current_task != nullptr);
  AccountCore(core);
  // Rounding may leave a nanosecond-scale residue; treat it as done.
  if (c.current_task->remaining_compute() <= 1) {
    c.current_task->set_remaining_compute(0);
  }
  ProcessActions(core);
}

void CpuScheduler::OnTick(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  AccountCore(core);
  if (c.balloon != nullptr) {
    TaskGroup* g = c.balloon;
    auto& pc = g->per_core_[static_cast<size_t>(core)];
    const double left = CoreLeftmostVruntime(core, g);
    if (left < pc.vruntime) {
      // The group no longer has the best credit here; continuing requires an
      // extra loan covering the deficit (§4.2 step 3).
      pc.loan = std::max(pc.loan, pc.vruntime - left);
      pc.wants_resched = true;
    } else {
      pc.wants_resched = false;
    }
    CheckBalloonEnd(g);
    if (cores_[static_cast<size_t>(core)].balloon != nullptr) {
      ArmTick(core);
    }
    return;
  }
  if (c.current_task == nullptr) {
    return;
  }
  // Periodic-balance preemption: consider not only the local leftmost but
  // any queued plain task anywhere (it may be stranded behind a long runner
  // on another core; PickNext will steal it). This is what rotates 3 tasks
  // over 2 cores into a fair 2/3 share each.
  double best_vr = kInf;
  if (!c.rq.empty()) {
    best_vr = EntityVruntime(*c.rq.begin(), core);
  }
  for (CoreId j = 0; j < num_cores(); ++j) {
    if (j == core) {
      continue;
    }
    for (const Entity& e : cores_[static_cast<size_t>(j)].rq) {
      if (!e.is_group()) {
        best_vr = std::min(best_vr, e.task->vruntime);
        break;  // ordered: first plain task is the minimum
      }
    }
  }
  const double lead = c.current_task->vruntime - best_vr;
  if (lead > static_cast<double>(config_.wakeup_granularity)) {
    Task* prev = c.current_task;
    prev->set_state(TaskState::kRunnable);
    DisarmCompletion(core);
    c.current_task = nullptr;
    c.current_group = nullptr;
    Enqueue(core, Entity{prev, nullptr});
    Schedule(core);
    return;
  }
  ArmTick(core);
}

// ---------------------------------------------------------------------------
// Behaviour actions
// ---------------------------------------------------------------------------

void CpuScheduler::ProcessActions(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  Task* t = c.current_task;
  PSBOX_CHECK(t != nullptr);
  TaskEnv env{kernel_, t, sim_->Now()};
  while (true) {
    if (t->remaining_compute() > 0) {
      cpu_->SetCoreState(core, true, t->intensity(), t->app());
      ArmCompletion(core);
      return;
    }
    env.now = sim_->Now();
    const Action a = t->behavior().NextAction(env);
    switch (a.kind) {
      case ActionKind::kCompute: {
        PSBOX_CHECK_GT(a.duration, 0);
        t->set_remaining_compute(a.duration);
        t->set_intensity(a.intensity);
        break;
      }
      case ActionKind::kSleep: {
        kernel_->ScheduleTaskWake(t, a.duration);
        BlockCurrent(core);
        return;
      }
      case ActionKind::kSubmitAccel: {
        kernel_->HandleSubmitAccel(t, a);
        t->set_remaining_compute(config_.syscall_overhead);
        break;
      }
      case ActionKind::kWaitAccel: {
        if (t->pending_accel_completions >= a.count) {
          t->pending_accel_completions -= a.count;
          break;
        }
        t->awaited_accel_completions = a.count;
        BlockCurrent(core);
        return;
      }
      case ActionKind::kSend: {
        kernel_->HandleSend(t, a);
        t->set_remaining_compute(config_.syscall_overhead);
        break;
      }
      case ActionKind::kWaitNet: {
        if (t->net_inflight == 0) {
          break;
        }
        t->waiting_net = true;
        BlockCurrent(core);
        return;
      }
      case ActionKind::kSubmitStorage: {
        kernel_->HandleSubmitStorage(t, a);
        t->set_remaining_compute(config_.syscall_overhead);
        break;
      }
      case ActionKind::kWaitStorage: {
        if (t->pending_storage_completions >= a.count) {
          t->pending_storage_completions -= a.count;
          break;
        }
        t->awaited_storage_completions = a.count;
        BlockCurrent(core);
        return;
      }
      case ActionKind::kExit: {
        ExitCurrent(core);
        return;
      }
    }
  }
}

void CpuScheduler::BlockCurrent(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  Task* t = c.current_task;
  PSBOX_CHECK(t != nullptr);
  AccountCore(core);
  DisarmCompletion(core);
  t->set_state(TaskState::kBlocked);
  c.current_task = nullptr;
  if (t->group != nullptr) {
    --t->group->runnable_tasks_;
  }
  AfterCurrentLeft(core);
}

void CpuScheduler::ExitCurrent(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  Task* t = c.current_task;
  PSBOX_CHECK(t != nullptr);
  AccountCore(core);
  DisarmCompletion(core);
  t->set_state(TaskState::kExited);
  c.current_task = nullptr;
  if (t->group != nullptr) {
    TaskGroup* g = t->group;
    --g->runnable_tasks_;
    auto it = std::find(g->members_.begin(), g->members_.end(), t);
    if (it != g->members_.end()) {
      g->members_.erase(it);
    }
    t->group = nullptr;
  }
  AfterCurrentLeft(core);
}

void CpuScheduler::AfterCurrentLeft(CoreId core) {
  Core& c = cores_[static_cast<size_t>(core)];
  if (c.balloon != nullptr) {
    TaskGroup* g = c.balloon;
    if (g->runnable_tasks_ == 0) {
      EndBalloon(g, /*group_blocked=*/true);
      return;
    }
    // Refill this slot from the group's local (or a surplus remote) list.
    SpreadGroupTasks(g);
    Core& core_ref = cores_[static_cast<size_t>(core)];
    if (core_ref.current_task == nullptr && core_ref.balloon == g) {
      auto& pc = g->per_core_[static_cast<size_t>(core)];
      Task* next = nullptr;
      if (!pc.runnable.empty()) {
        auto it = std::min_element(pc.runnable.begin(), pc.runnable.end(),
                                   [](const Task* a, const Task* b) {
                                     return a->vruntime < b->vruntime;
                                   });
        next = *it;
        pc.runnable.erase(it);
      }
      SwitchTo(core, next, g);  // a waiting group task, or the dummy
    }
    return;
  }
  c.current_group = nullptr;
  Schedule(core);
}

// ---------------------------------------------------------------------------
// psbox groups & coscheduling
// ---------------------------------------------------------------------------

TaskGroup* CpuScheduler::CreateGroup(AppId app, PsboxId psbox) {
  groups_.push_back(std::make_unique<TaskGroup>(app, psbox, num_cores()));
  return groups_.back().get();
}

void CpuScheduler::BindBox(AppId app, PsboxId box) {
  kernel_->RegisterCpuContext(box);
  group_by_box_[box] = CreateGroup(app, box);
}

void CpuScheduler::SetSandboxed(AppId app, PsboxId box) {
  EnterGroup(group_by_box_.at(box), kernel_->AppTasks(app));
}

void CpuScheduler::ClearSandboxed(AppId app) {
  // The group may already be disarmed if the app never ran sandboxed.
  TaskGroup* group = ActiveGroup(app);
  if (group != nullptr) {
    LeaveGroup(group);
  }
}

AppId CpuScheduler::balloon_owner() const {
  return active_balloon_ != nullptr ? active_balloon_->app() : kNoApp;
}

TimeNs CpuScheduler::TelemetryFloor(TimeNs desired) const {
  // The spatial balloon bills its whole coscheduling period when it ends, so
  // an in-progress one pins the rail floor at its start.
  if (active_balloon_ != nullptr) {
    return std::min(desired, active_balloon_->balloon_started_);
  }
  return desired;
}

void CpuScheduler::TrimTelemetry(TimeNs horizon) {
  for (Core& core : cores_) {
    core.schedule_trace.TrimBefore(horizon);
  }
  ResourceDomain::TrimTelemetry(horizon);
}

TaskGroup* CpuScheduler::ActiveGroup(AppId app) const {
  auto it = active_group_by_app_.find(app);
  return it == active_group_by_app_.end() ? nullptr : it->second;
}

void CpuScheduler::EnterGroup(TaskGroup* group, const std::vector<Task*>& tasks) {
  if (group->balloon_exclusive_) {
    return;  // rapid enter/leave/enter collapsed into one armed period
  }
  group->balloon_exclusive_ = true;
  active_group_by_app_[group->app()] = group;
  for (CoreId c = 0; c < num_cores(); ++c) {
    auto& pc = group->per_core_[static_cast<size_t>(c)];
    pc.vruntime = ClampVruntime(c, pc.vruntime);
    pc.loan = 0.0;
    pc.wants_resched = false;
  }
  for (Task* t : tasks) {
    if (t->state() == TaskState::kExited) {
      continue;
    }
    t->group = group;
    group->members_.push_back(t);
    const CoreId core = t->core >= 0 ? t->core : LeastLoadedCore();
    t->core = core;
    auto& pc = group->per_core_[static_cast<size_t>(core)];
    switch (t->state()) {
      case TaskState::kRunning: {
        Core& c = cores_[static_cast<size_t>(core)];
        PSBOX_CHECK(c.current_task == t);
        AccountCore(core);
        DisarmCompletion(core);
        t->set_state(TaskState::kRunnable);
        c.current_task = nullptr;
        c.current_group = nullptr;
        pc.runnable.push_back(t);
        ++group->runnable_tasks_;
        if (!pc.queued) {
          Enqueue(core, Entity{nullptr, group});
        }
        Schedule(core);
        break;
      }
      case TaskState::kRunnable: {
        if (IsQueued(core, Entity{t, nullptr})) {
          Dequeue(core, Entity{t, nullptr});
        }
        pc.runnable.push_back(t);
        ++group->runnable_tasks_;
        if (!pc.queued) {
          Enqueue(core, Entity{nullptr, group});
        }
        break;
      }
      case TaskState::kBlocked:
        break;  // joins the group's runnable list on wake
      case TaskState::kExited:
        break;
    }
  }
}

void CpuScheduler::LeaveGroup(TaskGroup* group) {
  if (!group->balloon_exclusive_) {
    return;  // never armed (or already left)
  }
  // Disarm first so the EndBalloon -> Schedule path cannot restart a
  // coscheduling period for this group.
  group->balloon_exclusive_ = false;
  active_group_by_app_.erase(group->app());
  if (group->coscheduling_) {
    EndBalloon(group, /*group_blocked=*/false);
  }
  // Remove the group entities from all runqueues and release the tasks back
  // into the normal scheduler.
  for (CoreId c = 0; c < num_cores(); ++c) {
    auto& pc = group->per_core_[static_cast<size_t>(c)];
    if (pc.queued) {
      Dequeue(c, Entity{nullptr, group});
    }
    for (Task* t : pc.runnable) {
      t->group = nullptr;
      t->vruntime = ClampVruntime(c, t->vruntime);
      Enqueue(c, Entity{t, nullptr});
      --group->runnable_tasks_;
    }
    pc.runnable.clear();
  }
  for (Task* t : group->members_) {
    t->group = nullptr;
  }
  group->members_.clear();
  PSBOX_CHECK_EQ(group->runnable_tasks_, 0);
  for (CoreId c = 0; c < num_cores(); ++c) {
    ReEvaluate(c);
  }
}

void CpuScheduler::SpreadGroupTasks(TaskGroup* group) {
  // Move surplus runnable tasks to balloon cores whose local lists are empty
  // ("coschedules tasks of App on all the cores", §4.2).
  for (CoreId c = 0; c < num_cores(); ++c) {
    Core& core = cores_[static_cast<size_t>(c)];
    if (core.balloon != group) {
      continue;
    }
    auto& pc = group->per_core_[static_cast<size_t>(c)];
    if (core.current_task != nullptr || !pc.runnable.empty()) {
      continue;
    }
    // Find a donor core with a surplus (>= 1 queued beyond its own slot).
    for (CoreId j = 0; j < num_cores(); ++j) {
      if (j == c) {
        continue;
      }
      auto& pj = group->per_core_[static_cast<size_t>(j)];
      if (pj.runnable.empty()) {
        continue;
      }
      Task* moved = pj.runnable.front();
      pj.runnable.erase(pj.runnable.begin());
      moved->core = c;
      pc.runnable.push_back(moved);
      break;
    }
  }
}

void CpuScheduler::StartBalloon(CoreId initiator, TaskGroup* group) {
  PSBOX_CHECK(group->balloon_exclusive_);
  PSBOX_CHECK(!group->coscheduling_);
  PSBOX_CHECK(active_balloon_ == nullptr);
  active_balloon_ = group;
  group->coscheduling_ = true;
  group->owned_notified_ = false;
  group->balloon_started_ = sim_->Now();
  RecordBalloonStart();
  RecordEdge(BalloonEdge::Kind::kRequest, group->app(), group->psbox());
  // Remove the group's entities from every runqueue: while coscheduled the
  // group is "on cpu" everywhere.
  for (CoreId c = 0; c < num_cores(); ++c) {
    auto& pc = group->per_core_[static_cast<size_t>(c)];
    if (pc.queued) {
      Dequeue(c, Entity{nullptr, group});
    }
    pc.loan = 0.0;
    pc.wants_resched = false;
  }
  // Arm the shootdown IPIs, the owned-notify, and the slice timer BEFORE
  // joining the initiator: switching the group in can end the balloon
  // synchronously (its only runnable task exits on the switched-in slice),
  // and EndBalloon can only cancel timers it already knows about. Arming
  // after the join would leave timers of an already-ended balloon pending —
  // untracked by any serialiser and orphaned once the group's next balloon
  // overwrites slice_timer_.
  // Task shootdown: IPIs to all other cores (§4.2 step 2).
  const TimeNs owned_from =
      num_cores() > 1 ? sim_->Now() + config_.ipi_delay : sim_->Now();
  for (CoreId j = 0; j < num_cores(); ++j) {
    if (j == initiator) {
      continue;
    }
    ++stats_.shootdown_ipis;
    ScheduleIpiAt(sim_->Now() + config_.ipi_delay, j, group);
  }
  ScheduleOwnedNotifyAt(owned_from, group);
  group->slice_timer_ = sim_->ScheduleAfter(config_.max_balloon_slice, [this, group] {
    group->slice_timer_ = kInvalidEventId;
    if (group->coscheduling_) {
      EndBalloon(group, /*group_blocked=*/false);
    }
  });
  JoinBalloon(initiator, group);
}

void CpuScheduler::JoinBalloon(CoreId core, TaskGroup* group) {
  Core& c = cores_[static_cast<size_t>(core)];
  PSBOX_CHECK(c.balloon == nullptr);
  AccountCore(core);
  DisarmCompletion(core);
  if (c.current_task != nullptr) {
    Task* prev = c.current_task;
    prev->set_state(TaskState::kRunnable);
    c.current_task = nullptr;
    c.current_group = nullptr;
    Enqueue(core, Entity{prev, nullptr});
  }
  // Initial loan: the credit the group entity lacked vs. the task that would
  // otherwise run on this core (§4.2 step 2).
  auto& pc = group->per_core_[static_cast<size_t>(core)];
  const double left = CoreLeftmostVruntime(core, group);
  if (left < pc.vruntime) {
    pc.loan = pc.vruntime - left;
  }
  c.balloon = group;
  SpreadGroupTasks(group);
  Task* next = nullptr;
  if (!pc.runnable.empty()) {
    auto it = std::min_element(
        pc.runnable.begin(), pc.runnable.end(),
        [](const Task* a, const Task* b) { return a->vruntime < b->vruntime; });
    next = *it;
    pc.runnable.erase(it);
  }
  SwitchTo(core, next, group);
}

void CpuScheduler::CheckBalloonEnd(TaskGroup* group) {
  if (!group->coscheduling_) {
    return;
  }
  // End when the group has lost the best credit on every coscheduled core
  // (§4.2 step 4). Cores not yet joined (IPI in flight) don't count.
  bool all_want = true;
  int joined = 0;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (cores_[static_cast<size_t>(c)].balloon != group) {
      continue;
    }
    ++joined;
    if (!group->per_core_[static_cast<size_t>(c)].wants_resched) {
      all_want = false;
    }
  }
  if (joined == num_cores() && all_want) {
    EndBalloon(group, /*group_blocked=*/false);
  }
}

void CpuScheduler::EndBalloon(TaskGroup* group, bool group_blocked) {
  PSBOX_CHECK(group->coscheduling_);
  // Account every coscheduled core before touching vruntimes.
  std::vector<CoreId> members;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (cores_[static_cast<size_t>(c)].balloon == group) {
      AccountCore(c);
      members.push_back(c);
    }
  }
  // Loan redistribution & repayment (§4.2 step 5): the group pays back the
  // loans accumulated during the coscheduling period; all entities evenly
  // split the total so the disadvantage spreads across all cores. This is
  // the charge for the exclusive (possibly under-utilised) occupation that
  // keeps co-running apps' long-term shares intact (Fig 8).
  double total_loan = 0.0;
  for (CoreId c = 0; c < num_cores(); ++c) {
    total_loan += group->per_core_[static_cast<size_t>(c)].loan;
  }
  const double share = total_loan / static_cast<double>(num_cores());
  for (CoreId c = 0; c < num_cores(); ++c) {
    auto& pc = group->per_core_[static_cast<size_t>(c)];
    if (config_.repay_loans) {
      pc.vruntime += share;
    }
    pc.loan = 0.0;
    pc.wants_resched = false;
  }
  group->coscheduling_ = false;
  PSBOX_CHECK(active_balloon_ == group);
  active_balloon_ = nullptr;
  RecordBalloonTime(sim_->Now() - group->balloon_started_);
  // Spatial balloons end in one step — no separate release/drain edge.
  RecordEdge(BalloonEdge::Kind::kFinish, group->app(), group->psbox());
  if (group->slice_timer_ != kInvalidEventId) {
    sim_->Cancel(group->slice_timer_);
    group->slice_timer_ = kInvalidEventId;
  }
  // A balloon can end before its shootdown IPIs / owned-notify fired (a tiny
  // group drains within ipi_delay). Cancel the stragglers: if the group
  // started another balloon within the delay, a stale IPI would join a core
  // it already holds and a stale notify would double-open the ownership
  // window.
  const int ended = GroupIndex(group);
  std::erase_if(ipi_events_, [&](const IpiEvent& e) {
    if (!sim_->IsPending(e.event)) {
      return true;
    }
    if (e.group != ended) {
      return false;
    }
    sim_->Cancel(e.event);
    return true;
  });
  std::erase_if(notify_events_, [&](const NotifyEvent& e) {
    if (!sim_->IsPending(e.event)) {
      return true;
    }
    if (e.group != ended) {
      return false;
    }
    sim_->Cancel(e.event);
    return true;
  });
  if (group->owned_notified_ && observer_ != nullptr) {
    NotifyBalloonOut(group->psbox(), sim_->Now());
    group->owned_notified_ = false;
  }
  // Tear down per-core occupancy; running group tasks go back to runnable.
  for (CoreId c : members) {
    Core& core = cores_[static_cast<size_t>(c)];
    if (core.current_task != nullptr) {
      Task* t = core.current_task;
      t->set_state(TaskState::kRunnable);
      group->per_core_[static_cast<size_t>(c)].runnable.push_back(t);
      core.current_task = nullptr;
    }
    core.balloon = nullptr;
    core.current_group = nullptr;
    DisarmCompletion(c);
  }
  // Requeue the group's entities wherever it still has runnable tasks.
  if (!group_blocked) {
    for (CoreId c = 0; c < num_cores(); ++c) {
      auto& pc = group->per_core_[static_cast<size_t>(c)];
      if (!pc.runnable.empty() && !pc.queued && group->balloon_exclusive_) {
        pc.vruntime = ClampVruntime(c, pc.vruntime);
        Enqueue(c, Entity{nullptr, group});
      }
    }
  } else {
    // All tasks blocked; entities stay dequeued until a wake re-adds them.
    for (CoreId c = 0; c < num_cores(); ++c) {
      PSBOX_CHECK(group->per_core_[static_cast<size_t>(c)].runnable.empty());
    }
  }
  for (CoreId c : members) {
    Schedule(c);
  }
}

// ---------------------------------------------------------------------------
// DVFS coupling & introspection
// ---------------------------------------------------------------------------

bool CpuScheduler::SetOpp(int opp_index) {
  if (opp_index == cpu_->opp_index()) {
    return true;
  }
  for (CoreId c = 0; c < num_cores(); ++c) {
    AccountCore(c);
  }
  const bool ok = cpu_->SetOppIndex(opp_index);
  for (CoreId c = 0; c < num_cores(); ++c) {
    Core& core = cores_[static_cast<size_t>(c)];
    if (core.current_task != nullptr && core.current_task->remaining_compute() > 0) {
      ArmCompletion(c);
    }
  }
  return ok;
}

CpuScheduler::UtilizationSample CpuScheduler::ConsumeUtilization() {
  UtilizationSample sample;
  const TimeNs now = sim_->Now();
  const DurationNs window = now - util_last_consume_;
  if (window <= 0) {
    return sample;
  }
  DurationNs busiest = 0;
  for (CoreId c = 0; c < num_cores(); ++c) {
    AccountCore(c);
    busiest = std::max(busiest, cores_[static_cast<size_t>(c)].busy_outside);
    cores_[static_cast<size_t>(c)].busy_outside = 0;
  }
  double ballooned_wall = 0.0;
  for (auto& [box, bu] : balloon_util_) {
    ballooned_wall += bu.wall;
    // Require a meaningful sample before judging the sandbox's demand.
    if (bu.wall >= 1.0 * kMillisecond) {
      DurationNs box_busiest = 0;
      for (DurationNs busy : bu.busy_per_core) {
        box_busiest = std::max(box_busiest, busy);
      }
      sample.per_box[box] =
          std::min(1.0, static_cast<double>(box_busiest) / bu.wall);
    }
    bu.wall = 0.0;
    std::fill(bu.busy_per_core.begin(), bu.busy_per_core.end(), 0);
  }
  const double global_window =
      std::max(1.0, static_cast<double>(window) - ballooned_wall);
  sample.global = std::min(1.0, static_cast<double>(busiest) / global_window);
  util_last_consume_ = now;
  return sample;
}

void CpuScheduler::RemoveFromGroupRunnable(Task* task) {
  TaskGroup* g = task->group;
  PSBOX_CHECK(g != nullptr);
  auto& pc = g->per_core_[static_cast<size_t>(task->core)];
  auto it = std::find(pc.runnable.begin(), pc.runnable.end(), task);
  PSBOX_CHECK(it != pc.runnable.end());
  pc.runnable.erase(it);
}

// ---------------------------------------------------------------------------
// Checkpoint/restore
// ---------------------------------------------------------------------------

int CpuScheduler::GroupIndex(const TaskGroup* group) const {
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (groups_[i].get() == group) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void CpuScheduler::ScheduleIdleRetryAt(TimeNs when, CoreId core) {
  std::erase_if(retry_events_,
                [this](const RetryEvent& e) { return !sim_->IsPending(e.event); });
  retry_events_.push_back(
      {core, sim_->ScheduleAt(when, [this, core] { ReEvaluate(core); })});
}

void CpuScheduler::ScheduleIpiAt(TimeNs when, CoreId core, TaskGroup* group) {
  std::erase_if(ipi_events_,
                [this](const IpiEvent& e) { return !sim_->IsPending(e.event); });
  ipi_events_.push_back({core, GroupIndex(group),
                         sim_->ScheduleAt(when, [this, core, group] {
                           if (group->coscheduling_) {
                             JoinBalloon(core, group);
                           }
                         })});
}

void CpuScheduler::ScheduleOwnedNotifyAt(TimeNs when, TaskGroup* group) {
  std::erase_if(notify_events_, [this](const NotifyEvent& e) {
    return !sim_->IsPending(e.event);
  });
  notify_events_.push_back(
      {GroupIndex(group), sim_->ScheduleAt(when, [this, group, when] {
         if (group->coscheduling_ && observer_ != nullptr) {
           group->owned_notified_ = true;
           NotifyBalloonIn(group->psbox(), when);
           RecordEdge(BalloonEdge::Kind::kServe, group->app(), group->psbox());
         }
       })});
}

void CpuScheduler::SaveState(SnapshotWriter& w) const {
  w.Section("scheduler");
  SaveDomainState(w);
  w.U64(groups_.size());
  for (const auto& gp : groups_) {
    const TaskGroup& g = *gp;
    w.I64(g.app_);
    w.I64(g.psbox_);
    w.Bool(g.balloon_exclusive_);
    w.Bool(g.coscheduling_);
    w.Bool(g.owned_notified_);
    w.I64(g.balloon_started_);
    w.I64(g.runnable_tasks_);
    w.U64(g.per_core_.size());
    for (const TaskGroup::PerCore& pc : g.per_core_) {
      w.F64(pc.vruntime);
      w.F64(pc.loan);
      w.Bool(pc.wants_resched);
      // `queued` is re-derived when the runqueues are rebuilt.
      w.U64(pc.runnable.size());
      for (const Task* t : pc.runnable) {
        w.U64(static_cast<uint64_t>(t->id()));
      }
    }
    w.U64(g.members_.size());
    for (const Task* t : g.members_) {
      w.U64(static_cast<uint64_t>(t->id()));
    }
    SaveEvent(w, *sim_, g.slice_timer_);
  }
  w.I64(active_balloon_ != nullptr ? GroupIndex(active_balloon_) : -1);
  w.U64(cores_.size());
  for (size_t ci = 0; ci < cores_.size(); ++ci) {
    const Core& c = cores_[ci];
    // Runqueue in order; entities are re-Enqueued on restore after all
    // vruntimes are back (the comparator reads them live).
    w.U64(c.rq.size());
    for (const Entity& e : c.rq) {
      w.Bool(e.is_group());
      w.U64(e.is_group() ? static_cast<uint64_t>(GroupIndex(e.group))
                         : static_cast<uint64_t>(e.task->id()));
    }
    w.U64(c.current_task != nullptr ? static_cast<uint64_t>(c.current_task->id())
                                    : 0);
    w.I64(c.current_group != nullptr ? GroupIndex(c.current_group) : -1);
    w.I64(c.balloon != nullptr ? GroupIndex(c.balloon) : -1);
    w.I64(c.last_update);
    w.F64(c.min_vruntime);
    w.I64(c.busy_outside);
    c.schedule_trace.SaveState(w);
    SaveEvent(w, *sim_, c.tick_event);
    SaveEvent(w, *sim_, c.completion_event);
  }
  w.U64(stats_.context_switches);
  w.U64(stats_.shootdown_ipis);
  w.U64(stats_.wakeups);
  w.I64(stats_.total_wake_latency);
  w.U64(stats_.steals);
  w.I64(util_last_consume_);
  w.U64(balloon_util_.size());
  for (const auto& [box, bu] : balloon_util_) {  // std::map: sorted already
    w.I64(box);
    w.U64(bu.busy_per_core.size());
    for (DurationNs busy : bu.busy_per_core) {
      w.I64(busy);
    }
    w.F64(bu.wall);
  }
  const std::map<TaskId, TimeNs> wakes(wake_time_.begin(), wake_time_.end());
  w.U64(wakes.size());
  for (const auto& [task_id, when] : wakes) {
    w.U64(static_cast<uint64_t>(task_id));
    w.I64(when);
  }
  uint64_t live = 0;
  for (const RetryEvent& e : retry_events_) {
    if (sim_->IsPending(e.event)) {
      ++live;
    }
  }
  w.U64(live);
  for (const RetryEvent& e : retry_events_) {
    if (sim_->IsPending(e.event)) {
      w.I64(e.core);
      SaveEvent(w, *sim_, e.event);
    }
  }
  live = 0;
  for (const IpiEvent& e : ipi_events_) {
    if (sim_->IsPending(e.event)) {
      ++live;
    }
  }
  w.U64(live);
  for (const IpiEvent& e : ipi_events_) {
    if (sim_->IsPending(e.event)) {
      w.I64(e.core);
      w.I64(e.group);
      SaveEvent(w, *sim_, e.event);
    }
  }
  live = 0;
  for (const NotifyEvent& e : notify_events_) {
    if (sim_->IsPending(e.event)) {
      ++live;
    }
  }
  w.U64(live);
  for (const NotifyEvent& e : notify_events_) {
    if (sim_->IsPending(e.event)) {
      w.I64(e.group);
      SaveEvent(w, *sim_, e.event);
    }
  }
}

void CpuScheduler::RestoreState(SnapshotReader& r, EventRearmer& rearmer) {
  if (!r.Section("scheduler")) {
    return;
  }
  RestoreDomainState(r, rearmer);
  const size_t num_groups = r.Count(32);
  if (r.ok() && num_groups != groups_.size()) {
    r.Fail("scheduler group count mismatch between snapshot and restored boxes");
    return;
  }
  active_group_by_app_.clear();
  for (size_t gi = 0; gi < num_groups && r.ok(); ++gi) {
    TaskGroup* g = groups_[gi].get();
    const AppId app = static_cast<AppId>(r.I64());
    const PsboxId box = static_cast<PsboxId>(r.I64());
    if (app != g->app_ || box != g->psbox_) {
      r.Fail("scheduler group identity mismatch in snapshot");
      return;
    }
    g->balloon_exclusive_ = r.Bool();
    g->coscheduling_ = r.Bool();
    g->owned_notified_ = r.Bool();
    g->balloon_started_ = r.I64();
    g->runnable_tasks_ = static_cast<int>(r.I64());
    const size_t num_pc = r.Count(17);
    if (r.ok() && num_pc != g->per_core_.size()) {
      r.Fail("scheduler group core count mismatch in snapshot");
      return;
    }
    for (size_t ci = 0; ci < num_pc && r.ok(); ++ci) {
      TaskGroup::PerCore& pc = g->per_core_[ci];
      pc.vruntime = r.F64();
      pc.loan = r.F64();
      pc.wants_resched = r.Bool();
      pc.queued = false;
      pc.runnable.clear();
      const size_t num_run = r.Count(8);
      for (size_t ti = 0; ti < num_run && r.ok(); ++ti) {
        pc.runnable.push_back(
            kernel_->TaskById(static_cast<TaskId>(r.U64())));
      }
    }
    g->members_.clear();
    const size_t num_members = r.Count(8);
    for (size_t ti = 0; ti < num_members && r.ok(); ++ti) {
      Task* t = kernel_->TaskById(static_cast<TaskId>(r.U64()));
      if (t == nullptr) {
        r.Fail("scheduler group member task missing from snapshot");
        return;
      }
      t->group = g;
      g->members_.push_back(t);
    }
    g->slice_timer_ = kInvalidEventId;
    LoadEvent(r, rearmer, [this, g](TimeNs when) {
      g->slice_timer_ = sim_->ScheduleAt(when, [this, g] {
        g->slice_timer_ = kInvalidEventId;
        if (g->coscheduling_) {
          EndBalloon(g, /*group_blocked=*/false);
        }
      });
    });
    if (g->balloon_exclusive_) {
      active_group_by_app_[g->app_] = g;
    }
  }
  const int64_t balloon_idx = r.I64();
  active_balloon_ =
      balloon_idx >= 0 && balloon_idx < static_cast<int64_t>(groups_.size())
          ? groups_[static_cast<size_t>(balloon_idx)].get()
          : nullptr;
  const size_t num_cores_saved = r.Count(64);
  if (r.ok() && num_cores_saved != cores_.size()) {
    r.Fail("scheduler core count mismatch between snapshot and config");
    return;
  }
  for (size_t ci = 0; ci < num_cores_saved && r.ok(); ++ci) {
    const CoreId core = static_cast<CoreId>(ci);
    Core& c = cores_[ci];
    c.rq.clear();
    const size_t num_rq = r.Count(9);
    for (size_t ei = 0; ei < num_rq && r.ok(); ++ei) {
      const bool is_group = r.Bool();
      const uint64_t id = r.U64();
      if (is_group) {
        if (id >= groups_.size()) {
          r.Fail("scheduler runqueue references unknown group");
          return;
        }
        Enqueue(core, Entity{nullptr, groups_[id].get()});
      } else {
        Task* t = kernel_->TaskById(static_cast<TaskId>(id));
        if (t == nullptr) {
          r.Fail("scheduler runqueue references unknown task");
          return;
        }
        Enqueue(core, Entity{t, nullptr});
      }
    }
    const uint64_t cur_task = r.U64();
    c.current_task =
        cur_task != 0 ? kernel_->TaskById(static_cast<TaskId>(cur_task))
                      : nullptr;
    const int64_t cur_group = r.I64();
    c.current_group =
        cur_group >= 0 && cur_group < static_cast<int64_t>(groups_.size())
            ? groups_[static_cast<size_t>(cur_group)].get()
            : nullptr;
    const int64_t balloon = r.I64();
    c.balloon = balloon >= 0 && balloon < static_cast<int64_t>(groups_.size())
                    ? groups_[static_cast<size_t>(balloon)].get()
                    : nullptr;
    c.last_update = r.I64();
    c.min_vruntime = r.F64();
    c.busy_outside = r.I64();
    c.schedule_trace.RestoreState(r);
    c.tick_event = kInvalidEventId;
    c.completion_event = kInvalidEventId;
    LoadEvent(r, rearmer, [this, core](TimeNs when) {
      cores_[static_cast<size_t>(core)].tick_event =
          sim_->ScheduleAt(when, [this, core] {
            cores_[static_cast<size_t>(core)].tick_event = kInvalidEventId;
            OnTick(core);
          });
    });
    LoadEvent(r, rearmer, [this, core](TimeNs when) {
      cores_[static_cast<size_t>(core)].completion_event =
          sim_->ScheduleAt(when, [this, core] {
            cores_[static_cast<size_t>(core)].completion_event =
                kInvalidEventId;
            OnComputeComplete(core);
          });
    });
  }
  stats_ = Stats{};
  stats_.context_switches = r.U64();
  stats_.shootdown_ipis = r.U64();
  stats_.wakeups = r.U64();
  stats_.total_wake_latency = r.I64();
  stats_.steals = r.U64();
  util_last_consume_ = r.I64();
  balloon_util_.clear();
  const size_t num_bu = r.Count(24);
  for (size_t i = 0; i < num_bu && r.ok(); ++i) {
    const PsboxId box = static_cast<PsboxId>(r.I64());
    BalloonUtil& bu = balloon_util_[box];
    const size_t n = r.Count(8);
    for (size_t j = 0; j < n && r.ok(); ++j) {
      bu.busy_per_core.push_back(r.I64());
    }
    bu.wall = r.F64();
  }
  wake_time_.clear();
  const size_t num_wakes = r.Count(16);
  for (size_t i = 0; i < num_wakes && r.ok(); ++i) {
    const TaskId task_id = static_cast<TaskId>(r.U64());
    wake_time_[task_id] = r.I64();
  }
  retry_events_.clear();
  ipi_events_.clear();
  notify_events_.clear();
  const size_t num_retry = r.Count(18);
  for (size_t i = 0; i < num_retry && r.ok(); ++i) {
    const CoreId core = static_cast<CoreId>(r.I64());
    LoadEvent(r, rearmer,
              [this, core](TimeNs when) { ScheduleIdleRetryAt(when, core); });
  }
  const size_t num_ipi = r.Count(26);
  for (size_t i = 0; i < num_ipi && r.ok(); ++i) {
    const CoreId core = static_cast<CoreId>(r.I64());
    const int64_t gidx = r.I64();
    if (gidx < 0 || gidx >= static_cast<int64_t>(groups_.size())) {
      r.Fail("scheduler IPI event references unknown group");
      return;
    }
    TaskGroup* g = groups_[static_cast<size_t>(gidx)].get();
    LoadEvent(r, rearmer,
              [this, core, g](TimeNs when) { ScheduleIpiAt(when, core, g); });
  }
  const size_t num_notify = r.Count(18);
  for (size_t i = 0; i < num_notify && r.ok(); ++i) {
    const int64_t gidx = r.I64();
    if (gidx < 0 || gidx >= static_cast<int64_t>(groups_.size())) {
      r.Fail("scheduler notify event references unknown group");
      return;
    }
    TaskGroup* g = groups_[static_cast<size_t>(gidx)].get();
    LoadEvent(r, rearmer,
              [this, g](TimeNs when) { ScheduleOwnedNotifyAt(when, g); });
  }
}

}  // namespace psbox
