#include "src/kernel/cpufreq_governor.h"

#include <algorithm>
#include <map>

#include "src/base/check.h"
#include "src/snapshot/event_rearmer.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

CpufreqGovernor::CpufreqGovernor(Simulator* sim, CpuScheduler* sched, CpuDevice* cpu,
                                 GovernorConfig config)
    : sim_(sim), sched_(sched), cpu_(cpu), config_(config) {
  context_opp_[kGlobalContext] = 0;
}

void CpufreqGovernor::Start() {
  sample_event_ = sim_->ScheduleAfter(config_.sample_period, [this] { OnSample(); });
}

int CpufreqGovernor::NextOpp(int opp, double util) const {
  if (util > config_.up_threshold) {
    return cpu_->num_opps() - 1;  // ondemand: jump to max under load
  }
  if (util < config_.down_threshold) {
    return std::max(0, opp - 1);  // decay one step at a time (lingering state)
  }
  return opp;
}

void CpufreqGovernor::OnSample() {
  sample_event_ = kInvalidEventId;
  const CpuScheduler::UtilizationSample sample = sched_->ConsumeUtilization();
  // The currently-applied context's stored OPP follows the hardware.
  context_opp_[current_context_] = cpu_->opp_index();

  // Global context: driven by the utilisation outside any balloon.
  context_opp_[kGlobalContext] =
      NextOpp(context_opp_[kGlobalContext], sample.global);

  // Each sandbox context: driven by the utilisation inside its balloons.
  for (const auto& [box, util] : sample.per_box) {
    auto it = context_of_box_.find(box);
    if (it == context_of_box_.end()) {
      continue;
    }
    context_opp_[it->second] = NextOpp(context_opp_[it->second], util);
  }

  ApplyOpp(context_opp_[current_context_]);
  sample_event_ = sim_->ScheduleAfter(config_.sample_period, [this] { OnSample(); });
}

void CpufreqGovernor::ApplyOpp(int opp) {
  if (sched_->SetOpp(opp)) {
    return;
  }
  // Hardware transition failure: the cluster is still at the old OPP. Retry
  // once shortly; the next sample re-reads the hardware and self-heals even
  // if the retry fails too.
  ++transition_retries_;
  if (retry_event_ != kInvalidEventId) {
    return;
  }
  retry_event_ = sim_->ScheduleAfter(config_.transition_retry_delay, [this] {
    retry_event_ = kInvalidEventId;
    sched_->SetOpp(context_opp_[current_context_]);
  });
}

int CpufreqGovernor::ContextForBox(PsboxId box) {
  auto it = context_of_box_.find(box);
  if (it != context_of_box_.end()) {
    return it->second;
  }
  const int ctx = next_context_++;
  context_opp_[ctx] = 0;
  context_of_box_[box] = ctx;
  return ctx;
}

void CpufreqGovernor::SaveState(SnapshotWriter& w) const {
  w.Section("governor");
  // unordered_map contents in sorted-key order for a stable byte stream.
  const std::map<int, int> opps(context_opp_.begin(), context_opp_.end());
  w.U64(opps.size());
  for (const auto& [ctx, opp] : opps) {
    w.U32(static_cast<uint32_t>(ctx));
    w.U32(static_cast<uint32_t>(opp));
  }
  const std::map<PsboxId, int> boxes(context_of_box_.begin(), context_of_box_.end());
  w.U64(boxes.size());
  for (const auto& [box, ctx] : boxes) {
    w.I64(box);
    w.U32(static_cast<uint32_t>(ctx));
  }
  w.U32(static_cast<uint32_t>(next_context_));
  w.U32(static_cast<uint32_t>(current_context_));
  w.U64(transition_retries_);
  SaveEvent(w, *sim_, sample_event_);
  SaveEvent(w, *sim_, retry_event_);
}

void CpufreqGovernor::RestoreState(SnapshotReader& r, EventRearmer& rearmer) {
  if (!r.Section("governor")) {
    return;
  }
  context_opp_.clear();
  const size_t num_ctx = r.Count(8);
  for (size_t i = 0; i < num_ctx; ++i) {
    const int ctx = static_cast<int>(r.U32());
    context_opp_[ctx] = static_cast<int>(r.U32());
  }
  context_of_box_.clear();
  const size_t num_boxes = r.Count(12);
  for (size_t i = 0; i < num_boxes; ++i) {
    const PsboxId box = static_cast<PsboxId>(r.I64());
    context_of_box_[box] = static_cast<int>(r.U32());
  }
  next_context_ = static_cast<int>(r.U32());
  current_context_ = static_cast<int>(r.U32());
  transition_retries_ = r.U64();
  sample_event_ = kInvalidEventId;
  retry_event_ = kInvalidEventId;
  LoadEvent(r, rearmer, [this](TimeNs when) {
    sample_event_ = sim_->ScheduleAt(when, [this] { OnSample(); });
  });
  LoadEvent(r, rearmer, [this](TimeNs when) {
    retry_event_ = sim_->ScheduleAt(when, [this] {
      retry_event_ = kInvalidEventId;
      sched_->SetOpp(context_opp_[current_context_]);
    });
  });
}

void CpufreqGovernor::SwitchContext(int ctx) {
  PSBOX_CHECK(context_opp_.count(ctx) > 0);
  if (ctx == current_context_) {
    return;
  }
  context_opp_[current_context_] = cpu_->opp_index();
  current_context_ = ctx;
  // A failed transition at a balloon edge retries immediately: the context
  // switch must not leak the previous occupant's OPP into the sandbox for a
  // whole sample period.
  if (!sched_->SetOpp(context_opp_[ctx])) {
    ++transition_retries_;
    sched_->SetOpp(context_opp_[ctx]);
  }
}

}  // namespace psbox
