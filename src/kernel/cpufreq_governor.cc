#include "src/kernel/cpufreq_governor.h"

#include <algorithm>

#include "src/base/check.h"

namespace psbox {

CpufreqGovernor::CpufreqGovernor(Simulator* sim, CpuScheduler* sched, CpuDevice* cpu,
                                 GovernorConfig config)
    : sim_(sim), sched_(sched), cpu_(cpu), config_(config) {
  context_opp_[kGlobalContext] = 0;
}

void CpufreqGovernor::Start() {
  sim_->ScheduleAfter(config_.sample_period, [this] { OnSample(); });
}

int CpufreqGovernor::NextOpp(int opp, double util) const {
  if (util > config_.up_threshold) {
    return cpu_->num_opps() - 1;  // ondemand: jump to max under load
  }
  if (util < config_.down_threshold) {
    return std::max(0, opp - 1);  // decay one step at a time (lingering state)
  }
  return opp;
}

void CpufreqGovernor::OnSample() {
  const CpuScheduler::UtilizationSample sample = sched_->ConsumeUtilization();
  // The currently-applied context's stored OPP follows the hardware.
  context_opp_[current_context_] = cpu_->opp_index();

  // Global context: driven by the utilisation outside any balloon.
  context_opp_[kGlobalContext] =
      NextOpp(context_opp_[kGlobalContext], sample.global);

  // Each sandbox context: driven by the utilisation inside its balloons.
  for (const auto& [box, util] : sample.per_box) {
    auto it = context_of_box_.find(box);
    if (it == context_of_box_.end()) {
      continue;
    }
    context_opp_[it->second] = NextOpp(context_opp_[it->second], util);
  }

  ApplyOpp(context_opp_[current_context_]);
  sim_->ScheduleAfter(config_.sample_period, [this] { OnSample(); });
}

void CpufreqGovernor::ApplyOpp(int opp) {
  if (sched_->SetOpp(opp)) {
    return;
  }
  // Hardware transition failure: the cluster is still at the old OPP. Retry
  // once shortly; the next sample re-reads the hardware and self-heals even
  // if the retry fails too.
  ++transition_retries_;
  if (retry_event_ != kInvalidEventId) {
    return;
  }
  retry_event_ = sim_->ScheduleAfter(config_.transition_retry_delay, [this] {
    retry_event_ = kInvalidEventId;
    sched_->SetOpp(context_opp_[current_context_]);
  });
}

int CpufreqGovernor::ContextForBox(PsboxId box) {
  auto it = context_of_box_.find(box);
  if (it != context_of_box_.end()) {
    return it->second;
  }
  const int ctx = next_context_++;
  context_opp_[ctx] = 0;
  context_of_box_[box] = ctx;
  return ctx;
}

void CpufreqGovernor::SwitchContext(int ctx) {
  PSBOX_CHECK(context_opp_.count(ctx) > 0);
  if (ctx == current_context_) {
    return;
  }
  context_opp_[current_context_] = cpu_->opp_index();
  current_context_ = ctx;
  // A failed transition at a balloon edge retries immediately: the context
  // switch must not leak the previous occupant's OPP into the sandbox for a
  // whole sample period.
  if (!sched_->SetOpp(context_opp_[ctx])) {
    ++transition_retries_;
    sched_->SetOpp(context_opp_[ctx]);
  }
}

}  // namespace psbox
