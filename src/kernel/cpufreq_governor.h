// Ondemand-style cpufreq governor with per-psbox power-state contexts.
//
// Baseline behaviour follows Linux ondemand: sample utilisation on a fixed
// period, jump to the top OPP under load, step down gradually when idle.
// The gradual decay is what leaves *lingering power state* behind a busy
// workload (Fig 3c).
//
// psbox extension (§4.1 power state virtualisation): the governor keeps one
// frequency context per psbox plus the global context. At a CPU balloon edge
// the kernel switches contexts — the hardware OPP is saved into the outgoing
// context and restored from the incoming one, so a sandboxed app neither
// observes other apps' DVFS residue nor leaves its own behind. Each
// context's OPP is driven by the utilisation measured while that context
// owned the hardware (inside the sandbox's balloons for psbox contexts,
// outside any balloon for the global one).

#ifndef SRC_KERNEL_CPUFREQ_GOVERNOR_H_
#define SRC_KERNEL_CPUFREQ_GOVERNOR_H_

#include <unordered_map>

#include "src/kernel/cpu_scheduler.h"

namespace psbox {

struct GovernorConfig {
  DurationNs sample_period = 20 * kMillisecond;
  double up_threshold = 0.70;
  double down_threshold = 0.30;
  // When a hardware frequency transition fails (fault injection), retry once
  // this far into the sample period; the next regular sample self-heals
  // anyway since it re-reads the hardware OPP.
  DurationNs transition_retry_delay = 5 * kMillisecond;
};

class CpufreqGovernor {
 public:
  // Context 0 is the global (unsandboxed) context.
  static constexpr int kGlobalContext = 0;

  CpufreqGovernor(Simulator* sim, CpuScheduler* sched, CpuDevice* cpu,
                  GovernorConfig config);

  // Arms the periodic sampling; call once after construction.
  void Start();

  // Creates (or returns) the frequency context virtualising power state for
  // |box| (initially at the lowest OPP).
  int ContextForBox(PsboxId box);

  // Saves the hardware OPP into the current context and applies |ctx|'s.
  void SwitchContext(int ctx);
  int current_context() const { return current_context_; }

  const GovernorConfig& config() const { return config_; }
  // Frequency transitions that failed at the hardware and were retried.
  uint64_t transition_retries() const { return transition_retries_; }

  // Snapshot support: context table, box bindings, and the sample/retry
  // timers (re-armed through |rearmer|).
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r, EventRearmer& rearmer);

 private:
  void OnSample();
  int NextOpp(int opp, double util) const;
  // Applies |opp|; on hardware failure schedules a one-shot retry.
  void ApplyOpp(int opp);

  Simulator* sim_;
  CpuScheduler* sched_;
  CpuDevice* cpu_;
  GovernorConfig config_;
  std::unordered_map<int, int> context_opp_;
  std::unordered_map<PsboxId, int> context_of_box_;
  int next_context_ = 1;
  int current_context_ = kGlobalContext;
  uint64_t transition_retries_ = 0;
  EventId sample_event_ = kInvalidEventId;
  EventId retry_event_ = kInvalidEventId;
};

}  // namespace psbox

#endif  // SRC_KERNEL_CPUFREQ_GOVERNOR_H_
