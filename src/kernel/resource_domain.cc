#include "src/kernel/resource_domain.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/snapshot/event_rearmer.h"
#include "src/snapshot/snapshot_io.h"

namespace psbox {

const char* BalloonEdgeKindName(BalloonEdge::Kind kind) {
  switch (kind) {
    case BalloonEdge::Kind::kRequest:
      return "request";
    case BalloonEdge::Kind::kServe:
      return "serve";
    case BalloonEdge::Kind::kRelease:
      return "release";
    case BalloonEdge::Kind::kFinish:
      return "finish";
    case BalloonEdge::Kind::kCancel:
      return "cancel";
    case BalloonEdge::Kind::kAbort:
      return "abort";
  }
  return "?";
}

ResourceDomain::ResourceDomain(Simulator* sim, HwComponent kind,
                               DurationNs drain_timeout)
    : sim_(sim), kind_(kind) {
  if (drain_timeout > 0) {
    drain_watchdog_ = std::make_unique<Watchdog>(sim_, drain_timeout, [this] {
      if (phase_ == BalloonPhase::kDrainOthers ||
          phase_ == BalloonPhase::kDrainOwner) {
        OnDrainTimeout();
      }
    });
  }
}

ResourceDomain::~ResourceDomain() = default;

Watts ResourceDomain::DirectPowerAt(AppId app, TimeNs t) const {
  (void)app;
  (void)t;
  CheckFail(__FILE__, __LINE__,
            std::string(name()) + " is balloon-metered, not direct-metered");
}

Joules ResourceDomain::DirectEnergyOver(AppId app, TimeNs t0, TimeNs t1) const {
  (void)app;
  (void)t0;
  (void)t1;
  CheckFail(__FILE__, __LINE__,
            std::string(name()) + " is balloon-metered, not direct-metered");
}

void ResourceDomain::RecordEdge(BalloonEdge::Kind kind, AppId app, PsboxId box) {
  timeline_.push_back({sim_->Now(), kind, app, box});
}

TimeNs ResourceDomain::TelemetryFloor(TimeNs desired) const {
  // An open accounting window (balloon in flight) will be billed from
  // balloon_start_; the rail must keep that span resolvable.
  if (phase_ != BalloonPhase::kIdle) {
    return std::min(desired, balloon_start_);
  }
  return desired;
}

void ResourceDomain::TrimTelemetry(TimeNs horizon) {
  size_t drop = 0;
  while (drop < timeline_.size() && timeline_[drop].when < horizon) {
    ++drop;
  }
  if (drop > 0) {
    timeline_.erase(timeline_.begin(), timeline_.begin() + static_cast<ptrdiff_t>(drop));
    trimmed_edges_ += drop;
  }
}

void ResourceDomain::SaveDomainState(SnapshotWriter& w) const {
  w.Section("domain");
  w.U8(static_cast<uint8_t>(phase_));
  w.I64(owner_);
  w.I64(owner_box_);
  w.I64(balloon_start_);
  w.I64(drain_enter_);
  w.Bool(notified_);
  w.U64(dstats_.balloons);
  w.I64(dstats_.total_balloon_time);
  w.U64(dstats_.aborted);
  w.U64(dstats_.recoveries);
  w.U64(timeline_.size());
  for (const BalloonEdge& e : timeline_) {
    w.I64(e.when);
    w.U8(static_cast<uint8_t>(e.kind));
    w.I64(e.app);
    w.I64(e.box);
  }
  w.U64(trimmed_edges_);
  if (drain_watchdog_ != nullptr) {
    w.U64(drain_watchdog_->fires());
    SaveEvent(w, *sim_, drain_watchdog_->event());
  }
}

void ResourceDomain::RestoreDomainState(SnapshotReader& r, EventRearmer& rearmer) {
  if (!r.Section("domain")) {
    return;
  }
  phase_ = static_cast<BalloonPhase>(r.U8());
  owner_ = static_cast<AppId>(r.I64());
  owner_box_ = static_cast<PsboxId>(r.I64());
  balloon_start_ = r.I64();
  drain_enter_ = r.I64();
  notified_ = r.Bool();
  dstats_.balloons = r.U64();
  dstats_.total_balloon_time = r.I64();
  dstats_.aborted = r.U64();
  dstats_.recoveries = r.U64();
  timeline_.clear();
  const size_t n = r.Count(4);
  for (size_t i = 0; i < n; ++i) {
    BalloonEdge e;
    e.when = r.I64();
    e.kind = static_cast<BalloonEdge::Kind>(r.U8());
    e.app = static_cast<AppId>(r.I64());
    e.box = static_cast<PsboxId>(r.I64());
    timeline_.push_back(e);
  }
  trimmed_edges_ = r.U64();
  if (drain_watchdog_ != nullptr) {
    drain_watchdog_->set_fires(r.U64());
    LoadEvent(r, rearmer,
              [this](TimeNs when) { drain_watchdog_->RearmAt(when); });
  }
}

void ResourceDomain::NotifyBalloonIn(PsboxId box, TimeNs when) {
  if (observer_ != nullptr) {
    observer_->OnBalloonIn(box, kind_, when);
  }
}

void ResourceDomain::NotifyBalloonOut(PsboxId box, TimeNs when) {
  if (observer_ != nullptr) {
    observer_->OnBalloonOut(box, kind_, when);
  }
}

void ResourceDomain::BalloonRequest(AppId app, PsboxId box) {
  PSBOX_CHECK(phase_ == BalloonPhase::kIdle);
  PSBOX_CHECK(app != kNoApp);
  owner_ = app;
  owner_box_ = box;
  phase_ = BalloonPhase::kDrainOthers;
  balloon_start_ = sim_->Now();
  drain_enter_ = sim_->Now();
  if (drain_watchdog_ != nullptr) {
    drain_watchdog_->Arm();
  }
  RecordBalloonStart();
  RecordEdge(BalloonEdge::Kind::kRequest, owner_, owner_box_);
}

void ResourceDomain::BalloonServe() {
  PSBOX_CHECK(phase_ == BalloonPhase::kDrainOthers);
  if (drain_watchdog_ != nullptr) {
    drain_watchdog_->Disarm();
  }
  notified_ = true;
  NotifyBalloonIn(owner_box_, sim_->Now());
  RecordEdge(BalloonEdge::Kind::kServe, owner_, owner_box_);
  phase_ = BalloonPhase::kServe;
}

void ResourceDomain::BalloonRelease() {
  PSBOX_CHECK(phase_ == BalloonPhase::kServe);
  phase_ = BalloonPhase::kDrainOwner;
  RecordEdge(BalloonEdge::Kind::kRelease, owner_, owner_box_);
  drain_enter_ = sim_->Now();
  if (drain_watchdog_ != nullptr) {
    drain_watchdog_->Arm();
  }
}

DurationNs ResourceDomain::BalloonFinish() {
  PSBOX_CHECK(phase_ == BalloonPhase::kDrainOwner);
  if (drain_watchdog_ != nullptr) {
    drain_watchdog_->Disarm();
  }
  const DurationNs held = sim_->Now() - balloon_start_;
  RecordBalloonTime(held);
  RecordEdge(BalloonEdge::Kind::kFinish, owner_, owner_box_);
  if (notified_) {
    NotifyBalloonOut(owner_box_, sim_->Now());
  }
  notified_ = false;
  owner_ = kNoApp;
  owner_box_ = kNoPsbox;
  drain_enter_ = -1;
  phase_ = BalloonPhase::kIdle;
  return held;
}

void ResourceDomain::BalloonCancel() {
  PSBOX_CHECK(phase_ == BalloonPhase::kDrainOthers);
  if (drain_watchdog_ != nullptr) {
    drain_watchdog_->Disarm();
  }
  RecordEdge(BalloonEdge::Kind::kCancel, owner_, owner_box_);
  notified_ = false;
  owner_ = kNoApp;
  owner_box_ = kNoPsbox;
  drain_enter_ = -1;
  phase_ = BalloonPhase::kIdle;
}

DurationNs ResourceDomain::BalloonAbort() {
  PSBOX_CHECK(phase_ == BalloonPhase::kDrainOthers ||
              phase_ == BalloonPhase::kDrainOwner);
  if (drain_watchdog_ != nullptr) {
    drain_watchdog_->Disarm();
  }
  // A balloon that never reached ownership bills nothing; one aborted in its
  // owner drain bills only the service actually rendered — the stuck drain
  // is the hardware's fault, not the sandbox's.
  const DurationNs served =
      phase_ == BalloonPhase::kDrainOwner ? BalloonServed() : 0;
  RecordBalloonTime(served);
  RecordAbort();
  RecordEdge(BalloonEdge::Kind::kAbort, owner_, owner_box_);
  if (notified_) {
    NotifyBalloonOut(owner_box_, sim_->Now());
  }
  notified_ = false;
  owner_ = kNoApp;
  owner_box_ = kNoPsbox;
  drain_enter_ = -1;
  phase_ = BalloonPhase::kIdle;
  return served;
}

}  // namespace psbox
