// Multicore CPU scheduler: a CFS-style fair scheduler extended for psbox.
//
// Baseline behaviour mirrors the Linux completely fair scheduler: one
// scheduler instance per core, each with a runqueue ordered by virtual
// runtime; 1 ms ticks drive preemption; idle cores steal lagging runnable
// tasks so long-run fairness holds across cores.
//
// psbox extensions (§4.2 "Multicore CPU"):
//  * each power sandbox is encapsulated in a task group (a cgroup): one
//    scheduling entity per core holding the group's local tasks;
//  * when a group entity with an active *spatial balloon* is picked on one
//    core, the scheduler coschedules the group on ALL cores via task
//    shootdown (modelled IPIs with a configurable delay). Cores with no
//    runnable group task run a dummy task that forces them idle;
//  * every cycle of the coscheduling period — dummy-idle cycles included —
//    is billed to the group (charging the lost sharing opportunity);
//  * a *scheduling loan* is taken per core when the group is force-picked
//    without the best credit; extra loans accrue while it keeps occupying a
//    contended core. When the balloon ends, the accumulated loans are
//    redistributed evenly across the group's per-core entities, spreading
//    the repayment disadvantage over all cores (long-term fairness).

#ifndef SRC_KERNEL_CPU_SCHEDULER_H_
#define SRC_KERNEL_CPU_SCHEDULER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/base/types.h"
#include "src/hw/cpu_device.h"
#include "src/kernel/resource_domain.h"
#include "src/kernel/task.h"
#include "src/sim/simulator.h"

namespace psbox {

struct SchedConfig {
  DurationNs tick_period = 1 * kMillisecond;
  // A runnable entity preempts the current one only when it leads by more
  // than this much vruntime.
  DurationNs wakeup_granularity = 1 * kMillisecond;
  // Cross-core steal threshold: an idle pick steals a queued remote task
  // lagging the local leftmost by more than this.
  DurationNs steal_threshold = 2 * kMillisecond;
  // Latency of a task-shootdown IPI (start/end of coscheduling periods).
  DurationNs ipi_delay = 20 * kMicrosecond;
  // Hard cap on one coscheduling period.
  DurationNs max_balloon_slice = 6 * kMillisecond;
  // Implicit CPU cost of each non-blocking kernel call (submit/send).
  DurationNs syscall_overhead = 3 * kMicrosecond;
  // Ablation knobs (DESIGN.md §4). Both default to the paper's design.
  // When false, dummy-idle cycles inside balloons are not billed to the
  // sandboxed group (naive coscheduling).
  bool bill_balloon_occupancy = true;
  // When false, accumulated scheduling loans are forgiven at balloon end.
  bool repay_loans = true;
};

class CpuScheduler;

// A task group (cgroup): the scheduler-side body of one psbox (§5). Has one
// scheduling entity per core; `balloon_exclusive` marks the psbox spatial
// balloon as armed (the app is "inside" its sandbox).
class TaskGroup {
 public:
  TaskGroup(AppId app, PsboxId psbox, int num_cores)
      : app_(app), psbox_(psbox), per_core_(static_cast<size_t>(num_cores)) {}

  AppId app() const { return app_; }
  PsboxId psbox() const { return psbox_; }

 private:
  friend class CpuScheduler;

  struct PerCore {
    double vruntime = 0.0;
    double loan = 0.0;
    bool queued = false;        // entity present in the core runqueue
    bool wants_resched = false; // lost best-credit during coscheduling
    std::vector<Task*> runnable;
  };

  AppId app_;
  PsboxId psbox_;
  std::vector<PerCore> per_core_;
  std::vector<Task*> members_;
  bool balloon_exclusive_ = false;
  bool coscheduling_ = false;
  bool owned_notified_ = false;
  TimeNs balloon_started_ = 0;
  EventId slice_timer_ = kInvalidEventId;
  int runnable_tasks_ = 0;
};

// The spatial CPU domain: unlike the temporal domains it has its own
// coscheduling lifecycle (balloons start whenever the group entity is
// picked), so it drives the ResourceDomain primitives directly instead of
// the five-phase machine.
class CpuScheduler : public ResourceDomain {
 public:
  CpuScheduler(Simulator* sim, CpuDevice* cpu, SchedConfig config, Kernel* kernel);
  ~CpuScheduler() override;

  // --- task lifecycle -------------------------------------------------
  // Adds |task| (owned by the kernel) to the scheduler; placed on the least
  // loaded core unless |core| >= 0.
  void AddTask(Task* task, CoreId core = -1);
  // Wakes a blocked task (timer/IRQ path).
  void WakeTask(Task* task);
  // Asks the scheduler to re-evaluate |core| at the next opportunity.
  void Resched(CoreId core);

  // --- psbox task-group extension (ResourceDomain) ----------------------
  // Creates the psbox's task group and CPU frequency context.
  void BindBox(AppId app, PsboxId box) override;
  // Moves the app's tasks into the box's group and arms the spatial balloon.
  void SetSandboxed(AppId app, PsboxId box) override;
  // Disarms the balloon and moves the tasks back to the normal runqueues.
  void ClearSandboxed(AppId app) override;
  // App of the in-progress coscheduling period (kNoApp when none).
  AppId balloon_owner() const override;

  // Lower-level group surface (used by the overrides above; tests drive it
  // directly when no kernel is attached).
  TaskGroup* CreateGroup(AppId app, PsboxId psbox);
  // Moves all of |app|'s current tasks into |group| and arms the spatial
  // balloon: from now on the group's tasks only run inside coscheduling
  // periods. |tasks| is the app's task list (the kernel's registry).
  void EnterGroup(TaskGroup* group, const std::vector<Task*>& tasks);
  // Disarms the balloon and moves the tasks back to the normal runqueues.
  void LeaveGroup(TaskGroup* group);
  // Group an app's tasks currently belong to (nullptr when unsandboxed).
  TaskGroup* ActiveGroup(AppId app) const;

  // --- DVFS coupling ----------------------------------------------------
  // Changes the cluster OPP; accounts for all in-progress compute first so
  // completed work is charged at the old speed. Returns false when the
  // hardware transition failed (frequency-transition fault): the cluster
  // keeps running at the old OPP and the governor is expected to retry.
  bool SetOpp(int opp_index);
  // Utilization split by power-state context since the previous call (the
  // ondemand governor's input); resets the measurement window.
  //   global  — busiest core's busy fraction of the *non-ballooned* time;
  //   per_box — busiest core's busy fraction of each psbox's balloon time
  //             (a sandboxed app's DVFS demand is judged inside its own
  //             balloons only, matching power state virtualisation §4.1).
  struct UtilizationSample {
    double global = 0.0;
    std::map<PsboxId, double> per_box;
  };
  UtilizationSample ConsumeUtilization();

  // --- introspection ----------------------------------------------------
  struct Stats {
    uint64_t context_switches = 0;
    uint64_t shootdown_ipis = 0;
    uint64_t wakeups = 0;
    DurationNs total_wake_latency = 0;  // wake -> first run
    uint64_t steals = 0;
  };
  const Stats& stats() const { return stats_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  Task* CurrentTask(CoreId core) const { return cores_[static_cast<size_t>(core)].current_task; }
  bool InBalloon(CoreId core) const { return cores_[static_cast<size_t>(core)].balloon != nullptr; }
  const SchedConfig& config() const { return config_; }

  // Schedule trace for Figure 7: per core, a step trace of the AppId
  // currently on the core (kNoApp when idle, kIdleApp for balloon dummies).
  const StepTrace& ScheduleTrace(CoreId core) const {
    return cores_[static_cast<size_t>(core)].schedule_trace;
  }

  // Telemetry retention: an in-progress coscheduling period pins the floor
  // at its start (it is billed from there when it ends).
  TimeNs TelemetryFloor(TimeNs desired) const override;
  // Also trims the per-core schedule traces.
  void TrimTelemetry(TimeNs horizon) override;

  // Snapshot support: groups, per-core runqueues and occupancy, utilisation
  // windows, and every pending scheduler timer (ticks, completions, IPIs,
  // slice timers, idle retries). Requires the groups to have been recreated
  // (via BindBox) and the tasks restored before the call.
  void SaveState(SnapshotWriter& w) const;
  void RestoreState(SnapshotReader& r, EventRearmer& rearmer);

 private:
  friend class Kernel;

  // An entry in a core runqueue: either a plain task or a group entity.
  struct Entity {
    Task* task = nullptr;
    TaskGroup* group = nullptr;
    bool is_group() const { return group != nullptr; }
  };

  struct Core {
    // Runnable-but-not-running entities ordered by (vruntime, kind, id).
    struct QueuedLess {
      const CpuScheduler* sched;
      CoreId core;
      bool operator()(const Entity& a, const Entity& b) const;
    };
    std::set<Entity, QueuedLess> rq;
    Task* current_task = nullptr;    // nullptr when idle or balloon dummy
    TaskGroup* current_group = nullptr;  // group the current slot belongs to
    TaskGroup* balloon = nullptr;        // active coscheduling period
    TimeNs last_update = 0;
    double min_vruntime = 0.0;
    EventId tick_event = kInvalidEventId;
    EventId completion_event = kInvalidEventId;
    DurationNs busy_outside = 0;  // busy time outside balloons (this window)
    StepTrace schedule_trace;
  };

  struct BalloonUtil {
    std::vector<DurationNs> busy_per_core;
    double wall = 0.0;  // ballooned wall time (each core contributes 1/n)
  };

  double EntityVruntime(const Entity& e, CoreId core) const;
  int64_t EntityKey(const Entity& e) const;

  void Enqueue(CoreId core, Entity e);
  void Dequeue(CoreId core, Entity e);
  bool IsQueued(CoreId core, const Entity& e) const;

  // Charges the time since last_update to whatever occupies |core| (task
  // vruntime, group vruntime, compute progress, ledger, utilization).
  void AccountCore(CoreId core);

  // Core main entry: accounts, then picks and switches to the next entity.
  void Schedule(CoreId core);
  // Picks the best entity for |core|; may steal across cores.
  Entity PickNext(CoreId core);
  void SwitchTo(CoreId core, Task* task, TaskGroup* group);
  void SwitchToIdle(CoreId core);

  void OnTick(CoreId core);
  void ArmTick(CoreId core);
  void DisarmTick(CoreId core);
  void ArmCompletion(CoreId core);
  void DisarmCompletion(CoreId core);
  void OnComputeComplete(CoreId core);

  // Pulls the next behaviour action(s) of the task current on |core|;
  // returns when the task has compute to run, blocked, or exited.
  void ProcessActions(CoreId core);

  // --- coscheduling internals ---
  void StartBalloon(CoreId initiator, TaskGroup* group);
  void JoinBalloon(CoreId core, TaskGroup* group);
  void EndBalloon(TaskGroup* group, bool group_blocked);
  void CheckBalloonEnd(TaskGroup* group);
  // Spreads the group's runnable tasks across balloon cores; idle dummies on
  // the rest.
  void SpreadGroupTasks(TaskGroup* group);

  void BlockCurrent(CoreId core);
  void ExitCurrent(CoreId core);
  // Common tail of Block/Exit: refills a balloon slot or reschedules.
  void AfterCurrentLeft(CoreId core);
  void ReEvaluate(CoreId core);
  CoreId LeastLoadedCore() const;
  // Smallest queued vruntime on |core| (entities of |exclude| skipped);
  // +infinity when the runqueue is empty.
  double CoreLeftmostVruntime(CoreId core, const TaskGroup* exclude) const;
  // Smallest vruntime among every queued or running competitor of |group|
  // across all cores; +infinity when the group has no competitor. A balloon
  // may only start when the group's local entity does not trail this by more
  // than the wakeup granularity — this is what makes the loan repayment bite
  // (the sandboxed app waits for the others to catch up).
  double GlobalCompetitorVruntime(const TaskGroup* group) const;
  bool BalloonEligible(CoreId core, TaskGroup* group) const;
  // Removes |task| from its group's runnable list (it must be queued there).
  void RemoveFromGroupRunnable(Task* task);
  double ClampVruntime(CoreId core, double vr) const;

  // --- checkpoint plumbing ---
  // Index of |group| in groups_ (stable across a save/restore pair because
  // restore recreates the groups in the same BindBox order).
  int GroupIndex(const TaskGroup* group) const;
  // Tracked wrappers around the scheduler's loose timers so checkpoints can
  // re-arm them; each prunes already-fired entries before appending.
  void ScheduleIdleRetryAt(TimeNs when, CoreId core);
  void ScheduleIpiAt(TimeNs when, CoreId core, TaskGroup* group);
  void ScheduleOwnedNotifyAt(TimeNs when, TaskGroup* group);

  CpuDevice* cpu_;
  SchedConfig config_;
  Kernel* kernel_;
  std::vector<Core> cores_;
  std::vector<std::unique_ptr<TaskGroup>> groups_;
  std::unordered_map<PsboxId, TaskGroup*> group_by_box_;
  std::unordered_map<AppId, TaskGroup*> active_group_by_app_;
  // At most one coscheduling period at a time (balloons span all cores).
  TaskGroup* active_balloon_ = nullptr;
  Stats stats_;
  TimeNs util_last_consume_ = 0;
  std::map<PsboxId, BalloonUtil> balloon_util_;
  // Wake timestamps for latency accounting.
  std::unordered_map<TaskId, TimeNs> wake_time_;

  // Tracked loose timers (see the Schedule*At wrappers above).
  struct RetryEvent {
    CoreId core;
    EventId event;
  };
  std::vector<RetryEvent> retry_events_;
  struct IpiEvent {
    CoreId core;
    int group;
    EventId event;
  };
  std::vector<IpiEvent> ipi_events_;
  struct NotifyEvent {
    int group;
    EventId event;
  };
  std::vector<NotifyEvent> notify_events_;
};

}  // namespace psbox

#endif  // SRC_KERNEL_CPU_SCHEDULER_H_
