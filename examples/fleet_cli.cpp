// Fleet runner CLI: simulate N boards as a two-level fleet-of-fleets with
// cross-board app migration, and print per-board and per-sub-fleet
// energy/balloon/migration stats plus the deterministic fleet fingerprint.
//
//   ./fleet_cli [--boards N] [--threads T] [--seconds S] [--seed X]
//               [--subfleets K] [--root-period P] [--fleet-budget J]
//               [--fail BOARD@MS] [--trace-dir DIR] [--retention MS]
//               [--checkpoint-every N] [--checkpoint-path FILE]
//               [--restore-from FILE] [--population CONFIG.csv]
//               [--popgen-seed X]
//
// A default mix of Table-5 apps is placed round-robin: sandboxed CPU, GPU
// and WiFi apps with energy budgets (migratable under budget pressure) plus
// plain co-runners. --fail makes a board lose power at MS milliseconds; its
// sandboxed apps are crash-migrated at the owning sub-fleet's next barrier
// (in-epoch hand-off), escalating to a cross-sub-fleet evacuation at the
// next root barrier only when the whole slice is dead.
//
// Hierarchy: --subfleets K splits the boards into K contiguous sub-fleets,
// each running its own bounded-lag barrier on its own worker-thread slice;
// the root synchronises them every --root-period sub-epochs by exchanging
// compact digests. --fleet-budget J enables the fleet-wide energy ledger:
// the root subdivides J joules across sub-fleets (proportional to alive
// boards) and rebalances app placement against the per-board energy
// pressure. The defaults (--subfleets 1 --root-period 1) reproduce the old
// flat single-barrier fleet exactly. The fingerprint is bit-identical at any
// --threads value for a fixed scenario.
//
// With --trace-dir, every board's balloon timelines are exported as
// DIR/board<i>_balloons_<domain>.csv. --retention bounds every board's
// telemetry working set to the last MS milliseconds (energy accounting
// stays exact; see KernelConfig::telemetry_retention).
//
// Population: --population CONFIG.csv streams a generated background app
// population onto every board (arrival-rate curve, app mix, heavy-tailed
// work sizes, diurnal/flash/adversarial modifiers — see
// src/popgen/population_config.h for the key set), nested under per-board
// tenant sandboxes. One independent deterministic stream per board, so the
// fingerprint stays bit-identical at any --threads value. --popgen-seed
// overrides the config's seed without editing the file.
//
// Checkpoint/restore: --checkpoint-every N writes the full fleet state (all
// boards, kernels, sandboxes, pending events, hierarchy/budget ledger) to
// --checkpoint-path at the first root boundary every N sub-epochs.
// --restore-from warm-starts a later invocation from such a file; the
// scenario flags must match the writing run, and the restored run's final
// fingerprint is bit-identical to an uninterrupted one.
//
// Example: ./fleet_cli --boards 8 --threads 4 --subfleets 2 --root-period 4
//                      --fleet-budget 40 --seconds 2 --fail 1@600
// Warm restart:
//   ./fleet_cli --boards 4 --seconds 2 --checkpoint-every 50
//               --checkpoint-path /tmp/fleet.snap
//   ./fleet_cli --boards 4 --seconds 2 --restore-from /tmp/fleet.snap

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/fleet/root_coordinator.h"
#include "src/kernel/balloon_timeline.h"
#include "src/popgen/population_config.h"

namespace psbox {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: fleet_cli [--boards N] [--threads T] [--seconds S] "
               "[--seed X] [--subfleets K] [--root-period P] "
               "[--fleet-budget J] [--fail BOARD@MS] [--trace-dir DIR] "
               "[--retention MS] [--checkpoint-every N] "
               "[--checkpoint-path FILE] [--restore-from FILE] "
               "[--population CONFIG.csv] [--popgen-seed X]\n");
  return 2;
}

// Flag validation with a descriptive message (exit code 2, like Usage()).
int Invalid(const char* what) {
  std::fprintf(stderr, "fleet_cli: %s\n", what);
  return 2;
}

FleetScenario BuildScenario(int boards, int seconds, uint64_t seed,
                            int subfleets, int root_period,
                            double fleet_budget, int fail_board, int fail_ms,
                            int retention_ms) {
  FleetScenario scenario;
  scenario.seed = seed;
  scenario.horizon = Seconds(seconds);
  scenario.epoch = 10 * kMillisecond;
  scenario.subfleets = subfleets;
  scenario.root_period = root_period;
  scenario.fleet_budget = fleet_budget;
  scenario.boards.resize(static_cast<size_t>(boards));
  if (retention_ms > 0) {
    for (FleetBoardSpec& board : scenario.boards) {
      board.kernel.telemetry_retention = Millis(retention_ms);
    }
  }
  if (fail_board >= 0) {
    scenario.boards[static_cast<size_t>(fail_board)].fail_at = Millis(fail_ms);
  }

  // The placed mix: one sandboxed, budgeted, migratable app per component
  // class plus a plain co-runner, spread round-robin over the boards.
  struct Mix {
    const char* name;
    AppFactory factory;
    bool sandboxed;
    Joules budget;
  };
  const Mix mix[] = {
      {"calib3d", &SpawnCalib3d, true, 1.2},
      {"bodytrack", &SpawnBodytrack, false, 0.0},
      {"triangle", &SpawnTriangle, true, 0.8},
      {"scp", &SpawnScp, true, 0.6},
      {"dedup", &SpawnDedup, false, 0.0},
      {"mediascan", &SpawnMediaScan, true, 0.5},
  };
  int board = 0;
  for (const Mix& m : mix) {
    FleetAppSpec spec;
    spec.name = std::string(m.name) + std::to_string(board);
    spec.factory = m.factory;
    spec.board = board;
    spec.options.deadline = scenario.horizon;
    spec.options.use_psbox = m.sandboxed;
    spec.energy_budget = m.budget;
    spec.migratable = m.sandboxed;
    scenario.apps.push_back(spec);
    board = (board + 1) % boards;
  }
  return scenario;
}

}  // namespace
}  // namespace psbox

int main(int argc, char** argv) {
  using namespace psbox;
  int boards = 2;
  int threads = 2;
  int seconds = 2;
  uint64_t seed = 0x5eed;
  int subfleets = 1;
  int root_period = 1;
  double fleet_budget = 0.0;
  int fail_board = -1;
  int fail_ms = 0;
  int retention_ms = 0;
  int checkpoint_every = 0;
  std::string checkpoint_path;
  std::string restore_from;
  std::string trace_dir;
  std::string population_path;
  bool popgen_seed_set = false;
  uint64_t popgen_seed = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--boards" && i + 1 < argc) {
      boards = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atoi(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (arg == "--subfleets" && i + 1 < argc) {
      subfleets = std::atoi(argv[++i]);
    } else if (arg == "--root-period" && i + 1 < argc) {
      root_period = std::atoi(argv[++i]);
    } else if (arg == "--fleet-budget" && i + 1 < argc) {
      fleet_budget = std::atof(argv[++i]);
    } else if (arg == "--fail" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const size_t at = spec.find('@');
      if (at == std::string::npos) {
        return Invalid("--fail expects BOARD@MS (e.g. --fail 1@600)");
      }
      fail_board = std::atoi(spec.substr(0, at).c_str());
      fail_ms = std::atoi(spec.substr(at + 1).c_str());
    } else if (arg == "--trace-dir" && i + 1 < argc) {
      trace_dir = argv[++i];
    } else if (arg == "--retention" && i + 1 < argc) {
      retention_ms = std::atoi(argv[++i]);
    } else if (arg == "--checkpoint-every" && i + 1 < argc) {
      checkpoint_every = std::atoi(argv[++i]);
    } else if (arg == "--checkpoint-path" && i + 1 < argc) {
      checkpoint_path = argv[++i];
    } else if (arg == "--restore-from" && i + 1 < argc) {
      restore_from = argv[++i];
    } else if (arg == "--population" && i + 1 < argc) {
      population_path = argv[++i];
    } else if (arg == "--popgen-seed" && i + 1 < argc) {
      popgen_seed = std::strtoull(argv[++i], nullptr, 0);
      popgen_seed_set = true;
    } else {
      return Usage();
    }
  }
  if (boards < 1) {
    return Invalid("--boards must be at least 1");
  }
  if (threads < 1) {
    return Invalid("--threads must be at least 1");
  }
  if (seconds < 1) {
    return Invalid("--seconds must be at least 1");
  }
  if (subfleets < 1 || subfleets > boards) {
    return Invalid("--subfleets must be between 1 and the board count");
  }
  if (root_period < 1) {
    return Invalid("--root-period must be at least 1");
  }
  if (fleet_budget < 0.0) {
    return Invalid("--fleet-budget must be non-negative (joules; 0 disables)");
  }
  if (fail_board >= boards ||
      (fail_board >= 0 && fail_ms <= 0)) {
    return Invalid("--fail board index out of range or time not positive");
  }
  if (checkpoint_every < 0) {
    return Invalid("--checkpoint-every must be non-negative");
  }
  if (popgen_seed_set && population_path.empty()) {
    return Invalid("--popgen-seed requires --population CONFIG.csv");
  }

  FleetScenario scenario =
      BuildScenario(boards, seconds, seed, subfleets, root_period,
                    fleet_budget, fail_board, fail_ms, retention_ms);
  if (!population_path.empty()) {
    std::string error;
    if (!LoadPopulationConfig(population_path, &scenario.population, &error)) {
      std::fprintf(stderr, "fleet_cli: invalid --population config: %s\n",
                   error.c_str());
      return 2;
    }
    if (popgen_seed_set) {
      scenario.population.seed = popgen_seed;
    }
  }
  std::unique_ptr<RootCoordinator> fleet_ptr;
  if (!restore_from.empty()) {
    std::string error;
    fleet_ptr = RootCoordinator::RestoreFromCheckpoint(
        std::move(scenario), threads, restore_from, &error);
    if (fleet_ptr == nullptr) {
      std::fprintf(stderr, "fleet_cli: cannot restore from %s: %s\n",
                   restore_from.c_str(), error.c_str());
      return 1;
    }
    std::printf("restored from %s (resuming at %.0f ms)\n", restore_from.c_str(),
                ToMillis(fleet_ptr->resume_time()));
  } else {
    fleet_ptr =
        std::make_unique<RootCoordinator>(std::move(scenario), threads);
  }
  RootCoordinator& fleet = *fleet_ptr;
  if (checkpoint_every > 0 && !checkpoint_path.empty()) {
    fleet.set_checkpoint(checkpoint_path, checkpoint_every);
  }
  const FleetStats stats = fleet.Run();

  std::printf(
      "fleet: %d board(s) in %d sub-fleet(s), root period %d, "
      "%d worker thread(s), %d s simulated\n\n",
      boards, subfleets, root_period, threads, seconds);
  std::printf("%-6s %-6s %10s %12s %9s %8s %6s %6s\n", "board", "state",
              "ran(ms)", "energy(mJ)", "balloons", "iters", "in", "out");
  for (size_t i = 0; i < stats.boards.size(); ++i) {
    const FleetBoardStats& b = stats.boards[i];
    std::printf("%-6zu %-6s %10.0f %12.1f %9llu %8llu %6d %6d\n", i,
                b.failed ? "FAILED" : "ok", ToMillis(b.ran_until),
                b.rail_energy * 1e3,
                static_cast<unsigned long long>(b.balloons),
                static_cast<unsigned long long>(b.iterations), b.migrations_in,
                b.migrations_out);
  }

  uint64_t pop_spawned = 0;
  uint64_t pop_completed = 0;
  for (const FleetBoardStats& b : stats.boards) {
    pop_spawned += b.popgen_spawned;
    pop_completed += b.popgen_completed;
  }
  if (!population_path.empty()) {
    std::printf(
        "\npopulation: %llu generated app(s) (%.1f per board), "
        "%llu ran to completion\n",
        static_cast<unsigned long long>(pop_spawned),
        static_cast<double>(pop_spawned) / static_cast<double>(boards),
        static_cast<unsigned long long>(pop_completed));
  }

  if (stats.subfleets.size() > 1 || fleet_budget > 0.0) {
    std::printf("\n%-9s %7s %7s %12s %14s %6s %6s\n", "subfleet", "first",
                "boards", "energy(mJ)", "budget(mJ)", "xin", "xout");
    for (size_t s = 0; s < stats.subfleets.size(); ++s) {
      const SubFleetStats& sf = stats.subfleets[s];
      std::printf("%-9zu %7d %7d %12.1f %14.1f %6d %6d\n", s, sf.first_board,
                  sf.boards, sf.energy * 1e3, sf.allocation * 1e3,
                  sf.cross_in, sf.cross_out);
    }
  }

  std::printf("\n%-14s %5s %6s %6s %8s %14s\n", "app", "hops", "board",
              "state", "iters", "billed(mJ)");
  for (const FleetAppOutcome& a : stats.apps) {
    char billed[32];
    if (a.billed_energy >= 0) {
      std::snprintf(billed, sizeof(billed), "%.1f", a.billed_energy * 1e3);
    } else {
      std::snprintf(billed, sizeof(billed), "-");
    }
    std::printf("%-14s %5d %6d %6s %8llu %14s\n", a.name.c_str(), a.hops,
                a.final_board,
                a.lost ? "lost" : (a.finished ? "done" : "run"),
                static_cast<unsigned long long>(a.iterations),
                billed);
  }

  if (!stats.migrations.empty()) {
    std::printf("\nmigrations:\n");
    for (const MigrationRecord& m : stats.migrations) {
      const char* kind =
          m.crash ? (m.state_transfer ? "crash/xfer" : "crash/carry")
                  : (m.cross_subfleet ? "rebalance" : "drain");
      std::printf("  %7.0f ms  %-14s board %d -> %d  (%s%s, %.1f mJ billed, "
                  "%.1f mJ budget carried)\n",
                  ToMillis(m.when), m.app.c_str(), m.from, m.to, kind,
                  m.cross_subfleet ? ", cross-subfleet" : "",
                  m.consumed_source * 1e3, m.budget_carried * 1e3);
    }
  }

  if (!trace_dir.empty()) {
    int files = 0;
    for (int i = 0; i < fleet.board_count(); ++i) {
      files += ExportBalloonTimelines(fleet.kernel(i), trace_dir,
                                      "board" + std::to_string(i) + "_");
    }
    std::printf("\n%d balloon timeline(s) written to %s/board<i>_balloons_"
                "<domain>.csv\n",
                files, trace_dir.c_str());
  }

  std::printf("\nfleet fingerprint: %016llx\n",
              static_cast<unsigned long long>(stats.Fingerprint()));
  return 0;
}
