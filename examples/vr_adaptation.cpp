// The end-to-end power-aware app (§6.4): a VR scenario whose rendering task
// observes its own power through a psbox and trades fidelity for power on
// the fly, insulated from the gesture task's input-dependent load.
//
//   ./vr_adaptation [target_milliwatts]
//
// The optional argument sets the power budget the rendering task adapts to
// (default 500 mW).

#include <cstdio>
#include <cstdlib>

#include "src/hw/board.h"
#include "src/kernel/kernel.h"
#include "src/psbox/psbox_manager.h"
#include "src/workloads/vr_app.h"

int main(int argc, char** argv) {
  using namespace psbox;

  double target_mw = 500.0;
  if (argc > 1) {
    target_mw = std::atof(argv[1]);
  }

  Board board;
  Kernel kernel(&board);
  PsboxManager manager(&kernel);

  VrConfig cfg;
  cfg.target_high = target_mw / 1000.0;
  cfg.target_low = cfg.target_high * 0.55;
  cfg.deadline = Seconds(8);
  VrHandles vr = SpawnVrScenario(kernel, cfg);

  kernel.RunUntil(Seconds(8) + Millis(100));

  std::printf("VR scenario: 8 s, power budget %.0f mW (band %.0f-%.0f mW)\n\n",
              target_mw, cfg.target_low * 1e3, cfg.target_high * 1e3);
  std::printf("%8s  %8s  %14s\n", "t (ms)", "fidelity", "observed (mW)");
  for (size_t i = 0; i < vr.stats->windows.size(); i += 2) {
    const VrWindow& w = vr.stats->windows[i];
    std::printf("%8.0f  %8d  %14.0f\n", ToMillis(w.when), w.fidelity,
                w.observed_power * 1e3);
  }

  std::printf("\nper-fidelity mean observed power:\n");
  for (int f = 0; f < kVrFidelityLevels; ++f) {
    const auto& st = vr.stats->active_power_by_fidelity[static_cast<size_t>(f)];
    if (st.count() > 0) {
      std::printf("  fidelity %d: %6.0f mW over %zu windows\n", f, st.mean() * 1e3,
                  st.count());
    }
  }
  std::printf("\nframes rendered: %llu; the rendering task settled where its\n"
              "own (insulated) power meets the budget, regardless of the\n"
              "gesture task's varying load.\n",
              static_cast<unsigned long long>(vr.stats->frames));
  return 0;
}
