// Scenario runner CLI: compose any mix of Table-5 apps, optionally sandbox
// some of them, run for a while, and dump energies/throughputs plus CSV
// power traces for external plotting.
//
//   ./scenario_cli [--seconds N] [--csv PREFIX] [--trace-dir DIR] APP[*] ...
//
// APP is one of: calib3d bodytrack dedup browser magic cube triangle sgemm
// dgemm monte wifi_browser scp wget. A trailing '*' sandboxes that app in a
// psbox bound to its component. With --csv, per-rail power traces are
// written to PREFIX_<rail>.csv (time_ms,watts). With --trace-dir, per-domain
// balloon timelines are written to DIR/balloons_<domain>.csv
// (time_ms,edge,app,psbox).
//
// Example: ./scenario_cli --seconds 2 calib3d* bodytrack dedup

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/base/csv.h"
#include "src/hw/board.h"
#include "src/kernel/balloon_timeline.h"
#include "src/kernel/kernel.h"
#include "src/psbox/psbox_manager.h"
#include "src/workloads/table5_apps.h"

namespace psbox {
namespace {

using Factory = AppHandle (*)(Kernel&, const std::string&, AppOptions);

const std::map<std::string, std::pair<Factory, HwComponent>> kApps = {
    {"calib3d", {&SpawnCalib3d, HwComponent::kCpu}},
    {"bodytrack", {&SpawnBodytrack, HwComponent::kCpu}},
    {"dedup", {&SpawnDedup, HwComponent::kCpu}},
    {"browser", {&SpawnGpuBrowser, HwComponent::kGpu}},
    {"magic", {&SpawnMagic, HwComponent::kGpu}},
    {"cube", {&SpawnCube, HwComponent::kGpu}},
    {"triangle", {&SpawnTriangle, HwComponent::kGpu}},
    {"sgemm", {&SpawnSgemm, HwComponent::kDsp}},
    {"dgemm", {&SpawnDgemm, HwComponent::kDsp}},
    {"monte", {&SpawnMonte, HwComponent::kDsp}},
    {"wifi_browser", {&SpawnWifiBrowser, HwComponent::kWifi}},
    {"scp", {&SpawnScp, HwComponent::kWifi}},
    {"wget", {&SpawnWget, HwComponent::kWifi}},
    {"photosync", {&SpawnPhotoSync, HwComponent::kStorage}},
    {"mediascan", {&SpawnMediaScan, HwComponent::kStorage}},
};

void DumpRailCsv(const std::string& prefix, const std::string& rail_name,
                 const PowerRail& rail, TimeNs end) {
  std::ofstream out(prefix + "_" + rail_name + ".csv");
  CsvWriter csv(out);
  csv.WriteHeader({"time_ms", "watts"});
  for (const auto& step : rail.trace().steps()) {
    if (step.time > end) {
      break;
    }
    csv.WriteRow({FormatDouble(ToMillis(step.time), 4), FormatDouble(step.value, 5)});
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: scenario_cli [--seconds N] [--csv PREFIX] "
               "[--trace-dir DIR] APP[*] ...\n"
               "apps:");
  for (const auto& [name, spec] : kApps) {
    (void)spec;
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

}  // namespace
}  // namespace psbox

int main(int argc, char** argv) {
  using namespace psbox;
  int seconds = 2;
  std::string csv_prefix;
  std::string trace_dir;
  std::vector<std::pair<std::string, bool>> requested;  // (name, sandboxed)

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--seconds" && i + 1 < argc) {
      seconds = std::atoi(argv[++i]);
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_prefix = argv[++i];
    } else if (arg == "--trace-dir" && i + 1 < argc) {
      trace_dir = argv[++i];
    } else {
      bool sandboxed = false;
      if (!arg.empty() && arg.back() == '*') {
        sandboxed = true;
        arg.pop_back();
      }
      if (kApps.find(arg) == kApps.end()) {
        return Usage();
      }
      requested.emplace_back(arg, sandboxed);
    }
  }
  if (requested.empty()) {
    return Usage();
  }

  Board board;
  Kernel kernel(&board);
  PsboxManager manager(&kernel);

  struct Running {
    std::string label;
    AppHandle handle;
    HwComponent hw;
    bool sandboxed;
  };
  std::vector<Running> apps;
  int counter = 0;
  for (const auto& [name, sandboxed] : requested) {
    const auto& [factory, hw] = kApps.at(name);
    AppOptions opts;
    opts.deadline = Seconds(seconds);
    opts.use_psbox = sandboxed;
    const std::string label = name + std::to_string(counter++) + (sandboxed ? "*" : "");
    apps.push_back({label, factory(kernel, label, opts), hw, sandboxed});
  }

  kernel.RunUntil(Seconds(seconds) + Millis(50));

  std::printf("scenario: %d s simulated\n\n", seconds);
  std::printf("%-16s %-6s %12s %16s\n", "app", "hw", "iterations",
              "psbox energy");
  for (const Running& r : apps) {
    std::printf("%-16s %-6s %12llu %13.1f mJ\n", r.label.c_str(),
                HwComponentName(r.hw),
                static_cast<unsigned long long>(r.handle.stats->iterations),
                r.sandboxed && r.handle.stats->box >= 0
                    ? manager.ReadEnergy(r.handle.stats->box) * 1e3
                    : 0.0);
  }
  std::printf("\nrail energy over the run:\n");
  for (HwComponent hw : {HwComponent::kCpu, HwComponent::kGpu, HwComponent::kDsp,
                         HwComponent::kWifi, HwComponent::kStorage}) {
    std::printf("  %-7s %9.1f mJ\n", HwComponentName(hw),
                board.RailFor(hw).EnergyOver(0, Seconds(seconds)) * 1e3);
  }
  if (!csv_prefix.empty()) {
    for (HwComponent hw : {HwComponent::kCpu, HwComponent::kGpu,
                           HwComponent::kDsp, HwComponent::kWifi,
                           HwComponent::kStorage}) {
      std::string rail_name = HwComponentName(hw);
      for (char& c : rail_name) {
        c = static_cast<char>(std::tolower(c));
      }
      DumpRailCsv(csv_prefix, rail_name, board.RailFor(hw), Seconds(seconds));
    }
    std::printf("\nCSV traces written to %s_<rail>.csv\n", csv_prefix.c_str());
  }
  if (!trace_dir.empty()) {
    const int files = ExportBalloonTimelines(kernel, trace_dir);
    std::printf("\n%d balloon timeline(s) written to %s/balloons_<domain>.csv\n",
                files, trace_dir.c_str());
  }
  return 0;
}
