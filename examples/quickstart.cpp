// Quickstart: a power-aware app observing its own insulated power.
//
// Spawns calib3d inside a power sandbox bound to the CPU while bodytrack
// runs concurrently, and shows that the sandbox's virtual power meter gives
// calib3d an observation that is insulated from bodytrack — plus the
// fairness/billing counters the kernel keeps. A second sandbox spans two
// resource domains at once ({CPU, Storage}): photo-sync's writes are
// balloon-insulated from a concurrent media scan, flush tails included.
//
//   ./quickstart

#include <cstdio>

#include "src/hw/board.h"
#include "src/kernel/kernel.h"
#include "src/psbox/psbox_manager.h"
#include "src/workloads/table5_apps.h"

int main() {
  using namespace psbox;

  Board board;
  Kernel kernel(&board);
  PsboxManager manager(&kernel);

  // calib3d runs 100 frames inside a psbox bound to the CPU; bodytrack runs
  // alongside, unsandboxed.
  AppOptions sandboxed;
  sandboxed.iterations = 100;
  sandboxed.use_psbox = true;
  AppHandle calib = SpawnCalib3d(kernel, "calib3d", sandboxed);

  AppOptions plain;
  plain.deadline = Seconds(2);
  AppHandle body = SpawnBodytrack(kernel, "bodytrack", plain);

  // photo-sync runs in a psbox spanning two resource domains ({CPU,
  // Storage}); a concurrent media scan hammers the same flash device.
  AppOptions sync_opts;
  sync_opts.iterations = 20;
  sync_opts.use_psbox = true;
  AppHandle sync = SpawnPhotoSync(kernel, "photosync", sync_opts);

  AppOptions scan_opts;
  scan_opts.deadline = Seconds(2);
  AppHandle scan = SpawnMediaScan(kernel, "mediascan", scan_opts);

  kernel.RunUntil(Seconds(2));

  const auto& calib_stats = *calib.stats;
  std::printf("calib3d:   %llu frames in %.3f s, psbox-observed energy %.1f mJ\n",
              static_cast<unsigned long long>(calib_stats.iterations),
              ToSeconds(calib_stats.finish_time - calib_stats.start_time),
              calib_stats.psbox_energy * 1e3);
  std::printf("bodytrack: %llu frames (unsandboxed, unaffected share)\n",
              static_cast<unsigned long long>(body.stats->iterations));

  const auto& sched = kernel.scheduler().stats();
  const auto& dom = kernel.scheduler().domain_stats();
  std::printf("kernel:    %llu balloons, %llu shootdown IPIs, %.1f ms coscheduled\n",
              static_cast<unsigned long long>(dom.balloons),
              static_cast<unsigned long long>(sched.shootdown_ipis),
              ToMillis(dom.total_balloon_time));
  std::printf("rail:      total CPU energy %.1f mJ over 2 s\n",
              board.cpu_rail().EnergyOver(0, Seconds(2)) * 1e3);

  const auto& storage_dom = kernel.storage_driver().domain_stats();
  std::printf("photosync: %llu photos, psbox({CPU,Storage}) energy %.1f mJ\n",
              static_cast<unsigned long long>(sync.stats->iterations),
              sync.stats->psbox_energy * 1e3);
  std::printf("mediascan: %llu batches (unsandboxed)\n",
              static_cast<unsigned long long>(scan.stats->iterations));
  std::printf("storage:   %llu balloons, %.1f ms owned (flush tails inside), "
              "rail %.1f mJ\n",
              static_cast<unsigned long long>(storage_dom.balloons),
              ToMillis(storage_dom.total_balloon_time),
              board.storage_rail().EnergyOver(0, Seconds(2)) * 1e3);
  return 0;
}
