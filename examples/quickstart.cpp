// Quickstart: a power-aware app observing its own insulated power.
//
// Spawns calib3d inside a power sandbox bound to the CPU while bodytrack
// runs concurrently, and shows that the sandbox's virtual power meter gives
// calib3d an observation that is insulated from bodytrack — plus the
// fairness/billing counters the kernel keeps.
//
//   ./quickstart

#include <cstdio>

#include "src/hw/board.h"
#include "src/kernel/kernel.h"
#include "src/psbox/psbox_manager.h"
#include "src/workloads/table5_apps.h"

int main() {
  using namespace psbox;

  Board board;
  Kernel kernel(&board);
  PsboxManager manager(&kernel);

  // calib3d runs 100 frames inside a psbox bound to the CPU; bodytrack runs
  // alongside, unsandboxed.
  AppOptions sandboxed;
  sandboxed.iterations = 100;
  sandboxed.use_psbox = true;
  AppHandle calib = SpawnCalib3d(kernel, "calib3d", sandboxed);

  AppOptions plain;
  plain.deadline = Seconds(2);
  AppHandle body = SpawnBodytrack(kernel, "bodytrack", plain);

  kernel.RunUntil(Seconds(2));

  const auto& calib_stats = *calib.stats;
  std::printf("calib3d:   %llu frames in %.3f s, psbox-observed energy %.1f mJ\n",
              static_cast<unsigned long long>(calib_stats.iterations),
              ToSeconds(calib_stats.finish_time - calib_stats.start_time),
              calib_stats.psbox_energy * 1e3);
  std::printf("bodytrack: %llu frames (unsandboxed, unaffected share)\n",
              static_cast<unsigned long long>(body.stats->iterations));

  const auto& sched = kernel.scheduler().stats();
  std::printf("kernel:    %llu balloons, %llu shootdown IPIs, %.1f ms coscheduled\n",
              static_cast<unsigned long long>(sched.balloons_started),
              static_cast<unsigned long long>(sched.shootdown_ipis),
              ToMillis(sched.total_balloon_time));
  std::printf("rail:      total CPU energy %.1f mJ over 2 s\n",
              board.cpu_rail().EnergyOver(0, Seconds(2)) * 1e3);
  return 0;
}
