// Power side channel demo (§2.5): what an attacker sees with and without
// psbox insulation while a victim browser loads a website.
//
//   ./sidechannel_demo [site 0-9]
//
// Prints the GPU power trace as the attacker observes it through (a) system
// power metering — the victim's page load is clearly visible — and (b) its
// own psbox, where only the attacker's camouflage plus idle filler remains.

#include <cstdio>
#include <cstdlib>

#include "src/analysis/trace_util.h"
#include "src/hw/board.h"
#include "src/kernel/kernel.h"
#include "src/psbox/psbox_manager.h"
#include "src/workloads/table5_apps.h"

int main(int argc, char** argv) {
  using namespace psbox;

  int site = 2;
  if (argc > 1) {
    site = std::atoi(argv[1]) % kNumWebsites;
  }

  Board board;
  Kernel kernel(&board);
  PsboxManager manager(&kernel);

  AppOptions victim_opts;
  SpawnWebsiteVisit(kernel, "victim-browser", site, victim_opts);

  AppOptions attacker_opts;
  attacker_opts.deadline = Millis(400);
  AppHandle attacker = SpawnAttackerCamouflage(kernel, "attacker", attacker_opts);
  const int box = manager.CreateBox(attacker.app, {HwComponent::kGpu});
  manager.EnterBox(box);

  kernel.RunUntil(Millis(400));

  constexpr size_t kBins = 72;
  auto rail_samples = board.meter().SampleRail(board.gpu_rail(), 0, Millis(400));
  const auto open_view = DownsampleSamples(rail_samples, 0, Millis(400), kBins);

  Rng rng(123);
  auto boxed_samples = manager.sandbox(box).ObservedSamples(
      board.gpu_rail(), HwComponent::kGpu, 0, Millis(400),
      board.config().meter.sample_period, board.config().meter.noise_stddev, &rng);
  const auto boxed_view = DownsampleSamples(boxed_samples, 0, Millis(400), kBins);

  std::printf("victim loads website %d while the attacker watches GPU power\n\n", site);
  std::printf("system power metering (no psbox — victim visible):\n  [%s]\n",
              Sparkline(open_view).c_str());
  std::printf("psbox-confined observation (attacker's own power only):\n  [%s]\n\n",
              Sparkline(boxed_view).c_str());
  std::printf("The first trace carries the page load's power signature (the\n"
              "basis of the paper's 60%% website-inference attack); the second\n"
              "shows only the attacker's camouflage + idle filler.\n");
  return 0;
}
