// Comparative power drives actions (§2.1): a power-aware app uses psbox to
// quantitatively compare two execution plans — running its kernel on the CPU
// versus offloading it to the DSP — and picks the cheaper one.
//
//   ./offload_planner
//
// The app probes each plan inside its psbox ("pay as you go"), reads the
// insulated per-plan energy, and commits to the winner. Because the
// observations are insulated and power states are virtualised, the decision
// stays valid under co-running load.

#include <cstdio>

#include "src/hw/board.h"
#include "src/kernel/kernel.h"
#include "src/psbox/psbox_api.h"
#include "src/psbox/psbox_manager.h"
#include "src/workloads/table5_apps.h"

namespace psbox {
namespace {

// The planner task: probe CPU plan, probe DSP plan, then run the chosen one.
class PlannerBehavior : public Behavior {
 public:
  static constexpr int kProbeIterations = 10;
  static constexpr int kProductionIterations = 40;

  Action NextAction(TaskEnv& env) override {
    if (!queue_.empty()) {
      Action a = queue_.front();
      queue_.pop_front();
      return a;
    }
    switch (stage_) {
      case 0: {  // set up: one psbox bound to both candidate components
        box_ = psbox_create(env, {HwComponent::kCpu, HwComponent::kDsp});
        psbox_enter(env, box_);
        psbox_reset(env, box_);
        stage_ = 1;
        QueueCpuPlan(kProbeIterations);
        break;
      }
      case 1: {  // CPU probe finished
        cpu_energy_ = psbox_read(env, box_);
        psbox_reset(env, box_);
        stage_ = 2;
        QueueDspPlan(kProbeIterations);
        break;
      }
      case 2: {  // DSP probe finished: decide and leave the box
        dsp_energy_ = psbox_read(env, box_);
        psbox_leave(env, box_);
        use_dsp_ = dsp_energy_ < cpu_energy_;
        stage_ = 3;
        if (use_dsp_) {
          QueueDspPlan(kProductionIterations);
        } else {
          QueueCpuPlan(kProductionIterations);
        }
        break;
      }
      default:
        done_ = true;
        return Action::Exit();
    }
    Action a = queue_.front();
    queue_.pop_front();
    return a;
  }

  Joules cpu_energy() const { return cpu_energy_; }
  Joules dsp_energy() const { return dsp_energy_; }
  bool use_dsp() const { return use_dsp_; }
  bool done() const { return done_; }

 private:
  void QueueCpuPlan(int iterations) {
    for (int i = 0; i < iterations; ++i) {
      // The kernel computed locally: one 6 ms vector-heavy burst.
      queue_.push_back(Action::Compute(6 * kMillisecond, 1.2));
    }
  }
  void QueueDspPlan(int iterations) {
    for (int i = 0; i < iterations; ++i) {
      // Offloaded: tiny CPU marshalling + an 8 ms DSP kernel.
      queue_.push_back(Action::Compute(400 * kMicrosecond, 0.8));
      queue_.push_back(Action::SubmitAccel(HwComponent::kDsp, 42, 8 * kMillisecond, 0.7));
      queue_.push_back(Action::WaitAccel(1));
    }
  }

  std::deque<Action> queue_;
  int stage_ = 0;
  int box_ = -1;
  Joules cpu_energy_ = 0.0;
  Joules dsp_energy_ = 0.0;
  bool use_dsp_ = false;
  bool done_ = false;
};

}  // namespace
}  // namespace psbox

int main() {
  using namespace psbox;

  Board board;
  Kernel kernel(&board);
  PsboxManager manager(&kernel);

  // Background load on both components: the planner's insulated probes are
  // unaffected by it.
  AppOptions bg;
  bg.deadline = Seconds(5);
  SpawnBodytrack(kernel, "bg-cpu", bg);
  SpawnMonte(kernel, "bg-dsp", bg);

  const AppId app = kernel.CreateApp("planner");
  auto behavior = std::make_unique<PlannerBehavior>();
  PlannerBehavior* planner = behavior.get();
  kernel.SpawnTask(app, "planner", std::move(behavior));

  kernel.RunUntil(Seconds(6));

  std::printf("offload planner (probes of %d iterations each, insulated by psbox):\n",
              PlannerBehavior::kProbeIterations);
  std::printf("  CPU plan energy: %7.1f mJ\n", planner->cpu_energy() * 1e3);
  std::printf("  DSP plan energy: %7.1f mJ\n", planner->dsp_energy() * 1e3);
  std::printf("  decision: run production on the %s\n",
              planner->use_dsp() ? "DSP (offload)" : "CPU (local)");
  std::printf("  production completed: %s\n", planner->done() ? "yes" : "no");
  std::printf("\nThe comparison is quantitative and valid despite co-running\n"
              "background load — the essential power knowledge of §2.1.\n");
  return 0;
}
