// Tests for nested (tenant) power sandboxes: the budget-subdivision ledger,
// balloon composition up the hierarchy, the per-level accounting bound under
// child churn, and crash-evacuation neutrality.

#include <gtest/gtest.h>

#include "src/fleet/root_coordinator.h"
#include "src/popgen/board_population.h"
#include "src/workloads/table5_apps.h"
#include "tests/test_util.h"

namespace psbox {
namespace {

const std::vector<HwComponent>& TenantHw() {
  static const std::vector<HwComponent> kHw = {
      HwComponent::kCpu, HwComponent::kGpu, HwComponent::kDsp,
      HwComponent::kWifi, HwComponent::kStorage};
  return kHw;
}

TEST(NestedPsboxTest, BudgetSubdivisionLedger) {
  TestStack s;
  const AppId tenant_app = s.kernel.CreateApp("tenant");
  const int tenant = s.manager.CreateBox(tenant_app, TenantHw());
  s.manager.sandbox(tenant).set_budget(1.0);

  const AppId a = s.kernel.CreateApp("a");
  const AppId b = s.kernel.CreateApp("b");
  const AppId c = s.kernel.CreateApp("c");
  const int box_a =
      s.manager.CreateNestedBox(a, {HwComponent::kCpu}, tenant, 0.4);
  const int box_b =
      s.manager.CreateNestedBox(b, {HwComponent::kCpu}, tenant, 0.4);
  EXPECT_DOUBLE_EQ(s.manager.sandbox(box_a).budget(), 0.4);
  EXPECT_DOUBLE_EQ(s.manager.sandbox(tenant).children_budget(), 0.8);

  // The third claim exceeds what remains: graceful clamp, never refusal.
  const int box_c =
      s.manager.CreateNestedBox(c, {HwComponent::kCpu}, tenant, 0.4);
  EXPECT_NEAR(s.manager.sandbox(box_c).budget(), 0.2, 1e-12);
  EXPECT_NEAR(s.manager.sandbox(tenant).children_budget(), 1.0, 1e-12);

  // sum(live children budgets) <= tenant budget — the invariant under churn.
  EXPECT_LE(s.manager.sandbox(tenant).children_budget(),
            s.manager.sandbox(tenant).budget() + 1e-12);

  // Leaving returns the slice; re-entering re-claims what is now available.
  s.manager.EnterBox(box_a);
  s.manager.LeaveBox(box_a);
  EXPECT_FALSE(s.manager.sandbox(box_a).budget_claimed());
  EXPECT_NEAR(s.manager.sandbox(tenant).children_budget(), 0.6, 1e-12);
  s.manager.EnterBox(box_a);
  EXPECT_TRUE(s.manager.sandbox(box_a).budget_claimed());
  EXPECT_NEAR(s.manager.sandbox(box_a).budget(), 0.4, 1e-12);
  EXPECT_NEAR(s.manager.sandbox(tenant).children_budget(), 1.0, 1e-12);
}

TEST(NestedPsboxTest, UnbudgetedTenantGrantsUnconstrained) {
  TestStack s;
  const AppId tenant_app = s.kernel.CreateApp("tenant");
  const int tenant = s.manager.CreateBox(tenant_app, TenantHw());
  // budget 0 = unbudgeted: every child keeps its requested slice.
  for (int i = 0; i < 4; ++i) {
    const AppId app = s.kernel.CreateApp("child" + std::to_string(i));
    const int box =
        s.manager.CreateNestedBox(app, {HwComponent::kCpu}, tenant, 2.0);
    EXPECT_DOUBLE_EQ(s.manager.sandbox(box).budget(), 2.0);
  }
  EXPECT_DOUBLE_EQ(s.manager.sandbox(tenant).children_budget(), 8.0);
}

// A child's served balloons must bill the child's own virtual meter AND the
// enclosing tenant's — and the per-level bound must hold once it ran.
TEST(NestedPsboxTest, ChildBalloonsBillAncestors) {
  TestStack s;
  const AppId tenant_app = s.kernel.CreateApp("tenant");
  const int tenant = s.manager.CreateBox(tenant_app, TenantHw());
  s.manager.sandbox(tenant).set_budget(1.0);

  AppOptions opts;
  opts.iterations = 10;
  opts.use_psbox = true;
  opts.psbox_parent = tenant;
  opts.psbox_budget = 0.05;
  AppHandle app = SpawnCalib3d(s.kernel, "nested", opts);
  while (!s.kernel.AppFinished(app.app) && s.kernel.Now() < Seconds(10)) {
    s.kernel.RunUntil(s.kernel.Now() + Millis(50));
  }
  ASSERT_TRUE(s.kernel.AppFinished(app.app));

  // Box 1 is the child (tenant was box 0 and created first).
  ASSERT_EQ(s.manager.box_count(), 2u);
  const Joules child = s.manager.ReadEnergy(1);
  const Joules composed = s.manager.ReadEnergy(tenant);
  EXPECT_GT(child, 0.0);
  EXPECT_GT(composed, 0.0);
  // The tenant's composed meter covers the child's balloons; the child may
  // only exceed it by the protocol slack (<= 10 %, per level).
  EXPECT_LE(child, composed * 1.10 + 1e-9);
  EXPECT_EQ(s.manager.AccountingViolations(0.10), 0u);
}

// The tenant bound keeps holding while children churn: short-lived nested
// apps arrive, run and exit back-to-back, and the audit stays clean at every
// step along the way.
TEST(NestedPsboxTest, TenantBoundHoldsUnderChurn) {
  TestStack s;
  const AppId tenant_app = s.kernel.CreateApp("tenant");
  const int tenant = s.manager.CreateBox(tenant_app, TenantHw());
  s.manager.sandbox(tenant).set_budget(0.8);

  for (int round = 0; round < 5; ++round) {
    AppOptions opts;
    opts.iterations = 4;
    opts.use_psbox = true;
    opts.psbox_parent = tenant;
    opts.psbox_budget = 0.05;
    AppHandle app = (round % 2 == 0 ? SpawnCalib3d : SpawnBodytrack)(
        s.kernel, "churn" + std::to_string(round), opts);
    while (!s.kernel.AppFinished(app.app) && s.kernel.Now() < Seconds(30)) {
      s.kernel.RunUntil(s.kernel.Now() + Millis(50));
      EXPECT_EQ(s.manager.AccountingViolations(0.10), 0u)
          << "round " << round << " at " << s.kernel.Now();
    }
    ASSERT_TRUE(s.kernel.AppFinished(app.app));
  }
  EXPECT_GT(s.manager.ReadEnergy(tenant), 0.0);
  EXPECT_EQ(s.manager.AccountingViolations(0.10), 0u);
}

// Crash evacuation must be accounting-neutral: a child that arrives with
// banked energy from a failed board reads high on its own meter, but the
// audit compares only what composed on THIS board — the transferred base is
// excluded on both sides, so the tenant bound still holds.
TEST(NestedPsboxTest, EvacuatedChildDoesNotBreakTenantBound) {
  TestStack s;
  const AppId tenant_app = s.kernel.CreateApp("tenant");
  const int tenant = s.manager.CreateBox(tenant_app, TenantHw());
  s.manager.sandbox(tenant).set_budget(1.0);

  // The evacuated app's billed history lands before its box exists here.
  const AppId app = s.kernel.CreateApp("evacuee");
  s.manager.StageTransferredEnergy(app, 5.0);
  const int box =
      s.manager.CreateNestedBox(app, {HwComponent::kCpu}, tenant, 0.1);
  // The meter resumes from the transferred value...
  EXPECT_GE(s.manager.ReadEnergy(box), 5.0);
  // ...while the fresh tenant's composed meter is still ~zero. Without the
  // exclusion this would read as a gross violation.
  EXPECT_LT(s.manager.ReadEnergy(tenant), 1.0);
  EXPECT_EQ(s.manager.AccountingViolations(0.10), 0u);
}

// Fleet-level: a board fails mid-run while its generated population is
// mid-balloon; the children are evacuated by state transfer and the
// surviving boards' tenant audits stay clean. The whole scenario — failure
// included — must remain bit-identical across worker-thread counts.
TEST(NestedPsboxTest, PopulationCrashEvacuationKeepsBoundAndDeterminism) {
  auto scenario = [] {
    FleetScenario sc;
    sc.seed = 0xFA11;
    sc.horizon = Millis(400);
    sc.epoch = 10 * kMillisecond;
    sc.subfleets = 2;
    sc.root_period = 2;
    sc.migration.enabled = true;
    sc.boards.resize(4);
    sc.boards[1].fail_at = Millis(200);  // mid-population, mid-balloon
    sc.population.seed = 0x90D5;
    sc.population.base_rate_hz = 60.0;
    sc.population.tenants_per_board = 2;
    sc.population.tenant_budget = 0.5;
    sc.population.child_budget = 0.05;
    return sc;
  };
  RootCoordinator a(scenario(), 1);
  const FleetStats stats = a.Run();
  RootCoordinator b(scenario(), 3);
  EXPECT_EQ(stats.Fingerprint(), b.Run().Fingerprint());

  ASSERT_EQ(stats.boards.size(), 4u);
  EXPECT_TRUE(stats.boards[1].failed);
  uint64_t spawned = 0;
  for (int i = 0; i < 4; ++i) {
    spawned += stats.boards[static_cast<size_t>(i)].popgen_spawned;
    if (i == 1) {
      continue;  // the failed board's audit is moot
    }
    BoardPopulation* pop = a.population(i);
    ASSERT_NE(pop, nullptr);
    EXPECT_EQ(pop->AccountingViolations(0.10), 0u) << "board " << i;
  }
  EXPECT_GT(spawned, 0u);
}

}  // namespace
}  // namespace psbox
