// Tests for the §7 extension hardware (OLED display, GPS) and the §8.2
// power-events layer.

#include <gtest/gtest.h>

#include "src/psbox/power_events.h"
#include "tests/test_util.h"

namespace psbox {
namespace {

// --- Display (OLED, entanglement-free) -------------------------------------

TEST(DisplayTest, BasePowerWithNoSurfaces) {
  Board board;
  EXPECT_DOUBLE_EQ(board.display().ModelPower(), board.config().display.base_power);
}

TEST(DisplayTest, PerPixelAdditivity) {
  // The §7 property: pixels contribute independently — total power is the
  // exact sum of per-app contributions plus the base.
  Board board;
  board.display().SetSurface(1, 0.5, 0.8);
  board.display().SetSurface(2, 0.3, 0.6);
  const Watts expected = board.config().display.base_power +
                         board.display().AppPower(1) + board.display().AppPower(2);
  EXPECT_DOUBLE_EQ(board.display().ModelPower(), expected);
}

TEST(DisplayTest, AppEnergyIsExactShare) {
  Board board;
  board.display().SetSurface(1, 1.0, 1.0);
  board.sim().RunUntil(Seconds(1));
  board.display().RemoveSurface(1);
  board.sim().RunUntil(Seconds(2));
  EXPECT_NEAR(board.display().AppEnergy(1, 0, Seconds(2)),
              board.config().display.full_panel_power, 1e-9);
}

TEST(DisplayTest, BrightnessScalesPower) {
  Board board;
  board.display().SetSurface(1, 0.5, 0.4);
  const Watts dim = board.display().AppPower(1);
  board.display().SetSurface(1, 0.5, 0.8);
  EXPECT_NEAR(board.display().AppPower(1), 2.0 * dim, 1e-12);
}

TEST(DisplayTest, PsboxReadsOwnSurfaceOnly) {
  TestStack s;
  const AppId mine = s.kernel.CreateApp("mine");
  s.kernel.SpawnTask(mine, "t", std::make_unique<BusyBehavior>());
  const AppId other = s.kernel.CreateApp("other");
  s.board.display().SetSurface(mine, 0.4, 0.5);
  s.board.display().SetSurface(other, 0.6, 1.0);  // brighter co-runner
  const int box = s.manager.CreateBox(mine, {HwComponent::kDisplay});
  s.manager.EnterBox(box);
  s.kernel.RunUntil(Seconds(1));
  const Joules observed = s.manager.ReadEnergyFor(box, HwComponent::kDisplay);
  EXPECT_NEAR(observed, s.board.display().AppPower(mine) * 1.0, 1e-6);
}

// --- GPS --------------------------------------------------------------------

TEST(GpsTest, ColdStartThenOperating) {
  Board board;
  board.gps().Request(1);
  EXPECT_EQ(board.gps().state(), GpsState::kAcquiring);
  EXPECT_DOUBLE_EQ(board.gps().ModelPower(), board.config().gps.acquire_power);
  board.sim().RunUntil(board.config().gps.cold_start + 1);
  EXPECT_EQ(board.gps().state(), GpsState::kOn);
  EXPECT_DOUBLE_EQ(board.gps().ModelPower(), board.config().gps.on_power);
}

TEST(GpsTest, ConcurrentUsersShareTheDevice) {
  // §7: GPS power is unaffected by concurrent uses once operating.
  Board board;
  board.gps().Request(1);
  board.sim().RunUntil(board.config().gps.cold_start + 1);
  const Watts one_user = board.gps().ModelPower();
  board.gps().Request(2);
  EXPECT_DOUBLE_EQ(board.gps().ModelPower(), one_user);
  board.gps().Release(1);
  EXPECT_EQ(board.gps().state(), GpsState::kOn);  // user 2 keeps it on
  board.gps().Release(2);
  EXPECT_EQ(board.gps().state(), GpsState::kOff);
}

TEST(GpsTest, ReleaseDuringAcquisitionPowersOff) {
  Board board;
  board.gps().Request(1);
  board.sim().RunUntil(Millis(100));
  board.gps().Release(1);
  board.sim().RunUntil(board.config().gps.cold_start + Seconds(1));
  EXPECT_EQ(board.gps().state(), GpsState::kOff);
  EXPECT_DOUBLE_EQ(board.gps().ModelPower(), board.config().gps.off_power);
}

TEST(GpsTest, PsboxSeesOperatingPowerButNotAcquisition) {
  // The acquisition burst must not be revealed (it would leak that some app
  // just powered the GPS on, §4.1); operating power is safe to reveal.
  TestStack s;
  const AppId a = s.kernel.CreateApp("a");
  s.kernel.SpawnTask(a, "t", std::make_unique<BusyBehavior>());
  const int box = s.manager.CreateBox(a, {HwComponent::kGps});
  const AppId user = s.kernel.CreateApp("gps-user");
  s.board.gps().Request(user);
  s.kernel.RunUntil(s.board.config().gps.cold_start + Seconds(1));
  const Joules observed = s.manager.ReadEnergyFor(box, HwComponent::kGps);
  // Expected: idle during the 2 s cold start + on-power during 1 s operating.
  const Joules expected =
      s.board.config().gps.off_power * ToSeconds(s.board.config().gps.cold_start) +
      s.board.config().gps.on_power * 1.0;
  EXPECT_NEAR(observed, expected, expected * 0.01);
  // In particular the acquisition burst (0.145 W x 2 s) is absent.
  const Joules with_burst =
      s.board.config().gps.acquire_power * ToSeconds(s.board.config().gps.cold_start) +
      s.board.config().gps.on_power * 1.0;
  EXPECT_LT(observed, with_burst * 0.8);
}

// --- Power events (§8.2) -----------------------------------------------------

struct EventLog {
  std::vector<PowerEvent> events;
};

TEST(PowerEventsTest, HighPowerFiresOnSustainedLoad) {
  TestStack s;
  const AppId a = s.kernel.CreateApp("a");
  s.kernel.SpawnTask(a, "t", std::make_unique<BusyBehavior>());
  const int box = s.manager.CreateBox(a, {HwComponent::kCpu});
  s.manager.EnterBox(box);
  PowerEventMonitor monitor(&s.kernel, &s.manager, box);
  auto log = std::make_shared<EventLog>();
  PowerEventSpec spec;
  spec.kind = PowerEventKind::kHighPower;
  spec.threshold = 1.0;
  spec.min_duration = 3 * kMillisecond;
  monitor.Register(spec, [log](const PowerEvent& e) { log->events.push_back(e); });
  s.kernel.RunUntil(Seconds(1));
  ASSERT_FALSE(log->events.empty());
  EXPECT_EQ(log->events.front().kind, PowerEventKind::kHighPower);
  EXPECT_GE(log->events.front().value, 1.0);
}

TEST(PowerEventsTest, NoEventBelowThreshold) {
  TestStack s;
  const AppId a = s.kernel.CreateApp("a");
  s.kernel.SpawnTask(a, "t", std::make_unique<BusyBehavior>());
  const int box = s.manager.CreateBox(a, {HwComponent::kCpu});
  s.manager.EnterBox(box);
  PowerEventMonitor monitor(&s.kernel, &s.manager, box);
  auto log = std::make_shared<EventLog>();
  PowerEventSpec spec;
  spec.kind = PowerEventKind::kHighPower;
  spec.threshold = 50.0;  // far above anything the board can draw
  monitor.Register(spec, [log](const PowerEvent& e) { log->events.push_back(e); });
  s.kernel.RunUntil(Seconds(1));
  EXPECT_TRUE(log->events.empty());
  EXPECT_GT(monitor.samples_processed(), 0u);
}

TEST(PowerEventsTest, FrequentSpikesDetected) {
  TestStack s;
  const AppId a = s.kernel.CreateApp("a");
  // Spiky workload: short hot bursts separated by sleeps.
  s.kernel.SpawnTask(a, "t",
                     std::make_unique<FnBehavior>([phase = 0](TaskEnv&) mutable {
                       return (phase++ % 2 == 0)
                                  ? Action::Compute(3 * kMillisecond, 1.3)
                                  : Action::Sleep(7 * kMillisecond);
                     }));
  const int box = s.manager.CreateBox(a, {HwComponent::kCpu});
  s.manager.EnterBox(box);
  PowerEventMonitor monitor(&s.kernel, &s.manager, box);
  auto log = std::make_shared<EventLog>();
  PowerEventSpec spec;
  spec.kind = PowerEventKind::kFrequentSpikes;
  spec.threshold = 1.0;
  spec.spike_count = 3;
  spec.window = 100 * kMillisecond;
  monitor.Register(spec, [log](const PowerEvent& e) { log->events.push_back(e); });
  s.kernel.RunUntil(Seconds(1));
  EXPECT_FALSE(log->events.empty());
}

TEST(PowerEventsTest, UnregisterStopsDelivery) {
  TestStack s;
  const AppId a = s.kernel.CreateApp("a");
  s.kernel.SpawnTask(a, "t", std::make_unique<BusyBehavior>());
  const int box = s.manager.CreateBox(a, {HwComponent::kCpu});
  s.manager.EnterBox(box);
  PowerEventMonitor monitor(&s.kernel, &s.manager, box);
  auto log = std::make_shared<EventLog>();
  PowerEventSpec spec;
  spec.kind = PowerEventKind::kHighPower;
  spec.threshold = 1.0;
  const int id =
      monitor.Register(spec, [log](const PowerEvent& e) { log->events.push_back(e); });
  s.kernel.RunUntil(Millis(200));
  const size_t seen = log->events.size();
  monitor.Unregister(id);
  s.kernel.RunUntil(Seconds(1));
  EXPECT_EQ(log->events.size(), seen);
}

TEST(PowerEventsTest, RisingTrendDetected) {
  TestStack s;
  const AppId a = s.kernel.CreateApp("a");
  // Monotonically intensifying duty cycle.
  s.kernel.SpawnTask(a, "t",
                     std::make_unique<FnBehavior>([step = 0](TaskEnv&) mutable {
                       ++step;
                       const auto busy = static_cast<DurationNs>(
                           std::min(9.0, 1.0 + step * 0.05) * kMillisecond);
                       return (step % 2 == 0) ? Action::Compute(busy, 1.2)
                                              : Action::Sleep(10 * kMillisecond -
                                                              busy);
                     }));
  const int box = s.manager.CreateBox(a, {HwComponent::kCpu});
  s.manager.EnterBox(box);
  PowerEventMonitor monitor(&s.kernel, &s.manager, box, 50 * kMillisecond);
  auto log = std::make_shared<EventLog>();
  PowerEventSpec spec;
  spec.kind = PowerEventKind::kRisingTrend;
  spec.rising_windows = 3;
  monitor.Register(spec, [log](const PowerEvent& e) { log->events.push_back(e); });
  s.kernel.RunUntil(Seconds(3));
  EXPECT_FALSE(log->events.empty());
}

}  // namespace
}  // namespace psbox
