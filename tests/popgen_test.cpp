// Tests for the population generator: seeded determinism, rate shaping,
// config parsing, and fleet-level thread-count invariance.

#include <gtest/gtest.h>

#include <thread>

#include "src/fleet/root_coordinator.h"
#include "src/popgen/app_catalog.h"
#include "src/popgen/board_population.h"
#include "src/popgen/population_generator.h"

namespace psbox {
namespace {

PopulationConfig RichConfig() {
  PopulationConfig cfg;
  cfg.seed = 0x5eed;
  cfg.base_rate_hz = 80.0;
  cfg.diurnal_amplitude = 0.6;
  cfg.diurnal_period = 300 * kMillisecond;
  cfg.flash_start = Millis(400);
  cfg.flash_duration = Millis(150);
  cfg.flash_multiplier = 3.0;
  cfg.adversarial_fraction = 0.1;
  cfg.adversarial_period = Millis(500);
  cfg.adversarial_duty = 0.4;
  cfg.tenants_per_board = 2;
  return cfg;
}

TEST(PopulationGeneratorTest, SameSeedSameArrivalSequence) {
  const PopulationConfig cfg = RichConfig();
  PopulationGenerator a(cfg, 42);
  PopulationGenerator b(cfg, 42);
  for (int i = 0; i < 500; ++i) {
    const GeneratedArrival x = a.Next();
    const GeneratedArrival y = b.Next();
    EXPECT_EQ(x.when, y.when);
    EXPECT_EQ(x.seq, y.seq);
    EXPECT_EQ(x.catalog_index, y.catalog_index);
    EXPECT_EQ(x.iterations, y.iterations);
    EXPECT_EQ(x.adversarial, y.adversarial);
    EXPECT_EQ(x.tenant, y.tenant);
  }
}

TEST(PopulationGeneratorTest, DifferentSeedsDiverge) {
  const PopulationConfig cfg = RichConfig();
  PopulationGenerator a(cfg, 1);
  PopulationGenerator b(cfg, 2);
  bool diverged = false;
  for (int i = 0; i < 50 && !diverged; ++i) {
    diverged = a.Next().when != b.Next().when;
  }
  EXPECT_TRUE(diverged);
}

TEST(PopulationGeneratorTest, ArrivalsStrictlyIncreaseAndStayBounded) {
  const PopulationConfig cfg = RichConfig();
  PopulationGenerator gen(cfg, 7);
  TimeNs prev = -1;
  for (int i = 0; i < 1000; ++i) {
    const GeneratedArrival a = gen.Next();
    EXPECT_GT(a.when, prev);
    prev = a.when;
    EXPECT_GE(a.catalog_index, 0);
    EXPECT_LT(a.catalog_index, static_cast<int>(AppCatalog().size()));
    EXPECT_GE(a.iterations, cfg.min_iterations);
    EXPECT_LE(a.iterations, cfg.max_iterations);
    EXPECT_GE(a.tenant, 0);
    EXPECT_LT(a.tenant, cfg.tenants_per_board);
  }
}

TEST(PopulationGeneratorTest, FlashCrowdRaisesRate) {
  const PopulationConfig cfg = RichConfig();
  PopulationGenerator gen(cfg, 7);
  const TimeNs inside = cfg.flash_start + cfg.flash_duration / 2;
  // One diurnal period later: identical diurnal phase, but past the flash
  // window — the ratio is exactly the flash multiplier.
  const TimeNs matched = inside + cfg.diurnal_period;
  ASSERT_GE(matched, cfg.flash_start + cfg.flash_duration);
  EXPECT_NEAR(gen.RateAt(inside) / gen.RateAt(matched), cfg.flash_multiplier,
              1e-9);
}

TEST(PopulationGeneratorTest, AdversarialPhaseEmitsCamouflage) {
  PopulationConfig cfg = RichConfig();
  cfg.adversarial_fraction = 1.0;
  cfg.adversarial_period = 0;  // always in-phase
  cfg.adversarial_duty = 1.0;
  PopulationGenerator gen(cfg, 3);
  for (int i = 0; i < 20; ++i) {
    const GeneratedArrival a = gen.Next();
    EXPECT_TRUE(a.adversarial);
    EXPECT_EQ(a.catalog_index, CamouflageIndex());
  }
}

TEST(PopulationConfigTest, ParsesFullConfig) {
  PopulationConfig cfg;
  std::string error;
  ASSERT_TRUE(ParsePopulationConfig(
      "# comment\n"
      "seed,0x1234\n"
      "base_rate_hz,25\n"
      "diurnal_amplitude,0.3\n"
      "diurnal_period_ms,250\n"
      "flash_start_ms,100\n"
      "flash_duration_ms,50\n"
      "flash_multiplier,4\n"
      "tenants_per_board,3\n"
      "tenant_budget_j,0.5\n"
      "child_budget_j,0.02\n"
      "mix,calib3d,2\n"
      "mix,wget,1\n",
      &cfg, &error))
      << error;
  EXPECT_EQ(cfg.seed, 0x1234u);
  EXPECT_DOUBLE_EQ(cfg.base_rate_hz, 25.0);
  EXPECT_EQ(cfg.diurnal_period, 250 * kMillisecond);
  EXPECT_EQ(cfg.tenants_per_board, 3);
  ASSERT_EQ(cfg.mix.size(), 2u);
  EXPECT_EQ(cfg.mix[0].app, "calib3d");
  EXPECT_DOUBLE_EQ(cfg.mix[1].weight, 1.0);
}

TEST(PopulationConfigTest, RejectsUnknownKeyWithDescriptiveError) {
  PopulationConfig cfg;
  std::string error;
  EXPECT_FALSE(ParsePopulationConfig("definitely_not_a_key,1\n", &cfg, &error));
  EXPECT_NE(error.find("definitely_not_a_key"), std::string::npos);
}

TEST(PopulationConfigTest, RejectsUnknownMixApp) {
  PopulationConfig cfg;
  std::string error;
  EXPECT_FALSE(ParsePopulationConfig(
      "base_rate_hz,10\nmix,not_an_app,1\n", &cfg, &error));
  EXPECT_NE(error.find("not_an_app"), std::string::npos);
}

TEST(PopulationConfigTest, RejectsOutOfRangeValues) {
  PopulationConfig cfg;
  std::string error;
  EXPECT_FALSE(
      ParsePopulationConfig("diurnal_amplitude,1.5\n", &cfg, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParsePopulationConfig("base_rate_hz,nope\n", &cfg, &error));
  EXPECT_FALSE(error.empty());
}

FleetScenario PopulatedScenario(int boards, TimeNs horizon) {
  FleetScenario scenario;
  scenario.seed = 0xF1EE;
  scenario.horizon = horizon;
  scenario.epoch = 10 * kMillisecond;
  scenario.subfleets = 2;
  scenario.root_period = 3;
  scenario.migration.enabled = false;
  scenario.boards.resize(static_cast<size_t>(boards));
  scenario.population.seed = 0x90D5;
  scenario.population.base_rate_hz = 60.0;
  scenario.population.diurnal_amplitude = 0.4;
  scenario.population.tenants_per_board = 2;
  scenario.population.tenant_budget = 0.5;
  scenario.population.child_budget = 0.05;
  return scenario;
}

TEST(PopulationFleetTest, FingerprintIdenticalAcrossThreadCounts) {
  const TimeNs horizon = Millis(300);
  uint64_t fp[3] = {0, 0, 0};
  uint64_t spawned[3] = {0, 0, 0};
  const int threads[3] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    RootCoordinator fleet(PopulatedScenario(4, horizon), threads[i]);
    const FleetStats stats = fleet.Run();
    fp[i] = stats.Fingerprint();
    for (const FleetBoardStats& b : stats.boards) {
      spawned[i] += b.popgen_spawned;
    }
  }
  EXPECT_EQ(fp[0], fp[1]);
  EXPECT_EQ(fp[0], fp[2]);
  EXPECT_GT(spawned[0], 0u);
  EXPECT_EQ(spawned[0], spawned[1]);
  EXPECT_EQ(spawned[0], spawned[2]);
}

TEST(PopulationFleetTest, BoardStreamsAreIndependent) {
  // Two boards under one config must not mirror each other's arrivals.
  RootCoordinator fleet(PopulatedScenario(2, Millis(300)), 1);
  const FleetStats stats = fleet.Run();
  ASSERT_EQ(stats.boards.size(), 2u);
  // Identical streams would give identical spawn counts *and* identical
  // per-board fingerprint inputs; spawn counts alone can collide, so compare
  // the per-board energy too.
  const bool same_counts =
      stats.boards[0].popgen_spawned == stats.boards[1].popgen_spawned;
  const bool same_energy =
      stats.boards[0].rail_energy == stats.boards[1].rail_energy;
  EXPECT_FALSE(same_counts && same_energy);
}

TEST(PopulationFleetTest, AccountingBoundHoldsUnderPopulation) {
  RootCoordinator fleet(PopulatedScenario(2, Millis(400)), 2);
  fleet.Run();
  for (int b = 0; b < 2; ++b) {
    BoardPopulation* pop = fleet.population(b);
    ASSERT_NE(pop, nullptr);
    EXPECT_EQ(pop->AccountingViolations(0.10), 0u);
  }
}

}  // namespace
}  // namespace psbox
