// Unit tests for the baseline CFS-style scheduler (no psbox involvement).

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace psbox {
namespace {

TEST(SchedTest, SingleTaskRunsImmediately) {
  TestStack s;
  Task* t = s.SpawnScript("t", {Action::Compute(5 * kMillisecond)});
  s.kernel.RunUntil(Millis(1));
  EXPECT_EQ(t->state(), TaskState::kRunning);
  // The governor starts at the lowest OPP, so 5 ms of nominal work can take
  // up to 5 / SpeedFactor(min) of wall time.
  s.kernel.RunUntil(Millis(30));
  EXPECT_EQ(t->state(), TaskState::kExited);
  EXPECT_GE(t->total_cpu_time, 5 * kMillisecond);
}

TEST(SchedTest, TasksSpreadAcrossCores) {
  TestStack s;
  Task* a = s.SpawnBusy("a");
  Task* b = s.SpawnBusy("b");
  s.kernel.RunUntil(Millis(1));
  EXPECT_NE(a->core, b->core);
  EXPECT_EQ(a->state(), TaskState::kRunning);
  EXPECT_EQ(b->state(), TaskState::kRunning);
}

TEST(SchedTest, TwoTasksOnOneCoreShareFairly) {
  TestStack s;
  Task* a = s.SpawnBusy("a", 0);
  Task* b = s.SpawnBusy("b", 0);
  s.kernel.RunUntil(Seconds(1));
  const double ratio = static_cast<double>(a->total_cpu_time) /
                       static_cast<double>(b->total_cpu_time);
  EXPECT_NEAR(ratio, 1.0, 0.05);
  // Both got roughly half the core.
  EXPECT_NEAR(static_cast<double>(a->total_cpu_time), 0.5 * kSecond,
              0.05 * kSecond);
}

TEST(SchedTest, ThreeTasksTwoCoresLongRunFairness) {
  // Work stealing must rotate the odd task out; every task ends up with
  // about 2/3 of a core.
  TestStack s;
  Task* a = s.SpawnBusy("a");
  Task* b = s.SpawnBusy("b");
  Task* c = s.SpawnBusy("c");
  s.kernel.RunUntil(Seconds(3));
  for (Task* t : {a, b, c}) {
    EXPECT_NEAR(static_cast<double>(t->total_cpu_time), 2.0 / 3.0 * 3 * kSecond,
                0.1 * 3 * kSecond)
        << t->name();
  }
  EXPECT_GT(s.kernel.scheduler().stats().steals, 0u);
}

TEST(SchedTest, SleepBlocksAndWakes) {
  TestStack s;
  Task* t = s.SpawnScript("t", {Action::Compute(kMillisecond),
                                Action::Sleep(10 * kMillisecond),
                                Action::Compute(kMillisecond)});
  s.kernel.RunUntil(Millis(5));
  EXPECT_EQ(t->state(), TaskState::kBlocked);
  s.kernel.RunUntil(Millis(50));
  EXPECT_EQ(t->state(), TaskState::kExited);
  // Two 1 ms nominal bursts; wall CPU time depends on the OPP (between 1x
  // at the top OPP and 1/SpeedFactor(min) at the lowest).
  EXPECT_GE(static_cast<double>(t->total_cpu_time), 2.0 * kMillisecond);
  EXPECT_LE(static_cast<double>(t->total_cpu_time), 6.0 * kMillisecond);
}

TEST(SchedTest, SleeperDoesNotGainUnboundedCredit) {
  // A task that sleeps a lot must not starve a busy task when it wakes
  // (vruntime clamped to min_vruntime on wake).
  TestStack s;
  Task* busy = s.SpawnBusy("busy", 0);
  const AppId app = s.kernel.CreateApp("sleeper");
  Task* sleeper = s.kernel.SpawnTask(
      app, "sleeper",
      std::make_unique<FnBehavior>([](TaskEnv&) {
        static int i = 0;
        return (i++ % 2 == 0) ? Action::Sleep(50 * kMillisecond)
                              : Action::Compute(kMillisecond);
      }),
      0);
  s.kernel.RunUntil(Seconds(2));
  // The busy task keeps nearly the whole core.
  EXPECT_GT(busy->total_cpu_time, 1.5 * kSecond);
  EXPECT_LT(sleeper->total_cpu_time, 0.2 * kSecond);
}

TEST(SchedTest, PreemptionByTick) {
  TestStack s;
  // One long burst vs many short ones on the same core: the long one must be
  // preempted (it cannot run to completion uninterrupted).
  Task* longtask = s.SpawnScript("long", {Action::Compute(100 * kMillisecond)}, 0);
  Task* shorttask = s.SpawnBusy("short", 0);
  s.kernel.RunUntil(Millis(50));
  EXPECT_GT(shorttask->total_cpu_time, 10 * kMillisecond);
  EXPECT_GT(longtask->total_cpu_time, 10 * kMillisecond);
  EXPECT_NE(longtask->state(), TaskState::kExited);
}

TEST(SchedTest, ExitFreesCore) {
  TestStack s;
  s.SpawnScript("t", {Action::Compute(2 * kMillisecond)}, 0);
  Task* follower = s.SpawnBusy("f", 0);
  s.kernel.RunUntil(Millis(20));
  EXPECT_GE(follower->total_cpu_time, 15 * kMillisecond);
}

TEST(SchedTest, SyscallOverheadCharged) {
  TestStack s;
  Task* t = s.SpawnScript(
      "t", {Action::Send(100), Action::Compute(kMillisecond)});
  s.kernel.RunUntil(Millis(10));
  // Send costs syscall_overhead of CPU in addition to the compute.
  EXPECT_GE(t->total_cpu_time,
            kMillisecond + s.kernel.scheduler().config().syscall_overhead);
}

TEST(SchedTest, ContextSwitchesCounted) {
  TestStack s;
  s.SpawnBusy("a", 0);
  s.SpawnBusy("b", 0);
  s.kernel.RunUntil(Millis(100));
  EXPECT_GT(s.kernel.scheduler().stats().context_switches, 10u);
}

TEST(SchedTest, ScheduleTraceRecordsApps) {
  TestStack s;
  Task* t = s.SpawnBusy("a", 0);
  s.kernel.RunUntil(Millis(10));
  EXPECT_EQ(static_cast<AppId>(s.kernel.scheduler().ScheduleTrace(0).ValueAt(Millis(5))),
            t->app());
}

TEST(SchedTest, CpuDeviceSeesRunningApp) {
  TestStack s;
  Task* t = s.SpawnBusy("a", 1);
  s.kernel.RunUntil(Millis(1));
  EXPECT_EQ(s.board.cpu().CoreApp(1), t->app());
  EXPECT_TRUE(s.board.cpu().CoreActive(1));
}

TEST(SchedTest, GovernorRampsUnderLoadAndDecaysWhenIdle) {
  TestStack s;
  s.SpawnScript("t", {Action::Compute(200 * kMillisecond)});
  s.kernel.RunUntil(Millis(100));
  EXPECT_EQ(s.board.cpu().opp_index(), s.board.cpu().num_opps() - 1);
  // After the task exits the OPP decays step by step.
  s.kernel.RunUntil(Millis(800));
  EXPECT_EQ(s.board.cpu().opp_index(), 0);
}

TEST(SchedTest, WakeLatencyTracked) {
  TestStack s;
  s.SpawnScript("t", {Action::Compute(kMillisecond), Action::Sleep(5 * kMillisecond),
                      Action::Compute(kMillisecond)});
  s.kernel.RunUntil(Millis(20));
  EXPECT_GE(s.kernel.scheduler().stats().wakeups, 1u);
}

TEST(SchedTest, DeterministicExecution) {
  auto run = [] {
    TestStack s;
    Task* a = s.SpawnBusy("a");
    s.SpawnBusy("b");
    s.SpawnBusy("c");
    s.kernel.RunUntil(Seconds(1));
    return a->total_cpu_time;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace psbox
