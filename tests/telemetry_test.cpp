// Telemetry retention and the restructured virtual-meter sampling path.
//
// The retention contract (Kernel::TrimTelemetry): trimming power telemetry
// behind a horizon folds exact energy bases first, so
//   * rail-metered psbox energy reads are BIT-IDENTICAL with retention on or
//     off (the fold replays the identical span-by-span addition sequence);
//   * direct-metered (§7 display/GPS) reads are exact up to FP association
//     (the banked split changes the order of additions);
//   * the steady-state telemetry working set is bounded by the retention
//     window, independent of simulated duration;
//   * fleet fingerprints are invariant under retention and thread count.
//
// The sampling contract (PsboxManager::Sample): one shared timestamp grid
// per drain — a multi-component box can never return mismatched series or
// exceed the caller's cap, and the grid stays phase-aligned across
// mid-period drains.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/fleet/root_coordinator.h"
#include "tests/test_util.h"

namespace psbox {
namespace {

constexpr DurationNs kRetention = 50 * kMillisecond;

KernelConfig RetentionConfig(DurationNs retention = kRetention) {
  KernelConfig cfg;
  cfg.telemetry_retention = retention;
  return cfg;
}

// --- exactness: retention on vs off ---------------------------------------

TEST(RetentionTest, EnergyAndSamplesBitIdenticalWithRetention) {
  // Two identical stacks, one with bounded retention. Stepping both through
  // the same schedule of reads and drains must produce bit-identical psbox
  // energy and bit-identical sample streams: trimming folds exact bases and
  // consumes no randomness.
  TestStack plain(BoardConfig{}, KernelConfig{});
  TestStack trimmed(BoardConfig{}, RetentionConfig());
  for (TestStack* s : {&plain, &trimmed}) {
    s->SpawnBusy("busy");
  }
  const int box_plain = plain.manager.CreateBox(0, {HwComponent::kCpu});
  const int box_trim = trimmed.manager.CreateBox(0, {HwComponent::kCpu});
  plain.manager.EnterBox(box_plain);
  trimmed.manager.EnterBox(box_trim);

  std::vector<PowerSample> buf_plain;
  std::vector<PowerSample> buf_trim;
  for (TimeNs t = Millis(20); t <= Millis(500); t += Millis(20)) {
    plain.kernel.RunUntil(t);
    trimmed.kernel.RunUntil(t);
    EXPECT_EQ(plain.manager.ReadEnergy(box_plain),
              trimmed.manager.ReadEnergy(box_trim))
        << "at " << t;
    buf_plain.clear();
    buf_trim.clear();
    const size_t n_plain = plain.manager.Sample(box_plain, &buf_plain, 1u << 20);
    const size_t n_trim = trimmed.manager.Sample(box_trim, &buf_trim, 1u << 20);
    ASSERT_EQ(n_plain, n_trim) << "at " << t;
    for (size_t i = 0; i < buf_plain.size(); ++i) {
      ASSERT_EQ(buf_plain[i].timestamp, buf_trim[i].timestamp);
      ASSERT_EQ(buf_plain[i].watts, buf_trim[i].watts);
      ASSERT_EQ(buf_plain[i].estimated, buf_trim[i].estimated);
    }
  }

  // The trimmed stack really trimmed (this is not a vacuous comparison) and
  // holds strictly less history than the unbounded one.
  EXPECT_GT(trimmed.kernel.last_trim_horizon(), 0);
  const StepTrace& rail_plain = plain.board.RailFor(HwComponent::kCpu).trace();
  const StepTrace& rail_trim = trimmed.board.RailFor(HwComponent::kCpu).trace();
  EXPECT_GT(rail_trim.trimmed_steps(), 0u);
  EXPECT_LT(rail_trim.size(), rail_plain.size());
}

TEST(RetentionTest, ManualTrimPreservesEnergyDetailExactly) {
  // Reading energy immediately before and after an explicit trim must agree
  // bit-for-bit on a rail-metered component: TrimOwned folds exactly the
  // spans the untrimmed query would have integrated, in the same order.
  TestStack s;
  s.SpawnBusy("busy");
  const int box = s.manager.CreateBox(0, {HwComponent::kCpu});
  s.manager.EnterBox(box);
  s.kernel.RunUntil(Millis(200));

  const Joules before = s.manager.ReadEnergy(box);
  const PowerSandbox::EnergyDetail detail_before = s.manager.ReadEnergyDetail(box);
  const TimeNs horizon = s.kernel.TrimTelemetry(s.kernel.Now() - Millis(50));
  EXPECT_GT(horizon, 0);
  EXPECT_LE(horizon, s.kernel.Now() - Millis(50));
  const PowerSandbox::EnergyDetail detail_after = s.manager.ReadEnergyDetail(box);
  EXPECT_EQ(before, s.manager.ReadEnergy(box));
  EXPECT_EQ(detail_before.measured, detail_after.measured);
  EXPECT_EQ(detail_before.estimated, detail_after.estimated);
  EXPECT_EQ(detail_before.measured_time, detail_after.measured_time);
  EXPECT_EQ(detail_before.estimated_time, detail_after.estimated_time);

  // Trimming again at the same horizon is a no-op for the accounting.
  s.kernel.TrimTelemetry(s.kernel.Now() - Millis(50));
  EXPECT_EQ(before, s.manager.ReadEnergy(box));
}

TEST(RetentionTest, TrimPreservesDropoutEstimationSplit) {
  // A meter-dropout window behind the horizon: its estimated share must ride
  // into the bases and the reported measured/estimated split must not move.
  BoardConfig board;
  board.faults.meter_dropout.push_back({Millis(40), Millis(60)});
  TestStack s(board);
  s.SpawnBusy("busy");
  const int box = s.manager.CreateBox(0, {HwComponent::kCpu});
  s.manager.EnterBox(box);
  s.kernel.RunUntil(Millis(200));

  const PowerSandbox::EnergyDetail before = s.manager.ReadEnergyDetail(box);
  ASSERT_GT(before.estimated_time, 0) << "dropout window never sampled";
  s.kernel.TrimTelemetry(Millis(150));  // horizon well past the dropout
  const PowerSandbox::EnergyDetail after = s.manager.ReadEnergyDetail(box);
  EXPECT_EQ(before.measured, after.measured);
  EXPECT_EQ(before.estimated_time, after.estimated_time);
  // The estimated share is recomputed from the aggregated measured average
  // at query time; folding keeps those aggregates identical.
  EXPECT_EQ(before.estimated, after.estimated);
}

TEST(RetentionTest, DirectMeteredBankIsNearExact) {
  // §7 display energy: banking the pre-horizon integral splits one integral
  // into two, so the read is exact up to FP association (not bit-identical).
  TestStack plain(BoardConfig{}, KernelConfig{});
  TestStack trimmed(BoardConfig{}, RetentionConfig());
  for (TestStack* s : {&plain, &trimmed}) {
    const AppId mine = s->kernel.CreateApp("mine");
    s->kernel.SpawnTask(mine, "t", std::make_unique<BusyBehavior>());
    s->board.display().SetSurface(mine, 0.4, 0.5);
  }
  const int box_plain = plain.manager.CreateBox(0, {HwComponent::kDisplay});
  const int box_trim = trimmed.manager.CreateBox(0, {HwComponent::kDisplay});
  plain.manager.EnterBox(box_plain);
  trimmed.manager.EnterBox(box_trim);
  plain.kernel.RunUntil(Seconds(1));
  trimmed.kernel.RunUntil(Seconds(1));

  const Joules expect = plain.manager.ReadEnergy(box_plain);
  const Joules got = trimmed.manager.ReadEnergy(box_trim);
  ASSERT_GT(expect, 0.0);
  EXPECT_NEAR(got, expect, 1e-9 * expect);
  EXPECT_GT(trimmed.manager.sandbox(box_trim)
                .direct_energy_base(HwComponent::kDisplay),
            0.0);
}

// --- bounded memory --------------------------------------------------------

TEST(RetentionTest, SteadyStateWorkingSetIndependentOfDuration) {
  // Under retention, the retained telemetry (rail steps, ownership
  // intervals, timeline edges, ledger records) covers a bounded window, so
  // running 4x longer must not grow the working set materially.
  auto run = [](TimeNs until) {
    auto s = std::make_unique<TestStack>(BoardConfig{}, RetentionConfig());
    s->SpawnBusy("busy");
    const int box = s->manager.CreateBox(0, {HwComponent::kCpu});
    s->manager.EnterBox(box);
    s->kernel.RunUntil(until);
    return s;
  };
  auto short_run = run(Seconds(1));
  auto long_run = run(Seconds(4));

  const size_t rail_short =
      short_run->board.RailFor(HwComponent::kCpu).trace().size();
  const size_t rail_long =
      long_run->board.RailFor(HwComponent::kCpu).trace().size();
  EXPECT_GT(long_run->board.RailFor(HwComponent::kCpu).trace().trimmed_steps(),
            0u);
  // Generous 2x slack over the steady state; without trimming the 4 s run
  // holds ~4x the steps of the 1 s run.
  EXPECT_LE(rail_long, 2 * rail_short);

  const IntervalSet& owned_short =
      short_run->manager.sandbox(0).owned(HwComponent::kCpu);
  const IntervalSet& owned_long =
      long_run->manager.sandbox(0).owned(HwComponent::kCpu);
  EXPECT_GT(owned_long.trimmed_intervals(), 0u);
  EXPECT_LE(owned_long.size(), 2 * owned_short.size());

  EXPECT_LE(long_run->kernel.ledger().records(HwComponent::kCpu).size(),
            2 * short_run->kernel.ledger().records(HwComponent::kCpu).size() + 8);
}

TEST(RetentionTest, UndrainedSampleBacklogDropsLikeRingBuffer) {
  // A reader that stops draining for longer than the retention window loses
  // the oldest samples (counted in samples_lost) but keeps the grid phase:
  // every sample it eventually gets still lands on the original DAQ grid.
  TestStack s(BoardConfig{}, RetentionConfig());
  s.SpawnBusy("busy");
  const int box = s.manager.CreateBox(0, {HwComponent::kCpu});
  s.manager.EnterBox(box);
  s.kernel.RunUntil(Millis(400));  // >> retention, never drained

  const PowerSandbox& sb = s.manager.sandbox(box);
  EXPECT_GT(sb.samples_lost(), 0u);
  EXPECT_GE(sb.sample_cursor(), s.kernel.last_trim_horizon());

  const DurationNs period = s.board.config().meter.sample_period;
  std::vector<PowerSample> buf;
  ASSERT_GT(s.manager.Sample(box, &buf, 1u << 20), 0u);
  for (const PowerSample& sample : buf) {
    EXPECT_EQ(sample.timestamp % period, 0) << "off the DAQ grid";
    EXPECT_GE(sample.timestamp, s.kernel.last_trim_horizon());
  }
}

// --- the single-grid sampling path -----------------------------------------

TEST(SampleMergeTest, MultiComponentBoxSharesOneGrid) {
  // Regression: the per-component merge used to assemble separate vectors
  // and silently truncate to the shortest on length mismatch. One shared
  // grid cannot mismatch: a CPU+GPU box returns exactly one series on the
  // DAQ grid with strictly increasing timestamps.
  TestStack s;
  s.SpawnBusy("busy");
  const int box =
      s.manager.CreateBox(0, {HwComponent::kCpu, HwComponent::kGpu});
  s.manager.EnterBox(box);
  s.kernel.RunUntil(Millis(20));

  const DurationNs period = s.board.config().meter.sample_period;
  std::vector<PowerSample> buf;
  const size_t n = s.manager.Sample(box, &buf, 1u << 20);
  ASSERT_GT(n, 0u);
  EXPECT_EQ(buf.size(), n);
  for (size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i].timestamp, static_cast<TimeNs>(i) * period);
    // Both rails contribute: the merged reading is at least the two idle
    // draws minus noise floor — just check it is a sane positive merge.
    EXPECT_GT(buf[i].watts, 0.0);
  }
}

TEST(SampleMergeTest, CapIsExactOnMidPeriodDrains) {
  // Regression: the drain loop used to emit floor(span/period)+1 samples,
  // overshooting the caller's cap by one on mid-period drains.
  TestStack s;
  s.SpawnBusy("busy");
  const int box = s.manager.CreateBox(0, {HwComponent::kCpu});
  s.manager.EnterBox(box);
  const DurationNs period = s.board.config().meter.sample_period;
  s.kernel.RunUntil(Millis(10) + period / 2);  // not on the grid

  std::vector<PowerSample> buf;
  EXPECT_EQ(s.manager.Sample(box, &buf, 50), 50u);
  EXPECT_EQ(buf.size(), 50u);
  // The rest of the backlog drains on the same grid, phase preserved.
  buf.clear();
  const size_t rest = s.manager.Sample(box, &buf, 1u << 20);
  ASSERT_GT(rest, 0u);
  EXPECT_EQ(buf.front().timestamp, static_cast<TimeNs>(50) * period);
  for (const PowerSample& sample : buf) {
    EXPECT_EQ(sample.timestamp % period, 0);
  }
  // Fully drained: the cursor sits at the first grid point past now, so an
  // immediate re-drain returns nothing.
  buf.clear();
  EXPECT_EQ(s.manager.Sample(box, &buf, 1u << 20), 0u);
}

TEST(SampleMergeTest, DropoutSamplesAreIdleAndEstimated) {
  // Samples inside a meter-dropout window report exactly the rail's idle
  // draw (no noise draw is consumed) and carry the estimated tag.
  BoardConfig board;
  board.faults.meter_dropout.push_back({Millis(5), Millis(10)});
  TestStack s(board);
  s.SpawnBusy("busy");
  const int box = s.manager.CreateBox(0, {HwComponent::kCpu});
  s.manager.EnterBox(box);
  s.kernel.RunUntil(Millis(15));

  const Watts idle = s.board.RailFor(HwComponent::kCpu).idle_power();
  std::vector<PowerSample> buf;
  ASSERT_GT(s.manager.Sample(box, &buf, 1u << 20), 0u);
  size_t dropped = 0;
  for (const PowerSample& sample : buf) {
    if (sample.timestamp >= Millis(5) && sample.timestamp < Millis(10)) {
      EXPECT_TRUE(sample.estimated);
      EXPECT_EQ(sample.watts, idle);
      ++dropped;
    } else {
      EXPECT_FALSE(sample.estimated);
    }
  }
  EXPECT_GT(dropped, 0u);
}

// --- fleet invariance -------------------------------------------------------

FleetScenario RetentionScenario(uint64_t seed, DurationNs retention) {
  // CPU/GPU/WiFi apps only: rail-metered paths are bit-exact under
  // retention, so the fingerprint must not move at all.
  FleetScenario scenario;
  scenario.seed = seed;
  scenario.horizon = Seconds(1);
  scenario.epoch = 10 * kMillisecond;
  scenario.boards.resize(3);
  for (FleetBoardSpec& board : scenario.boards) {
    board.kernel.telemetry_retention = retention;
  }

  struct Mix {
    const char* name;
    AppFactory factory;
    int board;
    bool sandboxed;
    Joules budget;
  };
  const Mix mix[] = {
      {"calib3d", &SpawnCalib3d, 0, true, 1.0},
      {"triangle", &SpawnTriangle, 0, true, 0.7},
      {"bodytrack", &SpawnBodytrack, 1, false, 0.0},
      {"scp", &SpawnScp, 1, true, 0.5},
      {"mediascan", &SpawnMediaScan, 2, true, 0.4},
      {"dedup", &SpawnDedup, 2, false, 0.0},
  };
  for (const Mix& m : mix) {
    FleetAppSpec spec;
    spec.name = m.name;
    spec.factory = m.factory;
    spec.board = m.board;
    spec.options.deadline = scenario.horizon;
    spec.options.use_psbox = m.sandboxed;
    spec.energy_budget = m.budget;
    spec.migratable = m.sandboxed;
    scenario.apps.push_back(spec);
  }
  return scenario;
}

uint64_t RunFingerprint(const FleetScenario& scenario, int threads) {
  RootCoordinator fleet(scenario, threads);
  return fleet.Run().Fingerprint();
}

TEST(FleetRetentionTest, FingerprintInvariantUnderRetentionAndThreads) {
  const uint64_t unbounded =
      RunFingerprint(RetentionScenario(0xF1EE7, 0), 2);
  const FleetScenario bounded = RetentionScenario(0xF1EE7, kRetention);
  EXPECT_EQ(unbounded, RunFingerprint(bounded, 1));
  EXPECT_EQ(unbounded, RunFingerprint(bounded, 2));
  EXPECT_EQ(unbounded, RunFingerprint(bounded, 4));
}

TEST(FleetRetentionTest, BoundedShardsActuallyTrim) {
  // Guard against vacuity: the invariance test must cover real trimming.
  RootCoordinator fleet(RetentionScenario(0xF1EE7, kRetention), 2);
  (void)fleet.Run();
  bool any_trimmed = false;
  for (int i = 0; i < fleet.board_count(); ++i) {
    any_trimmed |= fleet.kernel(i).last_trim_horizon() > 0;
  }
  EXPECT_TRUE(any_trimmed);
}

}  // namespace
}  // namespace psbox
