// Unit tests for src/base: step traces, interval sets, rng, stats.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/base/interval_set.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/step_trace.h"

namespace psbox {
namespace {

TEST(StepTrace, ValueAtBeforeFirstStepIsZero) {
  StepTrace t;
  t.Set(100, 2.0);
  EXPECT_EQ(t.ValueAt(50), 0.0);
  EXPECT_EQ(t.ValueAt(100), 2.0);
  EXPECT_EQ(t.ValueAt(150), 2.0);
}

TEST(StepTrace, SameTimeOverwrites) {
  StepTrace t;
  t.Set(100, 2.0);
  t.Set(100, 3.0);
  EXPECT_EQ(t.ValueAt(100), 3.0);
  EXPECT_EQ(t.size(), 1u);
}

TEST(StepTrace, RedundantValueCompacted) {
  StepTrace t;
  t.Set(0, 1.0);
  t.Set(50, 1.0);
  EXPECT_EQ(t.size(), 1u);
}

TEST(StepTrace, IntegralExact) {
  StepTrace t;
  t.Set(0, 1.0);
  t.Set(kSecond, 3.0);
  // 1 W for 1 s + 3 W for 0.5 s
  EXPECT_DOUBLE_EQ(t.IntegralOver(0, kSecond + kSecond / 2), 2.5);
}

TEST(StepTrace, IntegralPartialSegments) {
  StepTrace t;
  t.Set(0, 2.0);
  t.Set(2 * kSecond, 4.0);
  EXPECT_DOUBLE_EQ(t.IntegralOver(kSecond, 3 * kSecond), 2.0 + 4.0);
}

TEST(StepTrace, IntegralEmptyRange) {
  StepTrace t;
  t.Set(0, 2.0);
  EXPECT_DOUBLE_EQ(t.IntegralOver(kSecond, kSecond), 0.0);
}

TEST(StepTrace, MeanOver) {
  StepTrace t;
  t.Set(0, 1.0);
  t.Set(kSecond, 3.0);
  EXPECT_DOUBLE_EQ(t.MeanOver(0, 2 * kSecond), 2.0);
}

TEST(StepTrace, ResampleCount) {
  StepTrace t;
  t.Set(0, 1.0);
  auto samples = t.Resample(0, kMillisecond, 100 * kMicrosecond);
  EXPECT_EQ(samples.size(), 10u);
  for (double v : samples) {
    EXPECT_EQ(v, 1.0);
  }
}

// Naive O(n) reference integral: walk every step pair. The production
// prefix-sum path must agree (to FP association) on arbitrary windows.
double NaiveIntegral(const std::vector<StepTrace::Step>& steps, TimeNs t0,
                     TimeNs t1) {
  double joules = 0.0;
  for (size_t i = 0; i < steps.size(); ++i) {
    const TimeNs seg_begin = std::max(steps[i].time, t0);
    const TimeNs seg_end =
        std::min(i + 1 < steps.size() ? steps[i + 1].time : t1, t1);
    if (seg_end > seg_begin) {
      joules += steps[i].value * ToSeconds(seg_end - seg_begin);
    }
  }
  return joules;
}

TEST(StepTrace, PrefixSumMatchesNaiveReference) {
  Rng rng(0xabc);
  StepTrace t;
  std::vector<StepTrace::Step> steps;
  TimeNs when = 0;
  for (int i = 0; i < 500; ++i) {
    const double value = rng.Uniform(0.0, 5.0);
    t.Set(when, value);
    if (!steps.empty() && steps.back().time == when) {
      steps.back().value = value;
    } else if (steps.empty() || steps.back().value != value) {
      steps.push_back({when, value});
    }
    when += rng.UniformInt(1, 4000);
  }
  for (int i = 0; i < 200; ++i) {
    const TimeNs a = rng.UniformInt(0, when);
    const TimeNs b = rng.UniformInt(0, when);
    const TimeNs t0 = std::min(a, b);
    const TimeNs t1 = std::max(a, b);
    const double expect = NaiveIntegral(steps, t0, t1);
    EXPECT_NEAR(t.IntegralOver(t0, t1), expect, 1e-9 * (1.0 + expect));
  }
}

TEST(StepTrace, CursorSweepMatchesRandomAccess) {
  Rng rng(0x51);
  StepTrace t;
  TimeNs when = 0;
  for (int i = 0; i < 300; ++i) {
    t.Set(when, rng.Uniform(0.5, 2.0));
    when += rng.UniformInt(100, 900);
  }
  // A forward monotone sweep (the meter's access pattern) must read exactly
  // what isolated random-access lookups read, and an out-of-order probe in
  // the middle must not derail the cursor.
  StepTrace fresh = t;
  TimeNs probe = 0;
  int step = 0;
  while (probe < when) {
    if (++step % 37 == 0) {
      (void)t.ValueAt(probe / 3);  // backwards jump
    }
    EXPECT_EQ(t.ValueAt(probe), fresh.ValueAt(probe)) << "at " << probe;
    probe += 173;
  }
}

TEST(StepTrace, ResampleCeilCount) {
  StepTrace t;
  t.Set(0, 1.0);
  // Window of 2.5 periods -> 3 samples (at 0, 1000, 2000), not floor's 2.
  EXPECT_EQ(t.Resample(0, 2500, 1000).size(), 3u);
  EXPECT_EQ(t.Resample(0, 3000, 1000).size(), 3u);
  EXPECT_EQ(t.Resample(0, 3001, 1000).size(), 4u);
}

TEST(StepTrace, TrimBeforeKeepsBoundaryStep) {
  StepTrace t;
  t.Set(0, 1.0);
  t.Set(100, 2.0);
  t.Set(200, 3.0);
  t.Set(300, 4.0);
  EXPECT_EQ(t.TrimBefore(250), 2u);  // steps at 0 and 100 dropped
  EXPECT_EQ(t.size(), 2u);           // 200 kept: in effect at horizon 250
  EXPECT_EQ(t.trimmed_steps(), 2u);
  EXPECT_EQ(t.ValueAt(250), 3.0);
  EXPECT_EQ(t.ValueAt(300), 4.0);
  EXPECT_EQ(t.first_time(), 200);
}

TEST(StepTrace, TrimBeforePreservesPostHorizonIntegrals) {
  Rng rng(0x7e1);
  StepTrace full;
  TimeNs when = 0;
  for (int i = 0; i < 400; ++i) {
    full.Set(when, rng.Uniform(0.0, 3.0));
    when += rng.UniformInt(50, 5000);
  }
  const TimeNs end = when;
  for (const TimeNs horizon : {end / 7, end / 3, end / 2, 3 * end / 4}) {
    StepTrace trimmed = full;
    trimmed.TrimBefore(horizon);
    // Property: any window starting at or after the horizon — and the
    // whole-history query from the origin — is bit-identical to the
    // untrimmed trace.
    EXPECT_EQ(trimmed.IntegralOver(0, end), full.IntegralOver(0, end));
    Rng probes(horizon);
    for (int i = 0; i < 100; ++i) {
      const TimeNs a = probes.UniformInt(horizon, end);
      const TimeNs b = probes.UniformInt(horizon, end);
      const TimeNs t0 = std::min(a, b);
      const TimeNs t1 = std::max(a, b);
      EXPECT_EQ(trimmed.IntegralOver(t0, t1), full.IntegralOver(t0, t1))
          << "horizon " << horizon << " window [" << t0 << ", " << t1 << ")";
      EXPECT_EQ(trimmed.ValueAt(t0), full.ValueAt(t0));
    }
  }
}

TEST(StepTrace, TrimBeforeRepeatedIsIdempotent) {
  StepTrace t;
  for (int i = 0; i < 10; ++i) {
    t.Set(i * 100, 1.0 + i);
  }
  const size_t first = t.TrimBefore(450);
  EXPECT_EQ(first, 4u);
  EXPECT_EQ(t.TrimBefore(450), 0u);
  EXPECT_EQ(t.TrimBefore(100), 0u);  // earlier horizon: nothing left to drop
  EXPECT_EQ(t.trimmed_steps(), 4u);
}

TEST(StepTrace, TrimBeforeAllThenAppend) {
  StepTrace t;
  t.Set(0, 2.0);
  t.Set(100, 4.0);
  // Horizon past the last step: every step but the boundary one goes.
  EXPECT_EQ(t.TrimBefore(1000), 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.ValueAt(1000), 4.0);
  // The trace keeps working after the trim.
  t.Set(2000, 6.0);
  EXPECT_EQ(t.ValueAt(2500), 6.0);
  // 2 W * 100 ns + 4 W * 1900 ns + 6 W * 500 ns.
  EXPECT_DOUBLE_EQ(t.IntegralOver(0, 2500),
                   (2.0 * 100 + 4.0 * 1900 + 6.0 * 500) * 1e-9);
}

TEST(IntervalSet, AddAndContains) {
  IntervalSet s;
  s.Add(10, 20);
  s.Add(30, 40);
  EXPECT_TRUE(s.Contains(10));
  EXPECT_TRUE(s.Contains(19));
  EXPECT_FALSE(s.Contains(20));
  EXPECT_FALSE(s.Contains(25));
  EXPECT_TRUE(s.Contains(35));
}

TEST(IntervalSet, MergeAdjacent) {
  IntervalSet s;
  s.Add(10, 20);
  s.Add(20, 30);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.TotalCovered(), 20);
}

TEST(IntervalSet, MergeOverlap) {
  IntervalSet s;
  s.Add(10, 25);
  s.Add(20, 30);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.TotalCovered(), 20);
}

TEST(IntervalSet, OutOfOrderInsert) {
  IntervalSet s;
  s.Add(100, 200);
  s.Add(10, 20);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(15));
  EXPECT_TRUE(s.Contains(150));
  s.Add(15, 120);  // bridges both
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.TotalCovered(), 190);
}

TEST(IntervalSet, CoveredWithin) {
  IntervalSet s;
  s.Add(10, 20);
  s.Add(30, 40);
  EXPECT_EQ(s.CoveredWithin(0, 100), 20);
  EXPECT_EQ(s.CoveredWithin(15, 35), 10);
  EXPECT_EQ(s.CoveredWithin(20, 30), 0);
}

TEST(IntervalSet, EmptyAddIgnored) {
  IntervalSet s;
  s.Add(10, 10);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, CursorSweepMatchesRandomAccess) {
  Rng rng(0x1e5);
  IntervalSet s;
  TimeNs when = 0;
  for (int i = 0; i < 200; ++i) {
    const TimeNs begin = when + rng.UniformInt(1, 50);
    const TimeNs end = begin + rng.UniformInt(1, 100);
    s.Add(begin, end);
    when = end;
  }
  const IntervalSet fresh = s;
  int step = 0;
  for (TimeNs probe = 0; probe < when; probe += 7) {
    if (++step % 41 == 0) {
      (void)s.Contains(probe / 2);  // backwards jump must not corrupt state
    }
    EXPECT_EQ(s.Contains(probe), fresh.Contains(probe)) << "at " << probe;
  }
}

TEST(IntervalSet, TrimBeforeDropsClosedKeepsStraddler) {
  IntervalSet s;
  s.Add(0, 10);
  s.Add(20, 30);
  s.Add(40, 60);
  s.Add(70, 80);
  // Horizon inside [40, 60): the two fully-past intervals go, the straddler
  // is kept whole (splitting it would change downstream FP summation).
  EXPECT_EQ(s.TrimBefore(50), 2u);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.trimmed_intervals(), 2u);
  EXPECT_EQ(s.intervals().front().begin, 40);
  EXPECT_TRUE(s.Contains(45));
  EXPECT_TRUE(s.Contains(75));
  EXPECT_FALSE(s.Contains(65));
  // Idempotent at the same horizon; still appendable afterwards.
  EXPECT_EQ(s.TrimBefore(50), 0u);
  s.Add(90, 100);
  EXPECT_TRUE(s.Contains(95));
  EXPECT_EQ(s.TotalCovered(), 40);
}

TEST(IntervalSet, TrimBeforeBoundaryExactlyAtEnd) {
  IntervalSet s;
  s.Add(0, 10);
  s.Add(20, 30);
  // end == horizon counts as fully past (half-open intervals).
  EXPECT_EQ(s.TrimBefore(10), 1u);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.TrimBefore(30), 1u);
  EXPECT_TRUE(s.empty());
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Gaussian(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkIndependent) {
  Rng a(42);
  Rng child = a.Fork();
  // The child stream differs from the parent's continuation.
  EXPECT_NE(child.NextU64(), a.NextU64());
}

TEST(RunningStats, Basics) {
  RunningStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 100), 4.0);
}

TEST(PercentDelta, Basics) {
  EXPECT_DOUBLE_EQ(PercentDelta(100, 95), -5.0);
  EXPECT_DOUBLE_EQ(PercentDelta(100, 160), 60.0);
  EXPECT_DOUBLE_EQ(PercentDelta(0, 5), 0.0);
}

}  // namespace
}  // namespace psbox
