// Unit tests for src/base: step traces, interval sets, rng, stats.

#include <gtest/gtest.h>

#include "src/base/interval_set.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/step_trace.h"

namespace psbox {
namespace {

TEST(StepTrace, ValueAtBeforeFirstStepIsZero) {
  StepTrace t;
  t.Set(100, 2.0);
  EXPECT_EQ(t.ValueAt(50), 0.0);
  EXPECT_EQ(t.ValueAt(100), 2.0);
  EXPECT_EQ(t.ValueAt(150), 2.0);
}

TEST(StepTrace, SameTimeOverwrites) {
  StepTrace t;
  t.Set(100, 2.0);
  t.Set(100, 3.0);
  EXPECT_EQ(t.ValueAt(100), 3.0);
  EXPECT_EQ(t.size(), 1u);
}

TEST(StepTrace, RedundantValueCompacted) {
  StepTrace t;
  t.Set(0, 1.0);
  t.Set(50, 1.0);
  EXPECT_EQ(t.size(), 1u);
}

TEST(StepTrace, IntegralExact) {
  StepTrace t;
  t.Set(0, 1.0);
  t.Set(kSecond, 3.0);
  // 1 W for 1 s + 3 W for 0.5 s
  EXPECT_DOUBLE_EQ(t.IntegralOver(0, kSecond + kSecond / 2), 2.5);
}

TEST(StepTrace, IntegralPartialSegments) {
  StepTrace t;
  t.Set(0, 2.0);
  t.Set(2 * kSecond, 4.0);
  EXPECT_DOUBLE_EQ(t.IntegralOver(kSecond, 3 * kSecond), 2.0 + 4.0);
}

TEST(StepTrace, IntegralEmptyRange) {
  StepTrace t;
  t.Set(0, 2.0);
  EXPECT_DOUBLE_EQ(t.IntegralOver(kSecond, kSecond), 0.0);
}

TEST(StepTrace, MeanOver) {
  StepTrace t;
  t.Set(0, 1.0);
  t.Set(kSecond, 3.0);
  EXPECT_DOUBLE_EQ(t.MeanOver(0, 2 * kSecond), 2.0);
}

TEST(StepTrace, ResampleCount) {
  StepTrace t;
  t.Set(0, 1.0);
  auto samples = t.Resample(0, kMillisecond, 100 * kMicrosecond);
  EXPECT_EQ(samples.size(), 10u);
  for (double v : samples) {
    EXPECT_EQ(v, 1.0);
  }
}

TEST(IntervalSet, AddAndContains) {
  IntervalSet s;
  s.Add(10, 20);
  s.Add(30, 40);
  EXPECT_TRUE(s.Contains(10));
  EXPECT_TRUE(s.Contains(19));
  EXPECT_FALSE(s.Contains(20));
  EXPECT_FALSE(s.Contains(25));
  EXPECT_TRUE(s.Contains(35));
}

TEST(IntervalSet, MergeAdjacent) {
  IntervalSet s;
  s.Add(10, 20);
  s.Add(20, 30);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.TotalCovered(), 20);
}

TEST(IntervalSet, MergeOverlap) {
  IntervalSet s;
  s.Add(10, 25);
  s.Add(20, 30);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.TotalCovered(), 20);
}

TEST(IntervalSet, OutOfOrderInsert) {
  IntervalSet s;
  s.Add(100, 200);
  s.Add(10, 20);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(15));
  EXPECT_TRUE(s.Contains(150));
  s.Add(15, 120);  // bridges both
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.TotalCovered(), 190);
}

TEST(IntervalSet, CoveredWithin) {
  IntervalSet s;
  s.Add(10, 20);
  s.Add(30, 40);
  EXPECT_EQ(s.CoveredWithin(0, 100), 20);
  EXPECT_EQ(s.CoveredWithin(15, 35), 10);
  EXPECT_EQ(s.CoveredWithin(20, 30), 0);
}

TEST(IntervalSet, EmptyAddIgnored) {
  IntervalSet s;
  s.Add(10, 10);
  EXPECT_TRUE(s.empty());
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Gaussian(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkIndependent) {
  Rng a(42);
  Rng child = a.Fork();
  // The child stream differs from the parent's continuation.
  EXPECT_NE(child.NextU64(), a.NextU64());
}

TEST(RunningStats, Basics) {
  RunningStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 100), 4.0);
}

TEST(PercentDelta, Basics) {
  EXPECT_DOUBLE_EQ(PercentDelta(100, 95), -5.0);
  EXPECT_DOUBLE_EQ(PercentDelta(100, 160), 60.0);
  EXPECT_DOUBLE_EQ(PercentDelta(0, 5), 0.0);
}

}  // namespace
}  // namespace psbox
