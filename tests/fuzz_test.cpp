// Randomized scenario sweeps ("fuzz"): spawn a random mix of apps across all
// components with random psbox usage and check global invariants. Each seed
// is a deterministic scenario; failures reproduce exactly.

#include <gtest/gtest.h>

#include "src/workloads/table5_apps.h"
#include "tests/test_util.h"

namespace psbox {
namespace {

using Factory = AppHandle (*)(Kernel&, const std::string&, AppOptions);

constexpr Factory kFactories[] = {
    &SpawnCalib3d, &SpawnBodytrack, &SpawnDedup,   &SpawnGpuBrowser,
    &SpawnMagic,   &SpawnCube,      &SpawnTriangle, &SpawnSgemm,
    &SpawnDgemm,   &SpawnMonte,     &SpawnWifiBrowser, &SpawnScp,
    &SpawnWget,
};

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, RandomScenarioUpholdsInvariants) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  BoardConfig board_cfg;
  board_cfg.seed = seed;
  TestStack s(board_cfg);

  const int num_apps = static_cast<int>(rng.UniformInt(2, 6));
  std::vector<AppHandle> handles;
  std::vector<bool> sandboxed;
  for (int i = 0; i < num_apps; ++i) {
    const auto which = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(std::size(kFactories)) - 1));
    AppOptions opts;
    opts.deadline = Seconds(1);
    opts.use_psbox = rng.Bernoulli(0.4);
    opts.threads = rng.Bernoulli(0.2) ? 2 : 1;
    opts.jitter = rng.Uniform(0.0, 0.15);
    handles.push_back(kFactories[which](s.kernel, "app" + std::to_string(i), opts));
    sandboxed.push_back(opts.use_psbox);
  }
  s.kernel.RunUntil(Seconds(1) + Millis(100));

  // Invariant 1: the simulation made progress and every app ran.
  for (const AppHandle& h : handles) {
    EXPECT_GE(h.stats->start_time, 0) << "seed " << seed;
  }

  // Invariant 2: every rail's power stayed non-negative and its energy is
  // consistent with its trace integral.
  for (HwComponent hw : {HwComponent::kCpu, HwComponent::kGpu, HwComponent::kDsp,
                         HwComponent::kWifi}) {
    const PowerRail& rail = s.board.RailFor(hw);
    for (const auto& step : rail.trace().steps()) {
      EXPECT_GE(step.value, 0.0) << "seed " << seed;
    }
    EXPECT_GE(rail.EnergyOver(0, Seconds(1)), 0.0);
  }

  // Invariant 3: sandboxes have well-formed, pairwise-disjoint ownership on
  // each component, and non-negative observed energy.
  for (size_t i = 0; i < s.manager.box_count(); ++i) {
    const PowerSandbox& sb = s.manager.sandbox(static_cast<int>(i));
    for (HwComponent hw : sb.hardware()) {
      TimeNs prev_end = -1;
      for (const auto& iv : sb.owned(hw).intervals()) {
        EXPECT_LT(iv.begin, iv.end) << "seed " << seed;
        EXPECT_GE(iv.begin, prev_end) << "seed " << seed;
        prev_end = iv.end;
      }
      EXPECT_GE(s.manager.ReadEnergyFor(static_cast<int>(i), hw), 0.0)
          << "seed " << seed;
    }
  }
  for (size_t i = 0; i < s.manager.box_count(); ++i) {
    for (size_t j = i + 1; j < s.manager.box_count(); ++j) {
      const PowerSandbox& a = s.manager.sandbox(static_cast<int>(i));
      const PowerSandbox& b = s.manager.sandbox(static_cast<int>(j));
      for (HwComponent hw : a.hardware()) {
        if (!b.BoundTo(hw)) {
          continue;
        }
        for (TimeNs t = 0; t < Seconds(1); t += Millis(7)) {
          EXPECT_FALSE(a.OwnedAt(hw, t) && b.OwnedAt(hw, t))
              << "seed " << seed << " hw " << HwComponentName(hw) << " t " << t;
        }
      }
    }
  }

  // Invariant 4: scheduler bookkeeping is sane.
  const auto& st = s.kernel.scheduler().stats();
  const auto& dom = s.kernel.scheduler().domain_stats();
  EXPECT_GE(st.shootdown_ipis, dom.balloons > 0 ? 1u : 0u);
  EXPECT_LE(dom.total_balloon_time, 2 * Seconds(1));  // <= cores * wall time

  // Invariant 5: the run is reproducible.
  // (Checked cheaply: rail energy fingerprint vs a second run.)
  const Joules fingerprint = s.board.cpu_rail().EnergyOver(0, Seconds(1));
  {
    Rng rng2(seed);
    TestStack s2(board_cfg);
    const int n2 = static_cast<int>(rng2.UniformInt(2, 6));
    for (int i = 0; i < n2; ++i) {
      const auto which = static_cast<size_t>(
          rng2.UniformInt(0, static_cast<int64_t>(std::size(kFactories)) - 1));
      AppOptions opts;
      opts.deadline = Seconds(1);
      opts.use_psbox = rng2.Bernoulli(0.4);
      opts.threads = rng2.Bernoulli(0.2) ? 2 : 1;
      opts.jitter = rng2.Uniform(0.0, 0.15);
      kFactories[which](s2.kernel, "app" + std::to_string(i), opts);
    }
    s2.kernel.RunUntil(Seconds(1) + Millis(100));
    EXPECT_DOUBLE_EQ(s2.board.cpu_rail().EnergyOver(0, Seconds(1)), fingerprint)
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144,
                                           233, 377, 610, 987));

}  // namespace
}  // namespace psbox
