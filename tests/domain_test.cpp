// The uniform ResourceDomain surface: every sandboxed resource reports the
// same DomainStats with the same invariants, and the kernel registry covers
// every HwComponent — balloon-carrying policies for CPU/GPU/DSP/WiFi/storage
// and direct-metered policies for the §7 entanglement-free display and GPS.

#include <gtest/gtest.h>

#include "src/workloads/table5_apps.h"
#include "tests/test_util.h"

namespace psbox {
namespace {

using Factory = AppHandle (*)(Kernel&, const std::string&, AppOptions);

struct DomainCase {
  HwComponent hw;
  Factory factory;  // spawns an app exercising exactly this component's domain
};

class DomainStatsParity : public ::testing::TestWithParam<DomainCase> {};

TEST_P(DomainStatsParity, InvariantsHoldOnEveryDomain) {
  const DomainCase c = GetParam();
  TestStack s;
  AppOptions sandboxed;
  sandboxed.deadline = Millis(600);
  sandboxed.use_psbox = true;
  c.factory(s.kernel, "boxed", sandboxed);
  // A same-kind competitor so balloons actually have someone to drain.
  AppOptions plain;
  plain.deadline = Millis(600);
  c.factory(s.kernel, "rival", plain);

  s.kernel.RunUntil(Millis(300));
  const DomainStats mid = s.kernel.domain(c.hw).domain_stats();
  s.kernel.RunUntil(Millis(700));
  const DomainStats end = s.kernel.domain(c.hw).domain_stats();

  // The sandboxed app got balloons, and the counters are well-formed.
  EXPECT_GT(end.balloons, 0u) << HwComponentName(c.hw);
  EXPECT_GT(end.total_balloon_time, 0) << HwComponentName(c.hw);
  EXPECT_LE(end.aborted, end.balloons) << HwComponentName(c.hw);

  // Monotonicity across snapshots.
  EXPECT_GE(end.balloons, mid.balloons) << HwComponentName(c.hw);
  EXPECT_GE(end.total_balloon_time, mid.total_balloon_time)
      << HwComponentName(c.hw);
  EXPECT_GE(end.aborted, mid.aborted) << HwComponentName(c.hw);

  // Recovery actions only ever happen under fault injection.
  EXPECT_EQ(end.recoveries, 0u) << HwComponentName(c.hw);
}

INSTANTIATE_TEST_SUITE_P(
    AllDomains, DomainStatsParity,
    ::testing::Values(DomainCase{HwComponent::kCpu, &SpawnCalib3d},
                      DomainCase{HwComponent::kGpu, &SpawnTriangle},
                      DomainCase{HwComponent::kDsp, &SpawnSgemm},
                      DomainCase{HwComponent::kWifi, &SpawnScp},
                      DomainCase{HwComponent::kStorage, &SpawnMediaScan}),
    [](const ::testing::TestParamInfo<DomainCase>& info) {
      return std::string(HwComponentName(info.param.hw));
    });

TEST(DomainRegistryTest, TypedAccessorsAliasTheRegistry) {
  TestStack s;
  EXPECT_EQ(&s.kernel.domain(HwComponent::kCpu),
            static_cast<ResourceDomain*>(&s.kernel.scheduler()));
  EXPECT_EQ(&s.kernel.domain(HwComponent::kGpu),
            static_cast<ResourceDomain*>(&s.kernel.gpu_driver()));
  EXPECT_EQ(&s.kernel.domain(HwComponent::kDsp),
            static_cast<ResourceDomain*>(&s.kernel.dsp_driver()));
  EXPECT_EQ(&s.kernel.domain(HwComponent::kWifi),
            static_cast<ResourceDomain*>(&s.kernel.net()));
  EXPECT_EQ(&s.kernel.domain(HwComponent::kStorage),
            static_cast<ResourceDomain*>(&s.kernel.storage_driver()));
}

TEST(DomainRegistryTest, RegistryCoversEveryComponent) {
  TestStack s;
  for (size_t i = 0; i < kNumHwComponents; ++i) {
    const HwComponent hw = static_cast<HwComponent>(i);
    EXPECT_NE(s.kernel.FindDomain(hw), nullptr) << HwComponentName(hw);
  }
}

TEST(DomainRegistryTest, DirectMeteredDomainsCarryNoBalloonProtocol) {
  TestStack s;
  // Display and GPS take the §7 entanglement-free path: thin pass-through
  // policies whose balloon counters stay at zero forever.
  for (HwComponent hw : {HwComponent::kDisplay, HwComponent::kGps}) {
    ResourceDomain& domain = s.kernel.domain(hw);
    EXPECT_TRUE(domain.direct_metered()) << HwComponentName(hw);
    domain.SetSandboxed(/*app=*/0, /*box=*/1);  // arming is a no-op
    s.kernel.RunUntil(Millis(50));
    const DomainStats stats = domain.domain_stats();
    EXPECT_EQ(stats.balloons, 0u) << HwComponentName(hw);
    EXPECT_EQ(stats.aborted, 0u) << HwComponentName(hw);
    EXPECT_EQ(domain.balloon_owner(), kNoApp) << HwComponentName(hw);
    EXPECT_TRUE(domain.timeline().empty()) << HwComponentName(hw);
  }
  // Balloon-metered domains reject the direct surface: asking the CPU
  // scheduler for a direct reading is a caller bug, reported by name.
  EXPECT_FALSE(s.kernel.domain(HwComponent::kCpu).direct_metered());
  EXPECT_DEATH(s.kernel.domain(HwComponent::kCpu).DirectPowerAt(0, 0),
               "balloon-metered, not direct-metered");
}

TEST(DomainRegistryTest, DriverForRejectsNonAccelerators) {
  TestStack s;
  EXPECT_DEATH(s.kernel.DriverFor(HwComponent::kWifi), "not an accelerator");
}

}  // namespace
}  // namespace psbox
