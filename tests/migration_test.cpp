// MigrationPolicy edge cases: the decision half of migration is pure over
// (config, load view), so its corner behaviour is pinned directly —
// hop-cap boundaries, budgetless apps, dead fleets, tie-breaks, and the
// claim semantics that keep back-to-back evictions from piling up.

#include <gtest/gtest.h>

#include "src/fleet/migration.h"

namespace psbox {
namespace {

MigrationConfig Config(int max_hops = 1, double pressure = 0.6) {
  MigrationConfig config;
  config.enabled = true;
  config.max_hops = max_hops;
  config.pressure_fraction = pressure;
  return config;
}

std::vector<BoardLoad> Loads(std::initializer_list<int> active) {
  std::vector<BoardLoad> loads;
  for (int a : active) {
    BoardLoad load;
    load.active_apps = a;
    loads.push_back(load);
  }
  return loads;
}

TEST(MigrationPolicyTest, ShouldDrainRespectsHopCapBoundary) {
  const MigrationPolicy policy(Config(/*max_hops=*/2));
  // Well past the watermark either way; only the hop count varies.
  EXPECT_TRUE(policy.ShouldDrain(10.0, 1.0, 0));
  EXPECT_TRUE(policy.ShouldDrain(10.0, 1.0, 1));
  EXPECT_FALSE(policy.ShouldDrain(10.0, 1.0, 2));  // hops == cap: no drain
  EXPECT_FALSE(policy.ShouldDrain(10.0, 1.0, 3));
}

TEST(MigrationPolicyTest, ShouldDrainExactWatermarkFires) {
  const MigrationPolicy policy(Config(1, /*pressure=*/0.5));
  EXPECT_FALSE(policy.ShouldDrain(0.49, 1.0, 0));
  EXPECT_TRUE(policy.ShouldDrain(0.50, 1.0, 0));  // >= is the contract
}

TEST(MigrationPolicyTest, BudgetlessAppsNeverDrain) {
  const MigrationPolicy policy(Config());
  EXPECT_FALSE(policy.ShouldDrain(100.0, 0.0, 0));
  EXPECT_FALSE(policy.ShouldDrain(100.0, -1.0, 0));
}

TEST(MigrationPolicyTest, DisabledPolicyNeverDrains) {
  MigrationConfig config = Config();
  config.enabled = false;
  const MigrationPolicy policy(config);
  EXPECT_FALSE(policy.ShouldDrain(100.0, 1.0, 0));
}

TEST(MigrationPolicyTest, PickTargetAllBoardsDead) {
  const MigrationPolicy policy(Config());
  std::vector<BoardLoad> loads = Loads({0, 0, 0});
  for (BoardLoad& load : loads) {
    load.alive = false;
  }
  EXPECT_EQ(policy.PickTarget(loads, 0), -1);
}

TEST(MigrationPolicyTest, PickTargetOnlySourceAlive) {
  const MigrationPolicy policy(Config());
  std::vector<BoardLoad> loads = Loads({0, 3, 3});
  loads[1].alive = false;
  loads[2].alive = false;
  EXPECT_EQ(policy.PickTarget(loads, 0), -1);
}

TEST(MigrationPolicyTest, PickTargetSingleAliveBoard) {
  const MigrationPolicy policy(Config());
  std::vector<BoardLoad> loads = Loads({0, 9, 9});
  loads[0].alive = false;
  loads[2].alive = false;
  EXPECT_EQ(policy.PickTarget(loads, 0), 1);  // heavy but the only option
}

TEST(MigrationPolicyTest, PickTargetTieBreaksTowardsLowestIndex) {
  const MigrationPolicy policy(Config());
  EXPECT_EQ(policy.PickTarget(Loads({5, 2, 2, 2}), 0), 1);
  // ... including when the source sits between tied candidates.
  EXPECT_EQ(policy.PickTarget(Loads({2, 5, 2, 2}), 1), 0);
}

TEST(MigrationPolicyTest, PickTargetWeighsEnergyPressure) {
  MigrationConfig config = Config();
  config.energy_weight = 2.0;
  const MigrationPolicy policy(config);
  // Board 1 is emptier but hot (pressure 1.5 -> score 0 + 3.0); board 2 has
  // a resident app but is cool (score 1 + 0.4). Pressure steers placement.
  std::vector<BoardLoad> loads = Loads({4, 0, 1});
  loads[1].pressure = 1.5;
  loads[2].pressure = 0.2;
  EXPECT_EQ(policy.PickTarget(loads, 0), 2);
  // With the weight zeroed the same view degenerates to least-loaded.
  config.energy_weight = 0.0;
  EXPECT_EQ(MigrationPolicy(config).PickTarget(loads, 0), 1);
}

TEST(MigrationPolicyTest, ClaimTargetSpreadsBackToBackEvictions) {
  // The load-staleness regression: two evictions decided at one barrier must
  // not both land on the board that was least loaded when the barrier
  // started. ClaimTarget bumps the chosen board in the caller's view.
  const MigrationPolicy policy(Config());
  std::vector<BoardLoad> loads = Loads({2, 0, 0});
  const int first = policy.ClaimTarget(loads, 0);
  const int second = policy.ClaimTarget(loads, 0);
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);  // a stale view would say 1 again
  EXPECT_EQ(loads[1].active_apps, 1);
  EXPECT_EQ(loads[2].active_apps, 1);
  // A third eviction ties 1 and 2 at one app each: lowest index wins.
  EXPECT_EQ(policy.ClaimTarget(loads, 0), 1);
}

TEST(MigrationPolicyTest, ClaimTargetLeavesViewUntouchedWhenNoTarget) {
  const MigrationPolicy policy(Config());
  std::vector<BoardLoad> loads = Loads({1, 4});
  loads[1].alive = false;
  EXPECT_EQ(policy.ClaimTarget(loads, 0), -1);
  EXPECT_EQ(loads[0].active_apps, 1);
  EXPECT_EQ(loads[1].active_apps, 4);
}

}  // namespace
}  // namespace psbox
