// Unit tests for the accelerator device model (GPU/DSP).

#include <gtest/gtest.h>

#include <vector>

#include "src/hw/accel_device.h"

namespace psbox {
namespace {

AccelCommand MakeCmd(uint64_t id, AppId app, DurationNs work, Watts power) {
  AccelCommand cmd;
  cmd.id = id;
  cmd.app = app;
  cmd.nominal_work = work;
  cmd.active_power = power;
  return cmd;
}

class AccelDeviceTest : public ::testing::Test {
 protected:
  AccelDeviceTest()
      : rail_(&sim_, "gpu", MakeGpuConfig().idle_power),
        gpu_(&sim_, &rail_, MakeGpuConfig()) {
    gpu_.set_on_complete([this](const AccelCompletion& c) { done_.push_back(c); });
  }

  Simulator sim_;
  PowerRail rail_;
  AccelDevice gpu_;
  std::vector<AccelCompletion> done_;
};

TEST_F(AccelDeviceTest, IdlePowerWhenEmpty) {
  EXPECT_DOUBLE_EQ(gpu_.ModelPower(), gpu_.config().idle_power);
  EXPECT_EQ(gpu_.in_flight(), 0);
  EXPECT_TRUE(gpu_.CanDispatch());
}

TEST_F(AccelDeviceTest, SoloCommandFinishesAtNominalTime) {
  gpu_.Dispatch(MakeCmd(1, 0, 5 * kMillisecond, 0.8));
  sim_.RunUntil(Seconds(1));
  ASSERT_EQ(done_.size(), 1u);
  // Top OPP, alone: exactly the nominal work (within rounding).
  EXPECT_NEAR(static_cast<double>(done_[0].end_time - done_[0].start_time),
              static_cast<double>(5 * kMillisecond), 10.0);
}

TEST_F(AccelDeviceTest, ContentionStretchesExecution) {
  gpu_.Dispatch(MakeCmd(1, 0, 5 * kMillisecond, 0.8));
  gpu_.Dispatch(MakeCmd(2, 1, 5 * kMillisecond, 0.8));
  sim_.RunUntil(Seconds(1));
  ASSERT_EQ(done_.size(), 2u);
  const auto span = done_[0].end_time - done_[0].start_time;
  // Two equal in-flight commands run the whole time together: stretched by
  // the configured contention factor.
  const double expected =
      5.0 * kMillisecond * (1.0 + gpu_.config().contention_slowdown);
  EXPECT_NEAR(static_cast<double>(span), expected, expected * 0.01);
}

TEST_F(AccelDeviceTest, PowerSuperpositionIsSubAdditive) {
  gpu_.Dispatch(MakeCmd(1, 0, 10 * kMillisecond, 0.6));
  const Watts one = gpu_.ModelPower();
  gpu_.Dispatch(MakeCmd(2, 1, 10 * kMillisecond, 0.6));
  const Watts two = gpu_.ModelPower();
  const Watts idle = gpu_.config().idle_power;
  EXPECT_GT(two, one);
  EXPECT_LT(two - idle, 2.0 * (one - idle));  // Fig 3b entanglement
}

TEST_F(AccelDeviceTest, SlotsLimitDispatch) {
  gpu_.Dispatch(MakeCmd(1, 0, 10 * kMillisecond, 0.5));
  gpu_.Dispatch(MakeCmd(2, 0, 10 * kMillisecond, 0.5));
  EXPECT_FALSE(gpu_.CanDispatch());
  EXPECT_EQ(gpu_.in_flight(), 2);
}

TEST_F(AccelDeviceTest, CompletionFreesSlot) {
  gpu_.Dispatch(MakeCmd(1, 0, 2 * kMillisecond, 0.5));
  gpu_.Dispatch(MakeCmd(2, 0, 20 * kMillisecond, 0.5));
  sim_.RunUntil(Millis(5));
  EXPECT_EQ(done_.size(), 1u);
  EXPECT_TRUE(gpu_.CanDispatch());
  EXPECT_EQ(gpu_.in_flight(), 1);
}

TEST_F(AccelDeviceTest, LowerOppSlowsAndSavesPower) {
  gpu_.SetOppIndex(0);
  gpu_.Dispatch(MakeCmd(1, 0, 5 * kMillisecond, 0.8));
  const Watts low_power = gpu_.ModelPower();
  sim_.RunUntil(Seconds(1));
  ASSERT_EQ(done_.size(), 1u);
  const auto span = done_[0].end_time - done_[0].start_time;
  EXPECT_GT(span, 5 * kMillisecond);  // slower than nominal

  done_.clear();
  gpu_.SetOppIndex(gpu_.num_opps() - 1);
  gpu_.Dispatch(MakeCmd(2, 0, 5 * kMillisecond, 0.8));
  EXPECT_GT(gpu_.ModelPower(), low_power);
}

TEST_F(AccelDeviceTest, OppChangeMidExecutionPreservesWork) {
  gpu_.SetOppIndex(gpu_.num_opps() - 1);
  gpu_.Dispatch(MakeCmd(1, 0, 10 * kMillisecond, 0.8));
  sim_.RunUntil(Millis(5));  // half done at full speed
  gpu_.SetOppIndex(0);       // slow down for the second half
  sim_.RunUntil(Seconds(1));
  ASSERT_EQ(done_.size(), 1u);
  const double speed0 = gpu_.config().opps[0].freq_mhz /
                        gpu_.config().opps.back().freq_mhz;
  const double expected = 5.0 * kMillisecond + 5.0 * kMillisecond / speed0;
  EXPECT_NEAR(static_cast<double>(done_[0].end_time), expected, expected * 0.01);
}

TEST_F(AccelDeviceTest, ActiveAppsDeduplicates) {
  gpu_.Dispatch(MakeCmd(1, 7, 10 * kMillisecond, 0.5));
  gpu_.Dispatch(MakeCmd(2, 7, 10 * kMillisecond, 0.5));
  EXPECT_EQ(gpu_.ActiveApps().size(), 1u);
  EXPECT_EQ(gpu_.ActiveApps()[0], 7);
}

TEST_F(AccelDeviceTest, CompletionCarriesDispatchTimes) {
  sim_.ScheduleAt(Millis(3), [this] { gpu_.Dispatch(MakeCmd(1, 0, 2 * kMillisecond, 0.5)); });
  sim_.RunUntil(Seconds(1));
  ASSERT_EQ(done_.size(), 1u);
  EXPECT_EQ(done_[0].dispatch_time, Millis(3));
  EXPECT_EQ(done_[0].start_time, Millis(3));
  EXPECT_GT(done_[0].end_time, done_[0].start_time);
}

TEST(AccelConfigTest, FactoryShapes) {
  const AccelConfig gpu = MakeGpuConfig();
  const AccelConfig dsp = MakeDspConfig();
  EXPECT_EQ(gpu.slots, 2);   // pipelined overlap
  EXPECT_EQ(dsp.slots, 4);   // spatial concurrency
  EXPECT_GT(dsp.power_interference, gpu.power_interference);
}

// Property sweep: energy on the rail equals idle + the commands' effective
// contribution, for varying overlap counts.
class AccelOverlapSweep : public ::testing::TestWithParam<int> {};

TEST_P(AccelOverlapSweep, RailEnergyMatchesInterferenceModel) {
  const int overlap = GetParam();
  AccelConfig cfg = MakeDspConfig();
  Simulator sim;
  PowerRail rail(&sim, "dsp", cfg.idle_power);
  AccelDevice dsp(&sim, &rail, cfg);
  for (int i = 0; i < overlap; ++i) {
    AccelCommand cmd;
    cmd.id = static_cast<uint64_t>(i + 1);
    cmd.app = i;
    cmd.nominal_work = 10 * kMillisecond;
    cmd.active_power = 0.5;
    dsp.Dispatch(cmd);
  }
  const Watts expected = cfg.idle_power +
                         0.5 * overlap *
                             (1.0 - cfg.power_interference * (overlap - 1));
  EXPECT_NEAR(dsp.ModelPower(), expected, 1e-9);
  sim.RunToCompletion();
  EXPECT_DOUBLE_EQ(dsp.ModelPower(), cfg.idle_power);
}

INSTANTIATE_TEST_SUITE_P(Overlap, AccelOverlapSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace psbox
