// Tests for the analysis utilities: DTW, trace downsampling, sparklines.

#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/dtw.h"
#include "src/analysis/trace_util.h"
#include "src/base/rng.h"

namespace psbox {
namespace {

std::vector<double> Sine(size_t n, double freq, double phase = 0.0) {
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::sin(freq * static_cast<double>(i) + phase);
  }
  return out;
}

TEST(DtwTest, IdenticalSeriesHaveZeroDistance) {
  const auto a = Sine(100, 0.2);
  EXPECT_NEAR(DtwDistance(a, a), 0.0, 1e-9);
}

TEST(DtwTest, Symmetric) {
  const auto a = Sine(100, 0.2);
  const auto b = Sine(100, 0.35);
  EXPECT_NEAR(DtwDistance(a, b), DtwDistance(b, a), 1e-9);
}

TEST(DtwTest, WarpingAbsorbsSmallShift) {
  // A small temporal shift costs much less than a genuinely different shape.
  const auto a = Sine(200, 0.2);
  const auto shifted = Sine(200, 0.2, 0.6);
  const auto different = Sine(200, 0.55);
  EXPECT_LT(DtwDistance(a, shifted), DtwDistance(a, different));
}

TEST(DtwTest, ZNormalizeMakesScaleInvariant) {
  auto a = Sine(100, 0.3);
  std::vector<double> scaled = a;
  for (double& v : scaled) {
    v = v * 5.0 + 10.0;
  }
  DtwConfig cfg;
  cfg.z_normalize = true;
  EXPECT_NEAR(DtwDistance(a, scaled, cfg), 0.0, 1e-6);
  cfg.z_normalize = false;
  EXPECT_GT(DtwDistance(a, scaled, cfg), 1.0);
}

TEST(DtwTest, EmptySeriesIsInfinite) {
  EXPECT_TRUE(std::isinf(DtwDistance({}, {1.0, 2.0})));
}

TEST(DtwTest, DifferentLengthsSupported) {
  // Length mismatch is handled (finite distance) and costs less than a
  // genuinely different shape of the same length.
  const auto a = Sine(100, 0.2);
  const auto b = Sine(130, 0.2);
  const auto different = Sine(100, 0.71);
  EXPECT_FALSE(std::isinf(DtwDistance(a, b)));
  EXPECT_LT(DtwDistance(a, b), DtwDistance(a, different));
}

TEST(ZNormalizeTest, MeanZeroUnitVariance) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  ZNormalize(&v);
  double mean = 0.0;
  double var = 0.0;
  for (double x : v) {
    mean += x;
  }
  mean /= static_cast<double>(v.size());
  for (double x : v) {
    var += (x - mean) * (x - mean);
  }
  var /= static_cast<double>(v.size());
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
}

TEST(ZNormalizeTest, ConstantSeriesBecomesZero) {
  std::vector<double> v = {3, 3, 3};
  ZNormalize(&v);
  for (double x : v) {
    EXPECT_EQ(x, 0.0);
  }
}

TEST(DownsampleTest, SamplesBinnedByMean) {
  std::vector<PowerSample> samples;
  for (int i = 0; i < 100; ++i) {
    samples.push_back({i * kMillisecond, i < 50 ? 1.0 : 3.0});
  }
  const auto bins = DownsampleSamples(samples, 0, Millis(100), 2);
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_NEAR(bins[0], 1.0, 1e-9);
  EXPECT_NEAR(bins[1], 3.0, 1e-9);
}

TEST(DownsampleTest, EmptyBinRepeatsPrevious) {
  std::vector<PowerSample> samples = {{0, 2.0}};
  const auto bins = DownsampleSamples(samples, 0, Millis(100), 4);
  for (double b : bins) {
    EXPECT_EQ(b, 2.0);
  }
}

TEST(DownsampleTest, TraceBinsAreExactMeans) {
  StepTrace trace;
  trace.Set(0, 1.0);
  trace.Set(Millis(50), 3.0);
  const auto bins = DownsampleTrace(trace, 0, Millis(100), 2);
  EXPECT_NEAR(bins[0], 1.0, 1e-9);
  EXPECT_NEAR(bins[1], 3.0, 1e-9);
}

TEST(SampleEnergyTest, RiemannSum) {
  std::vector<PowerSample> samples = {{0, 1.0}, {Millis(1), 1.0}};
  EXPECT_NEAR(SampleEnergy(samples, Millis(1)), 0.002, 1e-12);
}

TEST(SparklineTest, LengthAndRange) {
  const auto line = Sparkline({0.0, 0.5, 1.0});
  EXPECT_EQ(line.size(), 3u);
  EXPECT_EQ(line.front(), ' ');
  EXPECT_EQ(line.back(), '#');
}

TEST(SparklineTest, EmptySeries) { EXPECT_TRUE(Sparkline({}).empty()); }

}  // namespace
}  // namespace psbox
