// Tests for the accelerator driver: fair command scheduling and temporal
// balloons (the five-phase protocol of §4.2).

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace psbox {
namespace {

// Spawns an app with one task that repeatedly offloads |work| commands.
struct AccelApp {
  AppId app;
  Task* task;
};

AccelApp SpawnOffloader(TestStack& s, const std::string& name, HwComponent hw,
                        DurationNs work, Watts power, DurationNs think = 0) {
  const AppId app = s.kernel.CreateApp(name);
  Task* task = s.kernel.SpawnTask(
      app, name,
      std::make_unique<FnBehavior>([hw, work, power, think,
                                    phase = 0](TaskEnv&) mutable {
        Action a;
        switch (phase % 3) {
          case 0:
            a = Action::SubmitAccel(hw, 1, work, power);
            break;
          case 1:
            a = Action::WaitAccel(1);
            break;
          default:
            a = think > 0 ? Action::Sleep(think) : Action::Compute(100 * kMicrosecond);
            break;
        }
        ++phase;
        return a;
      }));
  return {app, task};
}

TEST(AccelDriverTest, SubmitRunsAndCompletes) {
  TestStack s;
  AccelApp a = SpawnOffloader(s, "a", HwComponent::kGpu, 2 * kMillisecond, 0.5);
  s.kernel.RunUntil(Millis(50));
  EXPECT_GT(s.kernel.gpu_driver().CompletedFor(a.app), 5u);
}

TEST(AccelDriverTest, FairSharingBetweenEqualApps) {
  TestStack s;
  AccelApp a = SpawnOffloader(s, "a", HwComponent::kDsp, 8 * kMillisecond, 0.5);
  AccelApp b = SpawnOffloader(s, "b", HwComponent::kDsp, 8 * kMillisecond, 0.5);
  s.kernel.RunUntil(Seconds(2));
  const auto ca = s.kernel.dsp_driver().CompletedFor(a.app);
  const auto cb = s.kernel.dsp_driver().CompletedFor(b.app);
  EXPECT_NEAR(static_cast<double>(ca) / static_cast<double>(cb), 1.0, 0.15);
}

TEST(AccelDriverTest, TemporalBalloonNeverOverlapsOthers) {
  TestStack s;
  AccelApp a = SpawnOffloader(s, "boxed", HwComponent::kGpu, 3 * kMillisecond, 0.6);
  SpawnOffloader(s, "other", HwComponent::kGpu, 3 * kMillisecond, 0.6);
  const int box = s.manager.CreateBox(a.app, {HwComponent::kGpu});
  s.manager.EnterBox(box);
  s.kernel.RunUntil(Seconds(2));
  // Inside every owned interval, only the sandboxed app's commands ran: the
  // ledger must show no other app's usage within the ownership windows.
  const auto& owned = s.manager.sandbox(box).owned(HwComponent::kGpu);
  ASSERT_FALSE(owned.empty());
  for (const UsageRecord& r : s.kernel.ledger().records(HwComponent::kGpu)) {
    if (r.app == a.app) {
      continue;
    }
    const TimeNs mid = r.begin + (r.end - r.begin) / 2;
    EXPECT_FALSE(owned.Contains(mid))
        << "foreign command inside balloon at " << mid;
  }
}

TEST(AccelDriverTest, BalloonsBilledToOwner) {
  TestStack s;
  AccelApp a = SpawnOffloader(s, "boxed", HwComponent::kGpu, 3 * kMillisecond, 0.6);
  AccelApp b = SpawnOffloader(s, "other", HwComponent::kGpu, 3 * kMillisecond, 0.6);
  const int box = s.manager.CreateBox(a.app, {HwComponent::kGpu});
  s.manager.EnterBox(box);
  s.kernel.RunUntil(Seconds(2));
  // Equal workloads, but the sandboxed app pays for exclusivity: it
  // completes no more than the plain app.
  EXPECT_LE(s.kernel.gpu_driver().CompletedFor(a.app),
            s.kernel.gpu_driver().CompletedFor(b.app));
  EXPECT_GT(s.kernel.gpu_driver().domain_stats().balloons, 0u);
}

TEST(AccelDriverTest, DispatchLatencyGrowsUnderPsbox) {
  auto avg_latency = [](bool sandbox) {
    TestStack s;
    AccelApp a = SpawnOffloader(s, "a", HwComponent::kGpu, 3 * kMillisecond, 0.6);
    SpawnOffloader(s, "b", HwComponent::kGpu, 3 * kMillisecond, 0.6);
    if (sandbox) {
      const int box = s.manager.CreateBox(a.app, {HwComponent::kGpu});
      s.manager.EnterBox(box);
    }
    s.kernel.RunUntil(Seconds(1));
    const auto& st = s.kernel.gpu_driver().stats();
    return static_cast<double>(st.total_dispatch_latency) /
           static_cast<double>(std::max<uint64_t>(1, st.submitted));
  };
  EXPECT_GT(avg_latency(true), avg_latency(false));
}

TEST(AccelDriverTest, ClearSandboxedMidBalloonUnwinds) {
  TestStack s;
  AccelApp a = SpawnOffloader(s, "boxed", HwComponent::kDsp, 20 * kMillisecond, 0.8);
  SpawnOffloader(s, "other", HwComponent::kDsp, 5 * kMillisecond, 0.5);
  const int box = s.manager.CreateBox(a.app, {HwComponent::kDsp});
  s.manager.EnterBox(box);
  s.kernel.RunUntil(Millis(60));
  s.manager.LeaveBox(box);
  s.kernel.RunUntil(Millis(200));
  EXPECT_EQ(s.kernel.dsp_driver().balloon_owner(), kNoApp);
  // Both keep completing afterwards.
  const auto before_a = s.kernel.dsp_driver().CompletedFor(a.app);
  s.kernel.RunUntil(Millis(600));
  EXPECT_GT(s.kernel.dsp_driver().CompletedFor(a.app), before_a);
}

TEST(AccelDriverTest, CompletionWakesWaitingTask) {
  TestStack s;
  const AppId app = s.kernel.CreateApp("a");
  Task* t = s.kernel.SpawnTask(
      app, "t",
      std::make_unique<ScriptBehavior>(std::vector<Action>{
          Action::SubmitAccel(HwComponent::kGpu, 1, 5 * kMillisecond, 0.5),
          Action::WaitAccel(1), Action::Compute(kMillisecond)}));
  s.kernel.RunUntil(Millis(3));
  EXPECT_EQ(t->state(), TaskState::kBlocked);
  s.kernel.RunUntil(Millis(20));
  EXPECT_EQ(t->state(), TaskState::kExited);
}

TEST(AccelDriverTest, WaitForMultipleCompletions) {
  TestStack s;
  const AppId app = s.kernel.CreateApp("a");
  Task* t = s.kernel.SpawnTask(
      app, "t",
      std::make_unique<ScriptBehavior>(std::vector<Action>{
          Action::SubmitAccel(HwComponent::kDsp, 1, 4 * kMillisecond, 0.5),
          Action::SubmitAccel(HwComponent::kDsp, 1, 4 * kMillisecond, 0.5),
          Action::SubmitAccel(HwComponent::kDsp, 1, 4 * kMillisecond, 0.5),
          Action::WaitAccel(3)}));
  s.kernel.RunUntil(Millis(60));
  EXPECT_EQ(t->state(), TaskState::kExited);
  EXPECT_EQ(s.kernel.dsp_driver().CompletedFor(app), 3u);
}

TEST(AccelDriverTest, FrequencyVirtualisedPerBox) {
  // A heavy co-runner maxes the accelerator frequency; the sandboxed app's
  // balloons start from its own (initially lowest) context.
  TestStack s;
  SpawnOffloader(s, "heavy", HwComponent::kGpu, 8 * kMillisecond, 0.9);
  s.kernel.RunUntil(Millis(100));
  EXPECT_EQ(s.board.gpu().opp_index(), s.board.gpu().num_opps() - 1);
  AccelApp a = SpawnOffloader(s, "boxed", HwComponent::kGpu, 3 * kMillisecond, 0.6,
                              /*think=*/5 * kMillisecond);
  const int box = s.manager.CreateBox(a.app, {HwComponent::kGpu});
  s.manager.EnterBox(box);
  s.kernel.RunUntil(Millis(130));
  const auto& owned = s.manager.sandbox(box).owned(HwComponent::kGpu);
  ASSERT_FALSE(owned.empty());
  // Power inside the first balloon reflects the low virtual OPP: it is below
  // the full-opp draw of the same command.
  const TimeNs probe = owned.intervals().front().begin + 500 * kMicrosecond;
  const Watts in_balloon = s.board.gpu_rail().PowerAt(probe);
  EXPECT_LT(in_balloon, s.board.gpu().config().idle_power + 0.6);
}

TEST(AccelDriverTest, LedgerRecordsCommandSpans) {
  TestStack s;
  AccelApp a = SpawnOffloader(s, "a", HwComponent::kGpu, 2 * kMillisecond, 0.5);
  s.kernel.RunUntil(Millis(30));
  const auto& records = s.kernel.ledger().records(HwComponent::kGpu);
  ASSERT_FALSE(records.empty());
  for (const UsageRecord& r : records) {
    EXPECT_EQ(r.app, a.app);
    EXPECT_LT(r.begin, r.end);
  }
}

}  // namespace
}  // namespace psbox
