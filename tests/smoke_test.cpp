// End-to-end smoke tests: full stack (board + kernel + psbox + workloads)
// scenarios that exercise every subsystem together.

#include <gtest/gtest.h>

#include "src/hw/board.h"
#include "src/kernel/kernel.h"
#include "src/psbox/psbox_manager.h"
#include "src/workloads/table5_apps.h"
#include "src/workloads/vr_app.h"

namespace psbox {
namespace {

struct Stack {
  Board board;
  Kernel kernel;
  PsboxManager manager;

  explicit Stack(BoardConfig cfg = {}) : board(cfg), kernel(&board), manager(&kernel) {}
};

TEST(Smoke, SingleCpuAppRunsToCompletion) {
  Stack s;
  AppOptions opts;
  opts.iterations = 50;
  AppHandle app = SpawnCalib3d(s.kernel, "calib3d", opts);
  s.kernel.RunUntil(Seconds(5));
  EXPECT_TRUE(s.kernel.AppFinished(app.app));
  EXPECT_EQ(app.stats->iterations, 50u);
  EXPECT_GT(app.stats->finish_time, app.stats->start_time);
}

TEST(Smoke, TwoCpuAppsShareTheCpu) {
  Stack s;
  AppOptions opts;
  opts.deadline = Seconds(1);
  AppHandle a = SpawnBodytrack(s.kernel, "a", opts);
  AppHandle b = SpawnBodytrack(s.kernel, "b", opts);
  s.kernel.RunUntil(Seconds(2));
  EXPECT_GT(a.stats->iterations, 10u);
  EXPECT_GT(b.stats->iterations, 10u);
}

TEST(Smoke, SandboxedCpuAppCompletes) {
  Stack s;
  AppOptions opts;
  opts.iterations = 40;
  opts.use_psbox = true;
  AppHandle app = SpawnCalib3d(s.kernel, "calib3d", opts);
  AppOptions bg;
  bg.deadline = Seconds(3);
  SpawnBodytrack(s.kernel, "bodytrack", bg);
  s.kernel.RunUntil(Seconds(3));
  EXPECT_TRUE(s.kernel.AppFinished(app.app));
  EXPECT_EQ(app.stats->iterations, 40u);
  EXPECT_GT(app.stats->psbox_energy, 0.0);
  EXPECT_GT(s.kernel.scheduler().domain_stats().balloons, 0u);
}

TEST(Smoke, GpuAppsCompleteWithAndWithoutPsbox) {
  Stack s;
  AppOptions opts;
  opts.iterations = 20;
  opts.use_psbox = true;
  AppHandle browser = SpawnGpuBrowser(s.kernel, "browser", opts);
  AppOptions bg;
  bg.deadline = Seconds(2);
  SpawnMagic(s.kernel, "magic", bg);
  s.kernel.RunUntil(Seconds(3));
  EXPECT_TRUE(s.kernel.AppFinished(browser.app));
  EXPECT_GT(browser.stats->psbox_energy, 0.0);
  EXPECT_GT(s.kernel.gpu_driver().domain_stats().balloons, 0u);
}

TEST(Smoke, DspAppsComplete) {
  Stack s;
  AppOptions opts;
  opts.iterations = 10;
  opts.use_psbox = true;
  AppHandle dgemm = SpawnDgemm(s.kernel, "dgemm", opts);
  AppOptions bg;
  bg.deadline = Seconds(2);
  SpawnSgemm(s.kernel, "sgemm", bg);
  s.kernel.RunUntil(Seconds(4));
  EXPECT_TRUE(s.kernel.AppFinished(dgemm.app));
  EXPECT_EQ(dgemm.stats->iterations, 10u);
  EXPECT_GT(dgemm.stats->psbox_energy, 0.0);
}

TEST(Smoke, WifiAppsComplete) {
  Stack s;
  AppOptions opts;
  opts.iterations = 5;
  opts.use_psbox = true;
  AppHandle browser = SpawnWifiBrowser(s.kernel, "browser", opts);
  AppOptions bg;
  bg.deadline = Seconds(1);
  SpawnScp(s.kernel, "scp", bg);
  s.kernel.RunUntil(Seconds(3));
  EXPECT_TRUE(s.kernel.AppFinished(browser.app));
  EXPECT_GT(browser.stats->psbox_energy, 0.0);
  EXPECT_GT(s.kernel.net().stats().tx_frames, 0u);
}

TEST(Smoke, VrScenarioAdapts) {
  Stack s;
  VrConfig cfg;
  cfg.deadline = Seconds(4);
  VrHandles vr = SpawnVrScenario(s.kernel, cfg);
  s.kernel.RunUntil(Seconds(5));
  EXPECT_GT(vr.stats->frames, 100u);
  EXPECT_GT(vr.stats->windows.size(), 5u);
}

TEST(Smoke, LedgerRecordsUsage) {
  Stack s;
  AppOptions opts;
  opts.deadline = Millis(300);
  SpawnCalib3d(s.kernel, "calib3d", opts);
  SpawnSgemm(s.kernel, "sgemm", opts);
  s.kernel.RunUntil(Millis(500));
  EXPECT_FALSE(s.kernel.ledger().records(HwComponent::kCpu).empty());
  EXPECT_FALSE(s.kernel.ledger().records(HwComponent::kDsp).empty());
}

TEST(Smoke, DeterministicAcrossRuns) {
  auto run = [] {
    Stack s;
    AppOptions opts;
    opts.iterations = 30;
    opts.use_psbox = true;
    AppHandle app = SpawnCalib3d(s.kernel, "calib3d", opts);
    AppOptions bg;
    bg.deadline = Seconds(1);
    SpawnDedup(s.kernel, "dedup", bg);
    s.kernel.RunUntil(Seconds(2));
    return app.stats->psbox_energy;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace psbox
